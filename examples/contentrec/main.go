// Contentrec: a recommendation-flavored workload (the paper's third
// motivating scenario). Items are linked by co-engagement edges whose
// weight is the engagement strength; the widest path from a seed item
// (incremental SSWP) scores how strongly any item is chained to it — the
// bottleneck-capacity notion behind "related content" walks. Stinger holds
// the topology, and the example also contrasts the incremental model
// against recomputation from scratch on the same stream.
//
//	go run ./examples/contentrec
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

const (
	items     = 2500
	seedItem  = 3
	batchSize = 700
	batches   = 10
)

func newPipe(model compute.Model) *core.Pipeline {
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "stinger",
		Algorithm:     "sswp",
		Model:         model,
		Directed:      false, // co-engagement is symmetric
		Threads:       4,
		MaxNodesHint:  items,
		Compute:       compute.Options{Source: seedItem},
	})
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	inc := newPipe(compute.INC)
	fs := newPipe(compute.FS)

	rng := rand.New(rand.NewSource(11))
	var incTime, fsTime time.Duration
	for b := 0; b < batches; b++ {
		batch := make(graph.Batch, batchSize)
		for i := range batch {
			a := graph.NodeID(rng.Intn(items))
			c := graph.NodeID(rng.Intn(items))
			if a == c {
				c = (c + 1) % items
			}
			// Popular items co-engage more strongly.
			w := graph.Weight(rng.Intn(50) + 1)
			if a < 20 || c < 20 {
				w += 30
			}
			batch[i] = graph.Edge{Src: a, Dst: c, Weight: w}
		}
		li := inc.Process(batch)
		lf := fs.Process(batch)
		incTime += li.Total()
		fsTime += lf.Total()
	}

	width := inc.Values()
	type rec struct {
		item  int
		score float64
	}
	var recs []rec
	for it, w := range width {
		if it != seedItem && w > 0 {
			recs = append(recs, rec{it, w})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
	fmt.Printf("recommendations chained to item %d (by widest engagement path):\n", seedItem)
	for i := 0; i < 5 && i < len(recs); i++ {
		fmt.Printf("  item %4d  strength %.0f\n", recs[i].item, recs[i].score)
	}
	// On a graph this small, recomputation from scratch stays competitive
	// with the incremental model for path algorithms — exactly the paper's
	// Table III finding for SSWP on its smaller datasets.
	fmt.Printf("cumulative batch-processing latency: incremental %v vs from-scratch %v (FS/INC %.1fx)\n",
		incTime, fsTime, float64(fsTime)/float64(incTime))

	// Both models must agree on the scores.
	fsw := fs.Values()
	for it := range width {
		if width[it] != fsw[it] {
			log.Fatalf("model divergence at item %d: inc=%v fs=%v", it, width[it], fsw[it])
		}
	}
	fmt.Println("consistency check: incremental and from-scratch scores agree")
}
