// Socialrank: the paper's social-network-analysis motivation end to end.
// A LiveJournal-like follow stream (short-tailed, so the adjacency-list
// structure is the right pick per Table III) is ingested in batches while
// two engines share the same topology: incremental PageRank for influence
// and incremental Connected Components for community tracking. After every
// stage we report the timely-analytics view: trending users, community
// count, and the batch-processing latency split (Equation 1).
//
//	go run ./examples/socialrank
package main

import (
	"fmt"
	"log"
	"sort"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
	"sagabench/internal/stats"
)

func main() {
	spec := gen.MustDataset("lj", gen.ProfileTiny)
	edges := spec.Generate(2024)
	batches := graph.Batches(edges, spec.BatchSize)

	pr, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     "pr",
		Model:         compute.INC,
		Directed:      true,
		Threads:       4,
		MaxNodesHint:  spec.NumNodes,
	})
	if err != nil {
		log.Fatal(err)
	}
	cc, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     "cc",
		Model:         compute.INC,
		Directed:      true,
		Threads:       4,
		MaxNodesHint:  spec.NumNodes,
	})
	if err != nil {
		log.Fatal(err)
	}

	var totals []float64
	stages := stats.Stages(len(batches))
	stageOf := func(b int) int {
		for i, r := range stages {
			if b >= r[0] && b < r[1] {
				return i
			}
		}
		return 2
	}
	lastStage := -1
	for b, batch := range batches {
		latPR := pr.Process(batch)
		latCC := cc.Process(batch)
		totals = append(totals, (latPR.Total() + latCC.Total()).Seconds())

		if s := stageOf(b); s != lastStage || b == len(batches)-1 {
			lastStage = s
			fmt.Printf("-- batch %d/%d (stage P%d): %d users, %d follows --\n",
				b+1, len(batches), s+1, pr.Graph().NumNodes(), pr.Graph().NumEdges())
			fmt.Printf("   trending: %v\n", topK(pr.Values(), 3))
			fmt.Printf("   communities: %d | batch latency: update %v + compute %v\n",
				communityCount(cc.Values()), latPR.Update+latCC.Update, latPR.Compute+latCC.Compute)
		}
	}
	sum := stats.Summarize(totals)
	fmt.Printf("mean dual-analytics batch latency: %s over %d batches\n", sum, sum.N)
}

func topK(ranks []float64, k int) []int {
	order := make([]int, len(ranks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return ranks[order[i]] > ranks[order[j]] })
	if len(order) > k {
		order = order[:k]
	}
	return order
}

func communityCount(labels []float64) int {
	seen := map[float64]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
