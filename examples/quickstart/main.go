// Quickstart: stream a small edge feed into SAGA-Bench and keep an
// incrementally maintained PageRank as every batch lands.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

func main() {
	// A pipeline couples one dynamic graph data structure with one
	// algorithm engine. Here: adjacency list (shared multithreading) +
	// incremental PageRank.
	pipe, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     "pr",
		Model:         compute.INC,
		Directed:      true,
		Threads:       4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feed five batches of a synthetic follow stream: vertex 7 keeps
	// gaining followers, so its rank should climb.
	rng := rand.New(rand.NewSource(1))
	const users = 200
	for b := 0; b < 5; b++ {
		batch := make(graph.Batch, 500)
		for i := range batch {
			follower := graph.NodeID(rng.Intn(users))
			followee := graph.NodeID(rng.Intn(users))
			if rng.Intn(3) == 0 {
				followee = 7 // trending account
			}
			if follower == followee {
				followee = (followee + 1) % users
			}
			batch[i] = graph.Edge{Src: follower, Dst: followee, Weight: 1}
		}
		lat := pipe.Process(batch)
		fmt.Printf("batch %d: %d vertices, %d edges | update %v, compute %v\n",
			b, pipe.Graph().NumNodes(), pipe.Graph().NumEdges(), lat.Update, lat.Compute)
	}

	// Rank the top accounts from the freshly maintained vertex values.
	ranks := pipe.Values()
	order := make([]int, len(ranks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return ranks[order[i]] > ranks[order[j]] })
	fmt.Println("top accounts by incremental PageRank:")
	for _, v := range order[:5] {
		fmt.Printf("  user %3d  rank %.5f  followers %d\n", v, ranks[v], pipe.Graph().InDegree(graph.NodeID(v)))
	}
}
