// Temporal: multi-snapshot analytics over a streaming graph — the model
// the paper slates for a future SAGA-Bench version. While the live
// pipeline keeps incremental connected components up to date, a snapshot
// store records every batch; afterwards we travel back in time and ask
// when two accounts first became connected and how fast the biggest
// community absorbed the graph.
//
//	go run ./examples/temporal
package main

import (
	"fmt"
	"log"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
	"sagabench/internal/snapshot"
)

func main() {
	spec := gen.MustDataset("lj", gen.ProfileTiny)
	edges := spec.Generate(99)
	batches := graph.Batches(edges, spec.BatchSize)

	pipe, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "graphone", // log-structured: O(1) ingest, snapshot-friendly
		Algorithm:     "cc",
		Model:         compute.INC,
		Directed:      true,
		Threads:       4,
		MaxNodesHint:  spec.NumNodes,
	})
	if err != nil {
		log.Fatal(err)
	}
	store := snapshot.New(snapshot.Config{Directed: true, Every: 8})

	for _, b := range batches {
		pipe.Process(b)
		store.Observe(b, nil)
	}
	fmt.Printf("streamed %d batches; %d checkpoints retained\n", store.Batches(), store.Checkpoints())

	// Time travel 1: when did vertices 2 and 3 first join the same
	// weakly connected component?
	const a, bVert = 2, 3
	joined := -1
	for i := 0; i < store.Batches(); i++ {
		snap, err := store.At(i)
		if err != nil {
			log.Fatal(err)
		}
		if sameComponent(snap, a, bVert) {
			joined = i
			break
		}
	}
	if joined < 0 {
		fmt.Printf("vertices %d and %d never joined\n", a, bVert)
	} else {
		fmt.Printf("vertices %d and %d first connected after batch %d\n", a, bVert, joined)
	}

	// Time travel 2: growth of the largest component across the stream.
	fmt.Println("largest-component share over time:")
	for i := 4; i < store.Batches(); i += 16 {
		snap, err := store.At(i)
		if err != nil {
			log.Fatal(err)
		}
		size, total := largestComponent(snap)
		fmt.Printf("  after batch %3d: %5.1f%% of %d vertices\n",
			i, 100*float64(size)/float64(total), total)
	}

	// The live pipeline and the final snapshot must agree.
	finalSnap := store.Latest()
	if finalSnap.NumEdges() != pipe.Graph().NumEdges() {
		log.Fatalf("snapshot/live divergence: %d vs %d edges", finalSnap.NumEdges(), pipe.Graph().NumEdges())
	}
	fmt.Printf("final snapshot matches live graph: %d distinct edges\n", finalSnap.NumEdges())
}

// sameComponent checks weak connectivity between a and b on a snapshot.
func sameComponent(c *graph.CSR, a, b graph.NodeID) bool {
	n := c.NumNodes()
	if int(a) >= n || int(b) >= n {
		return false
	}
	seen := make([]bool, n)
	stack := []graph.NodeID{a}
	seen[a] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == b {
			return true
		}
		for _, nb := range c.Out(u) {
			if !seen[nb.ID] {
				seen[nb.ID] = true
				stack = append(stack, nb.ID)
			}
		}
		for _, nb := range c.In(u) {
			if !seen[nb.ID] {
				seen[nb.ID] = true
				stack = append(stack, nb.ID)
			}
		}
	}
	return false
}

// largestComponent sizes the biggest weakly connected component.
func largestComponent(c *graph.CSR) (largest, total int) {
	n := c.NumNodes()
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		size := 0
		stack := []graph.NodeID{graph.NodeID(v)}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, nb := range c.Out(u) {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					stack = append(stack, nb.ID)
				}
			}
			for _, nb := range c.In(u) {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					stack = append(stack, nb.ID)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return largest, n
}
