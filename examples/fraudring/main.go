// Fraudring: the paper's real-time fraud-detection motivation. A payment
// stream flows through a mule account that fans payments out (a
// heavy-tailed out-degree hub, like the talk dataset), so the pipeline
// uses degree-aware hashing — the structure Table III picks for heavy
// tails. Incremental SSSP from the flagged mule maintains, batch by batch,
// the set of accounts newly reachable within a money-trail distance
// budget; alerts fire the moment an account enters the radius, and stale
// transfers expire out of an 8-batch sliding window (mixed insert+delete
// batches, repaired incrementally via KickStarter-style trimming).
//
//	go run ./examples/fraudring
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

const (
	accounts   = 3000 // account ID space
	mule       = 17   // flagged account, source of the taint search
	radius     = 40   // alert when weighted trail distance falls below this
	batchSize  = 800
	numBatches = 14
)

func main() {
	pipe, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "dah",
		Algorithm:     "sssp",
		Model:         compute.INC,
		Directed:      true,
		Threads:       4,
		MaxNodesHint:  accounts,
		Compute:       compute.Options{Source: mule},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	alerted := make([]bool, accounts)
	alerts := 0
	const window = 8 // transfers older than this expire
	var history []graph.Batch
	for b := 0; b < numBatches; b++ {
		batch := make(graph.Batch, batchSize)
		for i := range batch {
			src := graph.NodeID(rng.Intn(accounts))
			if rng.Float64() < 0.35 {
				src = mule // the mule fans out constantly
			}
			dst := graph.NodeID(rng.Intn(accounts))
			if src == dst {
				dst = (dst + 1) % accounts
			}
			// Weight models transfer obscurity: shorter = tighter link.
			batch[i] = graph.Edge{Src: src, Dst: dst, Weight: graph.Weight(rng.Intn(30) + 1)}
		}
		history = append(history, batch)
		mb := core.MixedBatch{Adds: batch}
		if b >= window {
			mb.Dels = history[b-window]
		}
		lat, err := pipe.ProcessMixed(mb)
		if err != nil {
			log.Fatal(err)
		}

		fresh := 0
		dist := pipe.Values()
		for acct, d := range dist {
			if acct != mule && !math.IsInf(d, 1) && d <= radius && !alerted[acct] {
				alerted[acct] = true
				fresh++
			}
		}
		alerts += fresh
		fmt.Printf("batch %d: +%d new accounts within trail distance %d of the mule (total %d) | update %v compute %v\n",
			b, fresh, radius, alerts, lat.Update, lat.Compute)
	}
	fmt.Printf("final graph: %d accounts, %d transfers; mule fan-out degree %d\n",
		pipe.Graph().NumNodes(), pipe.Graph().NumEdges(), pipe.Graph().OutDegree(mule))
}
