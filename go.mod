module sagabench

go 1.22
