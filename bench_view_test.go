package sagabench_test

import (
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
)

// benchComputeView is benchCompute with the compute-view toggle exposed:
// the same warmed pipeline re-processes the final batch, so each iteration
// measures one update phase (including the mirror refresh when the view is
// on) plus one compute phase on the final topology. Off/On pairs of the
// same configuration quantify what the flat kernels buy net of the
// refresh they require; BENCH_compute.json checks in one measured run.
//
// Unlike the benchCompute suite these run at the default profile — the
// dataset's default batch size (lj: 1000) is where the amortization
// argument is made, and at the tiny profile the refresh cost dominates
// the shrunken compute phase for the cheaper algorithms.
func benchComputeView(b *testing.B, dsName, alg string, model compute.Model, view bool) {
	spec := gen.MustDataset("lj", gen.ProfileDefault)
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: dsName,
		Algorithm:     alg,
		Model:         model,
		Directed:      spec.Directed,
		Threads:       2,
		MaxNodesHint:  spec.NumNodes,
		ComputeView:   view,
	})
	if err != nil {
		b.Fatal(err)
	}
	edges := spec.Generate(7)
	for start := 0; start < len(edges); start += spec.BatchSize {
		end := start + spec.BatchSize
		if end > len(edges) {
			end = len(edges)
		}
		p.Process(edges[start:end])
	}
	final := edges[len(edges)-minInt(spec.BatchSize, len(edges)):]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(final)
	}
}

func BenchmarkViewOffPRFSonAS(b *testing.B) {
	benchComputeView(b, "adjshared", "pr", compute.FS, false)
}
func BenchmarkViewOnPRFSonAS(b *testing.B) { benchComputeView(b, "adjshared", "pr", compute.FS, true) }
func BenchmarkViewOffPRFSonStgr(b *testing.B) {
	benchComputeView(b, "stinger", "pr", compute.FS, false)
}
func BenchmarkViewOnPRFSonStgr(b *testing.B) { benchComputeView(b, "stinger", "pr", compute.FS, true) }
func BenchmarkViewOffPRFSonDAH(b *testing.B) { benchComputeView(b, "dah", "pr", compute.FS, false) }
func BenchmarkViewOnPRFSonDAH(b *testing.B)  { benchComputeView(b, "dah", "pr", compute.FS, true) }

func BenchmarkViewOffSSSPFSonAS(b *testing.B) {
	benchComputeView(b, "adjshared", "sssp", compute.FS, false)
}
func BenchmarkViewOnSSSPFSonAS(b *testing.B) {
	benchComputeView(b, "adjshared", "sssp", compute.FS, true)
}
func BenchmarkViewOffSSSPFSonStgr(b *testing.B) {
	benchComputeView(b, "stinger", "sssp", compute.FS, false)
}
func BenchmarkViewOnSSSPFSonStgr(b *testing.B) {
	benchComputeView(b, "stinger", "sssp", compute.FS, true)
}
func BenchmarkViewOffSSSPFSonDAH(b *testing.B) { benchComputeView(b, "dah", "sssp", compute.FS, false) }
func BenchmarkViewOnSSSPFSonDAH(b *testing.B)  { benchComputeView(b, "dah", "sssp", compute.FS, true) }

func BenchmarkViewOffCCFSonStgr(b *testing.B) {
	benchComputeView(b, "stinger", "cc", compute.FS, false)
}
func BenchmarkViewOnCCFSonStgr(b *testing.B) { benchComputeView(b, "stinger", "cc", compute.FS, true) }

func BenchmarkViewOffPRINConAS(b *testing.B) {
	benchComputeView(b, "adjshared", "pr", compute.INC, false)
}
func BenchmarkViewOnPRINConAS(b *testing.B) {
	benchComputeView(b, "adjshared", "pr", compute.INC, true)
}
