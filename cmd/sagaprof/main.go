// Command sagaprof is the PCM-style architecture profiler for a single
// configuration: it streams the dataset, replays the memory-access pattern
// on the simulated machine, and prints the per-stage hardware
// characterization (cache hit ratios, MPKI, modeled bandwidth/QPI, and the
// core-scaling curve) for the update and compute phases.
//
// Example:
//
//	sagaprof -dataset wiki -ds dah -alg cc
package main

import (
	"flag"
	"fmt"
	"os"

	"sagabench/internal/archsim"
	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/perfmon"
)

func main() {
	var (
		dataset = flag.String("dataset", "lj", fmt.Sprintf("dataset %v", gen.DatasetNames()))
		profile = flag.String("profile", "default", "dataset scale: tiny, default, large")
		dsName  = flag.String("ds", "adjshared", fmt.Sprintf("data structure to model %v", ds.Names()))
		alg     = flag.String("alg", "cc", fmt.Sprintf("algorithm %v", compute.AlgNames()))
		model   = flag.String("model", "inc", "compute model: fs or inc")
		threads = flag.Int("threads", 4, "worker threads for the measured run")
		hwth    = flag.Int("hwthreads", 64, "replayed hardware threads")
		machdiv = flag.Int("machdiv", 128, "simulated-machine cache-capacity divisor")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	spec, err := gen.Dataset(*dataset, gen.Profile(*profile))
	if err != nil {
		fatal(err)
	}
	mc := archsim.ScaledMachine(*machdiv)
	rep, err := perfmon.Profile(perfmon.Config{
		Run: core.RunConfig{
			PipelineConfig: core.PipelineConfig{
				DataStructure: *dsName,
				Algorithm:     *alg,
				Model:         compute.Model(*model),
				Threads:       *threads,
			},
			Dataset: spec,
			Seed:    *seed,
		},
		Threads: *hwth,
		Machine: &mc,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset=%s ds=%s alg=%s model=%s | machine: L1=%dB L2=%dKB LLC=%dKB/socket (div %d)\n",
		*dataset, *dsName, *alg, *model,
		mc.L1Bytes, mc.L2Bytes>>10, mc.LLCBytes>>10, *machdiv)

	fmt.Printf("%-8s %-8s %9s %9s %9s %9s %10s %8s\n",
		"stage", "phase", "L2 hit", "LLC hit", "L2 MPKI", "LLC MPKI", "GB/s@32c", "QPI%")
	for stage := 0; stage < 3; stage++ {
		for _, ph := range []perfmon.Phase{perfmon.Update, perfmon.Compute} {
			tr := rep.Traffic(stage, ph)
			fmt.Printf("P%-7d %-8s %9.2f %9.2f %9.1f %9.1f %10.2f %7.1f%%\n",
				stage+1, ph,
				tr.L2HitRatio(), tr.LLCHitRatio(), tr.L2MPKI(), tr.LLCMPKI(),
				rep.BandwidthGBs(stage, ph, 32), rep.QPIPercent(stage, ph, 32))
		}
	}

	cores := []int{4, 8, 12, 16, 20, 24, 28, 32}
	fmt.Printf("\nmodeled scaling (P3, normalized to %d cores)\n%-8s", cores[0], "cores")
	for _, c := range cores {
		fmt.Printf("%7d", c)
	}
	fmt.Println()
	for _, ph := range []perfmon.Phase{perfmon.Update, perfmon.Compute} {
		fmt.Printf("%-8s", ph)
		for _, v := range rep.ScalingCurve(ph, cores) {
			fmt.Printf("%7.2f", v)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sagaprof:", err)
	os.Exit(1)
}
