package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sagabench/internal/analysis"
)

// vetConfig is the subset of the go command's per-package vet config
// (the JSON file handed to `go vet -vettool` tools) that sagavet needs.
// The protocol: the tool is invoked once per package with the path to a
// .cfg file; it must write its facts file to VetxOutput (sagavet keeps
// no cross-package facts, so the file is a placeholder), print findings,
// and exit nonzero if any were found. For dependency packages the go
// command sets VetxOnly, asking for facts but no diagnostics.
type vetConfig struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

func runVettool(cfgPath string, selected []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sagavet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sagavet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("sagavet: no facts\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sagavet:", err)
			return 2
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	dir := cfg.Dir
	if dir == "" {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir}, ".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sagavet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	failing := 0
	for _, d := range analysis.RunAnalyzers(pkgs, selected) {
		if d.Suppressed {
			continue
		}
		failing++
		fmt.Fprintln(os.Stderr, d)
	}
	if failing > 0 {
		return 1
	}
	return 0
}
