package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a temp file and returns
// the exit code and output.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	return code, string(data)
}

// TestVettoolProtocol checks the two probes the go command sends before
// trusting a -vettool binary: -V=full must print "name version id" and
// -flags must print a JSON flag list.
func TestVettoolProtocol(t *testing.T) {
	code, out := capture(t, "-V=full")
	if code != 0 || !strings.HasPrefix(out, "sagavet version ") {
		t.Fatalf("-V=full: code %d, output %q", code, out)
	}
	code, out = capture(t, "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-flags: code %d, output %q", code, out)
	}
}

// TestList checks every registered analyzer appears in -list output.
func TestList(t *testing.T) {
	code, out := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list: code %d", code)
	}
	for _, name := range []string{"atomicmix", "lockheld", "chunkowner", "determinism", "paniccapture", "errcheck-durable", "pinrelease", "frozenwrite", "hotalloc", "retryclass"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

// TestUnknownAnalyzer checks the usage-error exit code.
func TestUnknownAnalyzer(t *testing.T) {
	if code, _ := capture(t, "-analyzers", "nope", "./..."); code != 2 {
		t.Fatalf("unknown analyzer: code %d, want 2", code)
	}
}
