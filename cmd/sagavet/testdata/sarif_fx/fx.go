// Package sarif_fx is a sagavet fixture for the SARIF writer: two live
// findings from different analyzers plus one audited suppression, so the
// golden file exercises rules, results, and suppression records.
package sarif_fx

// CSR is a published snapshot; writers must copy-on-write.
// saga:frozen
type CSR struct {
	Offsets []int
}

// stamp mutates a published snapshot in place.
func stamp(c *CSR) {
	c.Offsets[0] = 1
}

// hot allocates a fresh buffer per call.
// saga:hotpath
func hot(n int) []int {
	return make([]int, n)
}

// pooled appends into a caller-reserved buffer.
// saga:hotpath
func pooled(dst []int) []int {
	return append(dst, 1) // saga:allow hotalloc -- fixture: caller reserves capacity, append cannot grow
}
