package main

import (
	"encoding/json"
	"os"

	"sagabench/internal/analysis"
)

// Minimal SARIF 2.1.0 writer so CI can upload sagavet findings as a
// code-scanning artifact. Suppressed findings are emitted with a
// suppression record carrying the audit reason, matching how saga:allow
// comments are meant to be reviewed.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(path string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		if d.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.SuppressReason}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sagavet", Version: version, Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
