// Command sagavet runs SAGA-Bench's repo-specific static analyzers (see
// internal/analysis): lock discipline, chunk ownership, atomic/plain
// mixing, replay determinism, goroutine panic capture, durable error
// hygiene, pin lifecycle balance, frozen-snapshot immutability, hot-path
// allocation discipline, and retry/fault error classification.
//
// Standalone:
//
//	go run ./cmd/sagavet ./...
//	go run ./cmd/sagavet -analyzers lockheld,determinism ./internal/durable
//
// As a vet tool (per-package, driven by the go command):
//
//	go build -o /tmp/sagavet ./cmd/sagavet
//	go vet -vettool=/tmp/sagavet ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sagabench/internal/analysis"
)

const version = "v1.0.0"

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("sagavet", flag.ContinueOnError)
	var (
		analyzersFlag = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		reportPath    = fs.String("report", "", "also write findings to this text file")
		sarifPath     = fs.String("sarif", "", "also write findings to this SARIF 2.1.0 file")
		showAllowed   = fs.Bool("show-allowed", false, "also print findings suppressed by saga:allow, with their audit reasons")
		listFlag      = fs.Bool("list", false, "list the analyzers and exit")
		vFlag         = fs.String("V", "", "version protocol for go vet -vettool (prints id and exits)")
		flagsFlag     = fs.Bool("flags", false, "flag-discovery protocol for go vet -vettool (prints JSON and exits)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *vFlag != "" {
		// The go command fingerprints vet tools via `-V=full`.
		fmt.Fprintf(out, "sagavet version %s\n", version)
		return 0
	}
	if *flagsFlag {
		// The go command asks vet tools for their analyzer flags; sagavet
		// exposes none through the vet driver (its own flags are for
		// standalone use only).
		fmt.Fprintln(out, "[]")
		return 0
	}
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Fprintf(out, "%-17s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := analysis.ByName(*analyzersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sagavet:", err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVettool(rest[0], selected)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{}, rest...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sagavet:", err)
		return 2
	}
	diags := analysis.RunAnalyzers(pkgs, selected)

	var lines []string
	failing := 0
	for _, d := range diags {
		if d.Suppressed {
			if *showAllowed {
				fmt.Fprintf(out, "%s: allowed: %s (%s) -- %s\n", d.Pos, d.Message, d.Analyzer, d.SuppressReason)
			}
			continue
		}
		failing++
		line := d.String()
		lines = append(lines, line)
		fmt.Fprintln(out, line)
	}
	if *reportPath != "" {
		if err := writeTextReport(*reportPath, lines); err != nil {
			fmt.Fprintln(os.Stderr, "sagavet:", err)
			return 2
		}
	}
	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, selected, diags); err != nil {
			fmt.Fprintln(os.Stderr, "sagavet:", err)
			return 2
		}
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "sagavet: %d finding(s)\n", failing)
		return 1
	}
	return 0
}

func writeTextReport(path string, lines []string) error {
	body := strings.Join(lines, "\n")
	if body != "" {
		body += "\n"
	}
	return os.WriteFile(path, []byte(body), 0o644)
}
