package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSARIFGolden runs a multi-analyzer pass over the fixture package and
// compares the SARIF output, with the machine-specific path prefix
// normalized away, against a checked-in golden file. Set UPDATE_GOLDEN=1
// to regenerate.
func TestSARIFGolden(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "out.sarif")
	code, _ := capture(t, "-analyzers", "frozenwrite,hotalloc", "-sarif", sarifPath, "testdata/sarif_fx")
	if code != 1 {
		t.Fatalf("run: code %d, want 1 (fixture has live findings)", code)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.ReplaceAll(string(data), abs, "TESTDATA")

	goldenPath := filepath.Join("testdata", "golden.sarif")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("SARIF output differs from golden (run with UPDATE_GOLDEN=1 to regenerate):\n%s", got)
	}
}

// TestSARIFRoundTrip re-reads the emitted SARIF as JSON and checks the
// structural invariants CI's upload step depends on: schema version,
// one rule per selected analyzer, and a suppression record that carries
// the saga:allow audit reason.
func TestSARIFRoundTrip(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "out.sarif")
	if code, _ := capture(t, "-analyzers", "frozenwrite,hotalloc", "-sarif", sarifPath, "testdata/sarif_fx"); code != 1 {
		t.Fatalf("run: code %d, want 1", code)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if len(run.Tool.Driver.Rules) != 2 {
		t.Errorf("%d rules, want 2 (one per selected analyzer)", len(run.Tool.Driver.Rules))
	}
	var live, suppressed int
	for _, r := range run.Results {
		if r.RuleID == "" || r.Message.Text == "" || len(r.Locations) != 1 {
			t.Errorf("malformed result: %+v", r)
		}
		if loc := r.Locations[0].PhysicalLocation; loc.Region.StartLine == 0 || loc.ArtifactLocation.URI == "" {
			t.Errorf("result missing location info: %+v", r)
		}
		if len(r.Suppressions) > 0 {
			suppressed++
			if r.Suppressions[0].Kind != "inSource" || !strings.Contains(r.Suppressions[0].Justification, "caller reserves capacity") {
				t.Errorf("suppression lost its audit reason: %+v", r.Suppressions)
			}
		} else {
			live++
		}
	}
	if live != 2 || suppressed != 1 {
		t.Errorf("%d live + %d suppressed results, want 2 + 1", live, suppressed)
	}
}

// TestOverlappingPatternsDedup passes the same package through two
// overlapping pattern spellings and checks each diagnostic is printed
// exactly once, in deterministic sorted order.
func TestOverlappingPatternsDedup(t *testing.T) {
	code, out := capture(t, "-analyzers", "frozenwrite,hotalloc", "testdata/sarif_fx", "testdata/sarif_fx/", "testdata/...")
	if code != 1 {
		t.Fatalf("run: code %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d findings, want 2 (duplicates must collapse):\n%s", len(lines), out)
	}
	seen := map[string]bool{}
	for _, l := range lines {
		if seen[l] {
			t.Errorf("duplicate diagnostic: %s", l)
		}
		seen[l] = true
	}
	if !(lines[0] < lines[1]) {
		t.Errorf("diagnostics not sorted:\n%s", out)
	}
}
