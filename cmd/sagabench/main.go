// Command sagabench regenerates the paper's tables and figures.
//
// Examples:
//
//	sagabench -experiment table3           # best combo per alg/dataset
//	sagabench -experiment fig9 -machdiv 64 # architecture utilization
//	sagabench -experiment all -profile tiny -repeats 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sagabench/internal/bench"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/telemetry"
	"sagabench/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", experimentHelp())
		profile    = flag.String("profile", "default", "dataset scale: tiny, default, large")
		threads    = flag.Int("threads", 4, "worker threads")
		view       = flag.Bool("compute-view", false, "run every compute phase on the incrementally rebuilt flat CSR mirror")
		serveQ     = flag.Int("serve-queries", 0, "serve non-blocking queries during every measured run with this many concurrent readers (0 disables)")
		repeats    = flag.Int("repeats", 1, "stream repetitions (paper uses 3)")
		seed       = flag.Int64("seed", 42, "generator seed")
		machdiv    = flag.Int("machdiv", 128, "simulated-machine capacity divisor for fig9/fig10")
		outdir     = flag.String("outdir", "", "also write the experiment output to <outdir>/<experiment>.txt")
		csvdir     = flag.String("csv", "", "write each experiment's data series as CSV files into this directory")

		listen      = flag.String("listen", "", "serve /metrics (Prometheus + expvar), /debug/pprof, and /trace on this address while experiments run, e.g. :8090")
		events      = flag.String("events", "", "write one JSONL telemetry event per measured batch to this file")
		metricsDump = flag.Bool("metrics-dump", false, "print the final metrics in Prometheus text format after the run")

		traceOut    = flag.String("trace-out", "", "write the flight-recorder ring of the measured runs as Chrome trace-event JSON (Perfetto-loadable) to this file after the experiments")
		traceFlight = flag.Int("trace-flight", 16, "flight-recorder capacity in complete batch traces with -trace-out")
		pprofLabels = flag.Bool("pprof-labels", false, "run pipeline phases under pprof labels so -listen CPU profiles attribute samples to stages")

		faultSpec  = flag.String("fault-schedule", "", "override the faults experiment's fault schedule, e.g. slow(wal-fsync,0.3,2ms);enospc(wal-append,40) (see internal/fault; seeded by -seed)")
		maxQueue   = flag.Int("max-queue", 0, "supervised ingest queue bound for the faults experiment (default 8)")
		degradePol = flag.String("degrade-policy", "", "restrict the faults experiment to the baseline plus this one policy: fail, degrade, read-only")
		healthDir  = flag.String("health-dir", "", "write one JSON health report per faults-experiment run into this directory (CI uploads them as artifacts)")
	)
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOut != "" || *pprofLabels {
		tracer = trace.New(trace.Config{Flight: *traceFlight, PprofLabels: *pprofLabels})
	}

	var rec *telemetry.Recorder
	if *listen != "" || *events != "" || *metricsDump {
		reg := telemetry.NewRegistry()
		var sink *telemetry.EventSink
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sagabench:", err)
				os.Exit(1)
			}
			sink = telemetry.NewEventSink(f)
		}
		rec = telemetry.NewRecorder(reg, sink)
		if *listen != "" {
			srv, err := telemetry.ListenAndServe(*listen, reg, tracer)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sagabench:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "sagabench: telemetry on http://%s (/metrics, /debug/pprof/, /trace)\n", srv.Addr())
		}
	}

	var out io.Writer = os.Stdout
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sagabench:", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*outdir, *experiment+".txt"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sagabench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	h := bench.New(bench.Options{
		Profile:       gen.Profile(*profile),
		Threads:       *threads,
		Repeats:       *repeats,
		Seed:          *seed,
		MachineDiv:    *machdiv,
		Out:           out,
		CSVDir:        *csvdir,
		Telemetry:     rec,
		Tracer:        tracer,
		ComputeView:   *view,
		QueryReaders:  *serveQ,
		FaultSchedule: *faultSpec,
		MaxQueue:      *maxQueue,
		DegradePolicy: *degradePol,
		HealthDir:     *healthDir,
	})
	start := time.Now()
	if err := h.RunExperiment(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "sagabench:", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %s]\n", *experiment, time.Since(start).Round(time.Millisecond))

	if rec != nil {
		if err := rec.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sagabench:", err)
			os.Exit(1)
		}
		if *metricsDump {
			rec.Registry().WritePrometheus(os.Stdout)
		}
	}
	if *traceOut != "" {
		if err := tracer.DumpChromeFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "sagabench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sagabench: wrote flight-recorder trace to %s (load at ui.perfetto.dev)\n", *traceOut)
	}
}

func experimentHelp() string {
	s := "experiment to run: all"
	for _, e := range bench.Experiments {
		s += ", " + e.ID
	}
	return s
}
