// Command sagafuzz is the differential fuzz driver: it generates a
// deterministic, seed-driven edge stream and replays it through every
// selected data structure, cross-checking full adjacency against the
// sequential oracle after every batch and every (algorithm, model) engine
// against the sequential reference implementations.
//
// A clean sweep exits 0. On divergence it minimizes the failing stream
// (drop whole batches, then single edges) and writes a replayable repro:
//
//	sagafuzz -seed 1 -batches 50              # the sweep
//	sagafuzz -replay sagafuzz.repro           # re-run a minimized repro
//	sagafuzz -crash                           # kill/recover durability soak
//
// -inject plants a deliberate defect in the structures under test to
// demonstrate the catch-and-shrink loop end to end (see -help).
//
// -crash switches to the durability soak (internal/crashloop): a durable
// pipeline is killed at every registered crash point in rotation — with
// optional torn writes, bit flips, and poison batches layered on — and
// the state recovered from disk is diffed against the sequential oracle.
//
// Two invariants the fuzzer used to probe for at runtime are now enforced
// statically by sagavet (cmd/sagavet, internal/analysis) and need no
// dynamic check: same -seed = same stream (the stream generator lives in
// a saga:deterministic package, so wall-clock reads, unseeded randomness,
// and map-ordered iteration are build errors), and worker panics cannot
// kill the sweep before the quarantine sees them (every goroutine launch
// in the saga:paniccapture packages must capture and re-raise).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sagabench/internal/compute"
	"sagabench/internal/crashloop"
	"sagabench/internal/crosscheck"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/durable"
	"sagabench/internal/graph"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "stream generation seed (same seed = same stream, statically enforced by sagavet's determinism analyzer)")
		batches   = flag.Int("batches", 50, "number of stream steps")
		batchSize = flag.Int("batch-size", 400, "edges per step")
		nodes     = flag.Int("nodes", 96, "vertex ID space (small = dense collisions)")
		directed  = flag.Bool("directed", true, "stream directedness")
		deletes   = flag.Bool("deletes", true, "mix deletion batches into the stream")
		threads   = flag.Int("threads", 4, "worker threads for update and compute phases")
		dsList    = flag.String("ds", "", "comma-separated data structures (default: all registered)")
		algList   = flag.String("algs", "", "comma-separated algorithms (default: all six)")
		modList   = flag.String("models", "", "comma-separated compute models: fs,inc (default: both)")
		topoOnly  = flag.Bool("topology-only", false, "skip the compute engines, check adjacency only")
		replay    = flag.String("replay", "", "replay a repro file instead of fuzzing")
		out       = flag.String("out", "sagafuzz.repro", "where to write the minimized repro on failure")
		inject    = flag.String("inject", "", "plant a defect: drop-edge:SRC:DST | degree-cap:CAP | stale-weight")

		crash      = flag.Bool("crash", false, "run the durability kill/recover soak instead of fuzzing")
		crashDir   = flag.String("crash-dir", "", "durability directory for -crash (default: temp dir, kept on failure)")
		crashDS    = flag.String("crash-ds", "adjshared", "data structure for -crash")
		crashAlg   = flag.String("crash-alg", "pr", "algorithm for -crash")
		crashModel = flag.String("crash-model", "inc", "compute model for -crash: fs or inc")
		crashFsync = flag.String("crash-fsync", "interval", "WAL fsync policy for -crash: always, interval, never")
		noFaults   = flag.Bool("crash-no-faults", false, "disable torn writes, bit flips, and poison injection in -crash")
		diskFaults = flag.String("crash-disk-faults", "", "fault-schedule spec layered under the kills, e.g. slow(wal-fsync,0.3,2ms);enospc(wal-append,5);eio(ckpt-rename,1)")
		verifyEach = flag.Bool("crash-verify-recoveries", false, "diff recovered state against the oracle after every recovery, not only at the end")
		noKills    = flag.Bool("crash-no-kills", false, "disable the rotating crash points, leaving -crash-disk-faults as the only death source")
	)
	flag.Parse()

	fault, err := parseFault(*inject)
	if err != nil {
		fatalf("bad -inject: %v", err)
	}

	if *crash {
		os.Exit(runCrash(crashloop.Options{
			Seed:               *seed,
			Batches:            *batches,
			BatchSize:          *batchSize,
			NumNodes:           *nodes,
			Directed:           *directed,
			Deletes:            *deletes,
			DS:                 *crashDS,
			Alg:                *crashAlg,
			Model:              compute.Model(*crashModel),
			Threads:            *threads,
			Dir:                *crashDir,
			Fsync:              durable.FsyncPolicy(*crashFsync),
			TornWrites:         !*noFaults,
			BitFlips:           !*noFaults,
			Poison:             !*noFaults,
			DiskFaults:         *diskFaults,
			VerifyEachRecovery: *verifyEach,
			NoKills:            *noKills,
		}))
	}

	if *replay != "" {
		os.Exit(runReplay(*replay, fault, *threads))
	}

	mk := injector(fault, *directed, *threads)

	cfg := crosscheck.Config{
		Stream: crosscheck.StreamConfig{
			Seed:      *seed,
			Batches:   *batches,
			BatchSize: *batchSize,
			NumNodes:  *nodes,
			Directed:  *directed,
			Deletes:   *deletes,
		},
		Threads:       *threads,
		Structures:    validStructures(splitList(*dsList)),
		Algorithms:    splitList(*algList),
		TopologyOnly:  *topoOnly,
		MakeStructure: mk,
	}
	for _, m := range splitList(*modList) {
		switch m {
		case string(compute.FS), string(compute.INC):
			cfg.Models = append(cfg.Models, compute.Model(m))
		default:
			fatalf("unknown model %q (want fs or inc)", m)
		}
	}

	stream := crosscheck.NewStream(cfg.Stream)
	adds, dels := stream.NumEdges()
	rep := crosscheck.Replay(cfg, stream)
	fmt.Printf("sagafuzz: seed %d: %d batches (%d adds, %d dels) x %d structures: %d topology checks, %d value checks\n",
		*seed, rep.Batches, adds, dels, len(rep.Structures), rep.TopologyChecks, rep.ValueChecks)
	if rep.OK() {
		fmt.Println("sagafuzz: PASS: all structures and engines agree with the sequential oracle")
		return
	}

	fmt.Printf("sagafuzz: FAIL: %d divergence(s):\n", len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Printf("  %s\n", f)
	}
	first := rep.Failures[0]
	label := "topology"
	if first.Kind != "topology" {
		label = fmt.Sprintf("%s/%s", first.Alg, first.Model)
	}
	fmt.Printf("sagafuzz: minimizing %s failure on %s...\n", label, first.DS)
	repro := crosscheck.MinimizeFailure(cfg, stream, first)
	madds, mdels := repro.Stream.NumEdges()
	fmt.Printf("sagafuzz: minimized to %d batches / %d adds / %d dels\n", len(repro.Stream), madds, mdels)
	if err := repro.WriteFile(*out); err != nil {
		fatalf("writing repro: %v", err)
	}
	// The repro stores the stream, not the planted defect: replaying an
	// -inject run needs the same -inject spec again.
	rerun := fmt.Sprintf("sagafuzz -replay %s", *out)
	if *inject != "" {
		rerun = fmt.Sprintf("sagafuzz -replay %s -inject %s", *out, *inject)
	}
	fmt.Printf("sagafuzz: repro written to %s (re-run: %s)\n", *out, rerun)
	os.Exit(1)
}

// runCrash drives the kill/recover soak and reports the outcome.
func runCrash(opts crashloop.Options) int {
	opts.Logf = func(format string, args ...any) {
		fmt.Printf("sagafuzz: "+format+"\n", args...)
	}
	res, err := crashloop.Run(opts)
	if err != nil {
		fatalf("crash soak: %v", err)
	}
	fmt.Printf("sagafuzz: %d batches through %d kill/recover cycles (%d recoveries, %d torn tails, %d bit flips, %d quarantines)\n",
		res.Batches, res.Cycles, res.Recoveries, res.TornTails, res.BitFlips, len(res.PoisonFiles))
	for _, pt := range durable.CrashPoints {
		if n := res.Crashes[pt]; n > 0 {
			fmt.Printf("sagafuzz:   crashed %2dx at %s\n", n, pt)
		}
	}
	if res.DiskKills > 0 || len(res.Injections) > 0 {
		fmt.Printf("sagafuzz:   disk faults: %d generation(s) killed, injections %s\n",
			res.DiskKills, strings.Join(res.Injections, " "))
	}
	if res.RecoveryOK > 0 {
		fmt.Printf("sagafuzz:   %d recoveries verified against the oracle\n", res.RecoveryOK)
	}
	for _, pf := range res.PoisonFiles {
		fmt.Printf("sagafuzz:   quarantined: %s (replay: sagafuzz -replay %s)\n", pf, pf)
	}
	if res.OK() {
		fmt.Println("sagafuzz: PASS: recovered state matches the sequential oracle after every crash")
		return 0
	}
	fmt.Printf("sagafuzz: FAIL: %d divergence(s) after recovery:\n", len(res.Failures))
	for _, f := range res.Failures {
		fmt.Printf("  %s\n", f)
	}
	if res.KeepArtifact {
		fmt.Printf("sagafuzz: durability directory kept for inspection: %s\n", res.Dir)
	}
	return 1
}

func runReplay(path string, fault *crosscheck.FaultSpec, threads int) int {
	r, err := crosscheck.ReadReproFile(path)
	if err != nil {
		fatalf("reading repro: %v", err)
	}
	what := "topology"
	if r.Alg != "" {
		what = fmt.Sprintf("%s/%s", r.Alg, r.Model)
	}
	radds, rdels := r.Stream.NumEdges()
	fmt.Printf("sagafuzz: replaying %s: %s on %s, %d batches / %d adds / %d dels\n",
		path, what, r.DS, len(r.Stream), radds, rdels)
	rep := r.Replay(injector(fault, r.Directed, threads))
	if rep.OK() {
		fmt.Println("sagafuzz: PASS: repro no longer reproduces")
		return 0
	}
	fmt.Printf("sagafuzz: FAIL: still reproduces:\n")
	for _, f := range rep.Failures {
		fmt.Printf("  %s\n", f)
	}
	return 1
}

// parseFault parses -inject; an empty spec returns nil (no defect).
func parseFault(spec string) (*crosscheck.FaultSpec, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	fs := &crosscheck.FaultSpec{}
	switch parts[0] {
	case string(crosscheck.FaultDropEdge):
		if len(parts) != 3 {
			return nil, fmt.Errorf("want drop-edge:SRC:DST")
		}
		src, err1 := strconv.ParseUint(parts[1], 10, 32)
		dst, err2 := strconv.ParseUint(parts[2], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad vertex in %q", spec)
		}
		fs.Fault = crosscheck.FaultDropEdge
		fs.Src, fs.Dst = graph.NodeID(src), graph.NodeID(dst)
	case string(crosscheck.FaultDegreeCap):
		if len(parts) != 2 {
			return nil, fmt.Errorf("want degree-cap:CAP")
		}
		capv, err := strconv.Atoi(parts[1])
		if err != nil || capv <= 0 {
			return nil, fmt.Errorf("bad cap in %q", spec)
		}
		fs.Fault = crosscheck.FaultDegreeCap
		fs.Cap = capv
	case string(crosscheck.FaultStaleWeight):
		if len(parts) != 1 {
			return nil, fmt.Errorf("stale-weight takes no arguments")
		}
		fs.Fault = crosscheck.FaultStaleWeight
	default:
		return nil, fmt.Errorf("unknown fault %q", parts[0])
	}
	return fs, nil
}

// injector builds the structure factory for a parsed fault; nil fault
// returns nil so the harness uses plain registry construction.
func injector(fault *crosscheck.FaultSpec, directed bool, threads int) func(string) ds.Graph {
	if fault == nil {
		return nil
	}
	return func(name string) ds.Graph {
		g, err := ds.New(name, ds.Config{Directed: directed, Threads: threads})
		if err != nil {
			fatalf("constructing %s: %v", name, err)
		}
		return crosscheck.InjectFault(g, *fault)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// validStructures rejects unknown -ds names before the sweep starts, so a
// typo fails with the registry listing instead of a spurious divergence.
func validStructures(names []string) []string {
	for _, name := range names {
		known := false
		for _, have := range ds.Names() {
			if name == have {
				known = true
				break
			}
		}
		if !known {
			fatalf("unknown -ds %q (have %v)", name, ds.Names())
		}
	}
	return names
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sagafuzz: "+format+"\n", args...)
	os.Exit(1)
}
