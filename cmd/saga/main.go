// Command saga runs one streaming-graph-analytics configuration — a
// dataset, a data structure, an algorithm, and a compute model — through
// the SAGA-Bench pipeline and reports per-stage update, compute, and total
// batch-processing latencies (paper Equation 1) with 95% confidence
// intervals.
//
// Example:
//
//	saga -dataset lj -ds adjshared -alg pr -model inc -threads 8
package main

import (
	"flag"
	"fmt"
	"os"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/elio"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
	"sagabench/internal/telemetry"
)

func main() {
	var (
		dataset = flag.String("dataset", "lj", fmt.Sprintf("dataset %v", gen.DatasetNames()))
		input   = flag.String("input", "", "edge-list file to stream instead of a synthetic dataset (src dst [weight] lines)")
		batch   = flag.Int("batch", 1000, "batch size for -input streams")
		shuffle = flag.Bool("shuffle", true, "shuffle -input streams before batching (paper methodology)")
		undir   = flag.Bool("undirected", false, "treat the -input stream as undirected")
		profile = flag.String("profile", "default", "dataset scale: tiny, default, large")
		dsName  = flag.String("ds", "adjshared", fmt.Sprintf("data structure %v", ds.Names()))
		alg     = flag.String("alg", "pr", fmt.Sprintf("algorithm %v", compute.AlgNames()))
		model   = flag.String("model", "inc", "compute model: fs or inc")
		threads = flag.Int("threads", 4, "worker threads for both phases")
		repeats = flag.Int("repeats", 1, "full-stream repetitions (paper uses 3)")
		seed    = flag.Int64("seed", 42, "generator seed")
		source  = flag.Uint("source", 0, "source vertex for bfs/sssp/sswp")
		verbose = flag.Bool("v", false, "print every batch latency")

		listen      = flag.String("listen", "", "serve /metrics (Prometheus + expvar) and /debug/pprof on this address during the run, e.g. :8090")
		events      = flag.String("events", "", "write one JSONL telemetry event per batch to this file")
		metricsDump = flag.Bool("metrics-dump", false, "print the final metrics in Prometheus text format after the run")
	)
	flag.Parse()

	var rec *telemetry.Recorder
	if *listen != "" || *events != "" || *metricsDump {
		reg := telemetry.NewRegistry()
		var sink *telemetry.EventSink
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fatal(err)
			}
			sink = telemetry.NewEventSink(f)
		}
		rec = telemetry.NewRecorder(reg, sink)
		if *listen != "" {
			srv, err := telemetry.ListenAndServe(*listen, reg)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "saga: telemetry on http://%s (/metrics, /debug/pprof/)\n", srv.Addr())
		}
	}

	pc := core.PipelineConfig{
		DataStructure: *dsName,
		Algorithm:     *alg,
		Model:         compute.Model(*model),
		Threads:       *threads,
		Compute:       compute.Options{Source: graph.NodeID(*source)},
		Telemetry:     rec,
	}
	var onBatch func(b int, edges graph.Batch, p *core.Pipeline, lat core.BatchLatency)
	if *verbose {
		onBatch = func(b int, edges graph.Batch, p *core.Pipeline, lat core.BatchLatency) {
			fmt.Printf("batch %4d: edges=%6d nodes=%8d update=%-12s compute=%-12s total=%s\n",
				b, len(edges), p.Graph().NumNodes(), lat.Update, lat.Compute, lat.Total())
		}
	}
	var res *core.RunResult
	var err error
	label := *dataset
	if *input != "" {
		label = *input
		f, ferr := os.Open(*input)
		if ferr != nil {
			fatal(ferr)
		}
		edges, rerr := elio.Read(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
		if *shuffle {
			gen.Shuffle(edges, *seed)
		}
		pc.Directed = !*undir
		res, err = core.RunStream(core.StreamConfig{
			PipelineConfig: pc,
			Edges:          edges,
			BatchSize:      *batch,
			Repeats:        *repeats,
			OnBatch:        onBatch,
		})
	} else {
		spec, serr := gen.Dataset(*dataset, gen.Profile(*profile))
		if serr != nil {
			fatal(serr)
		}
		res, err = core.Run(core.RunConfig{
			PipelineConfig: pc,
			Dataset:        spec,
			Seed:           *seed,
			Repeats:        *repeats,
			OnBatch:        onBatch,
		})
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset=%s ds=%s alg=%s model=%s threads=%d batches=%d repeats=%d\n",
		label, *dsName, *alg, *model, *threads, res.BatchCount, *repeats)
	fmt.Printf("%-8s %14s %14s %14s\n", "stage", "update", "compute", "total")
	names := [3]string{"P1", "P2", "P3"}
	upd := res.StageSummaries(core.MetricUpdate)
	cmp := res.StageSummaries(core.MetricCompute)
	tot := res.StageSummaries(core.MetricTotal)
	for i := range names {
		fmt.Printf("%-8s %14s %14s %14s\n", names[i], upd[i], cmp[i], tot[i])
	}
	share := res.UpdateShare()
	fmt.Printf("update share of batch latency: P1=%.0f%% P2=%.0f%% P3=%.0f%%\n",
		100*share[0], 100*share[1], 100*share[2])

	if rec != nil {
		if err := rec.Close(); err != nil {
			fatal(err)
		}
		if *events != "" {
			fmt.Fprintf(os.Stderr, "saga: wrote batch events to %s\n", *events)
		}
		if *metricsDump {
			rec.Registry().WritePrometheus(os.Stdout)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saga:", err)
	os.Exit(1)
}
