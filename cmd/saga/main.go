// Command saga runs one streaming-graph-analytics configuration — a
// dataset, a data structure, an algorithm, and a compute model — through
// the SAGA-Bench pipeline and reports per-stage update, compute, and total
// batch-processing latencies (paper Equation 1) with 95% confidence
// intervals.
//
// Example:
//
//	saga -dataset lj -ds adjshared -alg pr -model inc -threads 8
//
// With -wal DIR the run becomes a durable service stream: every batch is
// write-ahead logged before it is applied, checkpoints are written
// periodically, and a restart with the same -wal resumes where the
// previous process stopped — cleanly, by SIGINT/SIGTERM, or by crash.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/durable"
	"sagabench/internal/elio"
	"sagabench/internal/fault"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
	"sagabench/internal/telemetry"
	"sagabench/internal/trace"
)

func main() {
	var (
		dataset = flag.String("dataset", "lj", fmt.Sprintf("dataset %v", gen.DatasetNames()))
		input   = flag.String("input", "", "edge-list file to stream instead of a synthetic dataset (src dst [weight] lines)")
		batch   = flag.Int("batch", 1000, "batch size for -input streams")
		shuffle = flag.Bool("shuffle", true, "shuffle -input streams before batching (paper methodology)")
		undir   = flag.Bool("undirected", false, "treat the -input stream as undirected")
		profile = flag.String("profile", "default", "dataset scale: tiny, default, large")
		dsName  = flag.String("ds", "adjshared", fmt.Sprintf("data structure %v", ds.Names()))
		alg     = flag.String("alg", "pr", fmt.Sprintf("algorithm %v", compute.AlgNames()))
		model   = flag.String("model", "inc", "compute model: fs or inc")
		threads = flag.Int("threads", 4, "worker threads for both phases")
		view    = flag.Bool("compute-view", false, "maintain an incrementally rebuilt flat CSR mirror and run the compute phase on it (GraphTango-style hybrid)")
		repeats = flag.Int("repeats", 1, "full-stream repetitions (paper uses 3)")
		seed    = flag.Int64("seed", 42, "generator seed")
		source  = flag.Uint("source", 0, "source vertex for bfs/sssp/sswp")
		verbose = flag.Bool("v", false, "print every batch latency")

		listen      = flag.String("listen", "", "serve /metrics (Prometheus + expvar), /debug/pprof, and /trace on this address during the run, e.g. :8090")
		events      = flag.String("events", "", "write one JSONL telemetry event per batch to this file")
		metricsDump = flag.Bool("metrics-dump", false, "print the final metrics in Prometheus text format after the run")

		traceOn     = flag.Bool("trace", false, "record a span tree per batch into the flight-recorder ring (dumped on quarantine, served at /trace with -listen)")
		traceFlight = flag.Int("trace-flight", 16, "flight-recorder capacity in complete batch traces")
		traceOut    = flag.String("trace-out", "", "write the flight-recorder ring as Chrome trace-event JSON (Perfetto-loadable) to this file when the run ends; implies -trace")
		traceJSONL  = flag.String("trace-jsonl", "", "stream every finished batch trace as one JSONL line to this file; implies -trace")
		pprofLabels = flag.Bool("pprof-labels", false, "run pipeline phases under pprof labels (batch/stage/ds/alg/model) so CPU profiles attribute samples to stages; implies -trace")

		serveQ   = flag.Bool("serve-queries", false, "publish an immutable epoch snapshot after every batch and serve concurrent neighborhood/value reads from it while the stream runs (non-blocking queries)")
		qReaders = flag.Int("query-readers", 4, "concurrent reader goroutines with -serve-queries")

		walDir    = flag.String("wal", "", "durability directory: write-ahead log every batch, checkpoint periodically, recover and resume on restart")
		fsync     = flag.String("fsync", "interval", "WAL fsync policy with -wal: always, interval, never")
		ckptEvery = flag.Int("checkpoint-every", 64, "checkpoint every N batches with -wal (negative disables periodic checkpoints)")

		faultSpec  = flag.String("fault-schedule", "", "inject I/O and phase faults from a seed-deterministic schedule, e.g. slow(wal-fsync,0.3,2ms);enospc(wal-append,120);stall(compute,40,3s) (see internal/fault; seeded by -seed)")
		degradePol = flag.String("degrade-policy", "", "reaction to a permanent durability fault with -wal: fail (default; the batch errors out), degrade (keep applying in memory, suspend the WAL), read-only (refuse ingest, keep serving queries)")
		maxQueue   = flag.Int("max-queue", 0, "run the -wal pipeline under the supervisor with a bounded ingest queue of N batches, per-phase watchdog deadlines, and panic-isolated restart from the last durable state (0 = direct synchronous ingest)")
		shed       = flag.Bool("shed", false, "with -max-queue, drop the newest batch when the queue is full instead of applying backpressure")
		healthOut  = flag.String("health-out", "", "write the exit health report (JSON) to this file; it is always printed to stderr when the run ends in any state other than healthy")
	)
	flag.Parse()

	sched, err := fault.ParseSchedule(*faultSpec, *seed)
	if err != nil {
		fatal(err)
	}
	if (*degradePol != "" || *maxQueue > 0) && *walDir == "" {
		fatal(fmt.Errorf("-degrade-policy and -max-queue require -wal (they govern the durable service path)"))
	}

	var tracer *trace.Tracer
	var traceSink *trace.Sink
	if *traceOn || *traceOut != "" || *traceJSONL != "" || *pprofLabels {
		if *traceJSONL != "" {
			f, err := os.Create(*traceJSONL)
			if err != nil {
				fatal(err)
			}
			traceSink = trace.NewSink(f)
		}
		tracer = trace.New(trace.Config{
			DS: *dsName, Alg: *alg, Model: *model,
			Flight:      *traceFlight,
			Spans:       traceSink,
			PprofLabels: *pprofLabels,
		})
	}

	var rec *telemetry.Recorder
	if *listen != "" || *events != "" || *metricsDump {
		reg := telemetry.NewRegistry()
		var sink *telemetry.EventSink
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fatal(err)
			}
			sink = telemetry.NewEventSink(f)
		}
		rec = telemetry.NewRecorder(reg, sink)
		if *listen != "" {
			srv, err := telemetry.ListenAndServe(*listen, reg, tracer)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "saga: telemetry on http://%s (/metrics, /debug/pprof/, /trace)\n", srv.Addr())
		}
	}

	pc := core.PipelineConfig{
		DataStructure: *dsName,
		Algorithm:     *alg,
		Model:         compute.Model(*model),
		Threads:       *threads,
		ComputeView:   *view,
		ServeQueries:  *serveQ,
		Compute:       compute.Options{Source: graph.NodeID(*source)},
		Telemetry:     rec,
		Tracer:        tracer,
		DegradePolicy: core.DegradePolicy(*degradePol),
	}
	if sched != nil {
		pc.Faults = sched
	}
	// With -serve-queries, each measured pipeline gets a concurrent reader
	// fleet pinned to its published epochs; the per-run stats accumulate
	// for the summary line after the latency table.
	var qstats []core.QueryLoadStats
	var onPipeline func(*core.Pipeline) func()
	if *serveQ {
		onPipeline = func(p *core.Pipeline) func() {
			ql, qerr := core.StartQueryLoad(p, core.QueryLoadConfig{Readers: *qReaders, Seed: *seed})
			if qerr != nil {
				fatal(qerr)
			}
			return func() { qstats = append(qstats, ql.Stop()) }
		}
	}
	var onBatch func(b int, edges graph.Batch, p *core.Pipeline, lat core.BatchLatency)
	if *verbose {
		onBatch = func(b int, edges graph.Batch, p *core.Pipeline, lat core.BatchLatency) {
			fmt.Printf("batch %4d: edges=%6d nodes=%8d update=%-12s compute=%-12s total=%s\n",
				b, len(edges), p.Graph().NumNodes(), lat.Update, lat.Compute, lat.Total())
		}
	}

	// SIGINT/SIGTERM initiate a graceful shutdown: the durable stream loop
	// stops between batches (flushing the WAL and writing a final
	// checkpoint on Close); a measurement run flushes and closes the
	// telemetry event log before exiting.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)

	var res *core.RunResult
	var healthRep *core.HealthReport
	label := *dataset
	var edges []graph.Edge
	batchSize := *batch
	if *input != "" {
		label = *input
		f, ferr := os.Open(*input)
		if ferr != nil {
			fatal(ferr)
		}
		edges, err = elio.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *shuffle {
			gen.Shuffle(edges, *seed)
		}
		pc.Directed = !*undir
	} else {
		spec, serr := gen.Dataset(*dataset, gen.Profile(*profile))
		if serr != nil {
			fatal(serr)
		}
		pc.Directed = spec.Directed
		if pc.MaxNodesHint == 0 {
			pc.MaxNodesHint = spec.NumNodes
		}
		edges = spec.Generate(*seed)
		batchSize = spec.BatchSize
	}

	if *walDir != "" {
		dcfg := durable.Config{
			Dir:             *walDir,
			Fsync:           durable.FsyncPolicy(*fsync),
			CheckpointEvery: *ckptEvery,
		}
		if sched != nil {
			// One schedule instance feeds both layers so occurrence
			// counts are shared between WAL/checkpoint and phase ops.
			dcfg.IO = sched
		}
		if *maxQueue > 0 {
			healthRep, err = runSupervised(pc, dcfg, edges, batchSize, *maxQueue, *shed, onPipeline, sigC)
		} else {
			res, healthRep, err = runDurable(pc, dcfg, edges, batchSize, *repeats, onBatch, onPipeline, sigC)
		}
	} else {
		go func() {
			<-sigC
			fmt.Fprintln(os.Stderr, "saga: interrupted, closing telemetry")
			rec.Flush()
			rec.Close()
			os.Exit(130)
		}()
		res, err = core.RunStream(core.StreamConfig{
			PipelineConfig: pc,
			Edges:          edges,
			BatchSize:      batchSize,
			Repeats:        *repeats,
			OnBatch:        onBatch,
			OnPipeline:     onPipeline,
		})
	}
	if err != nil {
		// A dying durable run still owes its health report (and the
		// -health-out artifact) before the error exit.
		emitHealth(healthRep, *healthOut)
		fatal(err)
	}

	if res != nil {
		fmt.Printf("dataset=%s ds=%s alg=%s model=%s threads=%d batches=%d repeats=%d\n",
			label, *dsName, *alg, *model, *threads, res.BatchCount, len(res.Update))
		fmt.Printf("%-8s %14s %14s %14s\n", "stage", "update", "compute", "total")
		names := [3]string{"P1", "P2", "P3"}
		upd, err := res.StageSummaries(core.MetricUpdate)
		if err != nil {
			fatal(err)
		}
		cmp, err := res.StageSummaries(core.MetricCompute)
		if err != nil {
			fatal(err)
		}
		tot, err := res.StageSummaries(core.MetricTotal)
		if err != nil {
			fatal(err)
		}
		for i := range names {
			fmt.Printf("%-8s %14s %14s %14s\n", names[i], upd[i], cmp[i], tot[i])
		}
		share, err := res.UpdateShare()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("update share of batch latency: P1=%.0f%% P2=%.0f%% P3=%.0f%%\n",
			100*share[0], 100*share[1], 100*share[2])
	}

	if *serveQ {
		var agg core.QueryLoadStats
		for _, s := range qstats {
			agg.Queries += s.Queries
			agg.Sessions += s.Sessions
			agg.Misses += s.Misses
			agg.Violations += s.Violations
			if s.MaxStaleness > agg.MaxStaleness {
				agg.MaxStaleness = s.MaxStaleness
			}
			if agg.FirstViolation == "" {
				agg.FirstViolation = s.FirstViolation
			}
			agg.Elapsed += s.Elapsed
		}
		fmt.Printf("queries: readers=%d served=%d (%.0f/s) sessions=%d misses=%d max-staleness=%d batches [%s]\n",
			*qReaders, agg.Queries, agg.QPS(), agg.Sessions, agg.Misses, agg.MaxStaleness,
			compute.ValueLabel(*alg))
		if agg.Violations > 0 {
			fmt.Fprintf(os.Stderr, "saga: %d query consistency violations, first: %s\n",
				agg.Violations, agg.FirstViolation)
			os.Exit(1)
		}
	}

	if rec != nil {
		if err := rec.Close(); err != nil {
			fatal(err)
		}
		if *events != "" {
			fmt.Fprintf(os.Stderr, "saga: wrote batch events to %s\n", *events)
		}
		if *metricsDump {
			rec.Registry().WritePrometheus(os.Stdout)
		}
	}
	if tracer != nil {
		if *traceOut != "" {
			if err := tracer.DumpChromeFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "saga: wrote flight-recorder trace to %s (load at ui.perfetto.dev)\n", *traceOut)
		}
		if traceSink != nil {
			if err := traceSink.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "saga: wrote %d batch traces to %s\n", traceSink.Count(), *traceJSONL)
		}
	}
	if code := emitHealth(healthRep, *healthOut); code != 0 {
		os.Exit(code)
	}
}

// emitHealth writes the durable run's health report — to -health-out
// when set, and to stderr whenever the run ended in any state other
// than healthy. It returns the process exit code: 0 for a healthy run
// (or a run with no health machine), 2 otherwise, so scripts can tell a
// degraded pipeline (2) from an operational error (1).
func emitHealth(rep *core.HealthReport, path string) int {
	if rep == nil {
		return 0
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		data = []byte(fmt.Sprintf("{\"state\":%q}", rep.State))
	}
	if path != "" {
		if werr := os.WriteFile(path, append(data, '\n'), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "saga: writing -health-out: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "saga: wrote health report to %s\n", path)
		}
	}
	if rep.Healthy() {
		return 0
	}
	fmt.Fprintf(os.Stderr, "saga: pipeline ended %s\n%s\n", rep.State, data)
	return 2
}

// runDurable streams the batches through a durable pipeline, resuming
// past whatever the durability directory already covers. Repeats make no
// sense against persistent state, so the stream runs exactly once. The
// returned health report reflects the whole run including Close; it is
// non-nil whenever the pipeline carried a health machine (any explicit
// -degrade-policy).
func runDurable(pc core.PipelineConfig, dcfg durable.Config, edges []graph.Edge, batchSize, repeats int,
	onBatch func(int, graph.Batch, *core.Pipeline, core.BatchLatency),
	onPipeline func(*core.Pipeline) func(), sigC chan os.Signal) (*core.RunResult, *core.HealthReport, error) {
	if batchSize <= 0 {
		return nil, nil, fmt.Errorf("batch size must be positive")
	}
	if repeats > 1 {
		fmt.Fprintf(os.Stderr, "saga: -wal streams once against persistent state; ignoring -repeats %d\n", repeats)
	}
	pc.Durable = &dcfg
	p, err := core.NewPipeline(pc)
	if err != nil {
		return nil, nil, err
	}
	report := func() *core.HealthReport {
		r := p.HealthReport()
		return &r
	}
	var stopLoad func()
	if onPipeline != nil {
		stopLoad = onPipeline(p)
	}
	batches := graph.Batches(edges, batchSize)
	resume := p.DurableSeq()
	if resume > 0 {
		fmt.Fprintf(os.Stderr, "saga: recovered %s through batch %d, resuming\n", dcfg.Dir, resume)
	}
	var upd, cmp []float64
	interrupted := false
stream:
	for bi, b := range batches {
		if uint64(bi) < resume {
			continue
		}
		select {
		case <-sigC:
			interrupted = true
			break stream
		default:
		}
		lat, err := p.ProcessMixed(core.MixedBatch{Adds: b})
		if err != nil {
			if errors.Is(err, core.ErrReadOnly) || errors.Is(err, core.ErrFailed) {
				// The health machine refused ingest; stop streaming and
				// let the report carry the story.
				fmt.Fprintf(os.Stderr, "saga: ingest refused at batch %d: %v\n", bi, err)
				break stream
			}
			if stopLoad != nil {
				stopLoad()
			}
			p.Close()
			return nil, report(), err
		}
		upd = append(upd, lat.Update.Seconds())
		cmp = append(cmp, lat.Compute.Seconds())
		if onBatch != nil {
			onBatch(bi, b, p, lat)
		}
	}
	if stopLoad != nil {
		stopLoad()
	}
	if err := p.Close(); err != nil {
		return nil, report(), err
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "saga: interrupted at batch %d/%d; WAL flushed and checkpoint written, re-run with the same -wal to resume\n",
			p.DurableSeq(), len(batches))
	}
	for _, path := range p.PoisonFiles() {
		fmt.Fprintf(os.Stderr, "saga: quarantined poison batch: %s (replay: sagafuzz -replay %s)\n", path, path)
	}
	if len(upd) == 0 {
		fmt.Fprintf(os.Stderr, "saga: stream already complete (%d batches durable in %s); nothing to do\n",
			len(batches), dcfg.Dir)
		os.Exit(0)
	}
	return &core.RunResult{
		BatchCount: len(upd),
		Update:     [][]float64{upd},
		Compute:    [][]float64{cmp},
	}, report(), nil
}

// runSupervised streams the batches through the supervised runtime: a
// bounded ingest queue in front of the durable pipeline, per-phase
// watchdog deadlines, and panic-isolated restart from the last durable
// state. Ingest is asynchronous, so the per-batch latency table does
// not apply; the run reports ingest counters and health instead.
func runSupervised(pc core.PipelineConfig, dcfg durable.Config, edges []graph.Edge, batchSize, maxQueue int, shed bool,
	onPipeline func(*core.Pipeline) func(), sigC chan os.Signal) (*core.HealthReport, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("batch size must be positive")
	}
	pc.Durable = &dcfg
	sup, err := core.NewSupervisor(core.SupervisorConfig{
		Pipeline: pc,
		MaxQueue: maxQueue,
		Shed:     shed,
	})
	if err != nil {
		return nil, err
	}
	// The reader fleet pins the initial instance; epoch snapshots it
	// published keep serving even after a restart fences it.
	var stopLoad func()
	if onPipeline != nil {
		stopLoad = onPipeline(sup.Pipeline())
	}
	batches := graph.Batches(edges, batchSize)
	resume := sup.DurableSeq()
	if resume > 0 {
		fmt.Fprintf(os.Stderr, "saga: recovered %s through batch %d, resuming\n", dcfg.Dir, resume)
	}
	submitted, shedN := 0, 0
	interrupted := false
stream:
	for bi, b := range batches {
		if uint64(bi) < resume {
			continue
		}
		select {
		case <-sigC:
			interrupted = true
			break stream
		default:
		}
		serr := sup.Submit(core.MixedBatch{Adds: b})
		switch {
		case serr == nil:
			submitted++
		case errors.Is(serr, core.ErrShed):
			shedN++
		case errors.Is(serr, core.ErrReadOnly), errors.Is(serr, core.ErrFailed):
			fmt.Fprintf(os.Stderr, "saga: ingest refused at batch %d: %v\n", bi, serr)
			break stream
		default:
			if stopLoad != nil {
				stopLoad()
			}
			sup.Close()
			rep := sup.Report()
			return &rep, serr
		}
	}
	if stopLoad != nil {
		stopLoad()
	}
	cerr := sup.Close()
	rep := sup.Report()
	if interrupted {
		fmt.Fprintf(os.Stderr, "saga: interrupted; WAL flushed through batch %d, re-run with the same -wal to resume\n",
			sup.DurableSeq())
	}
	for _, path := range rep.Quarantined {
		fmt.Fprintf(os.Stderr, "saga: quarantined poison batch: %s (replay: sagafuzz -replay %s)\n", path, path)
	}
	fmt.Printf("supervised: batches=%d submitted=%d shed=%d refused=%d restarts=%d watchdog-fires=%d retries=%d state=%s\n",
		len(batches), submitted, shedN, rep.Refused, rep.Restarts, rep.WatchdogFires, rep.DurableRetry, rep.State)
	return &rep, cerr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saga:", err)
	os.Exit(1)
}
