// Command datagen emits the synthetic dataset streams as text edge lists
// ("src dst weight" per line, shuffled ingest order) and prints their
// Table II / Table IV statistics.
//
// Examples:
//
//	datagen -dataset wiki -o wiki.el       # write the stream
//	datagen -stats                         # stats for all datasets
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sagabench/internal/gen"
)

func main() {
	var (
		dataset = flag.String("dataset", "", fmt.Sprintf("dataset to emit %v (empty with -stats = all)", gen.DatasetNames()))
		profile = flag.String("profile", "default", "dataset scale: tiny, default, large")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output path (default stdout)")
		stats   = flag.Bool("stats", false, "print Table II/IV statistics instead of edges")
	)
	flag.Parse()

	if *stats {
		names := gen.DatasetNames()
		if *dataset != "" {
			names = []string{*dataset}
		}
		fmt.Printf("%-8s %9s %9s %7s | %8s %8s | %8s %8s\n",
			"dataset", "nodes", "edges", "batches", "ds maxIn", "ds maxOut", "b maxIn", "b maxOut")
		for _, name := range names {
			spec, err := gen.Dataset(name, gen.Profile(*profile))
			if err != nil {
				fatal(err)
			}
			st := gen.ComputeStats(spec, *seed)
			fmt.Printf("%-8s %9d %9d %7d | %8d %8d | %8d %8d\n",
				name, st.NumNodes, st.NumEdges, st.BatchCount,
				st.Entire.MaxIn, st.Entire.MaxOut, st.Batch.MaxIn, st.Batch.MaxOut)
		}
		return
	}

	if *dataset == "" {
		fatal(fmt.Errorf("-dataset is required unless -stats is set"))
	}
	spec, err := gen.Dataset(*dataset, gen.Profile(*profile))
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for _, e := range spec.Generate(*seed) {
		fmt.Fprintf(w, "%d %d %g\n", e.Src, e.Dst, e.Weight)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
