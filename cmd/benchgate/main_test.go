package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: sagabench
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkComputePRFSonAS-4     	      20	    480000 ns/op	    9432 B/op	     122 allocs/op
BenchmarkComputePRINConAS-4    	      20	     85000 ns/op	    7096 B/op	      45 allocs/op
BenchmarkNewOne-4              	      10	      1234 ns/op
PASS
ok  	sagabench	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	pr := got["BenchmarkComputePRFSonAS"]
	if pr.NsPerOp != 480000 || pr.AllocsOp != 122 || pr.BPerOp != 9432 || pr.Iters != 20 {
		t.Fatalf("BenchmarkComputePRFSonAS parsed as %+v", pr)
	}
	if n := got["BenchmarkNewOne"]; n.NsPerOp != 1234 || n.AllocsOp != 0 {
		t.Fatalf("no-benchmem line parsed as %+v", n)
	}
}

func TestParseBenchOutputKeepsMinimum(t *testing.T) {
	doubled := sampleOutput + "BenchmarkComputePRFSonAS-4 20 400000 ns/op 9432 B/op 122 allocs/op\n"
	got, err := parseBenchOutput(strings.NewReader(doubled))
	if err != nil {
		t.Fatal(err)
	}
	if ns := got["BenchmarkComputePRFSonAS"].NsPerOp; ns != 400000 {
		t.Fatalf("repeated benchmark kept %v ns/op, want the 400000 minimum", ns)
	}
}

func TestGate(t *testing.T) {
	base := []BaselineEntry{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000, AllocsOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 1, AllocsOp: 1},
	}
	fresh := map[string]BaselineEntry{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 1050, AllocsOp: 105}, // within 10%
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 1500, AllocsOp: 130}, // both regressed
	}

	failures, warnings, missing := gate(base, fresh, 10, false)
	if len(warnings) != 0 {
		t.Fatalf("warnings %v, want none in strict mode", warnings)
	}
	if len(failures) != 2 {
		t.Fatalf("failures %v, want ns/op and allocs/op for BenchmarkB", failures)
	}
	for _, f := range failures {
		if f.name != "BenchmarkB" {
			t.Fatalf("unexpected failure %+v", f)
		}
	}
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Fatalf("missing %v, want [BenchmarkGone]", missing)
	}

	// Advisory time: the ns/op regression downgrades, allocs still fails.
	failures, warnings, _ = gate(base, fresh, 10, true)
	if len(failures) != 1 || failures[0].metric != "allocs/op" {
		t.Fatalf("advisory failures %v, want only allocs/op", failures)
	}
	if len(warnings) != 1 || warnings[0].metric != "ns/op" {
		t.Fatalf("advisory warnings %v, want only ns/op", warnings)
	}
}

func TestGateImprovementPasses(t *testing.T) {
	base := []BaselineEntry{{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 100}}
	fresh := map[string]BaselineEntry{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 500, AllocsOp: 50},
	}
	failures, warnings, _ := gate(base, fresh, 10, false)
	if len(failures) != 0 || len(warnings) != 0 {
		t.Fatalf("improvement flagged: failures=%v warnings=%v", failures, warnings)
	}
}

func TestLoadBaselinesMerges(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("a.json", `{"command":"regen-a","benchmarks":[{"name":"BenchmarkA","ns_per_op":1}]}`)
	b := write("b.json", `{"command":"regen-b","benchmarks":[{"name":"BenchmarkB","ns_per_op":2}]}`)
	bases, entries, err := loadBaselines(a + "," + b)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 2 || len(entries) != 2 {
		t.Fatalf("bases=%d entries=%d, want 2 and 2", len(bases), len(entries))
	}
	if bases[0].Command != "regen-a" || bases[1].Command != "regen-b" {
		t.Fatalf("commands %q, %q", bases[0].Command, bases[1].Command)
	}
	if entries[0].Name != "BenchmarkA" || entries[1].Name != "BenchmarkB" {
		t.Fatalf("entries %+v", entries)
	}

	dup := write("dup.json", `{"command":"regen-dup","benchmarks":[{"name":"BenchmarkA","ns_per_op":3}]}`)
	if _, _, err := loadBaselines(a + "," + dup); err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("duplicate across files not rejected: %v", err)
	}
	if _, _, err := loadBaselines(""); err == nil {
		t.Fatal("empty baseline list not rejected")
	}
}

func TestDeltaPct(t *testing.T) {
	if p := deltaPct(100, 110); p != 10 {
		t.Fatalf("deltaPct(100,110)=%v", p)
	}
	if p := deltaPct(0, 0); p != 0 {
		t.Fatalf("deltaPct(0,0)=%v", p)
	}
	if p := deltaPct(0, 5); p != 100 {
		t.Fatalf("deltaPct(0,5)=%v, want 100 (regression from zero)", p)
	}
}
