// Command benchgate compares a fresh `go test -bench` run against the
// checked-in baselines (BENCH_compute.json, BENCH_update.json) and fails
// on regressions. -baseline takes a comma-separated list; the files are
// merged (duplicate benchmark names across files are an error) so one run
// covering both suites gates against both.
//
// Typical use, locally before landing a compute/view or data-structure
// change:
//
//	go test -run=NONE -bench='ViewO|ComputePR|ComputeCC|ComputeBFS|UpdateRate' -benchtime=20x . | \
//	    go run ./cmd/benchgate -baseline BENCH_compute.json,BENCH_update.json
//
// and in CI (shared runners are too noisy to gate on wall time, so only
// the deterministic allocation counts are enforced there):
//
//	go test -run=NONE -bench='Compute|View|UpdateRate' -benchtime=1x . | \
//	    go run ./cmd/benchgate -baseline BENCH_compute.json,BENCH_update.json -time-advisory
//
// The gate fails (exit 1) when a benchmark regresses by more than
// -threshold percent on ns/op or allocs/op. Allocation counts are
// deterministic per Go version, so they are gated even with -benchtime=1x;
// -time-advisory downgrades ns/op regressions to warnings for noisy
// environments. Benchmarks present in only one of the two sets are
// reported but never fail the gate, so the baseline does not have to
// enumerate every benchmark in the repo.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BaselineEntry mirrors one element of BENCH_compute.json's "benchmarks".
type BaselineEntry struct {
	Name     string  `json:"name"`
	Iters    int     `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

// Baseline mirrors one baseline file (BENCH_compute.json, BENCH_update.json).
type Baseline struct {
	Description string          `json:"description"`
	Command     string          `json:"command"`
	Benchmarks  []BaselineEntry `json:"benchmarks"`
}

// loadBaselines reads and merges the comma-separated baseline files. A
// benchmark name appearing in two files is an error — the gate could not
// tell which regeneration command to point at.
func loadBaselines(paths string) ([]Baseline, []BaselineEntry, error) {
	var bases []Baseline
	var merged []BaselineEntry
	seen := make(map[string]string)
	for _, p := range strings.Split(paths, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, err
		}
		var b Baseline
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, nil, fmt.Errorf("parse %s: %w", p, err)
		}
		for _, e := range b.Benchmarks {
			if prev, dup := seen[e.Name]; dup {
				return nil, nil, fmt.Errorf("benchmark %q in both %s and %s", e.Name, prev, p)
			}
			seen[e.Name] = p
			merged = append(merged, e)
		}
		bases = append(bases, b)
	}
	if len(bases) == 0 {
		return nil, nil, fmt.Errorf("no baseline files in %q", paths)
	}
	return bases, merged, nil
}

// benchLine matches the result line `go test -bench` prints:
//
//	BenchmarkComputePRFSonAS-4   20   474370 ns/op   9432 B/op   122 allocs/op
//
// The B/op and allocs/op columns appear only under -benchmem; ns/op may be
// printed with a fractional part.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBenchOutput extracts results from `go test -bench` text, keyed by
// benchmark name with the -GOMAXPROCS suffix stripped. A benchmark that
// appears multiple times (e.g. -count>1) keeps its best (minimum) ns/op,
// matching how benchstat-style tooling discards warm-up noise.
func parseBenchOutput(r io.Reader) (map[string]BaselineEntry, error) {
	out := make(map[string]BaselineEntry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256<<10), 256<<10)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := BaselineEntry{Name: m[1]}
		e.Iters, _ = strconv.Atoi(m[2])
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			e.BPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			e.AllocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if prev, ok := out[e.Name]; !ok || e.NsPerOp < prev.NsPerOp {
			out[e.Name] = e
		}
	}
	return out, sc.Err()
}

// deltaPct returns the relative change in percent, positive = regression.
func deltaPct(base, fresh float64) float64 {
	if base == 0 {
		if fresh == 0 {
			return 0
		}
		return 100
	}
	return (fresh - base) / base * 100
}

// verdict classifies one metric of one benchmark.
type verdict struct {
	name   string
	metric string
	base   float64
	fresh  float64
	pct    float64
	fail   bool
}

// gate compares fresh results against the baseline and returns every
// exceeded threshold. With timeAdvisory, ns/op regressions are reported
// but do not fail.
func gate(base []BaselineEntry, fresh map[string]BaselineEntry, threshold float64, timeAdvisory bool) (failures, warnings []verdict, missing []string) {
	for _, b := range base {
		f, ok := fresh[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		checks := []struct {
			metric      string
			base, fresh float64
			advisory    bool
		}{
			{"ns/op", b.NsPerOp, f.NsPerOp, timeAdvisory},
			{"allocs/op", b.AllocsOp, f.AllocsOp, false},
		}
		for _, c := range checks {
			pct := deltaPct(c.base, c.fresh)
			if pct <= threshold {
				continue
			}
			v := verdict{name: b.Name, metric: c.metric, base: c.base, fresh: c.fresh, pct: pct, fail: !c.advisory}
			if v.fail {
				failures = append(failures, v)
			} else {
				warnings = append(warnings, v)
			}
		}
	}
	return failures, warnings, missing
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_compute.json", "checked-in baseline JSON (comma-separated list merges several)")
		inputPath    = flag.String("input", "-", "fresh `go test -bench` output ('-' reads stdin)")
		threshold    = flag.Float64("threshold", 10, "regression threshold in percent")
		timeAdvisory = flag.Bool("time-advisory", false, "report ns/op regressions as warnings instead of failures (for noisy shared runners; allocs/op stays gated)")
	)
	flag.Parse()

	bases, baseEntries, err := loadBaselines(*baselinePath)
	if err != nil {
		fatal(err)
	}

	in := io.Reader(os.Stdin)
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	fresh, err := parseBenchOutput(in)
	if err != nil {
		fatal(err)
	}
	if len(fresh) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input (expected `go test -bench` output)"))
	}

	failures, warnings, missing := gate(baseEntries, fresh, *threshold, *timeAdvisory)

	inBaseline := make(map[string]bool, len(baseEntries))
	for _, b := range baseEntries {
		inBaseline[b.Name] = true
	}
	var extra []string
	for name := range fresh {
		if !inBaseline[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)

	fmt.Printf("benchgate: %d baseline benchmarks, %d fresh results, threshold %.0f%%\n",
		len(baseEntries), len(fresh), *threshold)
	for _, v := range warnings {
		fmt.Printf("  WARN  %-32s %-10s %12.0f -> %12.0f  (%+.1f%%, advisory)\n",
			v.name, v.metric, v.base, v.fresh, v.pct)
	}
	for _, v := range failures {
		fmt.Printf("  FAIL  %-32s %-10s %12.0f -> %12.0f  (%+.1f%% > %.0f%%)\n",
			v.name, v.metric, v.base, v.fresh, v.pct, *threshold)
	}
	if len(missing) > 0 {
		fmt.Printf("  note: %d baseline benchmarks not in this run: %s\n",
			len(missing), strings.Join(missing, ", "))
	}
	if len(extra) > 0 {
		fmt.Printf("  note: %d benchmarks not in the baseline: %s\n",
			len(extra), strings.Join(extra, ", "))
	}
	if len(failures) > 0 {
		fmt.Printf("benchgate: FAIL (%d regressions; if the change is intentional, regenerate the affected baseline with:\n", len(failures))
		for _, b := range bases {
			fmt.Printf("  %s\n", b.Command)
		}
		fmt.Println(")")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
