// Package sagabench's root benchmarks regenerate every table and figure of
// the paper at reduced (tiny-profile) scale, one testing.B benchmark per
// experiment. Each iteration performs the experiment's full measurement
// sweep, so b.N=1 runs already produce the paper-shaped output (discarded
// here; use cmd/sagabench to see the rows).
//
//	go test -bench=. -benchmem
package sagabench_test

import (
	"io"
	"testing"

	"sagabench/internal/bench"
	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
)

func benchOpts() bench.Options {
	return bench.Options{
		Profile:    gen.ProfileTiny,
		Threads:    2,
		Repeats:    1,
		Seed:       42,
		MachineDiv: 256,
		Out:        io.Discard,
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := bench.New(benchOpts())
		if err := h.RunExperiment(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Datasets regenerates Table II (dataset inventory).
func BenchmarkTable2Datasets(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Best regenerates Table III (best structure+model per
// algorithm/dataset/stage over the full 8-combination sweep).
func BenchmarkTable3Best(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Degrees regenerates Table IV (degree tails).
func BenchmarkTable4Degrees(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig6DataStructures regenerates Fig 6 (normalized latencies of
// AC/DAH/Stinger vs AS at P3).
func BenchmarkFig6DataStructures(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7ComputeModel regenerates Fig 7 (FS/INC compute ratio).
func BenchmarkFig7ComputeModel(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8UpdateShare regenerates Fig 8 (update share of latency).
func BenchmarkFig8UpdateShare(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Scaling regenerates Fig 9 (core scaling, bandwidth, QPI).
func BenchmarkFig9Scaling(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Caches regenerates Fig 10 (hit ratios and MPKI).
func BenchmarkFig10Caches(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkAblation sweeps the data-structure design parameters.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkExtensions measures the beyond-the-paper capabilities
// (log-structured ingest, update/compute overlap, sliding-window deletes).
func BenchmarkExtensions(b *testing.B) { runExperiment(b, "extensions") }

// BenchmarkSensitivity re-profiles across machine scales.
func BenchmarkSensitivity(b *testing.B) { runExperiment(b, "sensitivity") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: per-structure update and traversal throughput, the
// primitives whose costs Fig 6 aggregates.

func benchUpdate(b *testing.B, dsName, dataset string) {
	spec := gen.MustDataset(dataset, gen.ProfileTiny)
	edges := spec.Generate(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.NewPipeline(core.PipelineConfig{
			DataStructure: dsName,
			Algorithm:     "bfs",
			Model:         compute.INC,
			Directed:      spec.Directed,
			Threads:       2,
			MaxNodesHint:  spec.NumNodes,
		})
		if err != nil {
			b.Fatal(err)
		}
		g := p.Graph()
		for start := 0; start < len(edges); start += spec.BatchSize {
			end := start + spec.BatchSize
			if end > len(edges) {
				end = len(edges)
			}
			g.Update(edges[start:end])
		}
	}
	b.SetBytes(int64(len(edges)) * 12)
}

func BenchmarkUpdateShortTailAS(b *testing.B)   { benchUpdate(b, "adjshared", "lj") }
func BenchmarkUpdateShortTailAC(b *testing.B)   { benchUpdate(b, "adjchunked", "lj") }
func BenchmarkUpdateShortTailStgr(b *testing.B) { benchUpdate(b, "stinger", "lj") }
func BenchmarkUpdateShortTailDAH(b *testing.B)  { benchUpdate(b, "dah", "lj") }
func BenchmarkUpdateShortTailGO(b *testing.B)   { benchUpdate(b, "graphone", "lj") }
func BenchmarkUpdateHeavyTailAS(b *testing.B)   { benchUpdate(b, "adjshared", "wiki") }
func BenchmarkUpdateHeavyTailAC(b *testing.B)   { benchUpdate(b, "adjchunked", "wiki") }
func BenchmarkUpdateHeavyTailStgr(b *testing.B) { benchUpdate(b, "stinger", "wiki") }
func BenchmarkUpdateHeavyTailDAH(b *testing.B)  { benchUpdate(b, "dah", "wiki") }
func BenchmarkUpdateHeavyTailGO(b *testing.B)   { benchUpdate(b, "graphone", "wiki") }

func benchCompute(b *testing.B, dsName, alg string, model compute.Model) {
	spec := gen.MustDataset("lj", gen.ProfileTiny)
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: dsName,
		Algorithm:     alg,
		Model:         model,
		Directed:      spec.Directed,
		Threads:       2,
		MaxNodesHint:  spec.NumNodes,
	})
	if err != nil {
		b.Fatal(err)
	}
	edges := spec.Generate(7)
	for start := 0; start < len(edges); start += spec.BatchSize {
		end := start + spec.BatchSize
		if end > len(edges) {
			end = len(edges)
		}
		p.Process(edges[start:end])
	}
	// Re-run the compute phase on the final topology.
	final := edges[len(edges)-minInt(spec.BatchSize, len(edges)):]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(final)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkComputePRFSonAS(b *testing.B)    { benchCompute(b, "adjshared", "pr", compute.FS) }
func BenchmarkComputePRINConAS(b *testing.B)   { benchCompute(b, "adjshared", "pr", compute.INC) }
func BenchmarkComputePRINConDAH(b *testing.B)  { benchCompute(b, "dah", "pr", compute.INC) }
func BenchmarkComputeCCINConAS(b *testing.B)   { benchCompute(b, "adjshared", "cc", compute.INC) }
func BenchmarkComputeBFSFSonStgr(b *testing.B) { benchCompute(b, "stinger", "bfs", compute.FS) }
