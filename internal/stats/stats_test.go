package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("Mean=%v want 5", s.Mean)
	}
	wantStd := math.Sqrt(32.0 / 7)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("Std=%v want %v", s.Std, wantStd)
	}
	wantCI := z95 * wantStd / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("CI95=%v want %v", s.CI95, wantCI)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty: %+v", s)
	}
	if s := Summarize([]float64{3}); s.Mean != 3 || s.Std != 0 || s.CI95 != 0 {
		t.Errorf("singleton: %+v", s)
	}
}

func TestOverlaps(t *testing.T) {
	a := Summary{Mean: 10, CI95: 1}
	b := Summary{Mean: 11.5, CI95: 1}
	if !a.Overlaps(b) {
		t.Error("intervals [9,11] and [10.5,12.5] should overlap")
	}
	c := Summary{Mean: 13, CI95: 0.5}
	if a.Overlaps(c) {
		t.Error("intervals [9,11] and [12.5,13.5] should not overlap")
	}
}

func TestStages(t *testing.T) {
	r := Stages(10)
	want := [3][2]int{{0, 3}, {3, 6}, {6, 10}}
	if r != want {
		t.Errorf("Stages(10)=%v want %v", r, want)
	}
	r = Stages(2)
	if r[0][1]-r[0][0] != 0 || r[2][1] != 2 {
		t.Errorf("Stages(2)=%v", r)
	}
}

func TestStageSummaries(t *testing.T) {
	xs := []float64{1, 1, 1, 2, 2, 2, 3, 3, 3}
	ss := StageSummaries(xs)
	if ss[0].Mean != 1 || ss[1].Mean != 2 || ss[2].Mean != 3 {
		t.Errorf("stage means %v %v %v", ss[0].Mean, ss[1].Mean, ss[2].Mean)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("P50=%v want 3", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("P100=%v want 5", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0=%v want 1", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile=%v", p)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3) != 2")
	}
	if Ratio(6, 0) != 0 {
		t.Error("Ratio(6,0) != 0")
	}
}

// Property: the mean always lies within [min,max] of the samples, stages
// partition the sample count exactly, and CI95 is non-negative.
func TestSummaryProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if len(clean) == 0 {
			return s.N == 0
		}
		min, max := clean[0], clean[0]
		for _, x := range clean {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if s.Mean < min-1e-9 || s.Mean > max+1e-9 || s.CI95 < 0 {
			return false
		}
		r := Stages(len(clean))
		total := 0
		for _, st := range r {
			total += st[1] - st[0]
		}
		return total == len(clean) && r[0][0] == 0 && r[2][1] == len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
