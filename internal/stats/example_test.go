package stats_test

import (
	"fmt"

	"sagabench/internal/stats"
)

// ExampleStageSummaries splits a latency series into the paper's three
// stages and summarizes each with a 95% confidence interval.
func ExampleStageSummaries() {
	latencies := []float64{1, 1, 1, 2, 2, 2, 4, 4, 4}
	for i, s := range stats.StageSummaries(latencies) {
		fmt.Printf("P%d mean=%.0f n=%d\n", i+1, s.Mean, s.N)
	}
	// Output:
	// P1 mean=1 n=3
	// P2 mean=2 n=3
	// P3 mean=4 n=3
}
