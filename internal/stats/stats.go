// Package stats provides the summary statistics used throughout the
// SAGA-Bench methodology (paper Section IV-B): per-stage averages with 95%
// confidence intervals over the per-batch latency samples, and ratio
// helpers for the normalized figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the mean of a sample set with its 95% confidence half-width.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	CI95 float64 // half-width of the 95% confidence interval
}

// z95 is the normal-approximation critical value; the paper's stages
// contain dozens to hundreds of batch samples, well past the t-to-normal
// crossover.
const z95 = 1.959963984540054

// Summarize computes mean, sample standard deviation, and the 95% CI
// half-width of xs. An empty slice yields a zero Summary; a singleton has
// zero Std/CI95.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N == 1 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = z95 * s.Std / math.Sqrt(float64(s.N))
	return s
}

// Overlaps reports whether the two 95% confidence intervals intersect —
// the paper's criterion for calling two configurations "competitive"
// (Table III's x/y entries).
func (s Summary) Overlaps(o Summary) bool {
	return math.Abs(s.Mean-o.Mean) <= s.CI95+o.CI95
}

// String renders "mean ±ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ±%.2g", s.Mean, s.CI95)
}

// Ratio reports num/den, or 0 when den is 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Stages splits n samples into the paper's three equal stages P1 (early),
// P2 (middle), P3 (final), returning the three index ranges [lo,hi). Any
// remainder goes to the final stage.
func Stages(n int) [3][2]int {
	third := n / 3
	return [3][2]int{
		{0, third},
		{third, 2 * third},
		{2 * third, n},
	}
}

// StageSummaries summarizes each of the three stages of the sample series.
func StageSummaries(samples []float64) [3]Summary {
	var out [3]Summary
	for i, r := range Stages(len(samples)) {
		out[i] = Summarize(samples[r[0]:r[1]])
	}
	return out
}

// Percentile returns the p-th percentile (0..100) by nearest-rank on a
// copy of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}
