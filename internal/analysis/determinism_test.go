package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, ".", analysis.Determinism, "determinism_fx")
}
