// Package fakeio stands in for a foreign (out-of-module) I/O package in
// retryclass fixtures: its error results have not been through the
// repo's transient/permanent classifier.
package fakeio

import "errors"

// ErrBoom is the stock failure.
var ErrBoom = errors.New("boom")

// Write pretends to write p.
func Write(p []byte) (int, error) { return 0, ErrBoom }

// Sync pretends to flush.
func Sync() error { return ErrBoom }
