// Package paniccapture_fx exercises the goroutine panic-capture rule.
//
// saga:paniccapture
package paniccapture_fx

import "sync"

func captured(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		work()
	}()
}

func uncaptured() {
	go func() { // want `goroutine does not capture panics`
		work()
	}()
}

func named() {
	go work() // want `goroutine launches a named function`
}

func audited() {
	go work() // saga:allow paniccapture -- worker is panic-free by construction.
}

// A suffix allow comment covers only its own line, never the next one.
func auditedSuffixNarrow() {
	_ = 0 // saga:allow paniccapture -- suffix comment; must not leak downward.
	go work() // want `goroutine launches a named function`
}

func work() {}
