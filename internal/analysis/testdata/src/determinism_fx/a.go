// Package determinism_fx exercises the replay-determinism rules.
//
// saga:deterministic
package determinism_fx

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now() // want `wall-clock read time.Now`
	return t.UnixNano()
}

// saga:allow determinism -- fsync latency metric only; never feeds replayed state.
func metric() time.Time { return time.Now() }

func draw() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func iterate(m map[int]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	// saga:allow determinism -- order is re-established by the sort below.
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// saga:allow determinism want `saga:allow determinism has no audit reason`
func missingReason() time.Time { return time.Now() } // want `wall-clock read time.Now`
