// Package lockheld_fx exercises the saga:guardedby lock-discipline check.
package lockheld_fx

import "sync"

type table struct {
	mu   sync.Mutex
	data []int // saga:guardedby mu

	locks []sync.Mutex
	rows  [][]int // saga:guardedby locks[$i]

	profMu sync.Mutex
	hits   int // saga:guardedby profMu
}

func (t *table) good() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.data = append(t.data, 1)
}

func (t *table) bad() {
	t.data = append(t.data, 1) // want `access to t.data \(saga:guardedby mu\) without holding t.mu`
}

func (t *table) unlockEarly() {
	t.mu.Lock()
	t.mu.Unlock()
	t.data[0] = 1 // want `without holding t.mu`
}

func (t *table) try() {
	if !t.mu.TryLock() {
		t.mu.Lock()
	}
	t.data[0] = 2
	t.mu.Unlock()
}

func (t *table) tryBody() {
	if t.mu.TryLock() {
		t.data[0] = 3
		t.mu.Unlock()
	}
	_ = t.hits // want `without holding t.profMu`
}

func (t *table) perRow(i int) {
	t.locks[i].Lock()
	t.rows[i] = append(t.rows[i], 1)
	t.locks[i].Unlock()
}

func (t *table) alias(i int) {
	mu := &t.locks[i]
	mu.Lock()
	t.rows[i] = nil
	mu.Unlock()
}

func (t *table) wrongRow(i, j int) {
	t.locks[i].Lock()
	defer t.locks[i].Unlock()
	t.rows[j] = nil // want `without holding t.locks\[j\]`
}

func (t *table) structural() {
	t.rows = append(t.rows, nil) // whole-slice resize is structural, not an element access
}

// lockCounting locks the mutex passed as its first argument.
//
// saga:acquires 1
func lockCounting(mu *sync.Mutex, n *int) {
	mu.Lock()
	*n = *n + 1
}

func (t *table) viaHelper(conflicts *int) {
	lockCounting(&t.mu, conflicts)
	t.data[0] = 4
	t.mu.Unlock()
}

// flushLocked runs with t.mu already held by the caller.
//
// saga:locked t.mu
func (t *table) flushLocked() {
	t.data = t.data[:0]
}

func (t *table) closureLeak() {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := func() {
		t.data[0] = 5 // want `without holding t.mu`
	}
	f()
}

func (t *table) branchRelease(cond bool) {
	t.mu.Lock()
	if cond {
		t.mu.Unlock()
	} else {
		t.mu.Unlock()
	}
	t.data[0] = 6 // want `without holding t.mu`
}

func (t *table) terminatingBranch(cond bool) {
	t.mu.Lock()
	if cond {
		t.mu.Unlock()
		return
	}
	t.data[0] = 7 // the unlock path returned; lock still held here
	t.mu.Unlock()
}

func (t *table) audited() {
	// saga:allow lockheld -- phase-separated read: compute never overlaps ingest.
	_ = t.data[0]
}
