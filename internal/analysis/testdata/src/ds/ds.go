// Package ds is a fixture stand-in for sagabench/internal/ds: just the
// chunk-parallel helper signatures the chunkowner analyzer matches on.
package ds

// Edge mirrors graph.Edge closely enough for ownership fixtures.
type Edge struct {
	Src, Dst int
}

// GroupByChunk mirrors the real helper's shape (chunk worker closure).
func GroupByChunk(edges []Edge, chunks int, fn func(chunk int, edges []Edge)) {
	fn(0, edges)
}

// ForEachChunk mirrors the real helper's shape (per-chunk closure).
func ForEachChunk(n int, fn func(c int)) {
	for c := 0; c < n; c++ {
		fn(c)
	}
}
