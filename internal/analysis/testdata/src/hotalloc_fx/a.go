// Package hotalloc_fx models documented 0-alloc paths: saga:hotpath
// functions must stay off the allocator.
package hotalloc_fx

func sink(v any)    {}
func sinkErr(error) {}

// sum is a clean kernel inner loop — indexing, arithmetic, no
// allocation.
// saga:hotpath
func sum(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

// ptrArgOK passes a pointer into an interface parameter — pointers store
// directly in the interface word, no boxing allocation.
// saga:hotpath
func ptrArgOK(x *int) {
	sink(x)
}

// makes allocates a buffer per call.
// saga:hotpath
func makes(n int) []int {
	return make([]int, n) // want `make allocation in saga:hotpath function makes`
}

// news allocates.
// saga:hotpath
func news() *int {
	return new(int) // want `new allocation in saga:hotpath function news`
}

// grows may trigger append growth.
// saga:hotpath
func grows(dst []int, v int) []int {
	return append(dst, v) // want `append \(may grow\) in saga:hotpath function grows`
}

// literals allocates slice and escaping struct literals.
// saga:hotpath
func literals() []int {
	return []int{1, 2, 3} // want `slice/map literal allocation in saga:hotpath function literals`
}

// escapingStruct heap-allocates via &T{}.
// saga:hotpath
func escapingStruct() *struct{ a int } {
	return &struct{ a int }{a: 1} // want `heap allocation \(&composite literal\) in saga:hotpath function escapingStruct`
}

// mapRead hits the map runtime.
// saga:hotpath
func mapRead(m map[int]int, k int) int {
	return m[k] // want `map access in saga:hotpath function mapRead`
}

// mapWrite hits the map runtime.
// saga:hotpath
func mapWrite(m map[int]int, k, v int) {
	m[k] = v // want `map access in saga:hotpath function mapWrite`
}

// mapIter ranges over a map.
// saga:hotpath
func mapIter(m map[int]int) int {
	t := 0
	for _, v := range m { // want `map iteration in saga:hotpath function mapIter`
		t += v
	}
	return t
}

// closures allocates the closure and its captured variable.
// saga:hotpath
func closures(n int) func() int {
	return func() int { return n } // want `closure allocation in saga:hotpath function closures`
}

// launches starts a goroutine (stack allocation, scheduling).
// saga:hotpath
func launches(ch chan int) {
	go send(ch) // want `goroutine launch in saga:hotpath function launches`
}

func send(ch chan int) { ch <- 1 }

// boxes passes a concrete int where an interface is expected.
// saga:hotpath
func boxes(v int) {
	sink(v) // want `interface boxing of int argument in saga:hotpath function boxes`
}

// converts copies the string into a byte slice.
// saga:hotpath
func converts(s string) []byte {
	return []byte(s) // want `string conversion allocation in saga:hotpath function converts`
}

// concats builds a new string.
// saga:hotpath
func concats(a, b string) string {
	return a + b // want `string concatenation in saga:hotpath function concats`
}

// pooled appends into a pool-reserved buffer; audited as amortized-free.
// saga:hotpath
func pooled(dst []int, v int) []int {
	return append(dst, v) // saga:allow hotalloc -- pool reserves capacity; AllocsPerRun asserts 0
}

// cold is unannotated — the same operations are fine here.
func cold(n int) []int {
	return make([]int, n)
}
