// Package retryclass_fx models the durable layer's fault taxonomy:
// saga:classified functions must route every returned error through the
// transient/permanent classifier.
//
// saga:durable
package retryclass_fx

import (
	"fmt"

	"fakeio"
)

// Permanent wraps err as a permanent (non-retryable) fault.
// saga:classifier
func Permanent(err error) error { return err }

// IsPermanent reports whether err was classified permanent.
// saga:classifier
func IsPermanent(err error) bool { return err != nil }

// Do runs op under the retry policy; whatever it returns is classified.
// saga:classifies
func Do(op func() error) error {
	if err := op(); err != nil {
		return Permanent(err)
	}
	return nil
}

// helper is module-internal; the analyzer trusts it (annotate it
// saga:classified to have it checked itself).
func helper() error { return nil }

// Append forwards a raw I/O error to the retry machinery — the bug
// shape: foreign taint surviving a branch to the return.
// saga:classified
func Append(p []byte) error {
	_, err := fakeio.Write(p)
	if err != nil {
		return err // want `never went through the transient/permanent classifier`
	}
	return nil
}

// AppendClassified routes the error through the classifier first.
// saga:classified
func AppendClassified(p []byte) error {
	_, err := fakeio.Write(p)
	if err != nil {
		return Permanent(err)
	}
	return nil
}

// SyncConsulted consults the classifier, which launders the local.
// saga:classified
func SyncConsulted() error {
	err := fakeio.Sync()
	if IsPermanent(err) {
		return err
	}
	return err
}

// Wrapped taints through fmt wrapping.
// saga:classified
func Wrapped(p []byte) error {
	_, err := fakeio.Write(p)
	if err != nil {
		return fmt.Errorf("append: %w", err) // want `never went through the transient/permanent classifier`
	}
	return nil
}

// Fresh constructs its own error — nothing foreign to classify.
// saga:classified
func Fresh(n int) error {
	if n < 0 {
		return fmt.Errorf("negative batch %d", n)
	}
	return nil
}

// Flush forwards the foreign call's result directly.
// saga:classified
func Flush() error {
	return fakeio.Sync() // want `never went through the transient/permanent classifier`
}

// Mixed is tainted on only one path — invisible to a flow-insensitive
// checker, caught by the union merge at the join.
// saga:classified
func Mixed(fail bool) error {
	var err error
	if fail {
		err = fakeio.Sync()
	} else {
		err = nil
	}
	return err // want `never went through the transient/permanent classifier`
}

// Named leaks through a naked return of a named result.
// saga:classified
func Named() (err error) {
	err = fakeio.Sync()
	return // want `never went through the transient/permanent classifier`
}

// ViaHelper trusts same-module callees.
// saga:classified
func ViaHelper() error {
	return helper()
}

// ViaDo returns the retry entry point's already-classified result.
// saga:classified
func ViaDo(p []byte) error {
	return Do(func() error {
		_, err := fakeio.Write(p)
		return err
	})
}

// Audited documents a crash-only path with a reasoned allow.
// saga:classified
func Audited() error {
	err := fakeio.Sync()
	return err // saga:allow retryclass -- crash-only startup path, surfaced by the health probe
}
