// Package pinrelease_fx models the epoch pin lifecycle: Pin/Acquire
// return values that must reach Release on every path.
package pinrelease_fx

import "errors"

type Snapshot struct{ refs int }

type Manager struct{ cur *Snapshot }

// Pin acquires a reference to the current snapshot.
// saga:pin
func (m *Manager) Pin() *Snapshot { return m.cur }

// Release drops a pin taken with Pin.
// saga:pinrelease
func (m *Manager) Release(s *Snapshot) { s.refs-- }

type Handle struct{ s *Snapshot }

// Acquire pins the current snapshot behind a handle; fails when no
// snapshot is published yet.
// saga:pin
func (m *Manager) Acquire() (*Handle, error) {
	if m.cur == nil {
		return nil, errors.New("no epoch")
	}
	return &Handle{s: m.cur}, nil
}

// Release drops the handle's pin.
// saga:pinrelease
func (h *Handle) Release() { h.s = nil }

func work(h *Handle) error { return nil }

func mayPanic() {}

var errBad = errors.New("bad")

func bad() bool { return false }

// good releases on the single path.
func good(m *Manager) {
	s := m.Pin()
	_ = s
	m.Release(s)
}

// goodDefer releases via defer, covering the error return below it.
func goodDefer(m *Manager) error {
	h, err := m.Acquire()
	if err != nil {
		return err
	}
	defer h.Release()
	return work(h)
}

// leakEarlyReturn forgets the handle on the error branch between acquire
// and release — the bug shape the flow-insensitive framework could not
// see (each path individually looks releasable).
func leakEarlyReturn(m *Manager) error {
	h, err := m.Acquire() // want `pin from Acquire is not released on all paths`
	if err != nil {
		return err
	}
	if bad() {
		return errBad
	}
	h.Release()
	return nil
}

// discarded drops the pin on the floor.
func discarded(m *Manager) {
	m.Pin() // want `pin returned by Pin is discarded and can never be released`
}

// discardedBlank binds the pin to the blank identifier.
func discardedBlank(m *Manager) {
	_, err := m.Acquire() // want `pin returned by Acquire is discarded and can never be released`
	_ = err
}

// aliasRelease releases through a copy of the pin — still a release.
func aliasRelease(m *Manager) {
	s := m.Pin()
	t := s
	m.Release(t)
}

// leakOnPanic holds the pin across an explicit panic without a defer.
func leakOnPanic(m *Manager, n int) {
	s := m.Pin() // want `pin from Pin is still pinned when this function panics`
	if n < 0 {
		panic("negative")
	}
	m.Release(s)
}

// deferredClosure releases from a deferred closure, which runs on panic
// exits too.
func deferredClosure(m *Manager) {
	s := m.Pin()
	defer func() { m.Release(s) }()
	mayPanic()
}

// escapes transfers ownership to the caller; not a finding here.
func escapes(m *Manager) *Snapshot {
	return m.Pin()
}

func escapesVar(m *Manager) *Snapshot {
	s := m.Pin()
	return s
}

// overwrite loses the first pin by re-acquiring into the same variable.
func overwrite(m *Manager) {
	s := m.Pin()
	s = m.Pin() // want `pin from Pin overwrites a pin that was never released`
	m.Release(s)
}

// audited documents an intentional leak with a reasoned allow.
func audited(m *Manager) {
	s := m.Pin() // saga:allow pinrelease -- pinned for process lifetime by design
	_ = s
}
