// Package errcheckdur_fx exercises the durable error-hygiene rules.
//
// saga:durable
package errcheckdur_fx

import (
	"errors"
	"fmt"
	"os"
)

func flush(f *os.File) {
	f.Sync() // want `statement discards the error from f.Sync`
}

func leakyClose(f *os.File) {
	defer f.Close() // want `defer discards the error from f.Close`
}

func blank(f *os.File) {
	_ = f.Close() // want `assignment to _ discards the error from f.Close`
}

func multi(name string) *os.File {
	f, _ := os.Create(name) // want `assignment to _ discards the error from os.Create`
	return f
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func gc(path string) {
	// saga:allow errcheck-durable -- best-effort removal of an obsolete segment.
	os.Remove(path)
}

func report(err error) {
	fmt.Println("wal:", errors.Unwrap(err)) // fmt is exempt: terminal output is not durable state
}

func spawn(f *os.File) {
	go f.Close() // want `go statement discards the error from f.Close`
}
