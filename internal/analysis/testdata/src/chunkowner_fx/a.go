// Package chunkowner_fx models a lockless chunked structure for the
// chunk-ownership check.
//
// saga:lockless
package chunkowner_fx

import "ds"

type store struct {
	adj   [][]int
	loads []uint64 // saga:chunked
	total uint64
}

func (s *store) good(edges []ds.Edge, chunks int) {
	ds.GroupByChunk(edges, chunks, func(chunk int, bucket []ds.Edge) {
		n := uint64(0)
		for _, e := range bucket {
			s.adj[e.Src] = append(s.adj[e.Src], e.Dst)
			n++
		}
		s.loads[chunk] = n
	})
}

func (s *store) badWrite(edges []ds.Edge, chunks int) {
	ds.GroupByChunk(edges, chunks, func(chunk int, bucket []ds.Edge) {
		s.total += uint64(len(bucket)) // want `chunk worker writes s.total`
	})
}

func (s *store) badChunkIndex(chunks int) {
	ds.ForEachChunk(chunks, func(c int) {
		s.loads[c] = 0
		_ = s.loads[0] // want `indexes saga:chunked field loads with 0`
	})
}

func (s *store) reset() {
	s.total = 0 // outside a worker: sequential phase, unchecked
}

// insert mutates only the vertex slot owned by the caller's chunk.
//
// saga:chunksafe
func (s *store) insert(v, dst int) {
	s.adj[v] = append(s.adj[v], dst)
}

func (s *store) grow(chunk int) { s.loads[chunk]++ }

func (s *store) viaMethods(edges []ds.Edge, chunks int) {
	ds.GroupByChunk(edges, chunks, func(chunk int, bucket []ds.Edge) {
		for _, e := range bucket {
			s.insert(e.Src, e.Dst)
		}
		s.grow(chunk) // want `calls s.grow on a captured receiver`
	})
}

func (s *store) audited(edges []ds.Edge, chunks int) {
	ds.GroupByChunk(edges, chunks, func(chunk int, bucket []ds.Edge) {
		// saga:allow chunkowner -- single-writer by construction: only chunk 0 is spawned here.
		s.total = uint64(len(bucket))
	})
}
