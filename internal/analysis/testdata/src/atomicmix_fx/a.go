// Package atomicmix_fx exercises the atomic/plain mixed-discipline check.
package atomicmix_fx

import "sync/atomic"

type counter struct {
	mixed      uint64 // want `field mixed is accessed both atomically`
	atomicOnly uint64
	plainOnly  uint64
	// saga:allow atomicmix -- plain access is confined to the sequential reset phase.
	audited   uint64
	cells     []uint32 // want `field cells is accessed both atomically`
	sizedOnly []uint32
}

func (c *counter) work() {
	atomic.AddUint64(&c.mixed, 1)
	c.mixed = 0

	atomic.AddUint64(&c.atomicOnly, 1)
	c.plainOnly = 2

	atomic.AddUint64(&c.audited, 1)
	c.audited = 0

	atomic.StoreUint32(&c.cells[0], 1)
	c.cells[1] = 2

	atomic.AddUint32(&c.sizedOnly[0], 1)
	_ = len(c.sizedOnly)                 // structural: not an element access
	c.sizedOnly = append(c.sizedOnly, 0) // structural resize between phases
}
