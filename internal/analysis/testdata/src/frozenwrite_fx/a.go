// Package frozenwrite_fx models published-snapshot immutability:
// saga:frozen types and fields must never be stored through after
// publication.
package frozenwrite_fx

// CSR is a published adjacency structure; immutable once an epoch
// carries it.
// saga:frozen
type CSR struct {
	Offsets []int
	Edges   []int
}

// Snapshot carries a published CSR plus bookkeeping that stays mutable.
type Snapshot struct {
	G     *CSR
	Hot   []float64 // saga:frozen
	Epoch int64
}

func view(c *CSR) []int { return c.Offsets }

// directWrite stores straight into a frozen struct's slice.
func directWrite(c *CSR) {
	c.Offsets[0] = 1 // want `write into saga:frozen memory`
}

// fieldStore rebinds a frozen struct's field.
func fieldStore(c *CSR) {
	c.Edges = nil // want `write into saga:frozen memory`
}

// frozenFieldWrite hits a saga:frozen field of an otherwise mutable type.
func frozenFieldWrite(s *Snapshot) {
	s.Hot[3] = 0 // want `write into saga:frozen memory`
}

// frozenFieldRebind reassigns the frozen field itself.
func frozenFieldRebind(s *Snapshot) {
	s.Hot = nil // want `write to saga:frozen memory`
}

// epochStampOK writes a plain field of the carrier struct — Snapshot
// itself is not frozen.
func epochStampOK(s *Snapshot) {
	s.Epoch = 7
}

// aliasWrite reaches frozen memory through a local alias.
func aliasWrite(c *CSR) {
	o := c.Offsets
	o[0] = 1 // want `write into saga:frozen memory`
}

// returnAlias reaches frozen memory through a helper's return value.
func returnAlias(c *CSR) {
	v := view(c)
	v[0] = 1 // want `write into saga:frozen memory`
}

// branchAlias is frozen only on one path — the flow-insensitive
// framework could not track a branch-dependent alias like this.
func branchAlias(c *CSR, tmp []int, cond bool) {
	buf := tmp
	if cond {
		buf = c.Offsets
	}
	buf[0] = 1 // want `write into saga:frozen memory`
}

// rebindClears shows the taint dying when the local is rebound.
func rebindClears(c *CSR, tmp []int) {
	buf := c.Offsets
	buf = tmp
	buf[0] = 1
}

// appendGrow may write in place through the shared backing array.
func appendGrow(c *CSR) {
	_ = append(c.Edges, 7) // want `append may write into saga:frozen memory`
}

// copyInto writes into the frozen destination.
func copyInto(c *CSR, src []int) {
	copy(c.Offsets, src) // want `copy writes into saga:frozen memory`
}

// copyOut reads from frozen memory into a fresh buffer — fine.
func copyOut(c *CSR) []int {
	dst := make([]int, len(c.Offsets))
	copy(dst, c.Offsets)
	return dst
}

// construction may initialize a frozen value before it is published.
func construction(n int) *CSR {
	c := &CSR{}
	c.Offsets = make([]int, n)
	c.Offsets[0] = 1
	return c
}

// audited documents a pre-publication rebuild with a reasoned allow.
func audited(c *CSR) {
	c.Offsets[0] = 1 // saga:allow frozenwrite -- rebuilt under the publisher's exclusive lock
}
