package analysis

import (
	"go/ast"
)

// This file builds the control-flow graphs the dataflow engine
// (dataflow.go) solves over. A CFG is a set of basic blocks — maximal
// straight-line runs of statement/condition nodes — connected by edges
// that remember which branch of a condition they represent, so transfer
// functions can refine facts along a branch (`if !mu.TryLock()`,
// `if err != nil`). Return statements edge to Exit; explicit panic
// statements terminate their block with no successor and are recorded in
// Panics so path-sensitive analyzers (pinrelease) can inspect the state
// at the abnormal exit. Defer statements stay in their block as ordinary
// nodes and are additionally listed in Defers, because deferred calls run
// on every exit — normal or panicking — which is exactly the property a
// lifecycle analyzer needs to credit `defer h.Release()`.

// EdgeKind classifies a CFG edge.
type EdgeKind uint8

// The edge kinds.
const (
	// EdgeNext is an unconditional fallthrough/jump.
	EdgeNext EdgeKind = iota
	// EdgeTrue is taken when the source block's condition evaluated true.
	EdgeTrue
	// EdgeFalse is taken when the source block's condition evaluated false.
	EdgeFalse
)

// Edge connects two blocks. Cond is the branch condition for
// EdgeTrue/EdgeFalse edges (nil for EdgeNext), letting edge transfer
// functions sharpen facts branch-sensitively.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
	Cond     ast.Expr
}

// Block is one basic block: nodes execute in order, then control follows
// one of Succs. Nodes are statements (simple statements only — compound
// statements are decomposed into blocks) and bare condition/tag
// expressions.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// CFG is one function body's control-flow graph.
type CFG struct {
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit collects every normal return and the final fallthrough.
	Exit *Block
	// Panics lists blocks that end in an explicit panic(...) statement.
	Panics []*Block
	// Defers lists every defer statement in syntactic order.
	Defers []*ast.DeferStmt
}

// loopCtx is one enclosing breakable/continuable construct.
type loopCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select (not continuable)
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil while the current point is unreachable
	loops  []loopCtx
	labels map[string]*Block
	gotos  []pendingGoto
	// fallthroughTo is the body block of the next case clause while a
	// switch case body is being built.
	fallthroughTo *Block
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*Block{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	b.jump(b.cfg.Exit)
	for _, g := range b.gotos {
		if to := b.labels[g.label]; to != nil {
			b.edge(g.from, to, EdgeNext, nil)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, kind EdgeKind, cond ast.Expr) {
	e := &Edge{From: from, To: to, Kind: kind, Cond: cond}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// jump connects the current block to `to` (if reachable) and leaves the
// builder with no current block.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to, EdgeNext, nil)
	}
	b.cur = nil
}

// add appends a node to the current block, opening a fresh unreachable
// block when control cannot reach here (so the node still exists for
// position-based tooling, but the solver never visits it).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findLoop resolves a break/continue target; label "" means innermost.
func (b *cfgBuilder) findLoop(label string, needContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if needContinue && lc.continueTo == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmts(x.List)

	case *ast.LabeledStmt:
		// The label is both a goto target and the name of the loop/switch
		// it prefixes for labeled break/continue.
		target := b.newBlock()
		b.jump(target)
		b.cur = target
		b.labels[x.Label.Name] = target
		b.stmt(x.Stmt, x.Label.Name)

	case *ast.IfStmt:
		if x.Init != nil {
			b.stmt(x.Init, "")
		}
		b.add(x.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then, EdgeTrue, x.Cond)
		var elseEntry *Block
		if x.Else != nil {
			elseEntry = b.newBlock()
			b.edge(cond, elseEntry, EdgeFalse, x.Cond)
		} else {
			b.edge(cond, after, EdgeFalse, x.Cond)
		}
		b.cur = then
		b.stmts(x.Body.List)
		b.jump(after)
		if x.Else != nil {
			b.cur = elseEntry
			b.stmt(x.Else, "")
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if x.Init != nil {
			b.stmt(x.Init, "")
		}
		head := b.newBlock()
		after := b.newBlock()
		post := head
		if x.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		b.cur = head
		var body *Block
		if x.Cond != nil {
			b.add(x.Cond)
			body = b.newBlock()
			b.edge(b.cur, body, EdgeTrue, x.Cond)
			b.edge(b.cur, after, EdgeFalse, x.Cond)
		} else {
			body = b.newBlock()
			b.edge(b.cur, body, EdgeNext, nil)
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmts(x.Body.List)
		b.jump(post)
		if x.Post != nil {
			b.cur = post
			b.stmt(x.Post, "")
			b.jump(head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		head.Nodes = append(head.Nodes, x) // the range header: X plus key/value defs
		body := b.newBlock()
		b.edge(head, body, EdgeTrue, nil)
		b.edge(head, after, EdgeFalse, nil)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmts(x.Body.List)
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if x.Init != nil {
			b.stmt(x.Init, "")
		}
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.switchBody(x.Body.List, label, func(c *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, len(c.List))
			for i, e := range c.List {
				nodes[i] = e
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			b.stmt(x.Init, "")
		}
		b.add(x.Assign)
		b.switchBody(x.Body.List, label, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk, EdgeNext, nil)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmts(cc.Body)
			b.jump(after)
		}
		if len(x.Body.List) == 0 {
			b.edge(head, after, EdgeNext, nil)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(x)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		lbl := ""
		if x.Label != nil {
			lbl = x.Label.Name
		}
		switch x.Tok.String() {
		case "break":
			if lc := b.findLoop(lbl, false); lc != nil {
				b.jump(lc.breakTo)
			} else {
				b.cur = nil
			}
		case "continue":
			if lc := b.findLoop(lbl, true); lc != nil {
				b.jump(lc.continueTo)
			} else {
				b.cur = nil
			}
		case "goto":
			if b.cur != nil {
				if to := b.labels[lbl]; to != nil {
					b.jump(to)
				} else {
					b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: lbl})
					b.cur = nil
				}
			}
		case "fallthrough":
			if b.fallthroughTo != nil {
				b.jump(b.fallthroughTo)
			} else {
				b.cur = nil
			}
		}

	case *ast.DeferStmt:
		b.add(x)
		b.cfg.Defers = append(b.cfg.Defers, x)

	case *ast.ExprStmt:
		b.add(x)
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if b.cur != nil {
					b.cfg.Panics = append(b.cfg.Panics, b.cur)
				}
				b.cur = nil // control never falls past an explicit panic
			}
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, IncDecStmt, SendStmt, GoStmt, DeclStmt, ...
		b.add(s)
	}
}

// switchBody builds the clause blocks of a (type) switch: every clause
// entry is reachable from the head, a missing default adds a direct edge
// to after, and `fallthrough` jumps into the next clause's body.
func (b *cfgBuilder) switchBody(clauses []ast.Stmt, label string, caseNodes func(*ast.CaseClause) []ast.Node) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault || len(clauses) == 0 {
		b.edge(head, after, EdgeNext, nil)
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blk := blocks[i]
		b.edge(head, blk, EdgeNext, nil)
		blk.Nodes = append(blk.Nodes, caseNodes(cc)...)
		saved := b.fallthroughTo
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = blk
		b.stmts(cc.Body)
		b.jump(after)
		b.fallthroughTo = saved
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}
