package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, ".", analysis.HotAlloc, "hotalloc_fx")
}
