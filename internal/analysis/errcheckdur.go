package analysis

import (
	"go/ast"
	"go/types"
)

// ErrcheckDurable enforces strict error hygiene in packages marked
// `saga:durable` (the WAL and checkpoint layer): a discarded error there
// is a silent durability hole — an fsync or Close that failed without
// anyone noticing means the recovery guarantee is fiction. The analyzer
// reports calls whose error result is dropped on the floor: expression
// statements, `defer`/`go` of error-returning calls, and `_`-assignments
// of an error position. Genuinely best-effort sites (GC of old segments,
// the crash-simulation Abandon path) carry audited saga:allow comments.
var ErrcheckDurable = &Analyzer{
	Name: "errcheck-durable",
	Doc: "in saga:durable packages, report discarded error return values " +
		"(silently dropped fsync/Close/decode failures)",
	Run: runErrcheckDurable,
}

var errorType = types.Universe.Lookup("error").Type()

func runErrcheckDurable(pass *Pass) {
	if !pass.Markers["durable"] {
		return
	}
	report := func(call *ast.CallExpr, what string) {
		pass.Reportf(call.Pos(), "%s discards the error from %s in a saga:durable package; handle it or audit with saga:allow",
			what, callDesc(pass, call))
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok && returnsError(pass, call) {
					report(call, "statement")
				}
			case *ast.DeferStmt:
				if returnsError(pass, x.Call) {
					report(x.Call, "defer")
				}
			case *ast.GoStmt:
				if returnsError(pass, x.Call) {
					report(x.Call, "go statement")
				}
			case *ast.AssignStmt:
				checkBlankErr(pass, x)
			}
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
// Calls into fmt are exempt (terminal output is not durable state).
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	if fn := calleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(tv.Type, errorType)
	}
}

// checkBlankErr reports `_`-assignments that drop an error result.
func checkBlankErr(pass *Pass, as *ast.AssignStmt) {
	// Multi-value form: v, _ := call().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && types.Identical(tuple.At(i).Type(), errorType) && !fmtCall(pass, call) {
				pass.Reportf(lhs.Pos(), "assignment to _ discards the error from %s in a saga:durable package; handle it or audit with saga:allow",
					callDesc(pass, call))
			}
		}
		return
	}
	// Parallel form: _ = call().
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if ok && returnsError(pass, call) {
			pass.Reportf(lhs.Pos(), "assignment to _ discards the error from %s in a saga:durable package; handle it or audit with saga:allow",
				callDesc(pass, call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func fmtCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

func callDesc(pass *Pass, call *ast.CallExpr) string {
	return exprText(pass.Fset, call.Fun)
}
