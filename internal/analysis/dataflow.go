package analysis

import (
	"go/ast"
)

// Generic worklist dataflow solver over the CFGs built in cfg.go.
// Analyzers describe their lattice with a flowSpec: how to create, copy,
// merge, and compare facts, plus a node transfer function and an optional
// branch-sensitive edge transfer. The solver iterates to a fixed point;
// termination follows from the usual monotone-framework argument (each
// analyzer's fact domain is finite — sets over the identifiers of one
// function — and merge only moves facts monotonically through it).

// flowSpec describes one dataflow problem over facts of type F.
type flowSpec[F any] struct {
	// init produces the fact at function entry (forward) or exit (backward).
	init func() F
	// clone deep-copies a fact so transfer can mutate freely.
	clone func(F) F
	// merge combines the fact arriving along an edge into acc, reporting
	// whether acc changed. Must analyses intersect, may analyses union.
	merge func(acc, in F) bool
	// transfer applies one CFG node to a fact, in place.
	transfer func(F, ast.Node)
	// edge optionally refines the fact flowing along a branch edge
	// (e.g. "TryLock returned true", "err != nil"), in place. May be nil.
	edge func(F, *Edge)
}

// forward solves a forward dataflow problem and returns the fact at the
// entry of every reachable block. Unreachable blocks have no map entry.
func forward[F any](cfg *CFG, spec flowSpec[F]) map[*Block]F {
	in := make(map[*Block]F, len(cfg.Blocks))
	in[cfg.Entry] = spec.init()

	work := []*Block{cfg.Entry}
	queued := map[*Block]bool{cfg.Entry: true}

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := spec.clone(in[blk])
		for _, n := range blk.Nodes {
			spec.transfer(out, n)
		}

		for _, e := range blk.Succs {
			fact := out
			if spec.edge != nil {
				fact = spec.clone(out)
				spec.edge(fact, e)
			}
			cur, seen := in[e.To]
			changed := false
			if !seen {
				in[e.To] = spec.clone(fact)
				changed = true
			} else {
				changed = spec.merge(cur, fact)
			}
			if changed && !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return in
}

// backward solves a backward dataflow problem (e.g. liveness) and returns
// the fact at the *exit* of every block that reaches Exit. Nodes are
// transferred in reverse order; edge refinement sees the same Edge but
// facts flow To→From.
func backward[F any](cfg *CFG, spec flowSpec[F]) map[*Block]F {
	out := make(map[*Block]F, len(cfg.Blocks))
	out[cfg.Exit] = spec.init()

	work := []*Block{cfg.Exit}
	queued := map[*Block]bool{cfg.Exit: true}

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		entry := spec.clone(out[blk])
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			spec.transfer(entry, blk.Nodes[i])
		}

		for _, e := range blk.Preds {
			fact := entry
			if spec.edge != nil {
				fact = spec.clone(entry)
				spec.edge(fact, e)
			}
			cur, seen := out[e.From]
			changed := false
			if !seen {
				out[e.From] = spec.clone(fact)
				changed = true
			} else {
				changed = spec.merge(cur, fact)
			}
			if changed && !queued[e.From] {
				queued[e.From] = true
				work = append(work, e.From)
			}
		}
	}
	return out
}

// forEachNodeFact replays a solved forward problem, invoking visit with
// the fact holding *before* each node executes, in block order. Check
// passes use this to report against the converged facts. The fact passed
// to visit is scratch (mutated by subsequent transfers) — clone to keep.
func forEachNodeFact[F any](cfg *CFG, spec flowSpec[F], in map[*Block]F, visit func(F, ast.Node)) {
	for _, blk := range cfg.Blocks {
		fact, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		cur := spec.clone(fact)
		for _, n := range blk.Nodes {
			visit(cur, n)
			spec.transfer(cur, n)
		}
	}
}
