package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestChunkOwner(t *testing.T) {
	analysistest.Run(t, ".", analysis.ChunkOwner, "chunkowner_fx")
}
