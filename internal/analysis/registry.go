package analysis

import (
	"go/ast"
	"go/types"
)

// The annotation registry makes `saga:` declaration annotations visible
// across package boundaries: when the loader type-checks `internal/epoch`
// (directly or as a dependency of `core`), it records that `Manager.Pin`
// is a `saga:pin` acquire and that `Snapshot` is `saga:frozen`, keyed by
// the shared types.Object identities. Analyzers running over *any*
// package in the same load session then resolve call sites and types
// against the registry — pinrelease sees `p.em.Pin()` inside core as an
// acquire even though the annotation lives two packages away. One
// registry exists per loader (all packages of a load share one FileSet
// and importer, so object identities line up).
type annotations struct {
	// funcs holds every declaration doc-comment annotation set, keyed by
	// the declared function/method object.
	funcs map[types.Object]map[string]string
	// frozenTypes holds types declared frozen: their memory is immutable
	// once published. (The annotation name is spelled out in package docs;
	// repeating it here would register this very field.)
	frozenTypes map[*types.TypeName]bool
	// frozenFields holds individually frozen struct fields.
	frozenFields map[*types.Var]bool
}

func newAnnotations() *annotations {
	return &annotations{
		funcs:        map[types.Object]map[string]string{},
		frozenTypes:  map[*types.TypeName]bool{},
		frozenFields: map[*types.Var]bool{},
	}
}

// collect records one freshly type-checked package's annotations.
func (a *annotations) collect(files []*ast.File, info *types.Info) {
	for _, f := range files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if ann := funcAnnotations(decl.Doc); len(ann) > 0 {
					if obj := info.Defs[decl.Name]; obj != nil {
						a.funcs[obj] = ann
					}
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = decl.Doc
					}
					if _, frozen := funcAnnotations(doc)["frozen"]; frozen {
						if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
							a.frozenTypes[tn] = true
						}
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if key, _ := fieldAnnotation(field); key != "frozen" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						a.frozenFields[v] = true
					}
				}
			}
			return true
		})
	}
}

// funcAnnotation looks up a `saga:<key>` annotation on the declaration of
// obj (a function or method), across all packages of this load.
func (p *Pass) funcAnnotation(obj types.Object, key string) (string, bool) {
	if obj == nil || p.pkg.annot == nil {
		return "", false
	}
	v, ok := p.pkg.annot.funcs[obj][key]
	return v, ok
}

// frozenType reports whether t (possibly behind pointers/named chains) is
// a saga:frozen type.
func (p *Pass) frozenType(t types.Type) bool {
	if p.pkg.annot == nil {
		return false
	}
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			if p.pkg.annot.frozenTypes[x.Obj()] {
				return true
			}
			t = x.Underlying()
		default:
			return false
		}
	}
}

// frozenField reports whether v is a saga:frozen struct field.
func (p *Pass) frozenField(v *types.Var) bool {
	return p.pkg.annot != nil && v != nil && p.pkg.annot.frozenFields[v]
}

// cfgOf returns the control-flow graph of one function body, built once
// and cached per package (analyzers running in sequence share it).
func (p *Package) cfgOf(body *ast.BlockStmt) *CFG {
	if p.cfgs == nil {
		p.cfgs = map[*ast.BlockStmt]*CFG{}
	}
	if c, ok := p.cfgs[body]; ok {
		return c
	}
	c := buildCFG(body)
	p.cfgs[body] = c
	return c
}
