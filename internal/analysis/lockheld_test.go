package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, ".", analysis.LockHeld, "lockheld_fx")
}
