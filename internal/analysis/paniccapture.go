package analysis

import (
	"go/ast"
)

// PanicCapture enforces the pipeline's poison-batch contract in packages
// marked `saga:paniccapture`: a panic inside a worker goroutine must be
// captured and re-raised on the spawning side (as ds.ForEachShard and
// ds.GroupByChunk do), because a panic that escapes on a raw goroutine
// kills the process before the quarantine logic can isolate the batch.
// Every `go` statement must therefore launch a function literal whose
// first line of defense is a `defer func() { ... recover() ... }()`;
// spawning a named function or an uncaptured literal is reported.
var PanicCapture = &Analyzer{
	Name: "paniccapture",
	Doc: "in saga:paniccapture packages, require every go statement to " +
		"launch a closure with a top-level defer'd recover",
	Run: runPanicCapture,
}

func runPanicCapture(pass *Pass) {
	if !pass.Markers["paniccapture"] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(),
					"goroutine launches a named function, which cannot be seen to capture panics; wrap it in a closure with a defer'd recover (or use ds.ForEachShard/GroupByChunk/ForEachChunk)")
				return true
			}
			if !hasDeferredRecover(lit.Body) {
				pass.Reportf(g.Pos(),
					"goroutine does not capture panics: add a top-level `defer func() { if r := recover(); ... }()` so the poison-batch quarantine can recover it (or use ds.ForEachShard/GroupByChunk/ForEachChunk)")
			}
			return true
		})
	}
}

// hasDeferredRecover reports whether the function body has a top-level
// deferred closure that calls recover().
func hasDeferredRecover(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
