package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, ".", analysis.AtomicMix, "atomicmix_fx")
}
