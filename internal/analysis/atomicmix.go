package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix flags struct fields that are accessed both through the
// sync/atomic function API and through plain loads/stores. A field with
// mixed discipline has no single synchronization story: the atomic sites
// suggest concurrent access, so every plain site is a potential data
// race (or, if the plain sites are confined to a sequential phase, an
// invariant that must be audited with a saga:allow on the field's
// declaration).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "report struct fields accessed both via sync/atomic functions " +
		"and via plain loads/stores",
	Run: runAtomicMix,
}

type mixUse struct {
	atomic []token.Pos
	plain  []token.Pos
}

func runAtomicMix(pass *Pass) {
	uses := map[*types.Var]*mixUse{}
	use := func(v *types.Var) *mixUse {
		u := uses[v]
		if u == nil {
			u = &mixUse{}
			uses[v] = u
		}
		return u
	}
	// Selector nodes consumed by an atomic call's address argument; they
	// must not double-count as plain uses.
	consumed := map[ast.Node]bool{}

	// Pass 1: atomic uses. The first argument of every sync/atomic
	// Load/Store/Add/Swap/CompareAndSwap call is &field or &field[i].
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			// Only the package-level functions address their target via the
			// first argument; methods on atomic.Int64 etc. mutate their
			// receiver, whose type already forbids plain access.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if !hasAtomicOpPrefix(fn.Name()) {
				return true
			}
			target := unwrapAddr(call.Args[0])
			if idx, ok := target.(*ast.IndexExpr); ok {
				consumed[idx] = true
				target = ast.Unparen(idx.X)
			}
			if sel, ok := target.(*ast.SelectorExpr); ok {
				if fv := fieldOf(pass.TypesInfo, sel); fv != nil {
					consumed[sel] = true
					use(fv).atomic = append(use(fv).atomic, call.Pos())
				}
			}
			return true
		})
	}

	// Pass 2: plain value accesses. For scalar fields any selector use
	// counts; for slice fields only element accesses count (len/cap/
	// append/slicing are structural, resizing happens between phases).
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			fv := fieldOf(pass.TypesInfo, sel)
			if fv == nil {
				return true
			}
			if _, isSlice := fv.Type().Underlying().(*types.Slice); isSlice {
				parent := parentOf(stack)
				idx, ok := parent.(*ast.IndexExpr)
				if !ok || ast.Unparen(idx.X) != sel || consumed[idx] {
					return true
				}
			}
			use(fv).plain = append(use(fv).plain, sel.Pos())
			return true
		})
	}

	var mixed []*types.Var
	for fv, u := range uses {
		if len(u.atomic) > 0 && len(u.plain) > 0 && fv.Pkg() == pass.Pkg {
			mixed = append(mixed, fv)
		}
	}
	sort.Slice(mixed, func(i, j int) bool { return mixed[i].Pos() < mixed[j].Pos() })
	for _, fv := range mixed {
		u := uses[fv]
		pass.Reportf(fv.Pos(),
			"field %s is accessed both atomically (e.g. %s) and with plain loads/stores (e.g. %s); use one discipline or audit the phase separation with a saga:allow on this declaration",
			fv.Name(), pass.Fset.Position(u.atomic[0]), pass.Fset.Position(u.plain[0]))
	}
}

func hasAtomicOpPrefix(name string) bool {
	for _, p := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// parentOf returns the node enclosing the current node in an
// ast.Inspect traversal stack (the node itself is the last entry).
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}
