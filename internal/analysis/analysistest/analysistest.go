// Package analysistest runs sagavet analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest. Fixtures live
// under testdata/src/<pkg>; bare imports inside a fixture (e.g. "ds")
// resolve against testdata/src first, so fixtures can model the repo's
// helper packages without depending on them.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sagabench/internal/analysis"
)

// expectation is one `// want` annotation: a diagnostic matching re must
// be reported at file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var (
	wantRe    = regexp.MustCompile("//.*\\bwant\\b")
	wantStrRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// Run loads testdata/src/<pkgPath> relative to dir, applies the
// analyzer, and compares unsuppressed diagnostics (including malformed
// saga:allow findings from the "sagavet" pseudo-analyzer) against the
// fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(dir, "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(
		analysis.LoadConfig{FixtureRoot: root},
		filepath.Join(root, filepath.FromSlash(pkgPath)),
	)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", pkgPath, len(pkgs))
	}
	pkg := pkgs[0]

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				loc := wantRe.FindStringIndex(c.Text)
				if loc == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantStrRe.FindAllString(c.Text[loc[1]:], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	diags := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	for _, d := range diags {
		if d.Suppressed {
			continue // an audited saga:allow worked as designed
		}
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched want %q", relToRoot(w.file), w.line, w.re)
		}
	}
}

func relToRoot(path string) string {
	if i := strings.LastIndex(path, "testdata"); i >= 0 {
		return path[i:]
	}
	return path
}
