package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestErrcheckDurable(t *testing.T) {
	analysistest.Run(t, ".", analysis.ErrcheckDurable, "errcheckdur_fx")
}
