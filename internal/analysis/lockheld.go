package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld enforces `saga:guardedby` annotations: a struct field
// annotated `// saga:guardedby mu` may only be touched while the sibling
// lock mu of the same base expression is held. Lock identity is lexical
// (the printed base expression), with local aliases like
// `mu := &s.locks[e.Src]` resolved, so per-vertex (`saga:guardedby
// locks[$i]`, matching element accesses against the same index
// expression) and per-block disciplines are both expressible.
//
// The check runs on the shared CFG + dataflow engine as a forward must-
// analysis: the held-lock set intersects at joins, TryLock results refine
// the set branch-sensitively along CFG edges, and `defer mu.Unlock()`
// keeps the lock held to function end. Functions that run with a lock
// already held declare it with `// saga:locked <expr>`, helpers that
// acquire a mutex passed by pointer declare `// saga:acquires <argN>`,
// and audited lock-free sites carry a saga:allow.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "check that fields annotated saga:guardedby are only accessed " +
		"with the named lock held",
	Run: runLockHeld,
}

type guardSpec struct {
	lockField string // sibling lock field name, e.g. "profMu" or "locks"
	indexed   bool   // spec was "name[$i]": element accesses must match index
}

func runLockHeld(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	acquires, locked := collectLockFuncAnnotations(pass)
	lc := &lockChecker{pass: pass, guards: guards, acquires: acquires}
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		held := map[string]bool{}
		for _, k := range locked[declObj(pass, decl)] {
			held[k] = true
		}
		lc.analyzeBody(decl.Body, held)
	})
}

// collectGuards maps annotated struct fields to their lock spec.
func collectGuards(pass *Pass) map[*types.Var]guardSpec {
	guards := map[*types.Var]guardSpec{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stype, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range stype.Fields.List {
				key, val := fieldAnnotation(field)
				if key != "guardedby" || val == "" {
					continue
				}
				spec := guardSpec{lockField: val}
				if name, ok := strings.CutSuffix(val, "[$i]"); ok {
					spec = guardSpec{lockField: name, indexed: true}
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = spec
					}
				}
			}
			return true
		})
	}
	return guards
}

// collectLockFuncAnnotations gathers saga:acquires (helper locks the
// mutex passed as the 1-based Nth argument) and saga:locked (function
// body runs with the given lock expressions held).
func collectLockFuncAnnotations(pass *Pass) (map[*types.Func]int, map[types.Object][]string) {
	acquires := map[*types.Func]int{}
	locked := map[types.Object][]string{}
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		ann := funcAnnotations(decl.Doc)
		obj := declObj(pass, decl)
		if obj == nil {
			return
		}
		if n := intAnnotation(ann["acquires"]); n > 0 {
			if f, ok := obj.(*types.Func); ok {
				acquires[f] = n
			}
		}
		if expr := ann["locked"]; expr != "" {
			locked[obj] = append(locked[obj], strings.Fields(expr)...)
		}
	})
	return acquires, locked
}

func declObj(pass *Pass, decl *ast.FuncDecl) types.Object {
	return pass.TypesInfo.Defs[decl.Name]
}

// lockFact is the dataflow fact: the set of lexically-keyed locks known
// to be held at a program point, plus local aliases of lock expressions.
type lockFact struct {
	held    map[string]bool
	aliases map[types.Object]string
}

// lockChecker ties the lockheld transfer and check passes to one package.
type lockChecker struct {
	pass     *Pass
	guards   map[*types.Var]guardSpec
	acquires map[*types.Func]int
}

// analyzeBody solves the held-lock dataflow over one function body and
// reports unguarded accesses against the converged facts. Function
// literals recurse with an empty held set (a closure may run on another
// goroutine, so it cannot inherit the enclosing locks).
func (lc *lockChecker) analyzeBody(body *ast.BlockStmt, initHeld map[string]bool) {
	cfg := lc.pass.pkg.cfgOf(body)
	spec := lc.spec(initHeld)
	in := forward(cfg, spec)
	forEachNodeFact(cfg, spec, in, func(f *lockFact, n ast.Node) {
		lc.checkNode(f, n)
	})
}

func (lc *lockChecker) spec(initHeld map[string]bool) flowSpec[*lockFact] {
	return flowSpec[*lockFact]{
		init: func() *lockFact {
			f := &lockFact{held: map[string]bool{}, aliases: map[types.Object]string{}}
			for k := range initHeld {
				f.held[k] = true
			}
			return f
		},
		clone: func(f *lockFact) *lockFact {
			c := &lockFact{held: make(map[string]bool, len(f.held)),
				aliases: make(map[types.Object]string, len(f.aliases))}
			for k := range f.held {
				c.held[k] = true
			}
			for k, v := range f.aliases {
				c.aliases[k] = v
			}
			return c
		},
		// Must-analysis: a lock counts as held after a join only if every
		// inbound path holds it; aliases must agree.
		merge: func(acc, in *lockFact) bool {
			changed := false
			for k := range acc.held {
				if !in.held[k] {
					delete(acc.held, k)
					changed = true
				}
			}
			for k, v := range acc.aliases {
				if in.aliases[k] != v {
					delete(acc.aliases, k)
					changed = true
				}
			}
			return changed
		},
		transfer: func(f *lockFact, n ast.Node) {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
					switch key, op := lc.lockCall(f, call); op {
					case "lock":
						f.held[key] = true
					case "unlock":
						delete(f.held, key)
					}
				}
			case *ast.DeferStmt:
				// `defer mu.Unlock()` keeps the lock held to function end:
				// deliberately no state change.
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
					for i, lhs := range x.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						if obj := lc.pass.TypesInfo.Defs[id]; obj != nil && aliasable(x.Rhs[i]) {
							f.aliases[obj] = lc.canon(f, x.Rhs[i])
						}
					}
				}
			}
		},
		// Branch sensitivity: a TryLock condition holds the lock on its
		// success edge — the true edge of `if mu.TryLock()`, the false edge
		// of `if !mu.TryLock()`.
		edge: func(f *lockFact, e *Edge) {
			if e.Cond == nil {
				return
			}
			if key, negated := lc.tryLockCond(f, e.Cond); key != "" {
				if (e.Kind == EdgeTrue && !negated) || (e.Kind == EdgeFalse && negated) {
					f.held[key] = true
				}
			}
		},
	}
}

// canon renders an expression with local lock aliases substituted, so
// `mu.Lock()` after `mu := &s.locks[e.Src]` yields "s.locks[e.Src]".
func (lc *lockChecker) canon(f *lockFact, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := lc.pass.TypesInfo.Uses[x]; obj != nil {
			if a, ok := f.aliases[obj]; ok {
				return a
			}
		}
		return x.Name
	case *ast.SelectorExpr:
		return lc.canon(f, x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return lc.canon(f, x.X) + "[" + lc.canon(f, x.Index) + "]"
	case *ast.StarExpr:
		return lc.canon(f, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lc.canon(f, x.X)
		}
	case *ast.CallExpr:
		// Conversions like int(e.Src) appear inside index expressions.
		if len(x.Args) == 1 {
			return exprCallName(x) + "(" + lc.canon(f, x.Args[0]) + ")"
		}
	}
	return exprText(lc.pass.Fset, e)
}

func exprCallName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
	}
	return "?"
}

// lockCall classifies a call as Lock/TryLock/Unlock on a canonical key.
func (lc *lockChecker) lockCall(f *lockFact, call *ast.CallExpr) (key, op string) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			return lc.canon(f, sel.X), "lock"
		case "TryLock", "TryRLock":
			return lc.canon(f, sel.X), "trylock"
		case "Unlock", "RUnlock":
			return lc.canon(f, sel.X), "unlock"
		}
	}
	if fn := calleeFunc(lc.pass.TypesInfo, call); fn != nil {
		if n := lc.acquires[fn]; n > 0 && n <= len(call.Args) {
			return lc.canon(f, unwrapAddr(call.Args[n-1])), "lock"
		}
	}
	return "", ""
}

// tryLockCond matches `mu.TryLock()` and `!mu.TryLock()` conditions.
func (lc *lockChecker) tryLockCond(f *lockFact, cond ast.Expr) (key string, negated bool) {
	e := ast.Unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		if call, ok := ast.Unparen(u.X).(*ast.CallExpr); ok {
			if k, op := lc.lockCall(f, call); op == "trylock" {
				return k, true
			}
		}
		return "", false
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if k, op := lc.lockCall(f, call); op == "trylock" {
			return k, false
		}
	}
	return "", false
}

// aliasable limits alias tracking to address/selector/index chains.
func aliasable(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		return x.Op == token.AND && aliasable(x.X)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
		return true
	}
	return false
}

// checkNode reports guarded accesses in one CFG node against the fact
// holding before the node executes.
func (lc *lockChecker) checkNode(f *lockFact, n ast.Node) {
	switch x := n.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if _, op := lc.lockCall(f, call); op != "" {
				lc.checkExprList(f, call.Args)
				return
			}
		}
		lc.checkExpr(f, x.X)
	case *ast.AssignStmt:
		lc.checkExprList(f, x.Rhs)
		lc.checkExprList(f, x.Lhs)
	case *ast.DeferStmt:
		if key, op := lc.lockCall(f, x.Call); op == "unlock" && key != "" {
			return
		}
		lc.checkExpr(f, x.Call)
	case *ast.GoStmt:
		lc.checkExpr(f, x.Call)
	case *ast.ReturnStmt:
		lc.checkExprList(f, x.Results)
	case *ast.IncDecStmt:
		lc.checkExpr(f, x.X)
	case *ast.SendStmt:
		lc.checkExpr(f, x.Chan)
		lc.checkExpr(f, x.Value)
	case *ast.RangeStmt:
		lc.checkExpr(f, x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lc.checkExprList(f, vs.Values)
				}
			}
		}
	case ast.Expr:
		// Bare condition/tag/case expressions lifted into blocks by the
		// CFG builder. TryLock conditions are lock operations, not reads.
		if key, _ := lc.tryLockCond(f, x); key != "" {
			return
		}
		lc.checkExpr(f, x)
	}
}

// checkExpr reports guarded-field accesses in e that lack their lock.
// Function literals are analyzed with a fresh (empty) held set: a
// closure may run on another goroutine, so it cannot inherit locks.
func (lc *lockChecker) checkExpr(f *lockFact, e ast.Expr) {
	if e == nil {
		return
	}
	var stack []ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.FuncLit:
			lc.analyzeBody(x.Body, nil)
			stack = stack[:len(stack)-1] // Inspect skips the nil pop when we prune
			return false
		case *ast.SelectorExpr:
			fv := fieldOf(lc.pass.TypesInfo, x)
			if fv == nil {
				return true
			}
			spec, ok := lc.guards[fv]
			if !ok {
				return true
			}
			base := lc.canon(f, x.X)
			var required string
			if spec.indexed {
				idx, ok := parentOf(stack).(*ast.IndexExpr)
				if !ok || ast.Unparen(idx.X) != x {
					return true // whole-slice access (len/append/resize) is structural
				}
				required = base + "." + spec.lockField + "[" + lc.canon(f, idx.Index) + "]"
			} else {
				required = base + "." + spec.lockField
			}
			if !f.held[required] {
				lc.pass.Reportf(x.Sel.Pos(),
					"access to %s.%s (saga:guardedby %s) without holding %s",
					base, fv.Name(), spec.lockField, required)
			}
		}
		return true
	})
}

func (lc *lockChecker) checkExprList(f *lockFact, list []ast.Expr) {
	for _, e := range list {
		lc.checkExpr(f, e)
	}
}
