package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld enforces `saga:guardedby` annotations: a struct field
// annotated `// saga:guardedby mu` may only be touched while the sibling
// lock mu of the same base expression is held. Lock identity is lexical
// (the printed base expression), with local aliases like
// `mu := &s.locks[e.Src]` resolved, so per-vertex (`saga:guardedby
// locks[$i]`, matching element accesses against the same index
// expression) and per-block disciplines are both expressible. The
// analysis is flow-insensitive across calls and conservative across
// branches; functions that run with a lock already held declare it with
// `// saga:locked <expr>`, helpers that acquire a mutex passed by
// pointer declare `// saga:acquires <argN>`, and audited lock-free sites
// carry a saga:allow.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "check that fields annotated saga:guardedby are only accessed " +
		"with the named lock held",
	Run: runLockHeld,
}

type guardSpec struct {
	lockField string // sibling lock field name, e.g. "profMu" or "locks"
	indexed   bool   // spec was "name[$i]": element accesses must match index
}

func runLockHeld(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	acquires, locked := collectLockFuncAnnotations(pass)
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		st := &lockState{
			pass:     pass,
			guards:   guards,
			acquires: acquires,
			held:     map[string]bool{},
			aliases:  map[types.Object]string{},
		}
		for _, k := range locked[declObj(pass, decl)] {
			st.held[k] = true
		}
		st.walkStmts(decl.Body.List)
	})
}

// collectGuards maps annotated struct fields to their lock spec.
func collectGuards(pass *Pass) map[*types.Var]guardSpec {
	guards := map[*types.Var]guardSpec{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stype, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range stype.Fields.List {
				key, val := fieldAnnotation(field)
				if key != "guardedby" || val == "" {
					continue
				}
				spec := guardSpec{lockField: val}
				if name, ok := strings.CutSuffix(val, "[$i]"); ok {
					spec = guardSpec{lockField: name, indexed: true}
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = spec
					}
				}
			}
			return true
		})
	}
	return guards
}

// collectLockFuncAnnotations gathers saga:acquires (helper locks the
// mutex passed as the 1-based Nth argument) and saga:locked (function
// body runs with the given lock expressions held).
func collectLockFuncAnnotations(pass *Pass) (map[*types.Func]int, map[types.Object][]string) {
	acquires := map[*types.Func]int{}
	locked := map[types.Object][]string{}
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		ann := funcAnnotations(decl.Doc)
		obj := declObj(pass, decl)
		if obj == nil {
			return
		}
		if n := intAnnotation(ann["acquires"]); n > 0 {
			if f, ok := obj.(*types.Func); ok {
				acquires[f] = n
			}
		}
		if expr := ann["locked"]; expr != "" {
			locked[obj] = append(locked[obj], strings.Fields(expr)...)
		}
	})
	return acquires, locked
}

func declObj(pass *Pass, decl *ast.FuncDecl) types.Object {
	return pass.TypesInfo.Defs[decl.Name]
}

type lockState struct {
	pass     *Pass
	guards   map[*types.Var]guardSpec
	acquires map[*types.Func]int
	held     map[string]bool
	aliases  map[types.Object]string
}

func (st *lockState) clone() *lockState {
	c := &lockState{pass: st.pass, guards: st.guards, acquires: st.acquires,
		held: map[string]bool{}, aliases: map[types.Object]string{}}
	for k := range st.held {
		c.held[k] = true
	}
	for k, v := range st.aliases {
		c.aliases[k] = v
	}
	return c
}

// canon renders an expression with local lock aliases substituted, so
// `mu.Lock()` after `mu := &s.locks[e.Src]` yields "s.locks[e.Src]".
func (st *lockState) canon(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := st.pass.TypesInfo.Uses[x]; obj != nil {
			if a, ok := st.aliases[obj]; ok {
				return a
			}
		}
		return x.Name
	case *ast.SelectorExpr:
		return st.canon(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return st.canon(x.X) + "[" + st.canon(x.Index) + "]"
	case *ast.StarExpr:
		return st.canon(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return st.canon(x.X)
		}
	case *ast.CallExpr:
		// Conversions like int(e.Src) appear inside index expressions.
		if len(x.Args) == 1 {
			return exprCallName(x) + "(" + st.canon(x.Args[0]) + ")"
		}
	}
	return exprText(st.pass.Fset, e)
}

func exprCallName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
	}
	return "?"
}

// lockCall classifies a call as Lock/TryLock/Unlock on a canonical key.
func (st *lockState) lockCall(call *ast.CallExpr) (key, op string) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			return st.canon(sel.X), "lock"
		case "TryLock", "TryRLock":
			return st.canon(sel.X), "trylock"
		case "Unlock", "RUnlock":
			return st.canon(sel.X), "unlock"
		}
	}
	if f := calleeFunc(st.pass.TypesInfo, call); f != nil {
		if n := st.acquires[f]; n > 0 && n <= len(call.Args) {
			return st.canon(unwrapAddr(call.Args[n-1])), "lock"
		}
	}
	return "", ""
}

// walkStmts processes a statement list linearly, updating the held set
// and checking guarded accesses in order.
func (st *lockState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *lockState) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if key, op := st.lockCall(call); op != "" {
				st.checkExprList(call.Args)
				switch op {
				case "lock":
					st.held[key] = true
				case "unlock":
					delete(st.held, key)
				}
				return
			}
		}
		st.checkExpr(x.X)
	case *ast.AssignStmt:
		st.checkExprList(x.Rhs)
		st.checkExprList(x.Lhs)
		if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := st.pass.TypesInfo.Defs[id]; obj != nil {
					if aliasable(x.Rhs[i]) {
						st.aliases[obj] = st.canon(x.Rhs[i])
					}
				}
			}
		}
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to function end.
		if key, op := st.lockCall(x.Call); op == "unlock" && key != "" {
			return
		}
		st.checkExpr(x.Call)
	case *ast.GoStmt:
		st.checkExpr(x.Call)
	case *ast.IfStmt:
		if x.Init != nil {
			st.walkStmt(x.Init)
		}
		if key, neg := st.tryLockCond(x.Cond); key != "" {
			if neg {
				// if !mu.TryLock() { ...; mu.Lock() } — held after.
				st.clone().walkStmts(x.Body.List)
				st.held[key] = true
			} else {
				// if mu.TryLock() { ... } — held inside only.
				inner := st.clone()
				inner.held[key] = true
				inner.walkStmts(x.Body.List)
			}
			return
		}
		st.checkExpr(x.Cond)
		st.walkBranch(x.Body.List)
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			st.walkBranch(e.List)
		case *ast.IfStmt:
			st.walkBranch([]ast.Stmt{e})
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st.walkStmt(x.Init)
		}
		if x.Cond != nil {
			st.checkExpr(x.Cond)
		}
		body := x.Body.List
		if x.Post != nil {
			body = append(append([]ast.Stmt{}, body...), x.Post)
		}
		st.walkBranch(body)
	case *ast.RangeStmt:
		st.checkExpr(x.X)
		st.walkBranch(x.Body.List)
	case *ast.BlockStmt:
		st.walkStmts(x.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			st.walkStmt(x.Init)
		}
		if x.Tag != nil {
			st.checkExpr(x.Tag)
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			st.checkExprList(cc.List)
			st.walkBranch(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			st.walkBranch(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			st.walkBranch(c.(*ast.CommClause).Body)
		}
	case *ast.ReturnStmt:
		st.checkExprList(x.Results)
	case *ast.IncDecStmt:
		st.checkExpr(x.X)
	case *ast.SendStmt:
		st.checkExpr(x.Chan)
		st.checkExpr(x.Value)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					st.checkExprList(vs.Values)
				}
			}
		}
	case *ast.LabeledStmt:
		st.walkStmt(x.Stmt)
	}
}

// walkBranch processes a conditional branch: accesses inside are checked
// against a copy of the held set, and locks released in a branch that
// can fall through are treated as released afterwards.
func (st *lockState) walkBranch(stmts []ast.Stmt) {
	inner := st.clone()
	inner.walkStmts(stmts)
	if terminates(stmts) {
		return // a return/continue/break path doesn't affect the fall-through state
	}
	for key := range st.held {
		if !inner.held[key] {
			delete(st.held, key)
		}
	}
}

// tryLockCond matches `mu.TryLock()` and `!mu.TryLock()` conditions.
func (st *lockState) tryLockCond(cond ast.Expr) (key string, negated bool) {
	e := ast.Unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		if call, ok := ast.Unparen(u.X).(*ast.CallExpr); ok {
			if k, op := st.lockCall(call); op == "trylock" {
				return k, true
			}
		}
		return "", false
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if k, op := st.lockCall(call); op == "trylock" {
			return k, false
		}
	}
	return "", false
}

// aliasable limits alias tracking to address/selector/index chains.
func aliasable(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		return x.Op == token.AND && aliasable(x.X)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
		return true
	}
	return false
}

// checkExpr reports guarded-field accesses in e that lack their lock.
// Function literals are analyzed with a fresh (empty) held set: a
// closure may run on another goroutine, so it cannot inherit locks.
func (st *lockState) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	var stack []ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.FuncLit:
			fresh := &lockState{pass: st.pass, guards: st.guards, acquires: st.acquires,
				held: map[string]bool{}, aliases: map[types.Object]string{}}
			fresh.walkStmts(x.Body.List)
			return false
		case *ast.SelectorExpr:
			fv := fieldOf(st.pass.TypesInfo, x)
			if fv == nil {
				return true
			}
			spec, ok := st.guards[fv]
			if !ok {
				return true
			}
			base := st.canon(x.X)
			var required string
			if spec.indexed {
				idx, ok := parentOf(stack).(*ast.IndexExpr)
				if !ok || ast.Unparen(idx.X) != x {
					return true // whole-slice access (len/append/resize) is structural
				}
				required = base + "." + spec.lockField + "[" + st.canon(idx.Index) + "]"
			} else {
				required = base + "." + spec.lockField
			}
			if !st.held[required] {
				st.pass.Reportf(x.Sel.Pos(),
					"access to %s.%s (saga:guardedby %s) without holding %s",
					base, fv.Name(), spec.lockField, required)
			}
		}
		return true
	})
}

func (st *lockState) checkExprList(list []ast.Expr) {
	for _, e := range list {
		st.checkExpr(e)
	}
}
