package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestPanicCapture(t *testing.T) {
	analysistest.Run(t, ".", analysis.PanicCapture, "paniccapture_fx")
}
