package analysis

import (
	"go/ast"
	"go/types"
)

// FrozenWrite enforces `saga:frozen` annotations: a type or struct field
// declared frozen is immutable once published — epoch snapshots are read
// concurrently by unsynchronized queries and their arrays are recycled
// into the next epoch's build, so one stray store is a cross-epoch data
// corruption. The analyzer reports every store through frozen memory:
// element/field/pointer assignments, append and copy into frozen slices,
// and increment/decrement — tracking aliases through locals (`out :=
// s.CSR.Out; out[0] = x` is still a frozen write) and through calls that
// return slices or pointers carved out of a frozen value. Construction
// is exempt: locals freshly built in the same function (composite
// literal, new) may be initialized freely; freezing takes effect at the
// function boundary, i.e. as soon as the value is received from
// somewhere else.
var FrozenWrite = &Analyzer{
	Name: "frozenwrite",
	Doc: "check that saga:frozen types and fields are never written " +
		"after publication, tracking aliases through locals and returns",
	Run: runFrozenWrite,
}

func runFrozenWrite(pass *Pass) {
	fw := &frozenChecker{pass: pass}
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		fw.analyzeBody(decl.Body)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fw.analyzeBody(lit.Body)
			}
			return true
		})
	})
}

type frozenChecker struct {
	pass *Pass
}

// frozenFact is the set of locals currently aliasing frozen memory.
type frozenFact map[types.Object]bool

// analyzeBody runs the alias-tracking taint analysis over one body.
func (fw *frozenChecker) analyzeBody(body *ast.BlockStmt) {
	if fw.pass.pkg.annot == nil ||
		(len(fw.pass.pkg.annot.frozenTypes) == 0 && len(fw.pass.pkg.annot.frozenFields) == 0) {
		return
	}
	fresh := fw.freshLocals(body)
	cfg := fw.pass.pkg.cfgOf(body)
	spec := fw.spec(body, fresh)
	in := forward(cfg, spec)
	forEachNodeFact(cfg, spec, in, func(f frozenFact, n ast.Node) {
		fw.checkNode(f, fresh, n)
	})
}

// freshLocals finds locals initialized by constructing a frozen value in
// this function (composite literal, new); writes during construction are
// legitimate — the value is not published yet.
func (fw *frozenChecker) freshLocals(body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := identObj(fw.pass.TypesInfo, id)
			if obj == nil || !fw.pass.frozenType(obj.Type()) {
				continue
			}
			switch rhs := unwrapAddr(as.Rhs[i]).(type) {
			case *ast.CompositeLit:
				fresh[obj] = true
			case *ast.CallExpr:
				if fid, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && fid.Name == "new" {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// frozen reports whether e denotes (or aliases) frozen memory under fact
// f. Fresh locals under construction are exempt.
func (fw *frozenChecker) frozen(f frozenFact, fresh map[types.Object]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := fw.pass.TypesInfo.Uses[x]
		if obj == nil {
			return false
		}
		if f[obj] {
			return true
		}
		if fresh[obj] {
			return false
		}
		return fw.pass.frozenType(obj.Type())
	case *ast.SelectorExpr:
		if v := fieldOf(fw.pass.TypesInfo, x); v != nil && fw.pass.frozenField(v) {
			// A frozen field of a value still under construction is not
			// frozen yet.
			if root := rootIdent(x.X); root != nil {
				if obj := fw.pass.TypesInfo.Uses[root]; obj != nil && fresh[obj] {
					return false
				}
			}
			return true
		}
		return fw.frozen(f, fresh, x.X)
	case *ast.IndexExpr:
		return fw.frozen(f, fresh, x.X)
	case *ast.SliceExpr:
		return fw.frozen(f, fresh, x.X)
	case *ast.StarExpr:
		return fw.frozen(f, fresh, x.X)
	case *ast.UnaryExpr:
		return fw.frozen(f, fresh, x.X)
	case *ast.CallExpr:
		// A call that carves an aliasing view (slice, pointer) out of a
		// frozen receiver or argument returns frozen memory.
		if !aliasingType(fw.pass.TypesInfo.TypeOf(e)) {
			return false
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := fw.pass.TypesInfo.Selections[sel]; isMethod && fw.frozen(f, fresh, sel.X) {
				return true
			}
		}
		for _, a := range x.Args {
			if fw.frozen(f, fresh, a) {
				return true
			}
		}
		return false
	}
	return false
}

// aliasingType reports whether values of t share underlying memory when
// copied: slices, pointers, maps, and structs/arrays containing them.
func aliasingType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasingType(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return aliasingType(u.Elem())
	}
	return false
}

func (fw *frozenChecker) spec(body *ast.BlockStmt, fresh map[types.Object]bool) flowSpec[frozenFact] {
	return flowSpec[frozenFact]{
		init: func() frozenFact { return frozenFact{} },
		clone: func(f frozenFact) frozenFact {
			c := make(frozenFact, len(f))
			for k := range f {
				c[k] = true
			}
			return c
		},
		// May-analysis: aliasing frozen memory on any path taints the join.
		merge: func(acc, in frozenFact) bool {
			changed := false
			for k := range in {
				if !acc[k] {
					acc[k] = true
					changed = true
				}
			}
			return changed
		},
		transfer: func(f frozenFact, n ast.Node) {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return
				}
				for i, lhs := range x.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := identObj(fw.pass.TypesInfo, id)
					if obj == nil || !declaredIn(obj, body) {
						continue
					}
					if aliasingType(fw.pass.TypesInfo.TypeOf(x.Rhs[i])) && fw.frozen(f, fresh, x.Rhs[i]) {
						f[obj] = true
					} else {
						delete(f, obj) // rebound to something unfrozen
					}
				}
			case *ast.RangeStmt:
				// `for i, v := range frozenSlice`: an aliasing-typed value
				// binding (e.g. ranging over [][]T) taints v.
				if x.Value != nil {
					if id, ok := x.Value.(*ast.Ident); ok && id.Name != "_" {
						obj := identObj(fw.pass.TypesInfo, id)
						if obj != nil && aliasingType(obj.Type()) && fw.frozen(f, fresh, x.X) {
							f[obj] = true
						}
					}
				}
			}
		},
	}
}

// checkNode reports stores through frozen memory in one CFG node.
func (fw *frozenChecker) checkNode(f frozenFact, fresh map[types.Object]bool, n ast.Node) {
	report := func(e ast.Expr, what string) {
		fw.pass.Reportf(e.Pos(), "%s saga:frozen memory (%s)", what, exprText(fw.pass.Fset, e))
	}
	switch x := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			fw.checkStoreTarget(f, fresh, lhs, report)
		}
		for _, rhs := range x.Rhs {
			fw.checkBuiltins(f, fresh, rhs, report)
		}
	case *ast.IncDecStmt:
		fw.checkStoreTarget(f, fresh, x.X, report)
	case *ast.RangeStmt:
		// Only the range header lives in this block; the body has its own.
		fw.checkBuiltins(f, fresh, x.X, report)
	case *ast.ExprStmt:
		fw.checkBuiltins(f, fresh, x.X, report)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			fw.checkBuiltins(f, fresh, r, report)
		}
	case *ast.DeferStmt:
		fw.checkBuiltins(f, fresh, x.Call, report)
	case *ast.GoStmt:
		fw.checkBuiltins(f, fresh, x.Call, report)
	default:
		if e, ok := n.(ast.Expr); ok {
			fw.checkBuiltins(f, fresh, e, report)
		}
	}
}

// checkStoreTarget reports when an assignment target writes through
// frozen memory: x[i] = v, *p = v, s.F = v, with any frozen base.
func (fw *frozenChecker) checkStoreTarget(f frozenFact, fresh map[types.Object]bool, lhs ast.Expr, report func(ast.Expr, string)) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if fw.frozen(f, fresh, x.X) {
			report(lhs, "write into")
		}
	case *ast.StarExpr:
		if fw.frozen(f, fresh, x.X) {
			report(lhs, "write through")
		}
	case *ast.SelectorExpr:
		if v := fieldOf(fw.pass.TypesInfo, x); v != nil && fw.pass.frozenField(v) {
			if root := rootIdent(x.X); root != nil {
				if obj := fw.pass.TypesInfo.Uses[root]; obj != nil && fresh[obj] {
					return
				}
			}
			report(lhs, "write to")
			return
		}
		if fw.frozen(f, fresh, x.X) {
			report(lhs, "write into")
		}
	}
}

// checkBuiltins reports append/copy into frozen slices anywhere in e
// (both may write through the shared backing array).
func (fw *frozenChecker) checkBuiltins(f frozenFact, fresh map[types.Object]bool, e ast.Expr, report func(ast.Expr, string)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if _, isBuiltin := fw.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		switch id.Name {
		case "append":
			if fw.frozen(f, fresh, call.Args[0]) {
				report(call.Args[0], "append may write into")
			}
		case "copy":
			if fw.frozen(f, fresh, call.Args[0]) {
				report(call.Args[0], "copy writes into")
			}
		}
		return true
	})
}
