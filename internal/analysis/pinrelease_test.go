package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestPinRelease(t *testing.T) {
	analysistest.Run(t, ".", analysis.PinRelease, "pinrelease_fx")
}
