package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// exprText renders an expression as source text (for diagnostics and for
// the lexical lock keys lockheld matches on).
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// rootIdent returns the leftmost identifier of a selector/index/star/
// paren chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// unwrapAddr strips a leading &, parens included.
func unwrapAddr(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return ast.Unparen(u.X)
	}
	return e
}

// calleeFunc resolves a call's callee to its types.Func (methods and
// package-level functions), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether the call is to package-level function
// pkgPath.name. The fixture harness loads packages under bare import
// paths, so the last path element also matches.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	p := f.Pkg().Path()
	return p == pkgPath || strings.HasSuffix(pkgPath, "/"+p)
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// funcAnnotations extracts `saga:<key> <value>` lines from a doc comment.
func funcAnnotations(doc *ast.CommentGroup) map[string]string {
	if doc == nil {
		return nil
	}
	out := map[string]string{}
	for _, c := range doc.List {
		text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
		if rest, ok := strings.CutPrefix(text, "saga:"); ok {
			key, val, _ := strings.Cut(rest, " ")
			out[key] = strings.TrimSpace(val)
		}
	}
	return out
}

var fieldAnnotationRe = regexp.MustCompile(`saga:(guardedby|chunked|frozen)\b\s*([^\s]*)`)

// fieldAnnotation scans a struct field's doc and line comments for a
// saga:guardedby/saga:chunked/saga:frozen annotation; returns the key
// and value.
func fieldAnnotation(field *ast.Field) (key, value string) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := fieldAnnotationRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], m[2]
			}
		}
	}
	return "", ""
}

// terminates reports whether a statement list always transfers control
// away (return, continue, break, goto, panic) on its final statement.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseTerm = terminates([]ast.Stmt{e})
		}
		return elseTerm && terminates(s.Body.List)
	}
	return false
}

// intAnnotation parses an integer annotation value, 0 on failure.
func intAnnotation(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}

// forEachFunc visits every function/method declaration with a body, and
// every package-level function literal in var initializers.
func forEachFunc(files []*ast.File, fn func(decl *ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// declaredIn reports whether obj's declaration lies inside node.
func declaredIn(obj types.Object, node ast.Node) bool {
	return obj != nil && node.Pos() <= obj.Pos() && obj.Pos() <= node.End()
}
