// Package analysis is sagavet's analyzer suite: repo-specific static
// checks that make SAGA-Bench's concurrency, determinism, and durability
// invariants machine-checkable instead of fuzz-discovered. The framework
// mirrors golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) but
// is built on the standard library's go/ast + go/types only, so the suite
// works in hermetic builds with no module downloads.
//
// Analyzers are scoped and tuned by structured comments:
//
//	// saga:lockless          package marker: chunk-ownership rules apply
//	// saga:deterministic     package marker: on the replay-deterministic list
//	// saga:paniccapture      package marker: goroutines must capture panics
//	// saga:durable           package marker: no discarded error returns
//	// saga:guardedby <lock>  field annotation: only touch under <lock>
//	// saga:chunked           field annotation: slice is indexed by chunk id
//	// saga:frozen            type/field annotation: immutable once published
//	// saga:chunksafe         func annotation: mutates only chunk-owned args
//	// saga:acquires <n>      func annotation: locks the mutex passed as arg n
//	// saga:pin               func annotation: result is a pin that must be released
//	// saga:pinrelease        func annotation: releases a pin (receiver or arg)
//	// saga:hotpath           func annotation: body must not allocate
//	// saga:classifier        func annotation: classifies an error transient/permanent
//	// saga:classifies        func annotation: entry point whose results are classified
//	// saga:classified        func annotation: returned errors must be classified
//	// saga:allow <analyzer> -- <reason>   audited suppression for one line
//
// Every suppression requires the "-- reason" trailer; an allow comment
// without a reason is itself reported. The flow-sensitive analyzers
// (lockheld, pinrelease, frozenwrite, retryclass) share the CFG +
// worklist dataflow engine in cfg.go/dataflow.go/defuse.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is the one-paragraph description printed by `sagavet help`.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Markers holds the package's saga: markers (lockless, deterministic,
	// paniccapture, durable).
	Markers map[string]bool

	pkg  *Package
	diag *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	}
	d.Suppressed, d.SuppressReason = p.pkg.allowed(p.Analyzer.Name, position)
	*p.diag = append(*p.diag, d)
}

// Diagnostic is one finding, possibly suppressed by an audited
// saga:allow comment.
type Diagnostic struct {
	Analyzer       string
	Pos            token.Position
	Message        string
	Suppressed     bool
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns the full sagavet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		LockHeld,
		ChunkOwner,
		Determinism,
		PanicCapture,
		ErrcheckDurable,
		PinRelease,
		FrozenWrite,
		HotAlloc,
		RetryClass,
	}
}

// ByName resolves a comma-separated analyzer list; empty selects All.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position. Suppressed findings are included (the
// caller decides whether to print them); malformed saga:allow comments
// surface as findings of the pseudo-analyzer "sagavet".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Markers:   pkg.Markers,
				pkg:       pkg,
				diag:      &diags,
			}
			a.Run(pass)
		}
		diags = append(diags, pkg.allowErrors...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// One source line can yield the same finding twice (e.g. the guarded
	// field on both sides of `x.f = append(x.f, v)`); keep one.
	seen := map[string]bool{}
	dedup := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s|%s|%d|%s", d.Analyzer, d.Pos.Filename, d.Pos.Line, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		dedup = append(dedup, d)
	}
	return dedup
}

// allowRe matches audited suppressions: saga:allow <analyzer> -- <reason>.
// The analyzer name is restricted to the registered set so that prose
// mentioning "saga:allow" in documentation does not parse as a site.
var allowRe *regexp.Regexp

func init() {
	names := make([]string, 0, len(All()))
	for _, a := range All() {
		names = append(names, regexp.QuoteMeta(a.Name))
	}
	allowRe = regexp.MustCompile(`saga:allow\s+(` + strings.Join(names, "|") + `)\b(?:\s+--\s*(.*))?`)
}

// allowSite is one saga:allow comment, keyed by file and line.
type allowSite struct {
	analyzer string
	reason   string
}

// collectAllows scans a package's comments for saga:allow sites. A
// comment suppresses the named analyzer on its own line and, for
// full-line comments, on the following line.
func collectAllows(fset *token.FileSet, files []*ast.File) (map[string]map[int]allowSite, []Diagnostic) {
	allows := map[string]map[int]allowSite{}
	var bad []Diagnostic
	srcCache := map[string][]byte{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "sagavet",
						Pos:      pos,
						Message:  fmt.Sprintf("saga:allow %s has no audit reason (want `saga:allow %s -- <reason>`)", m[1], m[1]),
					})
					continue
				}
				perFile := allows[pos.Filename]
				if perFile == nil {
					perFile = map[int]allowSite{}
					allows[pos.Filename] = perFile
				}
				site := allowSite{analyzer: m[1], reason: strings.TrimSpace(m[2])}
				perFile[pos.Line] = site
				// A comment on its own line covers the next line of code.
				if isCommentOnlyLine(srcCache, pos) {
					perFile[pos.Line+1] = site
				}
			}
		}
	}
	return allows, bad
}

// isCommentOnlyLine reports whether the comment starting at pos is the
// first token on its line, i.e. only whitespace precedes it. Full-line
// comments (indented or not) cover the next line of code; suffix comments
// trailing code cover only their own line. The check reads the source
// file (cached per file); if the bytes are unavailable the comment is
// treated as a suffix comment, the narrower suppression.
func isCommentOnlyLine(srcCache map[string][]byte, pos token.Position) bool {
	if pos.Column == 1 {
		return true
	}
	src, ok := srcCache[pos.Filename]
	if !ok {
		src, _ = os.ReadFile(pos.Filename)
		srcCache[pos.Filename] = src
	}
	lineStart := pos.Offset - (pos.Column - 1)
	if lineStart < 0 || pos.Offset > len(src) {
		return false
	}
	for _, b := range src[lineStart:pos.Offset] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

// marker comments recognized on any package file.
var markerNames = []string{"lockless", "deterministic", "paniccapture", "durable"}

func collectMarkers(files []*ast.File) map[string]bool {
	markers := map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
				for _, m := range markerNames {
					if strings.HasPrefix(text, "saga:"+m) {
						markers[m] = true
					}
				}
			}
		}
	}
	return markers
}
