package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinRelease enforces pin lifecycles: the result of a function annotated
// `saga:pin` (an epoch snapshot pin, a core.QueryHandle) must reach a
// `saga:pinrelease` call on every path out of the acquiring function —
// early error returns, branch exits, and explicit panics included. A
// leaked pin permanently blocks epoch.Manager's double-buffer reuse, so
// the analyzer is a forward may-analysis over the shared CFG engine: the
// outstanding-pin set unions at joins, `h.Release()` (statement, defer,
// or deferred closure) removes a pin, and the standard nil/error checks
// after an acquire (`if err != nil`, `if h == nil`) kill the pin along
// the failure edge. Pins that escape the function — returned, stored
// into a struct or global, or captured by a non-deferred closure —
// transfer ownership and stop being tracked.
var PinRelease = &Analyzer{
	Name: "pinrelease",
	Doc: "check that every saga:pin acquisition reaches a saga:pinrelease " +
		"call on all paths, including error and panic exits",
	Run: runPinRelease,
}

func runPinRelease(pass *Pass) {
	pr := &pinChecker{pass: pass}
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		pr.analyzeBody(decl.Body)
		// Function literals get their own lifecycle analysis: a pin
		// acquired inside a closure must be released inside it.
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				pr.analyzeBody(lit.Body)
			}
			return true
		})
	})
}

type pinChecker struct {
	pass *Pass
}

// acquireSite is one tracked `h, err := acquire()` (or `h := acquire()`)
// statement.
type acquireSite struct {
	pos    token.Pos
	callee string
	pinObj types.Object
	errObj types.Object // the tuple's error result, if bound
}

// pinFact maps each local currently holding a live pin to the acquire
// site position it came from. Aliases (`h2 := h`) map to the same site;
// releasing through any alias releases the site.
type pinFact map[types.Object]token.Pos

func (pr *pinChecker) isPinCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pr.pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if _, ok := pr.pass.funcAnnotation(fn, "pin"); ok {
		return fn.Name(), true
	}
	return "", false
}

func (pr *pinChecker) isReleaseCall(call *ast.CallExpr) bool {
	fn := calleeFunc(pr.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	_, ok := pr.pass.funcAnnotation(fn, "pinrelease")
	return ok
}

// releasedObjs returns the objects a release call releases: the method
// receiver and every plain-identifier argument.
func (pr *pinChecker) releasedObjs(call *ast.CallExpr) []types.Object {
	var objs []types.Object
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pr.pass.TypesInfo.Uses[id]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		add(sel.X)
	}
	for _, a := range call.Args {
		add(a)
	}
	return objs
}

// analyzeBody runs the pin lifecycle analysis over one function body.
func (pr *pinChecker) analyzeBody(body *ast.BlockStmt) {
	info := pr.pass.TypesInfo

	// Pre-pass 1: find acquire sites (top-level statements binding a
	// saga:pin result to a local).
	sites := map[ast.Node]*acquireSite{} // acquire statement -> site
	byErr := map[types.Object][]*acquireSite{}
	var discarded []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				if _, ok := pr.isPinCall(call); ok {
					discarded = append(discarded, call)
				}
			}
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := pr.isPinCall(call)
			if !ok {
				return true
			}
			site := &acquireSite{pos: call.Pos(), callee: callee}
			if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				site.pinObj = identObj(info, id)
			}
			if len(x.Lhs) > 1 {
				if id, ok := x.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
					if obj := identObj(info, id); obj != nil && isErrorObj(obj) {
						site.errObj = obj
					}
				}
			}
			if site.pinObj == nil {
				discarded = append(discarded, call)
				return true
			}
			sites[ast.Node(x)] = site
			if site.errObj != nil {
				byErr[site.errObj] = append(byErr[site.errObj], site)
			}
		}
		return true
	})

	for _, call := range discarded {
		name := "acquire"
		if n, ok := pr.isPinCall(call); ok {
			name = n
		}
		pr.pass.Reportf(call.Pos(), "pin returned by %s is discarded and can never be released", name)
	}
	if len(sites) == 0 {
		return
	}

	// Pre-pass 2: pins whose value escapes local dataflow transfer
	// ownership — stop tracking them.
	du := buildDefUse(info, body)
	escaped := map[types.Object]bool{}
	for _, site := range sites {
		for _, u := range du.uses[site.pinObj] {
			switch u.kind {
			case useAddr, useEscapeStore, useComposite, useReturn:
				escaped[site.pinObj] = true
			case useCallArg:
				if !pr.isReleaseCall(u.call) {
					escaped[site.pinObj] = true
				}
			case useCapture:
				if !(u.inDefer && pr.litReleases(u.fn, site.pinObj)) {
					escaped[site.pinObj] = true
				}
			}
		}
	}

	cfg := pr.pass.pkg.cfgOf(body)
	spec := pr.spec(sites, byErr, escaped)
	in := forward(cfg, spec)

	// Overwrite check: acquiring into a local that still holds a live pin
	// loses the old pin.
	forEachNodeFact(cfg, spec, in, func(f pinFact, n ast.Node) {
		site, ok := sites[n]
		if !ok || escaped[site.pinObj] {
			return
		}
		if old, live := f[site.pinObj]; live && old != site.pos {
			pr.pass.Reportf(site.pos,
				"pin from %s overwrites a pin that was never released", site.callee)
		}
	})

	// Leak check: anything outstanding at the function exit, or at an
	// explicit panic, escaped every release path.
	leak := map[token.Pos]string{}
	if exit, ok := in[cfg.Exit]; ok {
		for _, pos := range exit {
			leak[pos] = "is not released on all paths"
		}
	}
	for _, blk := range cfg.Panics {
		f, ok := in[blk]
		if !ok {
			continue
		}
		out := spec.clone(f)
		for _, n := range blk.Nodes {
			spec.transfer(out, n)
		}
		for _, pos := range out {
			if _, already := leak[pos]; !already {
				leak[pos] = "is still pinned when this function panics (release it with defer)"
			}
		}
	}
	for _, site := range sites {
		if msg, ok := leak[site.pos]; ok {
			pr.pass.Reportf(site.pos, "pin from %s %s", site.callee, msg)
		}
	}
}

// litReleases reports whether a (deferred) closure body releases obj.
func (pr *pinChecker) litReleases(lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && pr.isReleaseCall(call) {
			for _, o := range pr.releasedObjs(call) {
				if o == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func (pr *pinChecker) spec(sites map[ast.Node]*acquireSite, byErr map[types.Object][]*acquireSite, escaped map[types.Object]bool) flowSpec[pinFact] {
	release := func(f pinFact, objs []types.Object) {
		for _, obj := range objs {
			pos, ok := f[obj]
			if !ok {
				continue
			}
			for o, p := range f {
				if p == pos {
					delete(f, o)
				}
			}
		}
	}
	killSite := func(f pinFact, pos token.Pos) {
		for o, p := range f {
			if p == pos {
				delete(f, o)
			}
		}
	}
	return flowSpec[pinFact]{
		init: func() pinFact { return pinFact{} },
		clone: func(f pinFact) pinFact {
			c := make(pinFact, len(f))
			for k, v := range f {
				c[k] = v
			}
			return c
		},
		// May-analysis: a pin outstanding on any inbound path is
		// outstanding after the join.
		merge: func(acc, in pinFact) bool {
			changed := false
			for k, v := range in {
				if _, ok := acc[k]; !ok {
					acc[k] = v
					changed = true
				}
			}
			return changed
		},
		transfer: func(f pinFact, n ast.Node) {
			// Releases anywhere in the node (statement calls, `err :=
			// h.ReleaseChecked()`, `return h.ReleaseChecked()`); deferred
			// closures release because they run on every later exit. A
			// range header only contributes its operand — the body's
			// statements live in their own blocks.
			scan := n
			if r, ok := n.(*ast.RangeStmt); ok {
				scan = r.X
			}
			ast.Inspect(scan, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.DeferStmt:
					if pr.isReleaseCall(x.Call) {
						release(f, pr.releasedObjs(x.Call))
						return false
					}
					if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
						for obj := range f {
							if pr.litReleases(lit, obj) {
								release(f, []types.Object{obj})
							}
						}
						return false
					}
				case *ast.CallExpr:
					if pr.isReleaseCall(x) {
						release(f, pr.releasedObjs(x))
					}
				}
				return true
			})
			// Acquires: bind the pin to its local.
			if site, ok := sites[n]; ok && !escaped[site.pinObj] {
				f[site.pinObj] = site.pos
			}
			// Aliases: `h2 := h` tracks the same pin.
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i, lhs := range as.Lhs {
					lid, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					rid, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					src := pr.pass.TypesInfo.Uses[rid]
					dst := identObj(pr.pass.TypesInfo, lid)
					if src == nil || dst == nil {
						continue
					}
					if pos, live := f[src]; live {
						f[dst] = pos
					}
				}
			}
		},
		// Failure edges after an acquire: `if err != nil` / `if h == nil`
		// means the acquire failed — no pin to release on that path.
		edge: func(f pinFact, e *Edge) {
			if e.Cond == nil {
				return
			}
			obj, eq := nilCheck(pr.pass.TypesInfo, e.Cond)
			if obj == nil {
				return
			}
			objIsNil := (eq && e.Kind == EdgeTrue) || (!eq && e.Kind == EdgeFalse)
			if objIsNil {
				if pos, ok := f[obj]; ok {
					// The pin variable itself is nil on this edge.
					killSite(f, pos)
				}
			} else {
				// The paired error is non-nil: the acquire failed and
				// returned no pin on this edge.
				for _, site := range byErr[obj] {
					killSite(f, site.pos)
				}
			}
		},
	}
}

// identObj resolves an identifier to its object (definition or use).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isErrorObj reports whether obj has type error.
func isErrorObj(obj types.Object) bool {
	return obj != nil && types.Identical(obj.Type(), errorType)
}

// nilCheck matches `x == nil` / `x != nil` conditions; eq reports the
// operator (true for ==).
func nilCheck(info *types.Info, cond ast.Expr) (types.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
	}
	var other ast.Expr
	switch {
	case isNil(be.X):
		other = be.Y
	case isNil(be.Y):
		other = be.X
	default:
		return nil, false
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return nil, false
	}
	return info.Uses[id], be.Op == token.EQL
}
