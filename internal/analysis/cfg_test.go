package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and type-checks one file of test source.
func typecheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("t", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return fset, f, info
}

func funcBody(t *testing.T, f *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func TestCFGBranchesLoopsAndPanics(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package t
func f(n int) int {
	if n < 0 {
		panic("neg")
	}
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	switch n {
	case 1:
		return 1
	default:
		total++
	}
	return total
}`)
	cfg := buildCFG(funcBody(t, f, "f"))

	if len(cfg.Panics) != 1 {
		t.Fatalf("got %d panic blocks, want 1", len(cfg.Panics))
	}
	if len(cfg.Panics[0].Succs) != 0 {
		t.Errorf("panic block has %d successors, want 0", len(cfg.Panics[0].Succs))
	}
	if len(cfg.Exit.Preds) < 2 {
		t.Errorf("exit has %d preds, want >= 2 (two returns)", len(cfg.Exit.Preds))
	}

	// Every condition block must branch with True/False edges carrying
	// the condition expression.
	condEdges := 0
	for _, blk := range cfg.Blocks {
		for _, e := range blk.Succs {
			if e.Kind == EdgeTrue || e.Kind == EdgeFalse {
				condEdges++
				if e.Cond == nil {
					t.Errorf("branch edge from block %d has no condition", blk.Index)
				}
			}
		}
	}
	if condEdges < 4 {
		t.Errorf("got %d branch edges, want >= 4 (if + for cond, both polarities)", condEdges)
	}
}

func TestCFGDefersAndGoto(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package t
func g(n int) {
	defer println("done")
retry:
	if n > 0 {
		n--
		goto retry
	}
}`)
	cfg := buildCFG(funcBody(t, f, "g"))
	if len(cfg.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(cfg.Defers))
	}
	// The goto must produce a back edge: some block other than Entry has
	// more than one predecessor (label target reached from fallthrough
	// and from goto).
	back := false
	for _, blk := range cfg.Blocks {
		if blk != cfg.Entry && len(blk.Preds) >= 2 {
			back = true
		}
	}
	if !back {
		t.Error("no join block found for the goto back edge")
	}
}

// TestForwardUnreachable checks that statements after a return get no
// dataflow fact (the solver never visits unreachable blocks).
func TestForwardUnreachable(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package t
func h() int {
	goto end
	println("dead")
end:
	return 1
}`)
	cfg := buildCFG(funcBody(t, f, "h"))
	spec := flowSpec[map[string]bool]{
		init: func() map[string]bool { return map[string]bool{} },
		clone: func(m map[string]bool) map[string]bool {
			c := map[string]bool{}
			for k := range m {
				c[k] = true
			}
			return c
		},
		merge:    func(acc, in map[string]bool) bool { return false },
		transfer: func(map[string]bool, ast.Node) {},
	}
	in := forward(cfg, spec)
	for _, blk := range cfg.Blocks {
		dead := false
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "println" {
						dead = true
					}
				}
			}
		}
		if _, reached := in[blk]; dead && reached {
			t.Error("unreachable block received a dataflow fact")
		}
	}
	if _, ok := in[cfg.Exit]; !ok {
		t.Error("exit block unreachable despite a return")
	}
}

// TestLiveOut exercises the backward solver: the accumulator is live at
// the loop head (read after the loop), the loop variable is not live at
// function exit.
func TestLiveOut(t *testing.T) {
	_, f, info := typecheckSrc(t, `package t
func k(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	body := funcBody(t, f, "k")
	cfg := buildCFG(body)
	live := liveOut(cfg, info, body)

	var sObj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "s" && info.Defs[id] != nil {
			sObj = info.Defs[id]
		}
		return true
	})
	if sObj == nil {
		t.Fatal("no def of s")
	}

	// Find the range-head block and check s is live leaving it.
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				if out, ok := live[blk]; !ok || !out[sObj] {
					t.Errorf("s not live at the range head (got %v)", out)
				}
			}
		}
	}
	if out, ok := live[cfg.Exit]; ok && out[sObj] {
		t.Error("s live at function exit")
	}
}

// TestDefUseClassification checks the escape-relevant use kinds the
// lifecycle analyzers depend on.
func TestDefUseClassification(t *testing.T) {
	_, f, info := typecheckSrc(t, `package t
func use(interface{}) {}
var sinkP *int
func m() *int {
	a := 1
	b := 2
	c := 3
	d := 4
	use(a)
	sinkP = &b
	go func() { println(c) }()
	return &d
}`)
	body := funcBody(t, f, "m")
	du := buildDefUse(info, body)

	find := func(name string) types.Object {
		var obj types.Object
		ast.Inspect(body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name && info.Defs[id] != nil {
				obj = info.Defs[id]
			}
			return true
		})
		if obj == nil {
			t.Fatalf("no def of %s", name)
		}
		return obj
	}
	has := func(obj types.Object, kind useKind) bool {
		for _, u := range du.uses[obj] {
			if u.kind == kind {
				return true
			}
		}
		return false
	}
	if !has(find("a"), useCallArg) {
		t.Error("a: expected a call-arg use")
	}
	if !has(find("b"), useAddr) {
		t.Error("b: expected an address-taken use")
	}
	if !has(find("c"), useCapture) {
		t.Error("c: expected a closure-capture use")
	}
	// d is used as &d inside a return: either classification (addr or
	// return) marks it escaping, addr is what the walker sees first.
	dObj := find("d")
	if !has(dObj, useAddr) && !has(dObj, useReturn) {
		t.Error("d: expected an addr/return use")
	}
}
