package analysis

import (
	"go/ast"
	"go/types"
)

// Def-use chains over function bodies. The lifecycle analyzers
// (pinrelease, frozenwrite) need to know not just *that* a local is used
// but *how* — returned, address-taken, stored into non-local memory,
// captured by a closure, handed to a call — because each of those either
// releases the analyzer from tracking responsibility or transfers it.
// buildDefUse classifies every occurrence of every function-local
// variable; liveOut is the classic backward may-analysis over the same
// CFGs, exercised by the engine tests to pin down the backward solver.

// useKind classifies how one identifier occurrence consumes its value.
type useKind uint8

const (
	useRead        useKind = iota // plain rvalue read (includes local-to-local copy)
	useWrite                      // assignment target (plain `=`)
	useDef                        // `:=` definition or var-decl binding
	useCallArg                    // passed as a call argument
	useCallRecv                   // method-call receiver
	useReturn                     // returned from the function
	useAddr                       // address taken
	useEscapeStore                // stored into non-local memory (field, element, global, channel)
	useComposite                  // placed in a composite literal
	useCapture                    // referenced from a nested function literal
)

// use is one classified occurrence of a local variable.
type use struct {
	kind useKind
	id   *ast.Ident
	call *ast.CallExpr // the enclosing call for useCallArg/useCallRecv
	// fn is the capturing literal for useCapture.
	fn *ast.FuncLit
	// inDefer marks occurrences that execute at defer time — directly in a
	// defer statement or inside a directly-deferred closure.
	inDefer bool
}

// defUse holds the classified occurrences of each local variable of one
// function body, in source order.
type defUse struct {
	uses map[types.Object][]use
}

// parentsOf records each node's syntactic parent under root.
func parentsOf(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// localVar resolves an identifier to the function-local variable it
// names, or nil (fields, globals, and functions are not locals).
func localVar(info *types.Info, body ast.Node, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !declaredIn(v, body) {
		return nil
	}
	return v
}

// buildDefUse walks body and classifies every occurrence of every local
// variable.
func buildDefUse(info *types.Info, body ast.Node) *defUse {
	du := &defUse{uses: map[types.Object][]use{}}
	parents := parentsOf(body)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := localVar(info, body, id)
		if v == nil {
			return true
		}
		du.uses[v] = append(du.uses[v], classifyUse(info, parents, body, id, v))
		return true
	})
	return du
}

// classifyUse determines how one identifier occurrence consumes its value
// by examining its ancestors.
func classifyUse(info *types.Info, parents map[ast.Node]ast.Node, body ast.Node, id *ast.Ident, v *types.Var) use {
	u := use{kind: useRead, id: id}

	// Capture: the occurrence sits inside a function literal the variable
	// was not declared in.
	for n := parents[id]; n != nil; n = parents[n] {
		if lit, ok := n.(*ast.FuncLit); ok && !declaredIn(v, lit) {
			u.kind = useCapture
			u.fn = lit
			if d, ok := parents[parents[lit]].(*ast.DeferStmt); ok {
				if call, ok2 := parents[lit].(*ast.CallExpr); ok2 && d.Call == call && call.Fun == lit {
					u.inDefer = true
				}
			}
			return u
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			u.inDefer = true
		}
	}

	// Skip intermediate parens when reading the immediate context.
	child := ast.Node(id)
	p := parents[id]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			child = p
			p = parents[pe]
			continue
		}
		break
	}

	switch x := p.(type) {
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			u.kind = useAddr
		}
	case *ast.CallExpr:
		for _, a := range x.Args {
			if ast.Unparen(a) == child || a == child {
				u.kind = useCallArg
				u.call = x
			}
		}
	case *ast.SelectorExpr:
		// Receiver of a method call: h.Release().
		if x.X == child {
			if call, ok := parents[x].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == x {
				if _, isMethod := info.Selections[x]; isMethod {
					u.kind = useCallRecv
					u.call = call
				}
			}
		}
	case *ast.ReturnStmt:
		u.kind = useReturn
	case *ast.CompositeLit:
		u.kind = useComposite
	case *ast.KeyValueExpr:
		if x.Value == child {
			u.kind = useComposite
		}
	case *ast.SendStmt:
		if x.Value == child {
			u.kind = useEscapeStore
		}
	case *ast.AssignStmt:
		for _, l := range x.Lhs {
			if l == child {
				if info.Defs[id] != nil {
					u.kind = useDef
				} else {
					u.kind = useWrite
				}
				return u
			}
		}
		// Appearing on the right-hand side: a copy into pure local idents
		// stays a read (the analyzer decides what aliasing means); anything
		// else stores the value into memory we cannot see.
		for _, l := range x.Lhs {
			if lid, ok := ast.Unparen(l).(*ast.Ident); ok {
				if lid.Name == "_" || localVar(info, body, lid) != nil || info.Defs[lid] != nil {
					continue
				}
			}
			u.kind = useEscapeStore
			return u
		}
	case *ast.ValueSpec:
		for _, name := range x.Names {
			if name == child {
				u.kind = useDef
				return u
			}
		}
	}
	return u
}

// objset is a set of variables, the fact type of the liveness analysis.
type objset map[types.Object]bool

// livenessSpec builds the backward live-variables problem for one body:
// live = (live − defs(n)) ∪ reads(n), union merge at joins.
func livenessSpec(info *types.Info, body ast.Node) flowSpec[objset] {
	addReads := func(live objset, n ast.Node, skip map[*ast.Ident]bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && !skip[id] {
				if v := localVar(info, body, id); v != nil && info.Uses[id] != nil {
					live[v] = true
				}
			}
			return true
		})
	}
	return flowSpec[objset]{
		init: func() objset { return objset{} },
		clone: func(s objset) objset {
			out := make(objset, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
		merge: func(acc, in objset) bool {
			changed := false
			for k := range in {
				if !acc[k] {
					acc[k] = true
					changed = true
				}
			}
			return changed
		},
		transfer: func(live objset, n ast.Node) {
			switch x := n.(type) {
			case *ast.AssignStmt:
				skip := map[*ast.Ident]bool{}
				for _, l := range x.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						if v := localVar(info, body, id); v != nil {
							delete(live, v)
							skip[id] = true
						}
					}
				}
				addReads(live, x, skip)
			case *ast.RangeStmt:
				skip := map[*ast.Ident]bool{}
				for _, l := range []ast.Expr{x.Key, x.Value} {
					if id, ok := l.(*ast.Ident); ok {
						if v := localVar(info, body, id); v != nil {
							delete(live, v)
							skip[id] = true
						}
					}
				}
				addReads(live, x.X, skip)
			default:
				addReads(live, n, nil)
			}
		},
	}
}

// liveOut solves live variables for one body and returns, per block, the
// set of locals live at the block's exit.
func liveOut(cfg *CFG, info *types.Info, body ast.Node) map[*Block]objset {
	return backward(cfg, livenessSpec(info, body))
}
