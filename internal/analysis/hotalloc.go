package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces `saga:hotpath` annotations: functions on documented
// 0-alloc paths (flat kernel inner loops, the disabled-telemetry fast
// path, the hybrid pool steady state) must not contain operations that
// can hit the allocator — make/new, slice or map composite literals,
// append, any map operation, closures, go statements, string
// concatenation or string<->byte conversions, and implicit boxing of
// non-pointer concrete values into interface parameters. Amortized-free
// sites (append into a pooled buffer with reserved capacity) carry an
// audited saga:allow and are cross-validated by testing.AllocsPerRun
// assertions next to the annotations.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "check that saga:hotpath functions contain no allocations, map " +
		"operations, closures, or interface conversions",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		obj := declObj(pass, decl)
		if _, hot := pass.funcAnnotation(obj, "hotpath"); !hot {
			return
		}
		checkHotBody(pass, decl.Name.Name, decl.Body)
	})
}

func checkHotBody(pass *Pass, fname string, body *ast.BlockStmt) {
	info := pass.TypesInfo
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in saga:hotpath function %s", what, fname)
	}
	isMap := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Map)
		return ok
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure allocation")
			return false // the closure body is its own (cold) context
		case *ast.GoStmt:
			report(x.Pos(), "goroutine launch")
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(x.Pos(), "slice/map literal allocation")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "heap allocation (&composite literal)")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := info.TypeOf(x); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(x.Pos(), "string concatenation")
					}
				}
			}
		case *ast.IndexExpr:
			if isMap(x.X) {
				report(x.Pos(), "map access")
			}
		case *ast.RangeStmt:
			if isMap(x.X) {
				report(x.X.Pos(), "map iteration")
			}
		case *ast.CallExpr:
			checkHotCall(pass, x, report)
		}
		return true
	})
}

// checkHotCall flags allocating builtins, allocating conversions, and
// implicit interface boxing at one call site.
func checkHotCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocation")
				return
			case "new":
				report(call.Pos(), "new allocation")
				return
			case "append":
				report(call.Pos(), "append (may grow)")
				return
			case "delete":
				report(call.Pos(), "map delete")
				return
			}
			return
		}
	}

	// Conversions: T(x) where the call "callee" is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src == nil {
			return
		}
		if isStringByteConv(dst, src) {
			report(call.Pos(), "string conversion allocation")
		} else if types.IsInterface(dst) && !types.IsInterface(src) && !boxingFree(src) {
			report(call.Pos(), "interface conversion (boxes "+src.String()+")")
		}
		return
	}

	// Implicit boxing: concrete non-pointer argument passed to an
	// interface-typed parameter (including ...any variadics).
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || boxingFree(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "interface boxing of "+at.String()+" argument")
	}
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// boxingFree reports whether converting a value of t to an interface
// never allocates: pointers, channels, maps, funcs, and unsafe pointers
// store directly in the interface word.
func boxingFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// isStringByteConv matches string([]byte), []byte(string), []rune and
// back — conversions that copy.
func isStringByteConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}
