package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestRetryClass(t *testing.T) {
	analysistest.Run(t, ".", analysis.RetryClass, "retryclass_fx")
}
