package analysis_test

import (
	"testing"

	"sagabench/internal/analysis"
	"sagabench/internal/analysis/analysistest"
)

func TestFrozenWrite(t *testing.T) {
	analysistest.Run(t, ".", analysis.FrozenWrite, "frozenwrite_fx")
}
