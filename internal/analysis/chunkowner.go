package analysis

import (
	"go/ast"
	"go/types"
)

// ChunkOwner checks chunk-ownership discipline in packages marked
// `saga:lockless` (AC, DAH, GraphOne): these structures take no locks
// during chunk-parallel ingestion because each chunk of vertex state is
// owned by exactly one worker. Inside a closure passed to
// ds.GroupByChunk or ds.ForEachChunk, the analyzer tracks which
// expressions are derived from the worker's own chunk (the closure's
// parameters, locals, and anything indexed by them) and reports:
//
//   - writes to captured state that is not chunk-derived (a write the
//     worker does not own is a data race with its sibling workers);
//   - method calls on captured receivers unless the method is annotated
//     `saga:chunksafe` (it mutates only state owned by its arguments);
//   - indexing a field annotated `saga:chunked` with an expression not
//     derived from the worker's chunk (reading a sibling's slot races
//     with that sibling's writes).
var ChunkOwner = &Analyzer{
	Name: "chunkowner",
	Doc: "in saga:lockless packages, check that chunk-parallel workers " +
		"only touch state derived from their own chunk",
	Run: runChunkOwner,
}

const dsPkgPath = "sagabench/internal/ds"

func runChunkOwner(pass *Pass) {
	if !pass.Markers["lockless"] {
		return
	}
	chunked := collectChunkedFields(pass)
	chunksafe := collectChunksafe(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(pass.TypesInfo, call, dsPkgPath, "GroupByChunk") &&
				!isPkgFunc(pass.TypesInfo, call, dsPkgPath, "ForEachChunk") {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			co := &chunkOwnerCheck{pass: pass, lit: lit, chunked: chunked, chunksafe: chunksafe}
			co.check()
			return false
		})
	}
}

// collectChunkedFields gathers fields annotated saga:chunked (slices
// indexed by chunk id, one slot per worker).
func collectChunkedFields(pass *Pass) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stype, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range stype.Fields.List {
				if key, _ := fieldAnnotation(field); key != "chunked" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// collectChunksafe gathers methods annotated saga:chunksafe: callable
// from a chunk worker because they mutate only chunk-owned arguments.
func collectChunksafe(pass *Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		if _, ok := funcAnnotations(decl.Doc)["chunksafe"]; !ok {
			return
		}
		if f, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
			out[f] = true
		}
	})
	return out
}

type chunkOwnerCheck struct {
	pass      *Pass
	lit       *ast.FuncLit
	chunked   map[*types.Var]bool
	chunksafe map[*types.Func]bool
}

func (co *chunkOwnerCheck) check() {
	ast.Inspect(co.lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				co.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			co.checkWrite(x.X)
		case *ast.CallExpr:
			co.checkCall(x)
		case *ast.IndexExpr:
			co.checkChunkedIndex(x)
		}
		return true
	})
}

// ownedObj reports whether the object is declared inside the worker
// closure (parameter, local, range variable): worker-local state.
func (co *chunkOwnerCheck) ownedObj(obj types.Object) bool {
	return declaredIn(obj, co.lit)
}

// ownedIndex reports whether an index expression is derived from the
// worker's chunk: some identifier in it resolves to a closure-local.
func (co *chunkOwnerCheck) ownedIndex(e ast.Expr) bool {
	owned := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if co.ownedObj(co.pass.TypesInfo.Uses[id]) {
				owned = true
			}
		}
		return !owned
	})
	return owned
}

// ownedLoc reports whether a storage location belongs to this worker:
// rooted in a closure-local, or an element of captured state selected by
// a chunk-derived index.
func (co *chunkOwnerCheck) ownedLoc(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return true
		}
		if obj := co.pass.TypesInfo.Defs[x]; obj != nil {
			return co.ownedObj(obj) // `:=` defines a closure-local
		}
		return co.ownedObj(co.pass.TypesInfo.Uses[x])
	case *ast.SelectorExpr:
		return co.ownedLoc(x.X)
	case *ast.IndexExpr:
		return co.ownedLoc(x.X) || co.ownedIndex(x.Index)
	case *ast.StarExpr:
		return co.ownedLoc(x.X)
	}
	return false
}

func (co *chunkOwnerCheck) checkWrite(lhs ast.Expr) {
	if co.ownedLoc(lhs) {
		return
	}
	co.pass.Reportf(lhs.Pos(),
		"chunk worker writes %s, which is not derived from its own chunk (saga:lockless); route the write through a chunk-indexed slot or take a lock",
		exprText(co.pass.Fset, lhs))
}

func (co *chunkOwnerCheck) checkCall(call *ast.CallExpr) {
	fn := calleeFunc(co.pass.TypesInfo, call)
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil || co.chunksafe[fn] {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || co.ownedLoc(sel.X) {
		return
	}
	co.pass.Reportf(call.Pos(),
		"chunk worker calls %s.%s on a captured receiver; annotate the method saga:chunksafe after auditing that it mutates only chunk-owned state",
		exprText(co.pass.Fset, sel.X), fn.Name())
}

func (co *chunkOwnerCheck) checkChunkedIndex(idx *ast.IndexExpr) {
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fv := fieldOf(co.pass.TypesInfo, sel)
	if fv == nil || !co.chunked[fv] || co.ownedLoc(sel.X) {
		return
	}
	if co.ownedIndex(idx.Index) {
		return
	}
	co.pass.Reportf(idx.Pos(),
		"chunk worker indexes saga:chunked field %s with %s, which is not derived from its own chunk",
		fv.Name(), exprText(co.pass.Fset, idx.Index))
}
