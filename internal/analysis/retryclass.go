package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RetryClass closes the loop on the durable layer's fault taxonomy: in a
// `saga:durable` package, a function annotated `saga:classified` feeds
// the retry/degrade machinery, so every error it returns must have gone
// through the transient/permanent classifier — a naked `return err` from
// a new I/O call would silently bypass the degrade policy and be retried
// (or fatal) for the wrong reasons. The analyzer is a forward taint
// analysis on the shared dataflow engine: error results of calls into
// foreign packages (the standard library, anything outside this module)
// are unclassified; `errors`/`fmt` wrapping propagates taint;
// `saga:classifier` calls (Permanent, IsPermanent) launder the local
// they inspect; and results of `saga:classifies` entry points
// (RetryPolicy.Do) or of other same-module functions are trusted.
// Returning a tainted error from a saga:classified function is the
// finding.
var RetryClass = &Analyzer{
	Name: "retryclass",
	Doc: "check that saga:classified functions in saga:durable packages " +
		"never return errors that bypassed the transient/permanent classifier",
	Run: runRetryClass,
}

func runRetryClass(pass *Pass) {
	if !pass.Markers["durable"] {
		return
	}
	rc := &retryChecker{pass: pass, modSeg: firstSegment(pass.Pkg.Path())}
	forEachFunc(pass.Files, func(decl *ast.FuncDecl) {
		obj := declObj(pass, decl)
		if _, ok := pass.funcAnnotation(obj, "classified"); !ok {
			return
		}
		rc.analyzeFunc(decl)
	})
}

type retryChecker struct {
	pass   *Pass
	modSeg string // first import-path segment of the analyzed module
}

// errFact is the set of locals holding unclassified errors.
type errFact map[types.Object]bool

func firstSegment(path string) string {
	seg, _, _ := strings.Cut(path, "/")
	return seg
}

// foreignCall reports whether call crosses the module boundary — its
// error results have not been through this repo's classifier.
func (rc *retryChecker) foreignCall(call *ast.CallExpr) bool {
	fn := calleeFunc(rc.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if firstSegment(path) == rc.modSeg {
		return false
	}
	// errors/fmt construct and wrap; they are propagators, not sources
	// (handled separately in the transfer function).
	if path == "errors" || path == "fmt" {
		return false
	}
	return true
}

func (rc *retryChecker) wrapperCall(call *ast.CallExpr) bool {
	fn := calleeFunc(rc.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "errors" || p == "fmt"
}

func (rc *retryChecker) classifierCall(call *ast.CallExpr) bool {
	fn := calleeFunc(rc.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	_, ok := rc.pass.funcAnnotation(fn, "classifier")
	return ok
}

// taintedExpr reports whether e produces an unclassified error under f:
// a tainted local, a direct foreign call's error result, or a wrapper
// (fmt.Errorf %w) around either.
func (rc *retryChecker) taintedExpr(f errFact, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := rc.pass.TypesInfo.Uses[x]
		return obj != nil && f[obj]
	case *ast.CallExpr:
		if rc.classifierCall(x) {
			return false
		}
		// saga:classifies entry points (RetryPolicy.Do) return classified
		// errors by contract, wherever they live.
		if fn := calleeFunc(rc.pass.TypesInfo, x); fn != nil {
			if _, ok := rc.pass.funcAnnotation(fn, "classifies"); ok {
				return false
			}
		}
		if rc.foreignCall(x) {
			return returnsError(rc.pass, x)
		}
		if rc.wrapperCall(x) {
			for _, a := range x.Args {
				if rc.taintedExpr(f, a) {
					return true
				}
			}
		}
		return false
	}
	return false
}

func (rc *retryChecker) analyzeFunc(decl *ast.FuncDecl) {
	info := rc.pass.TypesInfo

	// Locate the error result positions (and names, for naked returns).
	sig, ok := info.Defs[decl.Name].Type().(*types.Signature)
	if !ok {
		return
	}
	var errIdx []int
	var namedErrs []types.Object
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if types.Identical(r.Type(), errorType) {
			errIdx = append(errIdx, i)
			if r.Name() != "" {
				namedErrs = append(namedErrs, r)
			}
		}
	}
	if len(errIdx) == 0 {
		return
	}

	body := decl.Body
	cfg := rc.pass.pkg.cfgOf(body)
	spec := rc.spec(body)
	in := forward(cfg, spec)
	forEachNodeFact(cfg, spec, in, func(f errFact, n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) == 0 {
			// Naked return: named error results carry whatever they hold.
			for _, obj := range namedErrs {
				if f[obj] {
					rc.report(ret.Pos(), decl.Name.Name)
				}
			}
			return
		}
		if len(ret.Results) == 1 && len(errIdx) > 0 && sig.Results().Len() > 1 {
			// `return foreignCall()` forwarding a tuple.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if rc.foreignCall(call) && returnsError(rc.pass, call) {
					rc.report(ret.Pos(), decl.Name.Name)
				}
			}
			return
		}
		for _, i := range errIdx {
			if i < len(ret.Results) && rc.taintedExpr(f, ret.Results[i]) {
				rc.report(ret.Results[i].Pos(), decl.Name.Name)
			}
		}
	})
}

func (rc *retryChecker) report(pos token.Pos, fname string) {
	rc.pass.Reportf(pos,
		"saga:classified function %s returns an error that never went through "+
			"the transient/permanent classifier", fname)
}

func (rc *retryChecker) spec(body *ast.BlockStmt) flowSpec[errFact] {
	info := rc.pass.TypesInfo
	return flowSpec[errFact]{
		init: func() errFact { return errFact{} },
		clone: func(f errFact) errFact {
			c := make(errFact, len(f))
			for k := range f {
				c[k] = true
			}
			return c
		},
		merge: func(acc, in errFact) bool {
			changed := false
			for k := range in {
				if !acc[k] {
					acc[k] = true
					changed = true
				}
			}
			return changed
		},
		transfer: func(f errFact, n ast.Node) {
			// Classifier calls launder the locals they inspect, wherever
			// they appear in the node (conditions included).
			scan := n
			if r, ok := n.(*ast.RangeStmt); ok {
				scan = r.X
			}
			ast.Inspect(scan, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok || !rc.classifierCall(call) {
					return true
				}
				for _, a := range call.Args {
					if id, ok := ast.Unparen(a).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							delete(f, obj)
						}
					}
				}
				return true
			})

			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			// Tuple form: v, err := foreignCall().
			if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
				call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return
				}
				tainted := rc.foreignCall(call)
				for _, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := identObj(info, id)
					if obj == nil || !isErrorObj(obj) {
						continue
					}
					if tainted {
						f[obj] = true
					} else {
						delete(f, obj)
					}
				}
				return
			}
			if len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := identObj(info, id)
				if obj == nil || !isErrorObj(obj) {
					continue
				}
				if rc.taintedExpr(f, as.Rhs[i]) {
					f[obj] = true
				} else {
					delete(f, obj)
				}
			}
		},
	}
}
