package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus the comment-derived
// configuration (markers, allow sites) sagavet's analyzers consume.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Markers   map[string]bool

	allows      map[string]map[int]allowSite
	allowErrors []Diagnostic
	annot       *annotations
	cfgs        map[*ast.BlockStmt]*CFG
}

// allowed reports whether an audited saga:allow comment suppresses
// analyzer findings at pos.
func (p *Package) allowed(analyzer string, pos token.Position) (bool, string) {
	if perFile := p.allows[pos.Filename]; perFile != nil {
		if site, ok := perFile[pos.Line]; ok && site.analyzer == analyzer {
			return true, site.reason
		}
	}
	return false, ""
}

// LoadConfig parameterizes Load.
type LoadConfig struct {
	// Dir anchors relative patterns; empty means the working directory.
	Dir string
	// FixtureRoot, when set, resolves bare import paths (e.g. "ds")
	// against this directory before the module and the standard library.
	// The analysistest harness points it at testdata/src.
	FixtureRoot string
}

// Load parses and type-checks the packages matching patterns ("./...",
// "./internal/durable", "dir/...") using only the standard library: the
// module's own packages resolve from the filesystem and everything else
// through the source importer, so no module downloads are needed.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil && cfg.FixtureRoot == "" {
		return nil, err
	}
	ld := &loader{
		fset:        token.NewFileSet(),
		modRoot:     modRoot,
		modPath:     modPath,
		fixtureRoot: cfg.FixtureRoot,
		cache:       map[string]*Package{},
		annot:       newAnnotations(),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	dirs, err := expandPatterns(abs, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := ld.loadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves "..."-suffixed and plain directory patterns to
// package directories (those containing non-test .go files).
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] && hasGoFiles(d) {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, ent := range ents {
		name := ent.Name()
		if !ent.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loader loads and caches packages by directory / import path.
type loader struct {
	fset        *token.FileSet
	modRoot     string
	modPath     string
	fixtureRoot string
	std         types.Importer
	cache       map[string]*Package
	loading     []string // in-flight import paths, for cycle reporting
	// annot accumulates saga: declaration annotations across every package
	// of this load, so analyzers resolve cross-package acquire/release and
	// frozen-type annotations.
	annot *annotations
}

// pathForDir maps a package directory to its import path.
func (ld *loader) pathForDir(dir string) string {
	if ld.fixtureRoot != "" {
		if rel, err := filepath.Rel(ld.fixtureRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	if ld.modRoot != "" {
		if rel, err := filepath.Rel(ld.modRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return ld.modPath
			}
			return ld.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(dir)
}

// dirForPath maps an import path to a source directory, or "" when the
// path is not module-local (i.e. standard library).
func (ld *loader) dirForPath(path string) string {
	if ld.fixtureRoot != "" {
		d := filepath.Join(ld.fixtureRoot, filepath.FromSlash(path))
		if hasGoFiles(d) {
			return d
		}
	}
	if ld.modPath != "" {
		if path == ld.modPath {
			return ld.modRoot
		}
		if rest, ok := strings.CutPrefix(path, ld.modPath+"/"); ok {
			return filepath.Join(ld.modRoot, filepath.FromSlash(rest))
		}
	}
	return ""
}

// Import implements types.Importer for module-local and fixture imports,
// falling back to the source importer for the standard library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := ld.dirForPath(path); dir != "" {
		pkg, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// loadDir parses and type-checks the package in dir (cached).
func (ld *loader) loadDir(dir string) (*Package, error) {
	path := ld.pathForDir(dir)
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	for _, p := range ld.loading {
		if p == path {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.cache[path] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		Markers:   collectMarkers(files),
		annot:     ld.annot,
	}
	ld.annot.collect(files, info)
	pkg.allows, pkg.allowErrors = collectAllows(ld.fset, files)
	ld.cache[path] = pkg
	return pkg, nil
}
