package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism guards the replay path: packages marked
// `saga:deterministic` feed the WAL-replay crash-recovery check and the
// differential fuzzer, both of which require a batch stream to produce
// bit-identical structure state on every run. The analyzer reports the
// three classic sources of run-to-run divergence:
//
//   - wall-clock reads (time.Now / time.Since) — fine for metrics, fatal
//     if the value feeds data; every use must be audited with saga:allow;
//   - the math/rand package-level convenience functions, which draw from
//     the shared global source (seeded rand.New(rand.NewSource(seed))
//     generators are fine and not flagged);
//   - ranging over a map, whose iteration order changes per run; sort the
//     keys first or audit with saga:allow when order provably cannot
//     escape (e.g. the range feeds a sort or a commutative reduction).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "in saga:deterministic packages, report wall-clock reads, global " +
		"math/rand use, and unordered map iteration",
	Run: runDeterminism,
}

// seededRandCtors are the math/rand functions that construct or seed an
// explicit generator rather than drawing from the global source.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	if !pass.Markers["deterministic"] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, x)
				if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" {
						pass.Reportf(x.Pos(),
							"wall-clock read time.%s in a saga:deterministic package; replay must not depend on it (audit metric-only uses with saga:allow)",
							fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !seededRandCtors[fn.Name()] {
						pass.Reportf(x.Pos(),
							"global math/rand.%s in a saga:deterministic package; draw from a seeded rand.New(rand.NewSource(seed)) instead",
							fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[x.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(),
						"map iteration order is nondeterministic in a saga:deterministic package; sort the keys first or audit with saga:allow")
				}
			}
			return true
		})
	}
}
