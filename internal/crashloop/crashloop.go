// Package crashloop is the kill/recover soak harness behind
// `sagafuzz -crash`: it streams a deterministic crosscheck stream through
// a durable pipeline while simulating a kill at every registered
// durable.CrashPoint in rotation, recovering from disk after each one,
// optionally tearing and bit-flipping the WAL tail between generations
// and injecting poison batches mid-stream. The driver behaves like a real
// client of a durable service: whatever the durability layer did not
// acknowledge (DurableSeq) it re-submits. When the stream finally
// completes, the on-disk state is re-opened cold and the recovered
// adjacency and vertex properties are diffed against the sequential
// oracle's replay of the same (non-poisoned) stream.
//
// The soak leans on invariants sagavet enforces statically (see
// internal/analysis): internal/durable is saga:durable, so no error on
// the WAL/checkpoint write path can be silently discarded, and the
// pipeline's compute packages are saga:paniccapture, so a poison batch
// surfaces as a recoverable panic on the submitting goroutine rather
// than killing the soak from a worker.
package crashloop

import (
	"fmt"
	"os"
	"sort"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/crosscheck"
	"sagabench/internal/ds"
	"sagabench/internal/durable"
	"sagabench/internal/fault"
	"sagabench/internal/graph"
)

// Options parameterizes one soak run. Zero values select defaults sized
// for a CI-friendly run (~seconds).
type Options struct {
	Seed      int64
	Batches   int // default 30
	BatchSize int // default 200
	NumNodes  int // default 64
	Directed  bool
	Deletes   bool

	DS      string        // default "adjshared"
	Alg     string        // default "pr"
	Model   compute.Model // default compute.INC
	Threads int           // default 4

	// Dir is the durability directory (default: a fresh temp dir, removed
	// when the run passes and kept for inspection when it fails).
	Dir             string
	Fsync           durable.FsyncPolicy // default interval
	CheckpointEvery int                 // default 5 (small, so checkpoints interleave crashes)

	// TornWrites/BitFlips additionally corrupt the WAL tail after
	// (alternating) crashes, exercising truncation and checksum recovery
	// against real files.
	TornWrites bool
	BitFlips   bool

	// DiskFaults is a fault-schedule spec (see fault.ParseSchedule)
	// layered under the kills: each generation arms a fresh copy with
	// occurrence counts offset by the cycle index, so injected faults land
	// further into the stream every round and the stream still completes.
	// Transient faults (eio, slow) must be absorbed by the durable retry
	// policy; a permanent fault (enospc, short) that escapes retry kills
	// the generation exactly like a simulated crash — recovery must cope
	// with a disk that died mid-operation, not only with a clean kill.
	DiskFaults string

	// VerifyEachRecovery diffs the recovered topology and vertex values
	// against the sequential oracle's replay of the durable prefix after
	// every recovery, instead of only at the final cold restart. Catches
	// recoveries that return plausible-but-wrong state which the stream
	// tail would otherwise paper over.
	VerifyEachRecovery bool

	// NoKills disables the rotating crash-point schedule, leaving
	// DiskFaults as the only death source — used to soak the disk-fault
	// path in isolation.
	NoKills bool
	// Poison injects apply failures at two fixed sequence numbers via
	// ApplyProbe; the batches must be quarantined and excluded from the
	// oracle.
	Poison bool

	// MaxCycles bounds the kill/recover generations (default 400); the
	// rotating schedule crashes later each round, so the stream always
	// completes well within it.
	MaxCycles int

	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Batches <= 0 {
		o.Batches = 30
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 200
	}
	if o.NumNodes <= 0 {
		o.NumNodes = 64
	}
	if o.DS == "" {
		o.DS = "adjshared"
	}
	if o.Alg == "" {
		o.Alg = "pr"
	}
	if o.Model == "" {
		o.Model = compute.INC
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Fsync == "" {
		o.Fsync = durable.FsyncInterval
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 5
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 400
	}
	return o
}

// Result summarizes one soak run.
type Result struct {
	Dir          string
	Batches      int
	Cycles       int
	Crashes      map[durable.CrashPoint]int
	TornTails    int
	BitFlips     int
	Recoveries   int
	DiskKills    int      // generations ended by an injected permanent disk fault
	Injections   []string // "kind(op)xN" totals across every generation's schedule
	RecoveryOK   int      // per-recovery oracle verifications that ran (VerifyEachRecovery)
	PoisonFiles  []string
	ReplayedOK   bool // the final cold restart recovered and replayed
	Failures     []string
	KeepArtifact bool // Dir was kept on disk for inspection
}

// OK reports whether the recovered state matched the oracle everywhere.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// Run executes the soak loop.
func Run(o Options) (*Result, error) {
	o = o.withDefaults()
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := o.Dir
	ownDir := false
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "sagacrash-")
		if err != nil {
			return nil, err
		}
		ownDir = true
	}
	res := &Result{Dir: dir, Batches: o.Batches, Crashes: map[durable.CrashPoint]int{}}

	stream := crosscheck.NewStream(crosscheck.StreamConfig{
		Seed:      o.Seed,
		Batches:   o.Batches,
		BatchSize: o.BatchSize,
		NumNodes:  o.NumNodes,
		Directed:  o.Directed,
		Deletes:   o.Deletes,
	})

	// Poison two fixed sequence numbers (batch index + 1): the probe
	// fails them deterministically on every attempt — live, retried, and
	// replayed — so quarantine must hold across crashes.
	poisonSeq := map[uint64]bool{}
	if o.Poison && o.Batches >= 3 {
		poisonSeq[uint64(o.Batches/3)+1] = true
		poisonSeq[uint64(2*o.Batches/3)+1] = true
	}

	// The sequential ground truth applies exactly the batches the durable
	// pipeline is allowed to keep: everything except the poisoned ones.
	oracle := graph.NewOracle(o.Directed)
	for i, step := range stream {
		if poisonSeq[uint64(i)+1] {
			continue
		}
		oracle.Update(step.Adds)
		oracle.Delete(step.Dels)
	}
	copts := compute.Options{
		Threads:     o.Threads,
		PRTolerance: 1e-12,
		PRMaxIters:  200,
		Epsilon:     1e-12,
	}
	want := compute.MustReference(o.Alg, oracle, copts)

	pcfg := core.PipelineConfig{
		DataStructure: o.DS,
		Algorithm:     o.Alg,
		Model:         o.Model,
		Directed:      o.Directed,
		Threads:       o.Threads,
		Compute:       copts,
	}
	probe := func(seq uint64, adds, dels graph.Batch) error {
		if poisonSeq[seq] {
			return fmt.Errorf("crashloop: injected poison at seq %d", seq)
		}
		return nil
	}

	// The disk-fault schedule, when present, is re-armed each generation
	// with occurrence counts shifted by the cycle index — the same
	// guaranteed-progress trick as the rotating crash schedule below.
	base, err := fault.ParseSchedule(o.DiskFaults, o.Seed)
	if err != nil {
		if ownDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	injCounts := map[string]int{}
	mergeInjections := func(s *fault.Schedule) {
		for _, inj := range s.Injections() {
			injCounts[fmt.Sprintf("%s(%s)", inj.Kind, inj.Op)]++
		}
	}

	// The crash schedule rotates through every point; round r arms the
	// (r+1)th occurrence, so each generation gets further than the last
	// and the stream is guaranteed to finish.
	arm := 0
	faultFlip := 0
	done := false
	for cycle := 0; !done; cycle++ {
		if cycle >= o.MaxCycles {
			res.Failures = append(res.Failures,
				fmt.Sprintf("stream did not complete within %d kill/recover cycles", o.MaxCycles))
			break
		}
		res.Cycles = cycle + 1
		point := durable.CrashPoints[arm%len(durable.CrashPoints)]
		nth := 1 + arm/len(durable.CrashPoints)
		arm++
		dcfg := durable.Config{
			Dir:             dir,
			Fsync:           o.Fsync,
			CheckpointEvery: o.CheckpointEvery,
			MaxRetries:      1,
			RetryBackoff:    time.Microsecond,
			Crash:           durable.CrashAt(point, nth),
			ApplyProbe:      probe,
		}
		if o.NoKills {
			dcfg.Crash = nil
		}
		sched := base.Offset(uint64(cycle))
		if sched != nil {
			dcfg.IO = sched
		}
		cfg := pcfg
		cfg.Durable = &dcfg

		// diskKill classifies an error escaping the durable layer: an
		// injected fault ends the generation like a crash would; anything
		// else is a real harness failure.
		diskKill := func(stage string, err error) (bool, error) {
			if !fault.IsInjected(err) {
				return false, err
			}
			res.DiskKills++
			logf("cycle %d: %s killed by injected disk fault: %v", cycle, stage, err)
			return true, nil
		}

		p, crash, err := build(cfg)
		if err != nil {
			if killed, err := diskKill("recovery", err); !killed {
				mergeInjections(sched)
				return res, err
			}
			mergeInjections(sched)
			continue
		}
		if crash == nil {
			res.Recoveries++
			if o.VerifyEachRecovery {
				res.RecoveryOK++
				if fails := verifyRecovered(p, stream, poisonSeq, o, copts); len(fails) > 0 {
					res.Failures = append(res.Failures, fails...)
					p.Abandon()
					mergeInjections(sched)
					break
				}
			}
			cursor := p.DurableSeq()
			crash, err = drive(p, stream, cursor)
			if err != nil {
				killed, err := diskKill("stream", err)
				if !killed {
					mergeInjections(sched)
					return res, err
				}
				// Quarantines that happened before the kill are real
				// outcomes; harvest them before abandoning the generation.
				res.PoisonFiles = append(res.PoisonFiles, p.PoisonFiles()...)
				p.Abandon()
				mergeInjections(sched)
				continue
			}
			res.PoisonFiles = append(res.PoisonFiles, p.PoisonFiles()...)
			if crash == nil {
				// Stream complete; the armed hook may still kill the
				// final checkpoint inside Close.
				var cerr error
				crash, cerr = safeClose(p)
				if cerr != nil {
					killed, cerr := diskKill("close", cerr)
					if !killed {
						mergeInjections(sched)
						return res, cerr
					}
					p.Abandon()
					mergeInjections(sched)
					continue
				}
				done = crash == nil
			}
		}
		mergeInjections(sched)
		if crash != nil {
			res.Crashes[crash.Point]++
			durableSeq := uint64(0)
			if p != nil { // nil when the kill hit recovery itself
				p.Abandon()
				durableSeq = p.DurableSeq()
			}
			logf("cycle %d: crashed at %s (occurrence %d), seq %d/%d durable",
				cycle, crash.Point, nth, durableSeq, len(stream))
			// Pile disk-level faults on top of the kill.
			if o.TornWrites && faultFlip%2 == 0 {
				if n, err := durable.TornTail(dir, 5); err == nil && n > 0 {
					res.TornTails++
					logf("cycle %d: tore %d bytes off the WAL tail", cycle, n)
				}
			} else if o.BitFlips && faultFlip%2 == 1 {
				if ok, err := durable.FlipTailBit(dir); err == nil && ok {
					res.BitFlips++
					logf("cycle %d: flipped a bit in the WAL tail", cycle)
				}
			}
			faultFlip++
		}
	}

	keys := make([]string, 0, len(injCounts))
	for k := range injCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res.Injections = append(res.Injections, fmt.Sprintf("%sx%d", k, injCounts[k]))
	}

	if len(res.Failures) == 0 {
		// Cold restart with no fault injection: recovery alone must
		// reproduce the oracle's state.
		vcfg := pcfg
		vcfg.Durable = &durable.Config{Dir: dir, Fsync: o.Fsync, CheckpointEvery: -1}
		p, err := core.NewPipeline(vcfg)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("cold restart failed: %v", err))
		} else {
			res.ReplayedOK = true
			if got := p.DurableSeq(); got != uint64(len(stream)) {
				res.Failures = append(res.Failures,
					fmt.Sprintf("recovered through seq %d, want %d", got, len(stream)))
			}
			for _, d := range ds.DiffOracle(p.Graph(), oracle, 8) {
				res.Failures = append(res.Failures, "topology: "+d)
			}
			tol := compute.Tolerance(o.Alg)
			if v := compute.DiffValues(p.Values(), want, tol); v >= 0 {
				got, wv := "?", "?"
				vals := p.Values()
				if v < len(vals) {
					got = fmt.Sprintf("%v", vals[v])
				}
				if v < len(want) {
					wv = fmt.Sprintf("%v", want[v])
				}
				res.Failures = append(res.Failures,
					fmt.Sprintf("values: vertex %d: got %s want %s (%s/%s, tol %g)", v, got, wv, o.Alg, o.Model, tol))
			}
			if o.Poison && len(res.PoisonFiles) == 0 {
				res.Failures = append(res.Failures, "poison was injected but nothing was quarantined")
			}
			p.Close()
		}
	}

	if ownDir {
		if res.OK() {
			os.RemoveAll(dir)
		} else {
			res.KeepArtifact = true
		}
	}
	return res, nil
}

// build constructs a durable pipeline, converting a simulated crash during
// recovery (CrashMidReplay and friends) into a crash result.
func build(cfg core.PipelineConfig) (p *core.Pipeline, crash *durable.Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := durable.AsCrash(r); ok {
				crash = &c
				return
			}
			panic(r)
		}
	}()
	p, err = core.NewPipeline(cfg)
	return p, nil, err
}

// drive submits stream batches from the cursor onward, converting a
// simulated crash anywhere in the durable protocol into a crash result.
func drive(p *core.Pipeline, stream crosscheck.Stream, cursor uint64) (crash *durable.Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := durable.AsCrash(r); ok {
				crash = &c
				return
			}
			panic(r)
		}
	}()
	for i := int(cursor); i < len(stream); i++ {
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: stream[i].Adds, Dels: stream[i].Dels}); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// safeClose closes the pipeline, converting a crash during the final
// checkpoint into a crash result and surfacing Close's own error (an
// injected disk fault on the final checkpoint arrives this way).
func safeClose(p *core.Pipeline) (crash *durable.Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := durable.AsCrash(r); ok {
				crash = &c
				err = nil
				return
			}
			panic(r)
		}
	}()
	return nil, p.Close()
}

// verifyRecovered diffs a freshly recovered pipeline against the
// sequential oracle's replay of the durable prefix (minus poisoned
// batches). Failures name the recovered sequence so a bad recovery is
// attributable to the generation that produced it.
func verifyRecovered(p *core.Pipeline, stream crosscheck.Stream, poisonSeq map[uint64]bool, o Options, copts compute.Options) []string {
	seq := p.DurableSeq()
	if seq > uint64(len(stream)) {
		return []string{fmt.Sprintf("recovery at seq %d: beyond the %d-batch stream", seq, len(stream))}
	}
	orc := graph.NewOracle(o.Directed)
	for i := 0; i < int(seq); i++ {
		if poisonSeq[uint64(i)+1] {
			continue
		}
		orc.Update(stream[i].Adds)
		orc.Delete(stream[i].Dels)
	}
	var fails []string
	for _, d := range ds.DiffOracle(p.Graph(), orc, 8) {
		fails = append(fails, fmt.Sprintf("recovery at seq %d: topology: %s", seq, d))
	}
	want := compute.MustReference(o.Alg, orc, copts)
	tol := compute.Tolerance(o.Alg)
	if v := compute.DiffValues(p.Values(), want, tol); v >= 0 {
		fails = append(fails, fmt.Sprintf("recovery at seq %d: values: vertex %d diverges (%s, tol %g)", seq, v, o.Alg, tol))
	}
	return fails
}
