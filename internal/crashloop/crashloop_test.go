package crashloop

import (
	"testing"

	_ "sagabench/internal/ds/all"
)

// TestSoakShort runs a CI-sized kill/recover soak with every fault class
// enabled: rotating crash points, torn tails, bit flips, and poison
// batches. The recovered state must match the sequential oracle.
func TestSoakShort(t *testing.T) {
	res, err := Run(Options{
		Seed:            3,
		Batches:         9,
		BatchSize:       60,
		NumNodes:        40,
		Directed:        true,
		Deletes:         true,
		Threads:         2,
		CheckpointEvery: 2,
		TornWrites:      true,
		BitFlips:        true,
		Poison:          true,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			t.Errorf("soak: %s", f)
		}
		t.Fatalf("soak failed after %d cycles (artifact: %s)", res.Cycles, res.Dir)
	}
	if !res.ReplayedOK {
		t.Fatal("final cold restart never ran")
	}
	if res.Cycles < 2 || len(res.Crashes) == 0 {
		t.Fatalf("soak killed nothing: %d cycles, crashes %v", res.Cycles, res.Crashes)
	}
	if len(res.PoisonFiles) == 0 {
		t.Fatal("poison was injected but nothing was quarantined")
	}
}

// TestSoakNoFaults runs the same loop with only the simulated kills — no
// disk corruption, no poison — as the clean-path baseline.
func TestSoakNoFaults(t *testing.T) {
	res, err := Run(Options{
		Seed:            5,
		Batches:         7,
		BatchSize:       50,
		NumNodes:        32,
		Directed:        true,
		Deletes:         true,
		Threads:         2,
		CheckpointEvery: 3,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			t.Errorf("soak: %s", f)
		}
		t.Fatalf("clean soak failed after %d cycles (artifact: %s)", res.Cycles, res.Dir)
	}
}
