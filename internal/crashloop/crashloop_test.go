package crashloop

import (
	"testing"

	_ "sagabench/internal/ds/all"
)

// TestSoakShort runs a CI-sized kill/recover soak with every fault class
// enabled: rotating crash points, torn tails, bit flips, and poison
// batches. The recovered state must match the sequential oracle.
func TestSoakShort(t *testing.T) {
	res, err := Run(Options{
		Seed:            3,
		Batches:         9,
		BatchSize:       60,
		NumNodes:        40,
		Directed:        true,
		Deletes:         true,
		Threads:         2,
		CheckpointEvery: 2,
		TornWrites:      true,
		BitFlips:        true,
		Poison:          true,
		// Transient-only disk faults ride under the kills: the retry
		// layer must absorb them without changing the soak's outcome.
		DiskFaults:         "slow(wal-fsync,0.4,50us);eio(ckpt-rename,1);eio(wal-append,2)",
		VerifyEachRecovery: true,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			t.Errorf("soak: %s", f)
		}
		t.Fatalf("soak failed after %d cycles (artifact: %s)", res.Cycles, res.Dir)
	}
	if !res.ReplayedOK {
		t.Fatal("final cold restart never ran")
	}
	if res.Cycles < 2 || len(res.Crashes) == 0 {
		t.Fatalf("soak killed nothing: %d cycles, crashes %v", res.Cycles, res.Crashes)
	}
	if len(res.PoisonFiles) == 0 {
		t.Fatal("poison was injected but nothing was quarantined")
	}
	if res.RecoveryOK != res.Recoveries {
		t.Fatalf("verified %d of %d recoveries", res.RecoveryOK, res.Recoveries)
	}
	if len(res.Injections) == 0 {
		t.Fatal("disk-fault schedule never fired")
	}
}

// TestSoakDiskFaults turns the kill schedule off and lets injected disk
// faults be the only death source: permanent ENOSPC mid-WAL ends each
// generation like a crash, transient EIO on the checkpoint rename must
// be retried away, and every recovery is diffed against the oracle.
func TestSoakDiskFaults(t *testing.T) {
	res, err := Run(Options{
		Seed:               11,
		Batches:            9,
		BatchSize:          60,
		NumNodes:           40,
		Directed:           true,
		Deletes:            true,
		Threads:            2,
		CheckpointEvery:    2,
		NoKills:            true,
		DiskFaults:         "slow(wal-fsync,0.3,50us);enospc(wal-append,2);eio(ckpt-rename,1)",
		VerifyEachRecovery: true,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			t.Errorf("soak: %s", f)
		}
		t.Fatalf("disk-fault soak failed after %d cycles (artifact: %s)", res.Cycles, res.Dir)
	}
	if !res.ReplayedOK {
		t.Fatal("final cold restart never ran")
	}
	if res.DiskKills == 0 {
		t.Fatalf("ENOSPC schedule never killed a generation: %d cycles, injections %v", res.Cycles, res.Injections)
	}
	if len(res.Crashes) != 0 {
		t.Fatalf("NoKills soak recorded simulated crashes: %v", res.Crashes)
	}
	if res.RecoveryOK == 0 || res.RecoveryOK != res.Recoveries {
		t.Fatalf("verified %d of %d recoveries", res.RecoveryOK, res.Recoveries)
	}
}

// TestSoakNoFaults runs the same loop with only the simulated kills — no
// disk corruption, no poison — as the clean-path baseline.
func TestSoakNoFaults(t *testing.T) {
	res, err := Run(Options{
		Seed:            5,
		Batches:         7,
		BatchSize:       50,
		NumNodes:        32,
		Directed:        true,
		Deletes:         true,
		Threads:         2,
		CheckpointEvery: 3,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			t.Errorf("soak: %s", f)
		}
		t.Fatalf("clean soak failed after %d cycles (artifact: %s)", res.Cycles, res.Dir)
	}
}
