package gen

import "sagabench/internal/graph"

// DatasetStats backs Tables II and IV: stream-level counts plus degree
// extremes for the entire dataset and for one representative batch.
type DatasetStats struct {
	Name       string
	NumNodes   int // 1 + highest vertex ID in the stream
	NumEdges   int
	BatchSize  int
	BatchCount int

	Entire graph.DegreeStats // whole stream
	Batch  graph.DegreeStats // first batch of the shuffled stream
}

// ComputeStats generates the spec's stream and derives Table II/IV rows.
func ComputeStats(s Spec, seed int64) DatasetStats {
	edges := s.Generate(seed)
	d := DatasetStats{
		Name:       s.Name,
		NumEdges:   len(edges),
		BatchSize:  s.BatchSize,
		BatchCount: s.BatchCount(),
		Entire:     graph.ComputeDegreeStats(edges),
	}
	d.NumNodes = d.Entire.NumNodes
	bs := s.BatchSize
	if bs > len(edges) {
		bs = len(edges)
	}
	d.Batch = graph.ComputeDegreeStats(edges[:bs])
	return d
}
