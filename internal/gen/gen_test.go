package gen

import (
	"testing"

	"sagabench/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range DatasetNames() {
		s := MustDataset(name, ProfileTiny)
		a := s.Generate(7)
		b := s.Generate(7)
		if len(a) != len(b) || len(a) != s.NumEdges {
			t.Fatalf("%s: lengths %d/%d want %d", name, len(a), len(b), s.NumEdges)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: edge %d differs across same-seed runs", name, i)
			}
		}
		c := s.Generate(8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	for _, name := range DatasetNames() {
		s := MustDataset(name, ProfileTiny)
		for _, e := range s.Generate(3) {
			if int(e.Src) >= s.NumNodes || int(e.Dst) >= s.NumNodes {
				t.Fatalf("%s: edge (%d,%d) outside %d nodes", name, e.Src, e.Dst, s.NumNodes)
			}
			if e.Weight < 1 || e.Weight > MaxWeight {
				t.Fatalf("%s: weight %v out of range", name, e.Weight)
			}
			if e.Src == e.Dst && s.Kind == KindPowerLaw {
				t.Fatalf("%s: self loop on power-law dataset", name)
			}
		}
	}
}

// TestTailContrast verifies the structural property that drives the
// paper's data-structure crossover: heavy-tailed datasets must show a much
// higher per-batch maximum degree than short-tailed ones.
func TestTailContrast(t *testing.T) {
	maxPerBatch := map[string]int{}
	for _, name := range DatasetNames() {
		s := MustDataset(name, ProfileDefault)
		st := ComputeStats(s, 42)
		m := st.Batch.MaxIn
		if st.Batch.MaxOut > m {
			m = st.Batch.MaxOut
		}
		maxPerBatch[name] = m
	}
	for _, short := range []string{"lj", "orkut", "rmat"} {
		for _, heavy := range []string{"wiki", "talk"} {
			if maxPerBatch[heavy] < 8*maxPerBatch[short] {
				t.Errorf("per-batch max degree: %s=%d should dwarf %s=%d",
					heavy, maxPerBatch[heavy], short, maxPerBatch[short])
			}
		}
	}
}

// TestTailDirection pins the asymmetry: wiki is in-degree heavy, talk is
// out-degree heavy (Table IV).
func TestTailDirection(t *testing.T) {
	wiki := ComputeStats(MustDataset("wiki", ProfileDefault), 42)
	if wiki.Batch.MaxIn < 4*wiki.Batch.MaxOut {
		t.Errorf("wiki batch: MaxIn=%d should dwarf MaxOut=%d", wiki.Batch.MaxIn, wiki.Batch.MaxOut)
	}
	talk := ComputeStats(MustDataset("talk", ProfileDefault), 42)
	if talk.Batch.MaxOut < 4*talk.Batch.MaxIn {
		t.Errorf("talk batch: MaxOut=%d should dwarf MaxIn=%d", talk.Batch.MaxOut, talk.Batch.MaxIn)
	}
}

func TestProfiles(t *testing.T) {
	tiny := MustDataset("lj", ProfileTiny)
	def := MustDataset("lj", ProfileDefault)
	large := MustDataset("lj", ProfileLarge)
	if !(tiny.NumEdges < def.NumEdges && def.NumEdges < large.NumEdges) {
		t.Errorf("profile scaling broken: %d %d %d", tiny.NumEdges, def.NumEdges, large.NumEdges)
	}
	if _, err := Datasets(Profile("bogus")); err == nil {
		t.Error("expected error for unknown profile")
	}
	if _, err := Dataset("nope", ProfileTiny); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestRMATPowerOfTwoNodes(t *testing.T) {
	for _, p := range []Profile{ProfileTiny, ProfileDefault, ProfileLarge} {
		s := MustDataset("rmat", p)
		if s.NumNodes&(s.NumNodes-1) != 0 {
			t.Errorf("profile %s: RMAT nodes %d not a power of two", p, s.NumNodes)
		}
	}
}

func TestBatchCount(t *testing.T) {
	s := Spec{NumEdges: 1001, BatchSize: 100}
	if s.BatchCount() != 11 {
		t.Errorf("BatchCount=%d want 11", s.BatchCount())
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() []graph.Edge {
		es := make([]graph.Edge, 100)
		for i := range es {
			es[i] = graph.Edge{Src: graph.NodeID(i), Dst: graph.NodeID(i + 1)}
		}
		return es
	}
	a, b := mk(), mk()
	Shuffle(a, 5)
	Shuffle(b, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
	moved := 0
	for i := range a {
		if int(a[i].Src) != i {
			moved++
		}
	}
	if moved < 50 {
		t.Errorf("shuffle barely permuted: %d/100 moved", moved)
	}
}
