// Package gen synthesizes the input edge streams for the five evaluation
// datasets (paper Table II). The SNAP datasets themselves are not
// redistributable here, so each is replaced by a generator that reproduces
// its distinguishing structural property — the per-batch degree
// distribution that Section V-B identifies as the factor deciding the best
// data structure:
//
//   - LJ-like, Orkut-like, RMAT: short-tailed — the per-batch maximum
//     degree is a few edges, so no single vertex dominates a batch.
//   - Wiki-like: heavy-tailed in-degree — hub pages receive a large share
//     of each batch's destination endpoints.
//   - Talk-like: heavy-tailed out-degree — hub talkers emit a large share
//     of each batch's source endpoints.
//
// Hub shares are calibrated so the absolute per-batch hub load (hundreds
// of edge updates funneling into one vertex per batch) matches the paper's
// despite the scaled-down batch size; see DESIGN.md's substitution table.
//
// All generators are deterministic given a seed, and streams are shuffled
// (paper Section IV-B randomly shuffles inputs to break file ordering).
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"sagabench/internal/graph"
)

// Kind selects a generator family.
type Kind string

// Generator families.
const (
	KindRMAT     Kind = "rmat"     // recursive matrix (Chakrabarti et al.)
	KindPowerLaw Kind = "powerlaw" // Chung-Lu-style with explicit hubs
)

// Spec describes one synthetic dataset.
type Spec struct {
	Name     string
	Kind     Kind
	Directed bool
	// NumNodes is the vertex-ID space.
	NumNodes int
	// NumEdges is the stream length (including duplicates, like a raw
	// SNAP edge file).
	NumEdges int
	// BatchSize is the dataset's default ingest batch size.
	BatchSize int

	// RMAT quadrant probabilities (KindRMAT).
	A, B, C, D float64

	// Power-law parameters (KindPowerLaw).
	//
	// HubCount top vertices absorb HubInShare of destination endpoints
	// (in-degree hubs) and HubOutShare of source endpoints (out-degree
	// hubs), split harmonically so hub 0 is the heaviest. The remaining
	// endpoints are drawn from a mildly skewed background distribution.
	HubCount    int
	HubInShare  float64
	HubOutShare float64
	// Skew is the background bias: endpoint v is drawn with probability
	// proportional to (v+64)^-Skew. 0 means uniform.
	Skew float64
}

// BatchCount reports NumEdges/BatchSize rounded up (Table II).
func (s Spec) BatchCount() int {
	return (s.NumEdges + s.BatchSize - 1) / s.BatchSize
}

// MaxWeight bounds generated edge weights (weights are 1..MaxWeight).
const MaxWeight = 64

// Generate produces the shuffled edge stream for the spec.
func (s Spec) Generate(seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	switch s.Kind {
	case KindRMAT:
		edges = genRMAT(rng, s)
	case KindPowerLaw:
		edges = genPowerLaw(rng, s)
	default:
		panic(fmt.Sprintf("gen: unknown kind %q", s.Kind))
	}
	Shuffle(edges, seed+1)
	return edges
}

// Shuffle permutes edges deterministically (Fisher-Yates).
func Shuffle(edges []graph.Edge, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
}

// genRMAT draws each edge by recursive quadrant descent over the adjacency
// matrix with probabilities (A,B,C,D); NumNodes must be a power of two.
func genRMAT(rng *rand.Rand, s Spec) []graph.Edge {
	edges := make([]graph.Edge, s.NumEdges)
	for i := range edges {
		src, dst := rmatPair(rng, s)
		edges[i] = graph.Edge{Src: src, Dst: dst, Weight: randWeight(rng)}
	}
	return edges
}

func rmatPair(rng *rand.Rand, s Spec) (graph.NodeID, graph.NodeID) {
	var row, col int
	for half := s.NumNodes / 2; half >= 1; half /= 2 {
		r := rng.Float64()
		switch {
		case r < s.A:
			// top-left: no move
		case r < s.A+s.B:
			col += half
		case r < s.A+s.B+s.C:
			row += half
		default:
			row += half
			col += half
		}
	}
	return graph.NodeID(row), graph.NodeID(col)
}

// genPowerLaw draws endpoints from a hub/background mixture.
func genPowerLaw(rng *rand.Rand, s Spec) []graph.Edge {
	bg := newBackgroundSampler(s.NumNodes, s.Skew)
	hubs := s.HubCount
	if hubs <= 0 {
		hubs = 1
	}
	if hubs > s.NumNodes {
		// More hubs than vertices would emit endpoints outside the ID
		// space (found by FuzzGenerate): every vertex is a hub then.
		hubs = s.NumNodes
	}
	hubWeights := make([]float64, hubs)
	total := 0.0
	for i := range hubWeights {
		hubWeights[i] = 1 / float64(i+1) // harmonic: hub 0 heaviest
		total += hubWeights[i]
	}
	pickHub := func() graph.NodeID {
		r := rng.Float64() * total
		for i, w := range hubWeights {
			r -= w
			if r <= 0 {
				return graph.NodeID(i)
			}
		}
		return graph.NodeID(hubs - 1)
	}
	edges := make([]graph.Edge, s.NumEdges)
	for i := range edges {
		var src, dst graph.NodeID
		if rng.Float64() < s.HubOutShare {
			src = pickHub()
		} else {
			src = bg.sample(rng)
		}
		if rng.Float64() < s.HubInShare {
			dst = pickHub()
		} else {
			dst = bg.sample(rng)
		}
		if src == dst {
			dst = graph.NodeID((int(dst) + 1) % s.NumNodes)
		}
		edges[i] = graph.Edge{Src: src, Dst: dst, Weight: randWeight(rng)}
	}
	return edges
}

func randWeight(rng *rand.Rand) graph.Weight {
	return graph.Weight(rng.Intn(MaxWeight) + 1)
}

// backgroundSampler draws vertex v with probability proportional to
// (v+64)^-skew via inverse-CDF binary search over precomputed cumulative
// weights. skew 0 degenerates to uniform.
type backgroundSampler struct {
	cum []float64 // cumulative weights, len NumNodes
}

func newBackgroundSampler(n int, skew float64) *backgroundSampler {
	b := &backgroundSampler{cum: make([]float64, n)}
	acc := 0.0
	for v := 0; v < n; v++ {
		w := 1.0
		if skew > 0 {
			w = math.Pow(float64(v)+64, -skew)
		}
		acc += w
		b.cum[v] = acc
	}
	return b
}

func (b *backgroundSampler) sample(rng *rand.Rand) graph.NodeID {
	target := rng.Float64() * b.cum[len(b.cum)-1]
	lo, hi := 0, len(b.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if b.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return graph.NodeID(lo)
}
