package gen

import "fmt"

// Profile scales the dataset registry. The paper runs 5M–500M-edge streams
// on a dual-socket server; these profiles keep the structural contrasts
// (relative dataset sizes, batch counts, hub loads) at laptop scale.
type Profile string

// Available profiles.
const (
	// ProfileTiny is for unit tests: ~10× smaller than default.
	ProfileTiny Profile = "tiny"
	// ProfileDefault drives the standard benchmark harness.
	ProfileDefault Profile = "default"
	// ProfileLarge is ~5× the default, for longer-running studies.
	ProfileLarge Profile = "large"
)

func (p Profile) factor() (float64, error) {
	switch p {
	case ProfileTiny:
		return 0.1, nil
	case ProfileDefault, "":
		return 1, nil
	case ProfileLarge:
		return 5, nil
	default:
		return 0, fmt.Errorf("gen: unknown profile %q", p)
	}
}

// baseSpecs is the default-profile registry mirroring paper Table II:
// LiveJournal and Orkut social networks (short-tailed; Orkut undirected),
// synthetic RMAT with the paper's (a,b,c,d), the Wikipedia hyperlink graph
// (heavy in-degree tail), and the Wikipedia communication graph (heavy
// out-degree tail, very sparse).
var baseSpecs = []Spec{
	{
		Name: "lj", Kind: KindPowerLaw, Directed: true,
		NumNodes: 4800, NumEdges: 69000, BatchSize: 1000,
		HubCount: 8, HubInShare: 0.004, HubOutShare: 0.004, Skew: 0.4,
	},
	{
		Name: "orkut", Kind: KindPowerLaw, Directed: false,
		NumNodes: 3000, NumEdges: 117000, BatchSize: 1000,
		HubCount: 8, HubInShare: 0.004, HubOutShare: 0.004, Skew: 0.4,
	},
	{
		Name: "rmat", Kind: KindRMAT, Directed: true,
		NumNodes: 16384, NumEdges: 200000, BatchSize: 1000,
		A: 0.55, B: 0.15, C: 0.15, D: 0.25,
	},
	{
		Name: "wiki", Kind: KindPowerLaw, Directed: true,
		NumNodes: 18000, NumEdges: 28500, BatchSize: 1000,
		HubCount: 1, HubInShare: 0.45, HubOutShare: 0.002, Skew: 0.4,
	},
	{
		Name: "talk", Kind: KindPowerLaw, Directed: true,
		NumNodes: 12000, NumEdges: 10000, BatchSize: 1000,
		HubCount: 1, HubInShare: 0.002, HubOutShare: 0.45, Skew: 0.3,
	},
}

// ShortTailed lists the datasets whose per-batch degree distribution has a
// short tail (best on AS per the paper); the rest are heavy-tailed (best
// on DAH at P3).
var ShortTailed = map[string]bool{"lj": true, "orkut": true, "rmat": true}

// DatasetNames lists the registry in Table II order.
func DatasetNames() []string { return []string{"lj", "orkut", "rmat", "wiki", "talk"} }

// Datasets returns the registry scaled to the profile.
func Datasets(p Profile) ([]Spec, error) {
	f, err := p.factor()
	if err != nil {
		return nil, err
	}
	out := make([]Spec, len(baseSpecs))
	for i, s := range baseSpecs {
		s.NumEdges = scaleInt(s.NumEdges, f, 1000)
		s.NumNodes = scaleNodes(s.NumNodes, f, s.Kind)
		s.BatchSize = scaleInt(s.BatchSize, f, 100)
		out[i] = s
	}
	return out, nil
}

// Dataset looks up one dataset by name under the profile.
func Dataset(name string, p Profile) (Spec, error) {
	specs, err := Datasets(p)
	if err != nil {
		return Spec{}, err
	}
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, DatasetNames())
}

// MustDataset is Dataset that panics on error.
func MustDataset(name string, p Profile) Spec {
	s, err := Dataset(name, p)
	if err != nil {
		panic(err)
	}
	return s
}

func scaleInt(v int, f float64, min int) int {
	n := int(float64(v) * f)
	if n < min {
		n = min
	}
	return n
}

// scaleNodes scales the vertex space; RMAT's must stay a power of two.
func scaleNodes(v int, f float64, k Kind) int {
	n := int(float64(v) * f)
	if n < 64 {
		n = 64
	}
	if k != KindRMAT {
		return n
	}
	p := 64
	for p*2 <= n {
		p *= 2
	}
	return p
}
