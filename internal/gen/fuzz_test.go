package gen

import (
	"testing"

	"sagabench/internal/graph"
)

// FuzzGenerate drives both generator families across their parameter
// space and checks the stream invariants every consumer relies on:
// generation is deterministic for a seed, produces exactly NumEdges edges,
// keeps every endpoint inside the vertex-ID space, and keeps weights in
// [1, MaxWeight]. Parameters are clamped into their documented domains the
// same way a caller constructing a Spec must.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), true, 6, 500, 4, 0.5, 0.3, 0.3)
	f.Add(int64(42), false, 8, 1000, 16, 0.0, 0.5, 0.0)
	f.Add(int64(-7), false, 4, 1, 1, 2.0, 0.0, 0.9)
	f.Add(int64(0), true, 10, 333, 0, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, seed int64, rmat bool, nodesExp, numEdges, hubCount int, skew, inShare, outShare float64) {
		if nodesExp < 1 {
			nodesExp = 1
		}
		if nodesExp > 12 {
			nodesExp = 12
		}
		numNodes := 1 << nodesExp // power of two, as RMAT requires
		if numEdges < 0 {
			numEdges = -numEdges
		}
		numEdges %= 2000
		clamp01 := func(x float64) float64 {
			if !(x >= 0) { // also catches NaN
				return 0
			}
			if x > 1 {
				return 1
			}
			return x
		}
		if !(skew >= 0) {
			skew = 0
		}
		if skew > 4 {
			skew = 4
		}
		spec := Spec{
			Name:      "fuzz",
			Kind:      KindPowerLaw,
			NumNodes:  numNodes,
			NumEdges:  numEdges,
			BatchSize: 64,
			HubCount:  hubCount%32 + 1,
			// Shares must sum with the background to at most 1 per side.
			HubInShare:  clamp01(inShare),
			HubOutShare: clamp01(outShare),
			Skew:        skew,
		}
		if rmat {
			spec.Kind = KindRMAT
			spec.A, spec.B, spec.C, spec.D = 0.57, 0.19, 0.19, 0.05
		}

		edges := spec.Generate(seed)
		if len(edges) != numEdges {
			t.Fatalf("generated %d edges, want %d", len(edges), numEdges)
		}
		for i, e := range edges {
			if int(e.Src) >= numNodes || int(e.Dst) >= numNodes {
				t.Fatalf("edge %d: endpoint out of range: %v (NumNodes %d)", i, e, numNodes)
			}
			if e.Weight < 1 || e.Weight > MaxWeight {
				t.Fatalf("edge %d: weight %v outside [1, %d]", i, e.Weight, MaxWeight)
			}
		}

		again := spec.Generate(seed)
		for i := range edges {
			if edges[i] != again[i] {
				t.Fatalf("generation is not deterministic at edge %d: %v vs %v", i, edges[i], again[i])
			}
		}

		// Batching covers the stream exactly, tail batch included.
		total := 0
		for _, b := range graph.Batches(edges, spec.BatchSize) {
			total += len(b)
		}
		if total != len(edges) {
			t.Fatalf("batching dropped edges: %d of %d", total, len(edges))
		}
	})
}
