package gen

import (
	"math"
	"math/rand"
	"testing"

	"sagabench/internal/graph"
)

// TestRMATQuadrantSkew checks the recursive-matrix property: with
// a=0.55 > d=0.25, low-ID vertices dominate both endpoint distributions
// (the self-similar skew RMAT exists to produce).
func TestRMATQuadrantSkew(t *testing.T) {
	s := MustDataset("rmat", ProfileDefault)
	edges := s.Generate(5)
	half := graph.NodeID(s.NumNodes / 2)
	lowSrc, lowDst := 0, 0
	for _, e := range edges {
		if e.Src < half {
			lowSrc++
		}
		if e.Dst < half {
			lowDst++
		}
	}
	fSrc := float64(lowSrc) / float64(len(edges))
	fDst := float64(lowDst) / float64(len(edges))
	// One recursion level sends a+b=0.70 of rows and a+c=0.70 of columns
	// into the low half.
	if math.Abs(fSrc-0.70) > 0.02 {
		t.Errorf("low-half source fraction %v want ~0.70", fSrc)
	}
	if math.Abs(fDst-0.70) > 0.02 {
		t.Errorf("low-half destination fraction %v want ~0.70", fDst)
	}
}

// TestHubShares checks the generator hits the configured hub endpoint
// shares (the knob everything else is calibrated around).
func TestHubShares(t *testing.T) {
	wiki := MustDataset("wiki", ProfileDefault)
	edges := wiki.Generate(6)
	hubIn := 0
	for _, e := range edges {
		if e.Dst == 0 {
			hubIn++
		}
	}
	got := float64(hubIn) / float64(len(edges))
	if math.Abs(got-wiki.HubInShare) > 0.03 {
		t.Errorf("wiki hub in-share %v want ~%v", got, wiki.HubInShare)
	}

	talk := MustDataset("talk", ProfileDefault)
	edges = talk.Generate(6)
	hubOut := 0
	for _, e := range edges {
		if e.Src == 0 {
			hubOut++
		}
	}
	got = float64(hubOut) / float64(len(edges))
	if math.Abs(got-talk.HubOutShare) > 0.03 {
		t.Errorf("talk hub out-share %v want ~%v", got, talk.HubOutShare)
	}
}

// TestBackgroundSkewMonotone: the background sampler must prefer low IDs
// under positive skew and be near-uniform at skew 0.
func TestBackgroundSkewMonotone(t *testing.T) {
	const n = 1000
	const draws = 200000
	count := func(skew float64) (firstDecile, lastDecile int) {
		b := newBackgroundSampler(n, skew)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < draws; i++ {
			v := int(b.sample(rng))
			if v < n/10 {
				firstDecile++
			}
			if v >= n*9/10 {
				lastDecile++
			}
		}
		return
	}
	f0, l0 := count(0)
	if math.Abs(float64(f0-l0)) > float64(draws)/50 {
		t.Errorf("uniform sampler skewed: first=%d last=%d", f0, l0)
	}
	f4, l4 := count(0.4)
	if f4 <= l4 || float64(f4) < 1.2*float64(l4) {
		t.Errorf("skewed sampler not head-heavy: first=%d last=%d", f4, l4)
	}
}

// TestBatchCountsScaleWithPaperOrdering: the per-dataset batch-count
// ordering of Table II (talk < wiki < lj < orkut < rmat) must survive
// scaling.
func TestBatchCountsScaleWithPaperOrdering(t *testing.T) {
	for _, p := range []Profile{ProfileTiny, ProfileDefault, ProfileLarge} {
		counts := map[string]int{}
		for _, name := range DatasetNames() {
			counts[name] = MustDataset(name, p).BatchCount()
		}
		if !(counts["talk"] <= counts["wiki"] && counts["wiki"] <= counts["lj"] &&
			counts["lj"] <= counts["orkut"] && counts["orkut"] <= counts["rmat"]) {
			t.Errorf("profile %s: batch counts out of order: %v", p, counts)
		}
	}
}
