package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sagabench/internal/graph"
)

// QueryLoad drives N concurrent reader goroutines against a pipeline's
// published epochs while the writer streams batches: the load half of the
// interference experiment and the reader half of the concurrency battery.
// Each reader pins an epoch, issues a burst of neighborhood/degree/
// existence/value queries against it, optionally verifies the snapshot's
// structural invariants and fingerprint stability, and releases.

// QueryLoadConfig tunes the generator.
type QueryLoadConfig struct {
	// Readers is the concurrent reader count (default 1).
	Readers int
	// Seed derives each reader's private query sequence (reader i uses
	// Seed+i), so a run's query pattern is reproducible even though its
	// interleaving with the writer is not.
	Seed int64
	// PerPin is the number of query rounds issued per pinned session
	// (default 32). Longer sessions grow staleness and hold buffers
	// longer, exercising the dropped-buffer path.
	PerPin int
	// Verify turns every session into a property check: the snapshot's
	// structural invariants are verified at pin time, its fingerprint is
	// taken, and the fingerprint is re-checked at release — if the writer
	// scribbled a pinned epoch in the meantime, the battery sees it even
	// when the scribble happens to preserve well-formedness. O(V+E) per
	// session; meant for tests, not for throughput measurement.
	Verify bool
}

// QueryLoadStats summarizes a stopped load.
type QueryLoadStats struct {
	// Queries counts individual reads; Sessions counts pin/release
	// cycles; Misses counts acquisitions before the first publication.
	Queries  uint64
	Sessions uint64
	Misses   uint64
	// MaxStaleness is the largest batch-lag any session observed at
	// release.
	MaxStaleness uint64
	// Violations counts consistency failures (torn epochs, fingerprint
	// drift, reader panics); FirstViolation describes the first.
	Violations     uint64
	FirstViolation string
	// Elapsed is the wall time between start and stop; QPS is
	// Queries/Elapsed.
	Elapsed time.Duration
}

// QPS is the load's served query throughput.
func (s QueryLoadStats) QPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Queries) / s.Elapsed.Seconds()
}

// QueryLoad is a running reader fleet; Stop joins it and reports.
type QueryLoad struct {
	p     *Pipeline
	cfg   QueryLoadConfig
	stop  chan struct{}
	wg    sync.WaitGroup
	start time.Time

	queries    atomic.Uint64
	sessions   atomic.Uint64
	misses     atomic.Uint64
	maxStale   atomic.Uint64
	violations atomic.Uint64
	violMu     sync.Mutex
	firstViol  string
}

// StartQueryLoad launches the readers. The pipeline must have been built
// with ServeQueries; the caller must Stop the load before closing the
// pipeline's owner (stopping after Close is safe — readers then just
// count misses until joined).
func StartQueryLoad(p *Pipeline, cfg QueryLoadConfig) (*QueryLoad, error) {
	if p.em == nil {
		return nil, ErrQueriesOff
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 1
	}
	if cfg.PerPin <= 0 {
		cfg.PerPin = 32
	}
	q := &QueryLoad{p: p, cfg: cfg, stop: make(chan struct{}), start: time.Now()}
	for i := 0; i < cfg.Readers; i++ {
		q.wg.Add(1)
		go func(seed int64) {
			defer func() {
				if r := recover(); r != nil {
					q.noteViolation(fmt.Sprintf("reader panic: %v", r))
				}
				q.wg.Done()
			}()
			q.reader(seed)
		}(cfg.Seed + int64(i))
	}
	return q, nil
}

// Served reports the queries answered so far, without stopping the
// fleet. Writers use it to keep serving until the readers have actually
// observed something (a stream can outrun reader scheduling on small
// machines, and a zero-query run proves nothing).
func (q *QueryLoad) Served() uint64 { return q.queries.Load() }

// Stop joins the readers and returns the accumulated stats.
func (q *QueryLoad) Stop() QueryLoadStats {
	close(q.stop)
	q.wg.Wait()
	q.violMu.Lock()
	first := q.firstViol
	q.violMu.Unlock()
	return QueryLoadStats{
		Queries:        q.queries.Load(),
		Sessions:       q.sessions.Load(),
		Misses:         q.misses.Load(),
		MaxStaleness:   q.maxStale.Load(),
		Violations:     q.violations.Load(),
		FirstViolation: first,
		Elapsed:        time.Since(q.start),
	}
}

func (q *QueryLoad) noteViolation(msg string) {
	q.violations.Add(1)
	q.violMu.Lock()
	if q.firstViol == "" {
		q.firstViol = msg
	}
	q.violMu.Unlock()
}

// reader is one goroutine's pin/query/release loop.
func (q *QueryLoad) reader(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for {
		select {
		case <-q.stop:
			return
		default:
		}
		h, err := q.p.AcquireQuery()
		if err != nil {
			q.misses.Add(1)
			runtime.Gosched()
			continue
		}
		q.session(rng, h)
	}
}

// session runs one pinned burst. Every round cross-checks what the
// snapshot's own invariants promise for free: a vertex's reported degree
// matches its run length, every neighbor is inside the vertex space, and
// a listed neighbor answers HasEdge — so even the non-Verify load is a
// continuous (cheap) torn-epoch detector.
func (q *QueryLoad) session(rng *rand.Rand, h *QueryHandle) {
	defer h.Release()
	var fp uint64
	if q.cfg.Verify {
		if err := h.Snapshot().CheckConsistent(); err != nil {
			q.noteViolation(fmt.Sprintf("epoch %d pinned inconsistent: %v", h.Epoch(), err))
			return
		}
		fp = h.Snapshot().Fingerprint()
	}
	n := h.NumNodes()
	reads := uint64(1)
	for i := 0; i < q.cfg.PerPin && n > 0; i++ {
		v := graph.NodeID(rng.Intn(n))
		deg := h.OutDegree(v)
		run := h.Out(v)
		reads += 2
		if len(run) != deg {
			q.noteViolation(fmt.Sprintf("epoch %d: vertex %d degree %d but run length %d", h.Epoch(), v, deg, len(run)))
			return
		}
		if deg > 0 {
			nb := run[rng.Intn(deg)]
			if int(nb.ID) >= n {
				q.noteViolation(fmt.Sprintf("epoch %d: vertex %d lists neighbor %d outside space of %d", h.Epoch(), v, nb.ID, n))
				return
			}
			if _, ok := h.HasEdge(v, nb.ID); !ok {
				q.noteViolation(fmt.Sprintf("epoch %d: listed edge %d->%d fails HasEdge", h.Epoch(), v, nb.ID))
				return
			}
			reads++
		}
		if _, ok := h.Value(v); ok {
			reads++
		}
	}
	if q.cfg.Verify && n > 0 {
		if got := h.Snapshot().Fingerprint(); got != fp {
			q.noteViolation(fmt.Sprintf("epoch %d: fingerprint changed while pinned (%#x -> %#x)", h.Epoch(), fp, got))
			return
		}
	}
	if st := h.Staleness(); st > q.maxStale.Load() {
		for {
			cur := q.maxStale.Load()
			if st <= cur || q.maxStale.CompareAndSwap(cur, st) {
				break
			}
		}
	}
	q.queries.Add(reads)
	q.sessions.Add(1)
}
