package core_test

import (
	"errors"
	"runtime"
	"sort"
	"testing"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/crosscheck"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

func servingCfg(dsName string, view bool) core.PipelineConfig {
	cfg := pipelineCfg(dsName, "cc", compute.INC)
	cfg.ComputeView = view
	cfg.ServeQueries = true
	return cfg
}

// sortedRun copies and ID-sorts an adjacency run so structures with
// insertion-ordered runs compare against the oracle's sorted ones.
func sortedRun(run []graph.Neighbor) []graph.Neighbor {
	out := append([]graph.Neighbor(nil), run...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TestEpochLifecycle walks publish→pin→advance→release on both the
// compute-view (double-buffered) and export (fresh-arrays) publication
// paths, checking every pinned epoch against a sequential oracle.
func TestEpochLifecycle(t *testing.T) {
	for _, view := range []bool{true, false} {
		view := view
		t.Run(map[bool]string{true: "view", false: "export"}[view], func(t *testing.T) {
			p, err := core.NewPipeline(servingCfg("adjshared", view))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			// Before the first batch: enabled but nothing published.
			if _, err := p.AcquireQuery(); !errors.Is(err, core.ErrNoEpoch) {
				t.Fatalf("AcquireQuery before first batch: %v, want ErrNoEpoch", err)
			}

			oracle := graph.NewOracle(true)
			stream := crosscheck.NewStream(crosscheck.StreamConfig{
				Seed: 7, Batches: 6, BatchSize: 150, NumNodes: 48, Directed: true,
			})
			var pinned *core.QueryHandle
			var pinnedFP uint64
			for bi, st := range stream {
				if _, err := p.ProcessMixed(core.MixedBatch{Adds: st.Adds}); err != nil {
					t.Fatal(err)
				}
				oracle.Update(st.Adds)

				h, err := p.AcquireQuery()
				if err != nil {
					t.Fatalf("batch %d: %v", bi, err)
				}
				if got, want := h.Epoch(), uint64(bi+1); got != want {
					t.Fatalf("batch %d: epoch %d, want %d", bi, got, want)
				}
				if h.Batch() != bi {
					t.Fatalf("batch %d: handle reports batch %d", bi, h.Batch())
				}
				if h.Staleness() != 0 {
					t.Fatalf("batch %d: fresh handle staleness %d", bi, h.Staleness())
				}
				if h.NumNodes() != oracle.NumNodes() {
					t.Fatalf("batch %d: %d nodes, oracle %d", bi, h.NumNodes(), oracle.NumNodes())
				}
				if h.NumEdges() != oracle.NumEdges() {
					t.Fatalf("batch %d: %d edges, oracle %d", bi, h.NumEdges(), oracle.NumEdges())
				}
				for v := 0; v < oracle.NumNodes(); v++ {
					id := graph.NodeID(v)
					got := sortedRun(h.Out(id))
					want := oracle.Out(id)
					if len(got) != len(want) {
						t.Fatalf("batch %d vertex %d: %d out-neighbors, oracle %d", bi, v, len(got), len(want))
					}
					for i := range got {
						if got[i].ID != want[i].ID || got[i].Weight != want[i].Weight {
							t.Fatalf("batch %d vertex %d: neighbor %d is %v, oracle %v", bi, v, i, got[i], want[i])
						}
					}
					if h.InDegree(id) != oracle.InDegree(id) {
						t.Fatalf("batch %d vertex %d: in-degree %d, oracle %d", bi, v, h.InDegree(id), oracle.InDegree(id))
					}
				}
				// The published property vector is the engine's at that batch.
				if vals := h.Values(); len(vals) != h.NumNodes() {
					t.Fatalf("batch %d: %d values for %d nodes", bi, len(vals), h.NumNodes())
				}
				if bi == 2 {
					// Hold this epoch across the rest of the stream.
					pinned = h
					pinnedFP = h.Snapshot().Fingerprint()
					continue
				}
				if err := h.ReleaseChecked(); err != nil {
					t.Fatalf("batch %d: %v", bi, err)
				}
			}

			// The held epoch must have aged but stayed bit-identical.
			if got, want := pinned.Staleness(), uint64(len(stream)-3); got != want {
				t.Fatalf("pinned staleness %d, want %d", got, want)
			}
			if got := pinned.Snapshot().Fingerprint(); got != pinnedFP {
				t.Fatalf("pinned epoch scribbled: fingerprint %#x -> %#x", pinnedFP, got)
			}
			if err := pinned.ReleaseChecked(); err != nil {
				t.Fatal(err)
			}
			if pins := p.Epochs().Stats().Pins; pins != 0 {
				t.Fatalf("%d pins outstanding after release", pins)
			}
		})
	}
}

func TestAcquireQueryDisabled(t *testing.T) {
	p, err := core.NewPipeline(pipelineCfg("adjshared", "cc", compute.INC))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.AcquireQuery(); !errors.Is(err, core.ErrQueriesOff) {
		t.Fatalf("AcquireQuery without ServeQueries: %v, want ErrQueriesOff", err)
	}
	if _, err := core.StartQueryLoad(p, core.QueryLoadConfig{}); !errors.Is(err, core.ErrQueriesOff) {
		t.Fatalf("StartQueryLoad without ServeQueries: %v, want ErrQueriesOff", err)
	}
	if p.Epochs() != nil {
		t.Fatal("Epochs() non-nil without ServeQueries")
	}
}

// TestCloseWithPinnedHandle verifies Close stops hand-out while handles
// already pinned keep reading valid immutable state.
func TestCloseWithPinnedHandle(t *testing.T) {
	p, err := core.NewPipeline(servingCfg("adjshared", true))
	if err != nil {
		t.Fatal(err)
	}
	p.Process(graph.Batch{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}})
	h, err := p.AcquireQuery()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AcquireQuery(); !errors.Is(err, core.ErrNoEpoch) {
		t.Fatalf("AcquireQuery after Close: %v, want ErrNoEpoch", err)
	}
	if h.NumNodes() != 3 || h.OutDegree(0) != 1 {
		t.Fatal("pinned handle lost data after Close")
	}
	if _, ok := h.HasEdge(1, 2); !ok {
		t.Fatal("pinned handle lost edge after Close")
	}
	if err := h.ReleaseChecked(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochBufferReuse pins down both halves of the reclamation protocol
// on the compute-view path: with no readers the double buffer is
// reclaimed (zero-reader fast path, no drops); with a reader holding the
// spare's owner the writer drops the buffers and the held epoch survives.
func TestEpochBufferReuse(t *testing.T) {
	batchAt := func(round int) graph.Batch {
		var b graph.Batch
		for src := 0; src < 24; src++ {
			b = append(b, graph.Edge{
				Src:    graph.NodeID(src),
				Dst:    graph.NodeID((src + 1 + round) % 24),
				Weight: graph.Weight(1 + round),
			})
		}
		return b
	}

	// No readers: every rebuild after the second reuses the spare.
	p, err := core.NewPipeline(servingCfg("adjshared", true))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		p.Process(batchAt(r))
	}
	st := p.Epochs().Stats()
	p.Close()
	if st.Reclaimed == 0 {
		t.Fatalf("no buffers reclaimed with zero readers: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("%d buffers dropped with zero readers", st.Dropped)
	}

	// A held handle forces the writer onto the drop path.
	p, err = core.NewPipeline(servingCfg("adjshared", true))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Process(batchAt(0))
	h, err := p.AcquireQuery()
	if err != nil {
		t.Fatal(err)
	}
	fp := h.Snapshot().Fingerprint()
	for r := 1; r < 4; r++ {
		p.Process(batchAt(r))
	}
	st = p.Epochs().Stats()
	if st.Dropped == 0 {
		t.Fatalf("writer never dropped buffers despite a pinned epoch: %+v", st)
	}
	if got := h.Snapshot().Fingerprint(); got != fp {
		t.Fatalf("held epoch scribbled while writer advanced: %#x -> %#x", fp, got)
	}
	if err := h.ReleaseChecked(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochExportPathNoSpares verifies the export publication path (no
// compute view) never enters the buffer-reuse protocol: arrays are fresh
// each batch, so nothing is reclaimed or dropped even under held pins.
func TestEpochExportPathNoSpares(t *testing.T) {
	p, err := core.NewPipeline(servingCfg("stinger", false))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Process(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	h, err := p.AcquireQuery()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		p.Process(graph.Batch{{Src: graph.NodeID(r + 1), Dst: graph.NodeID(r + 2), Weight: 1}})
	}
	st := p.Epochs().Stats()
	if st.Reclaimed != 0 || st.Dropped != 0 {
		t.Fatalf("export path touched the buffer protocol: %+v", st)
	}
	if st.Published != 4 {
		t.Fatalf("published %d epochs, want 4", st.Published)
	}
	if err := h.ReleaseChecked(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryHandleFrozen runs a full algorithm on a pinned epoch through
// the ds.Graph adapter — the temporal-analytics use of a handle.
func TestQueryHandleFrozen(t *testing.T) {
	p, err := core.NewPipeline(servingCfg("adjshared", true))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Process(graph.Batch{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 3, Dst: 4, Weight: 1}})
	h, err := p.AcquireQuery()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	fg := h.Frozen()
	if fg.NumNodes() != h.NumNodes() {
		t.Fatalf("frozen graph has %d nodes, handle %d", fg.NumNodes(), h.NumNodes())
	}
	var buf []graph.Neighbor
	if got := len(fg.OutNeigh(0, buf)); got != 1 {
		t.Fatalf("frozen OutNeigh(0) has %d records, want 1", got)
	}
}

// TestQueryLoadLeak asserts Stop joins every reader goroutine.
func TestQueryLoadLeak(t *testing.T) {
	p, err := core.NewPipeline(servingCfg("adjshared", true))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Process(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})

	before := runtime.NumGoroutine()
	ql, err := core.StartQueryLoad(p, core.QueryLoadConfig{Readers: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	stats := ql.Stop()
	if stats.Violations != 0 {
		t.Fatalf("violations on a quiescent graph: %s", stats.FirstViolation)
	}
	if stats.Queries == 0 {
		t.Fatal("readers served no queries")
	}
	// Allow the runtime a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("query load leaked goroutines: %d before, %d after", before, after)
	}
}

// TestRunStreamOnPipeline verifies the hook sees each repeat's pipeline
// and its stop function runs before the pipeline closes.
func TestRunStreamOnPipeline(t *testing.T) {
	var started, stopped int
	cfg := servingCfg("adjshared", true)
	res, err := core.RunStream(core.StreamConfig{
		PipelineConfig: cfg,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
			{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 0, Weight: 1},
		},
		BatchSize: 2,
		Repeats:   2,
		OnPipeline: func(p *core.Pipeline) func() {
			started++
			if p.Epochs() == nil {
				t.Error("OnPipeline pipeline does not serve queries")
			}
			return func() {
				stopped++
				// The pipeline must still be open: the last epoch is
				// acquirable inside the stop callback.
				h, err := p.AcquireQuery()
				if err != nil {
					t.Errorf("AcquireQuery in stop: %v", err)
					return
				}
				h.Release()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if started != 2 || stopped != 2 {
		t.Fatalf("hook ran %d/%d times, want 2/2", started, stopped)
	}
	if res.BatchCount != 2 {
		t.Fatalf("BatchCount = %d, want 2", res.BatchCount)
	}
}
