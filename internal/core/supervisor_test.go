package core_test

import (
	"errors"
	"testing"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/crosscheck"
	"sagabench/internal/ds"
	"sagabench/internal/durable"
	"sagabench/internal/fault"
)

// submitAll feeds a stream through Submit, tolerating health refusals
// (the point of several of these tests) but failing on anything else.
func submitAll(t *testing.T, sup *core.Supervisor, stream crosscheck.Stream) (refused int) {
	t.Helper()
	for i, s := range stream {
		err := sup.Submit(core.MixedBatch{Adds: s.Adds, Dels: s.Dels})
		switch {
		case err == nil:
		case errors.Is(err, core.ErrReadOnly) || errors.Is(err, core.ErrFailed):
			refused++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	return refused
}

// coldVerify cold-opens the durability directory with injection off and
// checks the recovered state equals the sequential oracle over exactly
// the batches the WAL carries.
func coldVerify(t *testing.T, cfg core.PipelineConfig, stream crosscheck.Stream, minSeq uint64) {
	t.Helper()
	cold := cfg
	cold.Faults = nil
	cold.DegradePolicy = ""
	cold.Health = nil
	dcfg := *cfg.Durable
	dcfg.IO = nil
	dcfg.CheckpointEvery = -1
	cold.Durable = &dcfg
	p, err := core.NewPipeline(cold)
	if err != nil {
		t.Fatalf("cold restart: %v", err)
	}
	defer p.Close()
	seq := p.DurableSeq()
	if seq < minSeq || seq > uint64(len(stream)) {
		t.Fatalf("recovered through seq %d, want in [%d, %d]", seq, minSeq, len(stream))
	}
	oracle := streamOracle(stream[:seq], nil)
	for _, d := range ds.DiffOracle(p.Graph(), oracle, 4) {
		t.Errorf("topology after recovery: %s", d)
	}
	want := compute.MustReference(cfg.Algorithm, oracle, durOpts)
	if v := compute.DiffValues(p.Values(), want, compute.Tolerance(cfg.Algorithm)); v >= 0 {
		t.Fatalf("values diverge at vertex %d after recovery (seq %d)", v, seq)
	}
}

// TestWatchdogRecoversStalledCompute wedges the compute phase of one
// batch with an injected stall far past the phase deadline and checks
// the watchdog fires, the instance is replaced, the stream completes,
// and a cold restart sees every batch — the stalled one included, since
// its WAL append preceded the stall.
func TestWatchdogRecoversStalledCompute(t *testing.T) {
	stream := durableStream(6)
	dir := t.TempDir()
	cfg := durableCfg(dir, "pr", &durable.Config{
		Fsync:           durable.FsyncAlways,
		CheckpointEvery: -1,
	})
	cfg.Faults = fault.MustParseSchedule("stall(compute,3,400ms)", 7)
	sup, err := core.NewSupervisor(core.SupervisorConfig{
		Pipeline:       cfg,
		PhaseDeadline:  60 * time.Millisecond,
		WatchdogPoll:   5 * time.Millisecond,
		RestartBackoff: 5 * time.Millisecond,
		MaxRestarts:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if refused := submitAll(t, sup, stream); refused != 0 {
		t.Fatalf("%d batches refused; a stall is not a durability fault", refused)
	}
	if err := sup.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rep := sup.Report()
	if rep.WatchdogFires == 0 {
		t.Fatal("watchdog never fired on a 400ms stall with a 60ms deadline")
	}
	if rep.Restarts == 0 {
		t.Fatal("stalled instance was never replaced")
	}
	if rep.State != core.Healthy {
		t.Fatalf("final health %v, want healthy (a stall is survivable)", rep.State)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("stall quarantined batches: %v", rep.Quarantined)
	}
	coldVerify(t, cfg, stream, uint64(len(stream)))
}

// TestSupervisorWorkerPanicRestarts injects an error (not a stall) into
// the compute phase of a non-durable pipeline: the panic escapes
// ProcessMixed, the worker captures it, and the supervisor replaces the
// instance instead of dying. Without durability the rebuilt instance
// starts empty — the test only asserts survival and accounting.
func TestSupervisorWorkerPanicRestarts(t *testing.T) {
	stream := durableStream(5)
	sup, err := core.NewSupervisor(core.SupervisorConfig{
		Pipeline: core.PipelineConfig{
			DataStructure: "adjshared",
			Algorithm:     "pr",
			Model:         compute.INC,
			Directed:      true,
			Threads:       2,
			Compute:       durOpts,
			Faults:        fault.MustParseSchedule("eio(compute,2)", 3),
		},
		RestartBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, sup, stream)
	if err := sup.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rep := sup.Report()
	if rep.Restarts == 0 {
		t.Fatal("compute panic did not restart the pipeline")
	}
	if rep.State != core.Healthy {
		t.Fatalf("final health %v, want healthy after isolated restart", rep.State)
	}
}

// TestSupervisorShedPolicy fills a one-slot queue against a slowed
// pipeline and checks the shed policy drops (and counts) overflow
// instead of blocking the producer.
func TestSupervisorShedPolicy(t *testing.T) {
	stream := durableStream(12)
	sup, err := core.NewSupervisor(core.SupervisorConfig{
		Pipeline: core.PipelineConfig{
			DataStructure: "adjshared",
			Algorithm:     "pr",
			Model:         compute.INC,
			Directed:      true,
			Threads:       2,
			Compute:       durOpts,
			// Every update phase dawdles 20ms so the producer laps the
			// worker (prob 1 = fire on every draw).
			Faults: fault.MustParseSchedule("slow(update,1,20ms)", 5),
		},
		MaxQueue: 1,
		Shed:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for _, s := range stream {
		if err := sup.Submit(core.MixedBatch{Adds: s.Adds, Dels: s.Dels}); errors.Is(err, core.ErrShed) {
			shed++
		} else if err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	if err := sup.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if shed == 0 {
		t.Fatal("a 1-slot queue against a 20ms/batch worker never shed")
	}
	rep := sup.Report()
	if rep.ShedBatches != uint64(shed) {
		t.Fatalf("report counts %d sheds, producer saw %d", rep.ShedBatches, shed)
	}
	if rep.State != core.Healthy {
		t.Fatalf("shedding is policy, not failure: health %v", rep.State)
	}
}

// TestSupervisorReadOnlyServesQueries pushes the pipeline into
// read-only with a permanent WAL fault and checks the defining contract
// of the state: ingest refused, epoch-snapshot queries still answered.
func TestSupervisorReadOnlyServesQueries(t *testing.T) {
	stream := durableStream(6)
	dir := t.TempDir()
	cfg := durableCfg(dir, "pr", &durable.Config{
		Fsync:           durable.FsyncAlways,
		CheckpointEvery: -1,
		IO:              fault.MustParseSchedule("enospc(wal-append,3)", 1),
		Retry:           durable.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	cfg.ServeQueries = true
	cfg.DegradePolicy = core.DegradeReadOnly
	sup, err := core.NewSupervisor(core.SupervisorConfig{Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, sup, stream)
	// Wait for the worker to reach the fault (batch 3's append) and the
	// health machine to flip.
	deadline := time.Now().Add(5 * time.Second)
	for sup.Health().State() < core.ReadOnly {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never went read-only")
		}
		time.Sleep(time.Millisecond)
	}
	// Ingest is refused...
	if err := sup.Submit(core.MixedBatch{Adds: stream[0].Adds}); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("read-only submit: %v, want ErrReadOnly", err)
	}
	// ...while queries keep serving the last published epoch.
	h, err := sup.AcquireQuery()
	if err != nil {
		t.Fatalf("read-only query refused: %v", err)
	}
	if h.NumNodes() == 0 {
		t.Fatal("read-only epoch is empty; pre-fault batches were published")
	}
	h.Release()
	if err := sup.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rep := sup.Report()
	if rep.State != core.ReadOnly || rep.Refused == 0 {
		t.Fatalf("report %+v: want read-only with refusals counted", rep)
	}
}

// TestSupervisedFaultSoak is the acceptance scenario: a stream driven
// through the supervised runtime under a composite schedule — slow
// fsyncs (prob 0.3), one transient append EIO, one permanent fsync
// ENOSPC, one 400ms compute stall — with a read-only degrade policy and
// queries interleaved. The run must complete without process death,
// retry the transient, restart through the stall, flip read-only on the
// permanent fault while still answering queries, and lose no batch the
// WAL acknowledged.
func TestSupervisedFaultSoak(t *testing.T) {
	stream := durableStream(20)
	dir := t.TempDir()
	sched := fault.MustParseSchedule(
		"slow(wal-fsync,0.3,200us);eio(wal-append,5);enospc(wal-fsync,12);stall(compute,8,400ms)", 42)
	cfg := durableCfg(dir, "pr", &durable.Config{
		Fsync:           durable.FsyncAlways,
		CheckpointEvery: 5,
		IO:              sched,
		Retry:           durable.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	cfg.Faults = sched
	cfg.ServeQueries = true
	cfg.DegradePolicy = core.DegradeReadOnly
	sup, err := core.NewSupervisor(core.SupervisorConfig{
		Pipeline:       cfg,
		MaxQueue:       8,
		PhaseDeadline:  100 * time.Millisecond,
		WatchdogPoll:   5 * time.Millisecond,
		RestartBackoff: 5 * time.Millisecond,
		MaxRestarts:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for i, s := range stream {
		err := sup.Submit(core.MixedBatch{Adds: s.Adds, Dels: s.Dels})
		if err != nil && !errors.Is(err, core.ErrReadOnly) {
			t.Fatalf("submit %d: %v", i, err)
		}
		if h, qerr := sup.AcquireQuery(); qerr == nil {
			if h.NumNodes() > 0 {
				served++
			}
			h.Release()
		}
	}
	// The permanent fsync fault must have flipped the run read-only —
	// and read-only must still answer queries.
	deadline := time.Now().Add(10 * time.Second)
	for sup.Health().State() < core.ReadOnly {
		if time.Now().After(deadline) {
			t.Fatal("permanent fault never degraded the pipeline")
		}
		time.Sleep(time.Millisecond)
	}
	h, err := sup.AcquireQuery()
	if err != nil {
		t.Fatalf("read-only query refused: %v", err)
	}
	h.Release()
	if err := sup.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	rep := sup.Report()
	if rep.State != core.ReadOnly {
		t.Fatalf("final health %v, want read-only", rep.State)
	}
	if rep.DurableRetry == 0 {
		t.Fatal("transient EIO was never retried")
	}
	if rep.WatchdogFires == 0 || rep.Restarts == 0 {
		t.Fatalf("stall not recovered: %d fires, %d restarts", rep.WatchdogFires, rep.Restarts)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("soak quarantined batches: %v", rep.Quarantined)
	}
	if len(rep.Injections) == 0 {
		t.Fatal("report carries no injection log")
	}
	if served == 0 {
		t.Fatal("no query was ever served during the soak")
	}
	// Oracle: the recovered state must equal the sequential replay of
	// exactly the WAL-acknowledged prefix — at least the 7 batches that
	// preceded the first disruption.
	coldVerify(t, cfg, stream, 7)
}
