package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sagabench/internal/telemetry"
)

// Supervisor is the self-healing runtime around a Pipeline: a bounded
// ingest queue with backpressure or shedding, a per-phase watchdog that
// detects stalled update/compute/publish phases, and panic-isolated
// restart — a wedged or dead pipeline instance is fenced off and a
// fresh one is rebuilt from the last durable state (checkpoint + WAL),
// while queries keep serving from the epoch snapshots already
// published. One Health machine threads through every rebuild, so the
// run's degradation history and the final report survive any number of
// pipeline instances.
//
// The recovery protocol on a watchdog fire or worker panic:
//
//	fence old instance -> bump generation -> backoff -> rebuild from
//	disk -> resubmit the in-flight batch iff it never reached the WAL
//	-> new worker resumes the queue
//
// Fencing (Pipeline.Fence) is what makes abandoning a stalled worker
// sound: the old goroutine may unblock minutes later and run to
// completion, but every durable file operation it would perform is
// refused, so it cannot scribble WAL segments or checkpoints the
// rebuilt instance now owns. Its in-memory effects die with the old
// components.

// SupervisorConfig tunes the supervised runtime.
type SupervisorConfig struct {
	// Pipeline is the supervised pipeline's configuration. With a
	// Durable config, rebuilds recover the last durable state; without
	// one, a restart begins from an empty graph (supervision still
	// isolates panics and stalls, but there is no state to restore).
	Pipeline PipelineConfig
	// MaxQueue bounds the ingest queue (default 64). Submit blocks when
	// the queue is full (backpressure) unless Shed is set.
	MaxQueue int
	// Shed, when true, drops the newest batch instead of blocking when
	// the queue is full; Submit then returns ErrShed.
	Shed bool
	// PhaseDeadline is the watchdog's default per-phase budget (default
	// 1s): a phase running longer is declared stalled and its pipeline
	// instance is replaced. PhaseDeadlines overrides it per phase
	// ("update", "compute", "publish").
	PhaseDeadline  time.Duration
	PhaseDeadlines map[string]time.Duration
	// WatchdogPoll is the deadline check period (default 5ms).
	WatchdogPoll time.Duration
	// RestartBackoff is the delay before each rebuild (default 10ms);
	// restart i waits i×RestartBackoff, so a crash-looping instance
	// backs off linearly instead of spinning on a hot failure.
	RestartBackoff time.Duration
	// MaxRestarts bounds rebuilds (default 3); exhausting it fails the
	// pipeline. The queue keeps draining so blocked producers never
	// hang — their batches are refused and counted.
	MaxRestarts int
}

func (cfg SupervisorConfig) withDefaults() SupervisorConfig {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.PhaseDeadline <= 0 {
		cfg.PhaseDeadline = time.Second
	}
	if cfg.WatchdogPoll <= 0 {
		cfg.WatchdogPoll = 5 * time.Millisecond
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = 10 * time.Millisecond
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	return cfg
}

// ErrShed is returned by Submit when the shed policy drops a batch on a
// full queue.
var ErrShed = errors.New("core: ingest queue full, batch shed")

// errSupClosed is returned by Submit after Close.
var errSupClosed = errors.New("core: supervisor closed")

// inflightBatch is the batch a worker is processing right now, tagged
// with the durable sequence number before it was offered: if a rebuild
// recovers to a sequence at or below seqBefore, the batch never reached
// the WAL and must be resubmitted; if it recovered past it, the WAL
// already carries the batch and resubmitting would double-apply.
type inflightBatch struct {
	seqBefore uint64
	mb        MixedBatch
}

// Supervisor runs a pipeline under watchdog supervision. Build with
// NewSupervisor; feed with Submit; stop with Close.
type Supervisor struct {
	cfg    SupervisorConfig
	health *Health
	rec    *telemetry.Recorder

	queue chan MixedBatch
	done  chan struct{}

	// subMu serializes Submit against Close so the queue is never closed
	// under an in-flight send.
	subMu  sync.RWMutex
	closed bool

	// mu guards the current/previous pipeline pointers across rebuilds.
	mu   sync.Mutex
	p    *Pipeline
	prev *Pipeline

	// gen is the pipeline generation; workers and phase hooks from a
	// superseded generation recognize themselves as stale and stand
	// down. restartMu serializes the fence-rebuild-respawn sequence.
	gen       atomic.Uint64
	restartMu sync.Mutex
	restarts  int

	// Watchdog feed: phaseStart is the UnixNano entry time of the phase
	// named by phaseName (0 = no phase in flight). Written by the
	// current generation's phase hook only.
	phaseStart atomic.Int64
	phaseName  atomic.Value // string

	inflight atomic.Pointer[inflightBatch]

	// Report accumulators for retired pipeline instances (the live
	// instance is read directly).
	retiredRetries  uint64
	retiredPoisoned []string

	workers    sync.WaitGroup
	watchdogWG sync.WaitGroup
}

// NewSupervisor builds the first pipeline instance and starts the
// worker and watchdog.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if cfg.Pipeline.Health == nil {
		cfg.Pipeline.Health = NewHealth(cfg.Pipeline.Telemetry)
	}
	s := &Supervisor{
		cfg:    cfg,
		health: cfg.Pipeline.Health,
		rec:    cfg.Pipeline.Telemetry,
		queue:  make(chan MixedBatch, cfg.MaxQueue),
		done:   make(chan struct{}),
	}
	s.phaseName.Store("")
	gen := s.gen.Load()
	p, err := s.buildPipeline(gen)
	if err != nil {
		return nil, err
	}
	s.p = p
	s.spawnWorker(gen, p, nil)
	s.watchdogWG.Add(1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.health.To(Failed, fmt.Sprintf("watchdog panic: %v", r))
			}
			s.watchdogWG.Done()
		}()
		s.watchdog()
	}()
	return s, nil
}

// buildPipeline constructs a pipeline instance wired to this
// supervisor: the shared health machine and a generation-tagged phase
// hook (a fenced instance's phases must not disturb the watchdog's view
// of its replacement).
func (s *Supervisor) buildPipeline(gen uint64) (*Pipeline, error) {
	pcfg := s.cfg.Pipeline
	pcfg.phaseHook = func(name string, done bool) {
		if s.gen.Load() != gen {
			return
		}
		if done {
			s.phaseStart.Store(0)
		} else {
			s.phaseName.Store(name)
			s.phaseStart.Store(time.Now().UnixNano())
		}
	}
	return NewPipeline(pcfg)
}

// Submit offers one batch to the supervised pipeline. It returns nil
// when the batch is queued, ErrShed when the shed policy dropped it,
// ErrReadOnly/ErrFailed when the health machine refuses ingest, and
// errSupClosed after Close. With Shed unset a full queue blocks the
// caller — backpressure, not loss.
func (s *Supervisor) Submit(mb MixedBatch) error {
	if st := s.health.State(); st >= ReadOnly {
		s.health.NoteRefused()
		if st >= Failed {
			return ErrFailed
		}
		return ErrReadOnly
	}
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	if s.closed {
		return errSupClosed
	}
	if s.cfg.Shed {
		select {
		case s.queue <- mb:
		default:
			s.health.NoteShed()
			return ErrShed
		}
	} else {
		s.queue <- mb
	}
	s.rec.RecordQueueDepth(len(s.queue))
	return nil
}

// spawnWorker starts the dequeue loop for one pipeline generation.
// first, when non-nil, is the recovered in-flight batch: it is
// processed before the queue so stream order is preserved.
func (s *Supervisor) spawnWorker(gen uint64, p *Pipeline, first *MixedBatch) {
	s.workers.Add(1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				// A panic that escaped ProcessMixed (the durable path
				// catches apply panics itself, so this is the direct path
				// or the machinery around it): replace the instance.
				s.restart(gen, fmt.Sprintf("worker panic: %v", r))
			}
			s.workers.Done()
		}()
		if first != nil {
			if !s.processItem(gen, p, *first) {
				return
			}
		}
		for mb := range s.queue {
			s.rec.RecordQueueDepth(len(s.queue))
			if s.gen.Load() != gen {
				s.requeue(mb)
				return
			}
			if !s.processItem(gen, p, mb) {
				return
			}
		}
	}()
}

// requeue hands a batch a retired worker dequeued back to the live
// worker. Best-effort and non-blocking: a full queue (or a closing
// supervisor) sheds it rather than deadlocking a goroutine that exists
// only to stand down.
func (s *Supervisor) requeue(mb MixedBatch) {
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	if !s.closed {
		select {
		case s.queue <- mb:
			return
		default:
		}
	}
	s.health.NoteShed()
}

// processItem runs one batch and routes its outcome; the false return
// tells the worker its generation is retired.
func (s *Supervisor) processItem(gen uint64, p *Pipeline, mb MixedBatch) bool {
	inf := &inflightBatch{seqBefore: p.DurableSeq(), mb: mb}
	s.inflight.Store(inf)
	_, err := p.ProcessMixed(mb)
	s.inflight.CompareAndSwap(inf, nil)
	switch {
	case err == nil:
		return true
	case errors.Is(err, errFenced):
		// This generation was retired mid-batch; the restart already
		// captured the in-flight batch for resubmission.
		return false
	case errors.Is(err, ErrReadOnly) || errors.Is(err, ErrFailed):
		// Refused, counted by the health machine; keep draining so
		// blocked producers are released.
		return true
	default:
		// Unabsorbed durability failure (fail policy): the health
		// machine is Failed; keep draining the queue as a refuser.
		s.health.To(Failed, fmt.Sprintf("batch failed: %v", err))
		return true
	}
}

// watchdog polls the in-flight phase against its deadline and replaces
// the pipeline instance when a phase overstays.
func (s *Supervisor) watchdog() {
	tick := time.NewTicker(s.cfg.WatchdogPoll)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
		}
		start := s.phaseStart.Load()
		if start == 0 {
			continue
		}
		name, _ := s.phaseName.Load().(string)
		deadline := s.cfg.PhaseDeadline
		if d, ok := s.cfg.PhaseDeadlines[name]; ok {
			deadline = d
		}
		if time.Since(time.Unix(0, start)) <= deadline {
			continue
		}
		gen := s.gen.Load()
		s.health.NoteWatchdogFire()
		// Disarm before restarting so the same stall cannot double-fire
		// while the rebuild runs.
		s.phaseStart.Store(0)
		s.restart(gen, fmt.Sprintf("watchdog: %s phase exceeded %v", name, deadline))
	}
}

// restart retires generation gen and brings up its replacement. Calls
// for an already-retired generation are no-ops, so the watchdog and a
// panicking worker can both report the same corpse.
func (s *Supervisor) restart(gen uint64, cause string) {
	s.restartMu.Lock()
	defer s.restartMu.Unlock()
	if s.gen.Load() != gen {
		return
	}
	// No closed check: a restart during Close's drain is legitimate (the
	// queue still holds batches the replacement must process) and safe —
	// the trigger is always a live worker that has not yet Done()d, so
	// workers.Add below never races a zero-counter workers.Wait, and a
	// worker spawned onto an already-closed queue just drains and exits.

	old := s.p
	old.Fence()
	s.gen.Add(1)
	newGen := s.gen.Load()
	s.phaseStart.Store(0)

	// Retire the old instance's report contributions before abandoning
	// it (Abandon drops its WAL handles without flushing — the fence
	// already guarantees it writes nothing more).
	r := old.HealthReport()
	s.retiredRetries += r.DurableRetry
	s.retiredPoisoned = append(s.retiredPoisoned, old.PoisonFiles()...)
	old.Abandon()

	s.restarts++
	s.health.NoteRestart()
	if s.restarts > s.cfg.MaxRestarts {
		s.health.To(Failed, fmt.Sprintf("restart budget (%d) exhausted: %s", s.cfg.MaxRestarts, cause))
		// No replacement: the old (fenced) instance keeps serving
		// already-published epochs, and spawnWorker's stale handoff plus
		// Submit's health gate keep the queue from wedging producers.
		s.spawnDrain()
		return
	}
	time.Sleep(time.Duration(s.restarts) * s.cfg.RestartBackoff)

	inf := s.inflight.Swap(nil)
	newP, err := s.buildPipeline(newGen)
	if err != nil {
		s.health.To(Failed, fmt.Sprintf("rebuild after %q failed: %v", cause, err))
		s.spawnDrain()
		return
	}
	s.mu.Lock()
	s.prev = old
	s.p = newP
	s.mu.Unlock()

	var first *MixedBatch
	if inf != nil && newP.DurableSeq() <= inf.seqBefore {
		// The in-flight batch died before its WAL append: recovery
		// cannot know it, so the supervisor replays it from memory.
		// (Past the append, recovery restored it from the log and
		// resubmitting would double-apply.)
		first = &inf.mb
	}
	s.spawnWorker(newGen, newP, first)
}

// spawnDrain keeps the queue moving after the supervisor gave up on
// rebuilds: every queued batch is refused and counted, so producers
// blocked on a full queue are released instead of hanging.
func (s *Supervisor) spawnDrain() {
	s.workers.Add(1)
	go func() {
		defer func() {
			// saga:paniccapture — nothing below can panic, but the
			// recover keeps a refactoring accident from killing the
			// process through this goroutine.
			if r := recover(); r != nil {
				s.health.To(Failed, fmt.Sprintf("drain panic: %v", r))
			}
			s.workers.Done()
		}()
		for range s.queue {
			s.health.NoteRefused()
		}
	}()
}

// AcquireQuery pins the latest published epoch, falling back to the
// previous instance's epochs while a rebuild has not yet published —
// read availability does not blink during recovery. A failed
// supervisor refuses queries; a read-only one serves them (that is the
// point of the state).
//
// saga:pin
func (s *Supervisor) AcquireQuery() (*QueryHandle, error) {
	if s.health.State() >= Failed {
		return nil, ErrFailed
	}
	s.mu.Lock()
	p, prev := s.p, s.prev
	s.mu.Unlock()
	h, err := p.AcquireQuery()
	if errors.Is(err, ErrNoEpoch) && prev != nil {
		return prev.AcquireQuery()
	}
	return h, err
}

// Pipeline exposes the current pipeline instance (for tests and value
// inspection; it may be replaced by the next restart).
func (s *Supervisor) Pipeline() *Pipeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p
}

// Health exposes the shared health machine.
func (s *Supervisor) Health() *Health { return s.health }

// DurableSeq is the last durably logged sequence number of the current
// instance — the resume point a driver's oracle compares against.
func (s *Supervisor) DurableSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.DurableSeq()
}

// Report assembles the run's health report across every pipeline
// instance this supervisor went through.
func (s *Supervisor) Report() HealthReport {
	s.mu.Lock()
	p := s.p
	s.mu.Unlock()
	r := p.HealthReport()
	s.restartMu.Lock()
	r.DurableRetry += s.retiredRetries
	r.Quarantined = append(append([]string(nil), s.retiredPoisoned...), r.Quarantined...)
	s.restartMu.Unlock()
	return r
}

// Close drains the queue, joins the worker and watchdog, and closes the
// current pipeline instance (final checkpoint and WAL flush, unless
// durability already degraded). The returned error is the pipeline
// close error; consult Report for the run's health.
func (s *Supervisor) Close() error {
	s.subMu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.subMu.Unlock()
	if alreadyClosed {
		return errSupClosed
	}
	// Wait out any in-flight restart: a rebuild that began before the
	// closed flag was set must finish spawning its worker before the
	// queue closes, or its workers.Add would race workers.Wait.
	s.restartMu.Lock()
	s.restartMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	close(s.queue)
	s.workers.Wait()
	close(s.done)
	s.watchdogWG.Wait()
	s.mu.Lock()
	p := s.p
	s.mu.Unlock()
	return p.Close()
}
