package core_test

import (
	"errors"
	"testing"
	"time"

	"sagabench/internal/core"
	"sagabench/internal/durable"
	"sagabench/internal/fault"
)

func TestHealthMonotone(t *testing.T) {
	h := core.NewHealth(nil)
	if h.State() != core.Healthy {
		t.Fatalf("fresh machine in %v", h.State())
	}
	if !h.To(core.DegradedDurability, "wal enospc") {
		t.Fatal("first forward transition refused")
	}
	if h.To(core.DegradedDurability, "again") {
		t.Fatal("same-state transition fired twice")
	}
	if h.To(core.Healthy, "backward") {
		t.Fatal("backward transition fired")
	}
	if !h.To(core.ReadOnly, "checkpoint enospc") {
		t.Fatal("forward transition past degraded refused")
	}
	tr := h.Transitions()
	if len(tr) != 2 {
		t.Fatalf("recorded %d transitions, want 2: %+v", len(tr), tr)
	}
	if tr[0].From != core.Healthy || tr[0].To != core.DegradedDurability || tr[0].Cause != "wal enospc" {
		t.Fatalf("transition 0: %+v", tr[0])
	}
	if tr[1].From != core.DegradedDurability || tr[1].To != core.ReadOnly {
		t.Fatalf("transition 1: %+v", tr[1])
	}

	var nilH *core.Health
	if nilH.State() != core.Healthy || nilH.To(core.Failed, "x") {
		t.Fatal("nil Health must read healthy and absorb transitions")
	}
}

func TestHealthStateNames(t *testing.T) {
	want := map[core.HealthState]string{
		core.Healthy:            "healthy",
		core.DegradedDurability: "degraded-durability",
		core.ReadOnly:           "read-only",
		core.Failed:             "failed",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), name)
		}
	}
}

func TestDegradePolicyValidation(t *testing.T) {
	cfg := core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     "pr",
		DegradePolicy: "explode",
	}
	if _, err := core.NewPipeline(cfg); err == nil {
		t.Fatal("unknown degrade policy accepted")
	}
}

// TestPermanentFaultTransitionsOnce drives each degrade policy through
// an injected permanent WAL fault (ENOSPC, non-retryable) and checks
// the health machine transitions to the policy's target state exactly
// once, with the documented per-policy batch outcome.
func TestPermanentFaultTransitionsOnce(t *testing.T) {
	cases := []struct {
		policy core.DegradePolicy
		want   core.HealthState
	}{
		{core.DegradeContinue, core.DegradedDurability},
		{core.DegradeReadOnly, core.ReadOnly},
		{core.DegradeFail, core.Failed},
	}
	for _, tc := range cases {
		t.Run(string(tc.policy), func(t *testing.T) {
			stream := durableStream(4)
			sched := fault.MustParseSchedule("enospc(wal-append,2)", 1)
			cfg := durableCfg(t.TempDir(), "pr", &durable.Config{
				Fsync:           durable.FsyncAlways,
				CheckpointEvery: -1,
				IO:              sched,
				Retry:           durable.RetryPolicy{Sleep: func(time.Duration) {}},
			})
			cfg.DegradePolicy = tc.policy
			p, err := core.NewPipeline(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var errs []error
			for _, s := range stream {
				_, err := p.ProcessMixed(core.MixedBatch{Adds: s.Adds, Dels: s.Dels})
				errs = append(errs, err)
			}
			if errs[0] != nil {
				t.Fatalf("pre-fault batch failed: %v", errs[0])
			}
			h := p.Health()
			if h.State() != tc.want {
				t.Fatalf("health %v, want %v", h.State(), tc.want)
			}
			if tr := h.Transitions(); len(tr) != 1 || tr[0].To != tc.want {
				t.Fatalf("want exactly one transition to %v, got %+v", tc.want, tr)
			}
			switch tc.policy {
			case core.DegradeContinue:
				// Every batch applies (in memory after the fault); the WAL
				// froze at the last pre-fault sequence.
				for i, err := range errs {
					if err != nil {
						t.Fatalf("degrade policy surfaced batch %d error: %v", i, err)
					}
				}
				if p.DurableSeq() != 1 {
					t.Fatalf("degraded WAL advanced to %d, want frozen at 1", p.DurableSeq())
				}
			case core.DegradeReadOnly:
				for i, err := range errs[1:] {
					if !errors.Is(err, core.ErrReadOnly) {
						t.Fatalf("post-fault batch %d: %v, want ErrReadOnly", i+1, err)
					}
				}
			case core.DegradeFail:
				if errs[1] == nil || !durable.IsPermanent(errs[1]) {
					t.Fatalf("fail policy: batch 1 error %v, want permanent durability error", errs[1])
				}
				for i, err := range errs[2:] {
					if !errors.Is(err, core.ErrFailed) {
						t.Fatalf("post-failure batch %d: %v, want ErrFailed", i+2, err)
					}
				}
			}
			rep := p.HealthReport()
			if rep.State != tc.want || rep.Healthy() {
				t.Fatalf("report %+v inconsistent with health %v", rep, tc.want)
			}
			// Close must not resurrect the fault (the degraded path skips
			// flushing through the dead WAL).
			if err := p.Close(); err != nil && tc.policy == core.DegradeContinue {
				t.Fatalf("close after degrade: %v", err)
			}
		})
	}
}

// TestCheckpointFaultDegradesNotBatches checks a permanent checkpoint
// fault under the degrade policy suspends checkpointing only: batches
// keep logging and applying, and the final health is
// degraded-durability with the WAL intact.
func TestCheckpointFaultDegradesNotBatches(t *testing.T) {
	stream := durableStream(6)
	sched := fault.MustParseSchedule("enospc(ckpt-write,1)", 1)
	dir := t.TempDir()
	cfg := durableCfg(dir, "pr", &durable.Config{
		Fsync:           durable.FsyncAlways,
		CheckpointEvery: 2,
		IO:              sched,
		Retry:           durable.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	cfg.DegradePolicy = core.DegradeContinue
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stream {
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: s.Adds, Dels: s.Dels}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if p.Health().State() != core.DegradedDurability {
		t.Fatalf("health %v, want degraded-durability", p.Health().State())
	}
	if p.DurableSeq() != uint64(len(stream)) {
		t.Fatalf("WAL at %d, want %d (checkpoint fault must not stop logging)", p.DurableSeq(), len(stream))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// The WAL alone carries everything: a cold restart replays the full
	// stream even though every checkpoint attempt failed.
	cold := cfg
	cold.DegradePolicy = ""
	dcfg := *cfg.Durable
	dcfg.IO = nil
	dcfg.CheckpointEvery = -1
	cold.Durable = &dcfg
	verifyAgainstOracle(t, cold, streamOracle(stream, nil), uint64(len(stream)))
}
