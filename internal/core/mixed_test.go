package core_test

import (
	"math"
	"math/rand"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// TestProcessMixedFSMatchesReference applies interleaved inserts and
// deletes with the FS model and checks BFS depths against a reference on
// the mutated oracle.
func TestProcessMixedFSMatchesReference(t *testing.T) {
	for _, dsName := range ds.Names() {
		p, err := core.NewPipeline(core.PipelineConfig{
			DataStructure: dsName,
			Algorithm:     "bfs",
			Model:         compute.FS,
			Directed:      true,
			Threads:       2,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle := graph.NewOracle(true)
		rng := rand.New(rand.NewSource(3))
		var live graph.Batch
		for round := 0; round < 5; round++ {
			mb := core.MixedBatch{}
			for i := 0; i < 400; i++ {
				e := graph.Edge{
					Src:    graph.NodeID(rng.Intn(80)),
					Dst:    graph.NodeID(rng.Intn(80)),
					Weight: 1,
				}
				mb.Adds = append(mb.Adds, e)
			}
			for i := 0; i < 100 && len(live) > 0; i++ {
				mb.Dels = append(mb.Dels, live[rng.Intn(len(live))])
			}
			if _, err := p.ProcessMixed(mb); err != nil {
				t.Fatalf("%s: %v", dsName, err)
			}
			oracle.Update(mb.Adds)
			oracle.Delete(mb.Dels)
			live = append(live, mb.Adds...)

			want := bfsOnOracle(oracle, 0)
			got := p.Values()
			if len(got) != len(want) {
				t.Fatalf("%s round %d: %d values want %d", dsName, round, len(got), len(want))
			}
			for v := range got {
				gi, wi := math.IsInf(got[v], 1), math.IsInf(want[v], 1)
				if gi != wi || (!gi && got[v] != want[v]) {
					t.Fatalf("%s round %d vertex %d: got %v want %v", dsName, round, v, got[v], want[v])
				}
			}
		}
	}
}

func bfsOnOracle(o *graph.Oracle, src int) []float64 {
	d := make([]float64, o.NumNodes())
	for i := range d {
		d[i] = math.Inf(1)
	}
	if src >= len(d) {
		return d
	}
	d[src] = 0
	q := []graph.NodeID{graph.NodeID(src)}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, nb := range o.Out(u) {
			if math.IsInf(d[nb.ID], 1) {
				d[nb.ID] = d[u] + 1
				q = append(q, nb.ID)
			}
		}
	}
	return d
}

// TestProcessMixedIncPageRank checks the one INC engine that supports
// deletions: PR must track the FS fixpoint after removals.
func TestProcessMixedIncPageRank(t *testing.T) {
	mk := func(model compute.Model) *core.Pipeline {
		p, err := core.NewPipeline(core.PipelineConfig{
			DataStructure: "adjshared",
			Algorithm:     "pr",
			Model:         model,
			Directed:      true,
			Threads:       2,
			Compute:       compute.Options{PRTolerance: 1e-12, PRMaxIters: 300, Epsilon: 1e-12},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	inc, fs := mk(compute.INC), mk(compute.FS)
	rng := rand.New(rand.NewSource(5))
	oracle := graph.NewOracle(true)
	var live graph.Batch
	for round := 0; round < 4; round++ {
		mb := core.MixedBatch{}
		for i := 0; i < 300; i++ {
			mb.Adds = append(mb.Adds, graph.Edge{
				Src: graph.NodeID(rng.Intn(60)), Dst: graph.NodeID(rng.Intn(60)), Weight: 1,
			})
		}
		for i := 0; i < 80 && len(live) > 0; i++ {
			mb.Dels = append(mb.Dels, live[rng.Intn(len(live))])
		}
		live = append(live, mb.Adds...)
		if _, err := inc.ProcessMixed(mb); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.ProcessMixed(mb); err != nil {
			t.Fatal(err)
		}
		oracle.Update(mb.Adds)
		oracle.Delete(mb.Dels)
		iv, fv := inc.Values(), fs.Values()
		for v := range iv {
			// Fully isolated vertices keep Algorithm 1's 1/|V| fresh
			// value under INC (they are never affected), while FS's
			// fixpoint gives them 0.15/|V| — the paper's processing
			// amortization semantics, not a divergence. Compare only
			// vertices the stream ever connected.
			id := graph.NodeID(v)
			if oracle.InDegree(id) == 0 && oracle.OutDegree(id) == 0 {
				continue
			}
			if math.Abs(iv[v]-fv[v]) > 1e-6 {
				t.Fatalf("round %d vertex %d: inc %v vs fs %v", round, v, iv[v], fv[v])
			}
		}
	}
}

// TestTrimmedIncMatchesFSUnderDeletions is the KickStarter-trimming
// correctness suite: every monotone algorithm, run incrementally over a
// random mixed stream (inserts + deletions), must match the from-scratch
// model exactly after every batch.
func TestTrimmedIncMatchesFSUnderDeletions(t *testing.T) {
	for _, alg := range []string{"bfs", "cc", "mc", "sssp", "sswp"} {
		for _, dsName := range []string{"adjshared", "dah"} {
			mk := func(model compute.Model) *core.Pipeline {
				p, err := core.NewPipeline(core.PipelineConfig{
					DataStructure: dsName,
					Algorithm:     alg,
					Model:         model,
					Directed:      true,
					Threads:       2,
				})
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			inc, fs := mk(compute.INC), mk(compute.FS)
			rng := rand.New(rand.NewSource(21))
			var live graph.Batch
			for round := 0; round < 6; round++ {
				mb := core.MixedBatch{}
				for i := 0; i < 350; i++ {
					src := graph.NodeID(rng.Intn(70))
					dst := graph.NodeID(rng.Intn(70))
					w := graph.Weight((uint32(src)*5+uint32(dst)*11)%20 + 1)
					mb.Adds = append(mb.Adds, graph.Edge{Src: src, Dst: dst, Weight: w})
				}
				for i := 0; i < 120 && len(live) > 0; i++ {
					mb.Dels = append(mb.Dels, live[rng.Intn(len(live))])
				}
				live = append(live, mb.Adds...)
				if _, err := inc.ProcessMixed(mb); err != nil {
					t.Fatalf("%s/%s inc: %v", alg, dsName, err)
				}
				if _, err := fs.ProcessMixed(mb); err != nil {
					t.Fatalf("%s/%s fs: %v", alg, dsName, err)
				}
				iv, fv := inc.Values(), fs.Values()
				for v := range iv {
					gi, wi := math.IsInf(iv[v], 1), math.IsInf(fv[v], 1)
					if gi != wi || (!gi && iv[v] != fv[v]) {
						t.Fatalf("%s/%s round %d vertex %d: inc %v fs %v",
							alg, dsName, round, v, iv[v], fv[v])
					}
				}
			}
		}
	}
}

// TestTrimmingCone pins the mechanism on a hand-built graph: deleting the
// only path into a chain must reset exactly the downstream cone.
func TestTrimmingCone(t *testing.T) {
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     "bfs",
		Model:         compute.INC,
		Directed:      true,
		Threads:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 1 -> 2 -> 3, plus an independent 0 -> 4.
	p.Process(graph.Batch{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
		{Src: 0, Dst: 4, Weight: 1},
	})
	// Cut 0->1: vertices 1..3 become unreachable, 4 must be untouched.
	if _, err := p.ProcessMixed(core.MixedBatch{
		Dels: graph.Batch{{Src: 0, Dst: 1, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	vals := p.Values()
	for _, v := range []int{1, 2, 3} {
		if !math.IsInf(vals[v], 1) {
			t.Fatalf("vertex %d still reachable: %v", v, vals[v])
		}
	}
	if vals[0] != 0 || vals[4] != 1 {
		t.Fatalf("untouched vertices changed: %v", vals)
	}
	// Reconnect deeper: 4 -> 2 restores 2,3 through the other branch.
	if _, err := p.ProcessMixed(core.MixedBatch{
		Adds: graph.Batch{{Src: 4, Dst: 2, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	vals = p.Values()
	if vals[2] != 2 || vals[3] != 3 {
		t.Fatalf("reconnection depths wrong: %v", vals)
	}
}
