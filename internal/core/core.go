// Package core is the SAGA-Bench platform: it wires a dynamic graph data
// structure and a compute engine into the streaming execution flow of the
// paper (Fig 1/Fig 2b) — for each incoming edge batch, run the update
// phase (ingest the batch) then the compute phase (run the algorithm on
// the freshly updated structure) — and measures the two latencies whose
// sum is the batch processing latency, the paper's performance metric
// (Equation 1).
//
// The package exposes two levels:
//
//   - Pipeline: the programmatic API a downstream application uses to
//     stream its own edges (see examples/).
//   - Runner: the measurement harness the characterization experiments
//     use — it generates a dataset, feeds all batches (optionally
//     repeated), and aggregates per-batch latencies into the paper's P1 /
//     P2 / P3 stages with 95% confidence intervals.
//
// saga:paniccapture — goroutines must capture panics so the poison-batch
// quarantine sees worker failures (enforced by sagavet; see
// internal/analysis).
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	"sagabench/internal/durable"
	"sagabench/internal/epoch"
	"sagabench/internal/fault"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
	"sagabench/internal/stats"
	"sagabench/internal/telemetry"
	"sagabench/internal/trace"
)

// Pipeline couples one data structure with one compute engine.
type Pipeline struct {
	g      ds.Graph
	engine compute.Engine
	rec    *telemetry.Recorder

	// view is the incrementally maintained flat CSR mirror the compute
	// phase traverses when PipelineConfig.ComputeView is on (nil
	// otherwise, or when the structure exposes no Flattener). lastView is
	// the refresh cost of the most recent batch, surfaced in telemetry.
	view     *ds.ComputeView
	lastView ds.RefreshStats

	// pcfg is retained so the durability layer can rebuild fresh
	// components during crash recovery and state rebuilds.
	pcfg PipelineConfig

	// dur is the durability state (nil when durability is disabled — the
	// hot path then never touches it).
	dur      *durState
	poisoned []string

	// health is the degradation state machine (nil only when no degrade
	// policy and no explicit Health were configured; every accessor is
	// nil-receiver safe, so the hot path never branches on it). fenced is
	// flipped by the supervisor when this instance is superseded by a
	// rebuild: a fenced pipeline refuses every durable file operation, so
	// a worker abandoned mid-stall cannot scribble WAL files the
	// replacement now owns.
	health *Health
	fenced atomic.Bool

	// tr is the batch tracer (nil = tracing off, zero cost); bt is the
	// in-flight batch's span tree. Whoever starts bt finishes it: apply
	// owns it on the direct path, processDurable on the durable path (so
	// WAL and checkpoint spans land inside the batch trace).
	tr *trace.Tracer
	bt *trace.Batch

	// em is the epoch-publication manager (nil when ServeQueries is off —
	// the batch loop then never touches it). epochBatch counts published
	// batches independently of the telemetry-gated batchIdx; lastEpoch
	// remembers the manager counters so record emits deltas.
	em         *epoch.Manager
	epochBatch int
	lastEpoch  epoch.Stats

	affected     []graph.NodeID
	affectedMark []uint8
	mixedScratch graph.Batch

	// Telemetry bookkeeping, touched only when rec != nil.
	batchIdx  int
	repeatTag int
	lastProf  ds.UpdateProfile
}

// PipelineConfig selects the pipeline's components.
type PipelineConfig struct {
	// DataStructure is a ds registry name (ds.Names() lists them): the
	// paper's "adjshared", "adjchunked", "stinger", "dah", or the
	// extensions "graphone" (log-structured) and "hybrid"
	// (degree-adaptive three-tier).
	DataStructure string
	// Algorithm is a compute algorithm name: "bfs", "cc", "mc", "pr",
	// "sssp", or "sswp".
	Algorithm string
	// Model is compute.FS or compute.INC.
	Model compute.Model
	// Directed declares the input stream's directedness.
	Directed bool
	// Threads is the worker count for both phases (0 = 1).
	Threads int
	// MaxNodesHint pre-sizes vertex-indexed state.
	MaxNodesHint int
	// Compute carries algorithm tuning (source vertex, tolerances).
	// Its Threads field is overridden by Threads above.
	Compute compute.Options
	// DS carries data-structure tuning (block size, chunk count, flush
	// threshold). Directed/Threads/MaxNodesHint above take precedence.
	DS ds.Config
	// ComputeView, when true, maintains a flat CSR mirror of the data
	// structure (rebuilt incrementally after every update phase: only
	// vertices the batch touched are re-flattened) and hands it to the
	// compute engine, whose kernels then iterate contiguous arrays
	// instead of calling OutNeigh/InNeigh per vertex — the GraphTango
	// split: a dynamic structure for ingest, a flat one for analytics.
	// The refresh cost is charged to the update phase (Equation 1 keeps
	// both sides honest). Structures without a Flattener fall back to the
	// interface path silently.
	ComputeView bool
	// ServeQueries enables non-blocking queries: after every batch the
	// pipeline publishes an immutable snapshot of the graph (the refreshed
	// compute-view CSR when ComputeView is on, else a freshly built CSR)
	// plus the algorithm's property vector, behind an epoch counter with
	// reader refcounts. Concurrent readers then pin epochs through
	// AcquireQuery and read without ever blocking the update phase; the
	// writer never frees or reuses a pinned snapshot's memory (see
	// internal/epoch). With ComputeView the marginal publication cost is
	// one property-vector copy per batch — the CSR is the mirror the
	// refresh built anyway; without it every batch pays a full CSR export.
	ServeQueries bool
	// Telemetry, when non-nil, receives one event per processed batch
	// (latencies, affected-set size, compute stats, ds profile deltas).
	// Nil disables instrumentation at near-zero cost.
	Telemetry *telemetry.Recorder
	// Tracer, when non-nil, records a span tree per batch — update,
	// view refresh, compute (with per-worker range spans), WAL append,
	// checkpoint — into a flight-recorder ring that is dumped next to the
	// poison file when a batch is quarantined and served by the telemetry
	// server's /trace endpoint. Nil disables tracing: the hot path then
	// performs no clock reads and no allocations on the tracer's behalf.
	Tracer *trace.Tracer
	// Durable, when non-nil, enables the crash-safety layer: every batch
	// is write-ahead logged before it is applied, checkpoints are written
	// periodically, and construction recovers whatever state the
	// directory already holds (see internal/durable and durable.go).
	// Nil disables durability at zero per-batch cost.
	Durable *durable.Config
	// Faults, when non-nil, is consulted at the start of the update,
	// compute, and publish phases (ops "update"/"compute"/"publish").
	// An injected stall sleeps in-phase — exactly where a watchdog must
	// catch it — and an injected error panics, which the durable path's
	// panic capture converts into the poison-batch protocol. Durability
	// I/O faults are injected separately through Durable.IO.
	Faults fault.Injector
	// DegradePolicy selects what a permanent (or retry-exhausted)
	// durability fault does: "degrade" keeps applying batches in memory
	// without logging, "read-only" refuses ingest but keeps serving
	// epoch-snapshot queries, "fail" (and "", the zero value) surfaces
	// the error — the pre-supervision behavior.
	DegradePolicy DegradePolicy
	// Health, when non-nil, is the shared health machine the pipeline
	// reports transitions to. The supervisor passes one Health through
	// every rebuild so degradations outlive pipeline instances; when nil
	// and DegradePolicy absorbs faults, the pipeline creates its own.
	Health *Health

	// phaseHook, when set (by the supervisor), observes phase boundaries:
	// phaseHook(name, false) at entry, phaseHook(name, true) at exit. The
	// watchdog derives per-phase deadlines from these signals.
	phaseHook func(name string, done bool)
}

// buildComponents constructs the data structure and engine for cfg; the
// durability layer rebuilds through the same path during recovery.
func buildComponents(cfg PipelineConfig) (ds.Graph, compute.Engine, error) {
	dcfg := cfg.DS
	dcfg.Directed = cfg.Directed
	dcfg.Threads = cfg.Threads
	dcfg.MaxNodesHint = cfg.MaxNodesHint
	g, err := ds.New(cfg.DataStructure, dcfg)
	if err != nil {
		return nil, nil, err
	}
	copts := cfg.Compute
	copts.Threads = cfg.Threads
	// Per-worker busy clocks cost two monotonic clock reads per worker
	// range per round, so only pay for them when an observer is attached
	// (per-batch events, straggler gauges, or batch traces consume them).
	if cfg.Telemetry != nil || cfg.Tracer.Enabled() {
		copts.WorkerTiming = true
	}
	engine, err := compute.NewEngine(cfg.Algorithm, cfg.Model, copts)
	if err != nil {
		return nil, nil, err
	}
	return g, engine, nil
}

// NewPipeline validates the config and builds the pipeline. With a
// durable config, construction opens the durability directory and
// recovers: latest valid checkpoint, then WAL tail replay — an empty
// directory recovers to an empty pipeline, so the first run and every
// restart share one code path.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if err := cfg.DegradePolicy.validate(); err != nil {
		return nil, err
	}
	if cfg.Health == nil && cfg.DegradePolicy != "" {
		// An explicit policy needs somewhere to record what it decided —
		// absorbed faults for degrade/read-only, the Failed transition
		// for fail. Only the zero policy (pure pre-supervision behavior)
		// runs without a machine.
		cfg.Health = NewHealth(cfg.Telemetry)
	}
	g, engine, err := buildComponents(cfg)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{g: g, engine: engine, rec: cfg.Telemetry, tr: cfg.Tracer, pcfg: cfg, health: cfg.Health}
	p.initView()
	if cfg.ServeQueries {
		// Buffer reuse is negotiated with the compute-view double buffer;
		// the export fallback publishes fresh arrays every batch.
		p.em = epoch.NewManager(cfg.ComputeView)
	}
	if cfg.Durable != nil {
		if err := p.initDurable(*cfg.Durable); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// initView attaches (or detaches) the flat mirror according to the config.
// Called at construction and again by the durability layer after it swaps
// in fresh components: a nil-or-fresh view is unbuilt, so the next Refresh
// full-builds from whatever topology the structure then holds.
func (p *Pipeline) initView() {
	p.view = nil
	p.lastView = ds.RefreshStats{}
	if !p.pcfg.ComputeView {
		return
	}
	threads := p.pcfg.Threads
	if threads <= 0 {
		threads = 1
	}
	if v, ok := ds.NewComputeView(p.g, threads); ok {
		if !compute.NeedsInAdjacency(p.pcfg.Algorithm, p.pcfg.Model) && !p.pcfg.ServeQueries {
			// The registered kernel never pulls from in-neighbors, so
			// don't pay to mirror that direction on every batch. Served
			// queries forbid the shortcut: a pinned epoch must answer
			// in-neighborhood reads regardless of the algorithm.
			v.MirrorOutOnly()
		}
		p.view = v
	}
}

// ComputeGraph is the graph the compute phase traverses: the flat mirror
// when the compute view is active, else the data structure itself.
func (p *Pipeline) ComputeGraph() ds.Graph {
	if p.view != nil {
		return p.view
	}
	return p.g
}

// LastViewRefresh reports the mirror refresh cost of the most recent batch
// (zero when the view is off).
func (p *Pipeline) LastViewRefresh() ds.RefreshStats { return p.lastView }

// SetTelemetry installs (or removes, with nil) the batch recorder on a
// built pipeline.
func (p *Pipeline) SetTelemetry(rec *telemetry.Recorder) { p.rec = rec }

// SetTracer installs (or removes, with nil) the batch tracer on a built
// pipeline. Must not be called while a batch is in flight.
func (p *Pipeline) SetTracer(tr *trace.Tracer) { p.tr = tr }

// Tracer exposes the pipeline's tracer (nil when tracing is off).
func (p *Pipeline) Tracer() *trace.Tracer { return p.tr }

// Graph exposes the topology (read-only between updates).
func (p *Pipeline) Graph() ds.Graph { return p.g }

// Engine exposes the compute engine.
func (p *Pipeline) Engine() compute.Engine { return p.engine }

// Values exposes the vertex property array after the latest batch.
func (p *Pipeline) Values() []float64 { return p.engine.Values() }

// BatchLatency is the timing of one processed batch.
type BatchLatency struct {
	Update  time.Duration
	Compute time.Duration
}

// Total is the batch processing latency (Equation 1).
func (l BatchLatency) Total() time.Duration { return l.Update + l.Compute }

// Process ingests one batch (update phase) and runs the algorithm on the
// result (compute phase), returning both latencies.
//
// Insert-only streams still carry deletion-like events for the monotone
// weighted incremental algorithms: a duplicate insert overwrites the stored
// weight, and a value derived through the old weight may become stale in a
// way selective triggering cannot repair (see compute.WeightChangeAware).
// The overwrite scan runs outside the timed update phase — the paper's
// update phase likewise knows which edges it rewrote.
func (p *Pipeline) Process(batch graph.Batch) BatchLatency {
	if err := p.refuseUnhealthy(); err != nil {
		panic(err)
	}
	mb := MixedBatch{Adds: batch}
	if p.dur != nil {
		lat, err := p.processDurable(mb)
		if err != nil {
			// Only fatal durability I/O reaches here (poison batches are
			// quarantined, not returned); callers that need the error
			// should use ProcessMixed.
			panic(err)
		}
		return lat
	}
	lat, err := p.apply(mb)
	if err != nil {
		// apply fails only while deleting, and an insert-only batch has
		// no deletions.
		panic(err)
	}
	return lat
}

// record assembles and emits one telemetry event. Callers must guard with
// p.rec != nil so the disabled path allocates nothing.
func (p *Pipeline) record(edges, deletes, affected int, lat BatchLatency) {
	es := p.engine.Stats()
	ev := telemetry.BatchEvent{
		Repeat:         p.repeatTag,
		Batch:          p.batchIdx,
		Edges:          edges,
		Deletes:        deletes,
		Nodes:          p.g.NumNodes(),
		UpdateNS:       lat.Update.Nanoseconds(),
		ComputeNS:      lat.Compute.Nanoseconds(),
		Affected:       affected,
		Iterations:     es.Iterations,
		Processed:      es.Processed,
		EdgesTraversed: es.EdgesTraversed,
		Triggered:      es.Triggered,
		Skipped:        es.Skipped,
		TriggerFrac:    es.TriggerFraction(),
	}
	if used := es.WorkersUsed(); used > 0 {
		// Stats.WorkerBusyNS aliases engine scratch; the event outlives
		// the batch, so it gets a copy.
		ev.WorkerBusyNS = append([]int64(nil), es.WorkerBusyNS...)
		ev.WorkersUsed = used
		ev.Straggler = es.StragglerRatio()
	}
	if p.view != nil {
		ev.ViewNS = p.lastView.Duration.Nanoseconds()
		ev.ViewDirtyFrac = p.lastView.DirtyFraction()
		ev.ViewFull = p.lastView.Full
	}
	if p.em != nil {
		// publishEpoch ran just before record, so the latest epoch is this
		// batch's publication.
		ev.Epoch = p.em.LatestEpoch()
	}
	p.batchIdx++
	if prof, ok := ds.ProfileOf(p.g); ok {
		d := prof.Delta(&p.lastProf)
		p.lastProf = prof
		ev.DSEdgesIngested = d.EdgesIngested
		ev.DSInserted = d.Inserted
		ev.DSScanSteps = d.ScanSteps
		ev.DSLockConflicts = d.LockConflicts
		ev.DSMetaOps = d.MetaOps
		ev.DSImbalance = d.Imbalance()
		ev.DSTierPromotions = d.TierPromotions
		ev.DSTierDemotions = d.TierDemotions
	}
	p.rec.RecordBatch(&ev)
}

// overwrittenFor runs the pre-update weight-overwrite scan when (and only
// when) the engine asks for overwrite notifications.
func (p *Pipeline) overwrittenFor(batch graph.Batch) graph.Batch {
	if wca, ok := p.engine.(compute.WeightChangeAware); ok && wca.WantsWeightChanges() {
		return ds.Overwritten(p.g, batch)
	}
	return nil
}

// affectedOf deduplicates the batch's endpoint vertices — the affected
// array of Algorithm 1. (Marking is outside the timed compute phase; the
// paper's update phase likewise knows which vertices it touched.)
// Endpoints at or above NumNodes are skipped: a deletion naming a vertex
// the graph has never seen is a legal no-op, not an affected vertex.
func (p *Pipeline) affectedOf(batch graph.Batch) []graph.NodeID {
	n := p.g.NumNodes()
	for len(p.affectedMark) < n {
		p.affectedMark = append(p.affectedMark, 0)
	}
	p.affected = p.affected[:0]
	for _, e := range batch {
		if int(e.Src) < n && p.affectedMark[e.Src] == 0 {
			p.affectedMark[e.Src] = 1
			p.affected = append(p.affected, e.Src)
		}
		if int(e.Dst) < n && p.affectedMark[e.Dst] == 0 {
			p.affectedMark[e.Dst] = 1
			p.affected = append(p.affected, e.Dst)
		}
	}
	for _, v := range p.affected {
		p.affectedMark[v] = 0
	}
	return p.affected
}

// Metric selects which latency series to aggregate.
type Metric string

// Aggregatable latency series.
const (
	MetricUpdate  Metric = "update"
	MetricCompute Metric = "compute"
	MetricTotal   Metric = "total"
)

// RunConfig describes one measured experiment.
type RunConfig struct {
	PipelineConfig
	// Dataset generates the input stream.
	Dataset gen.Spec
	// Seed drives generation; repeat r uses Seed+r so repeats see the
	// same stream ordering per repeat index across configurations.
	Seed int64
	// Repeats re-runs the full stream on fresh state (default 1; the
	// paper uses 3).
	Repeats int
	// OnBatch, if set, observes each processed batch (used by the
	// architecture profiler to replay traces).
	OnBatch func(batch int, edges graph.Batch, p *Pipeline, lat BatchLatency)
	// OnPipeline, if set, observes each repeat's freshly built pipeline
	// before its first batch; the returned stop function (may be nil) is
	// called after the repeat's last batch, before the pipeline is closed.
	// The query-load generator attaches here so readers run concurrently
	// with the measured stream.
	OnPipeline func(p *Pipeline) (stop func())
}

// RunResult holds the per-batch latency series of all repeats.
type RunResult struct {
	BatchCount int
	// Update[r][b] / Compute[r][b] are seconds for repeat r, batch b.
	Update  [][]float64
	Compute [][]float64
}

// Run executes the experiment.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.PipelineConfig.Durable != nil {
		return nil, fmt.Errorf("core: Run measures repeats on fresh state and cannot use a durable pipeline (each repeat would recover the previous one); drive a durable Pipeline directly")
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	cfg.PipelineConfig.Directed = cfg.Dataset.Directed
	if cfg.PipelineConfig.MaxNodesHint == 0 {
		cfg.PipelineConfig.MaxNodesHint = cfg.Dataset.NumNodes
	}
	res := &RunResult{}
	for r := 0; r < repeats; r++ {
		edges := cfg.Dataset.Generate(cfg.Seed + int64(r))
		if err := res.measureOnce(cfg.PipelineConfig, edges, cfg.Dataset.BatchSize, cfg.OnBatch, cfg.OnPipeline, r); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// StreamConfig measures a caller-provided edge stream (e.g. a SNAP edge
// list loaded with elio) instead of a generated dataset. Repeats re-run
// the identical stream on fresh state.
type StreamConfig struct {
	PipelineConfig
	Edges     []graph.Edge
	BatchSize int
	Repeats   int
	OnBatch   func(batch int, edges graph.Batch, p *Pipeline, lat BatchLatency)
	// OnPipeline mirrors RunConfig.OnPipeline.
	OnPipeline func(p *Pipeline) (stop func())
}

// RunStream executes the stream experiment.
func RunStream(cfg StreamConfig) (*RunResult, error) {
	if cfg.PipelineConfig.Durable != nil {
		return nil, fmt.Errorf("core: RunStream measures repeats on fresh state and cannot use a durable pipeline (each repeat would recover the previous one); drive a durable Pipeline directly")
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("core: batch size must be positive")
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	res := &RunResult{}
	for r := 0; r < repeats; r++ {
		if err := res.measureOnce(cfg.PipelineConfig, cfg.Edges, cfg.BatchSize, cfg.OnBatch, cfg.OnPipeline, r); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// measureOnce streams one repeat on a fresh pipeline, appending its latency
// series.
func (res *RunResult) measureOnce(pc PipelineConfig, edges []graph.Edge, batchSize int, onBatch func(int, graph.Batch, *Pipeline, BatchLatency), onPipeline func(*Pipeline) func(), repeat int) error {
	p, err := NewPipeline(pc)
	if err != nil {
		return err
	}
	p.repeatTag = repeat
	var stop func()
	if onPipeline != nil {
		stop = onPipeline(p)
	}
	batches := graph.Batches(edges, batchSize)
	if res.BatchCount == 0 {
		res.BatchCount = len(batches)
	} else if res.BatchCount != len(batches) {
		return fmt.Errorf("core: repeat %d produced %d batches, want %d", repeat, len(batches), res.BatchCount)
	}
	upd := make([]float64, 0, len(batches))
	cmp := make([]float64, 0, len(batches))
	for bi, b := range batches {
		lat := p.Process(b)
		upd = append(upd, lat.Update.Seconds())
		cmp = append(cmp, lat.Compute.Seconds())
		if onBatch != nil {
			onBatch(bi, b, p, lat)
		}
	}
	if stop != nil {
		stop()
	}
	if err := p.Close(); err != nil {
		return err
	}
	res.Update = append(res.Update, upd)
	res.Compute = append(res.Compute, cmp)
	return nil
}

// Series returns the per-batch series of one repeat for the metric, or an
// error for a metric outside the three aggregatable series.
func (r *RunResult) Series(metric Metric, repeat int) ([]float64, error) {
	u, c := r.Update[repeat], r.Compute[repeat]
	switch metric {
	case MetricUpdate:
		return u, nil
	case MetricCompute:
		return c, nil
	case MetricTotal:
		t := make([]float64, len(u))
		for i := range t {
			t[i] = u[i] + c[i]
		}
		return t, nil
	}
	return nil, fmt.Errorf("core: unknown metric %q (have %q, %q, %q)",
		metric, MetricUpdate, MetricCompute, MetricTotal)
}

// StageSummaries aggregates the metric into the paper's P1/P2/P3 stages:
// each stage pools the corresponding third of every repeat's batch series
// (Section IV-B's averaging methodology).
func (r *RunResult) StageSummaries(metric Metric) ([3]stats.Summary, error) {
	var out [3]stats.Summary
	var pooled [3][]float64
	for rep := range r.Update {
		series, err := r.Series(metric, rep)
		if err != nil {
			return out, err
		}
		for si, rg := range stats.Stages(len(series)) {
			pooled[si] = append(pooled[si], series[rg[0]:rg[1]]...)
		}
	}
	for i := range out {
		out[i] = stats.Summarize(pooled[i])
	}
	return out, nil
}

// UpdateShare reports, per stage, the fraction of batch processing latency
// spent in the update phase (Fig 8).
func (r *RunResult) UpdateShare() ([3]float64, error) {
	var out [3]float64
	upd, err := r.StageSummaries(MetricUpdate)
	if err != nil {
		return out, err
	}
	tot, err := r.StageSummaries(MetricTotal)
	if err != nil {
		return out, err
	}
	for i := range out {
		out[i] = stats.Ratio(upd[i].Mean, tot[i].Mean)
	}
	return out, nil
}

// MixedBatch couples the insertions and deletions that arrived in one
// stream window. The paper's framework handles insert-only streams; mixed
// streams are the natural extension (STINGER-style) and are supported by
// every bundled data structure.
type MixedBatch struct {
	Adds graph.Batch
	Dels graph.Batch
}

// ProcessMixed ingests the additions, applies the deletions, and runs the
// compute phase. It fails up front if the data structure cannot delete or
// if the engine's results would be invalidated by deletions (monotone
// incremental algorithms; see compute.Engine.HandlesDeletions).
//
// On a durable pipeline the batch is validated, write-ahead logged, and
// applied under panic-recovery with retries; a batch that persistently
// fails is quarantined and the returned error is nil — the stream keeps
// moving (see PoisonFiles). A non-nil error then means unrecoverable
// durability I/O, not a bad batch.
func (p *Pipeline) ProcessMixed(mb MixedBatch) (BatchLatency, error) {
	if err := p.refuseUnhealthy(); err != nil {
		return BatchLatency{}, err
	}
	if err := p.checkMixedSupport(mb); err != nil {
		return BatchLatency{}, err
	}
	if p.dur != nil {
		return p.processDurable(mb)
	}
	return p.apply(mb)
}

// refuseUnhealthy gates ingest on the health machine: a read-only
// pipeline refuses the batch but keeps serving queries; a failed one
// refuses everything. Healthy and degraded-durability pipelines ingest
// normally.
func (p *Pipeline) refuseUnhealthy() error {
	switch st := p.health.State(); {
	case st >= Failed:
		p.health.NoteRefused()
		return ErrFailed
	case st >= ReadOnly:
		p.health.NoteRefused()
		return ErrReadOnly
	}
	return nil
}

// Health exposes the pipeline's health machine (nil when neither a
// degrade policy nor an explicit Health was configured; HealthState
// reads through a nil Health as healthy).
func (p *Pipeline) Health() *Health { return p.health }

// Fence marks this instance superseded: every subsequent durable file
// operation is refused. The supervisor fences a pipeline it is about to
// replace so a worker abandoned mid-stall cannot write WAL or
// checkpoint files the rebuilt instance now owns.
func (p *Pipeline) Fence() { p.fenced.Store(true) }

// HealthReport assembles the structured exit report: final health
// state, transition history, and the counters that describe what the
// run survived (retries, restarts, sheds) and what it lost
// (quarantined batches).
func (p *Pipeline) HealthReport() HealthReport {
	r := p.health.report()
	if p.dur != nil {
		r.DurableRetry = p.dur.man.Retries()
	}
	r.Quarantined = append([]string(nil), p.poisoned...)
	if s, ok := p.pcfg.Faults.(*fault.Schedule); ok && s != nil {
		r.Injections = s.Summary()
	}
	if r.Injections == nil && p.pcfg.Durable != nil {
		if s, ok := p.pcfg.Durable.IO.(*fault.Schedule); ok && s != nil {
			r.Injections = s.Summary()
		}
	}
	return r
}

// enterPhase fires the supervisor's watchdog hook and the phase fault
// injector, in that order — an injected stall must sleep while the
// watchdog already sees the phase in flight. An injected error panics;
// the durable path's panic capture turns it into the poison-batch
// protocol, and the supervisor's worker capture turns it into a
// restart on the direct path.
func (p *Pipeline) enterPhase(name string, op fault.Op) {
	if hook := p.pcfg.phaseHook; hook != nil {
		hook(name, false)
	}
	if err := fault.Inject(p.pcfg.Faults, op); err != nil {
		panic(err)
	}
}

func (p *Pipeline) exitPhase(name string) {
	if hook := p.pcfg.phaseHook; hook != nil {
		hook(name, true)
	}
}

// checkMixedSupport rejects deletion batches the components cannot
// process — a configuration error, checked before anything is logged so
// it is never mistaken for a poison batch.
func (p *Pipeline) checkMixedSupport(mb MixedBatch) error {
	if len(mb.Dels) == 0 {
		return nil
	}
	if !ds.SupportsDelete(p.g) {
		return fmt.Errorf("core: data structure %T does not support deletions", p.g)
	}
	if !p.engine.HandlesDeletions() {
		return fmt.Errorf("core: %s/%s cannot incrementally process deletions (use the fs model)",
			p.engine.Name(), p.engine.Model())
	}
	return nil
}

// apply runs the two phases of one mixed batch against the in-memory
// components: the undecorated execution path shared by direct processing,
// durable processing, and WAL replay.
//
// Trace ownership: when no batch trace is in flight (direct processing,
// WAL replay) apply starts and finishes one; on the durable path
// processDurable already opened it (so the WAL append span precedes the
// phases) and apply only contributes phase spans and batch attributes.
func (p *Pipeline) apply(mb MixedBatch) (BatchLatency, error) {
	var lat BatchLatency
	owned := p.bt == nil && p.tr.Enabled()
	if owned {
		p.bt = p.tr.StartBatch(p.batchIdx)
	}
	olds := p.overwrittenFor(mb.Adds)

	var err error
	if p.tr.PprofLabels() {
		err = p.updateLabeled(mb, &lat)
	} else {
		err = p.updatePhase(mb, &lat)
	}
	if err != nil {
		if owned {
			p.abortTrace(err)
		}
		return lat, err
	}
	cg := p.g
	if p.view != nil {
		cg = p.view
	}

	// Overwritten weights and true deletions invalidate in one call so the
	// cone is grown against a consistent pre-reset value array.
	if invalidating := append(olds, mb.Dels...); len(invalidating) > 0 {
		if da, ok := p.engine.(compute.DeletionAware); ok {
			da.NotifyDeletions(cg, invalidating)
		}
	}
	p.mixedScratch = append(append(p.mixedScratch[:0], mb.Adds...), mb.Dels...)
	aff := p.affectedOf(p.mixedScratch)
	if p.tr.PprofLabels() {
		p.computeLabeled(cg, aff, &lat)
	} else {
		p.computePhase(cg, aff, &lat)
	}
	if p.em != nil {
		p.publishEpoch()
	}
	if p.rec != nil {
		p.record(len(mb.Adds), len(mb.Dels), len(aff), lat)
	}
	if p.bt != nil {
		p.stampTrace(mb, len(aff), lat)
		if owned {
			bt := p.bt
			p.bt = nil
			bt.Finish()
		}
	}
	return lat, nil
}

// updatePhase is the timed update side of one batch: ingest, deletions,
// and the flat-mirror refresh (whose cost belongs to the update phase —
// the mirror is part of ingesting the batch, exactly as GraphTango
// charges its flat-side maintenance).
func (p *Pipeline) updatePhase(mb MixedBatch, lat *BatchLatency) error {
	p.enterPhase("update", fault.OpUpdate)
	defer p.exitPhase("update")
	sp := p.bt.Start("update")
	t0 := time.Now()
	p.g.Update(mb.Adds)
	if len(mb.Dels) > 0 {
		if err := p.g.(ds.Deleter).Delete(mb.Dels); err != nil {
			sp.SetStr("error", err.Error())
			sp.End()
			return err
		}
	}
	lat.Update = time.Since(t0)
	sp.SetInt("edges", int64(len(mb.Adds)))
	if len(mb.Dels) > 0 {
		sp.SetInt("deletes", int64(len(mb.Dels)))
	}
	sp.End()
	if p.view != nil {
		// The refresh is about to scribble the double buffer's spare
		// arrays, which belong to the snapshot superseded two publishes
		// ago. If readers still pin it, abandon the spares to the GC (the
		// rebuild then allocates fresh arrays) instead of tearing the
		// pinned epoch — the writer never frees under a reader.
		if p.em != nil && p.em.ReclaimSpare() {
			p.view.DropSpares()
		}
		vsp := p.bt.Start("view.refresh")
		p.lastView = p.view.Refresh(mb.Adds, mb.Dels)
		lat.Update += p.lastView.Duration
		vsp.SetFloat("dirty_frac", p.lastView.DirtyFraction())
		if p.lastView.Full {
			vsp.SetInt("full", 1)
		}
		vsp.End()
		if p.rec != nil {
			p.rec.RecordViewRefresh(p.lastView.Duration, p.lastView.DirtyFraction(), p.lastView.Full)
		}
	}
	return nil
}

// computePhase is the timed compute side: PerformAlg under a compute span
// whose context the engine threads down to per-worker range spans.
func (p *Pipeline) computePhase(cg ds.Graph, aff []graph.NodeID, lat *BatchLatency) {
	p.enterPhase("compute", fault.OpCompute)
	defer p.exitPhase("compute")
	sp := p.bt.Start("compute")
	// Re-arm every batch: each batch trace is a fresh span tree, and the
	// zero Ctx (tracing off) disables the engine's span recording.
	if te, ok := p.engine.(compute.Traceable); ok {
		te.SetTrace(sp.Ctx())
	}
	t1 := time.Now()
	p.engine.PerformAlg(cg, aff)
	lat.Compute = time.Since(t1)
	es := p.engine.Stats()
	sp.SetInt("affected", int64(len(aff)))
	sp.SetInt("iterations", int64(es.Iterations))
	sp.SetInt("processed", int64(es.Processed))
	if s := es.StragglerRatio(); s > 0 {
		sp.SetFloat("straggler", s)
	}
	sp.End()
}

// updateLabeled / computeLabeled wrap the phases in pprof labels
// (batch/stage/ds/alg/model). They are separate methods so apply itself
// contains no closures: a func literal capturing locals would force those
// locals to the heap on every call, labels on or off.
func (p *Pipeline) updateLabeled(mb MixedBatch, lat *BatchLatency) error {
	var err error
	p.tr.LabelDo(p.traceSeq(), "update", func() { err = p.updatePhase(mb, lat) })
	return err
}

func (p *Pipeline) computeLabeled(cg ds.Graph, aff []graph.NodeID, lat *BatchLatency) {
	p.tr.LabelDo(p.traceSeq(), "compute", func() { p.computePhase(cg, aff, lat) })
}

// traceSeq is the in-flight batch's trace sequence number (0 when no
// trace is open).
func (p *Pipeline) traceSeq() uint64 {
	if p.bt == nil {
		return 0
	}
	return p.bt.Seq
}

// stampTrace attaches the batch-level attributes the flight recorder
// indexes on: sizes, phase latencies, and the compute stats that tell a
// straggler or a triggering storm apart from a big batch.
func (p *Pipeline) stampTrace(mb MixedBatch, affected int, lat BatchLatency) {
	bt := p.bt
	es := p.engine.Stats()
	bt.SetInt("edges", int64(len(mb.Adds)))
	if len(mb.Dels) > 0 {
		bt.SetInt("deletes", int64(len(mb.Dels)))
	}
	bt.SetInt("affected", int64(affected))
	bt.SetInt("iterations", int64(es.Iterations))
	if es.Triggered+es.Skipped > 0 {
		bt.SetInt("triggered", int64(es.Triggered))
		bt.SetInt("skipped", int64(es.Skipped))
	}
	if s := es.StragglerRatio(); s > 0 {
		bt.SetFloat("straggler", s)
	}
	if p.view != nil {
		bt.SetFloat("view_dirty_frac", p.lastView.DirtyFraction())
	}
	bt.SetInt("update_ns", lat.Update.Nanoseconds())
	bt.SetInt("compute_ns", lat.Compute.Nanoseconds())
}

// abortTrace seals the in-flight batch trace with a failure cause (batch
// rejected before the compute phase ran).
func (p *Pipeline) abortTrace(err error) {
	bt := p.bt
	if bt == nil {
		return
	}
	p.bt = nil
	bt.SetStr("error", err.Error())
	bt.Finish()
}
