package core_test

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/durable"
	"sagabench/internal/graph"
	"sagabench/internal/trace"
)

// traceStream builds a few small insert batches touching vertices 0..n.
func traceStream(batches, edgesPer int) []graph.Batch {
	out := make([]graph.Batch, batches)
	id := 0
	for b := range out {
		for e := 0; e < edgesPer; e++ {
			out[b] = append(out[b], graph.Edge{
				Src: graph.NodeID(id % 24), Dst: graph.NodeID((id + 7) % 24), Weight: 1,
			})
			id++
		}
	}
	return out
}

// TestPipelineBatchTraces streams batches through a traced pipeline and
// checks the flight recorder holds complete span trees: update and
// compute phase spans, per-worker range spans parented under compute, and
// the batch-level attributes.
func TestPipelineBatchTraces(t *testing.T) {
	tr := trace.New(trace.Config{DS: "adjshared", Alg: "pr", Model: "inc", Flight: 8})
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     "pr",
		Model:         compute.INC,
		Directed:      true,
		Threads:       2,
		Tracer:        tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range traceStream(5, 60) {
		p.Process(b)
	}
	snap := tr.Flight().Snapshot()
	if len(snap) != 5 {
		t.Fatalf("flight recorder holds %d traces, want 5", len(snap))
	}
	d := snap[len(snap)-1]
	stages := map[string]int{}
	var computeID int32 = -2
	for _, s := range d.Spans {
		stages[s.Stage]++
		if s.Stage == "compute" {
			computeID = s.ID
		}
	}
	if stages["update"] != 1 || stages["compute"] != 1 {
		t.Fatalf("phase spans %v, want one update and one compute", stages)
	}
	if stages["inc.round"] == 0 {
		t.Fatalf("no per-worker round spans recorded: %v", stages)
	}
	for _, s := range d.Spans {
		if s.Stage == "inc.round" && s.Parent != computeID {
			t.Fatalf("worker span parent %d, want compute id %d", s.Parent, computeID)
		}
	}
	attrs := map[string]trace.Attr{}
	for _, a := range d.Attrs {
		attrs[a.Key] = a
	}
	if attrs["edges"].Int != 60 {
		t.Fatalf("edges attr %+v, want 60", attrs["edges"])
	}
	for _, key := range []string{"affected", "iterations", "update_ns", "compute_ns"} {
		if _, ok := attrs[key]; !ok {
			t.Fatalf("batch attr %q missing (have %v)", key, d.Attrs)
		}
	}
}

// TestQuarantineWritesTrace is the forensic contract: a quarantined batch
// must leave a Perfetto-loadable trace dump next to its .poison file, the
// dumped ring must include the dying batch, and that batch's trace must
// carry the failure cause.
func TestQuarantineWritesTrace(t *testing.T) {
	tr := trace.New(trace.Config{DS: "adjshared", Alg: "pr", Model: "inc", Flight: 8})
	probe := func(seq uint64, _, _ graph.Batch) error {
		if seq == 3 {
			return errors.New("injected apply failure")
		}
		return nil
	}
	dcfg := &durable.Config{
		Dir:             t.TempDir(),
		Fsync:           durable.FsyncAlways,
		CheckpointEvery: -1,
		MaxRetries:      1,
		RetryBackoff:    time.Microsecond,
		ApplyProbe:      probe,
	}
	cfg := durableCfg(dcfg.Dir, "pr", dcfg)
	cfg.Tracer = tr
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range traceStream(5, 40) {
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: b}); err != nil {
			t.Fatal(err)
		}
	}
	files := p.PoisonFiles()
	if len(files) != 1 {
		t.Fatalf("poison files %v, want exactly one", files)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	tracePath := strings.TrimSuffix(files[0], ".poison") + ".trace.json"
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("quarantine trace sidecar missing: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("quarantine trace is not valid Chrome JSON: %v", err)
	}
	var quarantined string
	var batchEvents int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "batch ") {
			batchEvents++
			if q, ok := ev.Args["quarantined"].(string); ok {
				quarantined = q
			}
		}
	}
	// The ring holds the batches leading up to the death plus the dying
	// batch itself (sealed by the quarantine path).
	if batchEvents < 3 {
		t.Fatalf("trace dump holds %d batch events, want the poisoned batch plus context", batchEvents)
	}
	if !strings.Contains(quarantined, "injected apply failure") {
		t.Fatalf("no batch event carries the quarantine cause (got %q)", quarantined)
	}
}

// TestValidationRejectWritesTrace covers the other quarantine flavor: a
// batch rejected before consuming a sequence number still dumps the ring
// next to its invalid-*.poison file.
func TestValidationRejectWritesTrace(t *testing.T) {
	tr := trace.New(trace.Config{DS: "adjshared", Alg: "pr", Model: "inc", Flight: 4})
	dcfg := &durable.Config{Dir: t.TempDir(), Fsync: durable.FsyncAlways, CheckpointEvery: -1, MaxNodeID: 100}
	cfg := durableCfg(dcfg.Dir, "pr", dcfg)
	cfg.Tracer = tr
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	bad := graph.Batch{{Src: 5000, Dst: 1, Weight: 1}} // past MaxNodeID
	if _, err := p.ProcessMixed(core.MixedBatch{Adds: bad}); err != nil {
		t.Fatalf("validation reject must not error the stream: %v", err)
	}
	files := p.PoisonFiles()
	if len(files) != 1 {
		t.Fatalf("poison files %v", files)
	}
	tracePath := strings.TrimSuffix(files[0], ".poison") + ".trace.json"
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("validation-reject trace sidecar missing: %v", err)
	}
}

// TestTracedPipelineMatchesUntraced guards against the tracer perturbing
// results: identical streams through traced and untraced pipelines must
// produce identical values.
func TestTracedPipelineMatchesUntraced(t *testing.T) {
	build := func(tr *trace.Tracer) *core.Pipeline {
		p, err := core.NewPipeline(core.PipelineConfig{
			DataStructure: "adjshared",
			Algorithm:     "cc",
			Model:         compute.INC,
			Directed:      true,
			Threads:       2,
			Tracer:        tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	plain := build(nil)
	traced := build(trace.New(trace.Config{Flight: 4}))
	for _, b := range traceStream(4, 50) {
		plain.Process(b)
		traced.Process(b)
	}
	a, bvals := plain.Values(), traced.Values()
	if len(a) != len(bvals) {
		t.Fatalf("value array lengths differ: %d vs %d", len(a), len(bvals))
	}
	for i := range a {
		if a[i] != bvals[i] {
			t.Fatalf("traced pipeline diverged at vertex %d: %v vs %v", i, a[i], bvals[i])
		}
	}
}
