package core

import (
	"errors"
	"fmt"
	"time"

	"sagabench/internal/ds"
	"sagabench/internal/epoch"
	"sagabench/internal/fault"
	"sagabench/internal/graph"
	"sagabench/internal/snapshot"
)

// This file is the pipeline side of non-blocking queries: per-batch
// snapshot publication into the epoch manager, and the QueryHandle
// surface readers use to consume pinned epochs concurrently with the
// update phase. The protocol itself lives in internal/epoch.

// publishEpoch publishes the post-batch state as a new epoch. With the
// compute view attached, the published CSR is the mirror the refresh just
// built — zero extra topology work; the double buffer's reuse of these
// arrays two batches from now is gated by ReclaimSpare in updatePhase.
// Without the view, a full CSR is exported from the structure each batch
// (fresh arrays, nothing to gate). The property vector is copied either
// way: the engine mutates its array in place next batch.
func (p *Pipeline) publishEpoch() {
	p.enterPhase("publish", fault.OpPublish)
	defer p.exitPhase("publish")
	sp := p.bt.Start("epoch.publish")
	var csr graph.CSR
	if p.view != nil {
		csr = *p.view.FlatCSR()
	} else {
		threads := p.pcfg.Threads
		if threads <= 0 {
			threads = 1
		}
		csr = *graph.BuildCSR(p.g.NumNodes(), ds.ExportEdgesParallel(p.g, threads))
	}
	s := &epoch.Snapshot{
		Batch:    p.epochBatch,
		Wall:     time.Now(),
		CSR:      csr,
		Values:   append([]float64(nil), p.engine.Values()...),
		Directed: p.pcfg.Directed,
	}
	ep := p.em.Publish(s)
	if p.view == nil {
		// Export-path arrays are fresh every batch; nothing is ever
		// reclaimed, so don't let the manager track the superseded
		// snapshot as a spare owner.
		p.em.ForgetSpare()
	}
	p.epochBatch++
	sp.SetInt("epoch", int64(ep))
	sp.SetInt("nodes", int64(s.NumNodes()))
	sp.SetInt("edges", int64(s.NumEdges()))
	sp.End()
	if p.rec != nil {
		st := p.em.Stats()
		p.rec.RecordEpochPublish(st.Reclaimed-p.lastEpoch.Reclaimed, st.Dropped-p.lastEpoch.Dropped, st.Pins)
		p.lastEpoch = st
	}
}

// Epochs exposes the epoch manager (nil when ServeQueries is off) for
// callers that need the raw pin protocol or its counters; most readers
// want AcquireQuery.
func (p *Pipeline) Epochs() *epoch.Manager { return p.em }

// ErrNoEpoch is returned by AcquireQuery before the first batch has been
// published and after the pipeline is closed.
var ErrNoEpoch = errors.New("core: no published epoch available (no batch processed yet, or pipeline closed)")

// ErrQueriesOff is returned by AcquireQuery on a pipeline built without
// PipelineConfig.ServeQueries.
var ErrQueriesOff = errors.New("core: queries not enabled (set PipelineConfig.ServeQueries)")

// AcquireQuery pins the latest published epoch and returns a read handle.
// Safe to call from any goroutine, concurrently with the update phase:
// acquiring never blocks the writer, and the snapshot behind the handle
// stays immutable until Release no matter how far the stream advances.
// The caller must Release the handle; holding it only delays buffer
// reuse, never publication.
//
// saga:pin
func (p *Pipeline) AcquireQuery() (*QueryHandle, error) {
	if p.em == nil {
		return nil, ErrQueriesOff
	}
	s := p.em.Pin()
	if s == nil {
		p.rec.RecordQueryMiss()
		return nil, ErrNoEpoch
	}
	return &QueryHandle{p: p, s: s}, nil
}

// QueryHandle is a pinned read session against one published epoch: a
// consistent point-in-time view of the topology and the algorithm's
// property vector as of one batch boundary. A handle is cheap (one
// refcount increment) and single-goroutine; concurrent readers each pin
// their own. Adjacency slices returned by Out/In alias the snapshot and
// are valid until Release.
type QueryHandle struct {
	p     *Pipeline
	s     *epoch.Snapshot
	reads uint64
}

// Epoch is the pinned publication number (1-based).
func (h *QueryHandle) Epoch() uint64 { return h.s.Epoch }

// Batch is the 0-based batch index whose application the pinned epoch
// reflects.
func (h *QueryHandle) Batch() int { return h.s.Batch }

// Staleness is the number of batches published since this handle pinned
// its epoch — 0 means the handle still reads the latest state. It grows
// while the handle is held; that is the non-blocking bargain: readers get
// immutability, writers get progress, staleness measures the gap.
func (h *QueryHandle) Staleness() uint64 {
	latest := h.p.em.LatestEpoch()
	if latest <= h.s.Epoch {
		return 0
	}
	return latest - h.s.Epoch
}

// NumNodes reports the pinned vertex count.
func (h *QueryHandle) NumNodes() int { h.reads++; return h.s.NumNodes() }

// NumEdges reports the pinned directed edge count.
func (h *QueryHandle) NumEdges() int { h.reads++; return h.s.NumEdges() }

// OutDegree reports v's out-degree at the pinned epoch.
func (h *QueryHandle) OutDegree(v graph.NodeID) int { h.reads++; return h.s.OutDegree(v) }

// InDegree reports v's in-degree at the pinned epoch.
func (h *QueryHandle) InDegree(v graph.NodeID) int { h.reads++; return h.s.InDegree(v) }

// Out returns v's out-neighborhood at the pinned epoch. The slice aliases
// the snapshot: read-only, valid until Release.
func (h *QueryHandle) Out(v graph.NodeID) []graph.Neighbor { h.reads++; return h.s.Out(v) }

// In returns v's in-neighborhood at the pinned epoch (same aliasing).
func (h *QueryHandle) In(v graph.NodeID) []graph.Neighbor { h.reads++; return h.s.In(v) }

// HasEdge reports whether src→dst existed at the pinned epoch, with its
// stored weight.
func (h *QueryHandle) HasEdge(src, dst graph.NodeID) (graph.Weight, bool) {
	h.reads++
	return h.s.HasEdge(src, dst)
}

// Value returns v's algorithm property value at the pinned epoch (false
// beyond the vertex space).
func (h *QueryHandle) Value(v graph.NodeID) (float64, bool) { h.reads++; return h.s.Value(v) }

// Values exposes the whole pinned property vector (read-only, valid until
// Release).
func (h *QueryHandle) Values() []float64 { h.reads++; return h.s.Values }

// Snapshot exposes the pinned snapshot for structural checks
// (CheckConsistent, Fingerprint) and bulk array access.
func (h *QueryHandle) Snapshot() *epoch.Snapshot { return h.s }

// Frozen adapts the pinned topology to ds.Graph, so any compute engine
// can run a full algorithm on the pinned epoch — temporal analytics on a
// consistent historical view, concurrent with ingest — through the same
// adapter internal/snapshot uses for its checkpointed history.
func (h *QueryHandle) Frozen() ds.Graph { h.reads++; return snapshot.Freeze(&h.s.CSR) }

// Release unpins the epoch and records the session's telemetry (query
// count, final staleness). Must be called exactly once; the handle is
// dead afterwards.
//
// saga:pinrelease
func (h *QueryHandle) Release() {
	if h.s == nil {
		return
	}
	stale := h.Staleness()
	h.p.em.Release(h.s)
	h.s = nil
	h.p.rec.RecordQuerySession(h.reads, stale)
}

// ReleaseChecked verifies the pinned snapshot's structural invariants
// before releasing — the hook the concurrency battery uses to assert no
// torn epoch was ever observable. Plain Release skips the O(V+E) check.
//
// saga:pinrelease
func (h *QueryHandle) ReleaseChecked() error {
	if h.s == nil {
		return fmt.Errorf("core: ReleaseChecked on a released handle")
	}
	err := h.s.CheckConsistent()
	h.Release()
	return err
}
