package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sagabench/internal/telemetry"
)

// The health state machine makes the pipeline's failure handling
// explicit: instead of dying on the first durability fault, the runtime
// moves monotonically through
//
//	healthy → degraded-durability → read-only → failed
//
// and every layer checks the current state before acting. Degraded
// durability means the WAL or checkpoint writer gave up (post-retry) and
// the pipeline now applies batches in memory only; read-only means
// ingest is refused but queries keep serving from the last published
// epoch snapshot; failed means nothing is served. Transitions only move
// forward — a disk does not un-fill itself mid-run, and monotonicity is
// what makes "transitions exactly once" testable and the exit-code
// mapping stable.

// HealthState is one state of the pipeline health machine, ordered by
// severity.
type HealthState int

// The health states, in degradation order.
const (
	// Healthy: full service — durable ingest and queries.
	Healthy HealthState = iota
	// DegradedDurability: the WAL and/or checkpoint writer failed
	// permanently (or exhausted its retry budget); batches keep applying
	// in memory but are no longer durable.
	DegradedDurability
	// ReadOnly: ingest is refused; queries keep serving from the last
	// published epoch snapshot.
	ReadOnly
	// Failed: the pipeline is dead — ingest refused, no guarantees about
	// queries.
	Failed
)

var healthNames = [...]string{"healthy", "degraded-durability", "read-only", "failed"}

func (s HealthState) String() string {
	if s < 0 || int(s) >= len(healthNames) {
		return fmt.Sprintf("health(%d)", int(s))
	}
	return healthNames[s]
}

// MarshalJSON renders the state by name in health reports.
func (s HealthState) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// DegradePolicy selects what a permanent (or retry-exhausted) durability
// fault does to the pipeline.
type DegradePolicy string

// The degrade policies.
const (
	// DegradeContinue moves to degraded-durability: keep applying batches
	// in memory, stop writing the WAL/checkpoints.
	DegradeContinue DegradePolicy = "degrade"
	// DegradeReadOnly moves straight to read-only: refuse ingest, keep
	// serving queries from the last published epoch.
	DegradeReadOnly DegradePolicy = "read-only"
	// DegradeFail preserves the pre-supervision behavior: the durability
	// error surfaces to the caller and the pipeline is failed.
	DegradeFail DegradePolicy = "fail"
)

func (d DegradePolicy) validate() error {
	switch d {
	case "", DegradeContinue, DegradeReadOnly, DegradeFail:
		return nil
	}
	return fmt.Errorf("core: unknown degrade policy %q (have %q, %q, %q)",
		d, DegradeContinue, DegradeReadOnly, DegradeFail)
}

// target is the health state the policy degrades to on a durability
// fault. The zero policy fails — exactly what the pipeline did before
// supervision existed, so nothing changes for configs that never opt in.
func (d DegradePolicy) target() HealthState {
	switch d {
	case DegradeContinue:
		return DegradedDurability
	case DegradeReadOnly:
		return ReadOnly
	}
	return Failed
}

// ErrReadOnly is returned for ingest offered to a read-only pipeline.
// Queries still work; the batch was not applied.
var ErrReadOnly = errors.New("core: pipeline is read-only (degraded); ingest refused, queries still served")

// ErrFailed is returned for ingest offered to a failed pipeline.
var ErrFailed = errors.New("core: pipeline has failed; ingest refused")

// HealthTransition records one state change for the health report.
type HealthTransition struct {
	From  HealthState `json:"from"`
	To    HealthState `json:"to"`
	Cause string      `json:"cause"`
	At    time.Time   `json:"at"`
}

// Health is the shared health state machine. One Health outlives every
// pipeline rebuild the supervisor performs, so degradations survive
// restarts; it is safe for concurrent use (the watchdog, the worker, and
// report readers all touch it).
type Health struct {
	rec *telemetry.Recorder

	state atomic.Int32

	mu          sync.Mutex
	transitions []HealthTransition

	// Counters the health report aggregates (written by the supervisor
	// and the degrade paths).
	watchdogFires atomic.Uint64
	restarts      atomic.Uint64
	shed          atomic.Uint64
	refused       atomic.Uint64
}

// NewHealth builds a healthy machine. rec may be nil.
func NewHealth(rec *telemetry.Recorder) *Health {
	return &Health{rec: rec}
}

// State is the current health state.
func (h *Health) State() HealthState {
	if h == nil {
		return Healthy
	}
	return HealthState(h.state.Load())
}

// To transitions forward to state, recording the cause. Backward and
// same-state calls are no-ops returning false — the machine is monotone,
// so each state is entered at most once and repeated faults in a state
// already reached change nothing.
func (h *Health) To(state HealthState, cause string) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	from := HealthState(h.state.Load())
	if state <= from {
		h.mu.Unlock()
		return false
	}
	h.state.Store(int32(state))
	h.transitions = append(h.transitions, HealthTransition{From: from, To: state, Cause: cause, At: time.Now()})
	h.mu.Unlock()
	h.rec.RecordHealthState(int(state))
	return true
}

// Transitions returns a copy of the recorded transitions in order.
func (h *Health) Transitions() []HealthTransition {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]HealthTransition(nil), h.transitions...)
}

// NoteWatchdogFire counts a phase deadline expiration.
func (h *Health) NoteWatchdogFire() {
	if h == nil {
		return
	}
	h.watchdogFires.Add(1)
	h.rec.RecordWatchdogFire()
}

// NoteRestart counts a supervised pipeline rebuild.
func (h *Health) NoteRestart() {
	if h == nil {
		return
	}
	h.restarts.Add(1)
	h.rec.RecordPhaseRestart()
}

// NoteShed counts a batch dropped by the shed policy.
func (h *Health) NoteShed() {
	if h == nil {
		return
	}
	h.shed.Add(1)
	h.rec.RecordShedBatch()
}

// NoteRefused counts a batch refused in read-only/failed state.
func (h *Health) NoteRefused() {
	if h == nil {
		return
	}
	h.refused.Add(1)
	h.rec.RecordRefusedIngest()
}

// HealthReport is the structured exit report: the final state, what the
// run survived, and what it lost. Drivers serialize it as JSON and exit
// non-zero for any final state other than healthy.
type HealthReport struct {
	State         HealthState        `json:"state"`
	Transitions   []HealthTransition `json:"transitions,omitempty"`
	DurableRetry  uint64             `json:"durable_retries"`
	WatchdogFires uint64             `json:"watchdog_fires"`
	Restarts      uint64             `json:"restarts"`
	ShedBatches   uint64             `json:"shed_batches"`
	Refused       uint64             `json:"refused_batches"`
	Quarantined   []string           `json:"quarantined,omitempty"`
	Injections    []string           `json:"injections,omitempty"`
}

// Healthy reports whether the run ended with nothing degraded and
// nothing lost — the exit-zero condition.
func (r HealthReport) Healthy() bool {
	return r.State == Healthy && len(r.Quarantined) == 0
}

// report assembles the counter half of the report (state, transitions,
// supervisor counters); callers stamp in the per-pipeline fields
// (retries, quarantined, injections).
func (h *Health) report() HealthReport {
	if h == nil {
		return HealthReport{}
	}
	return HealthReport{
		State:         h.State(),
		Transitions:   h.Transitions(),
		WatchdogFires: h.watchdogFires.Load(),
		Restarts:      h.restarts.Load(),
		ShedBatches:   h.shed.Load(),
		Refused:       h.refused.Load(),
	}
}
