package core_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/crosscheck"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
)

// The concurrency battery: reader fleets query published epochs while the
// writer streams mixed insert/overwrite/delete batches through every
// registered structure. Run under -race (the CI concurrency job does, at
// GOMAXPROCS 2 and 8) this is the proof obligation for the non-blocking
// query protocol — readers verify structural invariants and fingerprint
// stability on every session, so a torn epoch, a scribbled pinned buffer,
// or an unsynchronized publication fails the test even when the race
// detector alone stays quiet.

// batteryStream builds the mixed stream for one structure: deletes are
// included only where the structure supports them.
func batteryStream(name string, seed int64, deletes bool) crosscheck.Stream {
	return crosscheck.NewStream(crosscheck.StreamConfig{
		Seed:      seed,
		Batches:   12,
		BatchSize: 300,
		NumNodes:  64,
		Directed:  true,
		Deletes:   deletes,
	})
}

func supportsDeletes(name string) bool {
	g, err := ds.New(name, ds.Config{Directed: true})
	if err != nil {
		return false
	}
	_, ok := g.(ds.Deleter)
	return ok
}

// TestQueryRaceBattery drives every structure, with and without the
// compute view, under continuous mutation with a verifying reader fleet.
func TestQueryRaceBattery(t *testing.T) {
	for _, name := range ds.Names() {
		for _, view := range []bool{true, false} {
			name, view := name, view
			t.Run(fmt.Sprintf("%s/view=%v", name, view), func(t *testing.T) {
				t.Parallel()
				cfg := core.PipelineConfig{
					DataStructure: name,
					Algorithm:     "cc",
					Model:         compute.INC,
					Directed:      true,
					Threads:       2,
					ComputeView:   view,
					ServeQueries:  true,
				}
				p, err := core.NewPipeline(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()

				ql, err := core.StartQueryLoad(p, core.QueryLoadConfig{
					Readers: 4,
					Seed:    int64(len(name)),
					Verify:  true,
					PerPin:  16,
				})
				if err != nil {
					t.Fatal(err)
				}

				dels := supportsDeletes(name)
				var midEpoch *core.QueryHandle
				var midFP uint64
				stream := batteryStream(name, 0xBA77E47, dels)
				for bi, st := range stream {
					mb := core.MixedBatch{Adds: st.Adds}
					if dels {
						mb.Dels = st.Dels
					}
					if _, err := p.ProcessMixed(mb); err != nil {
						ql.Stop()
						t.Fatalf("batch %d: %v", bi, err)
					}
					if bi == len(stream)/2 {
						// Pin one epoch from the main goroutine too and hold it
						// across the rest of the stream: survival of a
						// long-held pin under maximal writer churn.
						h, err := p.AcquireQuery()
						if err != nil {
							ql.Stop()
							t.Fatalf("batch %d: %v", bi, err)
						}
						midEpoch, midFP = h, h.Snapshot().Fingerprint()
					}
				}
				// Hold the pipeline open until the fleet has served at
				// least one query: on a single-core runner the writer can
				// retire the entire stream before a reader is scheduled.
				for deadline := time.Now().Add(10 * time.Second); ql.Served() == 0; {
					if time.Now().After(deadline) {
						break
					}
					runtime.Gosched()
				}
				stats := ql.Stop()
				if stats.Violations != 0 {
					t.Fatalf("%d consistency violations, first: %s", stats.Violations, stats.FirstViolation)
				}
				if stats.Sessions == 0 || stats.Queries == 0 {
					t.Fatalf("reader fleet served nothing: %+v", stats)
				}
				if got := midEpoch.Snapshot().Fingerprint(); got != midFP {
					t.Fatalf("long-held epoch %d scribbled: %#x -> %#x", midEpoch.Epoch(), midFP, got)
				}
				if err := midEpoch.ReleaseChecked(); err != nil {
					t.Fatal(err)
				}
				if pins := p.Epochs().Stats().Pins; pins != 0 {
					t.Fatalf("%d pins outstanding after Stop", pins)
				}
			})
		}
	}
}

// TestQueryRaceAlgorithms repeats the battery core on the remaining
// algorithms over one structure, so property-vector publication is
// exercised for every value shape (depths, labels, scores, distances).
func TestQueryRaceAlgorithms(t *testing.T) {
	for _, alg := range []string{"bfs", "pr", "sssp"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			cfg := core.PipelineConfig{
				DataStructure: "adjshared",
				Algorithm:     alg,
				Model:         compute.INC,
				Directed:      true,
				Threads:       2,
				ComputeView:   true,
				ServeQueries:  true,
			}
			p, err := core.NewPipeline(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			ql, err := core.StartQueryLoad(p, core.QueryLoadConfig{Readers: 3, Seed: 11, Verify: true, PerPin: 16})
			if err != nil {
				t.Fatal(err)
			}
			for bi, st := range batteryStream(alg, int64(len(alg))*31, false) {
				if _, err := p.ProcessMixed(core.MixedBatch{Adds: st.Adds}); err != nil {
					ql.Stop()
					t.Fatalf("batch %d: %v", bi, err)
				}
			}
			stats := ql.Stop()
			if stats.Violations != 0 {
				t.Fatalf("%d violations, first: %s", stats.Violations, stats.FirstViolation)
			}
		})
	}
}

// TestReaderInterferenceSmoke is the acceptance smoke: readers serve a
// nonzero query rate while the writer applies batches, and the stream
// completes with zero violations. (The quantitative interference numbers
// — update throughput at 1/4/16 readers — come from the sagabench
// `interference` experiment; a unit test asserting a <10% slowdown would
// be noise-bound on shared CI hardware.)
func TestReaderInterferenceSmoke(t *testing.T) {
	cfg := core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     "cc",
		Model:         compute.INC,
		Directed:      true,
		Threads:       2,
		ComputeView:   true,
		ServeQueries:  true,
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ql, err := core.StartQueryLoad(p, core.QueryLoadConfig{Readers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range batteryStream("smoke", 99, false) {
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: st.Adds}); err != nil {
			ql.Stop()
			t.Fatal(err)
		}
	}
	// A fast writer can finish the whole stream before the readers are
	// ever scheduled (single-core CI). The epochs stay pinned-able until
	// Stop, so hold the pipeline open until the fleet has served
	// something — the non-blocking guarantee is that readers make
	// progress, not that they win every timeslice.
	for deadline := time.Now().Add(10 * time.Second); ql.Served() == 0; {
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
	}
	stats := ql.Stop()
	if stats.Queries == 0 || stats.QPS() <= 0 {
		t.Fatalf("no queries served during the stream: %+v", stats)
	}
	if stats.Violations != 0 {
		t.Fatalf("%d violations, first: %s", stats.Violations, stats.FirstViolation)
	}
	if pub := p.Epochs().Stats().Published; pub != 12 {
		t.Fatalf("published %d epochs, want 12", pub)
	}
}
