package core_test

import (
	"bytes"
	"strings"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
	"sagabench/internal/telemetry"
)

// telemetryRun streams a tiny generated dataset through an instrumented
// pipeline and returns the registry plus the decoded event log.
func telemetryRun(t *testing.T, dsName string, model compute.Model, repeats int) (*telemetry.Registry, []telemetry.BatchEvent) {
	t.Helper()
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(reg, telemetry.NewEventSink(&buf))
	spec, err := gen.Dataset("lj", gen.ProfileTiny)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(core.RunConfig{
		PipelineConfig: core.PipelineConfig{
			DataStructure: dsName,
			Algorithm:     "pr",
			Model:         model,
			Threads:       2,
			Telemetry:     rec,
		},
		Dataset: spec,
		Seed:    1,
		Repeats: repeats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return reg, evs
}

// TestRunEmitsBatchEvents checks that a measured run writes exactly one
// JSONL event per processed batch, with phase latencies, affected-set
// sizes, INC trigger fractions, and per-batch ds profile deltas filled in.
func TestRunEmitsBatchEvents(t *testing.T) {
	reg, evs := telemetryRun(t, "adjchunked", compute.INC, 2)
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	perRepeat := len(evs) / 2
	sawTrigger, sawConflictOrScan := false, false
	var totalIngested uint64
	for i, ev := range evs {
		if ev.Repeat != i/perRepeat {
			t.Fatalf("event %d: repeat tag %d, want %d", i, ev.Repeat, i/perRepeat)
		}
		if ev.Batch != i%perRepeat {
			t.Fatalf("event %d: batch index %d, want %d", i, ev.Batch, i%perRepeat)
		}
		if ev.Edges <= 0 || ev.Nodes <= 0 || ev.UpdateNS < 0 || ev.ComputeNS < 0 {
			t.Fatalf("event %d: implausible fields %+v", i, ev)
		}
		if ev.Affected <= 0 || ev.Processed == 0 {
			t.Fatalf("event %d: no compute work recorded: %+v", i, ev)
		}
		if ev.TriggerFrac > 0 {
			sawTrigger = true
		}
		if ev.DSScanSteps > 0 || ev.DSLockConflicts > 0 {
			sawConflictOrScan = true
		}
		if ev.DSImbalance > 0 && ev.DSImbalance < 1 {
			t.Fatalf("event %d: imbalance %v < 1", i, ev.DSImbalance)
		}
		totalIngested += ev.DSEdgesIngested
	}
	if !sawTrigger {
		t.Error("INC run never reported a trigger fraction")
	}
	if !sawConflictOrScan {
		t.Error("profiled store reported no per-batch scan/conflict deltas")
	}
	if totalIngested == 0 {
		t.Error("per-batch ds profile deltas never counted an ingested edge")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"saga_batch_latency_seconds_bucket",
		"saga_update_latency_seconds_count",
		"saga_ds_edges_ingested_total",
		"saga_inc_trigger_fraction_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestProcessMixedRecordsDeletes checks the mixed path both records the
// deletion count and reuses the pipeline scratch batch (no per-call
// combined allocation).
func TestProcessMixedRecordsDeletes(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(reg, telemetry.NewEventSink(&buf))
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "stinger",
		Algorithm:     "pr",
		Model:         compute.INC,
		Directed:      true,
		Telemetry:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessMixed(core.MixedBatch{
		Adds: graph.Batch{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessMixed(core.MixedBatch{
		Adds: graph.Batch{{Src: 2, Dst: 0, Weight: 1}},
		Dels: graph.Batch{{Src: 0, Dst: 1, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Deletes != 0 || evs[1].Deletes != 1 {
		t.Fatalf("delete counts = %d,%d want 0,1", evs[0].Deletes, evs[1].Deletes)
	}
	if evs[1].Edges != 1 || evs[1].Affected != 3 {
		t.Fatalf("mixed event = %+v", evs[1])
	}
}

// benchProcess measures Pipeline.Process on a pre-generated stream; rec
// nil benchmarks the disabled (seed-equivalent) path, non-nil the
// instrumented path. The two results bound the telemetry overhead the
// acceptance criteria cap at 2% for the nil case.
func benchProcess(b *testing.B, rec *telemetry.Recorder) {
	spec, err := gen.Dataset("lj", gen.ProfileTiny)
	if err != nil {
		b.Fatal(err)
	}
	edges := spec.Generate(1)
	batches := graph.Batches(edges, spec.BatchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := core.NewPipeline(core.PipelineConfig{
			DataStructure: "adjshared",
			Algorithm:     "pr",
			Model:         compute.INC,
			Directed:      spec.Directed,
			Threads:       2,
			MaxNodesHint:  spec.NumNodes,
			Telemetry:     rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, batch := range batches {
			p.Process(batch)
		}
	}
}

// BenchmarkProcessNilRecorder is the disabled path: identical to the seed
// pipeline except for one nil check per batch.
func BenchmarkProcessNilRecorder(b *testing.B) { benchProcess(b, nil) }

// BenchmarkProcessRecorder is the fully instrumented path (metrics, no
// event sink).
func BenchmarkProcessRecorder(b *testing.B) {
	benchProcess(b, telemetry.NewRecorder(telemetry.NewRegistry(), nil))
}
