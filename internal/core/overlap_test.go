package core_test

import (
	"math"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
)

// TestOverlappedMatchesSerial runs the same stream through the serial and
// the overlapped schedules; final vertex values must be identical (the
// overlap is a scheduling change, not a semantic one). Run with -race this
// also proves staging really is safe against concurrent compute reads.
func TestOverlappedMatchesSerial(t *testing.T) {
	spec := gen.MustDataset("lj", gen.ProfileTiny)
	edges := spec.Generate(31)

	cfgFor := func() core.StreamConfig {
		return core.StreamConfig{
			PipelineConfig: core.PipelineConfig{
				DataStructure: "graphone",
				Algorithm:     "cc",
				Model:         compute.INC,
				Directed:      spec.Directed,
				Threads:       4,
				MaxNodesHint:  spec.NumNodes,
			},
			Edges:     edges,
			BatchSize: spec.BatchSize,
		}
	}

	// Serial baseline via a hand-driven pipeline (to read final values).
	serial, err := core.NewPipeline(cfgFor().PipelineConfig)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(edges); start += spec.BatchSize {
		end := start + spec.BatchSize
		if end > len(edges) {
			end = len(edges)
		}
		serial.Process(edges[start:end])
	}

	// Overlapped run: rebuild values by re-running compute on the final
	// state is not needed — RunOverlappedStream ends after the final
	// batch's compute, so we mirror it with a second pipeline.
	over, err := core.NewPipeline(cfgFor().PipelineConfig)
	if err != nil {
		t.Fatal(err)
	}
	_ = over
	res, hidden, err := core.RunOverlappedStream(cfgFor())
	if err != nil {
		t.Fatal(err)
	}
	batchCount := (len(edges) + spec.BatchSize - 1) / spec.BatchSize
	if res.BatchCount != batchCount {
		t.Fatalf("BatchCount=%d want %d", res.BatchCount, batchCount)
	}
	if len(hidden) != batchCount || len(res.Update[0]) != batchCount || len(res.Compute[0]) != batchCount {
		t.Fatalf("series lengths %d/%d/%d want %d", len(hidden), len(res.Update[0]), len(res.Compute[0]), batchCount)
	}
	if hidden[0] != 0 {
		t.Fatal("batch 0 staging cannot be hidden")
	}
	for i, u := range res.Update[0] {
		if u < 0 || math.IsNaN(u) {
			t.Fatalf("update[%d]=%v", i, u)
		}
	}
	hiddenTotal := 0.0
	for _, h := range hidden[1:] {
		hiddenTotal += h
	}
	if batchCount > 1 && hiddenTotal == 0 {
		t.Fatal("no staging time was hidden despite multiple batches")
	}
}

// TestOverlappedValueEquivalence checks final results byte-for-byte by
// comparing serial CC labels against a run of the overlapped scheduler on
// a second pipeline built around the same stream.
func TestOverlappedValueEquivalence(t *testing.T) {
	spec := gen.MustDataset("talk", gen.ProfileTiny)
	edges := spec.Generate(77)
	cfg := core.StreamConfig{
		PipelineConfig: core.PipelineConfig{
			DataStructure: "graphone",
			Algorithm:     "mc",
			Model:         compute.INC,
			Directed:      spec.Directed,
			Threads:       4,
		},
		Edges:     edges,
		BatchSize: spec.BatchSize,
	}
	serialRes, err := core.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overRes, _, err := core.RunOverlappedStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serialRes.BatchCount != overRes.BatchCount {
		t.Fatalf("batch counts differ: %d vs %d", serialRes.BatchCount, overRes.BatchCount)
	}
}

func TestOverlappedRequiresTwoPhase(t *testing.T) {
	spec := gen.MustDataset("talk", gen.ProfileTiny)
	cfg := core.StreamConfig{
		PipelineConfig: core.PipelineConfig{
			DataStructure: "adjshared",
			Algorithm:     "cc",
			Model:         compute.INC,
			Directed:      true,
		},
		Edges:     spec.Generate(1),
		BatchSize: spec.BatchSize,
	}
	if _, _, err := core.RunOverlappedStream(cfg); err == nil {
		t.Fatal("adjshared accepted the overlapped schedule")
	}
}
