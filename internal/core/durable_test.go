package core_test

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/crosscheck"
	"sagabench/internal/ds"
	"sagabench/internal/durable"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
)

// durOpts pins the compute options so the recovered pipeline and the
// sequential reference converge to identical values.
var durOpts = compute.Options{Threads: 2, PRTolerance: 1e-12, PRMaxIters: 200, Epsilon: 1e-12}

func durableStream(batches int) crosscheck.Stream {
	return crosscheck.NewStream(crosscheck.StreamConfig{
		Seed: 11, Batches: batches, BatchSize: 80, NumNodes: 48,
		Directed: true, Deletes: true,
	})
}

// streamOracle replays the stream sequentially, skipping the given batch
// indices (poisoned batches the pipeline must exclude too).
func streamOracle(stream crosscheck.Stream, skip map[int]bool) *graph.Oracle {
	o := graph.NewOracle(true)
	for i, s := range stream {
		if skip[i] {
			continue
		}
		o.Update(s.Adds)
		o.Delete(s.Dels)
	}
	return o
}

func durableCfg(dir, alg string, dcfg *durable.Config) core.PipelineConfig {
	dcfg.Dir = dir
	return core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     alg,
		Model:         compute.INC,
		Directed:      true,
		Threads:       2,
		Compute:       durOpts,
		Durable:       dcfg,
	}
}

// verifyAgainstOracle cold-opens the durability directory and checks the
// recovered adjacency and vertex values match the sequential oracle.
func verifyAgainstOracle(t *testing.T, cfg core.PipelineConfig, oracle *graph.Oracle, wantSeq uint64) {
	t.Helper()
	cold := cfg
	dcfg := *cfg.Durable
	dcfg.Crash = nil
	dcfg.CheckpointEvery = -1
	cold.Durable = &dcfg
	p, err := core.NewPipeline(cold)
	if err != nil {
		t.Fatalf("cold restart: %v", err)
	}
	defer p.Close()
	if got := p.DurableSeq(); got != wantSeq {
		t.Fatalf("recovered through seq %d, want %d", got, wantSeq)
	}
	for _, d := range ds.DiffOracle(p.Graph(), oracle, 4) {
		t.Errorf("topology: %s", d)
	}
	want := compute.MustReference(cfg.Algorithm, oracle, durOpts)
	if v := compute.DiffValues(p.Values(), want, compute.Tolerance(cfg.Algorithm)); v >= 0 {
		t.Fatalf("values diverge at vertex %d after recovery", v)
	}
}

// TestDurableEndToEnd streams batches through a durable pipeline with
// periodic checkpoints, then restarts cold and checks recovery rebuilds
// the exact adjacency and vertex values.
func TestDurableEndToEnd(t *testing.T) {
	stream := durableStream(12)
	cfg := durableCfg(t.TempDir(), "pr", &durable.Config{Fsync: durable.FsyncAlways, CheckpointEvery: 4})
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream {
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: s.Adds, Dels: s.Dels}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	verifyAgainstOracle(t, cfg, streamOracle(stream, nil), uint64(len(stream)))
}

// TestDurableResume closes a durable pipeline mid-stream and checks a
// restart reports the resume point and the completed stream matches the
// oracle.
func TestDurableResume(t *testing.T) {
	stream := durableStream(8)
	cfg := durableCfg(t.TempDir(), "cc", &durable.Config{Fsync: durable.FsyncInterval, CheckpointEvery: 3})
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream[:5] {
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: s.Adds, Dels: s.Dels}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.DurableSeq(); got != 5 {
		t.Fatalf("resume point %d, want 5", got)
	}
	for _, s := range stream[5:] {
		if _, err := p2.ProcessMixed(core.MixedBatch{Adds: s.Adds, Dels: s.Dels}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	verifyAgainstOracle(t, cfg, streamOracle(stream, nil), uint64(len(stream)))
}

// processArmed drives the remaining stream through an armed pipeline,
// converting the simulated kill into a crash result the way a real driver
// experiences a dead process.
func processArmed(cfg core.PipelineConfig, stream crosscheck.Stream) (crash *durable.Crash) {
	var p *core.Pipeline
	defer func() {
		if p != nil {
			p.Abandon()
		}
		if r := recover(); r != nil {
			if c, ok := durable.AsCrash(r); ok {
				crash = &c
				return
			}
			panic(r)
		}
	}()
	p, err := core.NewPipeline(cfg)
	if err != nil {
		panic(err)
	}
	for i := int(p.DurableSeq()); i < len(stream); i++ {
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: stream[i].Adds, Dels: stream[i].Dels}); err != nil {
			panic(err)
		}
	}
	if err := p.Close(); err != nil {
		panic(err)
	}
	return nil
}

// TestDurableCrashPointMatrix kills the pipeline at every registered
// crash point — including mid-replay, by seeding an unapplied WAL tail
// first — then recovers, finishes the stream, and checks the recovered
// state against the sequential oracle.
func TestDurableCrashPointMatrix(t *testing.T) {
	stream := durableStream(10)
	oracle := streamOracle(stream, nil)
	for _, point := range durable.CrashPoints {
		t.Run(string(point), func(t *testing.T) {
			dir := t.TempDir()
			// Phase 1: log four batches with no checkpoints and abandon the
			// pipeline, leaving a WAL tail that the next open must replay.
			seed := durableCfg(dir, "pr", &durable.Config{Fsync: durable.FsyncAlways, CheckpointEvery: -1})
			p, err := core.NewPipeline(seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range stream[:4] {
				if _, err := p.ProcessMixed(core.MixedBatch{Adds: s.Adds, Dels: s.Dels}); err != nil {
					t.Fatal(err)
				}
			}
			p.Abandon()

			// Phase 2: arm the kill. CheckpointEvery 1 guarantees the
			// checkpoint points fire on the first post-recovery batch.
			armed := durableCfg(dir, "pr", &durable.Config{
				Fsync:           durable.FsyncAlways,
				CheckpointEvery: 1,
				Crash:           durable.CrashAt(point, 1),
			})
			crash := processArmed(armed, stream)
			if crash == nil {
				t.Fatalf("crash point %s never fired", point)
			}
			if crash.Point != point {
				t.Fatalf("crashed at %s, want %s", crash.Point, point)
			}

			// Phase 3: recover clean and finish the stream.
			clean := durableCfg(dir, "pr", &durable.Config{Fsync: durable.FsyncAlways, CheckpointEvery: 3})
			p3, err := core.NewPipeline(clean)
			if err != nil {
				t.Fatalf("recovery after %s: %v", point, err)
			}
			for i := int(p3.DurableSeq()); i < len(stream); i++ {
				if _, err := p3.ProcessMixed(core.MixedBatch{Adds: stream[i].Adds, Dels: stream[i].Dels}); err != nil {
					t.Fatal(err)
				}
			}
			if err := p3.Close(); err != nil {
				t.Fatal(err)
			}
			verifyAgainstOracle(t, clean, oracle, uint64(len(stream)))
		})
	}
}

// TestDurablePoisonValidation feeds a malformed batch (NaN weight) and
// checks it is quarantined without consuming a sequence number while the
// stream keeps flowing, and that the .poison file replays.
func TestDurablePoisonValidation(t *testing.T) {
	cfg := durableCfg(t.TempDir(), "pr", &durable.Config{Fsync: durable.FsyncAlways, CheckpointEvery: -1})
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessMixed(core.MixedBatch{Adds: graph.Batch{{Src: 0, Dst: 1, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	poison := graph.Batch{{Src: 2, Dst: 3, Weight: graph.Weight(math.NaN())}}
	if _, err := p.ProcessMixed(core.MixedBatch{Adds: poison}); err != nil {
		t.Fatalf("poison batch must not error the stream: %v", err)
	}
	if got := p.DurableSeq(); got != 1 {
		t.Fatalf("validation reject consumed a sequence number: seq %d", got)
	}
	if _, err := p.ProcessMixed(core.MixedBatch{Adds: graph.Batch{{Src: 1, Dst: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	files := p.PoisonFiles()
	if len(files) != 1 || filepath.Base(files[0]) != "invalid-000000.poison" {
		t.Fatalf("poison files %v", files)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := crosscheck.ReadReproFile(files[0])
	if err != nil {
		t.Fatalf("quarantine file is not replayable: %v", err)
	}
	if len(r.Stream) != 1 || len(r.Stream[0].Adds) != 1 || r.DS != "adjshared" {
		t.Fatalf("quarantined repro %+v", r)
	}
	// The NaN must survive the codec so the repro reproduces.
	if !math.IsNaN(float64(r.Stream[0].Adds[0].Weight)) {
		t.Fatalf("quarantined weight %v, want NaN", r.Stream[0].Adds[0].Weight)
	}
}

// TestDurableApplyPoisonQuarantine injects a batch that passes validation
// but persistently fails to apply: it must be logged, retried, tombstoned,
// quarantined, and excluded from the recovered state — even across a cold
// restart with the failure still present.
func TestDurableApplyPoisonQuarantine(t *testing.T) {
	stream := durableStream(6)
	const poisonIdx = 2 // batch index 2 = seq 3
	probe := func(seq uint64, _, _ graph.Batch) error {
		if seq == poisonIdx+1 {
			return errors.New("injected apply failure")
		}
		return nil
	}
	cfg := durableCfg(t.TempDir(), "pr", &durable.Config{
		Fsync:           durable.FsyncAlways,
		CheckpointEvery: 2,
		MaxRetries:      1,
		RetryBackoff:    time.Microsecond,
		ApplyProbe:      probe,
	})
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream {
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: s.Adds, Dels: s.Dels}); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.DurableSeq(); got != uint64(len(stream)) {
		t.Fatalf("stream stalled at seq %d after poison", got)
	}
	files := p.PoisonFiles()
	if len(files) != 1 || filepath.Base(files[0]) != "batch-000003.poison" {
		t.Fatalf("poison files %v, want batch-000003.poison", files)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart with the probe still failing: the tombstone must keep
	// the poison batch out of replay (no re-quarantine, no divergence).
	p2, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(p2.PoisonFiles()); n != 0 {
		t.Fatalf("recovery re-replayed the tombstoned batch (%d new quarantines)", n)
	}
	oracle := streamOracle(stream, map[int]bool{poisonIdx: true})
	for _, d := range ds.DiffOracle(p2.Graph(), oracle, 4) {
		t.Errorf("topology: %s", d)
	}
	want := compute.MustReference("pr", oracle, durOpts)
	if v := compute.DiffValues(p2.Values(), want, compute.Tolerance("pr")); v >= 0 {
		t.Fatalf("values diverge at vertex %d", v)
	}
	p2.Close()
}

// TestRunRejectsDurable: the repeat-oriented measurement drivers refuse a
// durable pipeline — each repeat would re-recover persisted state.
func TestRunRejectsDurable(t *testing.T) {
	cfg := pipelineCfg("adjshared", "cc", compute.INC)
	cfg.Durable = &durable.Config{Dir: t.TempDir()}
	if _, err := core.RunStream(core.StreamConfig{
		PipelineConfig: cfg,
		Edges:          graph.Batch{{Src: 0, Dst: 1, Weight: 1}},
		BatchSize:      1,
	}); err == nil {
		t.Error("RunStream should reject a durable config")
	}
	if _, err := core.Run(core.RunConfig{
		PipelineConfig: cfg,
		Dataset:        gen.MustDataset("talk", gen.ProfileTiny),
	}); err == nil {
		t.Error("Run should reject a durable config")
	}
}

// BenchmarkProcessMixedBaseline / BenchmarkProcessMixedDurable measure the
// per-batch cost of the durability layer (FsyncNever isolates the WAL
// encode+write from disk sync latency). With Durable nil the batch path
// must not change at all.
func BenchmarkProcessMixedBaseline(b *testing.B) {
	benchMixed(b, nil)
}

func BenchmarkProcessMixedDurable(b *testing.B) {
	benchMixed(b, &durable.Config{Fsync: durable.FsyncNever, CheckpointEvery: -1})
}

func benchMixed(b *testing.B, dcfg *durable.Config) {
	cfg := core.PipelineConfig{
		DataStructure: "adjshared", Algorithm: "cc", Model: compute.INC,
		Directed: true, Threads: 2,
	}
	if dcfg != nil {
		dcfg.Dir = b.TempDir()
		cfg.Durable = dcfg
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := make(graph.Batch, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			v := graph.NodeID((i*64 + j) % 512)
			batch[j] = graph.Edge{Src: v, Dst: (v + 1) % 512, Weight: 1}
		}
		if _, err := p.ProcessMixed(core.MixedBatch{Adds: batch}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	p.Close()
}
