package core_test

import (
	"fmt"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// ExamplePipeline shows the smallest end-to-end use of the platform:
// couple a data structure with an incremental algorithm and feed batches.
func ExamplePipeline() {
	pipe, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "stinger",
		Algorithm:     "bfs",
		Model:         compute.INC,
		Directed:      true,
	})
	if err != nil {
		panic(err)
	}
	// Batch 1: a chain 0 -> 1 -> 2.
	pipe.Process(graph.Batch{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
	})
	// Batch 2: a shortcut 0 -> 2 arrives; the incremental engine lowers
	// only the affected depth.
	pipe.Process(graph.Batch{{Src: 0, Dst: 2, Weight: 1}})
	fmt.Println(pipe.Values())
	// Output: [0 1 1]
}

// ExamplePipeline_ProcessMixed shows a batch that simultaneously inserts
// and deletes edges (the streaming extension; FS recomputes correctly
// under any topology change).
func ExamplePipeline_ProcessMixed() {
	pipe, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "graphone",
		Algorithm:     "cc",
		Model:         compute.FS,
		Directed:      true,
	})
	if err != nil {
		panic(err)
	}
	pipe.Process(graph.Batch{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
	})
	// The bridge 1->2 arrives while 2->3 expires: components merge and
	// split in one batch.
	if _, err := pipe.ProcessMixed(core.MixedBatch{
		Adds: graph.Batch{{Src: 1, Dst: 2, Weight: 1}},
		Dels: graph.Batch{{Src: 2, Dst: 3, Weight: 1}},
	}); err != nil {
		panic(err)
	}
	fmt.Println(pipe.Values())
	// Output: [0 0 0 3]
}
