package core_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/durable"
	"sagabench/internal/graph"
	"sagabench/internal/telemetry"
)

// viewMixedStream builds a deterministic mixed stream. Weights are a
// symmetric function of the endpoints and the batch index, so duplicate
// and mirrored inserts of the same edge within one batch agree on weight
// (ingestion order must not matter).
func viewMixedStream(seed int64, batches, batchSize, numNodes int) []core.MixedBatch {
	rng := rand.New(rand.NewSource(seed))
	var live graph.Batch
	out := make([]core.MixedBatch, batches)
	for b := range out {
		var mb core.MixedBatch
		for i := 0; i < batchSize; i++ {
			var e graph.Edge
			if len(live) > 0 && rng.Intn(3) == 0 {
				e = live[rng.Intn(len(live))]
			} else {
				e = graph.Edge{Src: graph.NodeID(rng.Intn(numNodes)), Dst: graph.NodeID(rng.Intn(numNodes))}
			}
			lo, hi := int(e.Src), int(e.Dst)
			if lo > hi {
				lo, hi = hi, lo
			}
			e.Weight = graph.Weight(1 + (lo+7*hi+13*b)%9)
			mb.Adds = append(mb.Adds, e)
			live = append(live, e)
		}
		for i := 0; i < batchSize/8 && len(live) > 0; i++ {
			k := rng.Intn(len(live))
			mb.Dels = append(mb.Dels, live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		out[b] = mb
	}
	return out
}

// TestComputeViewBitIdentical runs every (structure, algorithm, model,
// directedness) combination twice over the identical mixed stream — once
// on the interface path, once on the flat compute view — at Threads=1,
// where both executions are fully deterministic, and requires the property
// vectors to match bit for bit after every batch. The mirror preserves
// each store's neighbor order, so even PageRank's order-sensitive float
// summation must agree exactly.
func TestComputeViewBitIdentical(t *testing.T) {
	for _, dsName := range ds.Names() {
		dsName := dsName
		t.Run(dsName, func(t *testing.T) {
			t.Parallel()
			for _, directed := range []bool{true, false} {
				stream := viewMixedStream(0xBEEF+int64(len(dsName)), 8, 150, 64)
				for _, alg := range compute.AlgNames() {
					for _, model := range []compute.Model{compute.FS, compute.INC} {
						mk := func(view bool) *core.Pipeline {
							p, err := core.NewPipeline(core.PipelineConfig{
								DataStructure: dsName,
								Algorithm:     alg,
								Model:         model,
								Directed:      directed,
								Threads:       1,
								ComputeView:   view,
							})
							if err != nil {
								t.Fatal(err)
							}
							return p
						}
						plain, viewed := mk(false), mk(true)
						if viewed.ComputeGraph() == viewed.Graph() {
							t.Fatalf("%s: compute view not attached", dsName)
						}
						for bi, mb := range stream {
							if _, err := plain.ProcessMixed(mb); err != nil {
								t.Fatalf("%s/%s/%s plain batch %d: %v", dsName, alg, model, bi, err)
							}
							if _, err := viewed.ProcessMixed(mb); err != nil {
								t.Fatalf("%s/%s/%s view batch %d: %v", dsName, alg, model, bi, err)
							}
							got, want := viewed.Values(), plain.Values()
							if len(got) != len(want) {
								t.Fatalf("%s/%s/%s/directed=%v batch %d: %d values, want %d",
									dsName, alg, model, directed, bi, len(got), len(want))
							}
							for v := range got {
								// NaN never appears (distances are inf, not NaN),
								// so bitwise identity is plain equality.
								if got[v] != want[v] {
									t.Fatalf("%s/%s/%s/directed=%v batch %d vertex %d: view %v, interface %v",
										dsName, alg, model, directed, bi, v, got[v], want[v])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestComputeViewDurableRecovery checks the mirror survives the crash
// path. Recovery rebuilds the structure from a checkpoint's canonical
// edge order, so recovered values legitimately differ in the last float
// bit from an undisturbed run; the invariant that must hold exactly is
// view-on vs view-off across the SAME close/recover/resume sequence — the
// recovered mirror (rebuilt fresh, full-built on the first post-recovery
// batch) must stay bit-identical to the recovered interface path.
func TestComputeViewDurableRecovery(t *testing.T) {
	stream := viewMixedStream(7, 10, 120, 48)
	mk := func(view bool, dur *durable.Config) *core.Pipeline {
		p, err := core.NewPipeline(core.PipelineConfig{
			DataStructure: "adjshared",
			Algorithm:     "pr",
			Model:         compute.INC,
			Directed:      true,
			Threads:       1,
			ComputeView:   view,
			Durable:       dur,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	finals := map[bool][]float64{}
	for _, view := range []bool{false, true} {
		dir := t.TempDir()
		dcfg := durable.Config{Dir: dir, Fsync: durable.FsyncAlways, CheckpointEvery: 3}
		first := mk(view, &dcfg)
		for _, mb := range stream[:6] {
			if _, err := first.ProcessMixed(mb); err != nil {
				t.Fatal(err)
			}
		}
		if err := first.Close(); err != nil {
			t.Fatal(err)
		}
		second := mk(view, &dcfg)
		if view && second.ComputeGraph() == second.Graph() {
			t.Fatal("recovered pipeline lost its compute view")
		}
		for _, mb := range stream[6:] {
			if _, err := second.ProcessMixed(mb); err != nil {
				t.Fatal(err)
			}
		}
		finals[view] = append([]float64(nil), second.Values()...)
		if err := second.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, want := finals[true], finals[false]
	if len(got) != len(want) {
		t.Fatalf("view path recovered %d values, interface path %d", len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: view path %v, interface path %v", v, got[v], want[v])
		}
	}
}

// TestComputeViewTelemetry checks the view refresh surfaces in both the
// per-batch event log (view_ns / dirty fraction / full flag) and the
// Prometheus metrics.
func TestComputeViewTelemetry(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(reg, telemetry.NewEventSink(&buf))
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "stinger",
		Algorithm:     "cc",
		Model:         compute.FS,
		Directed:      true,
		Threads:       2,
		ComputeView:   true,
		Telemetry:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for bi, mb := range viewMixedStream(11, 6, 100, 4000) {
		if _, err := p.ProcessMixed(mb); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 {
		t.Fatalf("%d events, want 6", len(evs))
	}
	if !evs[0].ViewFull {
		t.Fatal("first batch should be a full mirror build")
	}
	sawDelta := false
	for i, ev := range evs {
		if ev.ViewNS <= 0 {
			t.Fatalf("event %d: ViewNS=%d, want > 0", i, ev.ViewNS)
		}
		if ev.ViewDirtyFrac <= 0 || ev.ViewDirtyFrac > 1 {
			t.Fatalf("event %d: ViewDirtyFrac=%v outside (0, 1]", i, ev.ViewDirtyFrac)
		}
		if !ev.ViewFull {
			sawDelta = true
			if ev.ViewDirtyFrac >= 1 {
				t.Fatalf("event %d: delta rebuild with dirty fraction %v", i, ev.ViewDirtyFrac)
			}
		}
	}
	if !sawDelta {
		t.Fatal("stream of small batches over a large vertex range never took the delta path")
	}
	var prom strings.Builder
	reg.WritePrometheus(&prom)
	for _, metric := range []string{
		"saga_view_refresh_seconds",
		"saga_view_dirty_fraction",
		"saga_view_delta_rebuilds_total",
		"saga_view_full_rebuilds_total",
	} {
		if !strings.Contains(prom.String(), metric) {
			t.Fatalf("metrics dump missing %s", metric)
		}
	}
}
