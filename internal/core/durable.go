package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	"sagabench/internal/durable"
	"sagabench/internal/graph"
)

// This file threads the durability layer through the pipeline. The
// protocol per batch:
//
//	validate -> WAL append -> apply (panic-caught, retried) -> maybe checkpoint
//
// A batch failing validation is quarantined before it consumes a sequence
// number. A batch that appends but persistently fails to apply is
// tombstoned in the WAL, quarantined, and the in-memory state — possibly
// half-mutated by the failed apply — is rebuilt from checkpoint + WAL.
// Construction and rebuild share recoverDurable, so crash recovery is the
// ordinary startup path, not a special case.

// durState is the pipeline's durability attachment.
type durState struct {
	man       *durable.Manager
	meta      durable.PoisonMeta
	sinceCkpt int // applied batches since the last checkpoint

	// suspended: the WAL failed permanently under a "degrade" policy;
	// batches keep applying in memory, nothing more is logged.
	// ckptSuspended: checkpointing failed permanently; the WAL (if not
	// itself suspended) keeps the batches recoverable, just from an older
	// snapshot. Both are one-way — the degrade machinery never un-fails.
	suspended     bool
	ckptSuspended bool
}

// errFenced is returned by durable operations on a pipeline the
// supervisor has superseded: the rebuilt instance owns the WAL and
// checkpoint files now.
var errFenced = errors.New("core: pipeline fenced (superseded by a supervised rebuild)")

// initDurable opens the durability directory and recovers its contents.
func (p *Pipeline) initDurable(cfg durable.Config) error {
	man, err := durable.Open(cfg, p.rec)
	if err != nil {
		return err
	}
	threads := p.pcfg.Threads
	if threads <= 0 {
		threads = 1
	}
	p.dur = &durState{man: man, meta: durable.PoisonMeta{
		Directed: p.pcfg.Directed,
		Threads:  threads,
		DS:       p.pcfg.DataStructure,
		Alg:      p.pcfg.Algorithm,
		Model:    p.pcfg.Model,
		Source:   p.pcfg.Compute.Source,
	}}
	return p.recoverDurable()
}

// recoverDurable rebuilds the in-memory state from disk: fresh
// components, newest valid checkpoint, then WAL tail replay. A record
// that fails to replay (a poison batch logged before a crash) is
// tombstoned and quarantined, and the loop restarts — each pass
// permanently skips one record, so it terminates.
func (p *Pipeline) recoverDurable() error {
	for {
		cp, tail, err := p.dur.man.Recover()
		if err != nil {
			return err
		}
		if err := p.resetComponents(); err != nil {
			return err
		}
		if err := p.restoreCheckpoint(cp); err != nil {
			return err
		}
		replayedAll := true
		for _, r := range tail {
			if crash := p.dur.man.Config().Crash; crash != nil {
				crash(durable.CrashMidReplay)
			}
			mb := MixedBatch{Adds: r.Adds, Dels: r.Dels}
			if _, err := p.applyRetry(r.Seq, mb); err != nil {
				if qerr := p.quarantine(r.Seq, err, mb); qerr != nil {
					return qerr
				}
				replayedAll = false
				break
			}
		}
		if !replayedAll {
			continue
		}
		// Attribute recovery's ingestion to recovery, not to the next
		// batch's telemetry delta.
		if prof, ok := ds.ProfileOf(p.g); ok {
			p.lastProf = prof
		}
		return nil
	}
}

// resetComponents replaces the data structure and engine with fresh ones
// built from the original configuration.
func (p *Pipeline) resetComponents() error {
	g, engine, err := buildComponents(p.pcfg)
	if err != nil {
		return err
	}
	p.g, p.engine = g, engine
	p.lastProf = ds.UpdateProfile{}
	// The old view mirrors the discarded structure; a fresh one is unbuilt
	// and full-builds on the first post-recovery Refresh, which sees the
	// checkpoint-restored topology (restoreCheckpoint writes the structure
	// directly, bypassing apply and therefore the mirror).
	p.initView()
	if p.em != nil {
		// The double buffer was discarded with the old view; the spare the
		// manager tracked no longer exists, so stop gating on it. Snapshots
		// published before the reset stay pinned and intact — their arrays
		// belong to the GC now, not to any live double buffer.
		p.em.ForgetSpare()
	}
	return nil
}

// restoreCheckpoint rebuilds adjacency and engine state from a snapshot
// (nil = empty directory, nothing to restore).
func (p *Pipeline) restoreCheckpoint(cp *durable.Checkpoint) error {
	if cp == nil {
		return nil
	}
	if cp.Directed != p.pcfg.Directed {
		return fmt.Errorf("core: checkpoint directedness %v does not match pipeline config %v",
			cp.Directed, p.pcfg.Directed)
	}
	const chunk = 4096
	for lo := 0; lo < len(cp.Edges); lo += chunk {
		hi := lo + chunk
		if hi > len(cp.Edges) {
			hi = len(cp.Edges)
		}
		p.g.Update(graph.Batch(cp.Edges[lo:hi]))
	}
	// NumNodes is "1 + highest vertex ever ingested" and never shrinks,
	// but deletions can leave the highest vertex edgeless — absent from
	// the exported adjacency. Touch it with a self-loop insert+delete so
	// the recovered vertex count (which sizes every property array)
	// matches the checkpoint. Deletion matches on (src,dst), so the probe
	// edge cannot disturb real adjacency: if the vertex had edges we
	// would not be here.
	if cp.NumNodes > 0 && p.g.NumNodes() < cp.NumNodes {
		probe := graph.Batch{{Src: graph.NodeID(cp.NumNodes - 1), Dst: graph.NodeID(cp.NumNodes - 1)}}
		p.g.Update(probe)
		if d, ok := p.g.(ds.Deleter); ok {
			if err := d.Delete(probe); err != nil {
				return err
			}
		}
	}
	if p.g.NumNodes() != cp.NumNodes {
		return fmt.Errorf("core: restored %d vertices, checkpoint has %d", p.g.NumNodes(), cp.NumNodes)
	}
	if cp.Engine != nil {
		st, ok := p.engine.(compute.Stateful)
		if !ok {
			return fmt.Errorf("core: checkpoint carries engine state but %s/%s cannot restore it",
				p.engine.Name(), p.engine.Model())
		}
		st.RestoreState(*cp.Engine)
	}
	return nil
}

// processDurable is the durable batch path (see the file comment for the
// protocol). Poison batches are quarantined and return a nil error; a
// non-nil error is unrecoverable durability I/O.
func (p *Pipeline) processDurable(mb MixedBatch) (BatchLatency, error) {
	var lat BatchLatency
	if p.fenced.Load() {
		return lat, errFenced
	}
	man := p.dur.man
	// The durable path owns the batch trace so the WAL append and the
	// checkpoint land inside it; apply (via applyRetry) sees it in flight
	// and only contributes phase spans.
	if p.tr.Enabled() {
		p.bt = p.tr.StartBatch(p.batchIdx)
	}
	if err := durable.ValidateBatch(mb.Adds, mb.Dels, man.Config().MaxNodeID); err != nil {
		path, qerr := man.Quarantine(p.dur.meta, 0, err.Error(), mb.Adds, mb.Dels)
		if qerr != nil {
			p.abortTrace(qerr)
			return lat, qerr
		}
		p.poisoned = append(p.poisoned, path)
		p.dumpQuarantineTrace(path, 0, err)
		return lat, nil
	}
	// seq stays 0 in degraded-durability mode: the batch applies in
	// memory only and the quarantine/rebuild machinery (which needs a
	// logged record to tombstone) is off.
	var seq uint64
	if !p.dur.suspended {
		wsp := p.bt.Start("wal.append")
		s, err := man.Append(mb.Adds, mb.Dels)
		if err != nil {
			wsp.SetStr("error", err.Error())
			wsp.End()
			if derr := p.durableFault("wal-append", err); derr != nil {
				p.abortTrace(derr)
				return lat, derr
			}
			// Degrade policy absorbed the fault: apply unlogged.
		} else {
			seq = s
			if wsp.Ctx().Enabled() {
				bytes, fsync := man.LastAppendStats()
				wsp.SetInt("seq", int64(seq))
				wsp.SetInt("bytes", int64(bytes))
				if fsync > 0 {
					wsp.SetInt("fsync_ns", fsync.Nanoseconds())
				}
			}
			wsp.End()
		}
	}
	lat, err := p.applyRetry(seq, mb)
	if err != nil {
		if seq == 0 {
			// Degraded mode: nothing was logged, so there is no tombstone
			// to write and no durable state to rebuild the half-mutated
			// components from. The pipeline is done.
			p.health.To(Failed, fmt.Sprintf("apply failed with durability suspended: %v", err))
			p.abortTrace(err)
			return BatchLatency{}, err
		}
		if qerr := p.quarantine(seq, err, mb); qerr != nil {
			p.abortTrace(qerr)
			return BatchLatency{}, qerr
		}
		// The failed apply may have half-mutated the graph or the engine;
		// rebuild from disk (the tombstone keeps the poison batch out).
		if rerr := p.recoverDurable(); rerr != nil {
			return BatchLatency{}, rerr
		}
		return BatchLatency{}, nil
	}
	p.dur.sinceCkpt++
	if every := man.Config().CheckpointEvery; every > 0 && !p.dur.ckptSuspended && p.dur.sinceCkpt >= every {
		if err := p.writeDurableCheckpoint(); err != nil {
			if derr := p.checkpointFault(err); derr != nil {
				p.abortTrace(derr)
				return lat, derr
			}
			// Absorbed: this batch is already logged and applied; only
			// future checkpoints are off.
		}
	}
	if bt := p.bt; bt != nil {
		p.bt = nil
		bt.SetInt("wal_seq", int64(seq))
		bt.Finish()
	}
	return lat, nil
}

// durableFault routes a WAL failure (already classified and retried by
// internal/durable) through the degrade policy. It returns nil when the
// pipeline absorbed the fault and the caller should apply the batch in
// memory, or the error the caller must surface: ErrReadOnly when the
// policy refuses ingest from here on, the original error when the
// policy is fail.
func (p *Pipeline) durableFault(op string, err error) error {
	if errors.Is(err, errFenced) {
		// A fenced instance hitting its own fence is not a disk fault;
		// routing it through the policy would degrade the shared health
		// machine on behalf of an instance that no longer matters.
		return err
	}
	cause := fmt.Sprintf("%s: %v", op, err)
	switch p.pcfg.DegradePolicy.target() {
	case DegradedDurability:
		p.dur.suspended = true
		p.dur.ckptSuspended = true
		p.health.To(DegradedDurability, cause)
		return nil
	case ReadOnly:
		p.health.To(ReadOnly, cause)
		p.health.NoteRefused()
		return ErrReadOnly
	default:
		p.health.To(Failed, cause)
		return err
	}
}

// checkpointFault routes a checkpoint failure through the degrade
// policy. Unlike a WAL fault, the batch that triggered it is already
// logged and applied, so the absorbing policies return nil (batch
// succeeded) and only stop future checkpoints; the WAL keeps the state
// recoverable from the last good snapshot.
func (p *Pipeline) checkpointFault(err error) error {
	if errors.Is(err, errFenced) {
		return err
	}
	cause := fmt.Sprintf("checkpoint: %v", err)
	switch p.pcfg.DegradePolicy.target() {
	case DegradedDurability:
		p.dur.ckptSuspended = true
		p.health.To(DegradedDurability, cause)
		return nil
	case ReadOnly:
		p.dur.ckptSuspended = true
		p.health.To(ReadOnly, cause)
		return nil
	default:
		p.health.To(Failed, cause)
		return err
	}
}

// applyRetry applies one batch with panic capture and exponential-backoff
// retries. Batch application is idempotent at the structure level
// (inserts overwrite, deletes of missing edges no-op), so retrying over a
// half-applied attempt converges to the same state.
func (p *Pipeline) applyRetry(seq uint64, mb MixedBatch) (BatchLatency, error) {
	cfg := p.dur.man.Config()
	backoff := cfg.RetryBackoff
	var lat BatchLatency
	var err error
	for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			p.rec.RecordRetry()
			time.Sleep(backoff)
			backoff *= 2
		}
		lat, err = p.applyCaught(seq, mb)
		if err == nil {
			return lat, nil
		}
	}
	return lat, fmt.Errorf("core: batch seq %d failed %d attempts: %w", seq, cfg.MaxRetries+1, err)
}

// applyCaught applies one batch, converting panics anywhere in the update
// or compute phase into errors. Simulated crashes are re-raised: a kill
// is not a poison batch.
func (p *Pipeline) applyCaught(seq uint64, mb MixedBatch) (lat BatchLatency, err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := durable.AsCrash(r); ok {
				panic(c)
			}
			err = fmt.Errorf("core: apply panic: %v", r)
		}
	}()
	if probe := p.dur.man.Config().ApplyProbe; probe != nil {
		if perr := probe(seq, mb.Adds, mb.Dels); perr != nil {
			return lat, perr
		}
	}
	return p.apply(mb)
}

// quarantine tombstones seq in the WAL and writes the batch to a
// replayable .poison file, plus the flight-recorder trace beside it.
func (p *Pipeline) quarantine(seq uint64, cause error, mb MixedBatch) error {
	if p.fenced.Load() {
		return errFenced
	}
	if err := p.dur.man.AppendSkip(seq); err != nil {
		return err
	}
	path, err := p.dur.man.Quarantine(p.dur.meta, seq, cause.Error(), mb.Adds, mb.Dels)
	if err != nil {
		return err
	}
	p.poisoned = append(p.poisoned, path)
	p.dumpQuarantineTrace(path, seq, cause)
	return nil
}

// dumpQuarantineTrace seals the poisoned batch's trace with the failure
// cause and writes the whole flight-recorder ring — the batches leading
// up to the death, plus the dying batch itself — as Chrome trace-event
// JSON next to the poison file, so the forensic record travels with the
// reproducer. No-op when tracing is off; best-effort otherwise (the
// poison file is the primary artifact, a failed trace dump must not turn
// a handled poison batch into a pipeline error).
func (p *Pipeline) dumpQuarantineTrace(poisonPath string, seq uint64, cause error) {
	if !p.tr.Enabled() {
		return
	}
	if bt := p.bt; bt != nil {
		p.bt = nil
		if seq > 0 {
			bt.SetInt("wal_seq", int64(seq))
		}
		bt.SetStr("quarantined", cause.Error())
		bt.Finish()
	}
	tracePath := strings.TrimSuffix(poisonPath, ".poison") + ".trace.json"
	// saga:allow errcheck-durable -- best-effort forensic sidecar; see doc comment.
	_ = p.tr.DumpChromeFile(tracePath)
}

// writeDurableCheckpoint snapshots the current in-memory state at the
// last logged sequence number.
func (p *Pipeline) writeDurableCheckpoint() error {
	if p.fenced.Load() {
		return errFenced
	}
	sp := p.bt.Start("checkpoint")
	defer sp.End()
	threads := p.pcfg.Threads
	if threads <= 0 {
		threads = 1
	}
	cp := &durable.Checkpoint{
		Seq:      p.dur.man.LastSeq(),
		Directed: p.pcfg.Directed,
		NumNodes: p.g.NumNodes(),
		Edges:    ds.ExportEdgesParallel(p.g, threads),
	}
	if st, ok := p.engine.(compute.Stateful); ok {
		s := st.ExportState()
		cp.Engine = &s
	}
	if err := p.dur.man.WriteCheckpoint(cp); err != nil {
		return err
	}
	p.dur.sinceCkpt = 0
	return nil
}

// Close shuts the pipeline down: epoch publication stops (subsequent
// AcquireQuery calls fail; handles already pinned stay valid until
// released — their snapshots are immutable and outlive the pipeline),
// then the durability layer flushes: final checkpoint, then WAL close.
// A pipeline with neither has nothing to close.
func (p *Pipeline) Close() error {
	if p.em != nil {
		p.em.Close()
	}
	if p.dur == nil {
		return nil
	}
	if p.fenced.Load() {
		// A superseded instance must not flush through files the rebuilt
		// pipeline owns; the supervisor abandoned this one deliberately.
		return nil
	}
	var firstErr error
	if !p.dur.suspended && !p.dur.ckptSuspended {
		if err := p.writeDurableCheckpoint(); err != nil {
			firstErr = err
		}
	}
	if p.dur.suspended {
		// The WAL already failed permanently; a close-time fsync through
		// the same dead disk would only manufacture a second error.
		p.dur.man.Abandon()
	} else if err := p.dur.man.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// DurableSeq is the sequence number of the last durably logged batch (0
// without durability): a driver resuming a stream skips everything at or
// below it.
func (p *Pipeline) DurableSeq() uint64 {
	if p.dur == nil {
		return 0
	}
	return p.dur.man.LastSeq()
}

// PoisonFiles lists the quarantine files written by this pipeline
// instance, in order.
func (p *Pipeline) PoisonFiles() []string { return p.poisoned }

// Abandon drops the durability layer without flushing, as a kill would:
// no final checkpoint, no WAL fsync. The kill/recover harness uses it for
// file-handle hygiene on pipelines it crashes; production code wants
// Close.
func (p *Pipeline) Abandon() {
	if p.dur != nil {
		p.dur.man.Abandon()
	}
}
