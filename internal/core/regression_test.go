package core_test

import (
	"math"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// Regression tests for incremental-model bugs surfaced by the
// internal/crosscheck differential harness. Each scenario is the minimized
// shape of a real divergence: the INC engine silently disagreed with the
// sequential oracle while FS stayed correct.

// tightOpts pins the tolerances the harness uses so INC tracks the
// sequential reference exactly.
var tightOpts = compute.Options{PRTolerance: 1e-12, PRMaxIters: 200, Epsilon: 1e-12}

func tightPipeline(t *testing.T, alg string, model compute.Model, directed bool) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     alg,
		Model:         model,
		Directed:      directed,
		Threads:       2,
		Compute:       tightOpts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// INC PageRank left never-touched vertices at the fresh-vertex value 1/|V|
// forever: a vertex that exists only because a higher ID appeared (an ID
// gap) is never in any batch's affected set, but its true rank is the base
// term 0.15/|V|. And because |V| is an input to every vertex's rank, older
// settled vertices drifted as the graph grew. The engine now widens the
// affected set to all vertices whenever NumNodes changes.
func TestIncPageRankCoversVertexGrowth(t *testing.T) {
	p := tightPipeline(t, "pr", compute.INC, true)
	oracle := graph.NewOracle(true)

	batches := []graph.Batch{
		{{Src: 0, Dst: 1, Weight: 1}},
		// Vertices 2..4 are an ID gap: allocated, isolated, never affected.
		{{Src: 5, Dst: 6, Weight: 1}},
		// Growth again: every settled vertex's base term 0.15/|V| shifts.
		{{Src: 9, Dst: 0, Weight: 1}},
	}
	for bi, b := range batches {
		p.Process(b)
		oracle.Update(b)
		want := graph.RefPR(oracle, 1e-12, 200)
		got := p.Values()
		if len(got) != len(want) {
			t.Fatalf("batch %d: %d values, want %d", bi, len(got), len(want))
		}
		for v := range got {
			if math.Abs(got[v]-want[v]) > 1e-6 {
				t.Errorf("batch %d: vertex %d: inc pr %v, reference %v", bi, v, got[v], want[v])
			}
		}
	}
}

// PageRank normalizes each in-neighbor's rank by its out-degree, so an
// inserted or deleted edge (u,v) affects every OTHER out-neighbor of u —
// vertices that are not batch endpoints and that INC never recomputed
// (minimized by sagafuzz from seed 1; see
// internal/crosscheck/testdata/pr-degree-dilution.repro). The engine now
// widens the PageRank affected set with out-neighbors of the endpoints.
func TestIncPageRankDegreeDilution(t *testing.T) {
	p := tightPipeline(t, "pr", compute.INC, true)
	oracle := graph.NewOracle(true)

	check := func(stage string) {
		t.Helper()
		want := graph.RefPR(oracle, 1e-12, 200)
		got := p.Values()
		for v := range got {
			if math.Abs(got[v]-want[v]) > 1e-6 {
				t.Errorf("%s: vertex %d: inc pr %v, reference %v", stage, v, got[v], want[v])
			}
		}
	}

	adds := graph.Batch{
		{Src: 30, Dst: 75, Weight: 3},
		{Src: 30, Dst: 5, Weight: 23},
	}
	if _, err := p.ProcessMixed(core.MixedBatch{Adds: adds}); err != nil {
		t.Fatal(err)
	}
	oracle.Update(adds)
	check("insert")

	// Insert dilution without |V| growth: vertex 30 gains a third
	// out-neighbor, shrinking its contribution to 75 and 5.
	dilute := graph.Batch{{Src: 30, Dst: 60, Weight: 1}}
	if _, err := p.ProcessMixed(core.MixedBatch{Adds: dilute}); err != nil {
		t.Fatal(err)
	}
	oracle.Update(dilute)
	check("dilute")

	// Deletion dilution: 30's out-degree drops back, re-concentrating its
	// rank on the surviving out-neighbors.
	dels := graph.Batch{{Src: 30, Dst: 5, Weight: 23}}
	if _, err := p.ProcessMixed(core.MixedBatch{Dels: dels}); err != nil {
		t.Fatal(err)
	}
	oracle.Delete(dels)
	check("delete")
}

// A duplicate insert overwrites the stored weight; for the monotone
// weighted algorithms that is a deletion-like event. Here SSWP's width at
// vertex 1 is self-supported around the 1<->2 cycle, so when the insert
// narrows edge (0,1) from 5 to 3 plain selective triggering can never pull
// the stale 5 down. The pipeline now reports overwritten weights to the
// engine for KickStarter-style invalidation.
func TestIncSSWPWeightOverwriteInvalidation(t *testing.T) {
	p := tightPipeline(t, "sswp", compute.INC, true)
	p.Process(graph.Batch{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 1, Dst: 2, Weight: 5},
		{Src: 2, Dst: 1, Weight: 5},
	})
	// Overwrite: edge (0,1) narrows to 3. True widths: vertex 1 and 2 -> 3.
	p.Process(graph.Batch{{Src: 0, Dst: 1, Weight: 3}})
	got := p.Values()
	for v, want := range map[int]float64{1: 3, 2: 3} {
		if got[v] != want {
			t.Errorf("sswp vertex %d: got %v, want %v (stale cycle support survived the overwrite)", v, got[v], want)
		}
	}
}

// The SSSP dual of the overwrite bug: lengthening edge (0,1) from 1 to 10
// must raise the distances at 1 and 2. Plain re-triggering only climbs the
// 1<->2 cycle one lap per round; the overwrite notification invalidates
// the cone directly so the engine converges like the reference.
func TestIncSSSPWeightOverwriteInvalidation(t *testing.T) {
	p := tightPipeline(t, "sssp", compute.INC, true)
	p.Process(graph.Batch{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 1, Weight: 1},
	})
	p.Process(graph.Batch{{Src: 0, Dst: 1, Weight: 10}})
	got := p.Values()
	for v, want := range map[int]float64{1: 10, 2: 11} {
		if got[v] != want {
			t.Errorf("sssp vertex %d: got %v, want %v (stale cycle support survived the overwrite)", v, got[v], want)
		}
	}
}

// An undirected deletion removes both orientations, but the trim seeded
// only the Dst side of the deletion record. With the record oriented
// (2,1), vertex 2's width — derived *through* the deleted edge from the
// vertex named Src — was never invalidated, and the 2<->3 mutual support
// then kept vertices 2 and 3 at stale widths forever. The trim now seeds
// the mirrored dependence on undirected graphs.
func TestIncUndirectedDeletionSeedsBothEndpoints(t *testing.T) {
	p := tightPipeline(t, "sswp", compute.INC, false)
	if _, err := p.ProcessMixed(core.MixedBatch{Adds: graph.Batch{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 2, Dst: 3, Weight: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	// Delete the physical edge {1,2}, oriented (2,1): tightness holds only
	// in the mirrored direction (val[2]=3 derived from val[1]=5), and the
	// deletion endpoints alone cannot repair 2 — it re-derives 3 from its
	// still-stale neighbor 3.
	if _, err := p.ProcessMixed(core.MixedBatch{Dels: graph.Batch{
		{Src: 2, Dst: 1, Weight: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	got := p.Values()
	for _, v := range []int{2, 3} {
		if got[v] != 0 {
			t.Errorf("sswp vertex %d: got %v, want 0 (unreachable after undirected deletion)", v, got[v])
		}
	}
	if got[1] != 5 {
		t.Errorf("sswp vertex 1: got %v, want 5", got[1])
	}
}

// ProcessMixed used to panic (index out of range in the affected-set
// builder) when a deletion named a vertex the graph has never seen — a
// legal no-op delete.
func TestProcessMixedOutOfRangeDeleteIsNoOp(t *testing.T) {
	p := tightPipeline(t, "cc", compute.INC, true)
	if _, err := p.ProcessMixed(core.MixedBatch{Adds: graph.Batch{
		{Src: 0, Dst: 1, Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessMixed(core.MixedBatch{Dels: graph.Batch{
		{Src: 1000, Dst: 2000, Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	got := p.Values()
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("cc values changed by a no-op delete: %v", got[:2])
	}
}
