package core_test

import (
	"math"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
)

func pipelineCfg(dsName, alg string, model compute.Model) core.PipelineConfig {
	return core.PipelineConfig{
		DataStructure: dsName,
		Algorithm:     alg,
		Model:         model,
		Directed:      true,
		Threads:       2,
	}
}

func TestPipelineProcess(t *testing.T) {
	p, err := core.NewPipeline(pipelineCfg("adjshared", "bfs", compute.INC))
	if err != nil {
		t.Fatal(err)
	}
	lat := p.Process(graph.Batch{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}})
	if lat.Update < 0 || lat.Compute < 0 {
		t.Fatal("negative latency")
	}
	if lat.Total() != lat.Update+lat.Compute {
		t.Fatal("Total != Update+Compute")
	}
	vals := p.Values()
	if len(vals) != 3 || vals[0] != 0 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("BFS depths after batch: %v", vals)
	}
	// Second batch extends the graph incrementally.
	p.Process(graph.Batch{{Src: 2, Dst: 3, Weight: 1}})
	vals = p.Values()
	if len(vals) != 4 || vals[3] != 3 {
		t.Fatalf("BFS depths after second batch: %v", vals)
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := core.NewPipeline(pipelineCfg("nope", "bfs", compute.INC)); err == nil {
		t.Error("expected error for unknown data structure")
	}
	if _, err := core.NewPipeline(pipelineCfg("adjshared", "nope", compute.INC)); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := core.NewPipeline(pipelineCfg("adjshared", "bfs", "nope")); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestRunAggregation(t *testing.T) {
	spec := gen.MustDataset("talk", gen.ProfileTiny)
	seen := 0
	res, err := core.Run(core.RunConfig{
		PipelineConfig: pipelineCfg("dah", "cc", compute.INC),
		Dataset:        spec,
		Seed:           1,
		Repeats:        2,
		OnBatch: func(b int, edges graph.Batch, p *core.Pipeline, lat core.BatchLatency) {
			seen++
			if len(edges) == 0 {
				t.Error("empty batch observed")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchCount != spec.BatchCount() {
		t.Fatalf("BatchCount=%d want %d", res.BatchCount, spec.BatchCount())
	}
	if seen != 2*res.BatchCount {
		t.Fatalf("OnBatch fired %d times, want %d", seen, 2*res.BatchCount)
	}
	for _, m := range []core.Metric{core.MetricUpdate, core.MetricCompute, core.MetricTotal} {
		ss, err := res.StageSummaries(m)
		if err != nil {
			t.Fatalf("metric %s: %v", m, err)
		}
		if ss[2].N == 0 {
			t.Fatalf("metric %s: empty final stage", m)
		}
		for _, s := range ss {
			if s.Mean < 0 || math.IsNaN(s.Mean) {
				t.Fatalf("metric %s: bad mean %v", m, s.Mean)
			}
		}
	}
	shares, err := res.UpdateShare()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shares {
		if s < 0 || s > 1 {
			t.Fatalf("update share[%d]=%v outside [0,1]", i, s)
		}
	}
	// Total = update + compute must hold per stage.
	u, err1 := res.StageSummaries(core.MetricUpdate)
	c, err2 := res.StageSummaries(core.MetricCompute)
	tot, err3 := res.StageSummaries(core.MetricTotal)
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	for i := range tot {
		if math.Abs(tot[i].Mean-(u[i].Mean+c[i].Mean)) > 1e-12 {
			t.Fatalf("stage %d: total %v != update %v + compute %v", i, tot[i].Mean, u[i].Mean, c[i].Mean)
		}
	}
}

// TestRunDirectedness checks the pipeline inherits directedness from the
// dataset: orkut is undirected, so in-degree equals out-degree globally.
func TestRunDirectedness(t *testing.T) {
	spec := gen.MustDataset("orkut", gen.ProfileTiny)
	spec.NumEdges = 2000
	var pl *core.Pipeline
	_, err := core.Run(core.RunConfig{
		PipelineConfig: core.PipelineConfig{
			DataStructure: "adjshared", Algorithm: "cc", Model: compute.INC, Threads: 2,
		},
		Dataset: spec,
		Seed:    3,
		OnBatch: func(_ int, _ graph.Batch, p *core.Pipeline, _ core.BatchLatency) { pl = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	g := pl.Graph()
	if g.Directed() {
		t.Fatal("orkut pipeline should be undirected")
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.OutDegree(graph.NodeID(v)) != g.InDegree(graph.NodeID(v)) {
			t.Fatalf("vertex %d: out=%d in=%d on undirected graph", v,
				g.OutDegree(graph.NodeID(v)), g.InDegree(graph.NodeID(v)))
		}
	}
}

// TestModelsAgreeEndToEnd runs both compute models through the full Runner
// on a real dataset and checks final values agree (exact for CC).
func TestModelsAgreeEndToEnd(t *testing.T) {
	spec := gen.MustDataset("talk", gen.ProfileTiny)
	var finals [2][]float64
	for i, model := range []compute.Model{compute.FS, compute.INC} {
		var pl *core.Pipeline
		_, err := core.Run(core.RunConfig{
			PipelineConfig: pipelineCfg("stinger", "cc", model),
			Dataset:        spec,
			Seed:           9,
			OnBatch:        func(_ int, _ graph.Batch, p *core.Pipeline, _ core.BatchLatency) { pl = p },
		})
		if err != nil {
			t.Fatal(err)
		}
		finals[i] = append([]float64(nil), pl.Values()...)
	}
	if len(finals[0]) != len(finals[1]) {
		t.Fatalf("value lengths differ: %d vs %d", len(finals[0]), len(finals[1]))
	}
	for v := range finals[0] {
		if finals[0][v] != finals[1][v] {
			t.Fatalf("vertex %d: FS=%v INC=%v", v, finals[0][v], finals[1][v])
		}
	}
}

func TestRunStreamValidation(t *testing.T) {
	cfg := core.StreamConfig{
		PipelineConfig: pipelineCfg("adjshared", "cc", compute.INC),
		Edges:          graph.Batch{{Src: 0, Dst: 1, Weight: 1}},
	}
	if _, err := core.RunStream(cfg); err == nil {
		t.Fatal("zero batch size should error")
	}
	cfg.BatchSize = 1
	cfg.Repeats = 2
	res, err := core.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchCount != 1 || len(res.Update) != 2 {
		t.Fatalf("BatchCount=%d repeats=%d", res.BatchCount, len(res.Update))
	}
}

func TestSeriesUnknownMetricErrors(t *testing.T) {
	res := &core.RunResult{Update: [][]float64{{1}}, Compute: [][]float64{{2}}}
	if _, err := res.Series(core.Metric("bogus"), 0); err == nil {
		t.Fatal("Series should error on an unknown metric")
	}
	if _, err := res.StageSummaries(core.Metric("bogus")); err == nil {
		t.Fatal("StageSummaries should error on an unknown metric")
	}
	if s, err := res.Series(core.MetricTotal, 0); err != nil || len(s) != 1 || s[0] != 3 {
		t.Fatalf("Series(total)=%v err=%v", s, err)
	}
}

func TestBatchLatencyTotal(t *testing.T) {
	l := core.BatchLatency{Update: 3, Compute: 4}
	if l.Total() != 7 {
		t.Fatalf("Total=%v", l.Total())
	}
}
