package core

import (
	"fmt"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// RunOverlappedStream measures a stream under the overlapped schedule that
// two-phase (log-structured) data structures enable: while batch i's
// compute phase reads the sealed topology, batch i+1's records are staged
// into the append-only logs; the seal happens at the join point. This is
// the "parallelize update and compute" execution model the paper cites as
// future work (Aspen/GraphOne family) — staging cost hides under the
// compute phase, so the effective batch latency is seal + compute instead
// of Equation 1's full update + compute.
//
// The returned RunResult's Update series holds the non-hidden ingest time
// (the seal, plus batch 0's staging which has nothing to hide under);
// Compute holds the compute phase. hidden reports the per-batch staging
// time that ran concurrently with the previous batch's compute.
func RunOverlappedStream(cfg StreamConfig) (res *RunResult, hidden []float64, err error) {
	if cfg.BatchSize <= 0 {
		return nil, nil, fmt.Errorf("core: batch size must be positive")
	}
	p, err := NewPipeline(cfg.PipelineConfig)
	if err != nil {
		return nil, nil, err
	}
	tc, ok := p.g.(*ds.TwoCopy)
	if !ok || !ds.SupportsTwoPhase(p.g) {
		return nil, nil, fmt.Errorf("core: data structure %q is not two-phase; overlap requires a log-structured store (e.g. graphone)", cfg.DataStructure)
	}
	batches := graph.Batches(cfg.Edges, cfg.BatchSize)
	res = &RunResult{BatchCount: len(batches)}
	upd := make([]float64, 0, len(batches))
	cmp := make([]float64, 0, len(batches))
	hidden = make([]float64, len(batches))

	if len(batches) > 0 {
		// Batch 0 has no compute phase to hide its staging under.
		t := time.Now()
		tc.StageBatch(batches[0])
		hidden[0] = 0
		stage0 := time.Since(t)
		upd = append(upd, stage0.Seconds()) // seal added below
	}
	for i := range batches {
		// One trace per batch here too: seal and the overlapped staging on
		// the coordinator track, compute (with its worker spans) published
		// concurrently from the compute goroutine — exactly the overlap the
		// Perfetto view is for.
		bt := p.tr.StartBatch(i)
		// Seal batch i (staged during the previous iteration's compute,
		// or just above for batch 0).
		ssp := bt.Start("seal")
		t0 := time.Now()
		tc.SealBatch()
		upd[i] += time.Since(t0).Seconds()
		ssp.End()

		// Compute on the sealed state of batch i...
		aff := p.affectedOf(batches[i])
		type computeResult struct {
			elapsed  time.Duration
			panicked any
		}
		computeDone := make(chan computeResult, 1)
		go func() {
			sp := bt.Start("compute")
			if te, ok := p.engine.(compute.Traceable); ok {
				te.SetTrace(sp.Ctx())
			}
			t := time.Now()
			defer func() {
				if r := recover(); r != nil {
					computeDone <- computeResult{panicked: r}
				}
			}()
			p.engine.PerformAlg(p.g, aff)
			sp.SetInt("affected", int64(len(aff)))
			sp.End()
			computeDone <- computeResult{elapsed: time.Since(t)}
		}()
		// ...while batch i+1 stages into the logs.
		if i+1 < len(batches) {
			stsp := bt.Start("stage.next")
			t := time.Now()
			tc.StageBatch(batches[i+1])
			hidden[i+1] = time.Since(t).Seconds()
			stsp.SetInt("edges", int64(len(batches[i+1])))
			stsp.End()
			upd = append(upd, 0) // its seal time lands next iteration
		}
		done := <-computeDone
		if done.panicked != nil {
			// Seal the trace with the cause before re-raising; the ring
			// keeps it for whoever dumps /trace post-mortem.
			if bt != nil {
				bt.SetStr("error", fmt.Sprint(done.panicked))
				bt.Finish()
			}
			// Re-raise on the caller so a poison batch is quarantined
			// instead of killing the process from a raw goroutine.
			panic(done.panicked)
		}
		cmp = append(cmp, done.elapsed.Seconds())
		bt.SetInt("edges", int64(len(batches[i])))
		bt.Finish()
	}
	res.Update = [][]float64{upd}
	res.Compute = [][]float64{cmp}
	return res, hidden, nil
}
