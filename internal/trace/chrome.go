package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file renders batch traces in the Chrome trace-event JSON format
// (the {"traceEvents": [...]} object form), which Perfetto and
// chrome://tracing load directly: open ui.perfetto.dev and drop the file
// in. Each batch becomes a complete ("X") event on the pipeline track
// (tid 0) enclosing its phase spans; per-worker range spans land on one
// track per worker slot (tid = worker+1) so stragglers inside a balanced
// round are visible as bar-length differences on adjacent tracks.

// chromeEvent is one trace-event record. Timestamps and durations are
// microseconds; float preserves the tracer's nanosecond resolution.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object form.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1 // one traced pipeline per dump

// WriteChrome renders the batch dumps as Chrome trace-event JSON.
func WriteChrome(w io.Writer, dumps []BatchDump) error {
	events := make([]chromeEvent, 0, 2+len(dumps)*8)
	maxWorker := int32(-1)
	for _, d := range dumps {
		baseUS := float64(d.StartUnixNS) / 1e3
		args := map[string]any{
			"seq":   d.Seq,
			"ds":    d.DS,
			"alg":   d.Alg,
			"model": d.Model,
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.value()
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("batch %d", d.Index),
			Cat:  "batch",
			Ph:   "X",
			TS:   baseUS,
			Dur:  float64(d.DurNS) / 1e3,
			PID:  chromePID,
			TID:  0,
			Args: args,
		})
		for _, s := range d.Spans {
			tid := 0
			if s.Worker >= 0 {
				tid = int(s.Worker) + 1
				if s.Worker > maxWorker {
					maxWorker = s.Worker
				}
			}
			var sargs map[string]any
			if len(s.Attrs) > 0 || s.Parent >= 0 {
				sargs = make(map[string]any, len(s.Attrs)+2)
				sargs["span"] = s.ID
				if s.Parent >= 0 {
					sargs["parent"] = s.Parent
				}
				for _, a := range s.Attrs {
					sargs[a.Key] = a.value()
				}
			}
			events = append(events, chromeEvent{
				Name: s.Stage,
				Cat:  "span",
				Ph:   "X",
				TS:   baseUS + float64(s.StartNS)/1e3,
				Dur:  float64(s.EndNS-s.StartNS) / 1e3,
				PID:  chromePID,
				TID:  tid,
				Args: sargs,
			})
		}
	}
	// Stable event order: by start time, then track.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].TID < events[j].TID
	})
	// Track-name metadata leads the stream.
	meta := []chromeEvent{{
		Name: "thread_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "pipeline"},
	}}
	for w := int32(0); w <= maxWorker; w++ {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: int(w) + 1,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	})
}
