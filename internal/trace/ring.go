package trace

import (
	"sort"
	"sync/atomic"
)

// FlightRecorder is a lock-free ring of the most recent complete batch
// traces. Writers claim a slot with one atomic fetch-add and publish the
// finished *Batch with one atomic pointer store; a dump reads the slots
// with atomic loads, so concurrent writers and dumpers never block each
// other (the dump may observe a ring mid-overwrite, in which case it
// simply returns the newest consistent set of batches).
type FlightRecorder struct {
	slots []atomic.Pointer[Batch]
	pos   atomic.Uint64
}

// NewFlightRecorder builds a ring holding the last n complete traces.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 16
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[Batch], n)}
}

// Cap reports the ring capacity in batch traces.
func (r *FlightRecorder) Cap() int { return len(r.slots) }

// Recorded reports the number of traces ever added (not the current
// occupancy, which is min(Recorded, Cap)).
func (r *FlightRecorder) Recorded() uint64 { return r.pos.Load() }

// add publishes one finished batch trace, evicting the oldest when full.
func (r *FlightRecorder) add(b *Batch) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(b)
}

// Snapshot returns the ring's current batch dumps ordered by trace
// sequence (oldest first). It is safe to call while batches are being
// added.
func (r *FlightRecorder) Snapshot() []BatchDump {
	out := make([]BatchDump, 0, len(r.slots))
	for i := range r.slots {
		if b := r.slots[i].Load(); b != nil {
			out = append(out, b.Dump())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
