// Package trace is the batch-granular structured tracer of the pipeline:
// every processed batch records a span tree — ingest, update, compute-view
// refresh, compute rounds with per-worker range spans, WAL append/fsync,
// checkpoint — with monotonic timestamps and typed attributes (batch
// sequence, dirty fraction, triggered counts, ...). Complete batch traces
// land in a lock-free flight-recorder ring (ring.go) holding the last N
// batches, which is dumped as Chrome trace-event JSON (chrome.go,
// Perfetto-loadable) on poison-batch quarantine, on demand via the
// telemetry server's /trace endpoint, and at process exit; a JSONL stream
// sink (jsonl.go) can additionally persist every finished trace.
//
// The tracer is nil-safe and allocation-free when disabled: a nil *Tracer
// produces nil *Batch handles and zero Span/Ctx values, and every method
// on those no-ops without touching the clock or the heap — the batch hot
// loop pays nothing when tracing is off (asserted by
// TestDisabledTracerZeroAllocs).
//
// The tracer deliberately reads the wall/monotonic clock — timestamps are
// its entire product — so the package is NOT marked saga:deterministic;
// trace output never feeds replayed state, values, or frontier order.
//
// saga:paniccapture — the package spawns no goroutines today, and any it
// grows must capture panics (enforced by sagavet; see internal/analysis).
package trace

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects the tracer's identity and outputs.
type Config struct {
	// DS, Alg, Model identify the traced pipeline; they are stamped on
	// every batch trace and become pprof label values.
	DS    string
	Alg   string
	Model string
	// Flight is the flight-recorder ring capacity in complete batch
	// traces (default 16).
	Flight int
	// Spans, when non-nil, receives every finished batch trace as one
	// JSONL line (see NewSink).
	Spans *Sink
	// PprofLabels propagates batch/stage/ds/alg pprof labels around the
	// pipeline phases, so CPU profiles from the telemetry endpoint
	// attribute samples to pipeline stages.
	PprofLabels bool
}

// Tracer owns the flight recorder and span sinks of one pipeline. A nil
// *Tracer is a valid disabled tracer.
type Tracer struct {
	cfg  Config
	ring *FlightRecorder
	seq  atomic.Uint64
}

// New builds an enabled tracer.
func New(cfg Config) *Tracer {
	if cfg.Flight <= 0 {
		cfg.Flight = 16
	}
	return &Tracer{cfg: cfg, ring: NewFlightRecorder(cfg.Flight)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// PprofLabels reports whether pipeline phases should run under pprof
// labels (false for a disabled tracer).
func (t *Tracer) PprofLabels() bool { return t != nil && t.cfg.PprofLabels }

// Flight exposes the flight-recorder ring (nil for a disabled tracer).
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.ring
}

// StartBatch opens the span tree of one batch. index is the caller's
// batch counter; the tracer assigns its own monotone sequence number so
// restarts and repeats stay distinguishable in the ring.
func (t *Tracer) StartBatch(index int) *Batch {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Batch{
		tr:        t,
		Seq:       t.seq.Add(1),
		Index:     index,
		DS:        t.cfg.DS,
		Alg:       t.cfg.Alg,
		Model:     t.cfg.Model,
		WallStart: now,
		start:     now,
		spans:     make([]SpanRecord, 0, 16),
	}
}

// WriteTrace renders the flight-recorder ring as Chrome trace-event JSON
// (it implements telemetry.TraceSource, serving the /trace endpoint).
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: disabled tracer has no flight recorder")
	}
	return WriteChrome(w, t.ring.Snapshot())
}

// DumpChromeFile writes the flight-recorder ring to path as Chrome
// trace-event JSON (the automatic dump target for panics and poison-batch
// quarantines).
func (t *Tracer) DumpChromeFile(path string) error {
	if t == nil {
		return fmt.Errorf("trace: disabled tracer has no flight recorder")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChrome(f, t.ring.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Attr is one typed span or batch attribute. Exactly one of Int, Float,
// Str is meaningful; constructors set the matching field and JSON keeps
// whichever is non-zero.
type Attr struct {
	Key   string  `json:"k"`
	Int   int64   `json:"i,omitempty"`
	Float float64 `json:"f,omitempty"`
	Str   string  `json:"s,omitempty"`
}

// value renders the attribute for Chrome args.
func (a Attr) value() any {
	switch {
	case a.Str != "":
		return a.Str
	case a.Float != 0:
		return a.Float
	default:
		return a.Int
	}
}

// SpanRecord is one completed span as stored in a batch trace. Times are
// monotonic nanosecond offsets from the batch start.
type SpanRecord struct {
	ID      int32  `json:"id"`
	Parent  int32  `json:"parent"` // -1 for phase (root-level) spans
	Worker  int32  `json:"worker"` // -1 for coordinator spans
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Batch is the in-flight span tree of one batch. Span handles append to
// it concurrently (per-worker range spans); Finish publishes it to the
// flight recorder and sinks, after which it must not be mutated.
type Batch struct {
	Seq       uint64
	Index     int
	DS        string
	Alg       string
	Model     string
	WallStart time.Time

	tr    *Tracer
	start time.Time // monotonic base for span offsets

	mu sync.Mutex
	// saga:guardedby mu
	spans []SpanRecord
	// saga:guardedby mu
	attrs  []Attr
	nextID atomic.Int32
	endNS  int64
	done   atomic.Bool
}

// sinceNS is the monotonic offset of now from the batch start.
func (b *Batch) sinceNS() int64 { return int64(time.Since(b.start)) }

// Ctx returns the root span context of the batch: child spans started
// from it become phase spans (parent -1). Nil-safe.
func (b *Batch) Ctx() Ctx {
	if b == nil {
		return Ctx{}
	}
	return Ctx{b: b, parent: -1}
}

// Start opens a phase span (parent -1, no worker). Nil-safe.
func (b *Batch) Start(stage string) Span { return b.Ctx().Start(stage) }

// SetInt attaches an integer batch attribute (batch seq, frontier size,
// triggered count, ...). Nil-safe.
func (b *Batch) SetInt(key string, v int64) { b.setAttr(Attr{Key: key, Int: v}) }

// SetFloat attaches a float batch attribute (dirty fraction, ...).
func (b *Batch) SetFloat(key string, v float64) { b.setAttr(Attr{Key: key, Float: v}) }

// SetStr attaches a string batch attribute (quarantine cause, ...).
func (b *Batch) SetStr(key, v string) { b.setAttr(Attr{Key: key, Str: v}) }

func (b *Batch) setAttr(a Attr) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.attrs = append(b.attrs, a)
	b.mu.Unlock()
}

// Finish seals the trace and publishes it to the flight recorder and the
// span sink. Safe to call more than once (later calls no-op) and on nil.
func (b *Batch) Finish() {
	if b == nil || !b.done.CompareAndSwap(false, true) {
		return
	}
	b.mu.Lock()
	b.endNS = b.sinceNS()
	b.mu.Unlock()
	t := b.tr
	t.ring.add(b)
	if t.cfg.Spans != nil {
		// The sink's first error is sticky; a dead sink must not stall
		// the pipeline.
		_ = t.cfg.Spans.WriteBatch(b)
	}
}

// Ctx addresses a position in a batch's span tree: spans started through
// it become children of parent. The zero Ctx is disabled; every method
// no-ops without allocating.
type Ctx struct {
	b      *Batch
	parent int32
}

// Enabled reports whether spans started from this context are recorded.
func (c Ctx) Enabled() bool { return c.b != nil }

// Start opens a child span.
func (c Ctx) Start(stage string) Span { return c.open(stage, -1) }

// Worker opens a child span attributed to worker slot w (a per-range
// worker span inside a parallel round).
func (c Ctx) Worker(stage string, w int) Span { return c.open(stage, int32(w)) }

func (c Ctx) open(stage string, worker int32) Span {
	if c.b == nil {
		return Span{}
	}
	return Span{
		b:       c.b,
		id:      c.b.nextID.Add(1) - 1,
		parent:  c.parent,
		worker:  worker,
		stage:   stage,
		startNS: c.b.sinceNS(),
	}
}

// maxInlineAttrs bounds per-span attributes: they live inline in the Span
// handle so an active span never mutates shared memory.
const maxInlineAttrs = 6

// Span is a live span handle. It is a value: all state stays local to the
// opening goroutine until End publishes the completed record, so worker
// spans race neither with each other nor with a concurrent dump. The zero
// Span is disabled.
type Span struct {
	b       *Batch
	id      int32
	parent  int32
	worker  int32
	nattrs  int8
	stage   string
	startNS int64
	attrs   [maxInlineAttrs]Attr
}

// Ctx returns the context for children of this span.
func (s *Span) Ctx() Ctx {
	if s.b == nil {
		return Ctx{}
	}
	return Ctx{b: s.b, parent: s.id}
}

// SetInt attaches an integer attribute (dropped beyond the inline
// capacity; spans carry a handful of scalars, not payloads).
func (s *Span) SetInt(key string, v int64) { s.setAttr(Attr{Key: key, Int: v}) }

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) { s.setAttr(Attr{Key: key, Float: v}) }

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) { s.setAttr(Attr{Key: key, Str: v}) }

func (s *Span) setAttr(a Attr) {
	if s.b == nil || int(s.nattrs) >= maxInlineAttrs {
		return
	}
	s.attrs[s.nattrs] = a
	s.nattrs++
}

// End closes the span and publishes its record to the batch trace.
func (s *Span) End() {
	if s.b == nil {
		return
	}
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Worker:  s.worker,
		Stage:   s.stage,
		StartNS: s.startNS,
		EndNS:   s.b.sinceNS(),
	}
	if s.nattrs > 0 {
		rec.Attrs = append([]Attr(nil), s.attrs[:s.nattrs]...)
	}
	s.b.mu.Lock()
	s.b.spans = append(s.b.spans, rec)
	s.b.mu.Unlock()
	s.b = nil // a second End must not double-record
}
