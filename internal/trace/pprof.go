package trace

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// LabelDo runs f under pprof labels identifying the pipeline stage:
// batch/stage/ds/alg/model. CPU profiles captured from the telemetry
// endpoint's /debug/pprof/profile then attribute samples to pipeline
// stages (`go tool pprof -tagfocus stage=compute ...`), closing the gap
// between "the process was busy" and "batch 1041's update phase was
// busy".
//
// Callers must branch on PprofLabels() before building the closure — the
// disabled path must not pay the closure allocation:
//
//	if p.tr.PprofLabels() {
//		p.tr.LabelDo(bt.Seq, "update", func() { ... })
//	} else {
//		... // same body, un-labeled
//	}
func (t *Tracer) LabelDo(batchSeq uint64, stage string, f func()) {
	if t == nil {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(
		"batch", strconv.FormatUint(batchSeq, 10),
		"stage", stage,
		"ds", t.cfg.DS,
		"alg", t.cfg.Alg,
		"model", t.cfg.Model,
	), func(context.Context) { f() })
}
