package trace

import (
	"encoding/json"
	"io"
	"sort"

	"sagabench/internal/telemetry"
)

// BatchDump is the immutable wire form of one batch trace: what the JSONL
// span stream carries per line, what ReadDumps decodes, and what the
// Chrome exporter renders. Span times are monotonic nanosecond offsets
// from StartUnixNS.
type BatchDump struct {
	Seq         uint64       `json:"seq"`
	Index       int          `json:"batch"`
	DS          string       `json:"ds,omitempty"`
	Alg         string       `json:"alg,omitempty"`
	Model       string       `json:"model,omitempty"`
	StartUnixNS int64        `json:"ts_ns"`
	DurNS       int64        `json:"dur_ns"`
	Attrs       []Attr       `json:"attrs,omitempty"`
	Spans       []SpanRecord `json:"spans"`
}

// Dump snapshots the batch trace. Spans are ordered by (StartNS, ID) so
// the output is stable regardless of which worker's End ran first.
func (b *Batch) Dump() BatchDump {
	b.mu.Lock()
	d := BatchDump{
		Seq:         b.Seq,
		Index:       b.Index,
		DS:          b.DS,
		Alg:         b.Alg,
		Model:       b.Model,
		StartUnixNS: b.WallStart.UnixNano(),
		DurNS:       b.endNS,
		Attrs:       append([]Attr(nil), b.attrs...),
		Spans:       append([]SpanRecord(nil), b.spans...),
	}
	b.mu.Unlock()
	if d.DurNS == 0 {
		// Dumped mid-flight (e.g. /trace during a long batch): report
		// elapsed-so-far rather than a zero-width batch.
		d.DurNS = b.sinceNS()
	}
	sort.Slice(d.Spans, func(i, j int) bool {
		if d.Spans[i].StartNS != d.Spans[j].StartNS {
			return d.Spans[i].StartNS < d.Spans[j].StartNS
		}
		return d.Spans[i].ID < d.Spans[j].ID
	})
	if len(d.Attrs) == 0 {
		d.Attrs = nil
	}
	return d
}

// Sink streams finished batch traces as JSONL, one BatchDump per line, on
// top of the telemetry package's concurrent line-sink machinery.
type Sink struct {
	ls *telemetry.LineSink
}

// NewSink wraps w. If w is also an io.Closer, Close closes it after
// flushing.
func NewSink(w io.Writer) *Sink { return &Sink{ls: telemetry.NewLineSink(w)} }

// WriteBatch appends one batch trace line. The first encode error is
// sticky and returned by every later call.
func (s *Sink) WriteBatch(b *Batch) error {
	d := b.Dump()
	return s.ls.Encode(&d)
}

// WriteDump appends an already-snapshotted trace line.
func (s *Sink) WriteDump(d BatchDump) error { return s.ls.Encode(&d) }

// Count reports the number of traces written so far.
func (s *Sink) Count() uint64 { return s.ls.Count() }

// Flush drains the buffer to the underlying writer.
func (s *Sink) Flush() error { return s.ls.Flush() }

// Close flushes and closes the underlying writer if it is closable.
func (s *Sink) Close() error { return s.ls.Close() }

// ReadDumps decodes a JSONL trace stream back into batch dumps (the
// inverse of Sink for tooling and tests).
func ReadDumps(r io.Reader) ([]BatchDump, error) {
	dec := json.NewDecoder(r)
	var out []BatchDump
	for {
		var d BatchDump
		if err := dec.Decode(&d); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, d)
	}
}
