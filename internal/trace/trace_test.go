package trace_test

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"

	"sagabench/internal/trace"
)

// TestNilTracerSafe checks the whole disabled surface: a nil tracer, the
// nil batch it produces, and the zero Ctx/Span values must all no-op.
func TestNilTracerSafe(t *testing.T) {
	var tr *trace.Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.PprofLabels() {
		t.Fatal("nil tracer reports pprof labels")
	}
	if tr.Flight() != nil {
		t.Fatal("nil tracer has a flight recorder")
	}
	b := tr.StartBatch(0)
	if b != nil {
		t.Fatal("nil tracer produced a batch")
	}
	b.SetInt("k", 1)
	b.SetFloat("k", 1)
	b.SetStr("k", "v")
	sp := b.Start("stage")
	sp.SetInt("k", 1)
	child := sp.Ctx().Worker("w", 3)
	child.SetStr("k", "v")
	child.End()
	sp.End()
	b.Finish()
	if ctx := b.Ctx(); ctx.Enabled() {
		t.Fatal("nil batch context enabled")
	}
	if err := tr.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer WriteTrace must error")
	}
	ran := false
	tr.LabelDo(1, "update", func() { ran = true })
	if !ran {
		t.Fatal("nil tracer LabelDo must still run f")
	}
}

// TestDisabledTracerZeroAllocs asserts the batch hot loop pays zero
// allocations for trace hooks when tracing is off — the contract the
// pipeline relies on to leave the tracer compiled in unconditionally.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *trace.Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		b := tr.StartBatch(7)
		sp := b.Start("update")
		sp.SetInt("edges", 1000)
		sp.End()
		csp := b.Start("compute")
		ctx := csp.Ctx()
		for w := 0; w < 4; w++ {
			wsp := ctx.Worker("round", w)
			wsp.SetInt("vertices", 128)
			wsp.End()
		}
		csp.End()
		b.SetFloat("straggler", 1.2)
		b.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer hot loop allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestBatchTraceRoundTrip records a realistic span tree, streams it
// through the JSONL sink, decodes it back, and checks structure and
// attributes survive.
func TestBatchTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := trace.NewSink(&buf)
	tr := trace.New(trace.Config{DS: "adjshared", Alg: "pr", Model: "inc", Flight: 4, Spans: sink})

	b := tr.StartBatch(3)
	up := b.Start("update")
	up.SetInt("edges", 500)
	up.End()
	cp := b.Start("compute")
	ctx := cp.Ctx()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := ctx.Worker("inc.round", w)
			sp.SetInt("vertices", int64(10*w))
			sp.End()
		}(w)
	}
	wg.Wait()
	cp.SetInt("iterations", 2)
	cp.End()
	b.SetFloat("straggler", 1.5)
	b.Finish()

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	dumps, err := trace.ReadDumps(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 {
		t.Fatalf("decoded %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Seq != 1 || d.Index != 3 || d.DS != "adjshared" || d.Alg != "pr" || d.Model != "inc" {
		t.Fatalf("dump header %+v", d)
	}
	if d.DurNS <= 0 {
		t.Fatalf("dur_ns %d, want > 0", d.DurNS)
	}
	if len(d.Spans) != 5 {
		t.Fatalf("got %d spans, want 5 (update, compute, 3 workers)", len(d.Spans))
	}
	byStage := map[string][]trace.SpanRecord{}
	for _, s := range d.Spans {
		byStage[s.Stage] = append(byStage[s.Stage], s)
		if s.EndNS < s.StartNS {
			t.Fatalf("span %q ends before it starts: %+v", s.Stage, s)
		}
	}
	compute := byStage["compute"]
	if len(compute) != 1 || compute[0].Parent != -1 || compute[0].Worker != -1 {
		t.Fatalf("compute span %+v", compute)
	}
	workers := byStage["inc.round"]
	if len(workers) != 3 {
		t.Fatalf("got %d worker spans, want 3", len(workers))
	}
	seen := map[int32]bool{}
	for _, s := range workers {
		if s.Parent != compute[0].ID {
			t.Fatalf("worker span parent %d, want compute id %d", s.Parent, compute[0].ID)
		}
		seen[s.Worker] = true
	}
	if len(seen) != 3 {
		t.Fatalf("worker slots %v, want 3 distinct", seen)
	}
	var straggler float64
	for _, a := range d.Attrs {
		if a.Key == "straggler" {
			straggler = a.Float
		}
	}
	if straggler != 1.5 {
		t.Fatalf("straggler attr %v, want 1.5", straggler)
	}
}

// TestFlightRecorderEviction fills the ring past capacity and checks the
// snapshot holds exactly the newest Cap traces in sequence order.
func TestFlightRecorderEviction(t *testing.T) {
	tr := trace.New(trace.Config{Flight: 4})
	for i := 0; i < 10; i++ {
		tr.StartBatch(i).Finish()
	}
	ring := tr.Flight()
	if ring.Cap() != 4 || ring.Recorded() != 10 {
		t.Fatalf("cap %d recorded %d, want 4/10", ring.Cap(), ring.Recorded())
	}
	snap := ring.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d traces, want 4", len(snap))
	}
	for i, d := range snap {
		if want := uint64(7 + i); d.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (newest 4, oldest first)", i, d.Seq, want)
		}
	}
}

// TestFlightRecorderConcurrent hammers the ring with concurrent batch
// writers (each publishing worker spans) while dumping snapshots; run
// under -race this is the data-race proof for the lock-free design.
func TestFlightRecorderConcurrent(t *testing.T) {
	tr := trace.New(trace.Config{Flight: 8})
	const writers, perWriter = 4, 50
	stop := make(chan struct{})
	dumperDone := make(chan struct{})
	go func() { // concurrent dumper
		defer close(dumperDone)
		for {
			for _, d := range tr.Flight().Snapshot() {
				if d.DurNS < 0 {
					t.Error("negative duration in concurrent snapshot")
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				b := tr.StartBatch(i)
				sp := b.Start("compute")
				ctx := sp.Ctx()
				var inner sync.WaitGroup
				for w := 0; w < 2; w++ {
					inner.Add(1)
					go func(w int) {
						defer inner.Done()
						ws := ctx.Worker("round", w)
						ws.SetInt("w", int64(w))
						ws.End()
					}(w)
				}
				inner.Wait()
				sp.End()
				b.Finish()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-dumperDone
	if got := tr.Flight().Recorded(); got != writers*perWriter {
		t.Fatalf("recorded %d traces, want %d", got, writers*perWriter)
	}
	if snap := tr.Flight().Snapshot(); len(snap) != 8 {
		t.Fatalf("final snapshot holds %d traces, want 8 (ring capacity)", len(snap))
	}
}

// TestWriteChrome checks the exporter emits valid Chrome trace-event JSON
// with per-worker tracks and thread-name metadata — the Perfetto loading
// contract.
func TestWriteChrome(t *testing.T) {
	tr := trace.New(trace.Config{DS: "dah", Alg: "bfs", Model: "fs", Flight: 2})
	b := tr.StartBatch(0)
	sp := b.Start("compute")
	w0 := sp.Ctx().Worker("fs.bfs.topdown", 0)
	w0.End()
	w1 := sp.Ctx().Worker("fs.bfs.topdown", 1)
	w1.End()
	sp.End()
	b.Finish()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	var metas, batches, spans int
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event %q", ev.Name)
			}
		case "X":
			tids[ev.TID] = true
			if strings.HasPrefix(ev.Name, "batch ") {
				batches++
				if ev.Args["ds"] != "dah" || ev.Args["alg"] != "bfs" {
					t.Fatalf("batch args %v", ev.Args)
				}
			} else {
				spans++
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// Tracks: pipeline (0) + workers 0,1 (tids 1,2); metadata names all 3.
	if metas != 3 {
		t.Fatalf("%d thread_name metadata events, want 3", metas)
	}
	if batches != 1 || spans != 3 {
		t.Fatalf("batches=%d spans=%d, want 1/3", batches, spans)
	}
	for _, tid := range []int{0, 1, 2} {
		if !tids[tid] {
			t.Fatalf("no events on tid %d (tracks %v)", tid, tids)
		}
	}
}

// TestDumpChromeFile writes the ring to a file and re-parses it.
func TestDumpChromeFile(t *testing.T) {
	tr := trace.New(trace.Config{Flight: 2})
	tr.StartBatch(0).Finish()
	path := t.TempDir() + "/trace.json"
	if err := tr.DumpChromeFile(path); err != nil {
		t.Fatal(err)
	}
	dumps, err := readChromeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dumps == 0 {
		t.Fatal("dumped file holds no trace events")
	}
}

// BenchmarkDisabledTraceHotLoop measures the per-batch cost of the trace
// hooks with tracing off; the companion test asserts 0 allocs/op, this
// reports the time cost (a handful of nil checks).
func BenchmarkDisabledTraceHotLoop(bm *testing.B) {
	var tr *trace.Tracer
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		b := tr.StartBatch(i)
		sp := b.Start("update")
		sp.SetInt("edges", 1000)
		sp.End()
		csp := b.Start("compute")
		ctx := csp.Ctx()
		for w := 0; w < 8; w++ {
			wsp := ctx.Worker("round", w)
			wsp.SetInt("vertices", 128)
			wsp.End()
		}
		csp.End()
		b.Finish()
	}
}

// BenchmarkEnabledTrace measures the full per-batch recording cost with
// an 8-worker round, for the overhead table in EXPERIMENTS.md.
func BenchmarkEnabledTrace(bm *testing.B) {
	tr := trace.New(trace.Config{DS: "adjshared", Alg: "pr", Model: "inc", Flight: 16})
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		b := tr.StartBatch(i)
		sp := b.Start("update")
		sp.SetInt("edges", 1000)
		sp.End()
		csp := b.Start("compute")
		ctx := csp.Ctx()
		for w := 0; w < 8; w++ {
			wsp := ctx.Worker("round", w)
			wsp.SetInt("vertices", 128)
			wsp.End()
		}
		csp.End()
		b.Finish()
	}
}

// readChromeFile counts trace events in a Chrome JSON file.
func readChromeFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, err
	}
	return len(doc.TraceEvents), nil
}
