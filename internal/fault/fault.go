// Package fault is the I/O fault-injection layer of the supervised
// pipeline runtime. Where internal/durable's CrashPoint hooks simulate the
// process dying, this package simulates the disk misbehaving while the
// process lives: slow fsyncs, ENOSPC mid-segment, EIO on a checkpoint
// rename, short writes that tear a record, and stuck syscalls that stall a
// phase long enough for a watchdog to fire. The WAL and checkpoint writers
// consult an Injector immediately before each real operation; a returned
// error is handled exactly as if the operation itself had failed, so the
// retry, degraded-mode, and supervision machinery above is exercised
// against the same code paths a real fault would take.
//
// The Schedule implementation is seed-deterministic: the same spec, seed,
// and operation sequence produce the same injections, so chaos soaks are
// replayable (see internal/crashloop and the CI chaos job).
//
// saga:durable — discarded errors here would hide injected faults from the
// layer under test (enforced by sagavet's errcheck-durable).
// saga:paniccapture — goroutines must capture panics (enforced by
// sagavet; the package currently starts none, the marker keeps it that
// way).
package fault

import (
	"errors"
	"fmt"
	"syscall"
)

// Op identifies one injectable operation point. The durable layer consults
// the injector with the wal-*/ckpt-* ops; the core pipeline consults it at
// phase boundaries with update/compute/publish.
type Op string

// The registered operation points.
const (
	// OpWALAppend fires before a WAL record write.
	OpWALAppend Op = "wal-append"
	// OpWALFsync fires before a WAL fsync (policy-driven, forced, or
	// rotation/close flushes).
	OpWALFsync Op = "wal-fsync"
	// OpWALCreate fires before a new WAL segment file is created.
	OpWALCreate Op = "wal-create"
	// OpCkptWrite fires before the checkpoint temp file is written.
	OpCkptWrite Op = "ckpt-write"
	// OpCkptSync fires before the checkpoint temp file is fsynced.
	OpCkptSync Op = "ckpt-sync"
	// OpCkptRename fires before the checkpoint's atomic rename.
	OpCkptRename Op = "ckpt-rename"
	// OpUpdate fires at the start of the pipeline's update phase.
	OpUpdate Op = "update"
	// OpCompute fires at the start of the pipeline's compute phase.
	OpCompute Op = "compute"
	// OpPublish fires at the start of epoch-snapshot publication.
	OpPublish Op = "publish"
)

// Ops lists every registered operation point (the spec parser validates
// against it).
var Ops = []Op{
	OpWALAppend, OpWALFsync, OpWALCreate,
	OpCkptWrite, OpCkptSync, OpCkptRename,
	OpUpdate, OpCompute, OpPublish,
}

// Injector is consulted immediately before an injectable operation. A nil
// return lets the operation proceed; a non-nil error is treated by the
// caller as the operation failing with that error. Implementations apply
// stalls and slow-downs internally (by sleeping) before returning.
// Implementations must be safe for concurrent use.
type Injector interface {
	Inject(op Op) error
}

// Inject consults inj, treating nil as the no-fault injector — the
// convenience guard every call site uses so the disabled path costs one
// nil check.
func Inject(inj Injector, op Op) error {
	if inj == nil {
		return nil
	}
	return inj.Inject(op)
}

// ErrShortWrite marks an injected short write: the caller is expected to
// write a truncated prefix of its buffer (tearing the record the way a
// real partial write would) and then fail with this error, so recovery's
// torn-tail handling sees a genuinely torn file.
var ErrShortWrite = errors.New("fault: injected short write")

// InjectedError is the error surfaced for an injected fault. It wraps the
// simulated errno (or ErrShortWrite), so errors.Is against syscall.ENOSPC,
// syscall.EIO, and friends classifies injected faults exactly like real
// ones.
type InjectedError struct {
	// Op is the operation point the fault fired at.
	Op Op
	// Kind is the rule kind that fired ("enospc", "eio", "short").
	Kind string
	// Occurrence is the 1-based count of Op at fire time.
	Occurrence uint64
	// Err is the simulated underlying error.
	Err error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s at %s (occurrence %d): %v", e.Kind, e.Op, e.Occurrence, e.Err)
}

// Unwrap exposes the simulated errno for errors.Is classification.
func (e *InjectedError) Unwrap() error { return e.Err }

// IsInjected reports whether err (anywhere in its chain) was produced by
// an Injector — the chaos harness uses it to tell injected faults from
// real environmental failures.
//
// saga:classifier
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// errnoFor maps a rule kind to the errno it simulates.
func errnoFor(kind string) error {
	switch kind {
	case "enospc":
		return syscall.ENOSPC
	case "eio":
		return syscall.EIO
	case "short":
		return ErrShortWrite
	}
	return fmt.Errorf("fault: unknown error kind %q", kind)
}
