package fault

import (
	"errors"
	"fmt"
	"reflect"
	"syscall"
	"testing"
	"time"
)

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		spec    string
		want    string // round-tripped String(), "" for nil schedule
		wantErr bool
	}{
		{spec: "", want: ""},
		{spec: "  ;; ", wantErr: true},
		{spec: "slow(wal-fsync,0.3,200us)", want: "slow(wal-fsync,0.3,200µs)"},
		{spec: "slow(fsync,0.3,200us)", want: "slow(wal-fsync,0.3,200µs)"},
		{spec: "enospc(append,5)", want: "enospc(wal-append,5)"},
		{spec: "eio(ckpt-rename,2)", want: "eio(ckpt-rename,2)"},
		{spec: "short(wal-append,3)", want: "short(wal-append,3)"},
		{spec: "stall(compute,8,300ms)", want: "stall(compute,8,300ms)"},
		{
			spec: "slow(wal-fsync,0.5,1ms); enospc(wal-fsync,12) ;stall(compute,8,300ms)",
			want: "slow(wal-fsync,0.5,1ms);enospc(wal-fsync,12);stall(compute,8,300ms)",
		},
		{spec: "explode(wal-append,1)", wantErr: true},
		{spec: "enospc(no-such-op,1)", wantErr: true},
		{spec: "enospc(wal-append,0)", wantErr: true},
		{spec: "enospc(wal-append,-3)", wantErr: true},
		{spec: "enospc(wal-append)", wantErr: true},
		{spec: "slow(wal-append,1.5,1ms)", wantErr: true},
		{spec: "slow(wal-append,0,1ms)", wantErr: true},
		{spec: "slow(wal-append,0.5,-1ms)", wantErr: true},
		{spec: "stall(compute,1,banana)", wantErr: true},
		{spec: "stall compute 1 1ms", wantErr: true},
	}
	for _, tc := range cases {
		s, err := ParseSchedule(tc.spec, 42)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSchedule(%q): want error, got %v", tc.spec, s)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", tc.spec, err)
			continue
		}
		if got := s.String(); got != tc.want {
			t.Errorf("ParseSchedule(%q).String() = %q, want %q", tc.spec, got, tc.want)
		}
	}
}

func TestScheduleCountedRules(t *testing.T) {
	s := MustParseSchedule("eio(wal-append,3);enospc(wal-fsync,2);short(wal-append,5)", 1)
	var errs []string
	for i := 0; i < 6; i++ {
		if err := s.Inject(OpWALAppend); err != nil {
			errs = append(errs, fmt.Sprintf("append#%d:%v", i+1, err))
			if i+1 == 3 && !errors.Is(err, syscall.EIO) {
				t.Errorf("append occurrence 3: want EIO, got %v", err)
			}
			if i+1 == 5 && !errors.Is(err, ErrShortWrite) {
				t.Errorf("append occurrence 5: want ErrShortWrite, got %v", err)
			}
			if !IsInjected(err) {
				t.Errorf("injected error not recognized by IsInjected: %v", err)
			}
		}
	}
	if len(errs) != 2 {
		t.Fatalf("want 2 append faults (occurrences 3 and 5), got %v", errs)
	}
	if err := s.Inject(OpWALFsync); err != nil {
		t.Fatalf("fsync occurrence 1 should pass, got %v", err)
	}
	err := s.Inject(OpWALFsync)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("fsync occurrence 2: want ENOSPC, got %v", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Op != OpWALFsync || ie.Occurrence != 2 || ie.Kind != "enospc" {
		t.Fatalf("InjectedError fields wrong: %+v", ie)
	}
	// Other ops are untouched.
	for i := 0; i < 10; i++ {
		if err := s.Inject(OpCompute); err != nil {
			t.Fatalf("compute should never fault, got %v", err)
		}
	}
}

func TestScheduleDeterministicDraws(t *testing.T) {
	run := func(seed int64) []Injection {
		s := MustParseSchedule("slow(wal-fsync,0.5,1us)", seed)
		s.SetSleep(func(time.Duration) {})
		for i := 0; i < 200; i++ {
			if err := s.Inject(OpWALFsync); err != nil {
				t.Fatalf("slow rule must not error: %v", err)
			}
		}
		return s.Injections()
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %d vs %d injections", len(a), len(b))
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.5 over 200 draws fired %d times; draws look degenerate", len(a))
	}
	c := run(8)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical injection logs (%d fires)", len(a))
	}
}

func TestScheduleStallUsesSleeper(t *testing.T) {
	s := MustParseSchedule("stall(compute,2,250ms)", 1)
	var slept []time.Duration
	s.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	for i := 0; i < 3; i++ {
		if err := s.Inject(OpCompute); err != nil {
			t.Fatalf("stall must not error: %v", err)
		}
	}
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Fatalf("want one 250ms sleep at occurrence 2, got %v", slept)
	}
	inj := s.Injections()
	if len(inj) != 1 || inj[0].Occurrence != 2 || inj[0].Delay != 250*time.Millisecond {
		t.Fatalf("injection log wrong: %+v", inj)
	}
}

func TestScheduleOffset(t *testing.T) {
	base := MustParseSchedule("enospc(wal-append,2);slow(wal-fsync,0.5,1us)", 3)
	shifted := base.Offset(10)
	for i := 0; i < 11; i++ {
		if err := shifted.Inject(OpWALAppend); err != nil {
			t.Fatalf("append occurrence %d should pass after Offset(10), got %v", i+1, err)
		}
	}
	if err := shifted.Inject(OpWALAppend); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append occurrence 12: want ENOSPC, got %v", err)
	}
	// Offset copies: the base schedule still fires at 2.
	if err := base.Inject(OpWALAppend); err != nil {
		t.Fatalf("base occurrence 1 should pass, got %v", err)
	}
	if err := base.Inject(OpWALAppend); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("base occurrence 2: want ENOSPC, got %v", err)
	}
}

func TestScheduleSummary(t *testing.T) {
	s := MustParseSchedule("eio(wal-append,1);eio(wal-append,2)", 1)
	for i := 0; i < 2; i++ {
		if err := s.Inject(OpWALAppend); err == nil {
			t.Fatalf("occurrence %d should fault", i+1)
		}
	}
	got := s.Summary()
	want := []string{"eio(wal-append)×2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Summary() = %v, want %v", got, want)
	}
}

func TestNilScheduleIsNoop(t *testing.T) {
	var s *Schedule
	if err := s.Inject(OpWALAppend); err != nil {
		t.Fatalf("nil schedule injected %v", err)
	}
	if s.Injections() != nil || s.Summary() != nil || s.Offset(3) != nil || s.String() != "" {
		t.Fatal("nil schedule accessors must be zero-valued")
	}
	if err := Inject(nil, OpWALAppend); err != nil {
		t.Fatalf("Inject(nil, op) = %v", err)
	}
}
