package fault

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// A Rule is one entry of a fault schedule. Exactly one of the firing
// modes is used per kind: occurrence-counted kinds (stall, enospc, eio,
// short) fire on the Nth occurrence of Op; the probabilistic kind (slow)
// fires on a seed-deterministic coin flip at every occurrence.
type Rule struct {
	// Kind is "slow", "stall", "enospc", "eio", or "short".
	Kind string
	// Op is the operation point the rule watches.
	Op Op
	// Nth is the 1-based occurrence of Op the rule fires on (counted
	// kinds). 0 on probabilistic kinds.
	Nth uint64
	// Prob is the per-occurrence firing probability of a slow rule.
	Prob float64
	// Delay is the injected latency of slow and stall rules.
	Delay time.Duration
}

func (r Rule) String() string {
	switch r.Kind {
	case "slow":
		return fmt.Sprintf("slow(%s,%g,%s)", r.Op, r.Prob, r.Delay)
	case "stall":
		return fmt.Sprintf("stall(%s,%d,%s)", r.Op, r.Nth, r.Delay)
	default:
		return fmt.Sprintf("%s(%s,%d)", r.Kind, r.Op, r.Nth)
	}
}

// An Injection records one fired rule, for health reports and soak logs.
type Injection struct {
	Op         Op            `json:"op"`
	Kind       string        `json:"kind"`
	Occurrence uint64        `json:"occurrence"`
	Delay      time.Duration `json:"delay_ns,omitempty"`
}

// Schedule is a deterministic Injector driven by a parsed rule list and a
// seed: the same spec, seed, and per-op call sequence always produce the
// same injections, regardless of wall-clock time or goroutine
// interleaving within one op's call order.
type Schedule struct {
	rules []Rule
	seed  uint64

	// sleep is the stall/slow implementation (overridable in tests so
	// schedules with long stalls parse-and-fire without waiting).
	sleep func(time.Duration)

	mu     sync.Mutex
	counts map[Op]uint64
	log    []Injection
}

// ParseSchedule parses a fault-schedule spec: semicolon-separated rules
//
//	slow(op,prob,delay)   delay each matching op with probability prob
//	stall(op,nth,delay)   the nth op stalls for delay, then succeeds
//	enospc(op,nth)        the nth op fails with ENOSPC (permanent class)
//	eio(op,nth)           the nth op fails with EIO (transient class)
//	short(op,nth)         the nth op tears a short write, then fails
//
// where op is one of the fault.Ops constants (wal-append, wal-fsync,
// wal-create, ckpt-write, ckpt-sync, ckpt-rename, update, compute,
// publish), with the aliases append, fsync, create, and rename accepted
// for the four most common. Example:
//
//	slow(wal-fsync,0.3,2ms);enospc(wal-fsync,12);stall(compute,8,300ms)
//
// Seed drives the probabilistic draws. An empty spec yields a nil
// schedule (no faults).
func ParseSchedule(spec string, seed int64) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: schedule %q contains no rules", spec)
	}
	return &Schedule{
		rules:  rules,
		seed:   uint64(seed),
		sleep:  time.Sleep,
		counts: make(map[Op]uint64),
	}, nil
}

// MustParseSchedule is ParseSchedule for specs known valid at compile
// time (tests, built-in soak schedules).
func MustParseSchedule(spec string, seed int64) *Schedule {
	s, err := ParseSchedule(spec, seed)
	if err != nil {
		panic(err)
	}
	return s
}

var opAliases = map[string]Op{
	"append": OpWALAppend,
	"fsync":  OpWALFsync,
	"create": OpWALCreate,
	"rename": OpCkptRename,
}

func parseOp(s string) (Op, error) {
	if op, ok := opAliases[s]; ok {
		return op, nil
	}
	for _, op := range Ops {
		if s == string(op) {
			return op, nil
		}
	}
	return "", fmt.Errorf("fault: unknown op %q (have %v plus aliases append/fsync/create/rename)", s, Ops)
}

func parseRule(s string) (Rule, error) {
	var r Rule
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return r, fmt.Errorf("fault: rule %q: want kind(op,args...)", s)
	}
	r.Kind = strings.TrimSpace(s[:open])
	args := strings.Split(s[open+1:len(s)-1], ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	if len(args) == 0 || args[0] == "" {
		return r, fmt.Errorf("fault: rule %q: missing op", s)
	}
	op, err := parseOp(args[0])
	if err != nil {
		return r, err
	}
	r.Op = op
	nth := func(a string) (uint64, error) {
		n, err := strconv.ParseUint(a, 10, 64)
		if err != nil || n == 0 {
			return 0, fmt.Errorf("fault: rule %q: occurrence %q must be a positive integer", s, a)
		}
		return n, nil
	}
	switch r.Kind {
	case "slow":
		if len(args) != 3 {
			return r, fmt.Errorf("fault: rule %q: want slow(op,prob,delay)", s)
		}
		p, err := strconv.ParseFloat(args[1], 64)
		if err != nil || p <= 0 || p > 1 {
			return r, fmt.Errorf("fault: rule %q: probability %q must be in (0,1]", s, args[1])
		}
		d, err := time.ParseDuration(args[2])
		if err != nil || d <= 0 {
			return r, fmt.Errorf("fault: rule %q: bad delay %q", s, args[2])
		}
		r.Prob, r.Delay = p, d
	case "stall":
		if len(args) != 3 {
			return r, fmt.Errorf("fault: rule %q: want stall(op,nth,delay)", s)
		}
		if r.Nth, err = nth(args[1]); err != nil {
			return r, err
		}
		d, err := time.ParseDuration(args[2])
		if err != nil || d <= 0 {
			return r, fmt.Errorf("fault: rule %q: bad delay %q", s, args[2])
		}
		r.Delay = d
	case "enospc", "eio", "short":
		if len(args) != 2 {
			return r, fmt.Errorf("fault: rule %q: want %s(op,nth)", s, r.Kind)
		}
		if r.Nth, err = nth(args[1]); err != nil {
			return r, err
		}
	default:
		return r, fmt.Errorf("fault: rule %q: unknown kind %q (have slow, stall, enospc, eio, short)", s, r.Kind)
	}
	return r, nil
}

// Offset shifts every occurrence-counted rule nth batches later. The
// crash-loop soak offsets a fresh copy of the schedule by the cycle index
// so each kill/recover generation's faults land further into the stream —
// the same guaranteed-progress trick as its rotating crash schedule.
func (s *Schedule) Offset(n uint64) *Schedule {
	if s == nil {
		return nil
	}
	rules := make([]Rule, len(s.rules))
	copy(rules, s.rules)
	for i := range rules {
		if rules[i].Nth > 0 {
			rules[i].Nth += n
		}
	}
	return &Schedule{rules: rules, seed: s.seed, sleep: s.sleep, counts: make(map[Op]uint64)}
}

// SetSleep replaces the stall/slow sleeper (tests use a recording fake so
// hour-long stalls don't wait).
func (s *Schedule) SetSleep(f func(time.Duration)) { s.sleep = f }

// Inject implements Injector: count the occurrence, apply every matching
// delay, and fail with the first matching error rule.
func (s *Schedule) Inject(op Op) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.counts[op]++
	n := s.counts[op]
	var delay time.Duration
	var fired *Rule
	for i := range s.rules {
		r := &s.rules[i]
		if r.Op != op {
			continue
		}
		switch r.Kind {
		case "slow":
			if s.draw(op, n, uint64(i)) < r.Prob {
				delay += r.Delay
			}
		case "stall":
			if r.Nth == n {
				delay += r.Delay
			}
		default:
			if r.Nth == n && fired == nil {
				fired = r
			}
		}
	}
	var inj Injection
	record := delay > 0 || fired != nil
	if record {
		inj = Injection{Op: op, Occurrence: n, Delay: delay}
		if fired != nil {
			inj.Kind = fired.Kind
		} else {
			inj.Kind = "slow"
		}
		s.log = append(s.log, inj)
	}
	sleep := s.sleep
	s.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	if fired != nil {
		return &InjectedError{Op: op, Kind: fired.Kind, Occurrence: n, Err: errnoFor(fired.Kind)}
	}
	return nil
}

// Injections returns a copy of every fault injected so far, in firing
// order.
func (s *Schedule) Injections() []Injection {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Injection(nil), s.log...)
}

// Summary counts injections by "kind(op)", sorted — the health report's
// compact view of what the schedule actually did.
func (s *Schedule) Summary() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	byKey := make(map[string]int)
	for _, inj := range s.log {
		byKey[fmt.Sprintf("%s(%s)", inj.Kind, inj.Op)]++
	}
	s.mu.Unlock()
	out := make([]string, 0, len(byKey))
	for k, c := range byKey {
		out = append(out, fmt.Sprintf("%s×%d", k, c))
	}
	sort.Strings(out)
	return out
}

// String renders the schedule's rule list in spec syntax.
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	parts := make([]string, len(s.rules))
	for i, r := range s.rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// draw is the deterministic coin flip for probabilistic rules: a hash of
// (seed, op, occurrence, rule index) mapped into [0,1). No shared PRNG
// state means the draw for occurrence n is independent of how many other
// ops interleaved before it.
func (s *Schedule) draw(op Op, n, rule uint64) float64 {
	h := fnv.New64a()
	// saga:allow errcheck-durable -- fnv.Write cannot fail.
	fmt.Fprintf(h, "%d|%s|%d|%d", s.seed, op, n, rule)
	x := splitmix64(h.Sum64())
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 finalizes the hash into well-distributed bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
