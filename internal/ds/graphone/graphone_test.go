package graphone

import (
	"math/rand"
	"testing"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

func outStore(t *testing.T, g ds.Graph) *store {
	t.Helper()
	return g.(*ds.TwoCopy).OutStore().(*store)
}

func TestStageDefersSealApplies(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 2})
	tc := g.(*ds.TwoCopy)
	if !ds.SupportsTwoPhase(g) {
		t.Fatal("graphone should be two-phase")
	}
	staged := graph.Batch{{Src: 1, Dst: 2, Weight: 5}, {Src: 1, Dst: 3, Weight: 6}}
	if !tc.StageBatch(staged) {
		t.Fatal("StageBatch refused")
	}
	// Nothing visible until the seal.
	if g.NumEdges() != 0 {
		t.Fatalf("staged records leaked: NumEdges=%d", g.NumEdges())
	}
	tc.SealBatch()
	if g.NumEdges() != 2 || g.OutDegree(1) != 2 || g.InDegree(3) != 1 {
		t.Fatalf("seal did not apply: edges=%d deg=%d", g.NumEdges(), g.OutDegree(1))
	}
}

func TestSealIdempotentWhenEmpty(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true})
	tc := g.(*ds.TwoCopy)
	tc.SealBatch() // nothing staged: must be a no-op
	g.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	tc.SealBatch()
	tc.SealBatch()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges=%d want 1", g.NumEdges())
	}
}

// TestPersistentHubIndex verifies a hub vertex is promoted to the
// persistent index and stays correct through further batches and
// deletions.
func TestPersistentHubIndex(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1})
	st := outStore(t, g)
	var batch graph.Batch
	for i := 0; i < indexThreshold+20; i++ {
		batch = append(batch, graph.Edge{Src: 7, Dst: graph.NodeID(100 + i), Weight: 1})
	}
	g.Update(batch)
	// One more batch so the now-large vertex crosses the promotion check.
	g.Update(graph.Batch{{Src: 7, Dst: 5000, Weight: 1}})
	if st.index[7] == nil {
		t.Fatal("hub vertex not promoted to a persistent index")
	}
	want := indexThreshold + 21
	if g.OutDegree(7) != want {
		t.Fatalf("degree=%d want %d", g.OutDegree(7), want)
	}
	// Duplicates must still dedup through the persistent index.
	g.Update(graph.Batch{{Src: 7, Dst: 100, Weight: 9}})
	if g.OutDegree(7) != want {
		t.Fatalf("duplicate inflated degree to %d", g.OutDegree(7))
	}
	for _, nb := range g.OutNeigh(7, nil) {
		if nb.ID == 100 && nb.Weight != 9 {
			t.Fatalf("duplicate did not rewrite weight: %v", nb)
		}
	}
	// Deletions must keep the index coherent.
	if err := g.(ds.Deleter).Delete(graph.Batch{{Src: 7, Dst: 100}, {Src: 7, Dst: 5000}}); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(7) != want-2 {
		t.Fatalf("degree after delete=%d want %d", g.OutDegree(7), want-2)
	}
	g.Update(graph.Batch{{Src: 7, Dst: 100, Weight: 2}})
	if g.OutDegree(7) != want-1 {
		t.Fatalf("reinsert after delete: degree=%d want %d", g.OutDegree(7), want-1)
	}
}

// TestGraphOneRandomVsOracle hammers the full per-vertex index paths.
func TestGraphOneRandomVsOracle(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 4})
	oracle := graph.NewOracle(true)
	rng := rand.New(rand.NewSource(17))
	for b := 0; b < 8; b++ {
		batch := make(graph.Batch, 1500)
		for i := range batch {
			src := graph.NodeID(rng.Intn(40)) // small space => hubs form
			dst := graph.NodeID(rng.Intn(400))
			batch[i] = graph.Edge{Src: src, Dst: dst, Weight: graph.Weight((uint32(src)^uint32(dst))%31 + 1)}
		}
		g.Update(batch)
		oracle.Update(batch)
	}
	if g.NumEdges() != oracle.NumEdges() {
		t.Fatalf("NumEdges=%d want %d", g.NumEdges(), oracle.NumEdges())
	}
	for v := 0; v < oracle.NumNodes(); v++ {
		id := graph.NodeID(v)
		if g.OutDegree(id) != oracle.OutDegree(id) {
			t.Fatalf("vertex %d degree %d want %d", v, g.OutDegree(id), oracle.OutDegree(id))
		}
	}
}

func TestChunksAccessor(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 3})
	if outStore(t, g).Chunks() != 3 {
		t.Fatal("chunk count should default to threads")
	}
}
