package graphone

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// GraphOne's compacted adjacency is one contiguous vector per vertex
// (staged edge-log entries are merged by Seal before any read), so the
// sealed topology flattens zero-copy like AS.

// FlatRun implements ds.RunFlattener.
func (s *store) FlatRun(v graph.NodeID) []graph.Neighbor { return s.adj[v] }

// FlatFill implements ds.Flattener.
func (s *store) FlatFill(v graph.NodeID, dst []graph.Neighbor) int {
	return copy(dst, s.adj[v])
}

var _ ds.RunFlattener = (*store)(nil)
