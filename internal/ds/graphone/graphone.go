// Package graphone implements a log-structured dynamic graph in the
// spirit of GraphOne (Kumar & Huang, FAST'19) — one of the "novel data
// structures capable of parallelizing update and compute" the paper slates
// for a future SAGA-Bench version (Section II, footnote 1).
//
// Ingestion is O(1) per edge: updates append raw records to per-vertex
// delta logs without any duplicate search. At the end of each batch the
// store compacts: every dirty vertex merges its log into a contiguous
// compacted adjacency, deduplicating against existing edges with a single
// hash pass (so a hub receiving k edges pays O(deg + k) per batch instead
// of AS's O(k·deg) scan bill — log-structured designs are the antidote to
// the heavy-tail update pathology without DAH's traversal meta-ops).
// Between compactions the sealed adjacency is immutable, which is what
// lets systems of this family run compute concurrently with ingestion.
//
// Multithreading is chunked-style (lockless chunks, like AC/DAH).
//
// saga:lockless — chunk workers may only touch chunk-owned state.
// saga:paniccapture — worker goroutines must capture panics.
// (Both enforced by sagavet; see internal/analysis.)
package graphone

import (
	"sync"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Name is the registry key.
const Name = "graphone"

func init() {
	ds.Register(Name, func(cfg ds.Config) ds.Graph {
		chunks := cfg.Chunks
		if chunks <= 0 {
			if cfg.Threads > 0 {
				chunks = cfg.Threads
			} else {
				chunks = 1
			}
		}
		hint := cfg.MaxNodesHint
		return ds.NewTwoCopy(cfg.Directed, func() ds.OneDir {
			return newStore(chunks, hint)
		})
	})
}

// record is one raw log entry.
type record struct {
	dst graph.NodeID
	w   graph.Weight
	del bool
}

// logRec is a staged (pre-seal) entry: it still carries its source vertex
// because staging appends to per-chunk logs, the only state ingestion
// touches while a concurrent compute phase reads the sealed adjacency.
type logRec struct {
	src graph.NodeID
	rec record
}

// indexThreshold is the compacted degree past which a vertex keeps a
// persistent neighbor index instead of rebuilding a hash pass per batch
// (GraphOne similarly special-cases high-degree vertices).
const indexThreshold = 64

type store struct {
	chunks int

	adj   [][]graph.Neighbor     // compacted, duplicate-free
	delta [][]record             // per-vertex unmerged log
	dirty [][]graph.NodeID       // saga:chunked — per-chunk vertices with pending deltas
	index []map[graph.NodeID]int // persistent dedup index (hubs only)

	// chunkLog holds staged records between Stage and Seal. Only
	// staging writes it and only sealing drains it, so staging may run
	// concurrently with reads of adj (update/compute overlap).
	chunkLog  [][]logRec // saga:chunked
	stagedMax graph.NodeID
	stagedAny bool

	numEdges int // saga:guardedby profMu

	profMu sync.Mutex
	prof   ds.UpdateProfile // saga:guardedby profMu
}

func newStore(chunks, hint int) *store {
	s := &store{chunks: chunks}
	s.dirty = make([][]graph.NodeID, chunks)
	s.chunkLog = make([][]logRec, chunks)
	// saga:allow lockheld -- constructor: s is not shared yet.
	s.prof.ChunkLoads = make([]uint64, chunks)
	if hint > 0 {
		s.adj = make([][]graph.Neighbor, 0, hint)
		s.delta = make([][]record, 0, hint)
	}
	return s
}

// EnsureNodes implements ds.OneDir.
func (s *store) EnsureNodes(n int) {
	for len(s.adj) < n {
		s.adj = append(s.adj, nil)
		s.delta = append(s.delta, nil)
		s.index = append(s.index, nil)
	}
}

// UpdateEdges implements ds.OneDir: phase 1 appends to the logs (no
// search), phase 2 compacts the dirty vertices — both chunk-parallel.
func (s *store) UpdateEdges(edges []graph.Edge) {
	s.Stage(edges)
	s.Seal()
}

// DeleteEdges implements the optional deletion API: tombstone records flow
// through the same log + compaction path.
func (s *store) DeleteEdges(edges []graph.Edge) {
	s.stage(edges, true)
	s.Seal()
}

// Stage implements ds.TwoPhaseUpdater: append-only ingestion into the
// per-chunk logs. It touches neither the compacted adjacency nor any
// vertex-indexed state, so it is safe to run while a compute phase reads
// the sealed topology.
func (s *store) Stage(edges []graph.Edge) { s.stage(edges, false) }

func (s *store) stage(edges []graph.Edge, del bool) {
	loads := make([]uint64, s.chunks)
	maxes := make([]graph.NodeID, s.chunks)
	ds.GroupByChunk(edges, s.chunks, func(chunk int, bucket []graph.Edge) {
		max := graph.NodeID(0)
		for _, e := range bucket {
			s.chunkLog[chunk] = append(s.chunkLog[chunk], logRec{src: e.Src, rec: record{dst: e.Dst, w: e.Weight, del: del}})
			if e.Src > max {
				max = e.Src
			}
			if e.Dst > max {
				max = e.Dst
			}
		}
		loads[chunk] = uint64(len(bucket))
		maxes[chunk] = max
	})
	s.profMu.Lock()
	s.prof.EdgesIngested += uint64(len(edges))
	for c, l := range loads {
		s.prof.ChunkLoads[c] += l
		if maxes[c] > s.stagedMax {
			s.stagedMax = maxes[c]
		}
	}
	if len(edges) > 0 {
		s.stagedAny = true
	}
	s.profMu.Unlock()
}

// Seal implements ds.TwoPhaseUpdater: drain the staged logs into
// per-vertex deltas and compact. Must run exclusively (no concurrent
// staging or reads).
func (s *store) Seal() {
	if !s.stagedAny {
		return
	}
	s.EnsureNodes(int(s.stagedMax) + 1)
	ds.ForEachChunk(s.chunks, func(c int) {
		if len(s.chunkLog[c]) == 0 {
			return
		}
		for _, lr := range s.chunkLog[c] {
			if len(s.delta[lr.src]) == 0 {
				s.dirty[c] = append(s.dirty[c], lr.src)
			}
			s.delta[lr.src] = append(s.delta[lr.src], lr.rec)
		}
		s.chunkLog[c] = s.chunkLog[c][:0]
	})
	s.stagedAny = false
	s.stagedMax = 0
	s.compact()
}

// compact merges every dirty vertex's log into its compacted adjacency.
// One hash pass indexes the existing neighbors; log records then apply in
// order (inserts dedup, re-inserts rewrite the weight, tombstones remove
// via swap-with-last).
func (s *store) compact() {
	inserted := make([]uint64, s.chunks)
	removed := make([]uint64, s.chunks)
	scans := make([]uint64, s.chunks)
	ds.ForEachChunk(s.chunks, func(c int) {
		if len(s.dirty[c]) == 0 {
			return
		}
		var ins, del uint64
		var scan uint64
		scratch := make(map[graph.NodeID]int)
		for _, v := range s.dirty[c] {
			adj := s.adj[v]
			// Hubs keep a persistent index so per-batch work is
			// O(log length), not O(degree).
			if s.index[v] == nil && len(adj) > indexThreshold {
				m := make(map[graph.NodeID]int, 2*len(adj))
				for i, nb := range adj {
					m[nb.ID] = i
				}
				scan += uint64(len(adj))
				s.index[v] = m
			}
			idx := s.index[v]
			if idx == nil {
				idx = scratch
				clear(idx)
				for i, nb := range adj {
					idx[nb.ID] = i
				}
				scan += uint64(len(adj))
			}
			for _, r := range s.delta[v] {
				scan++
				at, exists := idx[r.dst]
				switch {
				case r.del && exists:
					last := len(adj) - 1
					moved := adj[last]
					adj[at] = moved
					idx[moved.ID] = at
					adj = adj[:last]
					delete(idx, r.dst)
					del++
				case r.del:
					// deleting an absent edge: no-op
				case exists:
					adj[at].Weight = r.w
				default:
					adj = append(adj, graph.Neighbor{ID: r.dst, Weight: r.w})
					idx[r.dst] = len(adj) - 1
					ins++
				}
			}
			s.adj[v] = adj
			s.delta[v] = s.delta[v][:0]
		}
		s.dirty[c] = s.dirty[c][:0]
		inserted[c] = ins
		removed[c] = del
		scans[c] = scan
	})
	s.profMu.Lock()
	for c := 0; c < s.chunks; c++ {
		s.numEdges += int(inserted[c]) - int(removed[c])
		s.prof.Inserted += inserted[c]
		s.prof.ScanSteps += scans[c]
	}
	s.profMu.Unlock()
}

// Degree implements ds.OneDir.
func (s *store) Degree(v graph.NodeID) int { return len(s.adj[v]) }

// Neighbors implements ds.OneDir: the compacted adjacency is contiguous,
// so traversal matches AS's cheap sequential scan.
func (s *store) Neighbors(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	return append(buf, s.adj[v]...)
}

// NumEdges implements ds.OneDir.
func (s *store) NumEdges() int {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	return s.numEdges
}

// NumNodes implements ds.OneDir.
func (s *store) NumNodes() int { return len(s.adj) }

// UpdateProfile implements ds.Profiler.
func (s *store) UpdateProfile() ds.UpdateProfile {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	p := s.prof
	p.ChunkLoads = append([]uint64(nil), s.prof.ChunkLoads...)
	return p
}

// ResetProfile implements ds.Profiler.
func (s *store) ResetProfile() {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	s.prof = ds.UpdateProfile{ChunkLoads: make([]uint64, s.chunks)}
}

// Chunks reports the chunk count.
func (s *store) Chunks() int { return s.chunks }
