package ds

import (
	"testing"

	"sagabench/internal/graph"
)

// fakeStore is a minimal OneDir for exercising TwoCopy in isolation.
type fakeStore struct {
	adj  []map[graph.NodeID]graph.Weight
	dels int
}

func (f *fakeStore) EnsureNodes(n int) {
	for len(f.adj) < n {
		f.adj = append(f.adj, map[graph.NodeID]graph.Weight{})
	}
}

func (f *fakeStore) UpdateEdges(edges []graph.Edge) {
	for _, e := range edges {
		f.adj[e.Src][e.Dst] = e.Weight
	}
}

func (f *fakeStore) Degree(v graph.NodeID) int { return len(f.adj[v]) }

func (f *fakeStore) Neighbors(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	for id, w := range f.adj[v] {
		buf = append(buf, graph.Neighbor{ID: id, Weight: w})
	}
	return buf
}

func (f *fakeStore) NumEdges() int {
	n := 0
	for _, m := range f.adj {
		n += len(m)
	}
	return n
}

func (f *fakeStore) NumNodes() int { return len(f.adj) }

// fakeDeleter adds deletion support.
type fakeDeleter struct{ fakeStore }

func (f *fakeDeleter) DeleteEdges(edges []graph.Edge) {
	for _, e := range edges {
		if int(e.Src) < len(f.adj) {
			delete(f.adj[e.Src], e.Dst)
			f.dels++
		}
	}
}

func TestTwoCopyDirectedKeepsTwoStores(t *testing.T) {
	var stores []*fakeStore
	tc := NewTwoCopy(true, func() OneDir {
		s := &fakeStore{}
		stores = append(stores, s)
		return s
	})
	if len(stores) != 2 {
		t.Fatalf("directed TwoCopy built %d stores want 2", len(stores))
	}
	tc.Update(graph.Batch{{Src: 1, Dst: 3, Weight: 7}})
	if tc.OutDegree(1) != 1 || tc.InDegree(3) != 1 {
		t.Fatal("directed degrees wrong")
	}
	if tc.OutDegree(3) != 0 || tc.InDegree(1) != 0 {
		t.Fatal("directed graph mirrored an edge")
	}
	out := tc.OutNeigh(1, nil)
	in := tc.InNeigh(3, nil)
	if len(out) != 1 || out[0].ID != 3 || len(in) != 1 || in[0].ID != 1 {
		t.Fatalf("adjacency out=%v in=%v", out, in)
	}
	if !tc.Directed() {
		t.Fatal("Directed() lied")
	}
}

func TestTwoCopyUndirectedSharesStore(t *testing.T) {
	var stores []*fakeStore
	tc := NewTwoCopy(false, func() OneDir {
		s := &fakeStore{}
		stores = append(stores, s)
		return s
	})
	if len(stores) != 1 {
		t.Fatalf("undirected TwoCopy built %d stores want 1", len(stores))
	}
	tc.Update(graph.Batch{{Src: 1, Dst: 3, Weight: 7}})
	if tc.OutDegree(3) != 1 || tc.InDegree(1) != 1 {
		t.Fatal("undirected edge not mirrored")
	}
	if tc.OutStore() != tc.InStore() {
		t.Fatal("undirected stores should alias")
	}
}

func TestTwoCopyDeleteRequiresSupport(t *testing.T) {
	plain := NewTwoCopy(true, func() OneDir { return &fakeStore{} })
	if SupportsDelete(plain) {
		t.Fatal("plain store claims deletion support")
	}
	plain.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	if err := plain.Delete(graph.Batch{{Src: 0, Dst: 1}}); err == nil {
		t.Fatal("Delete on non-deleting store should error")
	}

	del := NewTwoCopy(true, func() OneDir { return &fakeDeleter{} })
	if !SupportsDelete(del) {
		t.Fatal("deleter store not recognized")
	}
	del.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	if err := del.Delete(graph.Batch{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if del.NumEdges() != 0 {
		t.Fatalf("NumEdges=%d after delete", del.NumEdges())
	}
	// Out-of-range deletions are clamped, empty batches no-ops.
	if err := del.Delete(graph.Batch{{Src: 99, Dst: 98}}); err != nil {
		t.Fatal(err)
	}
	if err := del.Delete(nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoCopyQueriesOutOfRange(t *testing.T) {
	tc := NewTwoCopy(true, func() OneDir { return &fakeStore{} })
	tc.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	if tc.OutDegree(55) != 0 || tc.InDegree(55) != 0 {
		t.Fatal("out-of-range degree")
	}
	if len(tc.OutNeigh(55, nil)) != 0 || len(tc.InNeigh(55, nil)) != 0 {
		t.Fatal("out-of-range adjacency")
	}
}

// twoPhaseFake wires Stage/Seal into the fake store.
type twoPhaseFake struct {
	fakeStore
	staged []graph.Edge
	seals  int
}

func (f *twoPhaseFake) Stage(edges []graph.Edge) { f.staged = append(f.staged, edges...) }

func (f *twoPhaseFake) Seal() {
	f.UpdateEdges(f.staged)
	f.staged = nil
	f.seals++
}

func TestTwoPhaseStageSeal(t *testing.T) {
	plain := NewTwoCopy(true, func() OneDir { return &fakeStore{} })
	if SupportsTwoPhase(plain) {
		t.Fatal("plain store claims two-phase support")
	}
	if plain.StageBatch(graph.Batch{{Src: 0, Dst: 1}}) {
		t.Fatal("StageBatch must refuse on plain stores")
	}
	plain.SealBatch() // must be a harmless no-op

	var made []*twoPhaseFake
	tp := NewTwoCopy(true, func() OneDir {
		f := &twoPhaseFake{}
		made = append(made, f)
		return f
	})
	if !SupportsTwoPhase(tp) {
		t.Fatal("two-phase store not recognized")
	}
	// The batch endpoints exceed current node space; Stage must still
	// work because Seal applies after EnsureNodes in real stores — the
	// fake just grows on demand here.
	for _, f := range made {
		f.EnsureNodes(4)
	}
	if !tp.StageBatch(graph.Batch{{Src: 1, Dst: 3, Weight: 2}}) {
		t.Fatal("StageBatch refused")
	}
	if tp.NumEdges() != 0 {
		t.Fatal("staged edges visible before seal")
	}
	tp.SealBatch()
	if tp.NumEdges() != 1 || tp.OutDegree(1) != 1 || tp.InDegree(3) != 1 {
		t.Fatalf("seal did not apply: %d edges", tp.NumEdges())
	}
	if made[0].seals != 1 || made[1].seals != 1 {
		t.Fatalf("seal counts %d/%d", made[0].seals, made[1].seals)
	}

	// Undirected: both orientations staged into the single store.
	madeU := []*twoPhaseFake{}
	tpu := NewTwoCopy(false, func() OneDir {
		f := &twoPhaseFake{}
		madeU = append(madeU, f)
		return f
	})
	madeU[0].EnsureNodes(3)
	if !tpu.StageBatch(graph.Batch{{Src: 0, Dst: 2, Weight: 1}}) {
		t.Fatal("undirected StageBatch refused")
	}
	tpu.SealBatch()
	if tpu.OutDegree(2) != 1 || tpu.OutDegree(0) != 1 {
		t.Fatal("undirected mirror missing after seal")
	}
	// Empty batch staging is a supported no-op.
	if !tpu.StageBatch(nil) {
		t.Fatal("empty StageBatch refused")
	}
}

func TestProfileOfFallbacks(t *testing.T) {
	plain := NewTwoCopy(true, func() OneDir { return &fakeStore{} })
	if _, ok := ProfileOf(plain); ok {
		t.Fatal("plain store should have no profile")
	}
	ResetProfileOf(plain) // no-op, must not panic
	if plain.NumNodes() != 0 {
		t.Fatal("NumNodes on empty store")
	}
}
