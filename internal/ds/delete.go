package ds

import (
	"fmt"

	"sagabench/internal/graph"
)

// OneDirDeleter is the optional deletion extension of OneDir: concurrent
// removal of (src → dst) records using the store's own multithreading
// style. Deleting an absent edge is a no-op. Streaming deletions are the
// first extension the paper's framework anticipates (STINGER supports
// them natively); every bundled structure implements this interface.
type OneDirDeleter interface {
	DeleteEdges(edges []graph.Edge)
}

// Deleter is the Graph-level deletion API.
type Deleter interface {
	// Delete removes the batch's edges; absent edges are ignored. For
	// undirected graphs both orientations are removed.
	Delete(batch graph.Batch) error
}

// Delete implements Deleter for TwoCopy graphs whose stores support
// deletion.
func (t *TwoCopy) Delete(batch graph.Batch) error {
	if len(batch) == 0 {
		return nil
	}
	outDel, ok := t.out.(OneDirDeleter)
	if !ok {
		return fmt.Errorf("ds: %T does not support edge deletion", t.out)
	}
	// Deletions never grow the vertex space, but endpoints past the
	// known space are harmless no-ops — clamp them out.
	n := t.out.NumNodes()
	t.scratch = t.scratch[:0]
	for _, e := range batch {
		if int(e.Src) >= n || int(e.Dst) >= n {
			continue
		}
		t.scratch = append(t.scratch, e)
	}
	if len(t.scratch) == 0 {
		return nil
	}
	if !t.directed {
		both := make([]graph.Edge, 0, 2*len(t.scratch))
		both = append(both, t.scratch...)
		for _, e := range t.scratch {
			both = append(both, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
		}
		outDel.DeleteEdges(both)
		return nil
	}
	inDel, ok := t.in.(OneDirDeleter)
	if !ok {
		return fmt.Errorf("ds: %T does not support edge deletion", t.in)
	}
	outDel.DeleteEdges(t.scratch)
	reversed := make([]graph.Edge, len(t.scratch))
	for i, e := range t.scratch {
		reversed[i] = graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
	}
	inDel.DeleteEdges(reversed)
	return nil
}

// SupportsDelete reports whether g implements working edge deletion.
func SupportsDelete(g Graph) bool {
	t, ok := g.(*TwoCopy)
	if !ok {
		_, ok = g.(Deleter)
		return ok
	}
	if _, ok := t.out.(OneDirDeleter); !ok {
		return false
	}
	if t.directed {
		_, ok := t.in.(OneDirDeleter)
		return ok
	}
	return true
}
