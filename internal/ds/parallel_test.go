package ds

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"sagabench/internal/graph"
)

func TestForEachShardCoversAllEdges(t *testing.T) {
	edges := make([]graph.Edge, 103)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.NodeID(i)}
	}
	var mu sync.Mutex
	seen := map[graph.NodeID]int{}
	calls := 0
	ForEachShard(edges, 8, func(shard []graph.Edge) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		for _, e := range shard {
			seen[e.Src]++
		}
	})
	if calls > 8 {
		t.Errorf("more shards than threads: %d", calls)
	}
	if len(seen) != len(edges) {
		t.Fatalf("covered %d/%d edges", len(seen), len(edges))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("edge %d visited %d times", v, n)
		}
	}
}

func TestForEachShardSingleThread(t *testing.T) {
	edges := make([]graph.Edge, 5)
	calls := 0
	ForEachShard(edges, 1, func(shard []graph.Edge) {
		calls++
		if len(shard) != 5 {
			t.Errorf("shard size %d", len(shard))
		}
	})
	if calls != 1 {
		t.Errorf("calls=%d want 1", calls)
	}
}

func TestForEachShardMoreThreadsThanEdges(t *testing.T) {
	edges := make([]graph.Edge, 3)
	var total atomic.Int64
	ForEachShard(edges, 16, func(shard []graph.Edge) { total.Add(int64(len(shard))) })
	if total.Load() != 3 {
		t.Errorf("total=%d want 3", total.Load())
	}
}

func TestGroupByChunkOwnership(t *testing.T) {
	const chunks = 7
	edges := make([]graph.Edge, 211)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.NodeID(i * 13 % 97), Dst: graph.NodeID(i)}
	}
	var mu sync.Mutex
	count := 0
	GroupByChunk(edges, chunks, func(chunk int, bucket []graph.Edge) {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range bucket {
			if int(e.Src)%chunks != chunk {
				t.Errorf("edge src %d in chunk %d", e.Src, chunk)
			}
			count++
		}
	})
	if count != len(edges) {
		t.Fatalf("delivered %d/%d edges", count, len(edges))
	}
}

func TestGroupByChunkPreservesOrder(t *testing.T) {
	edges := []graph.Edge{
		{Src: 2, Dst: 0}, {Src: 2, Dst: 1}, {Src: 2, Dst: 2},
	}
	GroupByChunk(edges, 4, func(chunk int, bucket []graph.Edge) {
		if chunk != 2 {
			t.Errorf("unexpected chunk %d", chunk)
		}
		for i, e := range bucket {
			if int(e.Dst) != i {
				t.Errorf("order broken at %d: %v", i, e)
			}
		}
	})
}

func TestGroupByChunkSingleChunk(t *testing.T) {
	edges := make([]graph.Edge, 4)
	calls := 0
	GroupByChunk(edges, 1, func(chunk int, bucket []graph.Edge) {
		calls++
		if chunk != 0 || len(bucket) != 4 {
			t.Errorf("chunk=%d len=%d", chunk, len(bucket))
		}
	})
	if calls != 1 {
		t.Errorf("calls=%d want 1", calls)
	}
}

// Property: chunk grouping partitions the batch for arbitrary inputs.
func TestGroupByChunkProperty(t *testing.T) {
	f := func(srcs []uint16, chunksRaw uint8) bool {
		chunks := int(chunksRaw%16) + 1
		edges := make([]graph.Edge, len(srcs))
		for i, s := range srcs {
			edges[i] = graph.Edge{Src: graph.NodeID(s)}
		}
		var total atomic.Int64
		ok := atomic.Bool{}
		ok.Store(true)
		GroupByChunk(edges, chunks, func(chunk int, bucket []graph.Edge) {
			for _, e := range bucket {
				if ChunkOf(e.Src, chunks) != chunk {
					ok.Store(false)
				}
			}
			total.Add(int64(len(bucket)))
		})
		return ok.Load() && total.Load() == int64(len(edges))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.threads() != 1 || c.chunks() != 1 {
		t.Errorf("zero config: threads=%d chunks=%d", c.threads(), c.chunks())
	}
	c.Threads = 6
	if c.chunks() != 6 {
		t.Errorf("chunks should default to threads: %d", c.chunks())
	}
	c.Chunks = 3
	if c.chunks() != 3 {
		t.Errorf("explicit chunks ignored: %d", c.chunks())
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("definitely-not-registered", Config{}); err == nil {
		t.Error("expected error for unknown structure")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on unknown structure")
		}
	}()
	MustNew("definitely-not-registered", Config{})
}

func TestUpdateProfileHelpers(t *testing.T) {
	p := UpdateProfile{EdgesIngested: 10, LockConflicts: 5}
	if p.ConflictRate() != 0.5 {
		t.Errorf("ConflictRate=%v", p.ConflictRate())
	}
	if (&UpdateProfile{}).ConflictRate() != 0 {
		t.Error("empty conflict rate should be 0")
	}
	p2 := UpdateProfile{ChunkLoads: []uint64{30, 10, 10, 10}}
	if got := p2.Imbalance(); got != 2 {
		t.Errorf("Imbalance=%v want 2 (30 vs mean 15)", got)
	}
	if (&UpdateProfile{}).Imbalance() != 1 {
		t.Error("empty imbalance should be 1")
	}
	var sum UpdateProfile
	sum.Add(p)
	sum.Add(p2)
	if sum.EdgesIngested != 10 || len(sum.ChunkLoads) != 4 || sum.ChunkLoads[0] != 30 {
		t.Errorf("Add merged wrong: %+v", sum)
	}
}
