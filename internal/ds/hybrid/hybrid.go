// Package hybrid implements the degree-adaptive hybrid structure
// (GraphTango-style; ROADMAP item 3): each vertex's adjacency lives in one
// of three tiers chosen by its degree. Small degrees sit inline in the
// vertex record (one cache line, zero pointer chases); medium degrees use
// a dense pooled edge array (linear scan, contiguous traversal); high
// degrees keep the same dense array plus a per-vertex Robin Hood index
// from destination to array position, making lookup, insert, overwrite and
// delete O(1) expected at any degree. Traversal always walks the dense
// storage, so neighbor order is insertion order, transitions never reorder
// a run, and flattening is zero-copy — bystander updates cannot perturb
// another vertex's run, which is why the structure needs no DirtyExpander.
//
// Tier changes apply hysteresis: promotion at deg > hashAt but demotion
// only at deg ≤ hashAt/2 (and likewise inline at inlineAt vs inlineAt/2),
// so delete-heavy streams straddling a boundary do not thrash between
// representations. Multithreading is chunked-style like AC/DAH (vertex v
// belongs to chunk v mod chunks); per-chunk pools recycle arrays and
// index tables so steady-state batch application does not allocate.
//
// saga:lockless — chunk workers may only touch chunk-owned state
// (enforced by sagavet; see internal/analysis).
package hybrid

import (
	"sync"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Name is the registry key.
const Name = "hybrid"

// DefaultHashThreshold is the default array→hash promotion boundary
// (ds.Config.FlushThreshold overrides it, sharing DAH's low→high knob).
const DefaultHashThreshold = 32

// inlineSlots is the inline-tier capacity baked into the vertex record.
const inlineSlots = 4

func init() {
	ds.Register(Name, func(cfg ds.Config) ds.Graph {
		chunks := cfg.Chunks
		if chunks <= 0 {
			if cfg.Threads > 0 {
				chunks = cfg.Threads
			} else {
				chunks = 1
			}
		}
		ht := cfg.FlushThreshold
		if ht <= 0 {
			ht = DefaultHashThreshold
		}
		hint := cfg.MaxNodesHint
		return ds.NewTwoCopy(cfg.Directed, func() ds.OneDir {
			return newStore(chunks, ht, hint)
		})
	})
}

// Tier identifies a vertex's current representation.
type Tier uint8

// The three representations, cheapest first.
const (
	TierInline Tier = iota
	TierArray
	TierHash
)

func (t Tier) String() string {
	switch t {
	case TierInline:
		return "inline"
	case TierArray:
		return "array"
	case TierHash:
		return "hash"
	}
	return "?"
}

// vertex is one per-vertex record. Invariants, maintained by the owning
// chunk's worker:
//   - deg == the number of stored neighbors
//   - arr == nil (inline tier): neighbors are inline[:deg], deg ≤ inlineAt
//   - arr != nil: neighbors are arr (len(arr) == deg), inline is unused
//   - idx != nil (hash tier): arr != nil and idx maps every arr[i].ID → i
type vertex struct {
	deg    int32
	inline [inlineSlots]graph.Neighbor
	arr    []graph.Neighbor
	idx    *dstIndex
}

// run returns the dense neighbor storage (valid until the next update).
func (v *vertex) run() []graph.Neighbor {
	if v.arr != nil {
		return v.arr
	}
	return v.inline[:v.deg]
}

type store struct {
	chunks int

	// Tier boundaries. Promotion happens above the high-water marks
	// (inlineAt, hashAt); demotion below the low-water marks (uninlineAt,
	// unhashAt); the gap between each pair is the hysteresis band.
	inlineAt   int // inline-tier capacity: deg ≤ inlineAt stays inline
	uninlineAt int // array→inline demotion at deg ≤ uninlineAt
	hashAt     int // array→hash promotion at deg > hashAt
	unhashAt   int // hash→array demotion at deg ≤ unhashAt

	// verts is indexed by global vertex ID; vertex v is owned by chunk
	// v mod chunks during ingestion (the AC ownership discipline), and
	// EnsureNodes grows it only between batches.
	verts []vertex
	pools []*chunkPools // saga:chunked

	numEdges int // saga:guardedby profMu

	profMu sync.Mutex
	prof   ds.UpdateProfile // saga:guardedby profMu
}

func newStore(chunks, hashAt, hint int) *store {
	inlineAt := inlineSlots
	if hashAt <= inlineAt {
		// Keep the tier order strict (inline < array ≤ hash) even under
		// tiny test thresholds like FlushThreshold: 2.
		inlineAt = hashAt - 1
	}
	s := &store{
		chunks:     chunks,
		inlineAt:   inlineAt,
		uninlineAt: inlineAt / 2,
		hashAt:     hashAt,
		unhashAt:   hashAt / 2,
	}
	s.pools = make([]*chunkPools, chunks)
	for i := range s.pools {
		s.pools[i] = &chunkPools{}
	}
	// saga:allow lockheld -- constructor: s is not shared yet.
	s.prof.ChunkLoads = make([]uint64, chunks)
	if hint > 0 {
		s.verts = make([]vertex, 0, hint)
	}
	return s
}

// chunkCounters is one worker's batch-local tally, merged into the profile
// under profMu after the workers join (so the hot path touches no shared
// counters, atomic or otherwise).
type chunkCounters struct {
	loads    uint64
	scans    uint64
	inserted uint64
	removed  uint64
	promos   uint64
	demos    uint64
	moved    uint64 // entries copied by tier transitions (charged as MetaOps)
}

// EnsureNodes implements ds.OneDir.
func (s *store) EnsureNodes(n int) {
	if n <= len(s.verts) {
		return
	}
	if n <= cap(s.verts) {
		s.verts = s.verts[:n]
		return
	}
	grow := 2 * cap(s.verts)
	if grow < n {
		grow = n
	}
	nv := make([]vertex, n, grow)
	copy(nv, s.verts)
	s.verts = nv
}

// UpdateEdges implements ds.OneDir: chunked-style multithreading; each
// chunk's bucket is ingested by one worker with no locks.
func (s *store) UpdateEdges(edges []graph.Edge) {
	stats := make([]chunkCounters, s.chunks)
	ds.GroupByChunk(edges, s.chunks, func(chunk int, bucket []graph.Edge) {
		var st chunkCounters
		pool := s.pools[chunk]
		for _, e := range bucket {
			s.insertOne(pool, &st, e.Src, e.Dst, e.Weight)
		}
		st.loads = uint64(len(bucket))
		stats[chunk] = st
	})
	s.profMu.Lock()
	s.prof.EdgesIngested += uint64(len(edges))
	s.mergeStats(stats)
	s.profMu.Unlock()
}

// mergeStats folds the per-chunk tallies into the profile.
//
// saga:locked s.profMu
func (s *store) mergeStats(stats []chunkCounters) {
	for c := range stats {
		st := &stats[c]
		s.prof.Inserted += st.inserted
		s.prof.ScanSteps += st.scans
		s.prof.ChunkLoads[c] += st.loads
		s.prof.MetaOps += st.moved
		s.prof.TierPromotions += st.promos
		s.prof.TierDemotions += st.demos
		s.numEdges += int(st.inserted) - int(st.removed)
	}
}

// insertOne performs one degree-adaptive unique insertion. It mutates only
// state owned by src's chunk, so chunk workers may call it on their own
// bucket.
//
// saga:chunksafe
func (s *store) insertOne(pool *chunkPools, st *chunkCounters, src, dst graph.NodeID, w graph.Weight) {
	v := &s.verts[src]
	deg := int(v.deg)
	switch {
	case v.idx != nil:
		// Hash tier: O(1) duplicate check against the per-vertex index.
		if pos, ok := v.idx.get(dst, &st.scans); ok {
			v.arr[pos].Weight = w
			return
		}
		v.arr = appendGrow(pool, v.arr, graph.Neighbor{ID: dst, Weight: w})
		v.idx.put(dst, int32(deg), &st.scans)
		v.deg++
		st.inserted++
	case v.arr != nil:
		// Array tier: short linear scan (bounded by hashAt). The scan
		// tally stays out of the loop so the hot path is pure compares.
		for i := range v.arr {
			if v.arr[i].ID == dst {
				st.scans += uint64(i + 1)
				v.arr[i].Weight = w
				return
			}
		}
		st.scans += uint64(deg)
		v.arr = appendGrow(pool, v.arr, graph.Neighbor{ID: dst, Weight: w})
		v.deg++
		st.inserted++
		if deg+1 > s.hashAt {
			s.promoteToHash(pool, v, st)
		}
	default:
		// Inline tier: the scan never leaves the vertex record.
		for i := 0; i < deg; i++ {
			if v.inline[i].ID == dst {
				st.scans += uint64(i + 1)
				v.inline[i].Weight = w
				return
			}
		}
		st.scans += uint64(deg)
		if deg < s.inlineAt {
			v.inline[deg] = graph.Neighbor{ID: dst, Weight: w}
			v.deg++
			st.inserted++
			return
		}
		// Inline full: promote to the array tier, preserving order.
		arr := pool.getArr(deg + 1)
		arr = append(arr, v.inline[:deg]...)
		arr = append(arr, graph.Neighbor{ID: dst, Weight: w})
		v.arr = arr
		v.deg++
		st.inserted++
		st.promos++
		st.moved += uint64(deg)
		if deg+1 > s.hashAt {
			s.promoteToHash(pool, v, st)
		}
	}
}

// appendGrow appends through the pool: a full array swaps for the next
// size class and the old one is recycled.
func appendGrow(pool *chunkPools, a []graph.Neighbor, nb graph.Neighbor) []graph.Neighbor {
	if len(a) == cap(a) {
		na := pool.getArr(2 * cap(a))
		na = na[:len(a)]
		copy(na, a)
		pool.putArr(a)
		a = na
	}
	return append(a, nb)
}

// promoteToHash builds the per-vertex index over the existing array. The
// array (and hence traversal order) is untouched.
//
// saga:chunksafe
func (s *store) promoteToHash(pool *chunkPools, v *vertex, st *chunkCounters) {
	idx := pool.getIdx(len(v.arr) + 1)
	for i := range v.arr {
		idx.put(v.arr[i].ID, int32(i), &st.scans)
	}
	v.idx = idx
	st.promos++
	st.moved += uint64(len(v.arr))
}

// DeleteEdges implements ds.OneDirDeleter with the same chunked ownership
// as UpdateEdges; absent edges are no-ops.
func (s *store) DeleteEdges(edges []graph.Edge) {
	stats := make([]chunkCounters, s.chunks)
	ds.GroupByChunk(edges, s.chunks, func(chunk int, bucket []graph.Edge) {
		var st chunkCounters
		pool := s.pools[chunk]
		for _, e := range bucket {
			s.deleteOne(pool, &st, e.Src, e.Dst)
		}
		stats[chunk] = st
	})
	s.profMu.Lock()
	s.mergeStats(stats)
	s.profMu.Unlock()
}

// deleteOne removes (src,dst) if present: swap-with-last in the dense
// storage, index fix-up in the hash tier, then demotion checks against the
// low-water marks.
//
// saga:chunksafe
func (s *store) deleteOne(pool *chunkPools, st *chunkCounters, src, dst graph.NodeID) {
	if int(src) >= len(s.verts) {
		return
	}
	v := &s.verts[src]
	switch {
	case v.idx != nil:
		pos, ok := v.idx.get(dst, &st.scans)
		if !ok {
			return
		}
		last := len(v.arr) - 1
		if int(pos) != last {
			moved := v.arr[last]
			v.arr[pos] = moved
			v.idx.set(moved.ID, pos, &st.scans)
		}
		v.arr = v.arr[:last]
		v.idx.del(dst, &st.scans)
		v.deg--
		st.removed++
		if int(v.deg) <= s.unhashAt {
			pool.putIdx(v.idx)
			v.idx = nil
			st.demos++
			s.maybeInline(pool, v, st)
		}
	case v.arr != nil:
		for i := range v.arr {
			if v.arr[i].ID == dst {
				st.scans += uint64(i + 1)
				last := len(v.arr) - 1
				v.arr[i] = v.arr[last]
				v.arr = v.arr[:last]
				v.deg--
				st.removed++
				s.maybeInline(pool, v, st)
				return
			}
		}
		st.scans += uint64(len(v.arr))
	default:
		deg := int(v.deg)
		for i := 0; i < deg; i++ {
			if v.inline[i].ID == dst {
				st.scans += uint64(i + 1)
				v.inline[i] = v.inline[deg-1]
				v.inline[deg-1] = graph.Neighbor{}
				v.deg--
				st.removed++
				return
			}
		}
		st.scans += uint64(deg)
	}
}

// maybeInline demotes array→inline once the degree falls to the low-water
// mark, recycling the array.
//
// saga:chunksafe
func (s *store) maybeInline(pool *chunkPools, v *vertex, st *chunkCounters) {
	if v.idx != nil || v.arr == nil || int(v.deg) > s.uninlineAt {
		return
	}
	n := copy(v.inline[:], v.arr)
	for i := n; i < inlineSlots; i++ {
		v.inline[i] = graph.Neighbor{}
	}
	pool.putArr(v.arr)
	v.arr = nil
	st.demos++
	st.moved += uint64(n)
}

// Degree implements ds.OneDir.
func (s *store) Degree(v graph.NodeID) int {
	if int(v) >= len(s.verts) {
		return 0
	}
	return int(s.verts[v].deg)
}

// Neighbors implements ds.OneDir: always one contiguous copy, whatever the
// tier.
func (s *store) Neighbors(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	if int(v) >= len(s.verts) {
		return buf
	}
	return append(buf, s.verts[v].run()...)
}

// NumEdges implements ds.OneDir.
func (s *store) NumEdges() int {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	return s.numEdges
}

// NumNodes implements ds.OneDir.
func (s *store) NumNodes() int { return len(s.verts) }

// UpdateProfile implements ds.Profiler. Hash probes and linear-scan steps
// are both charged as ScanSteps; entries copied by tier transitions as
// MetaOps; transitions themselves as TierPromotions/TierDemotions.
func (s *store) UpdateProfile() ds.UpdateProfile {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	p := s.prof
	p.ChunkLoads = append([]uint64(nil), s.prof.ChunkLoads...)
	return p
}

// ResetProfile implements ds.Profiler.
func (s *store) ResetProfile() {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	s.prof = ds.UpdateProfile{ChunkLoads: make([]uint64, s.chunks)}
}

// Chunks reports the chunk count (for the architecture replayer).
func (s *store) Chunks() int { return s.chunks }

// TierOf reports v's current representation (for layout tests and the
// architecture replayer).
func (s *store) TierOf(v graph.NodeID) Tier {
	if int(v) >= len(s.verts) {
		return TierInline
	}
	switch vx := &s.verts[v]; {
	case vx.idx != nil:
		return TierHash
	case vx.arr != nil:
		return TierArray
	default:
		return TierInline
	}
}

// LayoutOf reports the dense-array capacity and index slot count backing
// v (zero for tiers that do not use them); layout tests and the
// architecture shadow crossvalidate against it.
func (s *store) LayoutOf(v graph.NodeID) (arrCap, idxSlots int) {
	if int(v) >= len(s.verts) {
		return 0, 0
	}
	vx := &s.verts[v]
	arrCap = cap(vx.arr)
	if vx.idx != nil {
		idxSlots = len(vx.idx.slots)
	}
	return arrCap, idxSlots
}

// Thresholds reports the tier boundaries (promotion high-water marks and
// demotion low-water marks) for tests and the shadow model.
func (s *store) Thresholds() (inlineAt, uninlineAt, hashAt, unhashAt int) {
	return s.inlineAt, s.uninlineAt, s.hashAt, s.unhashAt
}

// PoolRecycled reports cumulative pool hits across chunks (for the
// steady-state allocation tests).
func (s *store) PoolRecycled() uint64 {
	var n uint64
	for _, p := range s.pools {
		n += p.recycled
	}
	return n
}
