package hybrid

import (
	"fmt"
	"math/rand"
	"testing"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// mustGraph builds a registry-constructed hybrid graph (the TwoCopy
// wrapper the pipeline uses).
func mustGraph(t *testing.T, directed bool, threads int) *ds.TwoCopy {
	t.Helper()
	g, err := ds.New(Name, ds.Config{Directed: directed, Threads: threads})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g.(*ds.TwoCopy)
}

// apply pushes one insert batch through the raw store, growing the vertex
// space the way TwoCopy would.
func apply(s *store, edges ...graph.Edge) {
	max := 0
	for _, e := range edges {
		if int(e.Src) > max {
			max = int(e.Src)
		}
		if int(e.Dst) > max {
			max = int(e.Dst)
		}
	}
	s.EnsureNodes(max + 1)
	s.UpdateEdges(edges)
}

func neighborIDs(s *store, v graph.NodeID) []graph.NodeID {
	var ids []graph.NodeID
	for _, nb := range s.Neighbors(v, nil) {
		ids = append(ids, nb.ID)
	}
	return ids
}

// op is one scripted step: insert or delete (src,dst), then assert the
// source's tier and degree.
type op struct {
	del      bool
	src, dst graph.NodeID
	tier     Tier
	deg      int
}

func ins(src, dst graph.NodeID, tier Tier, deg int) op {
	return op{src: src, dst: dst, tier: tier, deg: deg}
}
func del(src, dst graph.NodeID, tier Tier, deg int) op {
	return op{del: true, src: src, dst: dst, tier: tier, deg: deg}
}

// TestTierTransitions scripts insertion/deletion sequences against a
// single-chunk store with hashAt=6 (so inlineAt=4, uninlineAt=2,
// unhashAt=3) and checks the representation after every step.
func TestTierTransitions(t *testing.T) {
	mkGrow := func(n int) []op {
		// Insert dsts 1..n from vertex 0, asserting the promotion points.
		var ops []op
		for i := 1; i <= n; i++ {
			tier := TierInline
			if i > 6 {
				tier = TierHash
			} else if i > 4 {
				tier = TierArray
			}
			ops = append(ops, ins(0, graph.NodeID(i), tier, i))
		}
		return ops
	}
	cases := []struct {
		name string
		ops  []op
	}{
		{
			name: "inline-array-hash promotion ladder",
			ops:  mkGrow(10),
		},
		{
			name: "overwrite at inline boundary does not promote",
			ops: append(mkGrow(4),
				ins(0, 4, TierInline, 4), // duplicate of the last inline dst
				ins(0, 1, TierInline, 4), // duplicate of the first
			),
		},
		{
			name: "overwrite at hash boundary does not promote",
			ops: append(mkGrow(6),
				ins(0, 6, TierArray, 6),
				ins(0, 3, TierArray, 6),
			),
		},
		{
			name: "mass deletes demote hash to array to inline",
			ops: append(mkGrow(10),
				del(0, 1, TierHash, 9),
				del(0, 2, TierHash, 8),
				del(0, 3, TierHash, 7),
				del(0, 4, TierHash, 6),
				del(0, 5, TierHash, 5),
				del(0, 6, TierHash, 4),
				del(0, 7, TierArray, 3),  // deg 3 = unhashAt: index dropped
				del(0, 8, TierInline, 2), // deg 2 = uninlineAt: array dropped
				del(0, 9, TierInline, 1),
				del(0, 10, TierInline, 0),
			),
		},
		{
			name: "hysteresis holds the hash tier across boundary flapping",
			ops: append(mkGrow(7),
				del(0, 7, TierHash, 6), // back to hashAt: no demotion
				ins(0, 7, TierHash, 7),
				del(0, 7, TierHash, 6),
				ins(0, 7, TierHash, 7),
				del(0, 7, TierHash, 6),
				del(0, 6, TierHash, 5),
				del(0, 5, TierHash, 4),
				ins(0, 5, TierHash, 5), // refill inside the band: still hash
			),
		},
		{
			name: "deleting absent edges never changes the tier",
			ops: append(mkGrow(5),
				del(0, 99, TierArray, 5),
				del(1, 99, TierInline, 0),
			),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newStore(1, 6, 0)
			oracle := map[graph.NodeID]bool{}
			for i, o := range tc.ops {
				if o.del {
					s.EnsureNodes(int(o.src) + 1)
					s.DeleteEdges([]graph.Edge{{Src: o.src, Dst: o.dst}})
					if o.src == 0 {
						delete(oracle, o.dst)
					}
				} else {
					apply(s, graph.Edge{Src: o.src, Dst: o.dst, Weight: 1})
					if o.src == 0 {
						oracle[o.dst] = true
					}
				}
				if got := s.TierOf(o.src); got != o.tier {
					t.Fatalf("op %d (%+v): tier = %v, want %v", i, o, got, o.tier)
				}
				if got := s.Degree(o.src); got != o.deg {
					t.Fatalf("op %d (%+v): degree = %d, want %d", i, o, got, o.deg)
				}
			}
			// Vertex 0's surviving neighbor set must match the oracle.
			got := map[graph.NodeID]bool{}
			for _, id := range neighborIDs(s, 0) {
				if got[id] {
					t.Fatalf("duplicate neighbor %d", id)
				}
				got[id] = true
			}
			if len(got) != len(oracle) {
				t.Fatalf("neighbor set %v, want %v", got, oracle)
			}
			for id := range oracle {
				if !got[id] {
					t.Fatalf("missing neighbor %d (have %v)", id, got)
				}
			}
		})
	}
}

// TestPromotionPreservesOrder checks that tier transitions never reorder a
// run: after the inline→array and array→hash promotions the neighbor
// order is still pure insertion order.
func TestPromotionPreservesOrder(t *testing.T) {
	s := newStore(1, 6, 0)
	var want []graph.NodeID
	for i := 1; i <= 20; i++ {
		apply(s, graph.Edge{Src: 0, Dst: graph.NodeID(i * 3), Weight: 1})
		want = append(want, graph.NodeID(i*3))
	}
	if s.TierOf(0) != TierHash {
		t.Fatalf("tier = %v, want hash", s.TierOf(0))
	}
	got := neighborIDs(s, 0)
	if len(got) != len(want) {
		t.Fatalf("degree %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d, want %d (promotion reordered the run)", i, got[i], want[i])
		}
	}
}

// TestHashTierWeightOverwrite checks duplicate ingestion in the hash tier
// rewrites the weight in place without growing the degree.
func TestHashTierWeightOverwrite(t *testing.T) {
	s := newStore(1, 4, 0)
	for i := 1; i <= 12; i++ {
		apply(s, graph.Edge{Src: 0, Dst: graph.NodeID(i), Weight: 1})
	}
	apply(s, graph.Edge{Src: 0, Dst: 7, Weight: 42})
	if got := s.Degree(0); got != 12 {
		t.Fatalf("degree = %d, want 12", got)
	}
	for _, nb := range s.Neighbors(0, nil) {
		if nb.ID == 7 && nb.Weight != 42 {
			t.Fatalf("weight = %v, want 42", nb.Weight)
		}
	}
	if s.NumEdges() != 12 {
		t.Fatalf("NumEdges = %d, want 12", s.NumEdges())
	}
}

// TestProfileCounters checks the tier-transition counters and the scan
// accounting surface through ds.Profiler.
func TestProfileCounters(t *testing.T) {
	s := newStore(1, 6, 0)
	var batch []graph.Edge
	for i := 1; i <= 10; i++ {
		batch = append(batch, graph.Edge{Src: 0, Dst: graph.NodeID(i), Weight: 1})
	}
	apply(s, batch...)
	p := s.UpdateProfile()
	if p.EdgesIngested != 10 || p.Inserted != 10 {
		t.Fatalf("ingested/inserted = %d/%d, want 10/10", p.EdgesIngested, p.Inserted)
	}
	if p.TierPromotions != 2 {
		t.Fatalf("promotions = %d, want 2 (inline→array, array→hash)", p.TierPromotions)
	}
	if p.TierDemotions != 0 {
		t.Fatalf("demotions = %d, want 0", p.TierDemotions)
	}
	if p.ScanSteps == 0 {
		t.Fatal("scan steps not counted")
	}
	// MetaOps charges transition copies: 4 inline→array + 7 index builds.
	if p.MetaOps == 0 {
		t.Fatal("transition copy work not charged to MetaOps")
	}

	// Drain to empty: hash→array and array→inline demotions.
	for i := 1; i <= 10; i++ {
		s.DeleteEdges([]graph.Edge{{Src: 0, Dst: graph.NodeID(i)}})
	}
	p2 := s.UpdateProfile()
	if p2.TierDemotions != 2 {
		t.Fatalf("demotions = %d, want 2", p2.TierDemotions)
	}
	d := p2.Delta(&p)
	if d.TierPromotions != 0 || d.TierDemotions != 2 {
		t.Fatalf("delta promotions/demotions = %d/%d, want 0/2", d.TierPromotions, d.TierDemotions)
	}

	s.ResetProfile()
	if p3 := s.UpdateProfile(); p3.TierPromotions != 0 || p3.ScanSteps != 0 {
		t.Fatalf("profile not reset: %+v", p3)
	}
}

// TestPoolsMakeSteadyStateAllocationFree drives a vertex through a full
// promote/demote cycle repeatedly: after the first cycle has stocked the
// chunk pools, further cycles must not allocate on the insert/delete path.
func TestPoolsMakeSteadyStateAllocationFree(t *testing.T) {
	s := newStore(1, 6, 0)
	s.EnsureNodes(32)
	pool := s.pools[0]
	var st chunkCounters
	cycle := func() {
		for i := 1; i <= 8; i++ {
			s.insertOne(pool, &st, 0, graph.NodeID(i), 1)
		}
		for i := 1; i <= 8; i++ {
			s.deleteOne(pool, &st, 0, graph.NodeID(i))
		}
	}
	cycle() // stock the pools
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("steady-state promote/demote cycle allocates %.1f times per cycle", allocs)
	}
	if s.PoolRecycled() == 0 {
		t.Fatal("pools never recycled anything")
	}
}

// TestUndirectedMirrorTrims deletes through the Graph API on an undirected
// hybrid and checks both orientations disappear, across a degree mix that
// puts the hub in the hash tier and the leaves inline.
func TestUndirectedMirrorTrims(t *testing.T) {
	g := mustGraph(t, false, 2)
	hub := graph.NodeID(0)
	var batch graph.Batch
	for i := 1; i <= 40; i++ {
		batch = append(batch, graph.Edge{Src: hub, Dst: graph.NodeID(i), Weight: 1})
	}
	g.Update(batch)
	if got := g.OutDegree(hub); got != 40 {
		t.Fatalf("hub degree = %d, want 40", got)
	}
	for i := 1; i <= 40; i += 2 {
		if err := g.Delete(graph.Batch{{Src: graph.NodeID(i), Dst: hub}}); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	if got := g.OutDegree(hub); got != 20 {
		t.Fatalf("hub degree after trims = %d, want 20", got)
	}
	for i := 1; i <= 40; i++ {
		want := 1
		if i%2 == 1 {
			want = 0
		}
		if got := g.OutDegree(graph.NodeID(i)); got != want {
			t.Fatalf("leaf %d degree = %d, want %d", i, got, want)
		}
		if got := g.InDegree(graph.NodeID(i)); got != want {
			t.Fatalf("leaf %d in-degree = %d, want %d", i, got, want)
		}
	}
	// The hub's surviving neighbors are exactly the even leaves.
	for _, nb := range g.OutNeigh(hub, nil) {
		if nb.ID%2 == 1 {
			t.Fatalf("deleted mirror (hub,%d) still present", nb.ID)
		}
	}
}

// TestDstIndexAgainstMap fuzzes the Robin Hood index against a plain map,
// including the backward-shift deletes and position rewrites the hash
// tier's swap-with-last depends on.
func TestDstIndexAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx := newDstIndex(0)
	oracle := map[graph.NodeID]int32{}
	var probes uint64
	for step := 0; step < 20000; step++ {
		dst := graph.NodeID(rng.Intn(300))
		switch rng.Intn(4) {
		case 0, 1: // insert or reposition
			pos := int32(rng.Intn(1 << 20))
			if _, ok := oracle[dst]; ok {
				idx.set(dst, pos, &probes)
			} else {
				idx.put(dst, pos, &probes)
			}
			oracle[dst] = pos
		case 2: // delete
			if _, ok := oracle[dst]; ok {
				idx.del(dst, &probes)
				delete(oracle, dst)
			}
		case 3: // lookup
			pos, ok := idx.get(dst, &probes)
			wantPos, wantOK := oracle[dst]
			if ok != wantOK || (ok && pos != wantPos) {
				t.Fatalf("step %d: get(%d) = (%d,%v), want (%d,%v)", step, dst, pos, ok, wantPos, wantOK)
			}
		}
		if idx.count != len(oracle) {
			t.Fatalf("step %d: count %d, want %d", step, idx.count, len(oracle))
		}
	}
	for dst, want := range oracle {
		if got, ok := idx.get(dst, &probes); !ok || got != want {
			t.Fatalf("final: get(%d) = (%d,%v), want (%d,true)", dst, got, ok, want)
		}
	}
	if probes == 0 {
		t.Fatal("probe accounting is dead")
	}
}

// TestTinyThresholds pins the degenerate configurations used by the shared
// delete-sequence battery: FlushThreshold 2 (inlineAt 1) and 1 (inline
// tier disabled) must still honor the tier order and stay correct.
func TestTinyThresholds(t *testing.T) {
	for _, ht := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("hashAt=%d", ht), func(t *testing.T) {
			s := newStore(1, ht, 0)
			for i := 1; i <= 6; i++ {
				apply(s, graph.Edge{Src: 0, Dst: graph.NodeID(i), Weight: 1})
				if got := s.Degree(0); got != i {
					t.Fatalf("degree = %d, want %d", got, i)
				}
			}
			if s.TierOf(0) != TierHash {
				t.Fatalf("tier = %v, want hash at degree 6", s.TierOf(0))
			}
			for i := 1; i <= 6; i++ {
				s.DeleteEdges([]graph.Edge{{Src: 0, Dst: graph.NodeID(i)}})
			}
			if got := s.Degree(0); got != 0 {
				t.Fatalf("degree = %d, want 0 after drain", got)
			}
			if s.TierOf(0) != TierInline {
				t.Fatalf("tier = %v, want inline after drain", s.TierOf(0))
			}
		})
	}
}
