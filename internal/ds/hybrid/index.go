package hybrid

import "sagabench/internal/graph"

// dstIndex is a Robin Hood open-addressing map from destination vertex to
// the neighbor's position in the owning vertex's dense edge array. It is
// the high-degree tier's lookup accelerator: the edge payload stays in the
// array (so traversal and flattening remain a contiguous walk), and the
// index only answers "where is dst?" in O(1) expected probes. Unlike DAH's
// shared per-chunk tables, one dstIndex serves exactly one vertex, so its
// probe clusters never interleave with other vertices' edges and deletes
// never reorder a bystander's run.
type dstIndex struct {
	slots []idxSlot
	count int
}

type idxSlot struct {
	used bool
	dst  graph.NodeID
	pos  int32
}

const idxMinSize = 16 // power of two
const idxMaxLoad = 0.7

func hashNode(v graph.NodeID) uint64 {
	x := uint64(v) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x
}

// idxSizeFor returns the power-of-two slot count that keeps n entries
// under the load factor.
func idxSizeFor(n int) int {
	size := idxMinSize
	for float64(n) > idxMaxLoad*float64(size) {
		size *= 2
	}
	return size
}

func newDstIndex(n int) *dstIndex {
	return &dstIndex{slots: make([]idxSlot, idxSizeFor(n))}
}

// reset clears the index for reuse with capacity for at least n entries.
// Oversized tables (>4x the need) are reallocated so a pool slot drained
// from a one-off mega-hub doesn't pin its memory forever.
func (t *dstIndex) reset(n int) {
	size := idxSizeFor(n)
	if len(t.slots) < size || len(t.slots) > 4*size {
		t.slots = make([]idxSlot, size)
	} else {
		for i := range t.slots {
			t.slots[i] = idxSlot{}
		}
	}
	t.count = 0
}

func (t *dstIndex) mask() uint64 { return uint64(len(t.slots) - 1) }

func (t *dstIndex) home(dst graph.NodeID) uint64 { return hashNode(dst) & t.mask() }

func (t *dstIndex) dist(slot uint64, dst graph.NodeID) uint64 {
	return (slot - t.home(dst)) & t.mask()
}

// get returns the array position of dst. Probes are charged to *probes so
// the profiler reports hash scan work like the other structures do.
func (t *dstIndex) get(dst graph.NodeID, probes *uint64) (int32, bool) {
	i := t.home(dst)
	var d uint64
	for {
		*probes++
		s := &t.slots[i]
		if !s.used || t.dist(i, s.dst) < d {
			return 0, false
		}
		if s.dst == dst {
			return s.pos, true
		}
		i = (i + 1) & t.mask()
		d++
	}
}

// put inserts dst→pos; the caller has established dst is absent. Grows at
// the load factor.
func (t *dstIndex) put(dst graph.NodeID, pos int32, probes *uint64) {
	if float64(t.count+1) > idxMaxLoad*float64(len(t.slots)) {
		t.grow(probes)
	}
	cur := idxSlot{used: true, dst: dst, pos: pos}
	i := t.home(cur.dst)
	var d uint64
	for {
		*probes++
		s := &t.slots[i]
		if !s.used {
			*s = cur
			t.count++
			return
		}
		if ed := t.dist(i, s.dst); ed < d {
			// Robin Hood: the resident is closer to home than the probe;
			// steal its slot and relocate it.
			cur, *s = *s, cur
			d = ed
		}
		i = (i + 1) & t.mask()
		d++
	}
}

func (t *dstIndex) grow(probes *uint64) {
	old := t.slots
	t.slots = make([]idxSlot, len(old)*2)
	t.count = 0
	for _, s := range old {
		if s.used {
			t.put(s.dst, s.pos, probes)
		}
	}
}

// set rewrites the position of an existing dst (a swap-with-last delete
// moved its array entry).
func (t *dstIndex) set(dst graph.NodeID, pos int32, probes *uint64) {
	i := t.home(dst)
	var d uint64
	for {
		*probes++
		s := &t.slots[i]
		if !s.used || t.dist(i, s.dst) < d {
			return
		}
		if s.dst == dst {
			s.pos = pos
			return
		}
		i = (i + 1) & t.mask()
		d++
	}
}

// del removes dst with backward shifting, preserving the Robin Hood
// invariant.
func (t *dstIndex) del(dst graph.NodeID, probes *uint64) {
	i := t.home(dst)
	var d uint64
	for {
		*probes++
		s := &t.slots[i]
		if !s.used || t.dist(i, s.dst) < d {
			return
		}
		if s.dst == dst {
			break
		}
		i = (i + 1) & t.mask()
		d++
	}
	for {
		j := (i + 1) & t.mask()
		if !t.slots[j].used || t.dist(j, t.slots[j].dst) == 0 {
			t.slots[i] = idxSlot{}
			break
		}
		t.slots[i] = t.slots[j]
		i = j
	}
	t.count--
}
