package hybrid

import (
	"math/bits"

	"sagabench/internal/graph"
)

// chunkPools recycles the high-churn heap objects of one chunk — edge
// arrays (by power-of-two size class) and dstIndex tables — so that tier
// transitions and array growth on a warmed-up store reuse memory instead
// of allocating. Each chunk owns its own pools (the store's pools slice is
// chunk-indexed), so workers recycle without locks or cross-chunk traffic.
type chunkPools struct {
	arrs [poolClasses][][]graph.Neighbor
	idxs []*dstIndex

	// recycled counts pool hits (arrays + indexes); the steady-state
	// allocation test uses it to prove transitions stop allocating.
	recycled uint64
}

// minArrCap is the smallest pooled array capacity; the array tier starts
// here so the first few appends after an inline→array promotion are free.
const minArrCap = 8

// poolClasses covers capacities minArrCap<<0 .. minArrCap<<(poolClasses-1);
// 24 classes reach 2^27 entries, far beyond any single vertex's degree.
const poolClasses = 24

// capFor returns the pooled (power-of-two) capacity for n entries.
func capFor(n int) int {
	c := minArrCap
	for c < n {
		c *= 2
	}
	return c
}

// classOf maps a pooled capacity to its size class, or -1 for foreign
// capacities (never produced by getArr, but putArr stays defensive).
func classOf(c int) int {
	if c < minArrCap || c&(c-1) != 0 {
		return -1
	}
	cls := bits.TrailingZeros(uint(c)) - bits.TrailingZeros(uint(minArrCap))
	if cls >= poolClasses {
		return -1
	}
	return cls
}

// getArr returns an empty array with capacity ≥ n, reusing a pooled one
// when the size class has stock.
//
// saga:hotpath
func (p *chunkPools) getArr(n int) []graph.Neighbor {
	c := capFor(n)
	if cls := classOf(c); cls >= 0 {
		if stack := p.arrs[cls]; len(stack) > 0 {
			a := stack[len(stack)-1]
			p.arrs[cls] = stack[:len(stack)-1]
			p.recycled++
			return a
		}
	}
	return make([]graph.Neighbor, 0, c) // saga:allow hotalloc -- cold-start fallback; warmed-up transitions hit the pool (AllocsPerRun asserts 0)
}

// putArr returns an array to its size-class stack.
//
// saga:hotpath
func (p *chunkPools) putArr(a []graph.Neighbor) {
	cls := classOf(cap(a))
	if cls < 0 {
		return
	}
	p.arrs[cls] = append(p.arrs[cls], a[:0]) // saga:allow hotalloc -- stack growth is amortized; steady state reuses the spine (AllocsPerRun asserts 0)
}

// getIdx returns an index sized for n entries, reusing a pooled table when
// available.
//
// saga:hotpath
func (p *chunkPools) getIdx(n int) *dstIndex {
	if len(p.idxs) > 0 {
		t := p.idxs[len(p.idxs)-1]
		p.idxs = p.idxs[:len(p.idxs)-1]
		t.reset(n)
		p.recycled++
		return t
	}
	return newDstIndex(n)
}

// putIdx returns an index to the pool.
//
// saga:hotpath
func (p *chunkPools) putIdx(t *dstIndex) {
	p.idxs = append(p.idxs, t) // saga:allow hotalloc -- stack growth is amortized; steady state reuses the spine (AllocsPerRun asserts 0)
}
