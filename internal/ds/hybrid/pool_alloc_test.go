package hybrid

import "testing"

// TestPoolOpsSteadyStateDoNotAllocate cross-validates the saga:allow
// hotalloc audits in pool.go at the pool-op level (the promote/demote
// cycle test covers the same property end-to-end): once each size class
// and the index pool are stocked, get/put round-trips must be free.
func TestPoolOpsSteadyStateDoNotAllocate(t *testing.T) {
	var p chunkPools
	p.putArr(p.getArr(8))  // stock the 8-class (audited cold make)
	p.putArr(p.getArr(64)) // stock the 64-class
	p.putIdx(p.getIdx(16)) // stock the index pool
	before := p.recycled
	if allocs := testing.AllocsPerRun(100, func() {
		a := p.getArr(8)
		b := p.getArr(64)
		p.putArr(a)
		p.putArr(b)
		idx := p.getIdx(16)
		p.putIdx(idx)
	}); allocs != 0 {
		t.Errorf("steady-state pool round-trip allocates %.1f times per cycle", allocs)
	}
	if p.recycled == before {
		t.Fatal("pool round-trips never recycled anything")
	}
}
