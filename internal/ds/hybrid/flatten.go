package hybrid

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Whatever the tier, a vertex's neighbors are one contiguous run (the
// inline record or the dense array), so flattening is zero-copy and no
// DirtyExpander is needed: updates to one vertex can never reorder
// another's run.

// FlatRun implements ds.RunFlattener; the slice is valid until the next
// update.
func (s *store) FlatRun(v graph.NodeID) []graph.Neighbor {
	if int(v) >= len(s.verts) {
		return nil
	}
	return s.verts[v].run()
}

// FlatFill implements ds.Flattener.
func (s *store) FlatFill(v graph.NodeID, dst []graph.Neighbor) int {
	return copy(dst, s.FlatRun(v))
}

var (
	_ ds.RunFlattener  = (*store)(nil)
	_ ds.OneDirDeleter = (*store)(nil)
	_ ds.Profiler      = (*store)(nil)
)
