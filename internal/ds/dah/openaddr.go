package dah

import (
	"sync/atomic"

	"sagabench/internal/graph"
)

// edgeTable is a per-source open-addressing (linear probing) hash of
// destination → weight: the edge storage of Fig 5's high-degree table.
type edgeTable struct {
	slots  []etSlot
	count  int
	probes atomic.Uint64
}

type etSlot struct {
	used bool
	dst  graph.NodeID
	w    graph.Weight
}

const etInitialSize = 32
const etMaxLoad = 0.7

func newEdgeTable(capHint int) *edgeTable {
	size := etInitialSize
	for float64(capHint) > etMaxLoad*float64(size) {
		size *= 2
	}
	return &edgeTable{slots: make([]etSlot, size)}
}

func (t *edgeTable) mask() uint64 { return uint64(len(t.slots) - 1) }

// put inserts or overwrites dst, reporting whether a new entry was created.
func (t *edgeTable) put(dst graph.NodeID, w graph.Weight) bool {
	if float64(t.count+1) > etMaxLoad*float64(len(t.slots)) {
		t.grow()
	}
	i := hashNode(dst) & t.mask()
	var n uint64
	defer func() { t.probes.Add(n) }()
	for {
		n++
		s := &t.slots[i]
		if !s.used {
			*s = etSlot{used: true, dst: dst, w: w}
			t.count++
			return true
		}
		if s.dst == dst {
			s.w = w
			return false
		}
		i = (i + 1) & t.mask()
	}
}

func (t *edgeTable) grow() {
	old := t.slots
	t.slots = make([]etSlot, len(old)*2)
	t.count = 0
	for _, s := range old {
		if s.used {
			t.put(s.dst, s.w)
		}
	}
}

// forEach yields every stored edge in slot order.
func (t *edgeTable) forEach(yield func(dst graph.NodeID, w graph.Weight)) {
	for i := range t.slots {
		if t.slots[i].used {
			yield(t.slots[i].dst, t.slots[i].w)
		}
	}
}

// dirTable is the high-degree directory: an open-addressing hash keyed by
// source vertex whose values are the per-source edge tables. Probing it is
// the degree-query meta-operation DAH pays on every update and traversal.
type dirTable struct {
	slots  []dirSlot
	count  int
	probes atomic.Uint64
}

type dirSlot struct {
	used  bool
	src   graph.NodeID
	edges *edgeTable
}

const dirInitialSize = 64

func newDirTable() *dirTable {
	return &dirTable{slots: make([]dirSlot, dirInitialSize)}
}

func (t *dirTable) mask() uint64 { return uint64(len(t.slots) - 1) }

// get returns src's edge table, or nil when src is low-degree.
func (t *dirTable) get(src graph.NodeID) *edgeTable {
	i := hashNode(src) & t.mask()
	var n uint64
	defer func() { t.probes.Add(n) }()
	for {
		n++
		s := &t.slots[i]
		if !s.used {
			return nil
		}
		if s.src == src {
			return s.edges
		}
		i = (i + 1) & t.mask()
	}
}

// put registers src's edge table (src must be absent).
func (t *dirTable) put(src graph.NodeID, edges *edgeTable) {
	if float64(t.count+1) > etMaxLoad*float64(len(t.slots)) {
		t.grow()
	}
	i := hashNode(src) & t.mask()
	var n uint64
	defer func() { t.probes.Add(n) }()
	for {
		n++
		s := &t.slots[i]
		if !s.used {
			*s = dirSlot{used: true, src: src, edges: edges}
			t.count++
			return
		}
		i = (i + 1) & t.mask()
	}
}

func (t *dirTable) grow() {
	old := t.slots
	t.slots = make([]dirSlot, len(old)*2)
	t.count = 0
	for _, s := range old {
		if s.used {
			t.put(s.src, s.edges)
		}
	}
}

// forEach yields every (src, edge table) pair.
func (t *dirTable) forEach(yield func(src graph.NodeID, edges *edgeTable)) {
	for i := range t.slots {
		if t.slots[i].used {
			yield(t.slots[i].src, t.slots[i].edges)
		}
	}
}

// del removes dst via backward-shift deletion (the linear-probing
// analogue of the Robin Hood table's deleteAt), reporting whether the
// entry existed.
func (t *edgeTable) del(dst graph.NodeID) bool {
	var n uint64
	defer func() { t.probes.Add(n) }()
	mask := t.mask()
	i := hashNode(dst) & mask
	for {
		n++
		s := &t.slots[i]
		if !s.used {
			return false
		}
		if s.dst == dst {
			break
		}
		i = (i + 1) & mask
	}
	// Backward shift: close the hole by pulling forward any later entry
	// in the probe run whose home slot does not lie cyclically inside
	// (hole, entry].
	hole := i
	t.slots[hole] = etSlot{}
	j := hole
	for {
		j = (j + 1) & mask
		s := &t.slots[j]
		if !s.used {
			break
		}
		home := hashNode(s.dst) & mask
		// Entry at j may fill the hole iff home is outside (hole, j].
		inside := false
		if hole < j {
			inside = home > hole && home <= j
		} else {
			inside = home > hole || home <= j
		}
		if !inside {
			t.slots[hole] = *s
			*s = etSlot{}
			hole = j
		}
	}
	t.count--
	return true
}
