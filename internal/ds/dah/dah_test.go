package dah

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// TestRobinHoodInvariant checks the defining property after random
// insert/remove workloads: scanning from any occupied slot, an entry's
// probe distance never exceeds the query distance at its position — i.e.
// lookups may terminate at the first "richer" resident.
func TestRobinHoodInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := newRHTable()
	type pair struct{ src, dst graph.NodeID }
	present := map[pair]bool{}
	for i := 0; i < 3000; i++ {
		src := graph.NodeID(rng.Intn(60))
		dst := graph.NodeID(rng.Intn(200))
		p := pair{src, dst}
		if rng.Intn(5) == 0 {
			tb.removeAll(src)
			for q := range present {
				if q.src == src {
					delete(present, q)
				}
			}
			continue
		}
		if !present[p] {
			if tb.lookup(src, dst) >= 0 {
				t.Fatal("lookup found an absent pair")
			}
			tb.insert(src, dst, 1)
			present[p] = true
		}
	}
	// Invariant over the whole table.
	for i := range tb.slots {
		s := tb.slots[i]
		if !s.used {
			continue
		}
		d := tb.dist(uint64(i), s.src)
		// Walk back d slots: all must be occupied (no holes inside a
		// probe run — Robin Hood with backward-shift deletion).
		for k := uint64(1); k <= d; k++ {
			j := (uint64(i) - k) & tb.mask()
			if !tb.slots[j].used {
				t.Fatalf("hole at %d inside probe run of slot %d (dist %d)", j, i, d)
			}
		}
	}
	// All present pairs findable, all others not.
	for p := range present {
		if tb.lookup(p.src, p.dst) < 0 {
			t.Fatalf("pair %v lost", p)
		}
	}
	if tb.count != len(present) {
		t.Fatalf("count=%d want %d", tb.count, len(present))
	}
}

func TestRobinHoodForEach(t *testing.T) {
	tb := newRHTable()
	want := map[graph.NodeID]graph.Weight{}
	for i := 0; i < 10; i++ {
		dst := graph.NodeID(i * 3)
		w := graph.Weight(i + 1)
		tb.insert(5, dst, w)
		want[dst] = w
	}
	tb.insert(6, 1, 9) // different source must not appear
	got := map[graph.NodeID]graph.Weight{}
	tb.forEach(5, func(dst graph.NodeID, w graph.Weight) { got[dst] = w })
	if len(got) != len(want) {
		t.Fatalf("forEach yielded %d edges want %d", len(got), len(want))
	}
	for dst, w := range want {
		if got[dst] != w {
			t.Fatalf("dst %d weight %v want %v", dst, got[dst], w)
		}
	}
}

func TestRobinHoodGrowth(t *testing.T) {
	tb := newRHTable()
	n := rhInitialSize * 2 // force at least two growths
	for i := 0; i < n; i++ {
		tb.insert(graph.NodeID(i%31), graph.NodeID(i), 1)
	}
	if tb.count != n {
		t.Fatalf("count=%d want %d", tb.count, n)
	}
	if float64(tb.count) > rhMaxLoad*float64(len(tb.slots)) {
		t.Fatalf("load factor exceeded after growth: %d/%d", tb.count, len(tb.slots))
	}
	for i := 0; i < n; i++ {
		if tb.lookup(graph.NodeID(i%31), graph.NodeID(i)) < 0 {
			t.Fatalf("pair %d lost across growth", i)
		}
	}
}

// TestRobinHoodQuick is a property test: any sequence of inserts of
// distinct pairs is fully retrievable and enumeration per source matches.
func TestRobinHoodQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		tb := newRHTable()
		type pair struct{ src, dst graph.NodeID }
		present := map[pair]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			p := pair{graph.NodeID(raw[i] % 128), graph.NodeID(raw[i+1])}
			if present[p] {
				continue
			}
			tb.insert(p.src, p.dst, 1)
			present[p] = true
		}
		perSrc := map[graph.NodeID]int{}
		for p := range present {
			if tb.lookup(p.src, p.dst) < 0 {
				return false
			}
			perSrc[p.src]++
		}
		for src, want := range perSrc {
			n := 0
			tb.forEach(src, func(graph.NodeID, graph.Weight) { n++ })
			if n != want {
				return false
			}
		}
		return tb.count == len(present)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFlushToHighDegree(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1, FlushThreshold: 8})
	st := g.(*ds.TwoCopy).OutStore().(*store)
	var batch graph.Batch
	for i := 0; i < 20; i++ {
		batch = append(batch, graph.Edge{Src: 4, Dst: graph.NodeID(100 + i), Weight: 1})
	}
	g.Update(batch)
	if !st.IsHighDegree(4) {
		t.Fatal("vertex 4 should have been flushed to the high-degree table")
	}
	if g.OutDegree(4) != 20 {
		t.Fatalf("degree=%d want 20", g.OutDegree(4))
	}
	ns := g.OutNeigh(4, nil)
	if len(ns) != 20 {
		t.Fatalf("neighbors=%d want 20", len(ns))
	}
	// Low-degree vertices stay in the Robin Hood table.
	g.Update(graph.Batch{{Src: 5, Dst: 1, Weight: 1}})
	if st.IsHighDegree(5) {
		t.Fatal("vertex 5 flushed prematurely")
	}
	// The flush must have emptied 4's low-table entries.
	counts, _ := st.LowTableStats()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1 { // only 5→1 remains
		t.Fatalf("low tables hold %d entries want 1", total)
	}
}

func TestDAHMetaOpsCounted(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 2, FlushThreshold: 4})
	var batch graph.Batch
	for i := 0; i < 50; i++ {
		batch = append(batch, graph.Edge{Src: graph.NodeID(i % 5), Dst: graph.NodeID(i), Weight: 1})
	}
	g.Update(batch)
	p, ok := ds.ProfileOf(g)
	if !ok {
		t.Fatal("no profile")
	}
	if p.MetaOps == 0 {
		t.Fatal("meta-operations not counted")
	}
	if p.ScanSteps == 0 {
		t.Fatal("hash probes not counted")
	}
}

func TestMaxProbeStaysBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tb := newRHTable()
	for i := 0; i < 500; i++ {
		tb.insert(graph.NodeID(rng.Intn(40)), graph.NodeID(i), 1)
	}
	worst := 0
	for src := graph.NodeID(0); src < 40; src++ {
		if p := tb.maxProbeOf(src); p > worst {
			worst = p
		}
	}
	// Robin Hood at 0.7 load keeps probe runs modest; a pathological
	// linear-probing table would show runs near the table size.
	if worst > len(tb.slots)/2 {
		t.Fatalf("probe run %d of %d slots — invariant likely broken", worst, len(tb.slots))
	}
}

func TestEdgeTableGrowth(t *testing.T) {
	et := newEdgeTable(0)
	for i := 0; i < 200; i++ {
		if !et.put(graph.NodeID(i), graph.Weight(i)) {
			t.Fatalf("fresh dst %d reported duplicate", i)
		}
	}
	if et.put(7, 99) {
		t.Fatal("existing dst reported fresh")
	}
	n := 0
	var w7 graph.Weight
	et.forEach(func(dst graph.NodeID, w graph.Weight) {
		n++
		if dst == 7 {
			w7 = w
		}
	})
	if n != 200 || w7 != 99 {
		t.Fatalf("forEach n=%d w7=%v", n, w7)
	}
}
