// Package dah implements DAH: degree-aware hashing (paper Section III-A4,
// Fig 5; after Iwabuchi et al.'s DegAwareRHH). Each chunk is a
// single-threaded, lockless pair of hash tables: a Robin Hood table keyed
// by source vertex stores the edges of low-degree vertices, and a
// high-degree directory (open-addressing) maps hub vertices to dedicated
// per-source open-addressing edge tables. Edge updates are amortized
// constant time, but every update and traversal pays degree-query
// meta-operations (directory probes) and low→high flushes, which the paper
// identifies as DAH's overhead on short-tailed graphs. Multithreading is
// chunked-style like AC, so a heavy-tailed batch funnels into the hub's
// chunk — the workload-imbalance pathology of Section VI-B.
//
// saga:lockless — chunk workers may only touch chunk-owned state
// (enforced by sagavet; see internal/analysis).
package dah

import (
	"sync"
	"sync/atomic"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Name is the registry key.
const Name = "dah"

// DefaultFlushThreshold is the low→high degree boundary.
const DefaultFlushThreshold = 16

func init() {
	ds.Register(Name, func(cfg ds.Config) ds.Graph {
		chunks := cfg.Chunks
		if chunks <= 0 {
			if cfg.Threads > 0 {
				chunks = cfg.Threads
			} else {
				chunks = 1
			}
		}
		ft := cfg.FlushThreshold
		if ft <= 0 {
			ft = DefaultFlushThreshold
		}
		return ds.NewTwoCopy(cfg.Directed, func() ds.OneDir {
			return newStore(chunks, ft)
		})
	})
}

// chunkStore is the single-threaded per-chunk state. Vertex v belongs to
// chunk v mod chunks and is indexed locally by v div chunks.
type chunkStore struct {
	low  *rhTable
	dir  *dirTable
	deg  []int32       // distinct degree per local vertex
	meta atomic.Uint64 // degree-query + flush meta-operations
}

func (c *chunkStore) ensureLocal(n int) {
	for len(c.deg) < n {
		c.deg = append(c.deg, 0)
	}
}

type store struct {
	chunks    int
	flushAt   int
	numNodes  int
	numEdges  int           // saga:guardedby profMu
	chunkData []*chunkStore // saga:chunked

	profMu sync.Mutex
	prof   ds.UpdateProfile // saga:guardedby profMu
}

func newStore(chunks, flushAt int) *store {
	s := &store{chunks: chunks, flushAt: flushAt}
	s.chunkData = make([]*chunkStore, chunks)
	for i := range s.chunkData {
		s.chunkData[i] = &chunkStore{low: newRHTable(), dir: newDirTable()}
	}
	// saga:allow lockheld -- constructor: s is not shared yet.
	s.prof.ChunkLoads = make([]uint64, chunks)
	return s
}

// EnsureNodes implements ds.OneDir.
func (s *store) EnsureNodes(n int) {
	if n <= s.numNodes {
		return
	}
	s.numNodes = n
	for c, cs := range s.chunkData {
		// Local count: vertices v < n with v mod chunks == c.
		local := (n - c + s.chunks - 1) / s.chunks
		cs.ensureLocal(local)
	}
}

func (s *store) chunkOf(v graph.NodeID) (*chunkStore, int) {
	c := int(v) % s.chunks
	return s.chunkData[c], int(v) / s.chunks
}

// UpdateEdges implements ds.OneDir: chunked-style multithreading; each
// chunk's bucket is ingested by one worker with no locks.
func (s *store) UpdateEdges(edges []graph.Edge) {
	inserted := make([]uint64, s.chunks)
	loads := make([]uint64, s.chunks)
	ds.GroupByChunk(edges, s.chunks, func(chunk int, bucket []graph.Edge) {
		cs := s.chunkData[chunk]
		var ins uint64
		for _, e := range bucket {
			if s.insertInChunk(cs, e.Src, e.Dst, e.Weight) {
				ins++
			}
		}
		inserted[chunk] = ins
		loads[chunk] = uint64(len(bucket))
	})
	s.profMu.Lock()
	s.prof.EdgesIngested += uint64(len(edges))
	for c := 0; c < s.chunks; c++ {
		s.prof.Inserted += inserted[c]
		s.prof.ChunkLoads[c] += loads[c]
		s.numEdges += int(inserted[c])
	}
	s.profMu.Unlock()
}

// insertInChunk performs one degree-aware insertion; reports whether a new
// edge was created. It mutates only the chunk state passed as cs, so
// chunk workers may call it on their own bucket.
//
// saga:chunksafe
func (s *store) insertInChunk(cs *chunkStore, src, dst graph.NodeID, w graph.Weight) bool {
	local := int(src) / s.chunks
	// Meta-operation 1: query which table owns src before placement.
	cs.meta.Add(1)
	if et := cs.dir.get(src); et != nil {
		if et.put(dst, w) {
			cs.deg[local]++
			return true
		}
		return false
	}
	// Low-degree path: unique ingestion via Robin Hood search.
	if idx := cs.low.lookup(src, dst); idx >= 0 {
		cs.low.slots[idx].w = w
		return false
	}
	cs.low.insert(src, dst, w)
	cs.deg[local]++
	// Meta-operation 2: flush src's edges to the high-degree table once
	// its degree crosses the threshold.
	if int(cs.deg[local]) > s.flushAt {
		moved := cs.low.removeAll(src)
		et := newEdgeTable(len(moved) * 2)
		for _, nb := range moved {
			et.put(nb.ID, nb.Weight)
		}
		cs.dir.put(src, et)
		cs.meta.Add(uint64(len(moved)))
	}
	return true
}

// Degree implements ds.OneDir.
func (s *store) Degree(v graph.NodeID) int {
	cs, local := s.chunkOf(v)
	if local >= len(cs.deg) {
		return 0
	}
	return int(cs.deg[local])
}

// Neighbors implements ds.OneDir. Traversal pays the same degree-query
// meta-operation as updates: a directory probe decides which table to walk.
func (s *store) Neighbors(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	cs, local := s.chunkOf(v)
	if local >= len(cs.deg) {
		return buf
	}
	cs.meta.Add(1)
	if et := cs.dir.get(v); et != nil {
		et.forEach(func(dst graph.NodeID, w graph.Weight) {
			buf = append(buf, graph.Neighbor{ID: dst, Weight: w})
		})
		return buf
	}
	cs.low.forEach(v, func(dst graph.NodeID, w graph.Weight) {
		buf = append(buf, graph.Neighbor{ID: dst, Weight: w})
	})
	return buf
}

// NumEdges implements ds.OneDir.
func (s *store) NumEdges() int {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	return s.numEdges
}

// NumNodes implements ds.OneDir.
func (s *store) NumNodes() int { return s.numNodes }

// UpdateProfile implements ds.Profiler; hash probes across all tables are
// charged as scan steps and directory/flush work as meta-operations.
func (s *store) UpdateProfile() ds.UpdateProfile {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	p := s.prof
	p.ChunkLoads = append([]uint64(nil), s.prof.ChunkLoads...)
	for _, cs := range s.chunkData {
		p.MetaOps += cs.meta.Load()
		p.ScanSteps += cs.low.probes.Load() + cs.dir.probes.Load()
		cs.dir.forEach(func(_ graph.NodeID, et *edgeTable) {
			p.ScanSteps += et.probes.Load()
		})
	}
	return p
}

// ResetProfile implements ds.Profiler.
func (s *store) ResetProfile() {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	s.prof = ds.UpdateProfile{ChunkLoads: make([]uint64, s.chunks)}
	for _, cs := range s.chunkData {
		cs.meta.Store(0)
		cs.low.probes.Store(0)
		cs.dir.probes.Store(0)
		cs.dir.forEach(func(_ graph.NodeID, et *edgeTable) { et.probes.Store(0) })
	}
}

// DeleteEdges implements ds.OneDirDeleter: the owning chunk routes the
// removal to whichever table holds the source (one more degree-query
// meta-operation) and deletes with backward shifting. Flushed vertices
// are not demoted back to the low-degree table.
func (s *store) DeleteEdges(edges []graph.Edge) {
	removed := make([]uint64, s.chunks)
	ds.GroupByChunk(edges, s.chunks, func(chunk int, bucket []graph.Edge) {
		cs := s.chunkData[chunk]
		var rem uint64
		for _, e := range bucket {
			local := int(e.Src) / s.chunks
			cs.meta.Add(1)
			if et := cs.dir.get(e.Src); et != nil {
				if et.del(e.Dst) {
					cs.deg[local]--
					rem++
				}
				continue
			}
			if idx := cs.low.lookup(e.Src, e.Dst); idx >= 0 {
				cs.low.deleteAt(uint64(idx))
				cs.deg[local]--
				rem++
			}
		}
		removed[chunk] = rem
	})
	s.profMu.Lock()
	for c := 0; c < s.chunks; c++ {
		s.numEdges -= int(removed[c])
	}
	s.profMu.Unlock()
}

// Chunks reports the chunk count.
func (s *store) Chunks() int { return s.chunks }

// IsHighDegree reports whether v has been flushed to the high-degree table
// (for layout tests and the architecture replayer).
func (s *store) IsHighDegree(v graph.NodeID) bool {
	cs, _ := s.chunkOf(v)
	return cs.dir.get(v) != nil
}

// LowTableStats reports per-chunk Robin Hood occupancy (count, capacity);
// layout tests use it.
func (s *store) LowTableStats() (counts, caps []int) {
	for _, cs := range s.chunkData {
		counts = append(counts, cs.low.count)
		caps = append(caps, len(cs.low.slots))
	}
	return
}
