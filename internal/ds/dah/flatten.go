package dah

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// DAH flattening drains whichever table owns the vertex — the dedicated
// high-degree table from the directory, or the chunk's shared Robin Hood
// table — after the same directory probe traversal pays, writing straight
// into the view's run instead of appending through Neighbors.

// FlatFill implements ds.Flattener. Iteration order matches Neighbors
// exactly: both walk the same table in slot order.
func (s *store) FlatFill(v graph.NodeID, dst []graph.Neighbor) int {
	cs, local := s.chunkOf(v)
	if local >= len(cs.deg) {
		return 0
	}
	cs.meta.Add(1)
	n := 0
	if et := cs.dir.get(v); et != nil {
		et.forEach(func(dst2 graph.NodeID, w graph.Weight) {
			dst[n] = graph.Neighbor{ID: dst2, Weight: w}
			n++
		})
		return n
	}
	cs.low.forEach(v, func(dst2 graph.NodeID, w graph.Weight) {
		dst[n] = graph.Neighbor{ID: dst2, Weight: w}
		n++
	})
	return n
}

// ExpandDirty implements ds.DirtyExpander. The chunk's low-degree table
// is shared by every vertex of the chunk, and Robin Hood displacement on
// insert (and backward shift on delete) can move a bystander vertex's
// slots, changing its iteration order even though its adjacency set did
// not change. A run copied from the previous mirror would then diverge
// from a fresh drain, so any update landing in a chunk dirties the whole
// chunk: vertex v lives in chunk v mod chunks, interleaved with stride
// chunks.
func (s *store) ExpandDirty(touched []graph.NodeID, mark func(v graph.NodeID)) {
	seen := make([]bool, s.chunks)
	for _, v := range touched {
		c := int(v) % s.chunks
		if c < 0 || seen[c] {
			continue
		}
		seen[c] = true
		for u := c; u < s.numNodes; u += s.chunks {
			mark(graph.NodeID(u))
		}
	}
}

var _ ds.Flattener = (*store)(nil)
var _ ds.DirtyExpander = (*store)(nil)
