package dah

import (
	"testing"

	"sagabench/internal/graph"
)

// FuzzRobinHoodOps drives the Robin Hood table with an arbitrary byte
// program (2 bytes = one op: insert/lookup/removeAll over a small key
// space) and checks it against a map model after every op.
func FuzzRobinHoodOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 128, 7, 9, 200, 14, 3})
	f.Fuzz(func(t *testing.T, prog []byte) {
		tb := newRHTable()
		type pair struct{ src, dst graph.NodeID }
		model := map[pair]graph.Weight{}
		for i := 0; i+1 < len(prog); i += 2 {
			src := graph.NodeID(prog[i] % 32)
			dst := graph.NodeID(prog[i+1])
			switch prog[i] % 3 {
			case 0: // insert (unique-ingestion discipline)
				p := pair{src, dst}
				if idx := tb.lookup(src, dst); idx >= 0 {
					tb.slots[idx].w = graph.Weight(i)
				} else {
					tb.insert(src, dst, graph.Weight(i))
				}
				model[p] = graph.Weight(i)
			case 1: // lookup must agree with the model
				_, want := model[pair{src, dst}]
				if got := tb.lookup(src, dst) >= 0; got != want {
					t.Fatalf("op %d: lookup(%d,%d)=%v want %v", i, src, dst, got, want)
				}
			case 2: // removeAll
				removed := tb.removeAll(src)
				n := 0
				for p := range model {
					if p.src == src {
						delete(model, p)
						n++
					}
				}
				if len(removed) != n {
					t.Fatalf("op %d: removeAll(%d) removed %d want %d", i, src, len(removed), n)
				}
			}
			if tb.count != len(model) {
				t.Fatalf("op %d: count=%d want %d", i, tb.count, len(model))
			}
		}
		// Final state: everything in the model is enumerable.
		perSrc := map[graph.NodeID]int{}
		for p := range model {
			perSrc[p.src]++
		}
		for src, want := range perSrc {
			got := 0
			tb.forEach(src, func(graph.NodeID, graph.Weight) { got++ })
			if got != want {
				t.Fatalf("forEach(%d) yielded %d want %d", src, got, want)
			}
		}
	})
}

// FuzzEdgeTableOps drives the open-addressing edge table (put/del) against
// a map model, exercising backward-shift deletion.
func FuzzEdgeTableOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, prog []byte) {
		et := newEdgeTable(0)
		model := map[graph.NodeID]bool{}
		for i := 0; i+1 < len(prog); i += 2 {
			dst := graph.NodeID(prog[i+1])
			if prog[i]%2 == 0 {
				fresh := et.put(dst, 1)
				if fresh == model[dst] {
					t.Fatalf("op %d: put(%d) fresh=%v but present=%v", i, dst, fresh, model[dst])
				}
				model[dst] = true
			} else {
				existed := et.del(dst)
				if existed != model[dst] {
					t.Fatalf("op %d: del(%d)=%v want %v", i, dst, existed, model[dst])
				}
				delete(model, dst)
			}
			if et.count != len(model) {
				t.Fatalf("op %d: count=%d want %d", i, et.count, len(model))
			}
		}
		seen := 0
		et.forEach(func(dst graph.NodeID, _ graph.Weight) {
			if !model[dst] {
				t.Fatalf("phantom entry %d", dst)
			}
			seen++
		})
		if seen != len(model) {
			t.Fatalf("forEach yielded %d want %d", seen, len(model))
		}
	})
}
