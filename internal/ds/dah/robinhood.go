package dah

import (
	"sync/atomic"

	"sagabench/internal/graph"
)

// rhTable is a Robin Hood open-addressing hash table holding one entry per
// edge, keyed by source vertex (Fig 5's low-degree table). Entries of one
// source cluster around the source's home slot, so both duplicate search
// and neighbor traversal probe a short run bounded by the Robin Hood
// invariant: probing may stop at an empty slot or at an entry whose own
// probe distance is smaller than the query's current distance.
type rhTable struct {
	slots []rhSlot
	count int
	// probes counts slot examinations; the profiler charges them as
	// hash scan work. Atomic because traversal during the compute phase
	// runs concurrently across workers.
	probes atomic.Uint64
}

type rhSlot struct {
	used bool
	src  graph.NodeID
	dst  graph.NodeID
	w    graph.Weight
}

const rhInitialSize = 256 // power of two
const rhMaxLoad = 0.7

func newRHTable() *rhTable {
	return &rhTable{slots: make([]rhSlot, rhInitialSize)}
}

func hashNode(v graph.NodeID) uint64 {
	x := uint64(v) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x
}

func (t *rhTable) mask() uint64 { return uint64(len(t.slots) - 1) }

func (t *rhTable) home(src graph.NodeID) uint64 { return hashNode(src) & t.mask() }

func (t *rhTable) dist(slot uint64, src graph.NodeID) uint64 {
	return (slot - t.home(src)) & t.mask()
}

// lookup returns the slot index holding (src,dst), or -1.
func (t *rhTable) lookup(src, dst graph.NodeID) int {
	i := t.home(src)
	var d, n uint64
	defer func() { t.probes.Add(n) }()
	for {
		n++
		s := &t.slots[i]
		if !s.used {
			return -1
		}
		if t.dist(i, s.src) < d {
			return -1
		}
		if s.src == src && s.dst == dst {
			return int(i)
		}
		i = (i + 1) & t.mask()
		d++
	}
}

// insert adds (src,dst,w); the caller has already established the pair is
// absent. Grows at rhMaxLoad.
func (t *rhTable) insert(src, dst graph.NodeID, w graph.Weight) {
	if float64(t.count+1) > rhMaxLoad*float64(len(t.slots)) {
		t.grow()
	}
	cur := rhSlot{used: true, src: src, dst: dst, w: w}
	i := t.home(cur.src)
	var d, n uint64
	defer func() { t.probes.Add(n) }()
	for {
		n++
		s := &t.slots[i]
		if !s.used {
			*s = cur
			t.count++
			return
		}
		if ed := t.dist(i, s.src); ed < d {
			// Robin Hood: the resident is closer to home than the
			// probe; steal its slot and relocate it.
			cur, *s = *s, cur
			d = ed
		}
		i = (i + 1) & t.mask()
		d++
	}
}

func (t *rhTable) grow() {
	old := t.slots
	t.slots = make([]rhSlot, len(old)*2)
	t.count = 0
	for _, s := range old {
		if s.used {
			t.insert(s.src, s.dst, s.w)
		}
	}
}

// forEach yields every edge of src. The yield function must not mutate the
// table.
func (t *rhTable) forEach(src graph.NodeID, yield func(dst graph.NodeID, w graph.Weight)) {
	i := t.home(src)
	var d, n uint64
	defer func() { t.probes.Add(n) }()
	for {
		n++
		s := &t.slots[i]
		if !s.used {
			return
		}
		if t.dist(i, s.src) < d {
			return
		}
		if s.src == src {
			yield(s.dst, s.w)
		}
		i = (i + 1) & t.mask()
		d++
	}
}

// removeAll deletes every edge of src (used by the low→high flush),
// returning the removed edges. Deletion uses backward shifting to preserve
// the Robin Hood invariant.
func (t *rhTable) removeAll(src graph.NodeID) []graph.Neighbor {
	var out []graph.Neighbor
	for {
		idx := t.firstOf(src)
		if idx < 0 {
			return out
		}
		out = append(out, graph.Neighbor{ID: t.slots[idx].dst, Weight: t.slots[idx].w})
		t.deleteAt(uint64(idx))
	}
}

func (t *rhTable) firstOf(src graph.NodeID) int {
	i := t.home(src)
	var d, n uint64
	defer func() { t.probes.Add(n) }()
	for {
		n++
		s := &t.slots[i]
		if !s.used {
			return -1
		}
		if t.dist(i, s.src) < d {
			return -1
		}
		if s.src == src {
			return int(i)
		}
		i = (i + 1) & t.mask()
		d++
	}
}

func (t *rhTable) deleteAt(i uint64) {
	for {
		j := (i + 1) & t.mask()
		if !t.slots[j].used || t.dist(j, t.slots[j].src) == 0 {
			t.slots[i] = rhSlot{}
			break
		}
		t.slots[i] = t.slots[j]
		i = j
	}
	t.count--
}

// maxProbeOf reports the probe distance needed to enumerate src's cluster;
// layout tests use it to check the Robin Hood invariant keeps clusters
// short.
func (t *rhTable) maxProbeOf(src graph.NodeID) int {
	i := t.home(src)
	var d uint64
	max := 0
	for {
		s := &t.slots[i]
		if !s.used || t.dist(i, s.src) < d {
			return max
		}
		if s.src == src {
			max = int(d) + 1
		}
		i = (i + 1) & t.mask()
		d++
	}
}
