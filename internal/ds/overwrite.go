package ds

import "sagabench/internal/graph"

// Overwritten scans batch against g's CURRENT topology — call it before
// Update — and returns one edge per (src, dst) pair whose stored weight
// the batch will change, carrying the OLD weight. The result is what a
// compute.WeightChangeAware engine needs to invalidate values that were
// derived through the pre-overwrite weight (see trim.go): the ingestion
// convention is unique edges, so a duplicate insert silently rewrites the
// weight and, without this report, monotone incremental values can keep
// phantom support through the old weight.
//
// Duplicate pairs within the batch are reported once, against the
// pre-batch weight; the repo-wide convention (and the stream generators)
// give same-batch duplicates identical weights, so the first occurrence
// decides.
func Overwritten(g Graph, batch graph.Batch) graph.Batch {
	if len(batch) == 0 || g.NumNodes() == 0 {
		return nil
	}
	var olds graph.Batch
	seen := make(map[[2]graph.NodeID]bool, len(batch))
	// Neighbor sets are scanned once per distinct source and memoized:
	// the common batch shape repeats sources (hubs), and the scan is the
	// expensive part on list-backed structures.
	adj := make(map[graph.NodeID]map[graph.NodeID]graph.Weight)
	var buf []graph.Neighbor
	n := g.NumNodes()
	for _, e := range batch {
		key := [2]graph.NodeID{e.Src, e.Dst}
		if seen[key] {
			continue
		}
		seen[key] = true
		m, ok := adj[e.Src]
		if !ok {
			if int(e.Src) < n {
				buf = g.OutNeigh(e.Src, buf[:0])
				m = make(map[graph.NodeID]graph.Weight, len(buf))
				for _, nb := range buf {
					m[nb.ID] = nb.Weight
				}
			}
			adj[e.Src] = m
		}
		if w, ok := m[e.Dst]; ok && w != e.Weight {
			olds = append(olds, graph.Edge{Src: e.Src, Dst: e.Dst, Weight: w})
		}
	}
	return olds
}
