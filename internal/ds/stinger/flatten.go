package stinger

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Stinger's adjacency is a chain of fixed-size edge blocks; there is no
// contiguous run to hand out, so flattening walks the chain once and
// copies each block's used slots — one bulk copy per block instead of
// the per-slot appends Neighbors pays. Block chains only mutate under
// the vertex's own updates, so a chain untouched by a batch yields the
// identical slot order on every walk.

// FlatFill implements ds.Flattener.
func (s *store) FlatFill(v graph.NodeID, dst []graph.Neighbor) int {
	n := 0
	for blk := s.heads[v].first.Load(); blk != nil; blk = blk.next.Load() {
		// saga:allow lockheld -- lock-free read-phase walk: flattening runs on the sealed read copy, never concurrently with ingestion.
		n += copy(dst[n:], blk.slots[:int(blk.used.Load())])
	}
	return n
}

var _ ds.Flattener = (*store)(nil)
