package stinger

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

func outStore(t *testing.T, g ds.Graph) *store {
	t.Helper()
	return g.(*ds.TwoCopy).OutStore().(*store)
}

func TestBlockChainGrowth(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1, BlockSize: 4})
	st := outStore(t, g)
	var batch graph.Batch
	for i := 0; i < 10; i++ {
		batch = append(batch, graph.Edge{Src: 2, Dst: graph.NodeID(100 + i), Weight: 1})
	}
	g.Update(batch)
	// 10 edges at block size 4 => ceil(10/4) = 3 blocks.
	if n := st.NumBlocks(2); n != 3 {
		t.Fatalf("NumBlocks=%d want 3", n)
	}
	if d := g.OutDegree(2); d != 10 {
		t.Fatalf("degree=%d want 10", d)
	}
	if st.BlockSize() != 4 {
		t.Fatalf("BlockSize=%d want 4", st.BlockSize())
	}
	// Untouched vertices have no blocks.
	if n := st.NumBlocks(0); n != 0 {
		t.Fatalf("vertex 0 has %d blocks", n)
	}
}

func TestDefaultBlockSize(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true})
	st := outStore(t, g)
	if st.BlockSize() != DefaultBlockSize {
		t.Fatalf("BlockSize=%d want %d", st.BlockSize(), DefaultBlockSize)
	}
}

// TestTwoScanAccounting checks the paper's cost claim: inserting a fresh
// edge scans the chain twice, so scan work for duplicate-free inserts is
// about twice the single-scan cost.
func TestTwoScanAccounting(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1})
	// Insert 64 distinct edges one batch each so the chain grows and
	// scans lengthen deterministically.
	var wantScans uint64
	deg := uint64(0)
	for i := 0; i < 64; i++ {
		g.Update(graph.Batch{{Src: 1, Dst: graph.NodeID(50 + i), Weight: 1}})
		// Each insert: scan 1 over deg slots, scan 2 over deg slots.
		wantScans += 2 * deg
		deg++
	}
	p, _ := ds.ProfileOf(g)
	// The in-copy contributes scans over single-edge chains (2 scans of
	// 0..0 slots = 0) so the total equals the out-copy's.
	if p.ScanSteps != wantScans {
		t.Fatalf("ScanSteps=%d want %d (two scans per insert)", p.ScanSteps, wantScans)
	}
}

func TestWeightRewriteInPlace(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 4, BlockSize: 2})
	var batch graph.Batch
	for i := 0; i < 7; i++ {
		batch = append(batch, graph.Edge{Src: 3, Dst: graph.NodeID(i), Weight: 1})
	}
	g.Update(batch)
	g.Update(graph.Batch{{Src: 3, Dst: 4, Weight: 42}})
	if d := g.OutDegree(3); d != 7 {
		t.Fatalf("degree changed on rewrite: %d", d)
	}
	for _, nb := range g.OutNeigh(3, nil) {
		if nb.ID == 4 && nb.Weight != 42 {
			t.Fatalf("weight not rewritten: %v", nb)
		}
	}
}

// TestStingerQuick property-checks degree and membership against a map
// under random single-threaded workloads with a tiny block size (so block
// boundaries are exercised constantly).
func TestStingerQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1, BlockSize: 2})
		want := map[graph.NodeID]map[graph.NodeID]bool{}
		var batch graph.Batch
		for i := 0; i+1 < len(raw); i += 2 {
			src := graph.NodeID(raw[i] % 16)
			dst := graph.NodeID(raw[i+1] % 64)
			batch = append(batch, graph.Edge{Src: src, Dst: dst, Weight: 1})
			if want[src] == nil {
				want[src] = map[graph.NodeID]bool{}
			}
			want[src][dst] = true
		}
		g.Update(batch)
		for src, dsts := range want {
			if g.OutDegree(src) != len(dsts) {
				return false
			}
			seen := map[graph.NodeID]bool{}
			for _, nb := range g.OutNeigh(src, nil) {
				if seen[nb.ID] || !dsts[nb.ID] {
					return false
				}
				seen[nb.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentSingleHub drives heavy contention on one vertex with a
// small block size to stress the extend-and-insert path.
func TestConcurrentSingleHub(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 8, BlockSize: 2})
		rng := rand.New(rand.NewSource(int64(trial)))
		batch := make(graph.Batch, 3000)
		for i := range batch {
			batch[i] = graph.Edge{Src: 0, Dst: graph.NodeID(rng.Intn(61)), Weight: 1}
		}
		g.Update(batch)
		ns := g.OutNeigh(0, nil)
		seen := map[graph.NodeID]bool{}
		for _, nb := range ns {
			if seen[nb.ID] {
				t.Fatalf("trial %d: duplicate %d", trial, nb.ID)
			}
			seen[nb.ID] = true
		}
		if g.OutDegree(0) != len(ns) {
			t.Fatalf("trial %d: degree %d != neighbors %d", trial, g.OutDegree(0), len(ns))
		}
	}
}

func TestDeleteMaintainsChainInvariant(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1, BlockSize: 4})
	st := outStore(t, g)
	var batch graph.Batch
	for i := 0; i < 9; i++ { // 3 blocks of 4
		batch = append(batch, graph.Edge{Src: 0, Dst: graph.NodeID(10 + i), Weight: 1})
	}
	g.Update(batch)
	if st.NumBlocks(0) != 3 {
		t.Fatalf("blocks=%d want 3", st.NumBlocks(0))
	}
	// Deleting the only slot of the tail block must trim the chain.
	if err := g.(ds.Deleter).Delete(graph.Batch{{Src: 0, Dst: 18}}); err != nil {
		t.Fatal(err)
	}
	if st.NumBlocks(0) != 2 {
		t.Fatalf("blocks=%d want 2 after tail trim", st.NumBlocks(0))
	}
	// Deleting from the first block backfills from the (new) tail.
	if err := g.(ds.Deleter).Delete(graph.Batch{{Src: 0, Dst: 10}}); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 7 {
		t.Fatalf("degree=%d want 7", g.OutDegree(0))
	}
	seen := map[graph.NodeID]bool{}
	for _, nb := range g.OutNeigh(0, nil) {
		seen[nb.ID] = true
	}
	for i := 11; i <= 17; i++ {
		if !seen[graph.NodeID(i)] {
			t.Fatalf("neighbor %d lost by backfill", i)
		}
	}
	// Drain the vertex entirely: the chain must disappear.
	var rest graph.Batch
	for i := 11; i <= 17; i++ {
		rest = append(rest, graph.Edge{Src: 0, Dst: graph.NodeID(i)})
	}
	if err := g.(ds.Deleter).Delete(rest); err != nil {
		t.Fatal(err)
	}
	if st.NumBlocks(0) != 0 || g.OutDegree(0) != 0 {
		t.Fatalf("blocks=%d degree=%d after draining", st.NumBlocks(0), g.OutDegree(0))
	}
	// Absent deletion on a drained vertex is a no-op.
	if err := g.(ds.Deleter).Delete(graph.Batch{{Src: 0, Dst: 10}}); err != nil {
		t.Fatal(err)
	}
	// Fresh inserts rebuild a clean chain.
	g.Update(graph.Batch{{Src: 0, Dst: 99, Weight: 1}})
	if st.NumBlocks(0) != 1 || g.OutDegree(0) != 1 {
		t.Fatalf("rebuild failed: blocks=%d degree=%d", st.NumBlocks(0), g.OutDegree(0))
	}
}
