// Package stinger implements the Stinger dynamic-graph data structure
// (Ediger et al., HPEC 2012) as described in the paper (Section III-A3,
// Fig 4): a per-vertex header array (vertex ID + degree) where each entry
// points to a linked list of fixed-capacity edge blocks (16 edges by
// default). Compared to AS, Stinger offers intra-node parallelism — the
// expensive duplicate search over a hub vertex's blocks runs lock-free and
// concurrently, and slot claiming locks only one block — at the cost of two
// scans per insertion (one to search for the target edge, one to find an
// empty slot) and pointer chasing across blocks during traversal.
package stinger

import (
	"sync"
	"sync/atomic"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Name is the registry key.
const Name = "stinger"

// DefaultBlockSize matches the paper's implementation (16 edges/block).
const DefaultBlockSize = 16

func init() {
	ds.Register(Name, func(cfg ds.Config) ds.Graph {
		threads := cfg.Threads
		if threads <= 0 {
			threads = 1
		}
		bs := cfg.BlockSize
		if bs <= 0 {
			bs = DefaultBlockSize
		}
		hint := cfg.MaxNodesHint
		return ds.NewTwoCopy(cfg.Directed, func() ds.OneDir {
			return newStore(threads, bs, hint)
		})
	})
}

// block is one edge block. Slots fill sequentially: a writer stores the
// slot and then release-increments used, so lock-free readers that
// acquire-load used observe fully written slots. Weight rewrites of an
// existing slot take the block mutex.
type block struct {
	mu    sync.Mutex
	used  atomic.Int32
	next  atomic.Pointer[block]
	slots []graph.Neighbor // saga:guardedby mu (writes; readers acquire-load used)
}

// header is the per-vertex array entry: degree plus the block chain.
type header struct {
	mu     sync.Mutex // guards first-block allocation
	first  atomic.Pointer[block]
	tail   atomic.Pointer[block]
	degree atomic.Int32
}

type store struct {
	threads   int
	blockSize int
	heads     []header

	numEdges atomic.Int64

	profMu sync.Mutex
	prof   ds.UpdateProfile // saga:guardedby profMu
}

func newStore(threads, blockSize, hint int) *store {
	s := &store{threads: threads, blockSize: blockSize}
	if hint > 0 {
		s.heads = make([]header, 0, hint)
	}
	return s
}

// EnsureNodes implements ds.OneDir. Called between batches only, so the
// header slice may relocate safely.
func (s *store) EnsureNodes(n int) {
	if len(s.heads) >= n {
		return
	}
	if cap(s.heads) >= n {
		s.heads = s.heads[:n]
		return
	}
	grown := make([]header, n, n+n/2)
	for i := range s.heads {
		grown[i].first.Store(s.heads[i].first.Load())
		grown[i].tail.Store(s.heads[i].tail.Load())
		grown[i].degree.Store(s.heads[i].degree.Load())
	}
	s.heads = grown
}

// UpdateEdges implements ds.OneDir: shared-style multithreading, any worker
// may update any vertex.
func (s *store) UpdateEdges(edges []graph.Edge) {
	var conflicts, scans, inserted atomic.Uint64
	ds.ForEachShard(edges, s.threads, func(shard []graph.Edge) {
		var localScan, localIns, localConf uint64
		for _, e := range shard {
			sc, ins, conf := s.insert(e.Src, e.Dst, e.Weight)
			localScan += sc
			localConf += conf
			if ins {
				localIns++
			}
		}
		conflicts.Add(localConf)
		scans.Add(localScan)
		inserted.Add(localIns)
	})
	s.numEdges.Add(int64(inserted.Load()))
	s.profMu.Lock()
	s.prof.EdgesIngested += uint64(len(edges))
	s.prof.Inserted += inserted.Load()
	s.prof.ScanSteps += scans.Load()
	s.prof.LockConflicts += conflicts.Load()
	s.profMu.Unlock()
}

// findLockFree scans v's block chain for dst without locks. It returns the
// containing block (or nil) and the slots examined.
func (s *store) findLockFree(v graph.NodeID, dst graph.NodeID) (*block, uint64) {
	var steps uint64
	for blk := s.heads[v].first.Load(); blk != nil; blk = blk.next.Load() {
		n := int(blk.used.Load())
		for i := 0; i < n; i++ {
			steps++
			// saga:allow lockheld -- lock-free duplicate search: slots below the acquire-loaded used count are immutable absent deletions, and insert re-checks under the block lock.
			if blk.slots[i].ID == dst {
				return blk, steps
			}
		}
	}
	return nil, steps
}

// lockCounting acquires mu, counting a conflict when the fast path fails.
//
// saga:acquires 1
func lockCounting(mu *sync.Mutex, conflicts *uint64) {
	if !mu.TryLock() {
		*conflicts++
		mu.Lock()
	}
}

// insert performs the two-scan Stinger insertion. It reports scan steps,
// whether a new edge was created, and lock conflicts encountered.
func (s *store) insert(v, dst graph.NodeID, w graph.Weight) (scans uint64, insertedNew bool, conflicts uint64) {
	// Scan 1: duplicate search (lock-free, runs concurrently even for a
	// single hub vertex — Stinger's intra-node parallelism).
	if blk, steps := s.findLockFree(v, dst); blk != nil {
		scans = steps
		lockCounting(&blk.mu, &conflicts)
		n := int(blk.used.Load())
		for i := 0; i < n; i++ {
			if blk.slots[i].ID == dst {
				blk.slots[i].Weight = w
				blk.mu.Unlock()
				return scans, false, conflicts
			}
		}
		blk.mu.Unlock()
		// The slot disappeared only if another writer rewrote it,
		// which cannot happen without deletions; fall through to the
		// insertion path for safety.
	} else {
		scans = steps
	}

	hdr := &s.heads[v]
	for {
		tail := hdr.tail.Load()
		if tail == nil {
			// Allocate the first block under the header lock.
			lockCounting(&hdr.mu, &conflicts)
			if hdr.tail.Load() == nil {
				nb := &block{slots: make([]graph.Neighbor, s.blockSize)}
				hdr.first.Store(nb)
				hdr.tail.Store(nb)
			}
			hdr.mu.Unlock()
			continue
		}
		lockCounting(&tail.mu, &conflicts)
		if int(tail.used.Load()) == s.blockSize {
			// Scan 2 (partial): this tail filled up; extend the
			// chain and retry on the new tail.
			if tail.next.Load() == nil {
				nb := &block{slots: make([]graph.Neighbor, s.blockSize)}
				tail.next.Store(nb)
				hdr.tail.Store(nb)
			}
			tail.mu.Unlock()
			continue
		}
		// Scan 2: while holding the insertion block's lock, re-walk
		// the chain so a concurrent insert of the same (v,dst) cannot
		// slip in twice. This is the second scan the paper charges
		// Stinger for on every insertion.
		if blk, steps := s.findLockFree(v, dst); blk != nil {
			scans += steps
			if blk == tail {
				n := int(tail.used.Load())
				for i := 0; i < n; i++ {
					if tail.slots[i].ID == dst {
						tail.slots[i].Weight = w
						break
					}
				}
				tail.mu.Unlock()
			} else {
				tail.mu.Unlock()
				lockCounting(&blk.mu, &conflicts)
				n := int(blk.used.Load())
				for i := 0; i < n; i++ {
					if blk.slots[i].ID == dst {
						blk.slots[i].Weight = w
						break
					}
				}
				blk.mu.Unlock()
			}
			return scans, false, conflicts
		} else {
			scans += steps
		}
		n := int(tail.used.Load())
		if n == s.blockSize {
			tail.mu.Unlock()
			continue
		}
		tail.slots[n] = graph.Neighbor{ID: dst, Weight: w}
		tail.used.Store(int32(n + 1))
		tail.mu.Unlock()
		hdr.degree.Add(1)
		return scans, true, conflicts
	}
}

// Degree implements ds.OneDir via the header's degree counter — the
// degree-query path Fig 4 shows in the vertex array.
func (s *store) Degree(v graph.NodeID) int { return int(s.heads[v].degree.Load()) }

// Neighbors implements ds.OneDir by chasing the block chain.
func (s *store) Neighbors(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	for blk := s.heads[v].first.Load(); blk != nil; blk = blk.next.Load() {
		n := int(blk.used.Load())
		// saga:allow lockheld -- lock-free traversal: the acquire-load of used fences the slots written before the release-store.
		buf = append(buf, blk.slots[:n]...)
	}
	return buf
}

// NumEdges implements ds.OneDir.
func (s *store) NumEdges() int { return int(s.numEdges.Load()) }

// NumNodes implements ds.OneDir.
func (s *store) NumNodes() int { return len(s.heads) }

// UpdateProfile implements ds.Profiler.
func (s *store) UpdateProfile() ds.UpdateProfile {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	return s.prof
}

// ResetProfile implements ds.Profiler.
func (s *store) ResetProfile() {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	s.prof = ds.UpdateProfile{}
}

// BlockSize reports the configured edge-block capacity.
func (s *store) BlockSize() int { return s.blockSize }

// NumBlocks reports the block count of v's chain (for the architecture
// replayer and layout tests).
func (s *store) NumBlocks(v graph.NodeID) int {
	n := 0
	for blk := s.heads[v].first.Load(); blk != nil; blk = blk.next.Load() {
		n++
	}
	return n
}

// DeleteEdges implements ds.OneDirDeleter. STINGER supports deletions
// natively; this implementation serializes per-vertex removals on the
// header lock (coarser than insertion's block locks — deletion is the
// rare operation) and preserves the packed-chain invariant by moving the
// chain's final slot into the hole and trimming empty tail blocks.
func (s *store) DeleteEdges(edges []graph.Edge) {
	var removed, scans atomic.Uint64
	ds.ForEachShard(edges, s.threads, func(shard []graph.Edge) {
		var localRem, localScan uint64
		for _, e := range shard {
			sc, ok := s.deleteOne(e.Src, e.Dst)
			localScan += sc
			if ok {
				localRem++
			}
		}
		removed.Add(localRem)
		scans.Add(localScan)
	})
	s.numEdges.Add(-int64(removed.Load()))
	s.profMu.Lock()
	s.prof.ScanSteps += scans.Load()
	s.profMu.Unlock()
}

func (s *store) deleteOne(v, dst graph.NodeID) (scans uint64, ok bool) {
	hdr := &s.heads[v]
	hdr.mu.Lock()
	defer hdr.mu.Unlock()
	// Locate the victim slot.
	var victim *block
	victimIdx := -1
	var prevTail, tail *block
	for blk := hdr.first.Load(); blk != nil; blk = blk.next.Load() {
		n := int(blk.used.Load())
		if victimIdx < 0 {
			for i := 0; i < n; i++ {
				scans++
				// saga:allow lockheld -- victim search under hdr.mu: deletions serialize per vertex and never run concurrently with inserts to the same vertex's chain.
				if blk.slots[i].ID == dst {
					victim, victimIdx = blk, i
					break
				}
			}
		}
		prevTail, tail = tail, blk
	}
	if victimIdx < 0 {
		return scans, false
	}
	// Move the chain's last slot into the hole.
	last := int(tail.used.Load()) - 1
	victim.mu.Lock()
	if victim != tail {
		tail.mu.Lock()
	}
	// saga:allow lockheld -- tail.mu is held by the branch above unless victim == tail, in which case victim.mu is the same lock.
	victim.slots[victimIdx] = tail.slots[last]
	tail.used.Store(int32(last))
	if victim != tail {
		tail.mu.Unlock()
	}
	victim.mu.Unlock()
	// Trim an empty tail block so only the final block is ever partial.
	if last == 0 {
		if prevTail == nil {
			hdr.first.Store(nil)
			hdr.tail.Store(nil)
		} else {
			prevTail.next.Store(nil)
			hdr.tail.Store(prevTail)
		}
	}
	hdr.degree.Add(-1)
	return scans, true
}
