// Package ds defines the SAGA-Bench data-structure API (paper Section
// III-D): batched concurrent ingestion plus in/out neighbor traversal. The
// four concrete topologies — adjacency list shared (AS), adjacency list
// chunked (AC), Stinger, and degree-aware hashing (DAH) — live in
// subpackages and register themselves here, so new structures plug in by
// implementing the same API and registering a constructor.
package ds

import (
	"fmt"
	"sort"
	"sync"

	"sagabench/internal/graph"
)

// Graph is the unified topology API: update(), out_neigh(), in_neigh() and
// degree queries from the paper's API description. Update is internally
// multithreaded; traversal is single-threaded per call but may be invoked
// from many goroutines concurrently as long as no Update is in flight
// (SAGA-Bench interleaves the update and compute phases, so the two never
// overlap).
type Graph interface {
	// Update ingests a batch of edges. Each edge is ingested uniquely:
	// an insert is preceded by a search, and re-inserting an existing
	// (src,dst) pair overwrites its weight instead of duplicating it.
	Update(batch graph.Batch)
	// NumNodes reports 1 + the highest vertex ID ingested so far.
	NumNodes() int
	// NumEdges reports the number of distinct directed edges stored
	// (for undirected graphs each input edge counts twice).
	NumEdges() int
	// OutDegree reports the distinct out-degree of v.
	OutDegree(v graph.NodeID) int
	// InDegree reports the distinct in-degree of v.
	InDegree(v graph.NodeID) int
	// OutNeigh appends v's out-neighbors to buf and returns it.
	OutNeigh(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor
	// InNeigh appends v's in-neighbors to buf and returns it.
	InNeigh(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor
	// Directed reports whether the graph distinguishes edge directions.
	Directed() bool
}

// Config carries construction parameters shared by all data structures plus
// the structure-specific tuning knobs (zero values select the paper's
// defaults).
type Config struct {
	Directed bool
	// Threads is the update-phase worker count; 0 means 1.
	Threads int
	// MaxNodesHint pre-sizes vertex-indexed arrays; growth past the hint
	// is handled transparently.
	MaxNodesHint int
	// BlockSize is the Stinger edge-block capacity (default 16, as in
	// the paper's implementation).
	BlockSize int
	// Chunks is the chunk count for the chunked-multithreading
	// structures AC and DAH (default Threads).
	Chunks int
	// FlushThreshold is the DAH low→high degree boundary (default 16).
	FlushThreshold int
}

func (c Config) threads() int {
	if c.Threads <= 0 {
		return 1
	}
	return c.Threads
}

func (c Config) chunks() int {
	if c.Chunks > 0 {
		return c.Chunks
	}
	return c.threads()
}

// Constructor builds a Graph from a Config.
type Constructor func(Config) Graph

var (
	regMu    sync.RWMutex
	registry = map[string]Constructor{}
)

// Register installs a named constructor. Data-structure subpackages call it
// from init; the blank import of ds/all pulls in the standard four.
func Register(name string, c Constructor) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("ds: duplicate registration of %q", name))
	}
	registry[name] = c
}

// New builds the named data structure, or errors if it is unknown.
func New(name string, cfg Config) (Graph, error) {
	regMu.RLock()
	ctor, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ds: unknown data structure %q (have %v)", name, Names())
	}
	return ctor(cfg), nil
}

// MustNew is New that panics on error; for tests and examples.
func MustNew(name string, cfg Config) Graph {
	g, err := New(name, cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Names lists the registered data structures in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
