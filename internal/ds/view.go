package ds

import (
	"time"

	"sagabench/internal/graph"
)

// ComputeView is the compute-view layer: an incrementally maintained CSR
// mirror of a dynamic structure. The structure stays the system of record
// for the update phase; after each batch the pipeline calls Refresh, which
// recopies only the adjacency runs the batch touched (degree count →
// prefix sum → fill, all but the prefix sum parallel) and the compute
// phase then traverses the mirror's flat arrays instead of paying
// per-vertex interface dispatch on the dynamic structure. This is the
// hybrid representation GraphTango argues for: dynamic side for updates,
// flat side for analytics.
//
// The mirror preserves each store's own neighbor order — runs are filled
// through Flattener, never sorted — so order-sensitive float reductions
// (PageRank's in-neighbor sum) produce bit-identical results through the
// view and through the structure.
//
// A ComputeView implements Graph for reading; Update panics. Refresh must
// not run concurrently with reads — the same update/compute phase
// separation the structures themselves require.
type ComputeView struct {
	src Graph
	out *mirrorDir
	in  *mirrorDir // nil when undirected: InIndex/InAdj alias the out arrays

	csr     graph.CSR
	threads int
	built   bool
	outOnly bool

	// FullThreshold is the dirty-vertex fraction above which Refresh
	// abandons run reuse and rebuilds every vertex (the crossover where
	// one bulk pass beats scattered copies). Default 0.25.
	FullThreshold float64

	touchOut []graph.NodeID
	touchIn  []graph.NodeID

	stats RefreshStats
}

// mirrorDir is one adjacency direction of the mirror.
type mirrorDir struct {
	store OneDir
	fl    Flattener
	run   RunFlattener // non-nil for zero-copy stores (contiguous vectors)

	dirty []bool
	list  []graph.NodeID

	// Double buffer: DeltaRebuild writes into the spare arrays while
	// copying clean runs out of the current ones, then the pair swaps.
	spareIdx []int64
	spareAdj []graph.Neighbor
}

// RefreshStats describes one Refresh call.
type RefreshStats struct {
	// Nodes is the vertex count the refresh covered.
	Nodes int
	// Dirty is the number of vertices refilled from the structure (the
	// max across directions; Nodes when Full).
	Dirty int
	// Full reports whether every run was rebuilt rather than delta-copied.
	Full bool
	// Duration is the wall time of the refresh.
	Duration time.Duration
}

// DirtyFraction is Dirty/Nodes (1 for a full rebuild, 0 on empty graphs).
func (s RefreshStats) DirtyFraction() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.Dirty) / float64(s.Nodes)
}

// NewComputeView builds a mirror over g, reporting false when g's stores
// do not implement Flattener (the caller then stays on the interface
// path). threads is the refresh worker count (0 = 1).
func NewComputeView(g Graph, threads int) (*ComputeView, bool) {
	t, ok := g.(*TwoCopy)
	if !ok {
		return nil, false
	}
	if threads <= 0 {
		threads = 1
	}
	v := &ComputeView{src: g, threads: threads, FullThreshold: 0.25}
	v.out = newMirrorDir(t.OutStore())
	if v.out == nil {
		return nil, false
	}
	if t.Directed() {
		v.in = newMirrorDir(t.InStore())
		if v.in == nil {
			return nil, false
		}
	}
	v.csr.OutIndex = []int64{0}
	v.csr.InIndex = v.csr.OutIndex
	if v.in != nil {
		v.csr.InIndex = []int64{0}
	}
	return v, true
}

func newMirrorDir(st OneDir) *mirrorDir {
	fl, ok := st.(Flattener)
	if !ok {
		return nil
	}
	d := &mirrorDir{store: st, fl: fl}
	d.run, _ = fl.(RunFlattener)
	return d
}

// MirrorOutOnly stops maintaining the in-adjacency mirror. The refresh
// then rebuilds only the out direction — halving its cost on directed
// graphs — which is safe whenever the consumer never pulls from
// in-neighbors (compute.NeedsInAdjacency reports this per algorithm and
// model). InDegree/InNeigh panic afterwards rather than answer with stale
// or aliased data. No-op on undirected mirrors, where the single store
// already serves both orientations for free.
func (v *ComputeView) MirrorOutOnly() {
	if v.in == nil {
		return
	}
	v.in = nil
	v.outOnly = true
	v.csr.InIndex, v.csr.InAdj = nil, nil
}

// Refresh brings the mirror up to date after the update phase applied
// adds and dels to the source structure. Only the runs those edges could
// have changed are refilled, unless the dirty fraction crosses
// FullThreshold (or this is the first build), in which case every run is
// rebuilt.
func (v *ComputeView) Refresh(adds, dels graph.Batch) RefreshStats {
	start := time.Now()
	n := v.src.NumNodes()
	oldN := len(v.csr.OutIndex) - 1
	st := RefreshStats{Nodes: n}

	full := !v.built
	if !full {
		v.markTouched(adds, dels, n)
		grown := n - oldN
		st.Dirty = len(v.out.list) + grown
		if v.in != nil && len(v.in.list)+grown > st.Dirty {
			st.Dirty = len(v.in.list) + grown
		}
		if float64(st.Dirty) > v.FullThreshold*float64(n) {
			full = true
		}
	}
	if full {
		st.Dirty = n
	}
	st.Full = full

	v.csr.OutIndex, v.csr.OutAdj = v.out.rebuild(n, v.csr.OutIndex, v.csr.OutAdj, full, v.threads)
	if v.in != nil {
		v.csr.InIndex, v.csr.InAdj = v.in.rebuild(n, v.csr.InIndex, v.csr.InAdj, full, v.threads)
	} else if !v.outOnly {
		// Undirected: the single store already holds both orientations.
		v.csr.InIndex, v.csr.InAdj = v.csr.OutIndex, v.csr.OutAdj
	}
	v.out.clearDirty()
	if v.in != nil {
		v.in.clearDirty()
	}
	v.built = true
	st.Duration = time.Since(start)
	v.stats = st
	return st
}

// LastRefresh reports the stats of the most recent Refresh.
func (v *ComputeView) LastRefresh() RefreshStats { return v.stats }

// markTouched marks the vertices whose runs the batch could have changed:
// an edge's out-run lives with its source and its in-run with its
// destination; undirected ingestion mirrors every edge, making both
// endpoints sources of the single store.
func (v *ComputeView) markTouched(adds, dels graph.Batch, n int) {
	v.out.growDirty(n)
	v.touchOut = v.touchOut[:0]
	undirected := v.in == nil && !v.outOnly
	for _, b := range [2]graph.Batch{adds, dels} {
		for _, e := range b {
			v.touchOut = append(v.touchOut, e.Src)
			if undirected {
				v.touchOut = append(v.touchOut, e.Dst)
			}
		}
	}
	v.out.markAll(v.touchOut)
	if v.in != nil {
		v.in.growDirty(n)
		v.touchIn = v.touchIn[:0]
		for _, b := range [2]graph.Batch{adds, dels} {
			for _, e := range b {
				v.touchIn = append(v.touchIn, e.Dst)
			}
		}
		v.in.markAll(v.touchIn)
	}
}

func (d *mirrorDir) growDirty(n int) {
	for len(d.dirty) < n {
		d.dirty = append(d.dirty, false)
	}
}

func (d *mirrorDir) mark(u graph.NodeID) {
	if int(u) < len(d.dirty) && !d.dirty[u] {
		d.dirty[u] = true
		d.list = append(d.list, u)
	}
}

// markAll marks the touched sources, letting stores whose iteration order
// can shift under bystander updates widen the set (see DirtyExpander).
func (d *mirrorDir) markAll(touched []graph.NodeID) {
	if ex, ok := d.fl.(DirtyExpander); ok {
		ex.ExpandDirty(touched, d.mark)
		return
	}
	for _, u := range touched {
		d.mark(u)
	}
}

func (d *mirrorDir) clearDirty() {
	for _, u := range d.list {
		d.dirty[u] = false
	}
	d.list = d.list[:0]
}

// rebuild runs DeltaRebuild for this direction against the current
// arrays, writing into the spares, and swaps the buffers.
func (d *mirrorDir) rebuild(n int, oldIdx []int64, oldAdj []graph.Neighbor, full bool, threads int) ([]int64, []graph.Neighbor) {
	var dirtyFn func(int) bool
	if !full {
		dirtyFn = func(v int) bool { return d.dirty[v] }
	}
	fill := d.fl.FlatFill
	if d.run != nil {
		fill = func(v graph.NodeID, dst []graph.Neighbor) int {
			return copy(dst, d.run.FlatRun(v))
		}
	}
	newIdx, newAdj := graph.DeltaRebuild(n, oldIdx, oldAdj, d.spareIdx, d.spareAdj,
		dirtyFn, d.store.Degree, fill, threads)
	d.spareIdx, d.spareAdj = oldIdx, oldAdj
	return newIdx, newAdj
}

// DropSpares abandons the double buffer's spare arrays to the garbage
// collector: the next Refresh then writes into freshly allocated arrays
// instead of scribbling over the spares. The epoch-publication layer
// calls this when the snapshot that owns the spare arrays is still
// pinned by readers — the snapshot keeps its (now GC-owned) arrays
// intact, and the writer pays one allocation instead of blocking.
func (v *ComputeView) DropSpares() {
	v.out.spareIdx, v.out.spareAdj = nil, nil
	if v.in != nil {
		v.in.spareIdx, v.in.spareAdj = nil, nil
	}
}

// Source exposes the mirrored dynamic structure.
func (v *ComputeView) Source() Graph { return v.src }

// FlatCSR implements FlatView.
func (v *ComputeView) FlatCSR() *graph.CSR { return &v.csr }

// Update implements Graph by refusing: the mirror is read-only. Update
// the source structure and call Refresh.
func (v *ComputeView) Update(graph.Batch) {
	panic("ds: ComputeView is a read-only mirror; update the source structure and call Refresh")
}

// NumNodes implements Graph (as of the last Refresh).
func (v *ComputeView) NumNodes() int { return len(v.csr.OutIndex) - 1 }

// NumEdges implements Graph (as of the last Refresh).
func (v *ComputeView) NumEdges() int { return len(v.csr.OutAdj) }

// OutDegree implements Graph.
func (v *ComputeView) OutDegree(u graph.NodeID) int {
	if int(u) >= v.NumNodes() {
		return 0
	}
	return v.csr.OutDegree(u)
}

// InDegree implements Graph.
func (v *ComputeView) InDegree(u graph.NodeID) int {
	if v.outOnly {
		panic("ds: in-adjacency read on an out-only ComputeView (see MirrorOutOnly)")
	}
	if int(u) >= v.NumNodes() {
		return 0
	}
	return v.csr.InDegree(u)
}

// OutNeigh implements Graph.
func (v *ComputeView) OutNeigh(u graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	if int(u) >= v.NumNodes() {
		return buf
	}
	return append(buf, v.csr.Out(u)...)
}

// InNeigh implements Graph.
func (v *ComputeView) InNeigh(u graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	if v.outOnly {
		panic("ds: in-adjacency read on an out-only ComputeView (see MirrorOutOnly)")
	}
	if int(u) >= v.NumNodes() {
		return buf
	}
	return append(buf, v.csr.In(u)...)
}

// Directed implements Graph.
func (v *ComputeView) Directed() bool { return v.src.Directed() }

var _ FlatView = (*ComputeView)(nil)
