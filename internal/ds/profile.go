package ds

// UpdateProfile accumulates concurrency-relevant counters across Update
// calls. The architecture-level performance model (Fig 9) consumes these:
// lock conflicts quantify the thread contention that limits shared-style
// structures on short-tailed graphs, and per-chunk loads quantify the
// workload imbalance that limits chunked structures on heavy-tailed graphs.
type UpdateProfile struct {
	// EdgesIngested counts edge records offered to the store (including
	// duplicates that only refreshed a weight).
	EdgesIngested uint64
	// Inserted counts records that created a new adjacency entry.
	Inserted uint64
	// ScanSteps counts elements examined by pre-insert searches (vector
	// elements, Stinger block slots, or hash probes).
	ScanSteps uint64
	// LockConflicts counts lock acquisitions that found the lock already
	// held (shared-style structures only).
	LockConflicts uint64
	// ChunkLoads is the cumulative per-chunk edge count (chunked-style
	// structures only); its spread measures workload imbalance.
	ChunkLoads []uint64
	// MetaOps counts degree-query and flush meta-operations (DAH only)
	// or tier-transition copy work (hybrid).
	MetaOps uint64
	// TierPromotions counts per-vertex representation upgrades
	// (inline→array, array→hash) in degree-adaptive structures.
	TierPromotions uint64
	// TierDemotions counts representation downgrades under deletions
	// (hash→array, array→inline); with hysteresis working, promotions and
	// demotions should both stay rare on a steady mixed stream.
	TierDemotions uint64
}

// Add merges o into p (chunk loads are summed index-wise).
func (p *UpdateProfile) Add(o UpdateProfile) {
	p.EdgesIngested += o.EdgesIngested
	p.Inserted += o.Inserted
	p.ScanSteps += o.ScanSteps
	p.LockConflicts += o.LockConflicts
	p.MetaOps += o.MetaOps
	p.TierPromotions += o.TierPromotions
	p.TierDemotions += o.TierDemotions
	for len(p.ChunkLoads) < len(o.ChunkLoads) {
		p.ChunkLoads = append(p.ChunkLoads, 0)
	}
	for i, v := range o.ChunkLoads {
		p.ChunkLoads[i] += v
	}
}

// Delta returns the field-wise difference p - prev: the increment one
// batch contributed to the cumulative profile. The telemetry layer uses
// it to snapshot the profile per batch instead of per run. Counters that
// went backwards (a ResetProfile between snapshots) clamp to the current
// cumulative value; ChunkLoads missing from prev count as zero.
func (p *UpdateProfile) Delta(prev *UpdateProfile) UpdateProfile {
	d := UpdateProfile{
		EdgesIngested:  sub(p.EdgesIngested, prev.EdgesIngested),
		Inserted:       sub(p.Inserted, prev.Inserted),
		ScanSteps:      sub(p.ScanSteps, prev.ScanSteps),
		LockConflicts:  sub(p.LockConflicts, prev.LockConflicts),
		MetaOps:        sub(p.MetaOps, prev.MetaOps),
		TierPromotions: sub(p.TierPromotions, prev.TierPromotions),
		TierDemotions:  sub(p.TierDemotions, prev.TierDemotions),
	}
	if len(p.ChunkLoads) > 0 {
		d.ChunkLoads = make([]uint64, len(p.ChunkLoads))
		for i, v := range p.ChunkLoads {
			if i < len(prev.ChunkLoads) {
				d.ChunkLoads[i] = sub(v, prev.ChunkLoads[i])
			} else {
				d.ChunkLoads[i] = v
			}
		}
	}
	return d
}

func sub(cur, prev uint64) uint64 {
	if prev > cur {
		return cur
	}
	return cur - prev
}

// Imbalance reports max/mean of the chunk loads (1 = perfectly balanced,
// larger = more of the batch funnels into few chunks). Returns 1 when the
// store is not chunked or has seen no work.
func (p *UpdateProfile) Imbalance() float64 {
	var max, sum uint64
	n := 0
	for _, v := range p.ChunkLoads {
		sum += v
		if v > max {
			max = v
		}
		n++
	}
	if n == 0 || sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(n)
	return float64(max) / mean
}

// ConflictRate reports LockConflicts / EdgesIngested (0 when idle).
func (p *UpdateProfile) ConflictRate() float64 {
	if p.EdgesIngested == 0 {
		return 0
	}
	return float64(p.LockConflicts) / float64(p.EdgesIngested)
}

// Profiler is implemented by stores that expose an UpdateProfile.
type Profiler interface {
	UpdateProfile() UpdateProfile
	ResetProfile()
}

// ProfileOf collects the profile of g if it is profiled; TwoCopy-wrapped
// graphs merge the out- and in-store profiles.
func ProfileOf(g Graph) (UpdateProfile, bool) {
	switch t := g.(type) {
	case *TwoCopy:
		var p UpdateProfile
		any := false
		if pr, ok := t.OutStore().(Profiler); ok {
			p.Add(pr.UpdateProfile())
			any = true
		}
		if t.Directed() {
			if pr, ok := t.InStore().(Profiler); ok {
				p.Add(pr.UpdateProfile())
				any = true
			}
		}
		return p, any
	case Profiler:
		return t.UpdateProfile(), true
	}
	return UpdateProfile{}, false
}

// ResetProfileOf clears accumulated profiles where supported.
func ResetProfileOf(g Graph) {
	switch t := g.(type) {
	case *TwoCopy:
		if pr, ok := t.OutStore().(Profiler); ok {
			pr.ResetProfile()
		}
		if t.Directed() {
			if pr, ok := t.InStore().(Profiler); ok {
				pr.ResetProfile()
			}
		}
	case Profiler:
		t.ResetProfile()
	}
}
