package adjchunked

import (
	"testing"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

func TestChunkLoadsTrackImbalance(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1, Chunks: 4})
	// All sources in chunk 2 (v mod 4 == 2).
	var batch graph.Batch
	for i := 0; i < 40; i++ {
		batch = append(batch, graph.Edge{Src: 2, Dst: graph.NodeID(i + 10), Weight: 1})
	}
	g.Update(batch)
	p, _ := ds.ProfileOf(g)
	if len(p.ChunkLoads) != 4 {
		t.Fatalf("ChunkLoads len=%d want 4", len(p.ChunkLoads))
	}
	// Out copy funnels into chunk 2; the in copy spreads across dsts.
	if p.ChunkLoads[2] < 40 {
		t.Fatalf("chunk 2 load=%d want >= 40", p.ChunkLoads[2])
	}
	if p.Imbalance() <= 1 {
		t.Fatalf("imbalance=%v want > 1 for a hub workload", p.Imbalance())
	}
	st := g.(*ds.TwoCopy).OutStore().(*store)
	if st.Chunks() != 4 {
		t.Fatalf("Chunks=%d want 4", st.Chunks())
	}
}

func TestChunksDefaultToThreads(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 6})
	st := g.(*ds.TwoCopy).OutStore().(*store)
	if st.Chunks() != 6 {
		t.Fatalf("Chunks=%d want 6", st.Chunks())
	}
}

func TestLocklessUniqueIngestion(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 8, Chunks: 8})
	batch := make(graph.Batch, 2000)
	for i := range batch {
		batch[i] = graph.Edge{Src: graph.NodeID(i % 50), Dst: graph.NodeID(i % 70), Weight: 1}
	}
	g.Update(batch)
	g.Update(batch) // everything duplicate
	p, _ := ds.ProfileOf(g)
	if p.EdgesIngested != 8000 {
		t.Fatalf("EdgesIngested=%d want 8000", p.EdgesIngested)
	}
	total := 0
	for v := 0; v < g.NumNodes(); v++ {
		total += g.OutDegree(graph.NodeID(v))
	}
	if total != g.NumEdges() {
		t.Fatalf("degree sum %d != NumEdges %d", total, g.NumEdges())
	}
	if p.LockConflicts != 0 {
		t.Fatalf("chunked structure reported %d lock conflicts", p.LockConflicts)
	}
}
