package adjchunked

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// AC's chunked ownership only matters during ingestion; the topology is
// the same per-vertex contiguous vector as AS, so flattening is
// zero-copy here too.

// FlatRun implements ds.RunFlattener.
func (s *store) FlatRun(v graph.NodeID) []graph.Neighbor { return s.adj[v] }

// FlatFill implements ds.Flattener.
func (s *store) FlatFill(v graph.NodeID, dst []graph.Neighbor) int {
	return copy(dst, s.adj[v])
}

var _ ds.RunFlattener = (*store)(nil)
