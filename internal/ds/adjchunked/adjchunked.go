// Package adjchunked implements AC: an adjacency list with chunked-style
// multithreading (paper Section III-A2, Fig 3). The vertex space is
// partitioned into chunks; each chunk is a single-threaded data structure
// owned by exactly one worker during a batch, so intra-chunk ingestion
// needs no locks. The intra-chunk operation is the same as AS: linear scan
// of the source vertex's vector, then append on a negative search. Update
// parallelism comes entirely from processing chunks concurrently, which
// trades the lock contention of AS for workload imbalance when one chunk
// owns a hub vertex.
//
// saga:lockless — chunk workers may only touch chunk-owned state
// (enforced by sagavet; see internal/analysis).
package adjchunked

import (
	"sync"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Name is the registry key.
const Name = "adjchunked"

func init() {
	ds.Register(Name, func(cfg ds.Config) ds.Graph {
		chunks := cfg.Chunks
		if chunks <= 0 {
			if cfg.Threads > 0 {
				chunks = cfg.Threads
			} else {
				chunks = 1
			}
		}
		hint := cfg.MaxNodesHint
		return ds.NewTwoCopy(cfg.Directed, func() ds.OneDir {
			return newStore(chunks, hint)
		})
	})
}

type store struct {
	chunks int
	adj    [][]graph.Neighbor

	numEdges int // saga:guardedby profMu

	profMu sync.Mutex
	prof   ds.UpdateProfile // saga:guardedby profMu
}

func newStore(chunks, hint int) *store {
	s := &store{chunks: chunks}
	// saga:allow lockheld -- constructor: s is not shared yet.
	s.prof.ChunkLoads = make([]uint64, chunks)
	if hint > 0 {
		s.adj = make([][]graph.Neighbor, 0, hint)
	}
	return s
}

// EnsureNodes implements ds.OneDir.
func (s *store) EnsureNodes(n int) {
	for len(s.adj) < n {
		s.adj = append(s.adj, nil)
	}
}

// UpdateEdges implements ds.OneDir.
func (s *store) UpdateEdges(edges []graph.Edge) {
	scans := make([]uint64, s.chunks)
	inserted := make([]uint64, s.chunks)
	loads := make([]uint64, s.chunks)
	ds.GroupByChunk(edges, s.chunks, func(chunk int, bucket []graph.Edge) {
		var localScan, localIns uint64
		for _, e := range bucket {
			vec := s.adj[e.Src]
			found := false
			for i := range vec {
				localScan++
				if vec[i].ID == e.Dst {
					vec[i].Weight = e.Weight
					found = true
					break
				}
			}
			if !found {
				s.adj[e.Src] = append(vec, graph.Neighbor{ID: e.Dst, Weight: e.Weight})
				localIns++
			}
		}
		scans[chunk] = localScan
		inserted[chunk] = localIns
		loads[chunk] = uint64(len(bucket))
	})
	s.profMu.Lock()
	s.prof.EdgesIngested += uint64(len(edges))
	for c := 0; c < s.chunks; c++ {
		s.prof.ScanSteps += scans[c]
		s.prof.Inserted += inserted[c]
		s.prof.ChunkLoads[c] += loads[c]
		s.numEdges += int(inserted[c])
	}
	s.profMu.Unlock()
}

// Degree implements ds.OneDir.
func (s *store) Degree(v graph.NodeID) int { return len(s.adj[v]) }

// Neighbors implements ds.OneDir.
func (s *store) Neighbors(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	return append(buf, s.adj[v]...)
}

// NumEdges implements ds.OneDir.
func (s *store) NumEdges() int {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	return s.numEdges
}

// NumNodes implements ds.OneDir.
func (s *store) NumNodes() int { return len(s.adj) }

// UpdateProfile implements ds.Profiler.
func (s *store) UpdateProfile() ds.UpdateProfile {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	p := s.prof
	p.ChunkLoads = append([]uint64(nil), s.prof.ChunkLoads...)
	return p
}

// ResetProfile implements ds.Profiler.
func (s *store) ResetProfile() {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	s.prof = ds.UpdateProfile{ChunkLoads: make([]uint64, s.chunks)}
}

// Chunks reports the chunk count (for the architecture replayer).
func (s *store) Chunks() int { return s.chunks }

// DeleteEdges implements ds.OneDirDeleter: the owning chunk scans the
// source vector and removes the record by swapping in the last element.
func (s *store) DeleteEdges(edges []graph.Edge) {
	removed := make([]uint64, s.chunks)
	scans := make([]uint64, s.chunks)
	ds.GroupByChunk(edges, s.chunks, func(chunk int, bucket []graph.Edge) {
		var localRem, localScan uint64
		for _, e := range bucket {
			vec := s.adj[e.Src]
			for i := range vec {
				localScan++
				if vec[i].ID == e.Dst {
					vec[i] = vec[len(vec)-1]
					s.adj[e.Src] = vec[:len(vec)-1]
					localRem++
					break
				}
			}
		}
		removed[chunk] = localRem
		scans[chunk] = localScan
	})
	s.profMu.Lock()
	for c := 0; c < s.chunks; c++ {
		s.numEdges -= int(removed[c])
		s.prof.ScanSteps += scans[c]
	}
	s.profMu.Unlock()
}
