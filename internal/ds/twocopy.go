package ds

import "sagabench/internal/graph"

// OneDir is a single-direction adjacency store. Each SAGA-Bench data
// structure implements concurrent unique ingestion of (src → dst) records
// plus traversal; TwoCopy composes one or two OneDir stores into the full
// Graph API, implementing the paper's rule that directed graphs keep a
// second copy of the structure for in-neighbors (footnote 3) while
// undirected graphs ingest both orientations into a single store.
type OneDir interface {
	// EnsureNodes grows vertex-indexed state to cover IDs [0,n). It is
	// called while no concurrent ingestion is running.
	EnsureNodes(n int)
	// UpdateEdges concurrently ingests the records using the store's own
	// multithreading style. Every edge's endpoints are < NumNodes().
	UpdateEdges(edges []graph.Edge)
	// Degree reports the distinct neighbor count of v (v < NumNodes()).
	Degree(v graph.NodeID) int
	// Neighbors appends v's neighbors to buf and returns it.
	Neighbors(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor
	// NumEdges reports the distinct records stored.
	NumEdges() int
	// NumNodes reports the covered vertex-ID space.
	NumNodes() int
}

// TwoCopy adapts OneDir stores to the Graph interface.
type TwoCopy struct {
	directed bool
	out      OneDir
	in       OneDir // nil when undirected
	scratch  []graph.Edge
}

// NewTwoCopy wraps mk-constructed stores: two for a directed graph, one for
// an undirected graph.
func NewTwoCopy(directed bool, mk func() OneDir) *TwoCopy {
	t := &TwoCopy{directed: directed, out: mk()}
	if directed {
		t.in = mk()
	}
	return t
}

// Update implements Graph.
func (t *TwoCopy) Update(batch graph.Batch) {
	if len(batch) == 0 {
		return
	}
	max, _ := batch.MaxNode()
	n := int(max) + 1
	t.out.EnsureNodes(n)
	if t.directed {
		t.in.EnsureNodes(n)
		t.out.UpdateEdges(batch)
		t.scratch = t.scratch[:0]
		for _, e := range batch {
			t.scratch = append(t.scratch, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
		}
		t.in.UpdateEdges(t.scratch)
		return
	}
	t.scratch = t.scratch[:0]
	t.scratch = append(t.scratch, batch...)
	for _, e := range batch {
		t.scratch = append(t.scratch, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	t.out.UpdateEdges(t.scratch)
}

// NumNodes implements Graph.
func (t *TwoCopy) NumNodes() int { return t.out.NumNodes() }

// NumEdges implements Graph.
func (t *TwoCopy) NumEdges() int { return t.out.NumEdges() }

// OutDegree implements Graph.
func (t *TwoCopy) OutDegree(v graph.NodeID) int {
	if int(v) >= t.out.NumNodes() {
		return 0
	}
	return t.out.Degree(v)
}

// InDegree implements Graph.
func (t *TwoCopy) InDegree(v graph.NodeID) int {
	st := t.in
	if !t.directed {
		st = t.out
	}
	if int(v) >= st.NumNodes() {
		return 0
	}
	return st.Degree(v)
}

// OutNeigh implements Graph.
func (t *TwoCopy) OutNeigh(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	if int(v) >= t.out.NumNodes() {
		return buf
	}
	return t.out.Neighbors(v, buf)
}

// InNeigh implements Graph.
func (t *TwoCopy) InNeigh(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	st := t.in
	if !t.directed {
		st = t.out
	}
	if int(v) >= st.NumNodes() {
		return buf
	}
	return st.Neighbors(v, buf)
}

// Directed implements Graph.
func (t *TwoCopy) Directed() bool { return t.directed }

// OutStore exposes the underlying out-direction store; the architecture
// replayer uses it to walk the concrete memory layout.
func (t *TwoCopy) OutStore() OneDir { return t.out }

// InStore exposes the in-direction store (the out store when undirected).
func (t *TwoCopy) InStore() OneDir {
	if !t.directed {
		return t.out
	}
	return t.in
}

// TwoPhaseUpdater is implemented by log-structured stores whose ingestion
// splits into an append-only Stage — safe to run concurrently with compute
// reads of the sealed topology, the update/compute-parallelism property of
// the data structures the paper cites as future work — and an exclusive
// Seal that merges the staged records.
type TwoPhaseUpdater interface {
	Stage(edges []graph.Edge)
	Seal()
}

// StageBatch stages a batch into both copies without sealing. It returns
// false when the underlying stores are not two-phase.
func (t *TwoCopy) StageBatch(batch graph.Batch) bool {
	out, ok := t.out.(TwoPhaseUpdater)
	if !ok {
		return false
	}
	if len(batch) == 0 {
		return true
	}
	if !t.directed {
		both := make([]graph.Edge, 0, 2*len(batch))
		both = append(both, batch...)
		for _, e := range batch {
			both = append(both, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
		}
		out.Stage(both)
		return true
	}
	in, ok := t.in.(TwoPhaseUpdater)
	if !ok {
		return false
	}
	out.Stage(batch)
	reversed := make([]graph.Edge, len(batch))
	for i, e := range batch {
		reversed[i] = graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
	}
	in.Stage(reversed)
	return true
}

// SealBatch seals both copies after StageBatch.
func (t *TwoCopy) SealBatch() {
	if out, ok := t.out.(TwoPhaseUpdater); ok {
		out.Seal()
	}
	if t.directed {
		if in, ok := t.in.(TwoPhaseUpdater); ok {
			in.Seal()
		}
	}
}

// SupportsTwoPhase reports whether g can stage ingestion concurrently with
// compute.
func SupportsTwoPhase(g Graph) bool {
	t, ok := g.(*TwoCopy)
	if !ok {
		return false
	}
	if _, ok := t.out.(TwoPhaseUpdater); !ok {
		return false
	}
	if t.directed {
		_, ok := t.in.(TwoPhaseUpdater)
		return ok
	}
	return true
}
