package all_test

import (
	"testing"
	"testing/quick"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// TestQuickMixedOps drives every structure with arbitrary interleaved
// insert/delete programs (decoded from random bytes) and compares the
// surviving edge set against the oracle after every step.
func TestQuickMixedOps(t *testing.T) {
	decode := func(prog []byte) (batches []graph.Batch, dels []graph.Batch) {
		var curAdds, curDels graph.Batch
		for i := 0; i+2 < len(prog); i += 3 {
			e := graph.Edge{
				Src:    graph.NodeID(prog[i] % 24),
				Dst:    graph.NodeID(prog[i+1] % 24),
				Weight: 1,
			}
			if prog[i+2]%4 == 0 {
				curDels = append(curDels, e)
			} else {
				curAdds = append(curAdds, e)
			}
			if prog[i+2]%16 == 0 { // batch boundary
				batches = append(batches, curAdds)
				dels = append(dels, curDels)
				curAdds, curDels = nil, nil
			}
		}
		batches = append(batches, curAdds)
		dels = append(dels, curDels)
		return
	}

	for _, name := range ds.Names() {
		name := name
		f := func(prog []byte) bool {
			g := ds.MustNew(name, ds.Config{Directed: true, Threads: 2})
			oracle := graph.NewOracle(true)
			adds, dels := decode(prog)
			for b := range adds {
				g.Update(adds[b])
				oracle.Update(adds[b])
				if err := g.(ds.Deleter).Delete(dels[b]); err != nil {
					return false
				}
				oracle.Delete(dels[b])
				if g.NumEdges() != oracle.NumEdges() || g.NumNodes() != oracle.NumNodes() {
					return false
				}
			}
			var buf []graph.Neighbor
			for v := 0; v < oracle.NumNodes(); v++ {
				id := graph.NodeID(v)
				if g.OutDegree(id) != oracle.OutDegree(id) || g.InDegree(id) != oracle.InDegree(id) {
					return false
				}
				buf = g.OutNeigh(id, buf[:0])
				want := oracle.Out(id)
				if len(buf) != len(want) {
					return false
				}
				seen := map[graph.NodeID]bool{}
				for _, nb := range buf {
					seen[nb.ID] = true
				}
				for _, nb := range want {
					if !seen[nb.ID] {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
