package all_test

import (
	"fmt"
	"testing"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// Scripted insert/delete/re-insert sequences, replayed through every
// registered structure and checked against the oracle after every step.
// The structures run with tiny tuning (BlockSize 2, FlushThreshold 2) so a
// handful of edges crosses the interesting internal boundaries: Stinger
// allocates, tombstones, and reuses edge-block slots; DAH migrates vertices
// across its low→high degree boundary and rehashes.
func TestDeleteSequences(t *testing.T) {
	e := func(src, dst graph.NodeID, w graph.Weight) graph.Edge {
		return graph.Edge{Src: src, Dst: dst, Weight: w}
	}
	type step struct {
		adds graph.Batch
		dels graph.Batch
	}
	sequences := []struct {
		name  string
		steps []step
	}{
		{
			// Fill vertex 0 past several block/bucket capacities, punch a
			// hole in the middle, then land a new edge in the reused slot.
			name: "tombstone-slot-reuse",
			steps: []step{
				{adds: graph.Batch{e(0, 1, 1), e(0, 2, 2), e(0, 3, 3), e(0, 4, 4), e(0, 5, 5)}},
				{dels: graph.Batch{e(0, 3, 3)}},
				{adds: graph.Batch{e(0, 6, 6)}},
				{adds: graph.Batch{e(0, 3, 7)}}, // back, with a new weight
			},
		},
		{
			// Empty a whole block, then refill it: block reclamation and
			// re-allocation on the same vertex.
			name: "drain-and-refill-block",
			steps: []step{
				{adds: graph.Batch{e(0, 1, 1), e(0, 2, 2), e(0, 3, 3), e(0, 4, 4)}},
				{dels: graph.Batch{e(0, 1, 1), e(0, 2, 2), e(0, 3, 3), e(0, 4, 4)}},
				{adds: graph.Batch{e(0, 2, 9), e(0, 5, 9), e(0, 6, 9)}},
			},
		},
		{
			// Delete and re-insert the same edge across several steps; the
			// final weight must be the last inserted one.
			name: "flap-same-edge",
			steps: []step{
				{adds: graph.Batch{e(1, 2, 1)}},
				{dels: graph.Batch{e(1, 2, 1)}},
				{adds: graph.Batch{e(1, 2, 2)}},
				{dels: graph.Batch{e(1, 2, 2)}},
				{adds: graph.Batch{e(1, 2, 3)}},
			},
		},
		{
			// Same-step insert+delete of one edge: adds apply before dels,
			// so the edge must be gone.
			name: "add-then-del-same-step",
			steps: []step{
				{adds: graph.Batch{e(2, 3, 4)}, dels: graph.Batch{e(2, 3, 4)}},
				{adds: graph.Batch{e(2, 4, 1)}},
			},
		},
		{
			// Cross the DAH low->high boundary (FlushThreshold 2) upward
			// via inserts, then fall back below it via deletions, then
			// grow again: both migration directions plus rehashing.
			name: "degree-boundary-crossings",
			steps: []step{
				{adds: graph.Batch{e(5, 1, 1)}},
				{adds: graph.Batch{e(5, 2, 2), e(5, 3, 3)}},             // low -> high
				{dels: graph.Batch{e(5, 1, 1), e(5, 2, 2)}},             // back down
				{adds: graph.Batch{e(5, 6, 6), e(5, 7, 7), e(5, 8, 8)}}, // up again
				{dels: graph.Batch{e(5, 3, 3), e(5, 6, 6), e(5, 7, 7), e(5, 8, 8)}},
			},
		},
		{
			// Duplicate inserts in one batch (identical weight, per the
			// unique-ingestion convention) followed by one delete: the
			// duplicate must not leave a second copy behind.
			name: "duplicate-insert-then-delete",
			steps: []step{
				{adds: graph.Batch{e(3, 4, 5), e(3, 4, 5), e(3, 4, 5)}},
				{dels: graph.Batch{e(3, 4, 5)}},
			},
		},
		{
			// Deletes of absent and never-seen (out-of-range) edges are
			// no-ops, including against a vertex with live edges.
			name: "delete-absent-edges",
			steps: []step{
				{adds: graph.Batch{e(0, 1, 1)}},
				{dels: graph.Batch{e(0, 2, 1), e(7, 8, 1), e(900, 901, 1)}},
				{dels: graph.Batch{e(1, 0, 1)}}, // reverse orientation: absent when directed
			},
		},
	}

	for _, directed := range []bool{true, false} {
		for _, name := range ds.Names() {
			for _, seq := range sequences {
				if !directed && seq.name == "delete-absent-edges" {
					// The reverse-orientation delete is a real deletion on
					// undirected graphs; covered by flap-same-edge.
					continue
				}
				label := fmt.Sprintf("%s/directed=%v/%s", name, directed, seq.name)
				g := ds.MustNew(name, ds.Config{
					Directed:       directed,
					Threads:        2,
					BlockSize:      2,
					FlushThreshold: 2,
				})
				oracle := graph.NewOracle(directed)
				for si, st := range seq.steps {
					g.Update(st.adds)
					oracle.Update(st.adds)
					if len(st.dels) > 0 {
						if err := g.(ds.Deleter).Delete(st.dels); err != nil {
							t.Fatalf("%s: step %d: delete: %v", label, si, err)
						}
						oracle.Delete(st.dels)
					}
					if diffs := ds.DiffOracle(g, oracle, 6); len(diffs) != 0 {
						t.Fatalf("%s: step %d diverged:\n  %v", label, si, diffs)
					}
				}
			}
		}
	}
}
