package all_test

import (
	"math/rand"
	"testing"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// TestDeleteMatchesOracle interleaves insert and delete batches on every
// structure and checks the surviving edge sets against the oracle.
func TestDeleteMatchesOracle(t *testing.T) {
	for _, directed := range []bool{true, false} {
		for _, name := range ds.Names() {
			g := ds.MustNew(name, ds.Config{Directed: directed, Threads: 4})
			if !ds.SupportsDelete(g) {
				t.Fatalf("%s: expected deletion support", name)
			}
			oracle := graph.NewOracle(directed)
			rng := rand.New(rand.NewSource(9))

			var live graph.Batch // edges known to be present (may repeat)
			for round := 0; round < 6; round++ {
				adds := make(graph.Batch, 800)
				for i := range adds {
					src := graph.NodeID(rng.Intn(150))
					dst := graph.NodeID(rng.Intn(150))
					adds[i] = graph.Edge{Src: src, Dst: dst, Weight: pairWeight(src, dst)}
				}
				g.Update(adds)
				oracle.Update(adds)
				live = append(live, adds...)

				// Delete a mix of present and absent edges.
				dels := make(graph.Batch, 200)
				for i := range dels {
					if rng.Intn(3) == 0 || len(live) == 0 {
						dels[i] = graph.Edge{
							Src: graph.NodeID(rng.Intn(150)),
							Dst: graph.NodeID(150 + rng.Intn(50)), // never inserted
						}
					} else {
						dels[i] = live[rng.Intn(len(live))]
					}
				}
				if err := g.(ds.Deleter).Delete(dels); err != nil {
					t.Fatalf("%s: delete: %v", name, err)
				}
				oracle.Delete(dels)
			}
			checkAgainstOracle(t, name+" after deletes", g, oracle)
		}
	}
}

// TestDeleteAllEdges removes everything that was inserted; the structures
// must return to an empty edge set with zeroed degrees.
func TestDeleteAllEdges(t *testing.T) {
	for _, name := range ds.Names() {
		g := ds.MustNew(name, ds.Config{Directed: true, Threads: 2})
		var batch graph.Batch
		for i := 0; i < 50; i++ {
			for j := 0; j < 20; j++ {
				batch = append(batch, graph.Edge{
					Src: graph.NodeID(i), Dst: graph.NodeID(100 + j), Weight: 1,
				})
			}
		}
		g.Update(batch)
		if err := g.(ds.Deleter).Delete(batch); err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != 0 {
			t.Errorf("%s: NumEdges=%d after deleting everything", name, g.NumEdges())
		}
		for v := 0; v < g.NumNodes(); v++ {
			if d := g.OutDegree(graph.NodeID(v)); d != 0 {
				t.Fatalf("%s: vertex %d retains out-degree %d", name, v, d)
			}
			if ns := g.OutNeigh(graph.NodeID(v), nil); len(ns) != 0 {
				t.Fatalf("%s: vertex %d retains neighbors %v", name, v, ns)
			}
		}
	}
}

// TestDeleteThenReinsert checks deletion does not corrupt subsequent
// ingestion (the Stinger chain-trim and DAH backward-shift paths).
func TestDeleteThenReinsert(t *testing.T) {
	for _, name := range ds.Names() {
		g := ds.MustNew(name, ds.Config{Directed: true, Threads: 2, BlockSize: 4, FlushThreshold: 8})
		var batch graph.Batch
		for i := 0; i < 30; i++ {
			batch = append(batch, graph.Edge{Src: 5, Dst: graph.NodeID(i), Weight: 1})
		}
		g.Update(batch)
		if err := g.(ds.Deleter).Delete(batch[:15]); err != nil {
			t.Fatal(err)
		}
		if d := g.OutDegree(5); d != 15 {
			t.Fatalf("%s: degree=%d want 15", name, d)
		}
		g.Update(batch[:15]) // reinsert
		if d := g.OutDegree(5); d != 30 {
			t.Fatalf("%s: degree=%d want 30 after reinsert", name, d)
		}
		seen := map[graph.NodeID]bool{}
		for _, nb := range g.OutNeigh(5, nil) {
			if seen[nb.ID] {
				t.Fatalf("%s: duplicate %d after delete+reinsert", name, nb.ID)
			}
			seen[nb.ID] = true
		}
	}
}

// TestDeleteOutOfRange must not panic or mutate anything.
func TestDeleteOutOfRange(t *testing.T) {
	for _, name := range ds.Names() {
		g := ds.MustNew(name, ds.Config{Directed: true, Threads: 1})
		g.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
		if err := g.(ds.Deleter).Delete(graph.Batch{{Src: 500, Dst: 600}}); err != nil {
			t.Fatal(err)
		}
		if err := g.(ds.Deleter).Delete(nil); err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != 1 {
			t.Errorf("%s: NumEdges=%d want 1", name, g.NumEdges())
		}
	}
}
