// Package all registers the four standard SAGA-Bench data structures plus
// the log-structured GraphOne-style extension and the degree-adaptive
// hybrid. Blank-import it to make ds.New able to construct any of them:
//
//	import _ "sagabench/internal/ds/all"
package all

import (
	_ "sagabench/internal/ds/adjchunked"
	_ "sagabench/internal/ds/adjshared"
	_ "sagabench/internal/ds/dah"
	_ "sagabench/internal/ds/graphone"
	_ "sagabench/internal/ds/hybrid"
	_ "sagabench/internal/ds/stinger"
)
