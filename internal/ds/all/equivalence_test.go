package all_test

import (
	"math/rand"
	"strings"
	"testing"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// randomBatches produces deterministic random batches over a vertex space
// sized to produce plenty of duplicate edges (exercising unique ingestion).
func randomBatches(rng *rand.Rand, numBatches, batchSize, numNodes int) []graph.Batch {
	batches := make([]graph.Batch, numBatches)
	for b := range batches {
		batch := make(graph.Batch, batchSize)
		for i := range batch {
			src := graph.NodeID(rng.Intn(numNodes))
			dst := graph.NodeID(rng.Intn(numNodes))
			batch[i] = graph.Edge{Src: src, Dst: dst, Weight: pairWeight(src, dst)}
		}
		batches[b] = batch
	}
	return batches
}

// pairWeight derives a weight deterministically (and symmetrically, for
// undirected ingestion) from the endpoints so that duplicate edges ingested
// in nondeterministic parallel order still agree with the oracle.
func pairWeight(src, dst graph.NodeID) graph.Weight {
	return graph.Weight((uint32(src)^uint32(dst))*13+(uint32(src)+uint32(dst))*3) + 1
}

// hubBatches produces heavy-tailed batches: a large share of the edges
// touch a single hub vertex, mimicking the Wiki/Talk per-batch degree
// profile that stresses intra-node behaviour.
func hubBatches(rng *rand.Rand, numBatches, batchSize, numNodes int, hub graph.NodeID) []graph.Batch {
	batches := make([]graph.Batch, numBatches)
	for b := range batches {
		batch := make(graph.Batch, batchSize)
		for i := range batch {
			e := graph.Edge{
				Src: graph.NodeID(rng.Intn(numNodes)),
				Dst: graph.NodeID(rng.Intn(numNodes)),
			}
			switch rng.Intn(3) {
			case 0:
				e.Src = hub
			case 1:
				e.Dst = hub
			}
			e.Weight = pairWeight(e.Src, e.Dst)
			batch[i] = e
		}
		batches[b] = batch
	}
	return batches
}

// checkAgainstOracle asserts the structure's topology is identical to the
// oracle's, via the same exhaustive diff the crosscheck harness uses.
func checkAgainstOracle(t *testing.T, name string, g ds.Graph, oracle *graph.Oracle) {
	t.Helper()
	if diffs := ds.DiffOracle(g, oracle, 8); len(diffs) != 0 {
		t.Fatalf("%s: topology diverges from oracle:\n  %s", name, strings.Join(diffs, "\n  "))
	}
}

func runEquivalence(t *testing.T, directed bool, threads int, batches []graph.Batch) {
	oracle := graph.NewOracle(directed)
	cfg := ds.Config{Directed: directed, Threads: threads}
	graphs := map[string]ds.Graph{}
	for _, name := range ds.Names() {
		graphs[name] = ds.MustNew(name, cfg)
	}
	for _, b := range batches {
		oracle.Update(b)
		for name, g := range graphs {
			g.Update(b)
			_ = name
		}
	}
	for name, g := range graphs {
		checkAgainstOracle(t, name, g, oracle)
	}
}

func TestAllStructuresMatchOracleDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	runEquivalence(t, true, 4, randomBatches(rng, 8, 1500, 400))
}

func TestAllStructuresMatchOracleUndirected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	runEquivalence(t, true, 4, randomBatches(rng, 6, 1000, 300))
	rng = rand.New(rand.NewSource(3))
	runEquivalence(t, false, 4, randomBatches(rng, 6, 1000, 300))
}

func TestAllStructuresMatchOracleHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	runEquivalence(t, true, 8, hubBatches(rng, 6, 2000, 500, 7))
}

func TestAllStructuresSingleThread(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	runEquivalence(t, true, 1, randomBatches(rng, 4, 800, 200))
}

func TestDuplicateEdgeOverwritesWeight(t *testing.T) {
	for _, name := range ds.Names() {
		g := ds.MustNew(name, ds.Config{Directed: true, Threads: 2})
		g.Update(graph.Batch{{Src: 1, Dst: 2, Weight: 5}})
		g.Update(graph.Batch{{Src: 1, Dst: 2, Weight: 9}})
		if got := g.NumEdges(); got != 1 {
			t.Errorf("%s: NumEdges=%d want 1", name, got)
		}
		ns := g.OutNeigh(1, nil)
		if len(ns) != 1 || ns[0].ID != 2 || ns[0].Weight != 9 {
			t.Errorf("%s: OutNeigh(1)=%v want [{2 9}]", name, ns)
		}
	}
}

func TestEmptyBatchIsNoOp(t *testing.T) {
	for _, name := range ds.Names() {
		g := ds.MustNew(name, ds.Config{Directed: true, Threads: 2})
		g.Update(nil)
		g.Update(graph.Batch{})
		if g.NumNodes() != 0 || g.NumEdges() != 0 {
			t.Errorf("%s: not empty after empty updates", name)
		}
	}
}

func TestOutOfRangeQueriesAreSafe(t *testing.T) {
	for _, name := range ds.Names() {
		g := ds.MustNew(name, ds.Config{Directed: true, Threads: 1})
		g.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
		if d := g.OutDegree(99); d != 0 {
			t.Errorf("%s: OutDegree(99)=%d want 0", name, d)
		}
		if d := g.InDegree(99); d != 0 {
			t.Errorf("%s: InDegree(99)=%d want 0", name, d)
		}
		if ns := g.OutNeigh(99, nil); len(ns) != 0 {
			t.Errorf("%s: OutNeigh(99)=%v want empty", name, ns)
		}
		if ns := g.InNeigh(99, nil); len(ns) != 0 {
			t.Errorf("%s: InNeigh(99)=%v want empty", name, ns)
		}
	}
}

// TestConcurrentHubInsertUnique hammers a single hub vertex from many
// goroutine shards in one batch; uniqueness must survive the contention.
func TestConcurrentHubInsertUnique(t *testing.T) {
	const hub = 3
	for _, name := range ds.Names() {
		for trial := 0; trial < 5; trial++ {
			g := ds.MustNew(name, ds.Config{Directed: true, Threads: 8})
			rng := rand.New(rand.NewSource(int64(trial)))
			batch := make(graph.Batch, 4000)
			for i := range batch {
				batch[i] = graph.Edge{Src: hub, Dst: graph.NodeID(rng.Intn(97)), Weight: 1}
			}
			g.Update(batch)
			ns := g.OutNeigh(hub, nil)
			seen := map[graph.NodeID]bool{}
			for _, n := range ns {
				if seen[n.ID] {
					t.Fatalf("%s trial %d: duplicate neighbor %d", name, trial, n.ID)
				}
				seen[n.ID] = true
			}
			if g.OutDegree(hub) != len(seen) {
				t.Fatalf("%s trial %d: degree=%d distinct=%d", name, trial, g.OutDegree(hub), len(seen))
			}
		}
	}
}

func TestProfileCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	batches := randomBatches(rng, 3, 1000, 100)
	for _, name := range ds.Names() {
		g := ds.MustNew(name, ds.Config{Directed: true, Threads: 4})
		for _, b := range batches {
			g.Update(b)
		}
		p, ok := ds.ProfileOf(g)
		if !ok {
			t.Fatalf("%s: no profile", name)
		}
		if p.EdgesIngested != 3000*2 { // out + in copies
			t.Errorf("%s: EdgesIngested=%d want 6000", name, p.EdgesIngested)
		}
		if p.Inserted == 0 || p.Inserted > p.EdgesIngested {
			t.Errorf("%s: implausible Inserted=%d", name, p.Inserted)
		}
		// Directed graphs keep two copies, so total inserts are twice
		// the distinct out-edge count.
		if int(p.Inserted) != 2*g.NumEdges() {
			t.Errorf("%s: Inserted=%d vs 2*NumEdges=%d", name, p.Inserted, 2*g.NumEdges())
		}
		ds.ResetProfileOf(g)
		p, _ = ds.ProfileOf(g)
		if p.EdgesIngested != 0 {
			t.Errorf("%s: profile not reset", name)
		}
	}
}
