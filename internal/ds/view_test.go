package ds_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
	"sagabench/internal/snapshot"
)

// viewStep is one window of a mixed stream: inserts (with deliberate
// duplicates, exercising weight overwrites) and deletions of previously
// inserted edges.
type viewStep struct {
	adds graph.Batch
	dels graph.Batch
}

// viewStream generates a deterministic mixed stream over numNodes
// vertices. Roughly a third of the inserts duplicate an earlier edge (a
// weight overwrite), and each step deletes a handful of live edges. The
// weight is a function of (src, dst, batch) so duplicates of the same edge
// within one batch agree — parallel ingest makes the winner among unequal
// intra-batch weights nondeterministic — while cross-batch duplicates
// still rewrite the stored weight.
func viewStream(seed int64, batches, batchSize, numNodes int) []viewStep {
	rng := rand.New(rand.NewSource(seed))
	var live []graph.Edge
	steps := make([]viewStep, batches)
	for b := range steps {
		var adds, dels graph.Batch
		for i := 0; i < batchSize; i++ {
			var e graph.Edge
			if len(live) > 0 && rng.Intn(3) == 0 {
				e = live[rng.Intn(len(live))]
			} else {
				e = graph.Edge{
					Src: graph.NodeID(rng.Intn(numNodes)),
					Dst: graph.NodeID(rng.Intn(numNodes)),
				}
			}
			// Symmetric in (Src, Dst): undirected ingest mirrors each edge,
			// so (u,v) and (v,u) in one batch must agree on weight too.
			lo, hi := int(e.Src), int(e.Dst)
			if lo > hi {
				lo, hi = hi, lo
			}
			e.Weight = graph.Weight(1 + (lo+7*hi+13*b)%9)
			adds = append(adds, e)
			live = append(live, e)
		}
		for i := 0; i < batchSize/8 && len(live) > 0; i++ {
			k := rng.Intn(len(live))
			dels = append(dels, live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		steps[b] = viewStep{adds: adds, dels: dels}
	}
	return steps
}

// TestComputeViewMatchesOracleAndFullRebuild streams mixed batches through
// every registered structure and checks, after every step, that (a) the
// incrementally refreshed mirror's topology matches the sequential oracle
// exactly, and (b) the mirror's CSR arrays are identical — order included —
// to a freshly full-built mirror of the same structure. (b) is the
// dirty-vs-full consistency property: delta rebuilds that copy clean runs
// must land bit-for-bit where a from-scratch flatten would.
func TestComputeViewMatchesOracleAndFullRebuild(t *testing.T) {
	for _, name := range ds.Names() {
		for _, directed := range []bool{true, false} {
			name, directed := name, directed
			t.Run(fmt.Sprintf("%s/directed=%v", name, directed), func(t *testing.T) {
				t.Parallel()
				g := ds.MustNew(name, ds.Config{Directed: directed, Threads: 3})
				view, ok := ds.NewComputeView(g, 3)
				if !ok {
					t.Fatalf("NewComputeView(%s) not supported", name)
				}
				oracle := graph.NewOracle(directed)
				del, canDelete := g.(ds.Deleter)
				for bi, step := range viewStream(0xC0FFEE+int64(len(name)), 16, 120, 80) {
					dels := step.dels
					if !canDelete {
						dels = nil
					}
					g.Update(step.adds)
					oracle.Update(step.adds)
					if len(dels) > 0 {
						if err := del.Delete(dels); err != nil {
							t.Fatalf("batch %d: delete: %v", bi, err)
						}
						oracle.Delete(dels)
					}
					view.Refresh(step.adds, dels)

					if diffs := ds.DiffOracle(view, oracle, 4); len(diffs) != 0 {
						t.Fatalf("batch %d: view diverged from oracle: %v", bi, diffs)
					}

					fresh, ok := ds.NewComputeView(g, 3)
					if !ok {
						t.Fatalf("batch %d: fresh view construction failed", bi)
					}
					fresh.Refresh(nil, nil) // first refresh is a full build
					a, b := view.FlatCSR(), fresh.FlatCSR()
					if !reflect.DeepEqual(a.OutIndex, b.OutIndex) || !reflect.DeepEqual(a.OutAdj, b.OutAdj) {
						t.Fatalf("batch %d: delta-rebuilt out arrays differ from full rebuild", bi)
					}
					if !reflect.DeepEqual(a.InIndex, b.InIndex) || !reflect.DeepEqual(a.InAdj, b.InAdj) {
						t.Fatalf("batch %d: delta-rebuilt in arrays differ from full rebuild", bi)
					}
				}
				if view.LastRefresh().Nodes == 0 {
					t.Fatal("stream never populated the view")
				}
			})
		}
	}
}

// TestComputeViewFallback verifies that graphs without a flattenable
// backing store are reported as unsupported rather than wrapped.
func TestComputeViewFallback(t *testing.T) {
	frozen := snapshot.Freeze(graph.BuildCSR(0, nil))
	if _, ok := ds.NewComputeView(frozen, 2); ok {
		t.Fatal("NewComputeView accepted a non-TwoCopy graph")
	}
}

// TestComputeViewReadOnly verifies the mirror refuses direct updates.
func TestComputeViewReadOnly(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	view, ok := ds.NewComputeView(g, 1)
	if !ok {
		t.Fatal("NewComputeView failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Update on a ComputeView did not panic")
		}
	}()
	view.Update(graph.Batch{{Src: 0, Dst: 1}})
}

// TestComputeViewDropSpares pins down the double-buffer contract behind
// epoch publication: by default the third refresh scribbles the arrays
// published two refreshes ago (they are the spare buffer — the control
// half asserts that reuse so the test has teeth), and after DropSpares
// the next rebuild allocates fresh arrays, leaving the old ones — which a
// pinned snapshot may still hold — bit-for-bit intact.
func TestComputeViewDropSpares(t *testing.T) {
	mkBatch := func(round int) graph.Batch {
		var b graph.Batch
		for src := 0; src < 16; src++ {
			for k := 1; k <= 3; k++ {
				b = append(b, graph.Edge{
					Src:    graph.NodeID(src),
					Dst:    graph.NodeID((src + k) % 16),
					Weight: graph.Weight(1 + (src+k+round)%7),
				})
			}
		}
		return b
	}
	setup := func() (ds.Graph, *ds.ComputeView) {
		g := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 2})
		view, ok := ds.NewComputeView(g, 2)
		if !ok {
			t.Fatal("NewComputeView failed")
		}
		b := mkBatch(0)
		g.Update(b)
		view.Refresh(b, nil)
		return g, view
	}
	step := func(g ds.Graph, view *ds.ComputeView, round int) {
		b := mkBatch(round) // same edges, new weights: dirty, no growth
		g.Update(b)
		view.Refresh(b, nil)
	}

	// Control: without DropSpares, refresh 3 reuses refresh 1's arrays.
	g, view := setup()
	idx1, adj1 := view.FlatCSR().OutIndex, view.FlatCSR().OutAdj
	step(g, view, 1)
	step(g, view, 2)
	c3 := view.FlatCSR()
	if &c3.OutIndex[0] != &idx1[0] || &c3.OutAdj[0] != &adj1[0] {
		t.Fatal("control: third refresh did not reuse the double buffer; DropSpares test would be vacuous")
	}

	// With DropSpares between: refresh 3 allocates, the held arrays survive.
	g, view = setup()
	idx1, adj1 = view.FlatCSR().OutIndex, view.FlatCSR().OutAdj
	wantIdx := append([]int64(nil), idx1...)
	wantAdj := append([]graph.Neighbor(nil), adj1...)
	step(g, view, 1)
	view.DropSpares()
	step(g, view, 2)
	c3 = view.FlatCSR()
	if &c3.OutIndex[0] == &idx1[0] || &c3.OutAdj[0] == &adj1[0] {
		t.Fatal("refresh after DropSpares still reused the dropped arrays")
	}
	if !reflect.DeepEqual(idx1, wantIdx) || !reflect.DeepEqual(adj1, wantAdj) {
		t.Fatal("dropped arrays were scribbled after DropSpares")
	}
}

// TestExportEdgesParallel checks the fanned-out exporter produces the
// identical canonical edge list as the sequential one, for every
// structure, after a mixed stream.
func TestExportEdgesParallel(t *testing.T) {
	for _, name := range ds.Names() {
		for _, directed := range []bool{true, false} {
			name, directed := name, directed
			t.Run(fmt.Sprintf("%s/directed=%v", name, directed), func(t *testing.T) {
				t.Parallel()
				g := ds.MustNew(name, ds.Config{Directed: directed, Threads: 3})
				del, canDelete := g.(ds.Deleter)
				for _, step := range viewStream(99, 10, 150, 64) {
					g.Update(step.adds)
					if canDelete && len(step.dels) > 0 {
						if err := del.Delete(step.dels); err != nil {
							t.Fatalf("delete: %v", err)
						}
					}
				}
				want := ds.ExportEdges(g)
				for _, threads := range []int{1, 2, 5} {
					got := ds.ExportEdgesParallel(g, threads)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("threads=%d: parallel export differs (%d vs %d edges)", threads, len(got), len(want))
					}
				}
			})
		}
	}
}
