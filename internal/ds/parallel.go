package ds

// saga:paniccapture — worker goroutines in this package must capture
// panics so the pipeline's poison-batch quarantine can recover them
// (enforced by sagavet; see internal/analysis).

import (
	"sync"

	"sagabench/internal/graph"
)

// ForEachShard splits edges into up to `threads` contiguous shards and runs
// fn on each shard in its own goroutine, blocking until all finish. It is
// the shared-style multithreading used by AS and Stinger: every worker may
// touch any vertex and relies on the structure's own locks.
//
// A panic in any worker is captured and re-raised on the caller (first
// panic wins) so the pipeline's poison-batch quarantine can recover it.
func ForEachShard(edges []graph.Edge, threads int, fn func(shard []graph.Edge)) {
	if threads <= 1 || len(edges) <= 1 {
		fn(edges)
		return
	}
	if threads > len(edges) {
		threads = len(edges)
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	per := (len(edges) + threads - 1) / threads
	for start := 0; start < len(edges); start += per {
		end := start + per
		if end > len(edges) {
			end = len(edges)
		}
		wg.Add(1)
		go func(sh []graph.Edge) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(sh)
		}(edges[start:end])
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// GroupByChunk buckets the edges of a batch by source-vertex chunk
// (chunk = src mod chunks) and runs fn(chunk, edges) for each non-empty
// bucket in its own goroutine. This is the chunked-style multithreading of
// AC and DAH: a chunk is owned by exactly one worker, so intra-chunk
// ingestion needs no locks. Bucket contents preserve batch order, keeping
// ingestion order deterministic per chunk.
func GroupByChunk(edges []graph.Edge, chunks int, fn func(chunk int, edges []graph.Edge)) {
	if chunks <= 1 {
		fn(0, edges)
		return
	}
	if len(edges) == 0 {
		return
	}
	// Counting-sort the batch into one backing array: bucket c occupies
	// backing[start[c]:start[c+1]], filled in batch order.
	start := make([]int, chunks+1)
	for _, e := range edges {
		start[int(e.Src)%chunks+1]++
	}
	for c := 0; c < chunks; c++ {
		start[c+1] += start[c]
	}
	backing := make([]graph.Edge, len(edges))
	cursor := make([]int, chunks)
	copy(cursor, start[:chunks])
	for _, e := range edges {
		c := int(e.Src) % chunks
		backing[cursor[c]] = e
		cursor[c]++
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	// Spawn workers for all non-empty buckets but the last, which runs on
	// the caller's goroutine — for the common two-chunk case that halves
	// the spawn/schedule cost per batch.
	last := -1
	for c := chunks - 1; c >= 0; c-- {
		if start[c+1] > start[c] {
			last = c
			break
		}
	}
	for c := 0; c < last; c++ {
		b := backing[start[c]:start[c+1]]
		if len(b) == 0 {
			continue
		}
		wg.Add(1)
		go func(c int, b []graph.Edge) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(c, b)
		}(c, b)
	}
	if last >= 0 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(last, backing[start[last]:start[last+1]])
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// ForEachChunk runs fn(c) for each chunk id 0..n-1 in its own goroutine
// and blocks until all finish. It is the compaction-side companion of
// GroupByChunk for chunked structures whose per-chunk state (dirty
// lists, staged logs) already partitions the work: each worker owns
// exactly the state indexed by its chunk id. Panics are captured and
// re-raised on the caller, like the other helpers here.
func ForEachChunk(n int, fn func(c int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(c)
		}(c)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// ChunkOf reports the chunk owning vertex v under the modulo partition.
func ChunkOf(v graph.NodeID, chunks int) int {
	if chunks <= 1 {
		return 0
	}
	return int(v) % chunks
}
