package ds

import "sagabench/internal/graph"

// Flattener is an optional OneDir capability: bulk export of one vertex's
// adjacency for the compute-view layer (view.go). FlatFill writes v's
// neighbors into dst — in the store's own traversal order, exactly the
// order Neighbors would yield them — and reports the count written; dst
// always has at least Degree(v) capacity. Calls on distinct vertices run
// concurrently while no update is in flight (the view's parallel fill
// phase), the same read contract Neighbors already has.
type Flattener interface {
	FlatFill(v graph.NodeID, dst []graph.Neighbor) int
}

// RunFlattener is the zero-copy specialization for stores whose
// per-vertex adjacency already is one contiguous slice (AS, AC,
// GraphOne): FlatRun hands out the backing storage directly so the view
// copies a run with a single memmove instead of element-wise appends.
// The returned slice is valid only until the next update.
type RunFlattener interface {
	Flattener
	FlatRun(v graph.NodeID) []graph.Neighbor
}

// DirtyExpander is an optional capability for stores whose neighbor
// iteration order for a vertex can be perturbed by updates to OTHER
// vertices — DAH's shared per-chunk Robin Hood table shifts slots on
// displacement and backward-shift deletion, reordering bystander runs.
// The view hands such a store the touched source vertices of a refresh
// and lets it mark every vertex whose run may have reordered, so runs
// copied from the previous mirror are guaranteed byte-identical to what
// a fresh fill would produce.
type DirtyExpander interface {
	ExpandDirty(touched []graph.NodeID, mark func(v graph.NodeID))
}

// FlatView is a Graph that additionally exposes a flat CSR of its
// topology. The compute kernels type-assert to it and iterate the
// index/adjacency arrays directly, skipping per-vertex interface
// dispatch and neighbor-buffer copies. snapshot.Frozen implements it
// trivially; ComputeView implements it for any dynamic structure whose
// stores implement Flattener.
type FlatView interface {
	Graph
	FlatCSR() *graph.CSR
}
