package ds

import (
	"fmt"
	"sort"

	"sagabench/internal/graph"
)

// Topology export and differential comparison: every Graph already exposes
// full traversal, so a complete, deterministic edge dump — and an
// exhaustive diff against the map-backed graph.Oracle — can be derived
// without per-structure hooks. The crosscheck harness and the equivalence
// tests both go through DiffOracle so a mismatch is reported identically
// everywhere.

// ExportEdges materializes g's distinct directed out-edges in (src, dst)
// order, the same canonical order graph.Oracle.Edges uses, so two exports
// (or an export and an oracle) can be compared slot by slot.
func ExportEdges(g Graph) []graph.Edge {
	var out []graph.Edge
	var buf []graph.Neighbor
	for v := 0; v < g.NumNodes(); v++ {
		buf = g.OutNeigh(graph.NodeID(v), buf[:0])
		sort.Slice(buf, func(i, j int) bool { return buf[i].ID < buf[j].ID })
		for _, nb := range buf {
			out = append(out, graph.Edge{Src: graph.NodeID(v), Dst: nb.ID, Weight: nb.Weight})
		}
	}
	return out
}

// ExportEdgesParallel is ExportEdges fanned out over threads, producing
// the identical canonical edge list: a parallel per-vertex degree count
// sizes one flat output array (the same count → prefix → fill shape the
// compute-view rebuild uses), then workers fill and sort disjoint vertex
// ranges — through the store's Flattener when it has one, so a run is one
// bulk copy instead of per-neighbor appends. The durable checkpoint
// writer uses this; its full-adjacency snapshots were previously a
// single-threaded per-vertex sort scan.
func ExportEdgesParallel(g Graph, threads int) []graph.Edge {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	if threads <= 1 {
		return ExportEdges(g)
	}
	var fl Flattener
	if t, ok := g.(*TwoCopy); ok {
		fl, _ = t.OutStore().(Flattener)
	}
	index := make([]int64, n+1)
	graph.ForRanges(n, threads, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			index[v+1] = int64(g.OutDegree(graph.NodeID(v)))
		}
	})
	for v := 0; v < n; v++ {
		index[v+1] += index[v]
	}
	if index[n] == 0 {
		return nil
	}
	out := make([]graph.Edge, index[n])
	graph.ForRanges(n, threads, func(lo, hi int) {
		var buf []graph.Neighbor
		for v := lo; v < hi; v++ {
			deg := int(index[v+1] - index[v])
			if deg == 0 {
				continue
			}
			if cap(buf) < deg {
				buf = make([]graph.Neighbor, deg)
			}
			buf = buf[:deg]
			if fl != nil {
				fl.FlatFill(graph.NodeID(v), buf)
			} else {
				buf = g.OutNeigh(graph.NodeID(v), buf[:0])
			}
			sort.Slice(buf, func(i, j int) bool { return buf[i].ID < buf[j].ID })
			for i, nb := range buf {
				out[int(index[v])+i] = graph.Edge{Src: graph.NodeID(v), Dst: nb.ID, Weight: nb.Weight}
			}
		}
	})
	return out
}

// DiffOracle exhaustively compares g's topology against the oracle —
// vertex and edge counts, per-vertex in/out degrees, and both adjacency
// directions including weights — and returns human-readable mismatch
// descriptions. An empty result means the topologies are identical.
// maxDiffs caps the report length (0 means unlimited).
func DiffOracle(g Graph, o *graph.Oracle, maxDiffs int) []string {
	var diffs []string
	full := func() bool { return maxDiffs > 0 && len(diffs) >= maxDiffs }
	add := func(format string, args ...any) {
		if !full() {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}
	if g.NumNodes() != o.NumNodes() {
		add("NumNodes=%d want %d", g.NumNodes(), o.NumNodes())
	}
	if g.NumEdges() != o.NumEdges() {
		add("NumEdges=%d want %d", g.NumEdges(), o.NumEdges())
	}
	n := o.NumNodes()
	if gn := g.NumNodes(); gn < n {
		n = gn
	}
	var buf []graph.Neighbor
	for v := 0; v < n && !full(); v++ {
		id := graph.NodeID(v)
		if got, want := g.OutDegree(id), o.OutDegree(id); got != want {
			add("OutDegree(%d)=%d want %d", v, got, want)
		}
		if got, want := g.InDegree(id), o.InDegree(id); got != want {
			add("InDegree(%d)=%d want %d", v, got, want)
		}
		buf = g.OutNeigh(id, buf[:0])
		diffs = diffNeighborSets(diffs, maxDiffs, fmt.Sprintf("out(%d)", v), buf, o.Out(id))
		buf = g.InNeigh(id, buf[:0])
		diffs = diffNeighborSets(diffs, maxDiffs, fmt.Sprintf("in(%d)", v), buf, o.In(id))
	}
	return diffs
}

// diffNeighborSets appends mismatches between one vertex's adjacency and
// the oracle's, treating both as sets keyed by neighbor ID.
func diffNeighborSets(diffs []string, maxDiffs int, what string, got, want []graph.Neighbor) []string {
	full := func() bool { return maxDiffs > 0 && len(diffs) >= maxDiffs }
	add := func(format string, args ...any) []string {
		if !full() {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
		return diffs
	}
	m := make(map[graph.NodeID]graph.Weight, len(got))
	for _, nb := range got {
		if _, dup := m[nb.ID]; dup {
			diffs = add("%s: duplicate neighbor %d", what, nb.ID)
			continue
		}
		m[nb.ID] = nb.Weight
	}
	for _, nb := range want {
		if full() {
			return diffs
		}
		w, ok := m[nb.ID]
		if !ok {
			diffs = add("%s: missing neighbor %d", what, nb.ID)
			continue
		}
		if w != nb.Weight {
			diffs = add("%s: neighbor %d weight=%v want %v", what, nb.ID, w, nb.Weight)
		}
		delete(m, nb.ID)
	}
	for id := range m {
		if full() {
			return diffs
		}
		diffs = add("%s: extra neighbor %d", what, id)
	}
	return diffs
}
