package adjshared

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// AS keeps one contiguous vector per vertex, so the compute-view layer
// can take the storage directly: FlatRun is zero-copy and FlatFill is a
// single memmove. No locks are needed — flattening runs in the compute
// phase, when no update is in flight, the same contract Neighbors has.

// FlatRun implements ds.RunFlattener.
// saga:allow lockheld -- read-phase zero-copy handoff: no update is in flight (same contract as Neighbors).
func (s *store) FlatRun(v graph.NodeID) []graph.Neighbor { return s.adj[v] }

// FlatFill implements ds.Flattener.
func (s *store) FlatFill(v graph.NodeID, dst []graph.Neighbor) int {
	// saga:allow lockheld -- read-phase bulk copy: no update is in flight (same contract as Neighbors).
	return copy(dst, s.adj[v])
}

var _ ds.RunFlattener = (*store)(nil)
