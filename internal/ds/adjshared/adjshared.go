// Package adjshared implements AS: an adjacency list with shared-style
// multithreading (paper Section III-A1). The topology is an array of
// per-vertex neighbor vectors. Any update worker may ingest any edge; a
// worker locks the source vertex's vector, linearly scans it for the target
// edge, and appends when the search is negative. The per-vertex lock means
// there is no intra-node parallelism: concurrent updates to one hub vertex
// serialize, which is exactly the contention pathology the paper observes
// for heavy-tailed graphs.
package adjshared

import (
	"sync"
	"sync/atomic"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Name is the registry key.
const Name = "adjshared"

func init() {
	ds.Register(Name, func(cfg ds.Config) ds.Graph {
		threads := cfg.Threads
		if threads <= 0 {
			threads = 1
		}
		hint := cfg.MaxNodesHint
		return ds.NewTwoCopy(cfg.Directed, func() ds.OneDir {
			return newStore(threads, hint)
		})
	})
}

// store is the single-direction AS store.
type store struct {
	threads int

	adj   [][]graph.Neighbor // saga:guardedby locks[$i]
	locks []sync.Mutex

	numEdges atomic.Int64

	profMu sync.Mutex
	prof   ds.UpdateProfile // saga:guardedby profMu
}

func newStore(threads, hint int) *store {
	s := &store{threads: threads}
	if hint > 0 {
		s.adj = make([][]graph.Neighbor, 0, hint)
		s.locks = make([]sync.Mutex, 0, hint)
	}
	return s
}

// EnsureNodes implements ds.OneDir.
func (s *store) EnsureNodes(n int) {
	for len(s.adj) < n {
		s.adj = append(s.adj, nil)
	}
	// Mutexes must not be copied once used, so the lock array never
	// relocates: it is re-allocated only while no workers are running
	// (EnsureNodes is called between batches).
	if len(s.locks) < n {
		grown := make([]sync.Mutex, n+n/2)
		s.locks = grown
	}
}

// UpdateEdges implements ds.OneDir. Workers share the whole vertex space.
func (s *store) UpdateEdges(edges []graph.Edge) {
	var conflicts, scans, inserted atomic.Uint64
	ds.ForEachShard(edges, s.threads, func(shard []graph.Edge) {
		var localScan, localIns, localConf uint64
		for _, e := range shard {
			mu := &s.locks[e.Src]
			if !mu.TryLock() {
				localConf++
				mu.Lock()
			}
			vec := s.adj[e.Src]
			found := false
			for i := range vec {
				localScan++
				if vec[i].ID == e.Dst {
					vec[i].Weight = e.Weight
					found = true
					break
				}
			}
			if !found {
				s.adj[e.Src] = append(vec, graph.Neighbor{ID: e.Dst, Weight: e.Weight})
				localIns++
			}
			mu.Unlock()
		}
		conflicts.Add(localConf)
		scans.Add(localScan)
		inserted.Add(localIns)
	})
	s.numEdges.Add(int64(inserted.Load()))
	s.profMu.Lock()
	s.prof.EdgesIngested += uint64(len(edges))
	s.prof.Inserted += inserted.Load()
	s.prof.ScanSteps += scans.Load()
	s.prof.LockConflicts += conflicts.Load()
	s.profMu.Unlock()
}

// Degree implements ds.OneDir.
// saga:allow lockheld -- read-phase query: two-copy phase separation means no writer is active.
func (s *store) Degree(v graph.NodeID) int { return len(s.adj[v]) }

// Neighbors implements ds.OneDir. The per-vertex vector is contiguous, so
// traversal is a single sequential scan — the cheapest traversal mechanism
// of the four structures.
func (s *store) Neighbors(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	// saga:allow lockheld -- read-phase traversal: two-copy phase separation means no writer is active.
	return append(buf, s.adj[v]...)
}

// NumEdges implements ds.OneDir.
func (s *store) NumEdges() int { return int(s.numEdges.Load()) }

// NumNodes implements ds.OneDir.
func (s *store) NumNodes() int { return len(s.adj) }

// UpdateProfile implements ds.Profiler.
func (s *store) UpdateProfile() ds.UpdateProfile {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	return s.prof
}

// ResetProfile implements ds.Profiler.
func (s *store) ResetProfile() {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	s.prof = ds.UpdateProfile{}
}

// VectorCap reports the capacity of v's neighbor vector; the architecture
// replayer uses it to model reallocation traffic.
// saga:allow lockheld -- read-phase layout probe: runs between batches only.
func (s *store) VectorCap(v graph.NodeID) int { return cap(s.adj[v]) }

// DeleteEdges implements ds.OneDirDeleter: lock the source vector, scan
// for the record, and remove it by swapping in the last element.
func (s *store) DeleteEdges(edges []graph.Edge) {
	var removed, scans atomic.Uint64
	ds.ForEachShard(edges, s.threads, func(shard []graph.Edge) {
		var localRem, localScan uint64
		for _, e := range shard {
			mu := &s.locks[e.Src]
			mu.Lock()
			vec := s.adj[e.Src]
			for i := range vec {
				localScan++
				if vec[i].ID == e.Dst {
					vec[i] = vec[len(vec)-1]
					s.adj[e.Src] = vec[:len(vec)-1]
					localRem++
					break
				}
			}
			mu.Unlock()
		}
		removed.Add(localRem)
		scans.Add(localScan)
	})
	s.numEdges.Add(-int64(removed.Load()))
	s.profMu.Lock()
	s.prof.ScanSteps += scans.Load()
	s.profMu.Unlock()
}
