package adjshared

import (
	"testing"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

func outStore(t *testing.T, g ds.Graph) *store {
	t.Helper()
	return g.(*ds.TwoCopy).OutStore().(*store)
}

func TestScanStepsAccounting(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1})
	// Distinct inserts for one source: insert i scans i slots first.
	var want uint64
	for i := 0; i < 20; i++ {
		g.Update(graph.Batch{{Src: 0, Dst: graph.NodeID(100 + i), Weight: 1}})
		want += uint64(i)
	}
	p, _ := ds.ProfileOf(g)
	// The in-copy scans are over per-destination single vectors (0 each).
	if p.ScanSteps != want {
		t.Fatalf("ScanSteps=%d want %d", p.ScanSteps, want)
	}
	// A duplicate must scan until found and not insert.
	before, _ := ds.ProfileOf(g)
	g.Update(graph.Batch{{Src: 0, Dst: 105, Weight: 9}})
	after, _ := ds.ProfileOf(g)
	if after.Inserted != before.Inserted {
		t.Fatal("duplicate caused an insert")
	}
	if after.ScanSteps <= before.ScanSteps {
		t.Fatal("duplicate search did not scan")
	}
}

func TestVectorCapGrowth(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 1})
	st := outStore(t, g)
	var batch graph.Batch
	for i := 0; i < 100; i++ {
		batch = append(batch, graph.Edge{Src: 5, Dst: graph.NodeID(i + 10), Weight: 1})
	}
	g.Update(batch)
	if c := st.VectorCap(5); c < 100 {
		t.Fatalf("VectorCap=%d want >= 100", c)
	}
	if c := st.VectorCap(0); c != 0 {
		t.Fatalf("untouched vertex cap=%d want 0", c)
	}
}

func TestLockConflictCounting(t *testing.T) {
	// Hammer one vertex from many threads; with real parallelism the
	// counter must register conflicts, but even without it the counter
	// must stay consistent (never exceed ingested edges).
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 8})
	batch := make(graph.Batch, 5000)
	for i := range batch {
		batch[i] = graph.Edge{Src: 1, Dst: graph.NodeID(i % 37), Weight: 1}
	}
	g.Update(batch)
	p, _ := ds.ProfileOf(g)
	if p.LockConflicts > p.EdgesIngested {
		t.Fatalf("conflicts %d exceed ingested %d", p.LockConflicts, p.EdgesIngested)
	}
	if p.EdgesIngested != 10000 { // out + in copy
		t.Fatalf("EdgesIngested=%d want 10000", p.EdgesIngested)
	}
}

func TestGrowthAcrossBatches(t *testing.T) {
	g := ds.MustNew(Name, ds.Config{Directed: true, Threads: 2, MaxNodesHint: 4})
	g.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	g.Update(graph.Batch{{Src: 1000, Dst: 2000, Weight: 1}})
	if g.NumNodes() != 2001 {
		t.Fatalf("NumNodes=%d want 2001", g.NumNodes())
	}
	if g.OutDegree(0) != 1 || g.OutDegree(1000) != 1 {
		t.Fatal("degrees lost across growth")
	}
}
