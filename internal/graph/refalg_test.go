package graph

import (
	"math"
	"testing"
)

func refOracle(t *testing.T, directed bool, edges ...Edge) *Oracle {
	t.Helper()
	o := NewOracle(directed)
	o.Update(Batch(edges))
	return o
}

func TestRefBFSAndSSSPLine(t *testing.T) {
	// 0 -1-> 1 -2-> 2 -3-> 3, plus isolated 4.
	o := refOracle(t, true,
		Edge{0, 1, 1}, Edge{1, 2, 2}, Edge{2, 3, 3}, Edge{4, 4, 1})
	o.Delete(Batch{{Src: 4, Dst: 4}}) // leave 4 edgeless but present
	d := RefBFS(o, 0)
	want := []float64{0, 1, 2, 3, math.Inf(1)}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("bfs[%d]=%v want %v", v, d[v], want[v])
		}
	}
	s := RefSSSP(o, 0)
	wantS := []float64{0, 1, 3, 6, math.Inf(1)}
	for v := range wantS {
		if s[v] != wantS[v] {
			t.Fatalf("sssp[%d]=%v want %v", v, s[v], wantS[v])
		}
	}
}

func TestRefSSSPPrefersLighterLongerPath(t *testing.T) {
	// 0->2 direct weight 10; 0->1->2 total 3.
	o := refOracle(t, true, Edge{0, 2, 10}, Edge{0, 1, 1}, Edge{1, 2, 2})
	s := RefSSSP(o, 0)
	if s[2] != 3 {
		t.Fatalf("sssp[2]=%v want 3", s[2])
	}
}

func TestRefSSWPBottleneck(t *testing.T) {
	// 0 -10-> 1 -3-> 2 and 0 -2-> 2: widest path to 2 is min(10,3)=3.
	o := refOracle(t, true, Edge{0, 1, 10}, Edge{1, 2, 3}, Edge{0, 2, 2})
	w := RefSSWP(o, 0)
	if !math.IsInf(w[0], 1) || w[1] != 10 || w[2] != 3 {
		t.Fatalf("sswp=%v want [+Inf 10 3]", w)
	}
}

func TestRefCCWeakConnectivity(t *testing.T) {
	// Directed chain 2->1 plus separate pair 3<-4: weak components {1,2}, {3,4}.
	o := refOracle(t, true, Edge{2, 1, 1}, Edge{4, 3, 1})
	c := RefCC(o)
	want := []float64{0, 1, 1, 3, 3}
	for v := range want {
		if c[v] != want[v] {
			t.Fatalf("cc[%d]=%v want %v", v, c[v], want[v])
		}
	}
}

func TestRefMCMaxReaches(t *testing.T) {
	// 3 -> 1 -> 0, 2 isolated: max id reaching 0 and 1 is 3.
	o := refOracle(t, true, Edge{3, 1, 1}, Edge{1, 0, 1}, Edge{2, 2, 1})
	c := RefMC(o)
	want := []float64{3, 3, 2, 3}
	for v := range want {
		if c[v] != want[v] {
			t.Fatalf("mc[%d]=%v want %v", v, c[v], want[v])
		}
	}
}

func TestRefPRProperties(t *testing.T) {
	// Star into vertex 0: rank(0) must dominate, total mass near 1 for a
	// graph where every vertex has out-degree > 0.
	o := refOracle(t, true,
		Edge{1, 0, 1}, Edge{2, 0, 1}, Edge{3, 0, 1}, Edge{0, 1, 1})
	r := RefPR(o, 1e-12, 500)
	sum := 0.0
	for _, x := range r {
		sum += x
	}
	// 2 and 3 are sinks of nothing (out-degree 1, in-degree 0): they hold
	// the base rank only; vertex 0 collects everything.
	if r[0] <= r[1] || r[0] <= r[2] {
		t.Fatalf("pr=%v: hub not dominant", r)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("pr mass=%v want ~1", sum)
	}
	// Deterministic re-run.
	r2 := RefPR(o, 1e-12, 500)
	for v := range r {
		if r[v] != r2[v] {
			t.Fatalf("pr not deterministic at %d", v)
		}
	}
}

func TestRefSourceOutOfRange(t *testing.T) {
	o := refOracle(t, true, Edge{0, 1, 1})
	for _, vals := range [][]float64{RefBFS(o, 99), RefSSSP(o, 99)} {
		for v, x := range vals {
			if !math.IsInf(x, 1) {
				t.Fatalf("vertex %d=%v want +Inf for unreachable source", v, x)
			}
		}
	}
	for v, x := range RefSSWP(o, 99) {
		if x != 0 {
			t.Fatalf("sswp[%d]=%v want 0", v, x)
		}
	}
}
