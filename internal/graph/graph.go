// Package graph defines the core value types shared by every SAGA-Bench
// component: vertex identifiers, weighted edges, edge batches, and neighbor
// records. It also provides small structural helpers (degree accounting,
// batch statistics) and a compressed-sparse-row snapshot used by tests and
// by static baselines.
//
// saga:deterministic — the Oracle and the reference algorithms are the
// fixed point every differential check compares against, so their outputs
// must not depend on wall clock, unseeded randomness, or map iteration
// order (enforced by sagavet; see internal/analysis).
package graph

// NodeID identifies a vertex. SAGA-Bench datasets are dense integer ID
// spaces, so a 32-bit ID keeps the data structures compact.
type NodeID uint32

// Weight is an edge weight. SSSP and SSWP consume weights; the unweighted
// algorithms ignore them.
type Weight float32

// Edge is one directed edge in the input stream.
type Edge struct {
	Src    NodeID
	Dst    NodeID
	Weight Weight
}

// Batch is one ingest unit: the driver slices the shuffled input stream
// into fixed-size batches and feeds them to the update phase one at a time.
type Batch []Edge

// Neighbor is one adjacency record returned by topology traversal.
type Neighbor struct {
	ID     NodeID
	Weight Weight
}

// MaxNode returns the largest vertex ID mentioned in the batch and true,
// or 0 and false for an empty batch.
func (b Batch) MaxNode() (NodeID, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var max NodeID
	for _, e := range b {
		if e.Src > max {
			max = e.Src
		}
		if e.Dst > max {
			max = e.Dst
		}
	}
	return max, true
}

// DegreeStats summarizes the degree distribution of an edge set; it backs
// Table IV (max in/out degree for the entire dataset and for one batch).
type DegreeStats struct {
	MaxIn      int
	MaxOut     int
	MaxInNode  NodeID
	MaxOutNode NodeID
	NumNodes   int // 1 + highest vertex ID seen
	NumEdges   int
}

// ComputeDegreeStats scans the edges once and accumulates in/out degree
// extremes. Duplicate edges count multiple times, matching how a raw input
// file's degree distribution is reported in the paper.
func ComputeDegreeStats(edges []Edge) DegreeStats {
	var s DegreeStats
	s.NumEdges = len(edges)
	if len(edges) == 0 {
		return s
	}
	var max NodeID
	for _, e := range edges {
		if e.Src > max {
			max = e.Src
		}
		if e.Dst > max {
			max = e.Dst
		}
	}
	in := make([]int32, int(max)+1)
	out := make([]int32, int(max)+1)
	for _, e := range edges {
		out[e.Src]++
		in[e.Dst]++
	}
	for v := range out {
		if int(out[v]) > s.MaxOut {
			s.MaxOut = int(out[v])
			s.MaxOutNode = NodeID(v)
		}
		if int(in[v]) > s.MaxIn {
			s.MaxIn = int(in[v])
			s.MaxInNode = NodeID(v)
		}
	}
	s.NumNodes = int(max) + 1
	return s
}

// Batches splits edges into consecutive batches of size batchSize; the last
// batch may be short. batchSize must be positive.
func Batches(edges []Edge, batchSize int) []Batch {
	if batchSize <= 0 {
		panic("graph: batch size must be positive")
	}
	out := make([]Batch, 0, (len(edges)+batchSize-1)/batchSize)
	for start := 0; start < len(edges); start += batchSize {
		end := start + batchSize
		if end > len(edges) {
			end = len(edges)
		}
		out = append(out, Batch(edges[start:end]))
	}
	return out
}
