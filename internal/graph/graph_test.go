package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxNode(t *testing.T) {
	var empty Batch
	if _, ok := empty.MaxNode(); ok {
		t.Error("empty batch reported a max node")
	}
	b := Batch{{Src: 3, Dst: 9}, {Src: 12, Dst: 1}}
	max, ok := b.MaxNode()
	if !ok || max != 12 {
		t.Errorf("MaxNode=%d,%v want 12,true", max, ok)
	}
}

func TestComputeDegreeStats(t *testing.T) {
	edges := []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 2}, // duplicates count
		{Src: 3, Dst: 2},
	}
	s := ComputeDegreeStats(edges)
	if s.MaxOut != 3 || s.MaxOutNode != 0 {
		t.Errorf("MaxOut=%d@%d want 3@0", s.MaxOut, s.MaxOutNode)
	}
	if s.MaxIn != 3 || s.MaxInNode != 2 {
		t.Errorf("MaxIn=%d@%d want 3@2", s.MaxIn, s.MaxInNode)
	}
	if s.NumNodes != 4 || s.NumEdges != 4 {
		t.Errorf("NumNodes=%d NumEdges=%d", s.NumNodes, s.NumEdges)
	}
	if z := ComputeDegreeStats(nil); z.NumNodes != 0 || z.MaxIn != 0 {
		t.Errorf("empty stats: %+v", z)
	}
}

func TestBatches(t *testing.T) {
	edges := make([]Edge, 10)
	bs := Batches(edges, 4)
	if len(bs) != 3 || len(bs[0]) != 4 || len(bs[2]) != 2 {
		t.Errorf("Batches sizes: %d %d %d", len(bs[0]), len(bs[1]), len(bs[2]))
	}
	if len(Batches(nil, 5)) != 0 {
		t.Error("empty edges should produce no batches")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive batch size should panic")
		}
	}()
	Batches(edges, 0)
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 50
	edges := make([]Edge, 300)
	for i := range edges {
		edges[i] = Edge{
			Src:    NodeID(rng.Intn(n)),
			Dst:    NodeID(rng.Intn(n)),
			Weight: Weight(rng.Intn(9) + 1),
		}
	}
	c := BuildCSR(n, edges)
	if c.NumNodes() != n || c.NumEdges() != len(edges) {
		t.Fatalf("CSR dims %d/%d", c.NumNodes(), c.NumEdges())
	}
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	totalOut, totalIn := 0, 0
	for v := 0; v < n; v++ {
		id := NodeID(v)
		if c.OutDegree(id) != outDeg[v] {
			t.Fatalf("OutDegree(%d)=%d want %d", v, c.OutDegree(id), outDeg[v])
		}
		if c.InDegree(id) != inDeg[v] {
			t.Fatalf("InDegree(%d)=%d want %d", v, c.InDegree(id), inDeg[v])
		}
		// Adjacency runs are sorted.
		out := c.Out(id)
		for i := 1; i < len(out); i++ {
			if out[i].ID < out[i-1].ID {
				t.Fatalf("Out(%d) unsorted", v)
			}
		}
		totalOut += len(out)
		totalIn += len(c.In(id))
	}
	if totalOut != len(edges) || totalIn != len(edges) {
		t.Fatalf("adjacency totals %d/%d want %d", totalOut, totalIn, len(edges))
	}
	// Every out edge appears as the matching in edge.
	for _, e := range edges {
		found := false
		for _, nb := range c.In(e.Dst) {
			if nb.ID == e.Src && nb.Weight == e.Weight {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %v missing from In(%d)", e, e.Dst)
		}
	}
}

func TestOracleUniqueness(t *testing.T) {
	o := NewOracle(true)
	o.Update(Batch{{Src: 1, Dst: 2, Weight: 3}})
	o.Update(Batch{{Src: 1, Dst: 2, Weight: 8}})
	if o.NumEdges() != 1 {
		t.Fatalf("NumEdges=%d want 1", o.NumEdges())
	}
	out := o.Out(1)
	if len(out) != 1 || out[0].Weight != 8 {
		t.Fatalf("Out(1)=%v", out)
	}
	if o.OutDegree(99) != 0 || o.InDegree(99) != 0 {
		t.Fatal("out-of-range degrees should be 0")
	}
	if o.Out(99) != nil {
		t.Fatal("out-of-range adjacency should be nil")
	}
}

func TestOracleUndirected(t *testing.T) {
	o := NewOracle(false)
	o.Update(Batch{{Src: 1, Dst: 2, Weight: 3}})
	if o.OutDegree(2) != 1 || o.InDegree(1) != 1 {
		t.Fatal("undirected oracle should mirror edges")
	}
	if o.NumEdges() != 2 {
		t.Fatalf("NumEdges=%d want 2 (both orientations)", o.NumEdges())
	}
}

// Property: CSR preserves the multiset of edges for arbitrary inputs.
func TestCSRProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				Src: NodeID(raw[i] % 64), Dst: NodeID(raw[i+1] % 64), Weight: 1,
			})
		}
		c := BuildCSR(64, edges)
		return c.NumEdges() == len(edges)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
