package graph

import "math"

// Sequential reference implementations of the six SAGA-Bench algorithms,
// computed directly on an Oracle. They are the ground truth the
// differential crosscheck harness (internal/crosscheck) compares every
// data structure × compute model combination against: textbook
// single-threaded algorithms with no shared-memory relaxation, no
// triggering thresholds, and no incremental state, so any divergence
// points at the concurrent implementation, not the reference.
//
// Value conventions match internal/compute exactly (Table I):
//
//	BFS   hop distance from src, +Inf if unreachable
//	CC    minimum vertex ID reachable over edges in either direction
//	MC    maximum vertex ID that can reach v (including v itself)
//	PR    damped PageRank, Jacobi power iteration
//	SSSP  weighted shortest-path distance from src, +Inf if unreachable
//	SSWP  widest-path width from src (source is +Inf, unreachable is 0)

// refAdj materializes the oracle's adjacency once so the traversals below
// don't re-sort neighbor maps on every visit.
type refAdj struct {
	out [][]Neighbor
	in  [][]Neighbor
}

func newRefAdj(o *Oracle) *refAdj {
	n := o.NumNodes()
	r := &refAdj{out: make([][]Neighbor, n), in: make([][]Neighbor, n)}
	for v := 0; v < n; v++ {
		r.out[v] = o.Out(NodeID(v))
		r.in[v] = o.In(NodeID(v))
	}
	return r
}

// RefBFS computes exact hop distances from src by sequential BFS.
func RefBFS(o *Oracle, src NodeID) []float64 {
	g := newRefAdj(o)
	d := make([]float64, len(g.out))
	for i := range d {
		d[i] = math.Inf(1)
	}
	if int(src) >= len(g.out) {
		return d
	}
	d[src] = 0
	q := []NodeID{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, nb := range g.out[u] {
			if math.IsInf(d[nb.ID], 1) {
				d[nb.ID] = d[u] + 1
				q = append(q, nb.ID)
			}
		}
	}
	return d
}

// RefCC assigns each vertex the minimum vertex ID reachable over edges in
// either direction (weak connectivity labels).
func RefCC(o *Oracle) []float64 {
	g := newRefAdj(o)
	n := len(g.out)
	label := make([]float64, n)
	seen := make([]bool, n)
	for v := range label {
		label[v] = float64(v)
	}
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		// v is the smallest unseen ID of its component.
		comp := []NodeID{NodeID(v)}
		seen[v] = true
		for len(comp) > 0 {
			u := comp[len(comp)-1]
			comp = comp[:len(comp)-1]
			label[u] = float64(v)
			for _, nb := range g.out[u] {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					comp = append(comp, nb.ID)
				}
			}
			for _, nb := range g.in[u] {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					comp = append(comp, nb.ID)
				}
			}
		}
	}
	return label
}

// RefMC computes the fixpoint of v.value = max(v, max over in-neighbors),
// i.e. the maximum vertex ID with a directed path to v.
func RefMC(o *Oracle) []float64 {
	g := newRefAdj(o)
	n := len(g.out)
	val := make([]float64, n)
	inQ := make([]bool, n)
	var q []NodeID
	for v := range val {
		val[v] = float64(v)
		q = append(q, NodeID(v))
		inQ[v] = true
	}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		inQ[u] = false
		for _, nb := range g.out[u] {
			if val[u] > val[nb.ID] {
				val[nb.ID] = val[u]
				if !inQ[nb.ID] {
					inQ[nb.ID] = true
					q = append(q, nb.ID)
				}
			}
		}
	}
	return val
}

// RefSSSP computes exact weighted shortest-path distances from src by
// Bellman-Ford queue relaxation (exact for the positive weights SAGA-Bench
// streams carry).
func RefSSSP(o *Oracle, src NodeID) []float64 {
	g := newRefAdj(o)
	d := make([]float64, len(g.out))
	for i := range d {
		d[i] = math.Inf(1)
	}
	if int(src) >= len(g.out) {
		return d
	}
	d[src] = 0
	q := []NodeID{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, nb := range g.out[u] {
			if nd := d[u] + float64(nb.Weight); nd < d[nb.ID] {
				d[nb.ID] = nd
				q = append(q, nb.ID)
			}
		}
	}
	return d
}

// RefSSWP computes widest-path widths from src: the source is +Inf and
// every other vertex is the best over paths of the minimum edge weight
// along the path (0 when unreachable).
func RefSSWP(o *Oracle, src NodeID) []float64 {
	g := newRefAdj(o)
	w := make([]float64, len(g.out))
	if int(src) >= len(g.out) {
		return w
	}
	w[src] = math.Inf(1)
	q := []NodeID{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, nb := range g.out[u] {
			nw := math.Min(w[u], float64(nb.Weight))
			if nw > w[nb.ID] {
				w[nb.ID] = nw
				q = append(q, nb.ID)
			}
		}
	}
	return w
}

// RefPR runs sequential Jacobi power iteration with the same update rule,
// convergence criterion (summed absolute rank change < tol), and iteration
// cap as the FS PageRank engine, so engine values track it to within
// floating-point summation noise when given the same tolerances.
func RefPR(o *Oracle, tol float64, maxIters int) []float64 {
	g := newRefAdj(o)
	n := len(g.out)
	vals := make([]float64, n)
	next := make([]float64, n)
	for v := range vals {
		vals[v] = 1 / float64(n)
	}
	const base, damping = 0.15, 0.85
	for iter := 0; iter < maxIters; iter++ {
		sumDelta := 0.0
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, nb := range g.in[v] {
				if d := len(g.out[nb.ID]); d > 0 {
					sum += vals[nb.ID] / float64(d)
				}
			}
			next[v] = base/float64(n) + damping*sum
			sumDelta += math.Abs(next[v] - vals[v])
		}
		vals, next = next, vals
		if sumDelta < tol {
			break
		}
	}
	return vals
}
