package graph

import "sort"

// Oracle is a straightforward map-backed dynamic graph used as the ground
// truth in equivalence tests: every SAGA-Bench data structure must expose
// exactly the edge sets an Oracle exposes after the same batch sequence.
// It applies the same unique-ingestion rule as the real structures: an edge
// (src,dst) is stored once and a re-insert overwrites the weight.
type Oracle struct {
	directed bool
	out      []map[NodeID]Weight
	in       []map[NodeID]Weight
}

// NewOracle creates an oracle for a directed or undirected graph.
func NewOracle(directed bool) *Oracle {
	return &Oracle{directed: directed}
}

func (o *Oracle) grow(n NodeID) {
	for len(o.out) <= int(n) {
		o.out = append(o.out, nil)
		o.in = append(o.in, nil)
	}
}

// Update ingests one batch.
func (o *Oracle) Update(b Batch) {
	for _, e := range b {
		o.insert(e.Src, e.Dst, e.Weight)
		if !o.directed {
			o.insert(e.Dst, e.Src, e.Weight)
		}
	}
}

func (o *Oracle) insert(src, dst NodeID, w Weight) {
	hi := src
	if dst > hi {
		hi = dst
	}
	o.grow(hi)
	if o.out[src] == nil {
		o.out[src] = make(map[NodeID]Weight)
	}
	o.out[src][dst] = w
	if o.in[dst] == nil {
		o.in[dst] = make(map[NodeID]Weight)
	}
	o.in[dst][src] = w
}

// NumNodes reports 1 + the highest vertex ID ingested.
func (o *Oracle) NumNodes() int { return len(o.out) }

// NumEdges reports the number of distinct directed edges stored.
func (o *Oracle) NumEdges() int {
	n := 0
	for _, m := range o.out {
		n += len(m)
	}
	return n
}

// Out returns v's out-neighbors sorted by ID.
func (o *Oracle) Out(v NodeID) []Neighbor { return sortedNeighbors(o.out, v) }

// In returns v's in-neighbors sorted by ID.
func (o *Oracle) In(v NodeID) []Neighbor { return sortedNeighbors(o.in, v) }

// OutDegree reports the distinct out-degree of v.
func (o *Oracle) OutDegree(v NodeID) int {
	if int(v) >= len(o.out) {
		return 0
	}
	return len(o.out[v])
}

// InDegree reports the distinct in-degree of v.
func (o *Oracle) InDegree(v NodeID) int {
	if int(v) >= len(o.in) {
		return 0
	}
	return len(o.in[v])
}

func sortedNeighbors(adj []map[NodeID]Weight, v NodeID) []Neighbor {
	if int(v) >= len(adj) || len(adj[v]) == 0 {
		return nil
	}
	ns := make([]Neighbor, 0, len(adj[v]))
	// saga:allow determinism -- order is re-established by the sort below.
	for id, w := range adj[v] {
		ns = append(ns, Neighbor{ID: id, Weight: w})
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	return ns
}

// Delete removes the batch's edges (absent edges are no-ops), mirroring
// both orientations for undirected oracles.
func (o *Oracle) Delete(b Batch) {
	for _, e := range b {
		o.remove(e.Src, e.Dst)
		if !o.directed {
			o.remove(e.Dst, e.Src)
		}
	}
}

func (o *Oracle) remove(src, dst NodeID) {
	if int(src) < len(o.out) && o.out[src] != nil {
		delete(o.out[src], dst)
	}
	if int(dst) < len(o.in) && o.in[dst] != nil {
		delete(o.in[dst], src)
	}
}

// Edges materializes the oracle's distinct directed edges in deterministic
// (src, dst) order.
func (o *Oracle) Edges() []Edge {
	var out []Edge
	for src := range o.out {
		for _, nb := range o.Out(NodeID(src)) {
			out = append(out, Edge{Src: NodeID(src), Dst: nb.ID, Weight: nb.Weight})
		}
	}
	return out
}
