package graph

import "sync"

// This file gives CSR an incremental-rebuild path so it can serve as a
// maintained mirror of a dynamic structure (the compute-view layer in
// internal/ds) rather than only a from-scratch snapshot. The rebuild is
// the classic three-phase CSR construction — degree count, prefix sum,
// fill — with the count and fill phases parallel and, crucially, a
// delta mode: a vertex whose adjacency did not change since the previous
// rebuild copies its old run with a single memmove instead of re-asking
// the dynamic structure for it.

// ForRanges splits [0,n) into up to `threads` contiguous equal ranges and
// runs fn on each in its own goroutine, blocking until all complete. A
// panic in any worker is captured and re-raised on the calling goroutine
// (first panic wins), matching compute.parallelFor, so the poison-batch
// quarantine sees worker failures instead of the process dying.
func ForRanges(n, threads int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if threads <= 1 || n == 1 {
		fn(0, n)
		return
	}
	if threads > n {
		threads = n
	}
	per := (n + threads - 1) / threads
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// DeltaRebuild rebuilds one adjacency direction (index + adjacency
// arrays) over n vertices. A vertex for which dirty reports false copies
// its run from (oldIndex, oldAdj) unchanged; a dirty vertex — or any
// vertex at or past the old index's coverage — is refilled through
// degree and fill. dirty == nil rebuilds every vertex (the first-build /
// full-rebuild case).
//
// newIndex/newAdj are used as the destination when they have capacity
// (callers double-buffer by passing the arrays from two rebuilds ago);
// the possibly reallocated destination arrays are returned and the old
// arrays are left intact for the next swap.
//
// fill must write exactly the neighbor count degree reported for the
// same vertex and return that count, in the source structure's own
// traversal order: runs are NOT sorted here, so order-sensitive float
// reductions over a run (PageRank's in-neighbor sum) see the identical
// summation order through the mirror and through the structure.
func DeltaRebuild(
	n int,
	oldIndex []int64, oldAdj []Neighbor,
	newIndex []int64, newAdj []Neighbor,
	dirty func(v int) bool,
	degree func(v NodeID) int,
	fill func(v NodeID, dst []Neighbor) int,
	threads int,
) ([]int64, []Neighbor) {
	oldN := len(oldIndex) - 1 // -1 when there is no previous build
	isDirty := func(v int) bool {
		if v >= oldN {
			return true
		}
		return dirty == nil || dirty(v)
	}

	if cap(newIndex) < n+1 {
		newIndex = make([]int64, n+1)
	}
	newIndex = newIndex[:n+1]
	newIndex[0] = 0

	// Phase 1: per-vertex degrees. Clean vertices answer from the old
	// index without touching the structure.
	ForRanges(n, threads, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if isDirty(v) {
				newIndex[v+1] = int64(degree(NodeID(v)))
			} else {
				newIndex[v+1] = oldIndex[v+1] - oldIndex[v]
			}
		}
	})

	// Phase 2: serial prefix sum (memory-bound; not worth parallelizing
	// at mirror sizes).
	for v := 0; v < n; v++ {
		newIndex[v+1] += newIndex[v]
	}

	total := int(newIndex[n])
	if cap(newAdj) < total {
		newAdj = make([]Neighbor, total)
	}
	newAdj = newAdj[:total]

	// Phase 3: parallel fill. Each worker owns a disjoint vertex range,
	// hence a disjoint span of newAdj.
	ForRanges(n, threads, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			dst := newAdj[newIndex[v]:newIndex[v+1]]
			if len(dst) == 0 {
				continue
			}
			if isDirty(v) {
				if got := fill(NodeID(v), dst); got != len(dst) {
					panic("graph: DeltaRebuild fill count does not match reported degree")
				}
			} else {
				copy(dst, oldAdj[oldIndex[v]:oldIndex[v+1]])
			}
		}
	})
	return newIndex, newAdj
}
