package graph

import "sort"

// CSR is a compressed-sparse-row snapshot of a directed graph. The dynamic
// data structures are the system of record in SAGA-Bench; CSR exists as a
// static-graph reference layout for oracle tests and for documenting the
// contrast the paper draws with static analytics (Section II).
type CSR struct {
	OutIndex []int64    // len = NumNodes+1
	OutAdj   []Neighbor // len = NumEdges
	InIndex  []int64
	InAdj    []Neighbor
}

// BuildCSR constructs a CSR snapshot with numNodes vertices from the edge
// list. Adjacency runs are sorted by neighbor ID for deterministic
// comparisons. Duplicate edges are preserved as given.
func BuildCSR(numNodes int, edges []Edge) *CSR {
	c := &CSR{
		OutIndex: make([]int64, numNodes+1),
		InIndex:  make([]int64, numNodes+1),
		OutAdj:   make([]Neighbor, len(edges)),
		InAdj:    make([]Neighbor, len(edges)),
	}
	for _, e := range edges {
		c.OutIndex[e.Src+1]++
		c.InIndex[e.Dst+1]++
	}
	for v := 0; v < numNodes; v++ {
		c.OutIndex[v+1] += c.OutIndex[v]
		c.InIndex[v+1] += c.InIndex[v]
	}
	outPos := make([]int64, numNodes)
	inPos := make([]int64, numNodes)
	for _, e := range edges {
		c.OutAdj[c.OutIndex[e.Src]+outPos[e.Src]] = Neighbor{ID: e.Dst, Weight: e.Weight}
		outPos[e.Src]++
		c.InAdj[c.InIndex[e.Dst]+inPos[e.Dst]] = Neighbor{ID: e.Src, Weight: e.Weight}
		inPos[e.Dst]++
	}
	for v := 0; v < numNodes; v++ {
		sortNeighbors(c.OutAdj[c.OutIndex[v]:c.OutIndex[v+1]])
		sortNeighbors(c.InAdj[c.InIndex[v]:c.InIndex[v+1]])
	}
	return c
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].ID != ns[j].ID {
			return ns[i].ID < ns[j].ID
		}
		return ns[i].Weight < ns[j].Weight
	})
}

// NumNodes reports the vertex count.
func (c *CSR) NumNodes() int { return len(c.OutIndex) - 1 }

// NumEdges reports the directed edge count.
func (c *CSR) NumEdges() int { return len(c.OutAdj) }

// Out returns the out-adjacency run of v.
func (c *CSR) Out(v NodeID) []Neighbor { return c.OutAdj[c.OutIndex[v]:c.OutIndex[v+1]] }

// In returns the in-adjacency run of v.
func (c *CSR) In(v NodeID) []Neighbor { return c.InAdj[c.InIndex[v]:c.InIndex[v+1]] }

// OutDegree reports len(Out(v)).
func (c *CSR) OutDegree(v NodeID) int { return int(c.OutIndex[v+1] - c.OutIndex[v]) }

// InDegree reports len(In(v)).
func (c *CSR) InDegree(v NodeID) int { return int(c.InIndex[v+1] - c.InIndex[v]) }
