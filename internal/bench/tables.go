package bench

import (
	"fmt"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/gen"
)

// Table2 prints the dataset registry: vertex/edge counts and batch counts
// (paper Table II, scaled per DESIGN.md).
func (h *Harness) Table2() error {
	h.printf("\n== Table II: evaluated datasets (profile=%s, synthetic stand-ins) ==\n", h.opts.Profile)
	h.printf("%-8s %10s %10s %10s %11s %9s\n", "dataset", "vertices", "edges", "batchSize", "batchCount", "directed")
	specs, err := gen.Datasets(h.opts.Profile)
	if err != nil {
		return err
	}
	h.csvHeader("table2", "dataset", "vertices", "edges", "batch_size", "batch_count", "directed")
	for _, s := range specs {
		st := gen.ComputeStats(s, h.opts.Seed)
		h.printf("%-8s %10d %10d %10d %11d %9v\n",
			s.Name, st.NumNodes, st.NumEdges, s.BatchSize, s.BatchCount(), s.Directed)
		h.csvRow("table2", s.Name, st.NumNodes, st.NumEdges, s.BatchSize, s.BatchCount(), s.Directed)
	}
	return nil
}

// Table4 prints max in/out degrees for the entire dataset and for one
// batch (paper Table IV) — the short-vs-heavy tail evidence.
func (h *Harness) Table4() error {
	h.printf("\n== Table IV: max in/out degree, entire dataset vs one batch ==\n")
	h.printf("%-8s | %12s %12s | %12s %12s\n", "dataset", "entire maxIn", "entire maxOut", "batch maxIn", "batch maxOut")
	specs, err := gen.Datasets(h.opts.Profile)
	if err != nil {
		return err
	}
	h.csvHeader("table4", "dataset", "entire_max_in", "entire_max_out", "batch_max_in", "batch_max_out")
	for _, s := range specs {
		st := gen.ComputeStats(s, h.opts.Seed)
		h.printf("%-8s | %12d %12d | %12d %12d\n",
			s.Name, st.Entire.MaxIn, st.Entire.MaxOut, st.Batch.MaxIn, st.Batch.MaxOut)
		h.csvRow("table4", s.Name, st.Entire.MaxIn, st.Entire.MaxOut, st.Batch.MaxIn, st.Batch.MaxOut)
	}
	h.printf("(short-tailed: lj, orkut, rmat; heavy-tailed: wiki [in], talk [out])\n")
	return nil
}

// Table3 prints, per algorithm and dataset, the combination of data
// structure and compute model with the lowest batch processing latency at
// each stage, with the paper's x/y competitive notation (overlapping 95%%
// CIs) and the winner's absolute latency in seconds.
func (h *Harness) Table3() error {
	h.printf("\n== Table III: best (model+structure) per algorithm/dataset/stage ==\n")
	h.printf("%-5s %-7s | %-26s | %-26s | %-26s\n", "alg", "dataset", "P1 (early)", "P2 (middle)", "P3 (final)")
	for _, alg := range compute.AlgNames() {
		for _, dataset := range gen.DatasetNames() {
			cs, err := h.combos(dataset, alg)
			if err != nil {
				return err
			}
			var cells [3]string
			var csvCells [3][2]any
			for stage := 0; stage < 3; stage++ {
				best, comp := bestAt(cs, stage)
				label := comboLabel(best)
				for _, c := range comp {
					label += "/" + comboLabel(c)
					if len(label) > 20 {
						break // the paper lists at most a couple
					}
				}
				cells[stage] = sprintfLatency(label, best.stages[stage].Mean)
				csvCells[stage] = [2]any{comboLabel(best), best.stages[stage].Mean}
			}
			h.printf("%-5s %-7s | %-26s | %-26s | %-26s\n", alg, dataset, cells[0], cells[1], cells[2])
			h.csvHeader("table3", "alg", "dataset", "p1_best", "p1_seconds", "p2_best", "p2_seconds", "p3_best", "p3_seconds")
			h.csvRow("table3", alg, dataset,
				csvCells[0][0], csvCells[0][1], csvCells[1][0], csvCells[1][1], csvCells[2][0], csvCells[2][1])
		}
	}
	return nil
}

func sprintfLatency(label string, sec float64) string {
	return label + " " + formatSeconds(sec)
}

func formatSeconds(sec float64) string {
	switch {
	case sec >= 1:
		return trimFloat(sec, 3) + "s"
	case sec >= 1e-3:
		return trimFloat(sec*1e3, 3) + "ms"
	default:
		return trimFloat(sec*1e6, 3) + "us"
	}
}

func trimFloat(v float64, digits int) string {
	return fmt.Sprintf("%.*f", digits, v)
}

// bestModelAt returns, for one algorithm/dataset, the better compute model
// of the given data structure at a stage (used by Fig 6's "best compute
// model" control).
func (h *Harness) bestModelAt(dataset, alg, dsName string, stage int) (compute.Model, error) {
	var best compute.Model
	bestMean := 0.0
	for _, m := range Models {
		res, err := h.run(dataset, dsName, alg, m.Key)
		if err != nil {
			return best, err
		}
		sums, err := res.StageSummaries(core.MetricTotal)
		if err != nil {
			return best, err
		}
		mean := sums[stage].Mean
		if best == "" || mean < bestMean {
			best, bestMean = m.Key, mean
		}
	}
	return best, nil
}
