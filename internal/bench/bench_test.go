package bench

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sagabench/internal/compute"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/stats"
)

func benchTestOpts(buf *bytes.Buffer) Options {
	return Options{
		Profile:    gen.ProfileTiny,
		Threads:    2,
		Repeats:    1,
		Seed:       7,
		MachineDiv: 256,
		Out:        buf,
	}
}

func testHarness(buf *bytes.Buffer) *Harness {
	return New(benchTestOpts(buf))
}

func TestTableExperimentsRender(t *testing.T) {
	var buf bytes.Buffer
	h := testHarness(&buf)
	if err := h.Table2(); err != nil {
		t.Fatal(err)
	}
	for _, name := range gen.DatasetNames() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("Table2 output missing dataset %q", name)
		}
	}
	buf.Reset()
	if err := h.Table4(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "maxIn") {
		t.Error("Table4 output missing header")
	}
}

func TestBestAtAndLabels(t *testing.T) {
	mk := func(ds string, model compute.Model, mean, ci float64) combo {
		var c combo
		c.ds = ds
		c.model = model
		for i := range c.stages {
			c.stages[i] = stats.Summary{N: 10, Mean: mean, CI95: ci}
		}
		return c
	}
	cs := []combo{
		mk("adjshared", compute.INC, 1.0, 0.05),
		mk("dah", compute.INC, 1.02, 0.05), // overlaps the winner
		mk("stinger", compute.FS, 2.0, 0.05),
	}
	best, comp := bestAt(cs, 1)
	if best.ds != "adjshared" {
		t.Fatalf("best=%s want adjshared", best.ds)
	}
	if len(comp) != 1 || comp[0].ds != "dah" {
		t.Fatalf("competitive=%v want [dah]", comp)
	}
	if comboLabel(best) != "INC+AS" {
		t.Fatalf("label=%q want INC+AS", comboLabel(best))
	}
	if comboLabel(cs[2]) != "FS+Stinger" {
		t.Fatalf("label=%q want FS+Stinger", comboLabel(cs[2]))
	}
}

func TestDSLabel(t *testing.T) {
	if DSLabel("dah") != "DAH" || DSLabel("unknown") != "unknown" {
		t.Error("DSLabel mapping broken")
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		2.5:      "2.500s",
		0.0032:   "3.200ms",
		0.000004: "4.000us",
	}
	for in, want := range cases {
		if got := formatSeconds(in); got != want {
			t.Errorf("formatSeconds(%v)=%q want %q", in, got, want)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var buf bytes.Buffer
	h := testHarness(&buf)
	if err := h.RunExperiment("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestRunMemoization checks the matrix cache: re-requesting a config must
// not re-run it (same pointer back).
func TestRunMemoization(t *testing.T) {
	var buf bytes.Buffer
	h := testHarness(&buf)
	a, err := h.run("talk", "dah", "cc", compute.INC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.run("talk", "dah", "cc", compute.INC)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("run results not memoized")
	}
}

// TestFig7RendersRatios runs the cheapest figure end to end on the tiny
// profile for one shape check: output contains every algorithm row.
func TestFig7RendersRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-profile sweep still runs the full 8-combo matrix")
	}
	var buf bytes.Buffer
	h := testHarness(&buf)
	if err := h.Fig7(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, alg := range compute.AlgNames() {
		if !strings.Contains(out, alg) {
			t.Errorf("Fig7 output missing algorithm %q", alg)
		}
	}
}

// TestAllExperimentsTinyProfile drives every experiment end to end on the
// tiny profile — the harness integration test. Skipped under -short.
func TestAllExperimentsTinyProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	var buf bytes.Buffer
	h := testHarness(&buf)
	if err := h.RunExperiment("all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, marker := range []string{
		"Table II", "Table III", "Table IV",
		"Fig 6", "Fig 7", "Fig 8", "Fig 9", "Fig 10",
		"Ablation", "Extensions",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("combined output missing %q section", marker)
		}
	}
}

// TestCSVExport runs a cheap experiment with CSV collection and checks the
// emitted files parse and carry the expected header.
func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	opts := benchTestOpts(&buf)
	opts.CSVDir = dir
	h := New(opts)
	if err := h.RunExperiment("table4"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "table4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // header + 5 datasets
		t.Fatalf("rows=%d want 6", len(rows))
	}
	if rows[0][0] != "dataset" || rows[0][3] != "batch_max_in" {
		t.Fatalf("header=%v", rows[0])
	}
}
