package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CSV collection: experiments record each computed data point alongside
// the textual rendering, and RunExperiment flushes one CSV file per series
// (fig6a.csv, fig9_scaling.csv, ...) when Options.CSVDir is set — the
// machine-readable form for regenerating the paper's plots.

// csvRow records one row of the named series. The first call of a series
// must pass the header via csvHeader.
func (h *Harness) csvRow(series string, cols ...any) {
	if h.opts.CSVDir == "" {
		return
	}
	row := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	if h.csvData == nil {
		h.csvData = make(map[string][][]string)
	}
	h.csvData[series] = append(h.csvData[series], row)
}

// csvHeader sets the named series' header once.
func (h *Harness) csvHeader(series string, cols ...string) {
	if h.opts.CSVDir == "" {
		return
	}
	if h.csvHeaders == nil {
		h.csvHeaders = make(map[string][]string)
	}
	if _, done := h.csvHeaders[series]; !done {
		h.csvHeaders[series] = cols
	}
}

// FlushCSV writes every collected series to Options.CSVDir and clears the
// buffers. RunExperiment calls it automatically; it is exported for tests
// and embedders.
func (h *Harness) FlushCSV() error {
	if h.opts.CSVDir == "" || len(h.csvData) == 0 {
		return nil
	}
	if err := os.MkdirAll(h.opts.CSVDir, 0o755); err != nil {
		return err
	}
	names := make([]string, 0, len(h.csvData))
	for n := range h.csvData {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := os.Create(filepath.Join(h.opts.CSVDir, name+".csv"))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if hdr := h.csvHeaders[name]; hdr != nil {
			if err := w.Write(hdr); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.WriteAll(h.csvData[name]); err != nil {
			f.Close()
			return err
		}
		w.Flush()
		if err := f.Close(); err != nil {
			return err
		}
	}
	h.csvData = nil
	h.csvHeaders = nil
	return nil
}
