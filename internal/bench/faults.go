package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/durable"
	"sagabench/internal/fault"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
)

// Availability under faults: what does each degrade policy cost in
// ingest throughput and query availability once the disk turns
// permanent-faulty mid-stream? The experiment streams one representative
// configuration (lj, AS, INC+PR) through the supervised durable runtime
// four times — a fault-free baseline and one run per degrade policy with
// an identical ENOSPC injected at the WAL halfway through — and reports,
// per run, the final health state, the ingest outcome (applied, refused,
// shed), and query availability measured by a probe that pins an epoch
// snapshot after every submission.
//
// The expected shape: degrade keeps both ingest and queries at 100% (in
// memory, WAL suspended); read-only halves ingest but keeps queries at
// ~100% (the point of the state); fail halves ingest and kills queries
// from the failure on.

// Faults runs the availability study (EXPERIMENTS.md "Availability under
// injected faults").
func (h *Harness) Faults() error {
	h.printf("\n== Faults: ingest throughput and query availability per degrade policy (lj, AS, INC+PR) ==\n")
	h.printf("%-10s %-20s %9s %9s %7s %12s %9s %9s %13s\n",
		"policy", "final state", "applied", "refused", "shed", "ingest/s", "queries", "served", "availability")
	h.csvHeader("faults", "policy", "final_state", "applied", "refused", "shed",
		"ingest_per_s", "queries", "served", "availability_pct", "retries", "restarts")

	spec, err := gen.Dataset("lj", h.opts.Profile)
	if err != nil {
		return err
	}
	edges := spec.Generate(h.opts.Seed)
	batches := graph.Batches(edges, spec.BatchSize)
	faultAt := len(batches)/2 + 1
	schedSpec := h.opts.FaultSchedule
	if schedSpec == "" {
		schedSpec = fmt.Sprintf("slow(wal-fsync,0.2,200us);enospc(wal-append,%d)", faultAt)
	}

	rows := []struct {
		label  string
		policy core.DegradePolicy
		spec   string
	}{
		{"baseline", "", ""},
		{"degrade", core.DegradeContinue, schedSpec},
		{"read-only", core.DegradeReadOnly, schedSpec},
		{"fail", core.DegradeFail, schedSpec},
	}
	if h.opts.DegradePolicy != "" {
		rows = rows[:1]
		rows = append(rows, struct {
			label  string
			policy core.DegradePolicy
			spec   string
		}{h.opts.DegradePolicy, core.DegradePolicy(h.opts.DegradePolicy), schedSpec})
	}
	for _, row := range rows {
		if err := h.faultRun(row.label, row.policy, row.spec, spec.Directed, spec.NumNodes, batches); err != nil {
			return err
		}
	}
	return nil
}

// faultRun drives one supervised stream under one policy and prints its
// availability row.
func (h *Harness) faultRun(label string, policy core.DegradePolicy, schedSpec string, directed bool, numNodes int, batches []graph.Batch) error {
	dir, err := os.MkdirTemp("", "sagabench-faults-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	sched, err := fault.ParseSchedule(schedSpec, h.opts.Seed)
	if err != nil {
		return err
	}
	dcfg := &durable.Config{Dir: dir, Fsync: durable.FsyncInterval, CheckpointEvery: 16}
	if sched != nil {
		dcfg.IO = sched
	}
	pc := core.PipelineConfig{
		DataStructure: "adjshared",
		Algorithm:     "pr",
		Model:         compute.INC,
		Directed:      directed,
		Threads:       h.opts.Threads,
		MaxNodesHint:  numNodes,
		ServeQueries:  true,
		DegradePolicy: policy,
		Durable:       dcfg,
		Telemetry:     h.opts.Telemetry,
	}
	if sched != nil {
		pc.Faults = sched
	}
	maxQueue := h.opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 8
	}
	sup, err := core.NewSupervisor(core.SupervisorConfig{Pipeline: pc, MaxQueue: maxQueue})
	if err != nil {
		return err
	}

	applied, refused, shed := 0, 0, 0
	queries, served := 0, 0
	start := time.Now()
	for _, b := range batches {
		switch serr := sup.Submit(core.MixedBatch{Adds: b}); {
		case serr == nil:
			applied++
		case errors.Is(serr, core.ErrShed):
			shed++
		default:
			// ErrReadOnly / ErrFailed: keep probing queries through the
			// rest of the stream — availability after the fault is the
			// measurement.
			refused++
		}
		queries++
		if q, qerr := sup.AcquireQuery(); qerr == nil {
			q.NumNodes()
			q.Release()
			served++
		}
	}
	elapsed := time.Since(start)
	// A failed or read-only pipeline legitimately refuses the final
	// flush; the health report is the outcome, not the close error.
	_ = sup.Close() //nolint:errcheck
	rep := sup.Report()

	rate := float64(applied) / elapsed.Seconds()
	avail := 100 * float64(served) / float64(queries)
	name := string(policy)
	if name == "" {
		name = label
	}
	h.printf("%-10s %-20s %9d %9d %7d %12.0f %9d %9d %12.1f%%\n",
		label, rep.State, applied, refused, shed, rate, queries, served, avail)
	h.csvRow("faults", name, rep.State.String(), applied, refused, shed,
		fmt.Sprintf("%.0f", rate), queries, served, fmt.Sprintf("%.1f", avail),
		rep.DurableRetry, rep.Restarts)
	if h.opts.HealthDir != "" {
		if err := os.MkdirAll(h.opts.HealthDir, 0o755); err != nil {
			return err
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(h.opts.HealthDir, "faults-"+label+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
