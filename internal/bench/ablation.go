package bench

import (
	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/ds"
	"sagabench/internal/gen"
)

// Ablation sweeps the design parameters the paper fixes by fiat, isolating
// each data structure's tuning sensitivity:
//
//   - Stinger's edge-block capacity (the paper uses 16): small blocks mean
//     more pointer chasing, large blocks waste scan work;
//   - DAH's low→high flush threshold (the paper uses a fixed degree
//     boundary): low thresholds push everything through the flush
//     meta-operation, high thresholds keep hubs in the Robin Hood table;
//   - the chunk count of the chunked-multithreading structures.
//
// Each sweep reports P3 update latency on one short-tailed and one
// heavy-tailed dataset under incremental CC.
func (h *Harness) Ablation() error {
	h.printf("\n== Ablation: data-structure tuning sweeps (P3 update latency) ==\n")

	type variant struct {
		label string
		cfg   ds.Config
	}
	sweep := func(title, dsName string, vs []variant) error {
		h.printf("%s\n", title)
		h.printf("%-10s %12s %12s\n", "value", "lj", "wiki")
		for _, v := range vs {
			var cells [2]string
			for i, dataset := range []string{"lj", "wiki"} {
				spec, err := gen.Dataset(dataset, h.opts.Profile)
				if err != nil {
					return err
				}
				res, err := core.Run(core.RunConfig{
					PipelineConfig: core.PipelineConfig{
						DataStructure: dsName,
						Algorithm:     "cc",
						Model:         compute.INC,
						Threads:       h.opts.Threads,
						DS:            v.cfg,
					},
					Dataset: spec,
					Seed:    h.opts.Seed,
					Repeats: h.opts.Repeats,
				})
				if err != nil {
					return err
				}
				sums, err := res.StageSummaries(core.MetricUpdate)
				if err != nil {
					return err
				}
				cells[i] = formatSeconds(sums[2].Mean)
			}
			h.printf("%-10s %12s %12s\n", v.label, cells[0], cells[1])
		}
		return nil
	}

	if err := sweep("(a) Stinger block size", "stinger", []variant{
		{"4", ds.Config{BlockSize: 4}},
		{"16", ds.Config{BlockSize: 16}},
		{"64", ds.Config{BlockSize: 64}},
		{"256", ds.Config{BlockSize: 256}},
	}); err != nil {
		return err
	}
	if err := sweep("(b) DAH flush threshold", "dah", []variant{
		{"4", ds.Config{FlushThreshold: 4}},
		{"16", ds.Config{FlushThreshold: 16}},
		{"64", ds.Config{FlushThreshold: 64}},
		{"1024", ds.Config{FlushThreshold: 1024}},
	}); err != nil {
		return err
	}
	return sweep("(c) AC chunk count", "adjchunked", []variant{
		{"1", ds.Config{Chunks: 1}},
		{"4", ds.Config{Chunks: 4}},
		{"16", ds.Config{Chunks: 16}},
		{"64", ds.Config{Chunks: 64}},
	})
}
