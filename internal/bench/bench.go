// Package bench regenerates every table and figure of the paper's
// evaluation (Tables II–IV, Figures 6–10). Each experiment prints rows
// shaped like the paper's so the measured trends can be compared directly;
// EXPERIMENTS.md records a paper-vs-measured comparison produced from this
// package's output.
//
// Experiments share a lazily memoized run matrix (a full characterization
// sweeps 5 datasets × 4 data structures × 6 algorithms × 2 compute models)
// and a memoized architecture-profile matrix for the Section VI figures.
package bench

import (
	"fmt"
	"io"
	"os"

	"sagabench/internal/archsim"
	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/ds"
	"sagabench/internal/gen"
	"sagabench/internal/perfmon"
	"sagabench/internal/stats"
	"sagabench/internal/telemetry"
	"sagabench/internal/trace"
)

// Options configures a harness invocation.
type Options struct {
	// Profile scales the datasets (default gen.ProfileDefault).
	Profile gen.Profile
	// Threads is the worker count for update and compute (default 4).
	Threads int
	// Repeats re-runs each stream (default 1; paper uses 3).
	Repeats int
	// Seed drives dataset generation.
	Seed int64
	// MachineDiv scales the simulated machine for the architecture
	// experiments (default 128; see archsim.ScaledMachine).
	MachineDiv int
	// Out receives the rendered rows (default os.Stdout).
	Out io.Writer
	// CSVDir, when set, additionally writes each experiment's data
	// series as CSV files into this directory.
	CSVDir string
	// Telemetry, when non-nil, receives one event per batch of every
	// measured run (live metrics + JSONL event log; see cmd/sagabench
	// -listen/-events).
	Telemetry *telemetry.Recorder
	// Tracer, when non-nil, records a span tree per batch of every run in
	// the shared run matrix (see core.PipelineConfig.Tracer and
	// cmd/sagabench -trace-out).
	Tracer *trace.Tracer
	// ComputeView runs every measured pipeline's compute phase on the
	// incrementally rebuilt flat CSR mirror (core.PipelineConfig.ComputeView).
	ComputeView bool
	// QueryReaders, when positive, serves non-blocking queries during
	// every measured run: each pipeline publishes an epoch snapshot per
	// batch and this many concurrent readers query the snapshots while
	// the stream applies (core.StartQueryLoad). Aggregate query stats
	// print after the experiments finish.
	QueryReaders int
	// FaultSchedule overrides the faults experiment's built-in fault
	// schedule (fault.ParseSchedule syntax, seeded by Seed).
	FaultSchedule string
	// MaxQueue bounds the supervised ingest queue of the faults
	// experiment (default 8).
	MaxQueue int
	// DegradePolicy, when set, restricts the faults experiment to the
	// baseline plus this one policy instead of sweeping all three.
	DegradePolicy string
	// HealthDir, when set, writes one JSON health report per faults-
	// experiment run into this directory (faults-<policy>.json) — the CI
	// chaos job uploads them as artifacts.
	HealthDir string
}

func (o Options) withDefaults() Options {
	if o.Profile == "" {
		o.Profile = gen.ProfileDefault
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.MachineDiv <= 0 {
		o.MachineDiv = 128
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	return o
}

// DSNames lists the four data structures in the paper's order with their
// paper labels.
var DSNames = []struct{ Key, Label string }{
	{"adjshared", "AS"},
	{"adjchunked", "AC"},
	{"stinger", "Stinger"},
	{"dah", "DAH"},
}

// dsExtraLabels labels registered structures beyond the paper's four.
var dsExtraLabels = map[string]string{
	"graphone": "GraphOne",
	"hybrid":   "Hybrid",
}

// DSLabel maps a registry key to its paper label.
func DSLabel(key string) string {
	for _, d := range DSNames {
		if d.Key == key {
			return d.Label
		}
	}
	if l, ok := dsExtraLabels[key]; ok {
		return l
	}
	return key
}

// AllDS lists every registered data structure (paper four plus the
// beyond-the-paper ones) with labels, derived from the ds registry so a
// new registration shows up here without a hand-edit. Paper structures
// keep DSNames order and come first; extras follow in registry order.
func AllDS() []struct{ Key, Label string } {
	out := append([]struct{ Key, Label string }{}, DSNames...)
	for _, key := range ds.Names() {
		known := false
		for _, d := range DSNames {
			if d.Key == key {
				known = true
				break
			}
		}
		if !known {
			out = append(out, struct{ Key, Label string }{key, DSLabel(key)})
		}
	}
	return out
}

// Models lists the two compute models with paper labels.
var Models = []struct {
	Key   compute.Model
	Label string
}{
	{compute.INC, "INC"},
	{compute.FS, "FS"},
}

// Harness memoizes runs across experiments.
type Harness struct {
	opts Options

	runs     map[runKey]*core.RunResult
	profiles map[profKey]*perfmon.Report

	qstats []core.QueryLoadStats

	csvData    map[string][][]string
	csvHeaders map[string][]string
}

type runKey struct {
	dataset string
	ds      string
	alg     string
	model   compute.Model
}

type profKey struct {
	dataset string
	ds      string
	alg     string
}

// New builds a harness.
func New(opts Options) *Harness {
	return &Harness{
		opts:     opts.withDefaults(),
		runs:     make(map[runKey]*core.RunResult),
		profiles: make(map[profKey]*perfmon.Report),
	}
}

// Options reports the effective options.
func (h *Harness) Options() Options { return h.opts }

func (h *Harness) printf(format string, args ...any) {
	fmt.Fprintf(h.opts.Out, format, args...)
}

// run returns the memoized latency measurement of one configuration.
func (h *Harness) run(dataset, dsName, alg string, model compute.Model) (*core.RunResult, error) {
	k := runKey{dataset, dsName, alg, model}
	if r, ok := h.runs[k]; ok {
		return r, nil
	}
	spec, err := gen.Dataset(dataset, h.opts.Profile)
	if err != nil {
		return nil, err
	}
	cfg := core.RunConfig{
		PipelineConfig: core.PipelineConfig{
			DataStructure: dsName,
			Algorithm:     alg,
			Model:         model,
			Threads:       h.opts.Threads,
			ComputeView:   h.opts.ComputeView,
			Telemetry:     h.opts.Telemetry,
			Tracer:        h.opts.Tracer,
		},
		Dataset: spec,
		Seed:    h.opts.Seed,
		Repeats: h.opts.Repeats,
	}
	if h.opts.QueryReaders > 0 {
		cfg.ServeQueries = true
		cfg.OnPipeline = h.attachQueryLoad
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	h.runs[k] = res
	return res, nil
}

// profile returns the memoized architecture report of one configuration
// (always the INC model, per Section VI's methodology).
func (h *Harness) profile(dataset, dsName, alg string) (*perfmon.Report, error) {
	k := profKey{dataset, dsName, alg}
	if r, ok := h.profiles[k]; ok {
		return r, nil
	}
	spec, err := gen.Dataset(dataset, h.opts.Profile)
	if err != nil {
		return nil, err
	}
	mc := archsim.ScaledMachine(h.opts.MachineDiv)
	rep, err := perfmon.Profile(perfmon.Config{
		Run: core.RunConfig{
			PipelineConfig: core.PipelineConfig{
				DataStructure: dsName,
				Algorithm:     alg,
				Model:         compute.INC,
				Threads:       h.opts.Threads,
			},
			Dataset: spec,
			Seed:    h.opts.Seed,
		},
		Threads: 64,
		Machine: &mc,
	})
	if err != nil {
		return nil, err
	}
	h.profiles[k] = rep
	return rep, nil
}

// combo is one (data structure, model) pair with its per-stage totals.
type combo struct {
	ds     string
	model  compute.Model
	stages [3]stats.Summary // MetricTotal
	res    *core.RunResult
}

// combos measures all 8 data-structure × model pairs for one algorithm and
// dataset.
func (h *Harness) combos(dataset, alg string) ([]combo, error) {
	var out []combo
	for _, d := range DSNames {
		for _, m := range Models {
			res, err := h.run(dataset, d.Key, alg, m.Key)
			if err != nil {
				return nil, err
			}
			stages, err := res.StageSummaries(core.MetricTotal)
			if err != nil {
				return nil, err
			}
			out = append(out, combo{
				ds:     d.Key,
				model:  m.Key,
				stages: stages,
				res:    res,
			})
		}
	}
	return out, nil
}

// bestAt returns the winning combo at a stage plus the competitive set
// (combos whose 95% CI overlaps the winner's — the paper's x/y notation).
func bestAt(cs []combo, stage int) (best combo, competitive []combo) {
	best = cs[0]
	for _, c := range cs[1:] {
		if c.stages[stage].Mean < best.stages[stage].Mean {
			best = c
		}
	}
	for _, c := range cs {
		if c.ds == best.ds && c.model == best.model {
			continue
		}
		if c.stages[stage].Overlaps(best.stages[stage]) {
			competitive = append(competitive, c)
		}
	}
	return best, competitive
}

func comboLabel(c combo) string {
	model := "FS"
	if c.model == compute.INC {
		model = "INC"
	}
	return model + "+" + DSLabel(c.ds)
}

// Experiments maps experiment IDs to runners, in paper order.
var Experiments = []struct {
	ID   string
	Desc string
	Run  func(*Harness) error
}{
	{"table2", "Evaluated datasets (sizes, batch counts)", (*Harness).Table2},
	{"table3", "Best data structure + compute model per algorithm/dataset/stage", (*Harness).Table3},
	{"table4", "Max in/out degree, entire dataset vs one batch", (*Harness).Table4},
	{"fig6", "Latency of AC/DAH/Stinger normalized to AS at P3", (*Harness).Fig6},
	{"fig7", "FS/INC compute-latency ratio across stages", (*Harness).Fig7},
	{"fig8", "Update phase share of batch processing latency", (*Harness).Fig8},
	{"fig9", "Core scaling, memory bandwidth, QPI utilization", (*Harness).Fig9},
	{"fig10", "L2/LLC hit ratios and MPKI, update vs compute", (*Harness).Fig10},
	{"ablation", "Design-parameter sweeps (block size, flush threshold, chunks)", (*Harness).Ablation},
	{"extensions", "Log-structured ingest + sliding-window deletion (beyond the paper)", (*Harness).Extensions},
	{"sensitivity", "Fig 9/10 conclusions vs simulated-machine scale (robustness check)", (*Harness).Sensitivity},
	{"interference", "Non-blocking query readers vs update throughput (beyond the paper)", (*Harness).Interference},
	{"faults", "Ingest throughput and query availability per degrade policy under injected faults (beyond the paper)", (*Harness).Faults},
}

// RunExperiment dispatches by ID ("all" runs everything in order) and
// flushes collected CSV series afterwards.
func (h *Harness) RunExperiment(id string) error {
	if id == "all" {
		for _, e := range Experiments {
			if err := e.Run(h); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return h.finish()
	}
	for _, e := range Experiments {
		if e.ID == id {
			if err := e.Run(h); err != nil {
				return err
			}
			return h.finish()
		}
	}
	ids := make([]string, len(Experiments))
	for i, e := range Experiments {
		ids[i] = e.ID
	}
	return fmt.Errorf("bench: unknown experiment %q (have %v and \"all\")", id, ids)
}

// finish flushes CSVs and, when query loads ran alongside the measured
// runs (Options.QueryReaders), reports their aggregate and fails on any
// consistency violation so CI catches torn epochs in ordinary sweeps.
func (h *Harness) finish() error {
	if err := h.FlushCSV(); err != nil {
		return err
	}
	if h.opts.QueryReaders > 0 {
		agg := h.QueryStats()
		h.printf("\nqueries: readers=%d served=%d (%.0f/s) sessions=%d misses=%d max-staleness=%d batches\n",
			h.opts.QueryReaders, agg.Queries, agg.QPS(), agg.Sessions, agg.Misses, agg.MaxStaleness)
		if agg.Violations > 0 {
			return fmt.Errorf("bench: %d query consistency violations, first: %s", agg.Violations, agg.FirstViolation)
		}
	}
	return nil
}
