package bench

import (
	"sagabench/internal/archsim"
	"sagabench/internal/core"
	"sagabench/internal/gen"
	"sagabench/internal/perfmon"
)

// Sensitivity probes the robustness of the Section VI conclusions to the
// one modeling knob the reproduction introduces: the simulated machine's
// cache-capacity divisor (DESIGN.md's substitution for running
// gigabyte-scale graphs against the real 22 MB LLC). For each divisor it
// re-profiles one short-tailed and one heavy-tailed configuration and
// reports whether the paper's two qualitative cache findings — compute
// holds the LLC advantage, update holds the L2 advantage — and the
// bandwidth ordering survive.
func (h *Harness) Sensitivity() error {
	h.printf("\n== Sensitivity: Fig 9/10 conclusions vs simulated-machine scale ==\n")
	h.printf("%-8s %-14s %9s %9s %9s %9s %9s  %s\n",
		"machdiv", "config", "updL2", "cmpL2", "updLLC", "cmpLLC", "bw c/u", "conclusions")
	for _, div := range []int{32, 64, 128, 256} {
		for _, cfg := range []struct{ dataset, ds string }{
			{"lj", "adjshared"},
			{"wiki", "dah"},
		} {
			rep, err := h.profileAt(cfg.dataset, cfg.ds, "cc", div)
			if err != nil {
				return err
			}
			const p3 = 2
			upd := rep.Traffic(p3, perfmon.Update)
			cmp := rep.Traffic(p3, perfmon.Compute)
			bwU := rep.BandwidthGBs(p3, perfmon.Update, FullMachineCores)
			bwC := rep.BandwidthGBs(p3, perfmon.Compute, FullMachineCores)
			verdict := "hold"
			if !(cmp.LLCHitRatio() > upd.LLCHitRatio() && upd.L2HitRatio() > cmp.L2HitRatio() && bwC > bwU) {
				verdict = "VIOLATED"
			}
			h.printf("%-8d %-14s %9.2f %9.2f %9.2f %9.2f %9.1f  %s\n",
				div, cfg.dataset+"/"+DSLabel(cfg.ds),
				upd.L2HitRatio(), cmp.L2HitRatio(),
				upd.LLCHitRatio(), cmp.LLCHitRatio(),
				stat0(bwC, bwU), verdict)
		}
	}
	return nil
}

func stat0(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// profileAt is the harness profiler with an explicit machine divisor
// (bypassing the memoized matrix, which is keyed to the default divisor).
func (h *Harness) profileAt(dataset, dsName, alg string, div int) (*perfmon.Report, error) {
	spec, err := gen.Dataset(dataset, h.opts.Profile)
	if err != nil {
		return nil, err
	}
	mc := archsim.ScaledMachine(div)
	return perfmon.Profile(perfmon.Config{
		Run: core.RunConfig{
			PipelineConfig: core.PipelineConfig{
				DataStructure: dsName,
				Algorithm:     alg,
				Model:         "inc",
				Threads:       h.opts.Threads,
			},
			Dataset: spec,
			Seed:    h.opts.Seed,
		},
		Threads: 64,
		Machine: &mc,
	})
}
