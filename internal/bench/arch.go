package bench

import (
	"sagabench/internal/archsim"
	"sagabench/internal/compute"
	"sagabench/internal/perfmon"
)

// Fig9Cores are the x-axis core counts of the paper's scaling study.
var Fig9Cores = []int{4, 8, 12, 16, 20, 24, 28}

// FullMachineCores is the core count backing the bandwidth/QPI numbers
// (the paper profiles with all 32 physical cores / 64 threads).
const FullMachineCores = 32

// archGroups mirrors Section VI's two categories: short-tailed datasets on
// AS and heavy-tailed datasets on DAH, averaged across the six algorithms
// under the INC model.
var archGroups = []struct {
	Name     string
	Datasets []string
	DS       string
}{
	{"STail", []string{"lj", "orkut", "rmat"}, "adjshared"},
	{"HTail", []string{"wiki", "talk"}, "dah"},
}

// groupReports collects the per-(dataset, algorithm) reports of one group.
func (h *Harness) groupReports(gi int) ([]*perfmon.Report, error) {
	g := archGroups[gi]
	var out []*perfmon.Report
	for _, dataset := range g.Datasets {
		for _, alg := range compute.AlgNames() {
			rep, err := h.profile(dataset, g.DS, alg)
			if err != nil {
				return nil, err
			}
			out = append(out, rep)
		}
	}
	return out, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig9 prints (a) modeled performance scaling with physical core count for
// the update and compute phases of both groups, (b) modeled memory
// bandwidth, and (c) modeled QPI utilization per stage.
func (h *Harness) Fig9() error {
	h.printf("\n== Fig 9: architecture utilization (INC, STail=lj/orkut/rmat on AS, HTail=wiki/talk on DAH) ==\n")
	h.printf("(a) performance vs physical cores (normalized to %d cores)\n", Fig9Cores[0])
	h.printf("%-16s", "cores")
	for _, c := range Fig9Cores {
		h.printf("%7d", c)
	}
	h.printf("\n")
	for gi, g := range archGroups {
		reports, err := h.groupReports(gi)
		if err != nil {
			return err
		}
		for _, ph := range []perfmon.Phase{perfmon.Update, perfmon.Compute} {
			avg := make([]float64, len(Fig9Cores))
			for _, rep := range reports {
				curve := rep.ScalingCurve(ph, Fig9Cores)
				for i, v := range curve {
					avg[i] += v / float64(len(reports))
				}
			}
			h.printf("%-16s", g.Name+" "+ph.String())
			h.csvHeader("fig9a_scaling", "group", "phase", "cores", "normalized_perf")
			for i, v := range avg {
				h.printf("%7.2f", v)
				h.csvRow("fig9a_scaling", g.Name, ph.String(), Fig9Cores[i], v)
			}
			h.printf("\n")
		}
	}

	h.printf("(b) memory bandwidth (GB/s, %d cores; simulated machine /%d)\n", FullMachineCores, h.opts.MachineDiv)
	h.printf("%-16s %8s %8s %8s\n", "", "P1", "P2", "P3")
	for gi, g := range archGroups {
		reports, err := h.groupReports(gi)
		if err != nil {
			return err
		}
		for _, ph := range []perfmon.Phase{perfmon.Update, perfmon.Compute} {
			var rows [3][]float64
			for _, rep := range reports {
				for s := 0; s < 3; s++ {
					rows[s] = append(rows[s], rep.BandwidthGBs(s, ph, FullMachineCores))
				}
			}
			h.printf("%-16s %8.3f %8.3f %8.3f\n", g.Name+" "+ph.String(), mean(rows[0]), mean(rows[1]), mean(rows[2]))
			h.csvHeader("fig9b_bandwidth", "group", "phase", "p1_gbs", "p2_gbs", "p3_gbs")
			h.csvRow("fig9b_bandwidth", g.Name, ph.String(), mean(rows[0]), mean(rows[1]), mean(rows[2]))
		}
	}

	h.printf("(c) QPI utilization (%% of per-direction capacity, %d cores)\n", FullMachineCores)
	h.printf("%-16s %8s %8s %8s\n", "", "P1", "P2", "P3")
	for gi, g := range archGroups {
		reports, err := h.groupReports(gi)
		if err != nil {
			return err
		}
		for _, ph := range []perfmon.Phase{perfmon.Update, perfmon.Compute} {
			var rows [3][]float64
			for _, rep := range reports {
				for s := 0; s < 3; s++ {
					rows[s] = append(rows[s], rep.QPIPercent(s, ph, FullMachineCores))
				}
			}
			h.printf("%-16s %7.1f%% %7.1f%% %7.1f%%\n", g.Name+" "+ph.String(), mean(rows[0]), mean(rows[1]), mean(rows[2]))
			h.csvHeader("fig9c_qpi", "group", "phase", "p1_pct", "p2_pct", "p3_pct")
			h.csvRow("fig9c_qpi", g.Name, ph.String(), mean(rows[0]), mean(rows[1]), mean(rows[2]))
		}
	}
	return nil
}

// Fig10 prints (a) L2 and LLC demand hit ratios and (b/c) L2 and LLC MPKI
// for the update and compute phases of both groups, per stage.
func (h *Harness) Fig10() error {
	h.printf("\n== Fig 10: caches (INC, STail on AS, HTail on DAH; simulated machine /%d) ==\n", h.opts.MachineDiv)
	metrics := []struct {
		name string
		get  func(archsim.Traffic) float64
	}{
		{"L2 hit ratio", func(t archsim.Traffic) float64 { return t.L2HitRatio() }},
		{"LLC hit ratio", func(t archsim.Traffic) float64 { return t.LLCHitRatio() }},
		{"L2 MPKI", func(t archsim.Traffic) float64 { return t.L2MPKI() }},
		{"LLC MPKI", func(t archsim.Traffic) float64 { return t.LLCMPKI() }},
	}
	h.printf("%-16s %-14s %8s %8s %8s\n", "group/phase", "metric", "P1", "P2", "P3")
	for gi, g := range archGroups {
		reports, err := h.groupReports(gi)
		if err != nil {
			return err
		}
		for _, ph := range []perfmon.Phase{perfmon.Update, perfmon.Compute} {
			for _, m := range metrics {
				var rows [3][]float64
				for _, rep := range reports {
					for s := 0; s < 3; s++ {
						rows[s] = append(rows[s], m.get(rep.Traffic(s, ph)))
					}
				}
				h.printf("%-16s %-14s %8.2f %8.2f %8.2f\n",
					g.Name+" "+ph.String(), m.name, mean(rows[0]), mean(rows[1]), mean(rows[2]))
				h.csvHeader("fig10_caches", "group", "phase", "metric", "p1", "p2", "p3")
				h.csvRow("fig10_caches", g.Name, ph.String(), m.name, mean(rows[0]), mean(rows[1]), mean(rows[2]))
			}
		}
	}
	return nil
}
