package bench

import (
	"fmt"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/gen"
)

// Reader/writer interference: how much does serving non-blocking queries
// from epoch-published snapshots cost the update path? The experiment
// streams one representative configuration (lj, AS, incremental CC — the
// paper's most update-bound combination) with a growing reader fleet and
// reports the writer's mean batch latency next to the readers' served
// throughput and worst-case staleness. The "publish" row isolates the
// snapshot-publication overhead from the reader contention on top of it.

// attachQueryLoad is the core.RunConfig.OnPipeline hook used whenever the
// harness serves queries during measured runs (Options.QueryReaders and
// the interference experiment).
func (h *Harness) attachQueryLoad(p *core.Pipeline) func() {
	return h.attachReaders(p, h.opts.QueryReaders)
}

func (h *Harness) attachReaders(p *core.Pipeline, readers int) func() {
	ql, err := core.StartQueryLoad(p, core.QueryLoadConfig{Readers: readers, Seed: h.opts.Seed})
	if err != nil {
		return nil
	}
	return func() { h.qstats = append(h.qstats, ql.Stop()) }
}

// QueryStats aggregates every query load the harness ran.
func (h *Harness) QueryStats() core.QueryLoadStats {
	var agg core.QueryLoadStats
	for _, s := range h.qstats {
		agg.Queries += s.Queries
		agg.Sessions += s.Sessions
		agg.Misses += s.Misses
		agg.Violations += s.Violations
		if s.MaxStaleness > agg.MaxStaleness {
			agg.MaxStaleness = s.MaxStaleness
		}
		if agg.FirstViolation == "" {
			agg.FirstViolation = s.FirstViolation
		}
		agg.Elapsed += s.Elapsed
	}
	return agg
}

// Interference sweeps the reader count over the representative config.
func (h *Harness) Interference() error {
	h.printf("\n== Interference: non-blocking queries vs update throughput (lj, AS, INC+CC) ==\n")
	h.printf("%-10s %14s %14s %14s %12s %10s\n",
		"readers", "mean update", "mean batch", "reader qps", "queries", "staleness")
	h.csvHeader("interference", "readers", "mean_update_s", "mean_batch_s", "reader_qps", "queries", "max_staleness_batches")

	spec, err := gen.Dataset("lj", h.opts.Profile)
	if err != nil {
		return err
	}
	for _, readers := range []int{-1, 0, 1, 4, 16} {
		cfg := core.RunConfig{
			PipelineConfig: core.PipelineConfig{
				DataStructure: "adjshared",
				Algorithm:     "cc",
				Model:         compute.INC,
				Threads:       h.opts.Threads,
				ComputeView:   h.opts.ComputeView,
				ServeQueries:  readers >= 0,
			},
			Dataset: spec,
			Seed:    h.opts.Seed,
			Repeats: h.opts.Repeats,
		}
		var stats core.QueryLoadStats
		if readers > 0 {
			r := readers
			cfg.OnPipeline = func(p *core.Pipeline) func() {
				ql, qerr := core.StartQueryLoad(p, core.QueryLoadConfig{Readers: r, Seed: h.opts.Seed})
				if qerr != nil {
					return nil
				}
				return func() {
					s := ql.Stop()
					stats.Queries += s.Queries
					stats.Sessions += s.Sessions
					if s.MaxStaleness > stats.MaxStaleness {
						stats.MaxStaleness = s.MaxStaleness
					}
					stats.Violations += s.Violations
					stats.Elapsed += s.Elapsed
				}
			}
		}
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		meanUpd, meanTot := meanLatencies(res)
		label := fmt.Sprintf("%d", readers)
		switch readers {
		case -1:
			label = "off"
		case 0:
			label = "publish"
		}
		h.printf("%-10s %14s %14s %14.0f %12d %10d\n",
			label, formatSeconds(meanUpd), formatSeconds(meanTot),
			stats.QPS(), stats.Queries, stats.MaxStaleness)
		h.csvRow("interference", label, meanUpd, meanTot, stats.QPS(), stats.Queries, stats.MaxStaleness)
		if stats.Violations > 0 {
			return fmt.Errorf("interference: %d query consistency violations at %d readers", stats.Violations, readers)
		}
	}
	return nil
}

// meanLatencies averages update and total batch latency over every batch
// of every repeat.
func meanLatencies(res *core.RunResult) (upd, tot float64) {
	var n int
	for r := range res.Update {
		for b := range res.Update[r] {
			upd += res.Update[r][b]
			tot += res.Update[r][b] + res.Compute[r][b]
			n++
		}
	}
	if n > 0 {
		upd /= float64(n)
		tot /= float64(n)
	}
	return upd, tot
}
