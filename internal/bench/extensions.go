package bench

import (
	"math/rand"

	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
	"sagabench/internal/stats"
)

// Extensions measures the two capabilities this repository adds beyond
// the paper's framework (both named by the paper as future work):
//
//  1. the log-structured GraphOne-style structure against the paper's
//     four on both degree-tail regimes — its O(1) ingest plus hash-pass
//     compaction should neutralize the heavy-tail update pathology
//     without DAH's traversal meta-operations; and
//  2. a sliding-window mixed stream (inserts plus expiring edges) over
//     the deletion-capable structures.
func (h *Harness) Extensions() error {
	h.printf("\n== Extensions: log-structured ingest and sliding-window deletion ==\n")

	// (a) P3 update latency, every registered structure, both tails.
	h.printf("(a) P3 update latency by structure (incremental CC)\n")
	structures := AllDS()
	h.printf("%-10s %12s %12s\n", "structure", "lj", "wiki")
	for _, d := range structures {
		var cells [2]string
		for i, dataset := range []string{"lj", "wiki"} {
			res, err := h.run(dataset, d.Key, "cc", compute.INC)
			if err != nil {
				return err
			}
			sums, err := res.StageSummaries(core.MetricUpdate)
			if err != nil {
				return err
			}
			cells[i] = formatSeconds(sums[2].Mean)
		}
		h.printf("%-10s %12s %12s\n", d.Label, cells[0], cells[1])
	}

	// (b) Update/compute overlap: the two-phase schedule hides staging
	// under the compute phase; report how much of the ingest cost it
	// absorbs per batch.
	if err := h.overlapRow(); err != nil {
		return err
	}

	// (c) Sliding window: every batch inserts fresh edges and deletes the
	// batch that fell out of the window; incremental CC keeps running,
	// repairing through KickStarter-style trimming.
	h.printf("(c) sliding-window mixed stream (window=8 batches, trimmed incremental CC)\n")
	h.printf("%-10s %14s %14s\n", "structure", "mean update", "mean compute")
	spec, err := gen.Dataset("lj", h.opts.Profile)
	if err != nil {
		return err
	}
	for _, d := range structures {
		upd, cmp, err := h.slidingWindow(d.Key, spec)
		if err != nil {
			return err
		}
		h.printf("%-10s %14s %14s\n", d.Label, formatSeconds(upd), formatSeconds(cmp))
	}
	return nil
}

// overlapRow measures the serial vs overlapped schedule on graphone.
func (h *Harness) overlapRow() error {
	h.printf("(b) update/compute overlap on the log-structured store (incremental PR, lj)\n")
	spec, err := gen.Dataset("lj", h.opts.Profile)
	if err != nil {
		return err
	}
	cfg := core.StreamConfig{
		PipelineConfig: core.PipelineConfig{
			DataStructure: "graphone",
			Algorithm:     "pr",
			Model:         compute.INC,
			Directed:      spec.Directed,
			Threads:       h.opts.Threads,
			MaxNodesHint:  spec.NumNodes,
		},
		Edges:     spec.Generate(h.opts.Seed),
		BatchSize: spec.BatchSize,
	}
	serial, err := core.RunStream(cfg)
	if err != nil {
		return err
	}
	over, hidden, err := core.RunOverlappedStream(cfg)
	if err != nil {
		return err
	}
	sser, err := serial.Series(core.MetricTotal, 0)
	if err != nil {
		return err
	}
	sover, err := over.Series(core.MetricTotal, 0)
	if err != nil {
		return err
	}
	su := stats.Summarize(sser).Mean
	ou := stats.Summarize(sover).Mean
	hi := stats.Summarize(hidden).Mean
	h.printf("  serial batch latency     %s\n", formatSeconds(su))
	h.printf("  overlapped batch latency %s (+%s staging hidden under compute)\n", formatSeconds(ou), formatSeconds(hi))
	return nil
}

// slidingWindow streams spec's edges with an 8-batch expiry window and
// returns mean update (ingest+delete) and compute latencies.
func (h *Harness) slidingWindow(dsName string, spec gen.Spec) (upd, cmp float64, err error) {
	const window = 8
	p, err := core.NewPipeline(core.PipelineConfig{
		DataStructure: dsName,
		Algorithm:     "cc",
		Model:         compute.INC,
		Directed:      spec.Directed,
		Threads:       h.opts.Threads,
		MaxNodesHint:  spec.NumNodes,
	})
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(h.opts.Seed))
	_ = rng
	edges := spec.Generate(h.opts.Seed)
	batches := graph.Batches(edges, spec.BatchSize)
	var updSamples, cmpSamples []float64
	for i, b := range batches {
		mb := core.MixedBatch{Adds: b}
		if i >= window {
			mb.Dels = batches[i-window]
		}
		lat, err := p.ProcessMixed(mb)
		if err != nil {
			return 0, 0, err
		}
		updSamples = append(updSamples, lat.Update.Seconds())
		cmpSamples = append(cmpSamples, lat.Compute.Seconds())
	}
	return stats.Summarize(updSamples).Mean, stats.Summarize(cmpSamples).Mean, nil
}
