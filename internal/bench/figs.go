package bench

import (
	"sagabench/internal/compute"
	"sagabench/internal/core"
	"sagabench/internal/gen"
	"sagabench/internal/stats"
)

// Fig6 prints, per algorithm and dataset, the P3 batch-processing, update,
// and compute latencies of AC, DAH, and Stinger normalized to AS, each
// structure evaluated at its own best compute model (paper Fig 6's
// control: the model is fixed to the best so only the structure varies).
func (h *Harness) Fig6() error {
	const p3 = 2
	h.printf("\n== Fig 6: P3 latency of AC/DAH/Stinger normalized to AS (best compute model) ==\n")
	h.printf("(a) batch processing latency\n")
	h.printf("%-5s %-7s %8s %8s %8s\n", "alg", "dataset", "AC/AS", "DAH/AS", "Stngr/AS")
	norm := func(alg, dataset string, metric core.Metric) ([3]float64, error) {
		var out [3]float64 // AC, DAH, Stinger over AS
		var asMean float64
		for i, d := range []string{"adjshared", "adjchunked", "dah", "stinger"} {
			model, err := h.bestModelAt(dataset, alg, d, p3)
			if err != nil {
				return out, err
			}
			res, err := h.run(dataset, d, alg, model)
			if err != nil {
				return out, err
			}
			sums, err := res.StageSummaries(metric)
			if err != nil {
				return out, err
			}
			mean := sums[p3].Mean
			if i == 0 {
				asMean = mean
				continue
			}
			out[i-1] = stats.Ratio(mean, asMean)
		}
		return out, nil
	}
	h.csvHeader("fig6a_total", "alg", "dataset", "ac_over_as", "dah_over_as", "stinger_over_as")
	for _, alg := range compute.AlgNames() {
		for _, dataset := range gen.DatasetNames() {
			r, err := norm(alg, dataset, core.MetricTotal)
			if err != nil {
				return err
			}
			h.printf("%-5s %-7s %8.2f %8.2f %8.2f\n", alg, dataset, r[0], r[1], r[2])
			h.csvRow("fig6a_total", alg, dataset, r[0], r[1], r[2])
		}
	}
	h.printf("(b) update latency (bfs shown; update is algorithm-independent)\n")
	h.printf("%-5s %-7s %8s %8s %8s\n", "alg", "dataset", "AC/AS", "DAH/AS", "Stngr/AS")
	h.csvHeader("fig6b_update", "alg", "dataset", "ac_over_as", "dah_over_as", "stinger_over_as")
	for _, dataset := range gen.DatasetNames() {
		r, err := norm("bfs", dataset, core.MetricUpdate)
		if err != nil {
			return err
		}
		h.printf("%-5s %-7s %8.2f %8.2f %8.2f\n", "bfs", dataset, r[0], r[1], r[2])
		h.csvRow("fig6b_update", "bfs", dataset, r[0], r[1], r[2])
	}
	h.printf("(c) compute latency\n")
	h.printf("%-5s %-7s %8s %8s %8s\n", "alg", "dataset", "AC/AS", "DAH/AS", "Stngr/AS")
	h.csvHeader("fig6c_compute", "alg", "dataset", "ac_over_as", "dah_over_as", "stinger_over_as")
	for _, alg := range compute.AlgNames() {
		for _, dataset := range gen.DatasetNames() {
			r, err := norm(alg, dataset, core.MetricCompute)
			if err != nil {
				return err
			}
			h.printf("%-5s %-7s %8.2f %8.2f %8.2f\n", alg, dataset, r[0], r[1], r[2])
			h.csvRow("fig6c_compute", alg, dataset, r[0], r[1], r[2])
		}
	}
	return nil
}

// bestDSAt returns the data structure of the winning combo at P3 (used by
// Fig 7/8 to fix the structure to the best).
func (h *Harness) bestDSAt(dataset, alg string, stage int) (string, error) {
	cs, err := h.combos(dataset, alg)
	if err != nil {
		return "", err
	}
	best, _ := bestAt(cs, stage)
	return best.ds, nil
}

// Fig7 prints the FS/INC compute-latency ratio at the best data structure
// over the three stages (paper Fig 7; >1 means INC wins).
func (h *Harness) Fig7() error {
	h.printf("\n== Fig 7: FS compute latency normalized to INC (best data structure) ==\n")
	h.printf("%-5s %-7s %-8s %8s %8s %8s\n", "alg", "dataset", "ds", "P1", "P2", "P3")
	for _, alg := range compute.AlgNames() {
		for _, dataset := range gen.DatasetNames() {
			dsName, err := h.bestDSAt(dataset, alg, 2)
			if err != nil {
				return err
			}
			fs, err := h.run(dataset, dsName, alg, compute.FS)
			if err != nil {
				return err
			}
			inc, err := h.run(dataset, dsName, alg, compute.INC)
			if err != nil {
				return err
			}
			fss, err := fs.StageSummaries(core.MetricCompute)
			if err != nil {
				return err
			}
			incs, err := inc.StageSummaries(core.MetricCompute)
			if err != nil {
				return err
			}
			r1 := stats.Ratio(fss[0].Mean, incs[0].Mean)
			r2 := stats.Ratio(fss[1].Mean, incs[1].Mean)
			r3 := stats.Ratio(fss[2].Mean, incs[2].Mean)
			h.printf("%-5s %-7s %-8s %8.2f %8.2f %8.2f\n", alg, dataset, DSLabel(dsName), r1, r2, r3)
			h.csvHeader("fig7", "alg", "dataset", "ds", "p1_fs_over_inc", "p2_fs_over_inc", "p3_fs_over_inc")
			h.csvRow("fig7", alg, dataset, DSLabel(dsName), r1, r2, r3)
		}
	}
	return nil
}

// Fig8 prints the update phase's share of batch processing latency at the
// best (structure, model) combination per stage (paper Fig 8).
func (h *Harness) Fig8() error {
	h.printf("\n== Fig 8: update share of batch processing latency (best combo) ==\n")
	h.printf("%-5s %-7s %-10s %7s %7s %7s\n", "alg", "dataset", "combo", "P1", "P2", "P3")
	for _, alg := range compute.AlgNames() {
		for _, dataset := range gen.DatasetNames() {
			cs, err := h.combos(dataset, alg)
			if err != nil {
				return err
			}
			best, _ := bestAt(cs, 2)
			share, err := best.res.UpdateShare()
			if err != nil {
				return err
			}
			h.printf("%-5s %-7s %-10s %6.0f%% %6.0f%% %6.0f%%\n", alg, dataset, comboLabel(best),
				100*share[0], 100*share[1], 100*share[2])
			h.csvHeader("fig8", "alg", "dataset", "combo", "p1_update_share", "p2_update_share", "p3_update_share")
			h.csvRow("fig8", alg, dataset, comboLabel(best), share[0], share[1], share[2])
		}
	}
	return nil
}
