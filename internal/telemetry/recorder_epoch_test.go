package telemetry

import "testing"

// The epoch/query recorder surface: counter values, gauge semantics, and
// the nil-recorder contract that lets the pipeline call these hooks
// unconditionally when telemetry is disabled.

func TestRecordEpochPublish(t *testing.T) {
	reg := NewRegistry()
	r := NewRecorder(reg, nil)

	r.RecordEpochPublish(0, 0, 0) // first publish: no spare yet
	r.RecordEpochPublish(1, 0, 2) // spare reclaimed, two pins live
	r.RecordEpochPublish(0, 1, 5) // spare dropped to the GC
	r.RecordEpochPublish(1, 0, 0) // drained again

	for _, tc := range []struct {
		name string
		want uint64
	}{
		{"saga_epochs_published_total", 4},
		{"saga_epoch_buffers_reclaimed_total", 2},
		{"saga_epoch_buffers_dropped_total", 1},
	} {
		if got := reg.Counter(tc.name, "").Value(); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, got, tc.want)
		}
	}
	// The pin gauge tracks the latest publication, not a running sum.
	if got := reg.Gauge("saga_query_pinned_handles", "").Value(); got != 0 {
		t.Errorf("saga_query_pinned_handles = %v, want 0 (latest publish)", got)
	}
	r.RecordEpochPublish(0, 0, 3)
	if got := reg.Gauge("saga_query_pinned_handles", "").Value(); got != 3 {
		t.Errorf("saga_query_pinned_handles = %v, want 3", got)
	}
}

func TestRecordQuerySessionAndMiss(t *testing.T) {
	reg := NewRegistry()
	r := NewRecorder(reg, nil)

	r.RecordQuerySession(10, 0)
	r.RecordQuerySession(0, 2) // a session may release without reading
	r.RecordQuerySession(5, 7)
	r.RecordQueryMiss()
	r.RecordQueryMiss()

	for _, tc := range []struct {
		name string
		want uint64
	}{
		{"saga_query_sessions_total", 3},
		{"saga_queries_total", 15},
		{"saga_query_misses_total", 2},
	} {
		if got := reg.Counter(tc.name, "").Value(); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, got, tc.want)
		}
	}
	// Staleness is a most-recent-release gauge.
	if got := reg.Gauge("saga_query_staleness_batches", "").Value(); got != 7 {
		t.Errorf("saga_query_staleness_batches = %v, want 7", got)
	}
}

// TestEpochRecorderNilSafety: every epoch/query hook must be callable on
// a nil recorder — the pipeline does exactly that when telemetry is off.
func TestEpochRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.RecordEpochPublish(1, 1, 9)
	r.RecordQuerySession(3, 1)
	r.RecordQueryMiss()
}

// TestEpochMetricsRegistered: the full metric-name surface the README and
// dashboards reference must exist on a fresh recorder, before any event.
func TestEpochMetricsRegistered(t *testing.T) {
	reg := NewRegistry()
	NewRecorder(reg, nil)
	names := map[string]bool{}
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, want := range []string{
		"saga_epochs_published_total",
		"saga_epoch_buffers_reclaimed_total",
		"saga_epoch_buffers_dropped_total",
		"saga_query_pinned_handles",
		"saga_queries_total",
		"saga_query_sessions_total",
		"saga_query_misses_total",
		"saga_query_staleness_batches",
	} {
		if !names[want] {
			t.Errorf("metric %s not registered", want)
		}
	}
}
