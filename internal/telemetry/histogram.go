package telemetry

import (
	"math"
	"sync/atomic"
)

// DefBuckets are the default latency bucket upper bounds in seconds: a
// 1-2.5-5 exponential ladder from 1µs to 10s, covering batch phase
// latencies from tiny synthetic streams to full-size paper datasets.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// FractionBuckets suit metrics bounded in [0,1] such as the INC trigger
// fraction or the update share of batch latency.
var FractionBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1,
}

// StragglerBuckets suit the compute-phase straggler ratio (max/mean
// worker busy time): 1 is perfectly balanced, values grow unbounded as
// one worker's range dominates the round.
var StragglerBuckets = []float64{
	1, 1.1, 1.25, 1.5, 2, 3, 4, 6, 8, 12, 16,
}

// Histogram is a fixed-bucket histogram with lock-free observation.
// Observations land in the first bucket whose upper bound is >= the value;
// values above the last bound land in an implicit +Inf overflow bucket.
// Quantiles are estimated by linear interpolation inside the target bucket
// (the standard Prometheus histogram_quantile estimate).
type Histogram struct {
	bounds  []float64       // ascending upper bounds (finite)
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (nil selects DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean reports Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// snapshot copies the finite bounds and all bucket counts (the extra final
// count is the +Inf bucket).
func (h *Histogram) snapshot() (bounds []float64, counts []uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-th quantile (0..1) by locating the bucket that
// holds the q*N-th observation and interpolating linearly inside it. The
// first bucket interpolates from 0; observations in the +Inf bucket clamp
// to the highest finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, ub := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= rank {
			lb := 0.0
			if i > 0 {
				lb = h.bounds[i-1]
			}
			if c == 0 {
				return ub
			}
			return lb + (ub-lb)*(rank-cum)/c
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}
