package telemetry_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"sagabench/internal/stats"
	"sagabench/internal/telemetry"
)

// unitBounds returns bucket upper bounds 1..n step 1.
func unitBounds(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	return b
}

// TestHistogramQuantileAgainstStats cross-checks the bucket-interpolated
// quantile estimate against the exact nearest-rank percentile from
// internal/stats on known distributions. With unit buckets the estimate
// must land within one bucket width of the exact answer.
func TestHistogramQuantileAgainstStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() * 100 },
		"exponential": func() float64 { return math.Min(rng.ExpFloat64()*10, 99.9) },
		"bimodal": func() float64 {
			if rng.Intn(2) == 0 {
				return 10 + rng.Float64()*5
			}
			return 80 + rng.Float64()*5
		},
	}
	for name, draw := range dists {
		h := telemetry.NewHistogram(unitBounds(100))
		samples := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw()
			samples = append(samples, v)
			h.Observe(v)
		}
		for _, q := range []float64{0.50, 0.95, 0.99} {
			exact := stats.Percentile(samples, q*100)
			est := h.Quantile(q)
			if math.Abs(est-exact) > 1.0 {
				t.Errorf("%s p%d: histogram %v vs exact %v (diff > bucket width)", name, int(q*100), est, exact)
			}
		}
		if math.Abs(h.Mean()-stats.Summarize(samples).Mean) > 1e-6 {
			t.Errorf("%s: mean %v vs %v", name, h.Mean(), stats.Summarize(samples).Mean)
		}
	}
}

// TestHistogramEdgeCases covers empty histograms, overflow clamping, and
// underflow interpolation from zero.
func TestHistogramEdgeCases(t *testing.T) {
	h := telemetry.NewHistogram([]float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(100) // overflow bucket
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("overflow quantile = %v, want clamp to 4", got)
	}
	lo := telemetry.NewHistogram([]float64{10})
	lo.Observe(5)
	lo.Observe(5)
	if q := lo.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("underflow quantile = %v, want in (0,10]", q)
	}
	if h.Count() != 1 || h.Sum() != 100 {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
}

// TestHistogramConcurrentObserve proves Observe is safe (and exact in
// count/sum) under concurrency; meaningful under -race.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := telemetry.NewHistogram(telemetry.DefBuckets)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*per); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if math.Abs(h.Sum()-float64(workers*per)*0.001) > 1e-6 {
		t.Fatalf("sum = %v", h.Sum())
	}
}
