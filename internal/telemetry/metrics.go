// Package telemetry is the runtime observability layer of the streaming
// pipeline. The paper characterizes batch processing post-hoc — per-phase
// latencies (Equation 1), contention and imbalance counters (Fig 9), cache
// behavior (Fig 10) — but a long-lived streaming service must expose the
// same signals live. This package provides:
//
//   - atomic counters, gauges, and fixed-bucket latency histograms with
//     p50/p95/p99 quantile estimates (metrics.go, histogram.go);
//   - a per-batch structured event log written as JSONL (events.go);
//   - a Recorder that the core pipeline drives once per processed batch
//     (recorder.go) — a nil *Recorder is a valid, near-free no-op;
//   - an HTTP endpoint serving the metrics in Prometheus text format and
//     expvar JSON, with net/http/pprof mounted for live CPU/heap profiling
//     of a running stream (server.go).
//
// Everything is standard library only and safe for concurrent use.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
// saga:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
// saga:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
// saga:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric with its exposition metadata.
type entry struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them for exposition. Metric
// constructors are get-or-create, so independent components can share a
// metric by name; registration order is preserved in the output.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

func (r *Registry) lookup(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = nil // filled by Histogram()
	}
	r.entries = append(r.entries, e)
	r.byName[name] = e
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge).g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (nil buckets select DefBuckets). Later calls
// ignore the buckets argument.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	e := r.lookup(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.h == nil {
		e.h = NewHistogram(buckets)
	}
	return e.h
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), histograms with cumulative le buckets plus _sum
// and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	var b strings.Builder
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, e.help)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", e.name, e.name, formatFloat(e.g.Value()))
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", e.name)
			cum := uint64(0)
			bounds, counts := e.h.snapshot()
			for i, ub := range bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", e.name, formatFloat(ub), cum)
			}
			cum += counts[len(bounds)]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", e.name, formatFloat(e.h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", e.name, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a float the way Prometheus clients expect.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	s := fmt.Sprintf("%g", v)
	return s
}

// ExpvarFunc returns an expvar.Func that snapshots the registry as a JSON
// object: counters and gauges by value, histograms as
// {count, sum, p50, p95, p99}. Publish it under a single name to join the
// process's /debug/vars output.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any {
		r.mu.Lock()
		entries := append([]*entry(nil), r.entries...)
		r.mu.Unlock()
		out := make(map[string]any, len(entries))
		for _, e := range entries {
			switch e.kind {
			case kindCounter:
				out[e.name] = e.c.Value()
			case kindGauge:
				out[e.name] = e.g.Value()
			case kindHistogram:
				out[e.name] = map[string]any{
					"count": e.h.Count(),
					"sum":   e.h.Sum(),
					"p50":   e.h.Quantile(0.50),
					"p95":   e.h.Quantile(0.95),
					"p99":   e.h.Quantile(0.99),
				}
			}
		}
		return out
	}
}

// Names lists the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	return names
}
