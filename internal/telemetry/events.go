package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// BatchEvent is one structured record of the per-batch event log —
// everything the paper measures per batch, plus the data-structure update
// profile of Fig 9, as a single JSONL line.
type BatchEvent struct {
	// TimeUnixMS is the wall-clock completion time of the batch.
	TimeUnixMS int64 `json:"ts_ms"`
	// Repeat is the stream repetition index of the measurement harness.
	Repeat int `json:"repeat,omitempty"`
	// Batch is the batch index within the pipeline's lifetime.
	Batch int `json:"batch"`
	// Edges is the insertion count of the batch; Deletes the deletion
	// count (mixed streams only).
	Edges   int `json:"edges"`
	Deletes int `json:"deletes,omitempty"`
	// Nodes is NumNodes after the update phase.
	Nodes int `json:"nodes"`
	// UpdateNS / ComputeNS are the two phase latencies of Equation 1.
	UpdateNS  int64 `json:"update_ns"`
	ComputeNS int64 `json:"compute_ns"`
	// Affected is the size of the deduplicated affected vertex set handed
	// to the compute phase (Algorithm 1).
	Affected int `json:"affected"`

	// Compute-phase work (engine stats of the batch).
	Iterations     int    `json:"iterations"`
	Processed      uint64 `json:"processed"`
	EdgesTraversed uint64 `json:"edges_traversed"`
	// Triggered / Skipped split the processed vertices of an INC engine
	// into those whose recomputation propagated and those absorbed by the
	// triggering threshold; TriggerFrac is Triggered/Processed.
	Triggered   uint64  `json:"triggered,omitempty"`
	Skipped     uint64  `json:"skipped,omitempty"`
	TriggerFrac float64 `json:"trigger_frac,omitempty"`

	// Per-worker compute-phase busy time of the batch (nanoseconds,
	// indexed by worker slot; omitted for single-threaded runs with no
	// skew to report). WorkersUsed counts the slots that did any work,
	// and Straggler is max/mean busy time over those slots — the
	// edge-balanced scheduling skew of the batch, visible without
	// loading a trace (1.0 = perfectly balanced).
	WorkerBusyNS []int64 `json:"worker_busy_ns,omitempty"`
	WorkersUsed  int     `json:"workers_used,omitempty"`
	Straggler    float64 `json:"straggler,omitempty"`

	// Compute-view refresh of the batch (zero when the view is off):
	// refresh wall time, fraction of vertices re-flattened, and whether
	// the refresh fell back to a full rebuild.
	ViewNS        int64   `json:"view_ns,omitempty"`
	ViewDirtyFrac float64 `json:"view_dirty_frac,omitempty"`
	ViewFull      bool    `json:"view_full,omitempty"`

	// Epoch is the publication number of the batch's published snapshot
	// (zero when non-blocking queries are off).
	Epoch uint64 `json:"epoch,omitempty"`

	// Update-phase data-structure profile, as per-batch deltas of
	// ds.UpdateProfile (zero when the structure is not profiled).
	DSEdgesIngested uint64  `json:"ds_edges_ingested,omitempty"`
	DSInserted      uint64  `json:"ds_inserted,omitempty"`
	DSScanSteps     uint64  `json:"ds_scan_steps,omitempty"`
	DSLockConflicts uint64  `json:"ds_lock_conflicts,omitempty"`
	DSMetaOps       uint64  `json:"ds_meta_ops,omitempty"`
	DSImbalance     float64 `json:"ds_imbalance,omitempty"`
	// Tier transitions of degree-adaptive structures (hybrid): vertex
	// representation upgrades and downgrades this batch triggered.
	DSTierPromotions uint64 `json:"ds_tier_promotions,omitempty"`
	DSTierDemotions  uint64 `json:"ds_tier_demotions,omitempty"`
}

// Total is the batch processing latency in nanoseconds (Equation 1).
func (e *BatchEvent) Total() time.Duration {
	return time.Duration(e.UpdateNS + e.ComputeNS)
}

// LineSink writes JSON values as buffered JSONL lines. It is safe for
// concurrent use; writes are buffered until Flush or Close, and the first
// encode error is sticky. It is the shared machinery behind the per-batch
// BatchEvent log (EventSink) and the trace layer's span stream
// (internal/trace.Sink).
type LineSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
	n   uint64
}

// NewLineSink wraps w. If w is also an io.Closer, Close closes it after
// flushing.
func NewLineSink(w io.Writer) *LineSink {
	bw := bufio.NewWriter(w)
	s := &LineSink{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Encode appends one JSONL line. The first encode error is sticky and
// returned by every later call.
func (s *LineSink) Encode(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.enc.Encode(v); err != nil {
		s.err = err
		return err
	}
	s.n++
	return nil
}

// Count reports the number of lines written so far.
func (s *LineSink) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Flush drains the buffer to the underlying writer.
func (s *LineSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Close flushes and closes the underlying writer if it is closable.
func (s *LineSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.bw.Flush()
	if s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
		s.c = nil
	}
	return s.err
}

// EventSink writes BatchEvents as JSON lines to a writer: a typed LineSink.
type EventSink struct {
	ls *LineSink
}

// NewEventSink wraps w. If w is also an io.Closer, Close closes it after
// flushing.
func NewEventSink(w io.Writer) *EventSink {
	return &EventSink{ls: NewLineSink(w)}
}

// Write appends one event line. The first encode error is sticky and
// returned by every later call.
func (s *EventSink) Write(ev *BatchEvent) error { return s.ls.Encode(ev) }

// Count reports the number of events written so far.
func (s *EventSink) Count() uint64 { return s.ls.Count() }

// Flush drains the buffer to the underlying writer.
func (s *EventSink) Flush() error { return s.ls.Flush() }

// Close flushes and closes the underlying writer if it is closable.
func (s *EventSink) Close() error { return s.ls.Close() }

// ReadEvents decodes a JSONL event stream back into BatchEvents (the
// inverse of EventSink for tooling and tests).
func ReadEvents(r io.Reader) ([]BatchEvent, error) {
	dec := json.NewDecoder(r)
	var out []BatchEvent
	for {
		var ev BatchEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}
