package telemetry_test

import (
	"strings"
	"sync"
	"testing"

	"sagabench/internal/telemetry"
)

// TestConcurrentCounters hammers one counter and one gauge from many
// goroutines; run under -race this also proves the increment path is
// data-race free.
func TestConcurrentCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("test_total", "concurrent increments")
	g := reg.Gauge("test_gauge", "concurrent sets")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				c.Add(2)
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Value(), uint64(3*workers*perWorker); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if v := g.Value(); v < 0 || v >= workers {
		t.Fatalf("gauge = %v, want a worker index", v)
	}
}

// TestRegistryGetOrCreate checks that metric constructors are idempotent
// by name and panic on kind conflicts.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := reg.Counter("dup_total", "")
	b := reg.Counter("dup_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	reg.Gauge("dup_total", "")
}

// TestWritePrometheus checks the text exposition of all three metric
// kinds, including cumulative histogram buckets.
func TestWritePrometheus(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("batches_total", "processed batches").Add(7)
	reg.Gauge("nodes", "graph order").Set(42.5)
	h := reg.Histogram("lat_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE batches_total counter\nbatches_total 7\n",
		"# TYPE nodes gauge\nnodes 42.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="2"} 2`,
		`lat_seconds_bucket{le="4"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 105\n",
		"lat_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestExpvarFunc checks the expvar snapshot shape.
func TestExpvarFunc(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("c_total", "").Add(3)
	reg.Histogram("h_seconds", "", []float64{1, 2}).Observe(1.5)
	snap, ok := reg.ExpvarFunc()().(map[string]any)
	if !ok {
		t.Fatal("expvar snapshot is not a map")
	}
	if snap["c_total"] != uint64(3) {
		t.Fatalf("c_total = %v", snap["c_total"])
	}
	hs, ok := snap["h_seconds"].(map[string]any)
	if !ok || hs["count"] != uint64(1) {
		t.Fatalf("h_seconds snapshot = %v", snap["h_seconds"])
	}
}
