package telemetry_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"sagabench/internal/telemetry"
)

// TestServerEndpoints boots the observability endpoint on an ephemeral
// port and checks /metrics, /debug/vars, and /debug/pprof/ respond with
// the expected content while the process runs.
func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("saga_batches_total", "").Add(5)
	srv, err := telemetry.ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "saga_batches_total 5") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code=%d body[:80]=%q", code, body[:min(80, len(body))])
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
	if code, _ := get("/debug/pprof/heap?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap: code=%d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope: code=%d, want 404", code)
	}
	// No TraceSource attached: /trace explains itself with a 404.
	if code, _ := get("/trace"); code != http.StatusNotFound {
		t.Fatalf("/trace without source: code=%d, want 404", code)
	}
}

// fakeTraceSource serves a canned trace document.
type fakeTraceSource struct{ doc string }

func (f fakeTraceSource) WriteTrace(w io.Writer) error {
	_, err := io.WriteString(w, f.doc)
	return err
}

// TestServerTraceEndpoint checks /trace streams the attached source with
// download headers.
func TestServerTraceEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := telemetry.ListenAndServe("127.0.0.1:0", reg, fakeTraceSource{doc: `{"traceEvents":[]}`})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != `{"traceEvents":[]}` {
		t.Fatalf("/trace: code=%d body=%q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/trace content-type %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "saga-trace.json") {
		t.Fatalf("/trace content-disposition %q", cd)
	}
}
