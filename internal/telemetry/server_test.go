package telemetry_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"sagabench/internal/telemetry"
)

// TestServerEndpoints boots the observability endpoint on an ephemeral
// port and checks /metrics, /debug/vars, and /debug/pprof/ respond with
// the expected content while the process runs.
func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("saga_batches_total", "").Add(5)
	srv, err := telemetry.ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "saga_batches_total 5") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code=%d body[:80]=%q", code, body[:min(80, len(body))])
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
	if code, _ := get("/debug/pprof/heap?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap: code=%d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope: code=%d, want 404", code)
	}
}
