package telemetry_test

import (
	"testing"
	"time"

	"sagabench/internal/telemetry"
)

// These assertions cross-validate the saga:hotpath annotations on the
// metric primitives (statically enforced by sagavet's hotalloc analyzer):
// counter/gauge updates sit inside kernel inner loops and per-batch
// pipeline phases, so they must stay off the allocator.

func TestMetricOpsDoNotAllocate(t *testing.T) {
	var c telemetry.Counter
	var g telemetry.Gauge
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
	}); allocs != 0 {
		t.Errorf("counter/gauge ops allocate %.1f times per round", allocs)
	}
}

// TestNilRecorderOpsDoNotAllocate pins down the documented contract that
// a nil *Recorder is a near-free no-op: the disabled-telemetry pipeline
// calls these on every batch and every query, so the nil path must not
// allocate either.
func TestNilRecorderOpsDoNotAllocate(t *testing.T) {
	var r *telemetry.Recorder
	if allocs := testing.AllocsPerRun(1000, func() {
		r.RecordQueryMiss()
		r.RecordQuerySession(12, 3)
		r.RecordEpochPublish(1, 0, 2)
		r.RecordDurableRetry("wal-append")
		r.RecordWALAppend(128, time.Millisecond)
		r.RecordQueueDepth(7)
		r.RecordHealthState(1)
	}); allocs != 0 {
		t.Errorf("nil-recorder ops allocate %.1f times per round", allocs)
	}
}
