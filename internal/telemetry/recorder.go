package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Recorder is the pipeline's hook point: the core package calls
// RecordBatch once per processed batch, and the recorder fans the event
// out to the metric registry and the optional JSONL event sink.
//
// A nil *Recorder is a valid disabled recorder — every method short-
// circuits — and the core pipeline additionally guards its event
// assembly behind a nil check so the disabled path performs no
// allocation at all.
type Recorder struct {
	reg  *Registry
	sink *EventSink

	batches        *Counter
	edges          *Counter
	deletes        *Counter
	affected       *Counter
	processed      *Counter
	edgesTraversed *Counter
	triggered      *Counter
	skipped        *Counter
	nodes          *Gauge

	updateLat   *Histogram
	computeLat  *Histogram
	totalLat    *Histogram
	triggerFrac *Histogram

	dsIngested  *Counter
	dsInserted  *Counter
	dsScan      *Counter
	dsConflicts *Counter
	dsMetaOps   *Counter
	dsPromos    *Counter
	dsDemos     *Counter
	dsImbalance *Gauge

	viewRefreshLat *Histogram
	viewDirtyFrac  *Gauge
	viewDelta      *Counter
	viewFull       *Counter

	// Compute-phase worker skew: the straggler ratio (max/mean busy time
	// across the workers that did any work in the batch) and lazily
	// created per-worker busy gauges, so edge-balanced scheduling skew
	// is visible in /metrics without loading a trace.
	straggler       *Gauge
	stragglerHist   *Histogram
	workerBusyTotal *Counter
	workerMu        sync.Mutex
	workerBusy      []*Gauge

	// Non-blocking query serving: epoch publications, the fate of the
	// double buffers behind superseded snapshots, and the reader side
	// (sessions, per-session query counts, pin-time staleness).
	epochsPublished *Counter
	epochReclaimed  *Counter
	epochDropped    *Counter
	epochPins       *Gauge
	queries         *Counter
	querySessions   *Counter
	queryMisses     *Counter
	queryStaleness  *Gauge

	walAppends   *Counter
	walBytes     *Counter
	walFsyncLat  *Histogram
	checkpoints  *Counter
	recoveries   *Counter
	replayed     *Counter
	quarantines  *Counter
	applyRetries *Counter

	// Supervised-runtime health: the state machine's current state (by
	// ordinal) and transition count, durable I/O retries, watchdog fires,
	// supervised phase restarts, and the ingest queue's shed/refusal/depth.
	healthState       *Gauge
	healthTransitions *Counter
	durableRetries    *Counter
	watchdogFires     *Counter
	phaseRestarts     *Counter
	shedBatches       *Counter
	refusedIngest     *Counter
	queueDepth        *Gauge
}

// NewRecorder builds a recorder over reg (required) and sink (optional:
// nil disables the event log but keeps the metrics).
func NewRecorder(reg *Registry, sink *EventSink) *Recorder {
	r := &Recorder{reg: reg, sink: sink}
	r.batches = reg.Counter("saga_batches_total", "Batches processed")
	r.edges = reg.Counter("saga_edges_ingested_total", "Edge insertions offered to the update phase")
	r.deletes = reg.Counter("saga_edges_deleted_total", "Edge deletions applied by mixed batches")
	r.affected = reg.Counter("saga_affected_vertices_total", "Deduplicated affected vertices handed to the compute phase")
	r.processed = reg.Counter("saga_vertices_processed_total", "Vertex recomputations performed by the compute phase")
	r.edgesTraversed = reg.Counter("saga_edges_traversed_total", "Neighbor records read by the compute phase")
	r.triggered = reg.Counter("saga_inc_triggered_total", "INC recomputations that propagated past the triggering threshold")
	r.skipped = reg.Counter("saga_inc_skipped_total", "INC recomputations absorbed by the triggering threshold")
	r.nodes = reg.Gauge("saga_graph_nodes", "Vertices in the evolving graph")
	r.updateLat = reg.Histogram("saga_update_latency_seconds", "Update phase latency per batch", nil)
	r.computeLat = reg.Histogram("saga_compute_latency_seconds", "Compute phase latency per batch", nil)
	r.totalLat = reg.Histogram("saga_batch_latency_seconds", "Batch processing latency per batch (Equation 1)", nil)
	r.triggerFrac = reg.Histogram("saga_inc_trigger_fraction", "Per-batch fraction of processed vertices that triggered", FractionBuckets)
	r.dsIngested = reg.Counter("saga_ds_edges_ingested_total", "UpdateProfile: edge records offered to the store")
	r.dsInserted = reg.Counter("saga_ds_inserted_total", "UpdateProfile: records that created a new adjacency entry")
	r.dsScan = reg.Counter("saga_ds_scan_steps_total", "UpdateProfile: elements examined by pre-insert searches")
	r.dsConflicts = reg.Counter("saga_ds_lock_conflicts_total", "UpdateProfile: lock acquisitions that found the lock held")
	r.dsMetaOps = reg.Counter("saga_ds_meta_ops_total", "UpdateProfile: degree-query and flush meta-operations")
	r.dsPromos = reg.Counter("saga_ds_tier_promotions_total", "UpdateProfile: per-vertex representation upgrades in degree-adaptive structures")
	r.dsDemos = reg.Counter("saga_ds_tier_demotions_total", "UpdateProfile: per-vertex representation downgrades under deletions")
	r.dsImbalance = reg.Gauge("saga_ds_chunk_imbalance", "UpdateProfile: max/mean chunk load of the latest batch")
	r.straggler = reg.Gauge("saga_compute_straggler_ratio", "Max/mean worker busy time of the latest batch's compute phase (1.0 = balanced)")
	r.stragglerHist = reg.Histogram("saga_compute_straggler", "Per-batch compute-phase straggler ratio (max/mean worker busy time)", StragglerBuckets)
	r.workerBusyTotal = reg.Counter("saga_compute_worker_busy_ns_total", "Summed compute-phase worker busy time across all workers and batches")
	r.viewRefreshLat = reg.Histogram("saga_view_refresh_seconds", "Compute-view CSR mirror refresh latency per batch", nil)
	r.viewDirtyFrac = reg.Gauge("saga_view_dirty_fraction", "Fraction of vertices re-flattened by the latest view refresh")
	r.viewDelta = reg.Counter("saga_view_delta_rebuilds_total", "View refreshes that re-flattened only dirty vertices")
	r.viewFull = reg.Counter("saga_view_full_rebuilds_total", "View refreshes that rebuilt the whole mirror")
	r.epochsPublished = reg.Counter("saga_epochs_published_total", "Snapshots published for non-blocking queries")
	r.epochReclaimed = reg.Counter("saga_epoch_buffers_reclaimed_total", "Superseded snapshots whose buffers drained and returned to the double buffer")
	r.epochDropped = reg.Counter("saga_epoch_buffers_dropped_total", "Superseded snapshots abandoned to the GC because readers still pinned them")
	r.epochPins = reg.Gauge("saga_query_pinned_handles", "Query handles currently pinning an epoch")
	r.queries = reg.Counter("saga_queries_total", "Reads served from pinned epochs")
	r.querySessions = reg.Counter("saga_query_sessions_total", "Pin/release query sessions completed")
	r.queryMisses = reg.Counter("saga_query_misses_total", "Query acquisitions that found no published epoch")
	r.queryStaleness = reg.Gauge("saga_query_staleness_batches", "Batches behind the latest epoch at the most recent session release")
	r.walAppends = reg.Counter("saga_wal_appends_total", "Batch records appended to the write-ahead log")
	r.walBytes = reg.Counter("saga_wal_bytes_total", "Bytes appended to the write-ahead log")
	r.walFsyncLat = reg.Histogram("saga_wal_fsync_seconds", "WAL fsync latency per flushed append", nil)
	r.checkpoints = reg.Counter("saga_checkpoints_total", "Checkpoint snapshots written")
	r.recoveries = reg.Counter("saga_recoveries_total", "Crash recoveries performed (checkpoint load + WAL replay)")
	r.replayed = reg.Counter("saga_replayed_batches_total", "WAL batches replayed during recovery")
	r.quarantines = reg.Counter("saga_quarantined_batches_total", "Poison batches quarantined to .poison files")
	r.applyRetries = reg.Counter("saga_apply_retries_total", "Batch apply retries after a recovered failure")
	r.healthState = reg.Gauge("saga_health_state", "Pipeline health state ordinal (0 healthy, 1 degraded-durability, 2 read-only, 3 failed)")
	r.healthTransitions = reg.Counter("saga_health_transitions_total", "Health state machine transitions")
	r.durableRetries = reg.Counter("saga_durable_io_retries_total", "Durable I/O retries (WAL appends/fsyncs and checkpoint writes)")
	r.watchdogFires = reg.Counter("saga_watchdog_fires_total", "Phase watchdog deadline expirations")
	r.phaseRestarts = reg.Counter("saga_phase_restarts_total", "Supervised pipeline rebuilds after a watchdog fire or phase panic")
	r.shedBatches = reg.Counter("saga_shed_batches_total", "Batches dropped by the bounded ingest queue's shed policy")
	r.refusedIngest = reg.Counter("saga_refused_batches_total", "Batches refused because the pipeline was read-only or failed")
	r.queueDepth = reg.Gauge("saga_ingest_queue_depth", "Batches waiting in the bounded ingest queue")
	return r
}

// RecordHealthState folds a health transition into the metrics: the new
// state's ordinal and one transition count.
func (r *Recorder) RecordHealthState(ordinal int) {
	if r == nil {
		return
	}
	r.healthState.Set(float64(ordinal))
	r.healthTransitions.Inc()
}

// RecordDurableRetry counts one durable I/O retry (op identifies the
// retried unit; the aggregate counter keeps cardinality flat and the
// health report carries the per-op detail).
func (r *Recorder) RecordDurableRetry(op string) {
	if r == nil {
		return
	}
	_ = op
	r.durableRetries.Inc()
}

// RecordWatchdogFire counts a phase watchdog expiration.
func (r *Recorder) RecordWatchdogFire() {
	if r == nil {
		return
	}
	r.watchdogFires.Inc()
}

// RecordPhaseRestart counts a supervised pipeline rebuild.
func (r *Recorder) RecordPhaseRestart() {
	if r == nil {
		return
	}
	r.phaseRestarts.Inc()
}

// RecordShedBatch counts a batch dropped by the shed policy.
func (r *Recorder) RecordShedBatch() {
	if r == nil {
		return
	}
	r.shedBatches.Inc()
}

// RecordRefusedIngest counts a batch refused in read-only/failed state.
func (r *Recorder) RecordRefusedIngest() {
	if r == nil {
		return
	}
	r.refusedIngest.Inc()
}

// RecordQueueDepth tracks the bounded ingest queue's occupancy.
func (r *Recorder) RecordQueueDepth(n int) {
	if r == nil {
		return
	}
	r.queueDepth.Set(float64(n))
}

// RecordViewRefresh folds one compute-view mirror refresh into the
// metrics: its latency, the fraction of vertices it re-flattened, and
// whether it was a delta or a full rebuild.
func (r *Recorder) RecordViewRefresh(d time.Duration, dirtyFrac float64, full bool) {
	if r == nil {
		return
	}
	r.viewRefreshLat.Observe(d.Seconds())
	r.viewDirtyFrac.Set(dirtyFrac)
	if full {
		r.viewFull.Inc()
	} else {
		r.viewDelta.Inc()
	}
}

// RecordEpochPublish folds one epoch publication into the metrics.
// reclaimed/dropped are the publication's deltas of the buffer-fate
// counters (at most one of them is 1), and pins is the number of handles
// currently pinning epochs.
func (r *Recorder) RecordEpochPublish(reclaimed, dropped uint64, pins int64) {
	if r == nil {
		return
	}
	r.epochsPublished.Inc()
	r.epochReclaimed.Add(reclaimed)
	r.epochDropped.Add(dropped)
	r.epochPins.Set(float64(pins))
}

// RecordQuerySession folds one completed pin/release session into the
// metrics: how many reads it served and how many batches stale it was
// when released.
func (r *Recorder) RecordQuerySession(queries, staleness uint64) {
	if r == nil {
		return
	}
	r.querySessions.Inc()
	r.queries.Add(queries)
	r.queryStaleness.Set(float64(staleness))
}

// RecordQueryMiss counts an acquisition that found no published epoch.
func (r *Recorder) RecordQueryMiss() {
	if r == nil {
		return
	}
	r.queryMisses.Inc()
}

// RecordWALAppend folds one WAL append into the metrics. fsync is the
// measured fsync latency, zero when the policy skipped the flush.
func (r *Recorder) RecordWALAppend(bytes int, fsync time.Duration) {
	if r == nil {
		return
	}
	r.walAppends.Inc()
	r.walBytes.Add(uint64(bytes))
	if fsync > 0 {
		r.walFsyncLat.Observe(fsync.Seconds())
	}
}

// RecordCheckpoint counts a written checkpoint snapshot.
func (r *Recorder) RecordCheckpoint() {
	if r == nil {
		return
	}
	r.checkpoints.Inc()
}

// RecordRecovery counts one recovery pass and the batches it replayed.
func (r *Recorder) RecordRecovery(replayed int) {
	if r == nil {
		return
	}
	r.recoveries.Inc()
	r.replayed.Add(uint64(replayed))
}

// RecordQuarantine counts a poison batch written to quarantine.
func (r *Recorder) RecordQuarantine() {
	if r == nil {
		return
	}
	r.quarantines.Inc()
}

// RecordRetry counts a batch apply retry.
func (r *Recorder) RecordRetry() {
	if r == nil {
		return
	}
	r.applyRetries.Inc()
}

// Registry exposes the metric registry (nil for a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// RecordBatch folds one batch event into the metrics and appends it to
// the event log. The event's timestamp is stamped here if unset.
func (r *Recorder) RecordBatch(ev *BatchEvent) {
	if r == nil {
		return
	}
	if ev.TimeUnixMS == 0 {
		ev.TimeUnixMS = time.Now().UnixMilli()
	}
	r.batches.Inc()
	r.edges.Add(uint64(ev.Edges))
	r.deletes.Add(uint64(ev.Deletes))
	r.affected.Add(uint64(ev.Affected))
	r.processed.Add(ev.Processed)
	r.edgesTraversed.Add(ev.EdgesTraversed)
	r.triggered.Add(ev.Triggered)
	r.skipped.Add(ev.Skipped)
	r.nodes.Set(float64(ev.Nodes))
	r.updateLat.Observe(float64(ev.UpdateNS) / 1e9)
	r.computeLat.Observe(float64(ev.ComputeNS) / 1e9)
	r.totalLat.Observe(float64(ev.UpdateNS+ev.ComputeNS) / 1e9)
	if ev.Triggered+ev.Skipped > 0 {
		r.triggerFrac.Observe(ev.TriggerFrac)
	}
	r.dsIngested.Add(ev.DSEdgesIngested)
	r.dsInserted.Add(ev.DSInserted)
	r.dsScan.Add(ev.DSScanSteps)
	r.dsConflicts.Add(ev.DSLockConflicts)
	r.dsMetaOps.Add(ev.DSMetaOps)
	r.dsPromos.Add(ev.DSTierPromotions)
	r.dsDemos.Add(ev.DSTierDemotions)
	if ev.DSImbalance > 0 {
		r.dsImbalance.Set(ev.DSImbalance)
	}
	if ev.Straggler > 0 {
		r.straggler.Set(ev.Straggler)
		r.stragglerHist.Observe(ev.Straggler)
	}
	if len(ev.WorkerBusyNS) > 0 {
		var sum uint64
		for _, ns := range ev.WorkerBusyNS {
			if ns > 0 {
				sum += uint64(ns)
			}
		}
		r.workerBusyTotal.Add(sum)
		for w, ns := range ev.WorkerBusyNS {
			r.workerGauge(w).Set(float64(ns) / 1e9)
		}
	}
	if r.sink != nil {
		r.sink.Write(ev) // first error is sticky inside the sink
	}
}

// workerGauge returns (creating on first use) the busy-seconds gauge for
// worker slot w. The registry has no label support, so worker identity is
// encoded in the metric name; slots are bounded by the configured thread
// count, keeping the cardinality small.
func (r *Recorder) workerGauge(w int) *Gauge {
	r.workerMu.Lock()
	defer r.workerMu.Unlock()
	for len(r.workerBusy) <= w {
		i := len(r.workerBusy)
		g := r.reg.Gauge(fmt.Sprintf("saga_compute_worker_busy_seconds_w%02d", i),
			fmt.Sprintf("Compute-phase busy time of worker slot %d in the latest batch", i))
		r.workerBusy = append(r.workerBusy, g)
	}
	return r.workerBusy[w]
}

// Flush drains the event sink (no-op without one).
func (r *Recorder) Flush() error {
	if r == nil || r.sink == nil {
		return nil
	}
	return r.sink.Flush()
}

// Close flushes and closes the event sink (no-op without one).
func (r *Recorder) Close() error {
	if r == nil || r.sink == nil {
		return nil
	}
	return r.sink.Close()
}
