package telemetry_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sagabench/internal/telemetry"
)

// TestEventLogRoundTrip writes events through the sink and decodes them
// back, checking field-for-field equality and one-line-per-event framing.
func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewEventSink(&buf)
	want := []telemetry.BatchEvent{
		{
			TimeUnixMS: 1700000000000, Batch: 0, Repeat: 1, Edges: 1000, Nodes: 512,
			UpdateNS: 1234567, ComputeNS: 7654321, Affected: 321, Iterations: 3,
			Processed: 4096, EdgesTraversed: 65536, Triggered: 1024, Skipped: 3072,
			TriggerFrac: 0.25, DSEdgesIngested: 1000, DSInserted: 990,
			DSScanSteps: 12345, DSLockConflicts: 17, DSMetaOps: 5, DSImbalance: 1.5,
		},
		{TimeUnixMS: 1700000000100, Batch: 1, Edges: 500, Deletes: 50, Nodes: 600, UpdateNS: 1, ComputeNS: 2},
	}
	for i := range want {
		if err := sink.Write(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 2 {
		t.Fatalf("sink count = %d", sink.Count())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("JSONL framing: %d lines, want 2", lines)
	}
	got, err := telemetry.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Total().Nanoseconds() != want[0].UpdateNS+want[0].ComputeNS {
		t.Fatal("Total() mismatch")
	}
}

// TestRecorderNilSafe checks that every method of a nil recorder is a
// no-op rather than a panic.
func TestRecorderNilSafe(t *testing.T) {
	var r *telemetry.Recorder
	r.RecordBatch(&telemetry.BatchEvent{})
	if r.Registry() != nil {
		t.Fatal("nil recorder registry != nil")
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderDrivesMetrics checks that RecordBatch lands in both the
// registry and the sink, and stamps missing timestamps.
func TestRecorderDrivesMetrics(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(reg, telemetry.NewEventSink(&buf))
	rec.RecordBatch(&telemetry.BatchEvent{
		Edges: 10, Nodes: 5, UpdateNS: 2_000_000, ComputeNS: 3_000_000,
		Affected: 4, Processed: 8, Triggered: 2, Skipped: 6, TriggerFrac: 0.25,
	})
	rec.RecordBatch(&telemetry.BatchEvent{Edges: 20, Nodes: 9, UpdateNS: 1_000_000, ComputeNS: 1_000_000})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"saga_batches_total 2",
		"saga_edges_ingested_total 30",
		"saga_graph_nodes 9",
		"saga_batch_latency_seconds_count 2",
		"saga_inc_triggered_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	evs, err := telemetry.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("sink got %d events", len(evs))
	}
	if evs[0].TimeUnixMS == 0 {
		t.Fatal("timestamp not stamped")
	}
}
