package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-global expvar namespace: expvar.Publish
// panics on duplicate names, and tests may build several servers.
var expvarOnce sync.Once

// TraceSource serves an on-demand dump of recent batch traces — the
// flight-recorder ring rendered as Chrome trace-event JSON (Perfetto
// loads it directly). internal/trace.Tracer implements it; the telemetry
// package stays one layer below and only knows the interface.
type TraceSource interface {
	WriteTrace(w io.Writer) error
}

// NewMux builds the observability mux:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON (reg published under "saga")
//	/debug/pprof/  live CPU/heap/goroutine profiling (net/http/pprof)
//	/trace         flight-recorder dump as Perfetto-loadable JSON (when a
//	               TraceSource is attached)
//	/              endpoint index
//
// The optional trailing TraceSource attaches the /trace endpoint (only
// the first non-nil source is used).
func NewMux(reg *Registry, trace ...TraceSource) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("saga", reg.ExpvarFunc())
	})
	var ts TraceSource
	for _, t := range trace {
		if t != nil {
			ts = t
			break
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if ts == nil {
			http.Error(w, "tracing is not enabled for this run (start with a tracer attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="saga-trace.json"`)
		if err := ts.WriteTrace(w); err != nil {
			// Headers are gone; best we can do is abort the body.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "saga telemetry\n/metrics\n/debug/vars\n/debug/pprof/\n/trace\n")
	})
	return mux
}

// Server is a started observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener; in-flight requests are abandoned.
func (s *Server) Close() error { return s.srv.Close() }

// ListenAndServe binds addr (e.g. ":8090") and serves the observability
// mux in a background goroutine, so a streaming run can be scraped and
// profiled while it executes. The returned server reports the bound
// address and must be Closed by the caller. The optional trailing
// TraceSource attaches the /trace endpoint.
func ListenAndServe(addr string, reg *Registry, trace ...TraceSource) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{srv: &http.Server{Handler: NewMux(reg, trace...)}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}
