package perfmon_test

import (
	"testing"

	"sagabench/internal/archsim"
	"sagabench/internal/compute"
	"sagabench/internal/core"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/perfmon"
)

func profileOf(t *testing.T, dataset, dsName string) *perfmon.Report {
	t.Helper()
	// Tiny datasets exercise a proportionally scaled machine so working
	// sets overflow the caches the way the paper's full-size graphs
	// overflowed the real ones.
	mc := archsim.ScaledMachine(128)
	rep, err := perfmon.Profile(perfmon.Config{
		Run: core.RunConfig{
			PipelineConfig: core.PipelineConfig{
				DataStructure: dsName,
				Algorithm:     "cc",
				Model:         compute.INC,
				Threads:       2,
			},
			Dataset: gen.MustDataset(dataset, gen.ProfileDefault),
			Seed:    21,
		},
		Threads: 16,
		Machine: &mc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestUpdateVsComputeCaches reproduces the paper's Fig 10 finding on the
// profiled run: the compute phase has the higher LLC hit ratio and the
// update phase the higher L2 hit ratio.
func TestUpdateVsComputeCaches(t *testing.T) {
	rep := profileOf(t, "lj", "adjshared")
	const p3 = 2
	upd := rep.Traffic(p3, perfmon.Update)
	cmp := rep.Traffic(p3, perfmon.Compute)
	if cmp.LLCHitRatio() <= upd.LLCHitRatio() {
		t.Errorf("compute LLC hit %.3f should exceed update %.3f",
			cmp.LLCHitRatio(), upd.LLCHitRatio())
	}
	if upd.L2HitRatio() <= cmp.L2HitRatio() {
		t.Errorf("update L2 hit %.3f should exceed compute %.3f",
			upd.L2HitRatio(), cmp.L2HitRatio())
	}
	if upd.L2MPKI() >= cmp.L2MPKI() {
		t.Errorf("update L2 MPKI %.1f should be below compute %.1f",
			upd.L2MPKI(), cmp.L2MPKI())
	}
}

// TestUpdateVsComputeUtilization reproduces Fig 9b/c: at full machine
// width the compute phase consumes more bandwidth and QPI than the update
// phase.
func TestUpdateVsComputeUtilization(t *testing.T) {
	rep := profileOf(t, "lj", "adjshared")
	const cores = 32
	for stage := 0; stage < 3; stage++ {
		bu := rep.BandwidthGBs(stage, perfmon.Update, cores)
		bc := rep.BandwidthGBs(stage, perfmon.Compute, cores)
		if bc <= bu {
			t.Errorf("stage %d: compute bandwidth %.1f <= update %.1f", stage, bc, bu)
		}
		qu := rep.QPIPercent(stage, perfmon.Update, cores)
		qc := rep.QPIPercent(stage, perfmon.Compute, cores)
		if qc <= qu {
			t.Errorf("stage %d: compute QPI%% %.1f <= update %.1f", stage, qc, qu)
		}
	}
}

// TestTailScalingContrast reproduces Fig 9a's contrast: the heavy-tailed
// update (talk on DAH) scales worse than the short-tailed update (lj on
// AS), and compute scales better than either update phase.
func TestTailScalingContrast(t *testing.T) {
	cores := []int{4, 8, 12, 16, 20, 24, 28}
	stail := profileOf(t, "lj", "adjshared")
	htail := profileOf(t, "talk", "dah")

	su := stail.ScalingCurve(perfmon.Update, cores)
	hu := htail.ScalingCurve(perfmon.Update, cores)
	sc := stail.ScalingCurve(perfmon.Compute, cores)

	last := len(cores) - 1
	if !(sc[last] > su[last]) {
		t.Errorf("compute %.2f should out-scale short-tail update %.2f", sc[last], su[last])
	}
	if !(su[last] > hu[last]) {
		t.Errorf("short-tail update %.2f should out-scale heavy-tail update %.2f", su[last], hu[last])
	}
}

// TestHeavyTailUpdateUtilization reproduces Section VI-B: heavy-tailed
// update barely consumes bandwidth and QPI compared to short-tailed update.
func TestHeavyTailUpdateUtilization(t *testing.T) {
	stail := profileOf(t, "lj", "adjshared")
	htail := profileOf(t, "wiki", "dah")
	const cores = 32
	const p3 = 2
	if hb, sb := htail.BandwidthGBs(p3, perfmon.Update, cores), stail.BandwidthGBs(p3, perfmon.Update, cores); hb >= sb {
		t.Errorf("heavy-tail update bandwidth %.2f should be below short-tail %.2f", hb, sb)
	}
}

// TestUndirectedProfile exercises the single-copy (undirected) replay path
// end to end on orkut.
func TestUndirectedProfile(t *testing.T) {
	mc := archsim.ScaledMachine(256)
	rep, err := perfmon.Profile(perfmon.Config{
		Run: core.RunConfig{
			PipelineConfig: core.PipelineConfig{
				DataStructure: "adjshared",
				Algorithm:     "cc",
				Model:         compute.INC,
				Threads:       2,
			},
			Dataset: gen.MustDataset("orkut", gen.ProfileTiny),
			Seed:    4,
		},
		Threads: 8,
		Machine: &mc,
	})
	if err != nil {
		t.Fatal(err)
	}
	for stage := 0; stage < 3; stage++ {
		for _, ph := range []perfmon.Phase{perfmon.Update, perfmon.Compute} {
			tr := rep.Traffic(stage, ph)
			if tr.Accesses == 0 || tr.Instructions == 0 {
				t.Fatalf("stage %d %s: empty traffic", stage, ph)
			}
		}
	}
	// Undirected profiles have no separate in-copy loads.
	if rep.Profiles[2][perfmon.Update].InLoads != nil {
		t.Fatal("undirected profile should carry a single copy's loads")
	}
	if got := rep.Profiles[2][perfmon.Update].HotIn; got != 0 {
		t.Fatalf("undirected HotIn=%v want 0", got)
	}
}

func TestPhaseString(t *testing.T) {
	if perfmon.Update.String() != "update" || perfmon.Compute.String() != "compute" {
		t.Fatal("phase labels wrong")
	}
}
