// Package perfmon is the PCM-style architecture profiler: it attaches an
// archsim Replayer to a streaming run and produces the per-stage hardware
// characterization of paper Section VI — memory bandwidth and QPI
// utilization (Fig 9b/c), core-count scaling curves (Fig 9a), and L2/LLC
// hit ratios and MPKI (Fig 10) — separately for the update and compute
// phases.
package perfmon

import (
	"sagabench/internal/archsim"
	"sagabench/internal/core"
	"sagabench/internal/graph"
	"sagabench/internal/stats"
)

// Phase distinguishes the two phases of a batch.
type Phase int

// Phases.
const (
	Update Phase = iota
	Compute
)

func (p Phase) String() string {
	if p == Update {
		return "update"
	}
	return "compute"
}

// Config describes a profiled run.
type Config struct {
	// Run is the experiment; its OnBatch must be unset (the profiler
	// installs its own observer).
	Run core.RunConfig
	// Threads is the replayed hardware-thread count (default 64, the
	// paper's full machine).
	Threads int
	// Machine overrides the simulated platform (default PaperMachine).
	Machine *archsim.MachineConfig
}

// Report is the pooled per-stage architecture characterization.
type Report struct {
	Model archsim.PerfModel
	// Profiles[stage][phase] pools the batches of stage P1..P3.
	Profiles [3][2]archsim.PhaseProfile
}

// Profile runs the experiment once with the replayer attached.
func Profile(cfg Config) (*Report, error) {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 64
	}
	mc := archsim.PaperMachine()
	if cfg.Machine != nil {
		mc = *cfg.Machine
	}
	rep, err := archsim.NewReplayer(archsim.ReplayConfig{
		Machine:       mc,
		Threads:       threads,
		DataStructure: cfg.Run.DataStructure,
		Directed:      cfg.Run.Dataset.Directed,
		BlockSize:     cfg.Run.DS.BlockSize,
		FlushThreshold: func() int {
			if cfg.Run.DS.FlushThreshold > 0 {
				return cfg.Run.DS.FlushThreshold
			}
			return 0
		}(),
	})
	if err != nil {
		return nil, err
	}

	kind := archsim.PhaseUpdateShared
	if rep.ChunkedStyle() {
		kind = archsim.PhaseUpdateChunked
	}

	type batchSample struct {
		upd, cmp          archsim.Traffic
		outLoads, inLoads []archsim.VertexLoad
		hotOut, hotIn     float64
	}
	var samples []batchSample

	runCfg := cfg.Run
	runCfg.Repeats = 1 // the replay is deterministic given the stream
	runCfg.OnBatch = func(_ int, edges graph.Batch, p *core.Pipeline, _ core.BatchLatency) {
		var s batchSample
		s.upd = rep.ReplayUpdate(edges)
		srcs := make([]uint32, len(edges))
		dsts := make([]uint32, len(edges))
		for i, e := range edges {
			srcs[i] = uint32(e.Src)
			dsts[i] = uint32(e.Dst)
		}
		if cfg.Run.Dataset.Directed {
			s.outLoads = archsim.LoadsOf(srcs)
			s.inLoads = archsim.LoadsOf(dsts)
			s.hotOut = archsim.HotnessOf(s.outLoads)
			s.hotIn = archsim.HotnessOf(s.inLoads)
		} else {
			// Undirected: both orientations land in one copy.
			s.outLoads = archsim.LoadsOf(append(append([]uint32{}, srcs...), dsts...))
			s.hotOut = archsim.HotnessOf(s.outLoads)
		}
		aff := affectedOf(edges)
		es := p.Engine().Stats()
		s.cmp = rep.ReplayCompute(aff, archsim.ComputeTrace{
			Incremental:     p.Engine().Model() == "inc",
			NeedsDegree:     p.Engine().Name() == "pr",
			ProcessedBudget: es.Processed,
		})
		samples = append(samples, s)
	}
	if _, err := core.Run(runCfg); err != nil {
		return nil, err
	}

	r := &Report{Model: archsim.DefaultPerfModel()}
	r.Model.Machine = mc
	directed := cfg.Run.Dataset.Directed
	for si, rg := range stats.Stages(len(samples)) {
		up := archsim.PhaseProfile{Kind: kind}
		cp := archsim.PhaseProfile{Kind: archsim.PhaseCompute}
		var hotOutSum, hotInSum float64
		n := 0
		for _, s := range samples[rg[0]:rg[1]] {
			up.Traffic.Add(s.upd)
			cp.Traffic.Add(s.cmp)
			up.OutLoads = archsim.MergeLoads(up.OutLoads, s.outLoads)
			if directed {
				up.InLoads = archsim.MergeLoads(up.InLoads, s.inLoads)
			}
			hotOutSum += s.hotOut
			hotInSum += s.hotIn
			n++
		}
		if n > 0 {
			// Hotness is a per-batch notion (locks contend within
			// a batch), so average it rather than recomputing over
			// the pooled histogram.
			up.HotOut = hotOutSum / float64(n)
			up.HotIn = hotInSum / float64(n)
		}
		r.Profiles[si][Update] = up
		r.Profiles[si][Compute] = cp
	}
	return r, nil
}

func affectedOf(b graph.Batch) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(b))
	var out []graph.NodeID
	for _, e := range b {
		if !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

// Traffic returns the pooled traffic of a stage/phase.
func (r *Report) Traffic(stage int, ph Phase) archsim.Traffic {
	return r.Profiles[stage][ph].Traffic
}

// BandwidthGBs models consumed DRAM bandwidth in GB/s at the core count
// (Fig 9b).
func (r *Report) BandwidthGBs(stage int, ph Phase, cores int) float64 {
	return r.Model.Bandwidth(r.Profiles[stage][ph], cores) / 1e9
}

// QPIPercent models QPI utilization in percent (Fig 9c).
func (r *Report) QPIPercent(stage int, ph Phase, cores int) float64 {
	return 100 * r.Model.QPIUtilization(r.Profiles[stage][ph], cores)
}

// ScalingCurve models the Fig 9a performance-vs-cores curve for the pooled
// final-stage profile of the phase.
func (r *Report) ScalingCurve(ph Phase, coreCounts []int) []float64 {
	return r.Model.ScalingCurve(r.Profiles[2][ph], coreCounts)
}
