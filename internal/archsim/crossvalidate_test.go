package archsim

import (
	"math/rand"
	"testing"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// TestShadowStingerBlocksMatchReal cross-validates the shadow layout
// against the real structure: after the same batches, the shadow's block
// chains must have exactly the real Stinger's block counts (the layout
// property that drives its pointer-chasing traffic).
func TestShadowStingerBlocksMatchReal(t *testing.T) {
	real := ds.MustNew("stinger", ds.Config{Directed: true, Threads: 1})
	r, err := NewReplayer(ReplayConfig{
		Machine:       PaperMachine(),
		Threads:       1,
		DataStructure: "stinger",
		Directed:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for b := 0; b < 5; b++ {
		batch := make(graph.Batch, 1200)
		for i := range batch {
			batch[i] = graph.Edge{
				Src:    graph.NodeID(rng.Intn(90)),
				Dst:    graph.NodeID(rng.Intn(90)),
				Weight: 1,
			}
		}
		real.Update(batch)
		r.ReplayUpdate(batch)
	}
	shadow := r.out.(*shadowStinger)
	type blockCounter interface{ NumBlocks(graph.NodeID) int }
	realStore := real.(*ds.TwoCopy).OutStore().(blockCounter)
	for v := 0; v < real.NumNodes(); v++ {
		want := realStore.NumBlocks(graph.NodeID(v))
		got := len(shadow.blocks[v])
		if got != want {
			t.Fatalf("vertex %d: shadow has %d blocks, real has %d", v, got, want)
		}
	}
}

// TestShadowDAHHighDegreeMatchesReal: the shadow must flush exactly the
// vertices the real DAH flushes (same threshold, same dedup), since the
// flush decides which table's access pattern a vertex generates.
func TestShadowDAHHighDegreeMatchesReal(t *testing.T) {
	const chunks = 4
	real := ds.MustNew("dah", ds.Config{Directed: true, Threads: 1, Chunks: chunks, FlushThreshold: 8})
	r, err := NewReplayer(ReplayConfig{
		Machine:        PaperMachine(),
		Threads:        1,
		Chunks:         chunks,
		DataStructure:  "dah",
		Directed:       true,
		FlushThreshold: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for b := 0; b < 4; b++ {
		batch := make(graph.Batch, 900)
		for i := range batch {
			src := graph.NodeID(rng.Intn(70))
			if rng.Intn(4) == 0 {
				src = 3 // force one hub over the threshold
			}
			batch[i] = graph.Edge{Src: src, Dst: graph.NodeID(rng.Intn(300)), Weight: 1}
		}
		real.Update(batch)
		r.ReplayUpdate(batch)
	}
	shadow := r.out.(*shadowDAH)
	type highChecker interface{ IsHighDegree(graph.NodeID) bool }
	realStore := real.(*ds.TwoCopy).OutStore().(highChecker)
	flushed := 0
	for v := 0; v < real.NumNodes(); v++ {
		id := graph.NodeID(v)
		want := realStore.IsHighDegree(id)
		_, got := shadow.chunk[shadow.chunkOf(id)].high[id]
		if got != want {
			t.Fatalf("vertex %d: shadow high=%v real high=%v", v, got, want)
		}
		if want {
			flushed++
		}
	}
	if flushed == 0 {
		t.Fatal("test graph produced no flushed vertices — threshold too high to exercise the path")
	}
}

// TestShadowHybridTiersMatchReal: the hybrid's traffic shape is decided by
// each vertex's tier and by the backing spans' sizes, so the shadow must
// reproduce the real store's tier assignment, array capacity, and index
// slot count vertex for vertex under the same insert stream.
func TestShadowHybridTiersMatchReal(t *testing.T) {
	const chunks, hashAt = 4, 8
	real := ds.MustNew("hybrid", ds.Config{Directed: true, Threads: 1, Chunks: chunks, FlushThreshold: hashAt})
	r, err := NewReplayer(ReplayConfig{
		Machine:        PaperMachine(),
		Threads:        1,
		Chunks:         chunks,
		DataStructure:  "hybrid",
		Directed:       true,
		FlushThreshold: hashAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	for b := 0; b < 4; b++ {
		batch := make(graph.Batch, 900)
		for i := range batch {
			src := graph.NodeID(rng.Intn(70))
			if rng.Intn(4) == 0 {
				src = 3 // force one hub over the threshold
			}
			batch[i] = graph.Edge{Src: src, Dst: graph.NodeID(rng.Intn(300)), Weight: 1}
		}
		real.Update(batch)
		r.ReplayUpdate(batch)
	}
	shadow := r.out.(*shadowHybrid)
	type layout interface {
		LayoutOf(graph.NodeID) (arrCap, idxSlots int)
	}
	realStore := real.(*ds.TwoCopy).OutStore().(layout)
	hashed := 0
	for v := 0; v < real.NumNodes(); v++ {
		id := graph.NodeID(v)
		wantArr, wantIdx := realStore.LayoutOf(id)
		if got := len(shadow.neigh[v]); got != real.OutDegree(id) {
			t.Fatalf("vertex %d: shadow degree %d real %d", v, got, real.OutDegree(id))
		}
		if shadow.arrCap[v] != wantArr {
			t.Fatalf("vertex %d: shadow array cap %d real %d", v, shadow.arrCap[v], wantArr)
		}
		if shadow.idxCap[v] != wantIdx {
			t.Fatalf("vertex %d: shadow index slots %d real %d", v, shadow.idxCap[v], wantIdx)
		}
		if wantIdx > 0 {
			hashed++
		}
	}
	if hashed == 0 {
		t.Fatal("test graph produced no hash-tier vertices — threshold too high to exercise the path")
	}
}

// TestShadowAdjDegreesMatchReal: vector lengths drive AS/AC scan traffic;
// they must track the real structure exactly.
func TestShadowAdjDegreesMatchReal(t *testing.T) {
	for _, name := range []string{"adjshared", "adjchunked"} {
		real := ds.MustNew(name, ds.Config{Directed: true, Threads: 1})
		r, err := NewReplayer(ReplayConfig{
			Machine:       PaperMachine(),
			Threads:       1,
			DataStructure: name,
			Directed:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(14))
		for b := 0; b < 4; b++ {
			batch := make(graph.Batch, 800)
			for i := range batch {
				batch[i] = graph.Edge{
					Src:    graph.NodeID(rng.Intn(60)),
					Dst:    graph.NodeID(rng.Intn(60)),
					Weight: 1,
				}
			}
			real.Update(batch)
			r.ReplayUpdate(batch)
		}
		shadow := r.out.(*shadowAdj)
		for v := 0; v < real.NumNodes(); v++ {
			if got, want := len(shadow.neigh[v]), real.OutDegree(graph.NodeID(v)); got != want {
				t.Fatalf("%s vertex %d: shadow degree %d real %d", name, v, got, want)
			}
		}
	}
}
