package archsim

import "sagabench/internal/graph"

// Hybrid shadow: the degree-adaptive three-tier layout. A small vertex's
// neighbors live inside its record (one or two cache lines at a fixed
// stride — the tier that makes uniform streams cheap); medium vertices use
// a dense pooled array (contiguous scan); high-degree vertices add a
// per-vertex Robin Hood index from destination to array position, so hub
// inserts touch one index slot plus the array tail instead of scanning.
// Growth mirrors the real store exactly — power-of-two array classes from
// minimum 8, index tables from 16 slots at 0.7 load — so the crossvalidate
// test can compare capacities slot for slot. Replay is insert-only, which
// on the real store means pools never have stock and every transition
// allocates; the shadow therefore allocates fresh spans too.

type shadowHybrid struct {
	alloc  *allocator
	chunks int

	inlineAt int // inline-tier capacity
	hashAt   int // array→hash promotion boundary (deg > hashAt)

	neigh   [][]graph.NodeID
	arrBase []uint64
	arrCap  []int // 0 = inline tier
	idxBase []uint64
	idxCap  []int // 0 = no index (inline or array tier)
}

const (
	// vertex{deg, inline [4]Neighbor, arr slice, idx ptr} rounded up.
	hybridRecBytes = 80
	// idxSlot{used, dst, pos} padded.
	hybridIdxSlotBytes = 16
	hybridMinArrCap    = 8
	hybridMinIdxSize   = 16
)

func newShadowHybrid(alloc *allocator, chunks, hashAt int) *shadowHybrid {
	if chunks <= 0 {
		chunks = 1
	}
	if hashAt <= 0 {
		hashAt = 32 // hybrid.DefaultHashThreshold
	}
	inlineAt := 4
	if hashAt <= inlineAt {
		inlineAt = hashAt - 1
	}
	return &shadowHybrid{alloc: alloc, chunks: chunks, inlineAt: inlineAt, hashAt: hashAt}
}

func (s *shadowHybrid) ensureNodes(n int) {
	for len(s.neigh) < n {
		s.neigh = append(s.neigh, nil)
		s.arrBase = append(s.arrBase, 0)
		s.arrCap = append(s.arrCap, 0)
		s.idxBase = append(s.idxBase, 0)
		s.idxCap = append(s.idxCap, 0)
	}
}

func (s *shadowHybrid) recordAddr(v graph.NodeID) uint64 {
	return headerBase + uint64(v)*hybridRecBytes
}

func (s *shadowHybrid) inlineAddr(v graph.NodeID, i int) uint64 {
	return s.recordAddr(v) + 8 + uint64(i)*adjSlotBytes
}

func (s *shadowHybrid) arrAddr(v graph.NodeID, i int) uint64 {
	return s.arrBase[v] + uint64(i)*adjSlotBytes
}

func (s *shadowHybrid) idxAddr(v graph.NodeID, dst graph.NodeID) uint64 {
	slot := hash64(uint64(dst)) % uint64(s.idxCap[v])
	return s.idxBase[v] + slot*hybridIdxSlotBytes
}

func hybridCapFor(n int) int {
	c := hybridMinArrCap
	for c < n {
		c *= 2
	}
	return c
}

func hybridIdxSizeFor(n int) int {
	size := hybridMinIdxSize
	for n*10 > size*7 {
		size *= 2
	}
	return size
}

// growArr mirrors appendGrow: swap to the next size class, copying every
// entry.
func (s *shadowHybrid) growArr(m *Machine, thread int, v graph.NodeID) {
	newCap := 2 * s.arrCap[v]
	newBase := s.alloc.alloc(uint64(newCap) * adjSlotBytes)
	for i := range s.neigh[v] {
		m.Access(thread, s.arrAddr(v, i), false, 1)
		m.Access(thread, newBase+uint64(i)*adjSlotBytes, true, 1)
	}
	s.arrBase[v], s.arrCap[v] = newBase, newCap
}

// growIdx mirrors dstIndex.grow: rehash every entry into a doubled table.
func (s *shadowHybrid) growIdx(m *Machine, thread int, v graph.NodeID) {
	for i := uint64(0); i < uint64(s.idxCap[v]); i++ {
		m.Access(thread, s.idxBase[v]+i*hybridIdxSlotBytes, false, 1)
	}
	s.idxCap[v] *= 2
	s.idxBase[v] = s.alloc.alloc(uint64(s.idxCap[v]) * hybridIdxSlotBytes)
	for _, nb := range s.neigh[v] {
		m.Access(thread, s.idxAddr(v, nb), true, 1)
	}
}

// promoteToArray moves the inline run into a fresh pooled array.
func (s *shadowHybrid) promoteToArray(m *Machine, thread int, v graph.NodeID, need int) {
	s.arrCap[v] = hybridCapFor(need)
	s.arrBase[v] = s.alloc.alloc(uint64(s.arrCap[v]) * adjSlotBytes)
	for i := range s.neigh[v] {
		m.Access(thread, s.inlineAddr(v, i), false, 1)
		m.Access(thread, s.arrAddr(v, i), true, 1)
	}
}

// promoteToHash builds the per-vertex index over the array (the array
// itself is untouched, like the real store).
func (s *shadowHybrid) promoteToHash(m *Machine, thread int, v graph.NodeID) {
	s.idxCap[v] = hybridIdxSizeFor(len(s.neigh[v]) + 1)
	s.idxBase[v] = s.alloc.alloc(uint64(s.idxCap[v]) * hybridIdxSlotBytes)
	for i, nb := range s.neigh[v] {
		m.Access(thread, s.arrAddr(v, i), false, 1)
		m.Access(thread, s.idxAddr(v, nb), true, instrSlotScan)
	}
}

func (s *shadowHybrid) insert(m *Machine, thread int, src, dst graph.NodeID) {
	// Read the vertex record: tier discriminants and degree live there.
	m.Access(thread, s.recordAddr(src), false, instrHeader)
	adj := s.neigh[src]
	deg := len(adj)
	switch {
	case s.idxCap[src] > 0:
		// Hash tier: one index probe answers the duplicate question.
		m.Access(thread, s.idxAddr(src, dst), false, instrSlotScan)
		for i, nb := range adj {
			if nb == dst {
				m.Access(thread, s.arrAddr(src, i), true, 1)
				return
			}
		}
		if deg == s.arrCap[src] {
			s.growArr(m, thread, src)
		}
		m.Access(thread, s.arrAddr(src, deg), true, instrInsert)
		if (deg+1)*10 > s.idxCap[src]*7 { // mirror put's pre-grow check
			s.growIdx(m, thread, src)
		}
		m.Access(thread, s.idxAddr(src, dst), true, 1)
	case s.arrCap[src] > 0:
		// Array tier: bounded linear scan of the dense run.
		for i, nb := range adj {
			m.Access(thread, s.arrAddr(src, i), false, instrSlotScan)
			if nb == dst {
				m.Access(thread, s.arrAddr(src, i), true, 1)
				return
			}
		}
		if deg == s.arrCap[src] {
			s.growArr(m, thread, src)
		}
		m.Access(thread, s.arrAddr(src, deg), true, instrInsert)
		if deg+1 > s.hashAt {
			s.neigh[src] = append(adj, dst)
			s.promoteToHash(m, thread, src)
			m.Access(thread, s.recordAddr(src), true, 1)
			return
		}
	default:
		// Inline tier: the scan never leaves the record.
		for i, nb := range adj {
			m.Access(thread, s.inlineAddr(src, i), false, instrSlotScan)
			if nb == dst {
				m.Access(thread, s.inlineAddr(src, i), true, 1)
				return
			}
		}
		if deg < s.inlineAt {
			m.Access(thread, s.inlineAddr(src, deg), true, instrInsert)
			break
		}
		s.promoteToArray(m, thread, src, deg+1)
		m.Access(thread, s.arrAddr(src, deg), true, instrInsert)
		if deg+1 > s.hashAt {
			s.neigh[src] = append(adj, dst)
			s.promoteToHash(m, thread, src)
			m.Access(thread, s.recordAddr(src), true, 1)
			return
		}
	}
	s.neigh[src] = append(adj, dst)
	m.Access(thread, s.recordAddr(src), true, 1) // deg++
}

func (s *shadowHybrid) traverse(m *Machine, thread int, v graph.NodeID) []graph.NodeID {
	m.Access(thread, s.recordAddr(v), false, instrHeader)
	adj := s.neigh[v]
	if s.arrCap[v] == 0 {
		for i := range adj {
			m.Access(thread, s.inlineAddr(v, i), false, instrSlotScan)
		}
		return adj
	}
	for i := range adj {
		m.Access(thread, s.arrAddr(v, i), false, instrSlotScan)
	}
	return adj
}

func (s *shadowHybrid) degree(m *Machine, thread int, v graph.NodeID) {
	m.Access(thread, s.recordAddr(v), false, instrDegreeQry)
}

func (s *shadowHybrid) threadOf(src graph.NodeID) int { return int(src) % s.chunks }
