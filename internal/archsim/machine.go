package archsim

// MachineConfig mirrors the paper's platform (Section IV-A): a dual-socket
// Intel Xeon Gold 6142 with 16 physical cores per socket, 2-way SMT (64
// hardware threads), 32 KB private L1d, 1 MB private L2, 22 MB shared LLC
// per socket, 128 GB/s DRAM bandwidth per socket, and 68.1 GB/s QPI per
// direction.
type MachineConfig struct {
	Sockets        int
	CoresPerSocket int
	SMT            int

	L1Bytes  int
	L1Ways   int
	L2Bytes  int
	L2Ways   int
	LLCBytes int
	LLCWays  int

	// DRAMBandwidth is per-socket peak, bytes/second.
	DRAMBandwidth float64
	// QPIBandwidth is per-direction inter-socket peak, bytes/second.
	QPIBandwidth float64
	// FreqHz and IPC calibrate the instruction-throughput term of the
	// performance model.
	FreqHz float64
	IPC    float64
}

// PaperMachine returns the paper's platform configuration.
func PaperMachine() MachineConfig {
	return MachineConfig{
		Sockets:        2,
		CoresPerSocket: 16,
		SMT:            2,
		L1Bytes:        32 << 10,
		L1Ways:         8,
		L2Bytes:        1 << 20,
		L2Ways:         16,
		LLCBytes:       22 << 20,
		LLCWays:        11,
		DRAMBandwidth:  128e9,
		QPIBandwidth:   68.1e9,
		FreqHz:         2.6e9,
		IPC:            1.5,
	}
}

// Traffic tallies memory-system traffic for one phase.
type Traffic struct {
	Accesses     uint64
	Instructions uint64

	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	LLCHits, LLCMisses uint64

	// DRAMBytes is line traffic to memory (local + remote).
	DRAMBytes uint64
	// QPIBytes is line traffic whose home socket differs from the
	// requester's socket.
	QPIBytes uint64
}

// Add merges o into t.
func (t *Traffic) Add(o Traffic) {
	t.Accesses += o.Accesses
	t.Instructions += o.Instructions
	t.L1Hits += o.L1Hits
	t.L1Misses += o.L1Misses
	t.L2Hits += o.L2Hits
	t.L2Misses += o.L2Misses
	t.LLCHits += o.LLCHits
	t.LLCMisses += o.LLCMisses
	t.DRAMBytes += o.DRAMBytes
	t.QPIBytes += o.QPIBytes
}

// L2HitRatio reports L2 hits over L2 lookups.
func (t *Traffic) L2HitRatio() float64 { return ratio(t.L2Hits, t.L2Hits+t.L2Misses) }

// LLCHitRatio reports LLC hits over LLC lookups.
func (t *Traffic) LLCHitRatio() float64 { return ratio(t.LLCHits, t.LLCHits+t.LLCMisses) }

// L2MPKI reports L2 misses per kilo-instruction.
func (t *Traffic) L2MPKI() float64 { return mpki(t.L2Misses, t.Instructions) }

// LLCMPKI reports LLC misses per kilo-instruction.
func (t *Traffic) LLCMPKI() float64 { return mpki(t.LLCMisses, t.Instructions) }

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func mpki(misses, instr uint64) float64 {
	if instr == 0 {
		return 0
	}
	return float64(misses) / (float64(instr) / 1000)
}

// Machine is the simulated memory system: per-thread L1+L2 (each hardware
// thread of the replay gets private caches, approximating per-core private
// caches), one LLC per socket, and NUMA page homing.
type Machine struct {
	cfg     MachineConfig
	threads int

	l1  []*Cache // per thread
	l2  []*Cache // per thread
	llc []*Cache // per socket

	// lastLine[t] drives the per-thread next-line stream prefetcher:
	// when a thread touches two consecutive lines, the following line is
	// prefetched into its L2 and the socket LLC. Sequential patterns —
	// adjacency-vector scans, batch-buffer reads — therefore hit in L2,
	// which is how the real hardware serviced the update phase's
	// scan-dominated traffic (Fig 10's update L2 behaviour).
	lastLine []uint64

	// pageHome records first-touch NUMA homing: a 4 KB page belongs to
	// the socket of the thread that first references it (the default
	// Linux placement policy). Chunk-owned structures therefore stay
	// local to their owning socket, while shared data (property arrays,
	// other sockets' adjacency) is remote for half its readers.
	pageHome map[uint64]uint8

	cur Traffic
}

// NewMachine builds the memory system for `threads` replay threads spread
// round-robin across sockets.
func NewMachine(cfg MachineConfig, threads int) *Machine {
	if threads <= 0 {
		threads = 1
	}
	m := &Machine{cfg: cfg, threads: threads}
	for t := 0; t < threads; t++ {
		m.l1 = append(m.l1, NewCache(cfg.L1Bytes, cfg.L1Ways))
		m.l2 = append(m.l2, NewCache(cfg.L2Bytes, cfg.L2Ways))
	}
	for s := 0; s < cfg.Sockets; s++ {
		m.llc = append(m.llc, NewCache(cfg.LLCBytes, cfg.LLCWays))
	}
	m.lastLine = make([]uint64, threads)
	m.pageHome = make(map[uint64]uint8)
	return m
}

// Threads reports the replay thread count.
func (m *Machine) Threads() int { return m.threads }

// Config reports the machine configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// socketOf maps replay thread → socket (round-robin, like spreading cores
// evenly across sockets in the paper's scaling study).
func (m *Machine) socketOf(thread int) int { return thread % m.cfg.Sockets }

// homeOf maps an address to its NUMA home socket: first-touch placement
// at 4 KB page granularity, attributed to the requesting socket.
func (m *Machine) homeOf(addr uint64, reqSocket int) int {
	page := addr >> 12
	if home, ok := m.pageHome[page]; ok {
		return int(home)
	}
	m.pageHome[page] = uint8(reqSocket)
	return reqSocket
}

const lineBytes = 64

// Access replays one reference from a thread, charging `instr`
// instructions of work that accompanied it.
func (m *Machine) Access(thread int, addr uint64, write bool, instr uint64) {
	t := thread % m.threads
	m.cur.Accesses++
	m.cur.Instructions += instr
	m.prefetch(t, addr)
	if m.l1[t].Access(addr) {
		m.cur.L1Hits++
		return
	}
	m.cur.L1Misses++
	if m.l2[t].Access(addr) {
		m.cur.L2Hits++
		return
	}
	m.cur.L2Misses++
	sock := m.socketOf(t)
	if m.llc[sock].Access(addr) {
		m.cur.LLCHits++
		return
	}
	m.cur.LLCMisses++
	m.cur.DRAMBytes += lineBytes
	if m.homeOf(addr, sock) != sock {
		m.cur.QPIBytes += lineBytes
	}
}

// prefetch implements the next-line stream prefetcher: an access to the
// line after the thread's previous one triggers a fill of the following
// line into L2 and the socket LLC. Prefetch fills consume DRAM/QPI
// bandwidth when the line was not on chip, but never count as demand
// hits or misses (matching how PCM attributes demand traffic).
func (m *Machine) prefetch(t int, addr uint64) {
	line := addr >> 6
	prev := m.lastLine[t]
	m.lastLine[t] = line
	if line != prev+1 {
		return
	}
	next := (line + 1) << 6
	sock := m.socketOf(t)
	inL2 := m.l2[t].Install(next)
	inLLC := m.llc[sock].Install(next)
	if !inL2 && !inLLC {
		m.cur.DRAMBytes += lineBytes
		if m.homeOf(next, sock) != sock {
			m.cur.QPIBytes += lineBytes
		}
	}
}

// Work charges instructions with no memory reference (arithmetic between
// touches).
func (m *Machine) Work(instr uint64) { m.cur.Instructions += instr }

// DrainPhase returns the traffic accumulated since the previous drain and
// resets the phase counters while keeping cache contents, so consecutive
// phases observe each other's resident lines.
func (m *Machine) DrainPhase() Traffic {
	t := m.cur
	m.cur = Traffic{}
	for _, c := range m.l1 {
		c.ResetCounters()
	}
	for _, c := range m.l2 {
		c.ResetCounters()
	}
	for _, c := range m.llc {
		c.ResetCounters()
	}
	return t
}
