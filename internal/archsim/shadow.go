package archsim

import "sagabench/internal/graph"

// Instruction-charge calibration: per-operation instruction counts
// (including amortized loop/branch/bounds overhead of compiled graph
// code) used to convert replayed work into the MPKI denominators and the
// performance model's compute-bound term. Calibrated so the pooled L2/LLC
// MPKI land in the paper's measured ranges (update L2 MPKI 3-9, compute
// L2 MPKI 12-16, compute LLC MPKI ~6); the absolute values shift MPKI
// uniformly, while the update-vs-compute contrast comes from the access
// patterns.
const (
	instrSlotScan  = 12 // examine one adjacency slot / hash slot
	instrInsert    = 72 // bookkeeping around an edge insert
	instrLock      = 36 // lock acquire+release
	instrHeader    = 24 // read/maintain a per-vertex header
	instrVertex    = 84 // per-vertex compute bookkeeping
	instrEdgeMath  = 36 // per-edge vertex-function arithmetic
	instrDegreeQry = 30 // degree-query meta-operation arithmetic
)

// shadow is a single-direction memory-layout model of one data structure.
// It re-ingests the same edge records the real structure ingested and
// emits the corresponding memory references into the Machine, maintaining
// its own adjacency so traversals replay the exact final layout.
type shadow interface {
	// ensureNodes grows vertex-indexed state.
	ensureNodes(n int)
	// insert replays one edge ingest on the given replay thread.
	insert(m *Machine, thread int, src, dst graph.NodeID)
	// traverse replays reading v's neighbor list and returns it.
	traverse(m *Machine, thread int, v graph.NodeID) []graph.NodeID
	// degree replays a degree query.
	degree(m *Machine, thread int, v graph.NodeID)
	// threadOf maps an edge source to the replay thread that ingests it
	// under the structure's multithreading style; -1 means "sharded by
	// batch position" (shared-style).
	threadOf(src graph.NodeID) int
}

// edgeKey packs (src,dst) for shadow membership sets.
func edgeKey(src, dst graph.NodeID) uint64 { return uint64(src)<<32 | uint64(dst) }

// ---------------------------------------------------------------------------
// Adjacency-list shadow (AS and AC share the vector layout; AS adds a lock
// word and shards by batch position, AC is lockless and sharded by chunk).

type shadowAdj struct {
	alloc  *allocator
	chunks int // 0 = shared style (AS)

	base  []uint64
	cap   []int
	neigh [][]graph.NodeID
}

func newShadowAdj(alloc *allocator, chunks int) *shadowAdj {
	return &shadowAdj{alloc: alloc, chunks: chunks}
}

func (s *shadowAdj) ensureNodes(n int) {
	for len(s.neigh) < n {
		s.base = append(s.base, 0)
		s.cap = append(s.cap, 0)
		s.neigh = append(s.neigh, nil)
	}
}

const adjSlotBytes = 8 // Neighbor{ID,Weight}

func (s *shadowAdj) headerAddr(v graph.NodeID) uint64 { return headerBase + uint64(v)*48 }

func (s *shadowAdj) insert(m *Machine, thread int, src, dst graph.NodeID) {
	if s.chunks == 0 {
		// AS: lock word + vector header live together.
		m.Access(thread, s.headerAddr(src), true, instrLock)
	} else {
		m.Access(thread, s.headerAddr(src), false, instrHeader)
	}
	vec := s.neigh[src]
	found := false
	for i, nb := range vec {
		m.Access(thread, s.base[src]+uint64(i)*adjSlotBytes, false, instrSlotScan)
		if nb == dst {
			m.Access(thread, s.base[src]+uint64(i)*adjSlotBytes, true, 1)
			found = true
			break
		}
	}
	if found {
		return
	}
	if len(vec) == s.cap[src] {
		newCap := s.cap[src] * 2
		if newCap == 0 {
			newCap = 4
		}
		newBase := s.alloc.alloc(uint64(newCap) * adjSlotBytes)
		// Grow: read every old slot, write every new slot.
		for i := range vec {
			m.Access(thread, s.base[src]+uint64(i)*adjSlotBytes, false, 1)
			m.Access(thread, newBase+uint64(i)*adjSlotBytes, true, 1)
		}
		s.base[src] = newBase
		s.cap[src] = newCap
	}
	m.Access(thread, s.base[src]+uint64(len(vec))*adjSlotBytes, true, instrInsert)
	m.Access(thread, s.headerAddr(src), true, 1)
	s.neigh[src] = append(vec, dst)
}

func (s *shadowAdj) traverse(m *Machine, thread int, v graph.NodeID) []graph.NodeID {
	m.Access(thread, s.headerAddr(v), false, instrHeader)
	for i := range s.neigh[v] {
		m.Access(thread, s.base[v]+uint64(i)*adjSlotBytes, false, instrSlotScan)
	}
	return s.neigh[v]
}

func (s *shadowAdj) degree(m *Machine, thread int, v graph.NodeID) {
	m.Access(thread, s.headerAddr(v), false, instrDegreeQry)
}

func (s *shadowAdj) threadOf(src graph.NodeID) int {
	if s.chunks == 0 {
		return -1
	}
	return int(src) % s.chunks
}

// ---------------------------------------------------------------------------
// Stinger shadow: per-vertex chains of 16-edge blocks.

type shadowStinger struct {
	alloc     *allocator
	blockSize int

	blocks [][]uint64 // per vertex: block base addresses
	neigh  [][]graph.NodeID
}

func newShadowStinger(alloc *allocator, blockSize int) *shadowStinger {
	if blockSize <= 0 {
		blockSize = 16
	}
	return &shadowStinger{alloc: alloc, blockSize: blockSize}
}

func (s *shadowStinger) ensureNodes(n int) {
	for len(s.neigh) < n {
		s.blocks = append(s.blocks, nil)
		s.neigh = append(s.neigh, nil)
	}
}

func (s *shadowStinger) headerAddr(v graph.NodeID) uint64 { return headerBase + uint64(v)*32 }

func (s *shadowStinger) slotAddr(v graph.NodeID, pos int) uint64 {
	return s.blocks[v][pos/s.blockSize] + uint64(pos%s.blockSize)*adjSlotBytes
}

// scan replays one pass over v's chain looking for dst: header read, then
// per-block header + per-slot reads. Stinger charges this twice per insert
// (search scan + empty-slot scan).
func (s *shadowStinger) scan(m *Machine, thread int, v, dst graph.NodeID) int {
	m.Access(thread, s.headerAddr(v), false, instrHeader)
	for i, nb := range s.neigh[v] {
		if i%s.blockSize == 0 {
			// Block header: next pointer + lock + count.
			m.Access(thread, s.blocks[v][i/s.blockSize], false, instrHeader)
		}
		m.Access(thread, s.slotAddr(v, i), false, instrSlotScan)
		if nb == dst {
			return i
		}
	}
	return -1
}

func (s *shadowStinger) insert(m *Machine, thread int, src, dst graph.NodeID) {
	// Scan 1: duplicate search.
	if pos := s.scan(m, thread, src, dst); pos >= 0 {
		m.Access(thread, s.slotAddr(src, pos), true, 1)
		return
	}
	// Scan 2: walk again to find an empty slot (paper Section III-A3).
	s.scan(m, thread, src, dst)
	pos := len(s.neigh[src])
	if pos%s.blockSize == 0 {
		nb := s.alloc.alloc(uint64(s.blockSize)*adjSlotBytes + 24)
		s.blocks[src] = append(s.blocks[src], nb)
		m.Access(thread, nb, true, instrHeader) // init block header
		if len(s.blocks[src]) > 1 {
			// Link from previous tail.
			m.Access(thread, s.blocks[src][len(s.blocks[src])-2], true, 1)
		}
	}
	m.Access(thread, s.slotAddr(src, pos), true, instrInsert)
	m.Access(thread, s.headerAddr(src), true, 1) // degree++
	s.neigh[src] = append(s.neigh[src], dst)
}

func (s *shadowStinger) traverse(m *Machine, thread int, v graph.NodeID) []graph.NodeID {
	m.Access(thread, s.headerAddr(v), false, instrHeader)
	for i := range s.neigh[v] {
		if i%s.blockSize == 0 {
			m.Access(thread, s.blocks[v][i/s.blockSize], false, instrHeader)
		}
		m.Access(thread, s.slotAddr(v, i), false, instrSlotScan)
	}
	return s.neigh[v]
}

func (s *shadowStinger) degree(m *Machine, thread int, v graph.NodeID) {
	m.Access(thread, s.headerAddr(v), false, instrDegreeQry)
}

func (s *shadowStinger) threadOf(graph.NodeID) int { return -1 }

// ---------------------------------------------------------------------------
// DAH shadow: per-chunk Robin Hood low-degree table + high-degree directory
// with per-source open-addressing edge tables. Robin Hood placement is
// approximated by perfect clustering at the source's home slot, so a probe
// of the k-th edge of src touches home+k — the probe-distance behaviour
// the real table's invariant maintains.

type shadowDAH struct {
	alloc   *allocator
	chunks  int
	flushAt int

	chunk []*shadowDAHChunk
	neigh [][]graph.NodeID // global per-vertex adjacency (order of insert)
}

type shadowDAHChunk struct {
	lowBase  uint64
	lowCap   uint64
	lowCount uint64

	dirBase uint64
	dirCap  uint64

	high map[graph.NodeID]*shadowEdgeTable
}

type shadowEdgeTable struct {
	base  uint64
	cap   uint64
	count uint64
}

const (
	dahSlotBytes = 16 // rhSlot{used,src,dst,w}
	dirSlotBytes = 16
)

func newShadowDAH(alloc *allocator, chunks, flushAt int) *shadowDAH {
	if chunks <= 0 {
		chunks = 1
	}
	if flushAt <= 0 {
		flushAt = 16
	}
	s := &shadowDAH{alloc: alloc, chunks: chunks, flushAt: flushAt}
	for c := 0; c < chunks; c++ {
		s.chunk = append(s.chunk, &shadowDAHChunk{
			lowBase: alloc.alloc(256 * dahSlotBytes), lowCap: 256,
			dirBase: alloc.alloc(64 * dirSlotBytes), dirCap: 64,
			high: make(map[graph.NodeID]*shadowEdgeTable),
		})
	}
	return s
}

func (s *shadowDAH) ensureNodes(n int) {
	for len(s.neigh) < n {
		s.neigh = append(s.neigh, nil)
	}
}

func hash64(v uint64) uint64 {
	v *= 0x9E3779B97F4A7C15
	v ^= v >> 29
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 32
	return v
}

func (c *shadowDAHChunk) lowSlot(src graph.NodeID, i int) uint64 {
	home := hash64(uint64(src)) % c.lowCap
	return c.lowBase + ((home+uint64(i))%c.lowCap)*dahSlotBytes
}

func (c *shadowDAHChunk) dirProbe(m *Machine, thread int, src graph.NodeID) {
	slot := hash64(uint64(src)) % c.dirCap
	m.Access(thread, c.dirBase+slot*dirSlotBytes, false, instrDegreeQry)
}

func (s *shadowDAH) chunkOf(v graph.NodeID) int { return int(v) % s.chunks }

func (s *shadowDAH) insert(m *Machine, thread int, src, dst graph.NodeID) {
	c := s.chunk[s.chunkOf(src)]
	// Meta-op: directory probe decides which table owns src.
	c.dirProbe(m, thread, src)
	adj := s.neigh[src]
	if et, high := c.high[src]; high {
		slot := hash64(edgeKey(src, dst)) % et.cap
		m.Access(thread, et.base+slot*adjSlotBytes, false, instrSlotScan)
		for _, nb := range adj {
			if nb == dst {
				m.Access(thread, et.base+slot*adjSlotBytes, true, 1)
				return
			}
		}
		if (et.count+1)*10 > et.cap*7 {
			s.growEdgeTable(m, thread, et)
		}
		m.Access(thread, et.base+slot*adjSlotBytes, true, instrInsert)
		et.count++
		s.neigh[src] = append(adj, dst)
		return
	}
	// Low-degree path: probe src's cluster.
	for i, nb := range adj {
		m.Access(thread, c.lowSlot(src, i), false, instrSlotScan)
		if nb == dst {
			m.Access(thread, c.lowSlot(src, i), true, 1)
			return
		}
	}
	if (c.lowCount+1)*10 > c.lowCap*7 {
		s.growLow(m, thread, c)
	}
	m.Access(thread, c.lowSlot(src, len(adj)), true, instrInsert)
	c.lowCount++
	s.neigh[src] = append(adj, dst)
	if len(s.neigh[src]) > s.flushAt {
		s.flush(m, thread, c, src)
	}
}

// flush moves src's edges from the low table to a fresh high-degree edge
// table (the paper's periodic flushing meta-operation).
func (s *shadowDAH) flush(m *Machine, thread int, c *shadowDAHChunk, src graph.NodeID) {
	adj := s.neigh[src]
	et := &shadowEdgeTable{cap: 32, count: uint64(len(adj))}
	for et.count*10 > et.cap*7 {
		et.cap *= 2
	}
	et.base = s.alloc.alloc(et.cap * adjSlotBytes)
	for i, nb := range adj {
		m.Access(thread, c.lowSlot(src, i), false, instrSlotScan) // read out
		m.Access(thread, c.lowSlot(src, i), true, 1)              // backward-shift hole
		slot := hash64(edgeKey(src, nb)) % et.cap
		m.Access(thread, et.base+slot*adjSlotBytes, true, instrSlotScan)
	}
	c.lowCount -= uint64(len(adj))
	c.high[src] = et
	// Register in the directory.
	slot := hash64(uint64(src)) % c.dirCap
	m.Access(thread, c.dirBase+slot*dirSlotBytes, true, instrHeader)
}

func (s *shadowDAH) growLow(m *Machine, thread int, c *shadowDAHChunk) {
	newCap := c.lowCap * 2
	newBase := s.alloc.alloc(newCap * dahSlotBytes)
	// Rehash: read every old slot, write the occupied ones.
	for i := uint64(0); i < c.lowCap; i++ {
		m.Access(thread, c.lowBase+i*dahSlotBytes, false, 1)
	}
	for i := uint64(0); i < c.lowCount; i++ {
		m.Access(thread, newBase+(hash64(i)%newCap)*dahSlotBytes, true, 1)
	}
	c.lowBase, c.lowCap = newBase, newCap
}

func (s *shadowDAH) growEdgeTable(m *Machine, thread int, et *shadowEdgeTable) {
	newCap := et.cap * 2
	newBase := s.alloc.alloc(newCap * adjSlotBytes)
	for i := uint64(0); i < et.cap; i++ {
		m.Access(thread, et.base+i*adjSlotBytes, false, 1)
	}
	for i := uint64(0); i < et.count; i++ {
		m.Access(thread, newBase+(hash64(i)%newCap)*adjSlotBytes, true, 1)
	}
	et.base, et.cap = newBase, newCap
}

func (s *shadowDAH) traverse(m *Machine, thread int, v graph.NodeID) []graph.NodeID {
	c := s.chunk[s.chunkOf(v)]
	// Meta-op: locate the owning table.
	c.dirProbe(m, thread, v)
	adj := s.neigh[v]
	if et, high := c.high[v]; high {
		// Walk the open-addressing table's occupied slots.
		for _, nb := range adj {
			slot := hash64(edgeKey(v, nb)) % et.cap
			m.Access(thread, et.base+slot*adjSlotBytes, false, instrSlotScan)
		}
		return adj
	}
	for i := range adj {
		m.Access(thread, c.lowSlot(v, i), false, instrSlotScan)
	}
	return adj
}

func (s *shadowDAH) degree(m *Machine, thread int, v graph.NodeID) {
	s.chunk[s.chunkOf(v)].dirProbe(m, thread, v)
}

func (s *shadowDAH) threadOf(src graph.NodeID) int { return s.chunkOf(src) }
