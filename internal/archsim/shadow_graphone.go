package archsim

import "sagabench/internal/graph"

// shadowGraphOne models the log-structured extension structure: staging
// appends records to per-chunk logs (pure sequential writes — the O(1)
// ingest), and per-batch compaction streams each dirty vertex's log
// through a hash pass into its compacted vector. The replayer calls
// insert for every record and flushes the compaction traffic when the
// batch ends (endBatch).
type shadowGraphOne struct {
	alloc  *allocator
	chunks int

	base  []uint64
	cap   []int
	neigh [][]graph.NodeID

	logBase []uint64 // per chunk
	logLen  []int

	pendingDirty map[graph.NodeID][]graph.NodeID // vertex -> staged dsts
	pendingOrder []graph.NodeID
}

func newShadowGraphOne(alloc *allocator, chunks int) *shadowGraphOne {
	if chunks <= 0 {
		chunks = 1
	}
	s := &shadowGraphOne{
		alloc:        alloc,
		chunks:       chunks,
		pendingDirty: make(map[graph.NodeID][]graph.NodeID),
	}
	for c := 0; c < chunks; c++ {
		s.logBase = append(s.logBase, alloc.alloc(1<<16))
		s.logLen = append(s.logLen, 0)
	}
	return s
}

func (s *shadowGraphOne) ensureNodes(n int) {
	for len(s.neigh) < n {
		s.base = append(s.base, 0)
		s.cap = append(s.cap, 0)
		s.neigh = append(s.neigh, nil)
	}
}

const logRecBytes = 12

// insert replays the staging append: one sequential log write, no search.
func (s *shadowGraphOne) insert(m *Machine, thread int, src, dst graph.NodeID) {
	c := int(src) % s.chunks
	m.Access(thread, s.logBase[c]+uint64(s.logLen[c])*logRecBytes, true, instrInsert/4)
	s.logLen[c]++
	if s.pendingDirty[src] == nil {
		s.pendingOrder = append(s.pendingOrder, src)
	}
	s.pendingDirty[src] = append(s.pendingDirty[src], dst)
}

// endBatch replays the compaction: per dirty vertex, one pass over the
// existing vector (hash-index build), then the staged records merge in.
func (s *shadowGraphOne) endBatch(m *Machine) {
	for _, v := range s.pendingOrder {
		staged := s.pendingDirty[v]
		t := int(v) % s.chunks % m.Threads()
		adj := s.neigh[v]
		// Hash pass over the existing vector.
		for i := range adj {
			m.Access(t, s.base[v]+uint64(i)*adjSlotBytes, false, instrSlotScan)
		}
		present := make(map[graph.NodeID]bool, len(adj)+len(staged))
		for _, nb := range adj {
			present[nb] = true
		}
		for _, dst := range staged {
			m.Work(instrSlotScan)
			if present[dst] {
				continue
			}
			if len(adj) == s.cap[v] {
				newCap := s.cap[v] * 2
				if newCap == 0 {
					newCap = 4
				}
				newBase := s.alloc.alloc(uint64(newCap) * adjSlotBytes)
				for i := range adj {
					m.Access(t, s.base[v]+uint64(i)*adjSlotBytes, false, 1)
					m.Access(t, newBase+uint64(i)*adjSlotBytes, true, 1)
				}
				s.base[v] = newBase
				s.cap[v] = newCap
			}
			m.Access(t, s.base[v]+uint64(len(adj))*adjSlotBytes, true, instrInsert)
			adj = append(adj, dst)
			present[dst] = true
		}
		s.neigh[v] = adj
		delete(s.pendingDirty, v)
	}
	s.pendingOrder = s.pendingOrder[:0]
	for c := range s.logLen {
		s.logLen[c] = 0
	}
}

func (s *shadowGraphOne) traverse(m *Machine, thread int, v graph.NodeID) []graph.NodeID {
	m.Access(thread, s.headerAddr(v), false, instrHeader)
	for i := range s.neigh[v] {
		m.Access(thread, s.base[v]+uint64(i)*adjSlotBytes, false, instrSlotScan)
	}
	return s.neigh[v]
}

func (s *shadowGraphOne) headerAddr(v graph.NodeID) uint64 { return headerBase + uint64(v)*48 }

func (s *shadowGraphOne) degree(m *Machine, thread int, v graph.NodeID) {
	m.Access(thread, s.headerAddr(v), false, instrDegreeQry)
}

func (s *shadowGraphOne) threadOf(src graph.NodeID) int { return int(src) % s.chunks }

// batchEnder is implemented by shadows with deferred per-batch work.
type batchEnder interface{ endBatch(m *Machine) }
