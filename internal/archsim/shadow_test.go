package archsim

import (
	"testing"

	"sagabench/internal/graph"
)

func TestAllocatorAlignmentAndMonotonicity(t *testing.T) {
	a := newAllocator()
	prevEnd := uint64(heapBase)
	for _, sz := range []uint64{1, 15, 16, 17, 1000, 0} {
		addr := a.alloc(sz)
		if addr%16 != 0 {
			t.Fatalf("alloc(%d)=%#x not 16-aligned", sz, addr)
		}
		if addr < prevEnd {
			t.Fatalf("alloc(%d)=%#x overlaps previous region ending %#x", sz, addr, prevEnd)
		}
		want := sz
		if want == 0 {
			want = 16
		}
		prevEnd = addr + (want+15)&^15
	}
}

func TestScaledMachine(t *testing.T) {
	base := PaperMachine()
	m := ScaledMachine(128)
	if m.L1Bytes != base.L1Bytes/128 || m.L2Bytes != base.L2Bytes/128 || m.LLCBytes != base.LLCBytes/128 {
		t.Errorf("cache scaling wrong: %d %d %d", m.L1Bytes, m.L2Bytes, m.LLCBytes)
	}
	if m.DRAMBandwidth != base.DRAMBandwidth || m.QPIBandwidth != base.QPIBandwidth {
		t.Error("bandwidths must stay physical")
	}
	if m.Sockets != base.Sockets || m.FreqHz != base.FreqHz {
		t.Error("timing parameters must stay physical")
	}
	// Extreme divisors clamp to the documented floors.
	tiny := ScaledMachine(1 << 20)
	if tiny.L1Bytes < 128 || tiny.L2Bytes < 1024 || tiny.LLCBytes < 8192 {
		t.Errorf("clamps violated: %d %d %d", tiny.L1Bytes, tiny.L2Bytes, tiny.LLCBytes)
	}
	if ScaledMachine(1) != base {
		t.Error("divisor 1 must be identity")
	}
}

// TestShadowAdjReallocTraffic: growing a vector must emit copy traffic to
// a fresh region (the reallocation behaviour AS/AC pay for on hubs).
func TestShadowAdjReallocTraffic(t *testing.T) {
	a := newAllocator()
	m := NewMachine(ScaledMachine(256), 1)
	s := newShadowAdj(a, 0)
	s.ensureNodes(1)
	// 5 distinct inserts: caps go 0->4->8, one realloc at the 5th.
	for i := 0; i < 5; i++ {
		s.insert(m, 0, 0, graph.NodeID(10+i))
	}
	if s.cap[0] != 8 {
		t.Fatalf("cap=%d want 8", s.cap[0])
	}
	if len(s.neigh[0]) != 5 {
		t.Fatalf("neigh=%d want 5", len(s.neigh[0]))
	}
	// A duplicate rewrites in place without growing.
	base := s.base[0]
	s.insert(m, 0, 0, 12)
	if s.base[0] != base || len(s.neigh[0]) != 5 {
		t.Fatal("duplicate insert mutated layout")
	}
}

// TestShadowStingerChainLayout: blocks must come from distinct allocator
// regions and fill at blockSize granularity.
func TestShadowStingerChainLayout(t *testing.T) {
	a := newAllocator()
	m := NewMachine(ScaledMachine(256), 1)
	s := newShadowStinger(a, 4)
	s.ensureNodes(1)
	for i := 0; i < 9; i++ {
		s.insert(m, 0, 0, graph.NodeID(100+i))
	}
	if len(s.blocks[0]) != 3 { // ceil(9/4)
		t.Fatalf("blocks=%d want 3", len(s.blocks[0]))
	}
	seen := map[uint64]bool{}
	for _, b := range s.blocks[0] {
		if seen[b] {
			t.Fatal("duplicate block base")
		}
		seen[b] = true
	}
}

// TestShadowDAHFlush: crossing the threshold must move the vertex to a
// high-degree edge table in the shadow too.
func TestShadowDAHFlush(t *testing.T) {
	a := newAllocator()
	m := NewMachine(ScaledMachine(256), 1)
	s := newShadowDAH(a, 2, 4)
	s.ensureNodes(1)
	for i := 0; i < 6; i++ {
		s.insert(m, 0, 0, graph.NodeID(50+i))
	}
	c := s.chunk[0]
	et, high := c.high[0]
	if !high {
		t.Fatal("vertex 0 not flushed in shadow")
	}
	if et.count != 6 {
		t.Fatalf("edge table count=%d want 6", et.count)
	}
	if got := len(s.traverse(m, 0, 0)); got != 6 {
		t.Fatalf("traverse=%d want 6", got)
	}
}

// TestPrefetcherStreams: a sequential sweep must land most demand accesses
// in L2 via the next-line prefetcher; a random sweep must not.
func TestPrefetcherStreams(t *testing.T) {
	cfg := ScaledMachine(64)
	m := NewMachine(cfg, 1)
	// Sequential: 512 lines, one access each (strided by 64B).
	for i := 0; i < 512; i++ {
		m.Access(0, 0x100000+uint64(i)*64, false, 1)
	}
	seq := m.DrainPhase()
	if r := seq.L2HitRatio(); r < 0.9 {
		t.Fatalf("sequential stream L2 hit ratio %.2f; prefetcher broken", r)
	}
	// Random pattern over a space far exceeding L2.
	m2 := NewMachine(cfg, 1)
	addr := uint64(1)
	for i := 0; i < 512; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		m2.Access(0, 0x100000+(addr%(1<<24))&^63, false, 1)
	}
	rnd := m2.DrainPhase()
	if rnd.L2HitRatio() > seq.L2HitRatio()/2 {
		t.Fatalf("random L2 hit ratio %.2f too close to sequential %.2f",
			rnd.L2HitRatio(), seq.L2HitRatio())
	}
}
