package archsim

import (
	"testing"
	"testing/quick"
)

func TestCacheColdMissThenHit(t *testing.T) {
	c := NewCache(4096, 4)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1030) { // same 64B line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Fatal("next-line access hit")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d want 2/2", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 2 sets of 64B lines => 256 bytes. Lines mapping to set 0:
	// addresses 0, 128, 256, ...
	c := NewCache(256, 2)
	c.Access(0)   // set 0, way A
	c.Access(128) // set 0, way B
	c.Access(0)   // touch A (B is now LRU)
	c.Access(256) // evicts B
	if !c.Contains(0) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(128) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(256) {
		t.Fatal("new line not resident")
	}
}

func TestCacheCapacity(t *testing.T) {
	c := NewCache(1<<12, 8) // 4 KB = 64 lines
	for i := 0; i < 64; i++ {
		c.Access(uint64(i) * 64)
	}
	hits := 0
	for i := 0; i < 64; i++ {
		if c.Access(uint64(i) * 64) {
			hits++
		}
	}
	if hits != 64 {
		t.Fatalf("working set = capacity: %d/64 hits", hits)
	}
	// Double the working set with LRU sweep => zero hits.
	c.Reset()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 128; i++ {
			c.Access(uint64(i) * 64)
		}
	}
	if c.Hits != 0 {
		t.Fatalf("sweeping 2x capacity should never hit with LRU, got %d hits", c.Hits)
	}
}

func TestCacheResetCounters(t *testing.T) {
	c := NewCache(4096, 4)
	c.Access(0)
	c.ResetCounters()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("counters not reset")
	}
	if !c.Access(0) {
		t.Fatal("contents should survive ResetCounters")
	}
}

func TestCacheHitRatio(t *testing.T) {
	c := NewCache(4096, 4)
	if c.HitRatio() != 0 {
		t.Fatal("idle hit ratio != 0")
	}
	c.Access(0)
	c.Access(0)
	c.Access(0)
	if r := c.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit ratio %v want 2/3", r)
	}
}

// Property: hits+misses equals accesses, and a repeated address always
// hits on its immediate re-access.
func TestCacheProperties(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewCache(1<<14, 8)
		n := uint64(0)
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false // immediate re-access must hit
			}
			n += 2
		}
		return c.Hits+c.Misses == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMachineLevels(t *testing.T) {
	m := NewMachine(PaperMachine(), 4)
	m.Access(0, 0x5000, false, 1)
	tr := m.DrainPhase()
	if tr.L1Misses != 1 || tr.L2Misses != 1 || tr.LLCMisses != 1 {
		t.Fatalf("cold access should miss all levels: %+v", tr)
	}
	if tr.DRAMBytes != 64 {
		t.Fatalf("DRAMBytes=%d want 64", tr.DRAMBytes)
	}
	m.Access(0, 0x5000, false, 1)
	tr = m.DrainPhase()
	if tr.L1Hits != 1 || tr.DRAMBytes != 0 {
		t.Fatalf("warm access should hit L1: %+v", tr)
	}
	// A different thread on the same socket shares only the LLC.
	m.Access(0, 0x9000, false, 1)
	m.DrainPhase()
	m.Access(2, 0x9000, false, 1) // thread 2 -> socket 0, own L1/L2
	tr = m.DrainPhase()
	if tr.L1Hits != 0 || tr.L2Hits != 0 || tr.LLCHits != 1 {
		t.Fatalf("cross-thread same-socket access should hit LLC only: %+v", tr)
	}
}

func TestMachineQPI(t *testing.T) {
	m := NewMachine(PaperMachine(), 2)
	// First-touch homing: thread 1 (socket 1) touches page 1 first, so
	// the page homes there; thread 0's later miss to it crosses QPI,
	// while thread 0's own first-touched page stays local.
	m.Access(1, 0x1000, false, 1)
	m.DrainPhase()
	m.Access(0, 0x0000, false, 1) // local first touch
	m.Access(0, 0x1040, false, 1) // remote page, different line
	tr := m.DrainPhase()
	if tr.DRAMBytes != 128 {
		t.Fatalf("DRAMBytes=%d want 128", tr.DRAMBytes)
	}
	if tr.QPIBytes != 64 {
		t.Fatalf("QPIBytes=%d want 64 (one remote line)", tr.QPIBytes)
	}
	// Re-touching the local page never crosses QPI.
	m.Access(0, 0x0040, false, 1)
	tr = m.DrainPhase()
	if tr.QPIBytes != 0 {
		t.Fatalf("QPIBytes=%d want 0 for locally homed page", tr.QPIBytes)
	}
}

func TestTrafficRatios(t *testing.T) {
	tr := Traffic{L2Hits: 3, L2Misses: 1, LLCHits: 1, LLCMisses: 1, Instructions: 2000}
	if r := tr.L2HitRatio(); r != 0.75 {
		t.Errorf("L2HitRatio=%v want 0.75", r)
	}
	if r := tr.LLCHitRatio(); r != 0.5 {
		t.Errorf("LLCHitRatio=%v want 0.5", r)
	}
	if m := tr.L2MPKI(); m != 0.5 {
		t.Errorf("L2MPKI=%v want 0.5", m)
	}
	if m := tr.LLCMPKI(); m != 0.5 {
		t.Errorf("LLCMPKI=%v want 0.5", m)
	}
	var zero Traffic
	if zero.L2HitRatio() != 0 || zero.L2MPKI() != 0 {
		t.Error("zero traffic ratios should be 0")
	}
}
