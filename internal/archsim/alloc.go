package archsim

// allocator is a bump allocator handing out 16-byte-aligned synthetic
// addresses for the shadow layout models. Allocation order mirrors a
// growing heap: structures allocated while different vertices interleave
// end up scattered, reproducing the fragmentation that makes Stinger block
// chains and reallocated vectors pointer-chase across lines.
type allocator struct{ next uint64 }

// Distinct base offsets keep the major regions (heap, property arrays,
// headers) from aliasing at low addresses.
const (
	heapBase   = 0x0001_0000_0000
	headerBase = 0x4000_0000_0000
	propBase   = 0x7000_0000_0000
)

func newAllocator() *allocator { return &allocator{next: heapBase} }

func (a *allocator) alloc(bytes uint64) uint64 {
	if bytes == 0 {
		bytes = 16
	}
	bytes = (bytes + 15) &^ 15
	addr := a.next
	a.next += bytes
	return addr
}
