package archsim

import (
	"math/rand"
	"testing"
)

// shortTailProfile mimics a short-tailed update: endpoint counts spread
// nearly evenly over many vertices.
func shortTailProfile(kind PhaseKind) PhaseProfile {
	rng := rand.New(rand.NewSource(1))
	loads := make([]VertexLoad, 2000)
	for i := range loads {
		loads[i] = VertexLoad{V: uint32(i), Count: uint64(1 + rng.Intn(3))}
	}
	return PhaseProfile{
		Traffic:  Traffic{Instructions: 50_000_000, L2Hits: 400_000, LLCHits: 300_000, LLCMisses: 300_000, DRAMBytes: 300_000 * 64, QPIBytes: 150_000 * 64},
		Kind:     kind,
		HotOut:   0.003,
		HotIn:    0.003,
		OutLoads: loads,
		InLoads:  loads,
	}
}

// heavyTailProfile mimics a heavy-tailed update: one hub vertex owns a
// third of the endpoints.
func heavyTailProfile(kind PhaseKind) PhaseProfile {
	p := shortTailProfile(kind)
	p.HotIn = 0.3
	var total uint64
	for _, l := range p.InLoads {
		total += l.Count
	}
	p.InLoads = append(append([]VertexLoad{}, p.InLoads...), VertexLoad{V: 2001, Count: total / 2})
	return p
}

func TestScalingCurveShapes(t *testing.T) {
	pm := DefaultPerfModel()
	cores := []int{4, 8, 12, 16, 20, 24, 28}

	stailUpd := pm.ScalingCurve(shortTailProfile(PhaseUpdateShared), cores)
	htailUpd := pm.ScalingCurve(heavyTailProfile(PhaseUpdateChunked), cores)
	comp := pm.ScalingCurve(shortTailProfile(PhaseCompute), cores)

	for name, curve := range map[string][]float64{"stail": stailUpd, "htail": htailUpd, "compute": comp} {
		if curve[0] != 1 {
			t.Errorf("%s: curve not normalized: %v", name, curve[0])
		}
		for i := 1; i < len(curve); i++ {
			if curve[i]+1e-9 < curve[i-1] {
				t.Errorf("%s: modeled performance decreased with cores: %v", name, curve)
			}
		}
	}
	// Fig 9a: compute scales best, heavy-tailed update worst.
	last := len(cores) - 1
	if !(comp[last] > stailUpd[last] && stailUpd[last] > htailUpd[last]) {
		t.Errorf("scaling ordering violated: compute=%.2f stail-upd=%.2f htail-upd=%.2f",
			comp[last], stailUpd[last], htailUpd[last])
	}
	// Heavy-tail update should barely scale (paper: <10%/step past 8 cores).
	if htailUpd[last] > 4 {
		t.Errorf("heavy-tail update scales implausibly well: %.2f", htailUpd[last])
	}
}

func TestBandwidthOrdering(t *testing.T) {
	pm := DefaultPerfModel()
	const cores = 32
	upd := shortTailProfile(PhaseUpdateShared)
	cmp := shortTailProfile(PhaseCompute)
	// Same traffic, but the compute phase's higher TLP/MLP finishes the
	// phase faster => higher consumed bandwidth (Fig 9b's mechanism).
	bu, bc := pm.Bandwidth(upd, cores), pm.Bandwidth(cmp, cores)
	if bc <= bu {
		t.Errorf("compute bandwidth %.1f GB/s should exceed update's %.1f GB/s", bc/1e9, bu/1e9)
	}
	qu, qc := pm.QPIUtilization(upd, cores), pm.QPIUtilization(cmp, cores)
	if qc <= qu {
		t.Errorf("compute QPI %.2f should exceed update's %.2f", qc, qu)
	}
	if qc > 1 {
		t.Errorf("QPI utilization %v exceeds capacity", qc)
	}
}

func TestBalance(t *testing.T) {
	pm := DefaultPerfModel()
	even := make([]VertexLoad, 1024)
	for i := range even {
		even[i] = VertexLoad{V: uint32(i), Count: 10}
	}
	evenProf := PhaseProfile{Kind: PhaseUpdateChunked, OutLoads: even, InLoads: even}
	if b := pm.efficiency(evenProf, 16); b < 0.9 {
		t.Errorf("even loads efficiency=%v want ~1", b)
	}
	hub := []VertexLoad{{V: 0, Count: 10000}, {V: 1, Count: 1}, {V: 2, Count: 1}}
	hubProf := PhaseProfile{Kind: PhaseUpdateChunked, OutLoads: even, InLoads: hub}
	if b := pm.efficiency(hubProf, 16); b > 0.3 {
		t.Errorf("hub loads efficiency=%v want low", b)
	}
	if b := pm.efficiency(PhaseProfile{Kind: PhaseUpdateChunked}, 16); b != 1 {
		t.Errorf("empty loads efficiency=%v want 1", b)
	}
}

func TestHotnessAndLoads(t *testing.T) {
	loads := LoadsOf([]uint32{1, 1, 2, 1, 3})
	if h := HotnessOf(loads); h != 0.6 {
		t.Errorf("hotness=%v want 0.6 (vertex 1 has 3 of 5)", h)
	}
	if HotnessOf(nil) != 0 {
		t.Error("empty hotness != 0")
	}
	merged := MergeLoads(loads, []VertexLoad{{V: 1, Count: 2}, {V: 9, Count: 1}})
	want := map[uint32]uint64{1: 5, 2: 1, 3: 1, 9: 1}
	if len(merged) != len(want) {
		t.Fatalf("merged=%v", merged)
	}
	for _, l := range merged {
		if want[l.V] != l.Count {
			t.Errorf("merged[%d]=%d want %d", l.V, l.Count, want[l.V])
		}
	}
}

func TestTimeMonotonicity(t *testing.T) {
	pm := DefaultPerfModel()
	p := shortTailProfile(PhaseCompute)
	prev := pm.Time(p, 1)
	for c := 2; c <= 32; c++ {
		cur := pm.Time(p, c)
		if cur > prev+1e-12 {
			t.Fatalf("time increased from %v to %v at %d cores", prev, cur, c)
		}
		prev = cur
	}
}
