// Package archsim is the architecture-characterization substrate standing
// in for the paper's Intel PCM measurements (Section VI). It provides:
//
//   - a trace-driven set-associative cache hierarchy with the paper
//     platform's geometry (32 KB L1d and 1 MB L2 private per core, 22 MB
//     LLC shared per socket, 64 B lines, two sockets);
//   - a NUMA memory model (page-interleaved homes, per-socket DRAM
//     bandwidth, QPI inter-socket links);
//   - shadow memory-layout models of the four SAGA-Bench data structures
//     that replay the real update and compute phases' access patterns over
//     the actually ingested graph;
//   - a TLP performance model fed by measured contention and imbalance
//     counters, producing the core-scaling, bandwidth, and QPI utilization
//     figures (Fig 9) and the cache hit-ratio / MPKI figures (Fig 10).
//
// Absolute numbers depend on the documented calibration constants; the
// reproduced findings are the relative shapes (update vs compute, L2 vs
// LLC, short vs heavy tails), which are driven by the replayed access
// patterns, not the constants.
package archsim

// Access classifies one memory reference.
type Access struct {
	Addr  uint64
	Write bool
}

// Cache is one set-associative, write-allocate, LRU cache level.
type Cache struct {
	lineShift uint
	sets      uint64
	ways      int
	// tags[set*ways+way]; valid entries have tag != 0 (addresses are
	// offset so tag 0 never occurs).
	tags []uint64
	// lru[set*ways+way]: larger = more recently used.
	lru   []uint64
	clock uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache of sizeBytes with the given associativity and
// 64-byte lines. sizeBytes must be a multiple of ways*64.
func NewCache(sizeBytes, ways int) *Cache {
	const lineSize = 64
	if maxWays := sizeBytes / lineSize; ways > maxWays {
		// Tiny scaled caches: keep capacity honest by shrinking
		// associativity rather than rounding capacity up.
		ways = maxWays
	}
	if ways < 1 {
		ways = 1
	}
	sets := sizeBytes / (ways * lineSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		// Round down to a power of two so set indexing is a mask.
		p := 1
		for p*2 <= sets {
			p *= 2
		}
		sets = p
	}
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		lineShift: 6,
		sets:      uint64(sets),
		ways:      ways,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
}

// Access looks up addr, updating LRU state and filling on miss. It reports
// whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr>>c.lineShift + 1 // +1 so tag 0 means invalid
	set := (line - 1) & (c.sets - 1)
	base := int(set) * c.ways
	c.clock++
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			c.lru[i] = c.clock
			c.Hits++
			return true
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.lru[victim] = c.clock
	return false
}

// Install fills addr's line without touching hit/miss counters (prefetch
// fills). It reports whether the line was already resident.
func (c *Cache) Install(addr uint64) bool {
	line := addr>>c.lineShift + 1
	set := (line - 1) & (c.sets - 1)
	base := int(set) * c.ways
	c.clock++
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			c.lru[i] = c.clock
			return true
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.tags[victim] = line
	c.lru[victim] = c.clock
	return false
}

// Contains reports whether addr's line is resident without touching LRU or
// counters (used by tests).
func (c *Cache) Contains(addr uint64) bool {
	line := addr>>c.lineShift + 1
	set := (line - 1) & (c.sets - 1)
	base := int(set) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			return true
		}
	}
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.clock = 0
	c.Hits = 0
	c.Misses = 0
}

// ResetCounters clears hit/miss counters but keeps contents (used at phase
// boundaries so the compute phase can reuse lines the update phase
// brought in — the reuse relationship behind Fig 10).
func (c *Cache) ResetCounters() {
	c.Hits = 0
	c.Misses = 0
}

// HitRatio reports Hits/(Hits+Misses), or 0 when idle.
func (c *Cache) HitRatio() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}
