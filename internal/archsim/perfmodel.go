package archsim

import "sort"

// PhaseKind selects the thread-level-parallelism limiter of a phase
// (Section VI-B's insight: shared-style updates are limited by lock
// contention, chunked-style updates by workload imbalance, and the compute
// phase by neither).
type PhaseKind int

// Phase kinds.
const (
	PhaseUpdateShared PhaseKind = iota
	PhaseUpdateChunked
	PhaseCompute
)

// VertexLoad is one vertex's ingest-operation count within the profiled
// batches: the per-batch degree histogram that drives both the contention
// and the imbalance terms.
type VertexLoad struct {
	V     uint32
	Count uint64
}

// PhaseProfile feeds the performance model: simulated traffic plus the
// measured work-distribution shape of the phase. Update phases ingest two
// copies in sequence — the out copy keyed by edge sources and the in copy
// keyed by destinations — so the distribution of each copy limits its own
// sub-phase (a graph like wiki has a flat out copy but a hub-serialized in
// copy).
type PhaseProfile struct {
	Traffic Traffic
	Kind    PhaseKind
	// HotOut/HotIn are the hottest vertex's per-batch share of ingest
	// operations in each copy (lock-contention drivers; batch-averaged).
	HotOut, HotIn float64
	// OutLoads/InLoads are the pooled ingest histograms of each copy
	// (imbalance drivers). InLoads nil means a single-copy (undirected)
	// structure.
	OutLoads, InLoads []VertexLoad
}

// PerfModel converts a PhaseProfile into modeled time, bandwidth, and
// scaling. The calibration constants are documented here and in DESIGN.md;
// they shift absolute numbers, not the update-vs-compute or
// short-vs-heavy-tail contrasts.
type PerfModel struct {
	Machine MachineConfig
	// Cycle penalties per miss level.
	L2HitPenalty, LLCHitPenalty, DRAMPenalty float64
	// MLPUpdate/MLPCompute are memory-level-parallelism factors: the
	// update phase's dependent scans overlap few misses, the compute
	// phase's independent vertex pulls overlap many.
	MLPUpdate, MLPCompute float64
	// ContentionKappa scales lock-contention serialization for
	// shared-style updates (calibrated so a ~0.3% hot-vertex share
	// reproduces Fig 9a's short-tail update curve).
	ContentionKappa float64
	// SyncOverhead is the per-core round-synchronization drag of the
	// compute phase.
	SyncOverhead float64
	// ChunksPerCore sets the modeled chunk count at c cores.
	ChunksPerCore int
	// SatLines is the number of in-flight line fetches needed to
	// saturate DRAM bandwidth; a phase with few effective threads or
	// low MLP cannot reach peak bandwidth (the mechanism behind the
	// update phase's low utilization in Fig 9b).
	SatLines float64
}

// DefaultPerfModel returns the calibrated model on the paper's machine.
func DefaultPerfModel() PerfModel {
	return PerfModel{
		Machine:         PaperMachine(),
		L2HitPenalty:    12,
		LLCHitPenalty:   40,
		DRAMPenalty:     180,
		MLPUpdate:       2,
		MLPCompute:      6,
		ContentionKappa: 40,
		SyncOverhead:    0.015,
		ChunksPerCore:   1,
		SatLines:        64,
	}
}

// ScaledMachine shrinks the paper machine's cache capacities by div so
// that laptop-scale working sets exercise the hierarchy the way the
// paper's gigabyte-scale graphs exercised the real one. Timing quantities
// — core counts, frequency, IPC, DRAM and QPI bandwidth — stay physical:
// the bytes-per-instruction of the replayed phases is scale-invariant, so
// utilization percentages remain comparable to the paper's.
func ScaledMachine(div int) MachineConfig {
	m := PaperMachine()
	if div <= 1 {
		return m
	}
	clamp := func(v, min int) int {
		v /= div
		if v < min {
			v = min
		}
		return v
	}
	m.L1Bytes = clamp(m.L1Bytes, 128)
	m.L2Bytes = clamp(m.L2Bytes, 1024)
	m.LLCBytes = clamp(m.LLCBytes, 8192)
	return m
}

// mlp returns the phase's memory-level parallelism.
func (pm PerfModel) mlp(k PhaseKind) float64 {
	if k == PhaseCompute {
		return pm.MLPCompute
	}
	return pm.MLPUpdate
}

// efficiency returns the parallel efficiency η(cores) ∈ (0,1] of the phase.
func (pm PerfModel) efficiency(p PhaseProfile, cores int) float64 {
	if cores <= 1 {
		return 1
	}
	switch p.Kind {
	case PhaseUpdateShared:
		// Lock contention: each copy's sub-phase serializes on its
		// hottest lock; sub-phase times add.
		fOut := 1 + pm.ContentionKappa*p.HotOut*float64(cores-1)
		if p.InLoads == nil {
			return 1 / fOut
		}
		fIn := 1 + pm.ContentionKappa*p.HotIn*float64(cores-1)
		return 2 / (fOut + fIn)
	case PhaseUpdateChunked:
		// Workload imbalance: each copy's sub-phase ends when its
		// most loaded worker finishes.
		tOut, idealOut := pm.copyTime(p.OutLoads, cores)
		tIn, idealIn := pm.copyTime(p.InLoads, cores)
		actual, ideal := tOut+tIn, idealOut+idealIn
		if actual == 0 {
			return 1
		}
		return ideal / actual
	default:
		return 1 / (1 + pm.SyncOverhead*float64(cores-1))
	}
}

// copyTime returns (busiest-worker load, total/cores) for one copy's
// ingest with chunks bound round-robin to workers.
func (pm PerfModel) copyTime(loads []VertexLoad, cores int) (actual, ideal float64) {
	if len(loads) == 0 {
		return 0, 0
	}
	chunks := cores * pm.ChunksPerCore
	if chunks < 1 {
		chunks = 1
	}
	chunkLoad := make([]uint64, chunks)
	var total uint64
	for _, l := range loads {
		chunkLoad[int(l.V)%chunks] += l.Count
		total += l.Count
	}
	worker := make([]uint64, cores)
	for k, cl := range chunkLoad {
		worker[k%cores] += cl
	}
	var max uint64
	for _, w := range worker {
		if w > max {
			max = w
		}
	}
	return float64(max), float64(total) / float64(cores)
}

// workCycles is the single-thread cycle cost of the phase: instruction
// throughput plus per-level stall penalties divided by the phase's
// memory-level parallelism.
func (pm PerfModel) workCycles(p PhaseProfile) float64 {
	mlp := pm.mlp(p.Kind)
	t := p.Traffic
	cycles := float64(t.Instructions) / pm.Machine.IPC
	cycles += float64(t.L2Hits) * pm.L2HitPenalty / mlp
	cycles += float64(t.LLCHits) * pm.LLCHitPenalty / mlp
	cycles += float64(t.LLCMisses) * pm.DRAMPenalty / mlp
	return cycles
}

// Time models the phase's duration in seconds on `cores` physical cores
// (spread evenly across both sockets, as in Fig 9a's methodology): the
// maximum of the compute-bound term and the bandwidth-bound term, where
// the achievable bandwidth itself depends on how many effective threads
// the phase keeps busy.
func (pm PerfModel) Time(p PhaseProfile, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	eff := pm.efficiency(p, cores)
	cpu := pm.workCycles(p) / pm.Machine.FreqHz / (float64(cores) * eff)
	peak := pm.Machine.DRAMBandwidth * float64(pm.Machine.Sockets)
	inFlight := float64(cores) * eff * pm.mlp(p.Kind)
	frac := inFlight / pm.SatLines
	if frac > 1 {
		frac = 1
	}
	if frac <= 0 {
		return cpu
	}
	mem := float64(p.Traffic.DRAMBytes) / (peak * frac)
	// Remote traffic is additionally bounded by the inter-socket links.
	qpi := float64(p.Traffic.QPIBytes) / (pm.Machine.QPIBandwidth * frac)
	t := cpu
	if mem > t {
		t = mem
	}
	if qpi > t {
		t = qpi
	}
	return t
}

// Bandwidth models the phase's DRAM bandwidth consumption (bytes/second)
// at the given core count (Fig 9b).
func (pm PerfModel) Bandwidth(p PhaseProfile, cores int) float64 {
	t := pm.Time(p, cores)
	if t == 0 {
		return 0
	}
	return float64(p.Traffic.DRAMBytes) / t
}

// QPIUtilization models the share of per-direction QPI capacity consumed
// by remote-home traffic (Fig 9c).
func (pm PerfModel) QPIUtilization(p PhaseProfile, cores int) float64 {
	t := pm.Time(p, cores)
	if t == 0 {
		return 0
	}
	u := float64(p.Traffic.QPIBytes) / t / pm.Machine.QPIBandwidth
	if u > 1 {
		u = 1
	}
	return u
}

// ScalingCurve returns modeled performance (1/time) at each core count,
// normalized to the first entry (Fig 9a's y-axis shape).
func (pm PerfModel) ScalingCurve(p PhaseProfile, coreCounts []int) []float64 {
	out := make([]float64, len(coreCounts))
	if len(coreCounts) == 0 {
		return out
	}
	base := pm.Time(p, coreCounts[0])
	for i, c := range coreCounts {
		t := pm.Time(p, c)
		if t == 0 {
			out[i] = 0
			continue
		}
		out[i] = base / t
	}
	return out
}

// MergeLoads sums endpoint histograms (used to pool batches of a stage).
func MergeLoads(dst []VertexLoad, src []VertexLoad) []VertexLoad {
	m := make(map[uint32]uint64, len(dst)+len(src))
	for _, l := range dst {
		m[l.V] += l.Count
	}
	for _, l := range src {
		m[l.V] += l.Count
	}
	out := make([]VertexLoad, 0, len(m))
	for v, c := range m {
		out = append(out, VertexLoad{V: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return out
}

// LoadsOf builds the ingest histogram of one copy keyed by the given
// endpoint stream.
func LoadsOf(keys []uint32) []VertexLoad {
	m := make(map[uint32]uint64, len(keys))
	for _, v := range keys {
		m[v]++
	}
	out := make([]VertexLoad, 0, len(m))
	for v, c := range m {
		out = append(out, VertexLoad{V: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return out
}

// HotnessOf reports the hottest vertex's share of the histogram.
func HotnessOf(loads []VertexLoad) float64 {
	var max, total uint64
	for _, l := range loads {
		total += l.Count
		if l.Count > max {
			max = l.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}
