package archsim

import (
	"math/rand"
	"testing"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

func testReplayer(t *testing.T, dsName string) *Replayer {
	t.Helper()
	r, err := NewReplayer(ReplayConfig{
		Machine:       PaperMachine(),
		Threads:       8,
		DataStructure: dsName,
		Directed:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// shadowNames derives from the ds registry, so registering a structure
// without a shadow model fails these batteries instead of being silently
// skipped (NewReplayer errors on a missing shadow).
var shadowNames = ds.Names()

func randomBatch(seed int64, size, nodes int) graph.Batch {
	rng := rand.New(rand.NewSource(seed))
	b := make(graph.Batch, size)
	for i := range b {
		b[i] = graph.Edge{
			Src:    graph.NodeID(rng.Intn(nodes)),
			Dst:    graph.NodeID(rng.Intn(nodes)),
			Weight: 1,
		}
	}
	return b
}

// TestShadowAdjacencyMatches checks every shadow reproduces the unique
// adjacency of the real ingestion (same dedup rule).
func TestShadowAdjacencyMatches(t *testing.T) {
	for _, name := range shadowNames {
		r := testReplayer(t, name)
		oracle := graph.NewOracle(true)
		for i := 0; i < 4; i++ {
			b := randomBatch(int64(i), 800, 120)
			r.ReplayUpdate(b)
			oracle.Update(b)
		}
		for v := 0; v < oracle.NumNodes(); v++ {
			want := oracle.Out(graph.NodeID(v))
			got := r.in.traverse(r.m, 0, graph.NodeID(v)) // in copy stores reversed...
			_ = got
			outGot := r.out.traverse(r.m, 0, graph.NodeID(v))
			if len(outGot) != len(want) {
				t.Fatalf("%s: vertex %d out degree %d want %d", name, v, len(outGot), len(want))
			}
			seen := map[graph.NodeID]bool{}
			for _, nb := range outGot {
				if seen[nb] {
					t.Fatalf("%s: duplicate shadow neighbor", name)
				}
				seen[nb] = true
			}
			for _, nb := range want {
				if !seen[nb.ID] {
					t.Fatalf("%s: missing shadow neighbor %d of %d", name, nb.ID, v)
				}
			}
		}
		r.m.DrainPhase()
	}
}

// TestReplayUpdateEmitsTraffic sanity-checks traffic volume: every edge
// ingest must touch memory, and bigger batches mean more accesses.
func TestReplayUpdateEmitsTraffic(t *testing.T) {
	for _, name := range shadowNames {
		r := testReplayer(t, name)
		small := r.ReplayUpdate(randomBatch(1, 200, 100))
		large := r.ReplayUpdate(randomBatch(2, 2000, 100))
		if small.Accesses < 2*200 { // two copies
			t.Errorf("%s: implausibly few accesses %d for 200 edges", name, small.Accesses)
		}
		if large.Accesses <= small.Accesses {
			t.Errorf("%s: larger batch produced fewer accesses", name)
		}
		if small.Instructions == 0 {
			t.Errorf("%s: no instructions charged", name)
		}
	}
}

// TestComputeReusesUpdateLines reproduces the Fig 10 mechanism: the
// compute phase, running right after the update phase, must observe a
// higher LLC hit ratio than the update phase because it re-reads the edge
// data the update just brought in.
func TestComputeReusesUpdateLines(t *testing.T) {
	for _, name := range shadowNames {
		r := testReplayer(t, name)
		var upd, cmp Traffic
		for i := 0; i < 6; i++ {
			b := randomBatch(int64(i), 1500, 3000)
			upd.Add(r.ReplayUpdate(b))
			aff := affectedOf(b)
			cmp.Add(r.ReplayCompute(aff, ComputeTrace{Incremental: true, ProcessedBudget: 4000}))
		}
		if cmp.LLCHitRatio() <= upd.LLCHitRatio() {
			t.Errorf("%s: compute LLC hit ratio %.3f should exceed update's %.3f",
				name, cmp.LLCHitRatio(), upd.LLCHitRatio())
		}
	}
}

func affectedOf(b graph.Batch) []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, e := range b {
		if !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

func TestReplayerUnknownDS(t *testing.T) {
	if _, err := NewReplayer(ReplayConfig{Machine: PaperMachine(), DataStructure: "nope"}); err == nil {
		t.Fatal("expected error for unknown data structure")
	}
}

func TestUndirectedReplayerSharesShadow(t *testing.T) {
	r, err := NewReplayer(ReplayConfig{
		Machine:       PaperMachine(),
		Threads:       4,
		DataStructure: "adjshared",
		Directed:      false,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ReplayUpdate(graph.Batch{{Src: 1, Dst: 2, Weight: 1}})
	out := r.out.traverse(r.m, 0, 1)
	in := r.in.traverse(r.m, 0, 2)
	if len(out) != 1 || out[0] != 2 || len(in) != 1 || in[0] != 1 {
		t.Fatalf("undirected shadow adjacency wrong: out=%v in=%v", out, in)
	}
}
