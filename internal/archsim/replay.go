package archsim

import (
	"fmt"

	"sagabench/internal/graph"
)

// Replayer reconstructs the memory-access stream of a SAGA-Bench pipeline
// on the simulated machine. It keeps shadow layouts for the out- and
// in-neighbor copies of the chosen data structure and replays, per batch:
//
//   - the update phase: ingesting the batch into both copies with the
//     structure's own multithreading style (shared sharding or chunk
//     ownership), and
//   - the compute phase: a pull-style propagation pass seeded at the
//     batch's affected vertices (INC) or sweeping all vertices (FS),
//     reading vertex properties and traversing in-neighbor storage — the
//     access pattern common to the six vertex-centric algorithms.
type Replayer struct {
	m        *Machine
	alloc    *allocator
	directed bool
	dsName   string

	out shadow
	in  shadow

	numNodes int

	// scratch
	mark []uint8
}

// ReplayConfig configures a Replayer.
type ReplayConfig struct {
	Machine MachineConfig
	// Threads is the replayed hardware-thread count (the paper profiles
	// with 64).
	Threads int
	// DataStructure is the ds registry name to model.
	DataStructure string
	Directed      bool
	// Chunks is the chunk count for AC/DAH models (default Threads).
	Chunks int
	// BlockSize is the Stinger block capacity (default 16).
	BlockSize int
	// FlushThreshold is the DAH low→high boundary (default 16).
	FlushThreshold int
}

// NewReplayer builds shadow layouts for the named data structure.
func NewReplayer(cfg ReplayConfig) (*Replayer, error) {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 1
	}
	chunks := cfg.Chunks
	if chunks <= 0 {
		chunks = threads
	}
	r := &Replayer{
		m:        NewMachine(cfg.Machine, threads),
		alloc:    newAllocator(),
		directed: cfg.Directed,
		dsName:   cfg.DataStructure,
	}
	mk := func() (shadow, error) {
		switch cfg.DataStructure {
		case "adjshared":
			return newShadowAdj(r.alloc, 0), nil
		case "adjchunked":
			return newShadowAdj(r.alloc, chunks), nil
		case "stinger":
			return newShadowStinger(r.alloc, cfg.BlockSize), nil
		case "dah":
			return newShadowDAH(r.alloc, chunks, cfg.FlushThreshold), nil
		case "graphone":
			return newShadowGraphOne(r.alloc, chunks), nil
		case "hybrid":
			return newShadowHybrid(r.alloc, chunks, cfg.FlushThreshold), nil
		}
		return nil, fmt.Errorf("archsim: no shadow model for data structure %q", cfg.DataStructure)
	}
	var err error
	if r.out, err = mk(); err != nil {
		return nil, err
	}
	if cfg.Directed {
		if r.in, err = mk(); err != nil {
			return nil, err
		}
	} else {
		r.in = r.out
	}
	return r, nil
}

// Machine exposes the simulated memory system.
func (r *Replayer) Machine() *Machine { return r.m }

// ChunkedStyle reports whether the modeled structure uses chunk-owned
// multithreading (AC/DAH/GraphOne/hybrid) rather than shared-style
// sharding. Callers picking a PhaseKind should ask this instead of
// hand-matching structure names, so new registrations cannot be
// misclassified silently.
func (r *Replayer) ChunkedStyle() bool { return r.out.threadOf(0) >= 0 }

func (r *Replayer) ensureNodes(batch graph.Batch) {
	max, ok := batch.MaxNode()
	if !ok {
		return
	}
	if n := int(max) + 1; n > r.numNodes {
		r.numNodes = n
	}
	r.out.ensureNodes(r.numNodes)
	r.in.ensureNodes(r.numNodes)
	for len(r.mark) < r.numNodes {
		r.mark = append(r.mark, 0)
	}
}

// threadFor attributes an edge to a replay thread: chunk-owned structures
// dictate the thread; shared-style structures shard the batch contiguously.
func (r *Replayer) threadFor(s shadow, src graph.NodeID, idx, total int) int {
	if t := s.threadOf(src); t >= 0 {
		return t % r.m.Threads()
	}
	if total == 0 {
		return 0
	}
	return idx * r.m.Threads() / total
}

// ReplayUpdate replays ingesting the batch into both copies and returns
// the phase traffic.
func (r *Replayer) ReplayUpdate(batch graph.Batch) Traffic {
	r.ensureNodes(batch)
	n := len(batch)
	// The workers stream through the batch input buffer itself (12 bytes
	// per edge record, freshly written by the ingest front-end).
	batchBase := r.alloc.alloc(uint64(n) * 12)
	for i, e := range batch {
		r.m.Access(r.threadFor(r.out, e.Src, i, n), batchBase+uint64(i)*12, false, 1)
		t := r.threadFor(r.out, e.Src, i, n)
		r.out.insert(r.m, t, e.Src, e.Dst)
		if r.directed {
			t = r.threadFor(r.in, e.Dst, i, n)
			r.in.insert(r.m, t, e.Dst, e.Src)
		} else {
			t = r.threadFor(r.out, e.Dst, i, n)
			r.out.insert(r.m, t, e.Dst, e.Src)
		}
	}
	// Log-structured shadows do their compaction work at batch end.
	if be, ok := r.out.(batchEnder); ok {
		be.endBatch(r.m)
	}
	if r.directed {
		if be, ok := r.in.(batchEnder); ok {
			be.endBatch(r.m)
		}
	}
	return r.m.DrainPhase()
}

// ComputeTrace tunes the compute replay.
type ComputeTrace struct {
	// Incremental seeds propagation at the affected vertices; otherwise
	// the pass sweeps every vertex (FS).
	Incremental bool
	// NeedsDegree adds a per-neighbor degree query (PageRank's
	// out-degree normalization).
	NeedsDegree bool
	// ProcessedBudget caps replayed vertex recomputations; pass the real
	// engine's Stats().Processed to mirror the measured work. 0 means
	// no cap beyond the propagation itself.
	ProcessedBudget uint64
}

func propAddr(v graph.NodeID) uint64 { return propBase + uint64(v)*8 }

// ReplayCompute replays one compute phase and returns the phase traffic.
// affected is the batch's endpoint set (Algorithm 1's affected array).
func (r *Replayer) ReplayCompute(affected []graph.NodeID, kind ComputeTrace) Traffic {
	var frontier []graph.NodeID
	if kind.Incremental {
		frontier = append(frontier, affected...)
	} else {
		for v := 0; v < r.numNodes; v++ {
			frontier = append(frontier, graph.NodeID(v))
		}
	}
	budget := kind.ProcessedBudget
	if budget == 0 {
		budget = uint64(len(frontier))
	}
	var processed uint64
	for len(frontier) > 0 && processed < budget {
		var next []graph.NodeID
		n := len(frontier)
		for i, v := range frontier {
			if processed >= budget {
				break
			}
			processed++
			t := i * r.m.Threads() / n
			// Pull: read own property, traverse in-neighbor
			// storage, read each neighbor's property.
			r.m.Access(t, propAddr(v), false, instrVertex)
			for _, u := range r.in.traverse(r.m, t, v) {
				r.m.Access(t, propAddr(u), false, instrEdgeMath)
				if kind.NeedsDegree {
					r.out.degree(r.m, t, u)
				}
			}
			r.m.Access(t, propAddr(v), true, 1)
			// Push: changed vertices activate out-neighbors.
			if kind.Incremental {
				for _, w := range r.out.traverse(r.m, t, v) {
					if r.mark[w] == 0 {
						r.mark[w] = 1
						next = append(next, w)
					}
				}
			}
		}
		for _, w := range next {
			r.mark[w] = 0
		}
		frontier = next
	}
	return r.m.DrainPhase()
}
