package compute

import (
	"sync/atomic"
	"time"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// fsBFS is GAP-style direction-optimizing BFS for the FS model: levels
// expand top-down (push over out-neighbors, claiming unvisited vertices
// with a CAS) while the frontier is small, and switch bottom-up (every
// unvisited vertex pulls over in-neighbors looking for a visited parent)
// once the frontier's edge volume crosses a fraction of the remaining
// unexplored edges — the Beamer et al. heuristic that GAP implements.
//
// On a graph exposing a flat CSR mirror the level loops iterate the
// index/adjacency arrays directly and rounds are partitioned by degree
// prefix sum; otherwise they fall back to the OutNeigh/InNeigh interface
// with uniform ranges.
func fsBFS(e *fsEngine, g ds.Graph) {
	n := g.NumNodes()
	src := e.opts.Source
	if int(src) >= n {
		return
	}
	csr := flatCSROf(g)
	e.resetVisited(n)
	e.visited[src] = 1
	frontier := append(e.frontier[:0], src)
	threads := e.opts.threads()
	var processed, edges atomic.Uint64
	depth := 0.0
	unvisited := n - 1
	for len(frontier) > 0 {
		depth++
		// Heuristic: frontier out-degree vs a slice of the unexplored
		// volume (GAP's alpha=15 tuning collapses to a frontier-size
		// threshold at our scales).
		frontierEdges := 0
		if csr != nil {
			for _, u := range frontier {
				frontierEdges += csr.OutDegree(u)
			}
		} else {
			for _, u := range frontier {
				frontierEdges += g.OutDegree(u)
			}
		}
		if frontierEdges > unvisited/4 && len(frontier) > 64 {
			frontier = e.bfsBottomUp(g, csr, depth, threads, &processed, &edges, frontier)
		} else {
			frontier = e.bfsTopDown(g, csr, depth, threads, &processed, &edges, frontier)
		}
		unvisited -= len(frontier)
		e.stats.Iterations++
	}
	e.frontier = frontier[:0]
	e.stats.Processed = processed.Load()
	e.stats.EdgesTraversed = edges.Load()
}

// bfsTopDown expands the frontier push-style and returns the next frontier.
// The frontier is split by out-degree prefix sum and workers collect
// discoveries in per-worker buffers merged lock-free at the end of the
// round.
func (e *fsEngine) bfsTopDown(g ds.Graph, csr *graph.CSR, depth float64, threads int, processed, edges *atomic.Uint64, frontier []graph.NodeID) []graph.NodeID {
	e.cuts = balancedCuts(e.cuts, len(frontier), threads, func(i int) int64 {
		if csr != nil {
			return int64(csr.OutDegree(frontier[i]))
		}
		return int64(g.OutDegree(frontier[i]))
	})
	k := len(e.cuts) - 1
	e.push.reset(k)
	parallelRanges(e.cuts, func(w, lo, hi int) {
		var t0 time.Time
		if e.opts.WorkerTiming {
			t0 = time.Now() // saga:allow determinism -- worker busy-time metric and trace spans only; never feeds values or frontier order.
		}
		sp := e.tr.Worker("fs.bfs.topdown", w)
		local := e.push.bufs[w]
		var buf []graph.Neighbor
		var nEdges uint64
		for _, u := range frontier[lo:hi] {
			var ns []graph.Neighbor
			ns, buf = outRunOf(g, csr, u, buf)
			nEdges += uint64(len(ns))
			for _, nb := range ns {
				if atomic.CompareAndSwapUint32(&e.visited[nb.ID], 0, 1) {
					e.vals.set(int(nb.ID), depth)
					local = append(local, nb.ID)
				}
			}
		}
		processed.Add(uint64(hi - lo))
		edges.Add(nEdges)
		e.push.bufs[w] = local
		sp.SetInt("depth", int64(depth))
		sp.SetInt("vertices", int64(hi-lo))
		sp.SetInt("edges", int64(nEdges))
		sp.End()
		if e.opts.WorkerTiming {
			e.clock.add(w, time.Since(t0)) // saga:allow determinism -- worker busy-time metric only.
		}
	})
	next := e.push.concat(e.next[:0], k)
	e.next = frontier
	return next
}

// bfsBottomUp sweeps every unvisited vertex, pulling over in-neighbors for
// a parent at the previous depth; it returns the next frontier. The sweep
// is split by in-degree prefix sum when the flat mirror is available
// (degree queries are two array loads there), else uniformly.
func (e *fsEngine) bfsBottomUp(g ds.Graph, csr *graph.CSR, depth float64, threads int, processed, edges *atomic.Uint64, frontier []graph.NodeID) []graph.NodeID {
	n := g.NumNodes()
	prev := depth - 1
	if csr != nil {
		e.cuts = balancedCuts(e.cuts, n, threads, func(i int) int64 {
			return int64(csr.InDegree(graph.NodeID(i)))
		})
	} else {
		e.cuts = uniformCuts(e.cuts, n, threads)
	}
	k := len(e.cuts) - 1
	e.push.reset(k)
	parallelRanges(e.cuts, func(w, lo, hi int) {
		var t0 time.Time
		if e.opts.WorkerTiming {
			t0 = time.Now() // saga:allow determinism -- worker busy-time metric and trace spans only; never feeds values or frontier order.
		}
		sp := e.tr.Worker("fs.bfs.bottomup", w)
		local := e.push.bufs[w]
		var buf []graph.Neighbor
		var nEdges uint64
		var nProc uint64
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&e.visited[v]) != 0 {
				continue
			}
			nProc++
			var ns []graph.Neighbor
			if csr != nil {
				ns = csr.In(graph.NodeID(v))
			} else {
				buf = g.InNeigh(graph.NodeID(v), buf[:0])
				ns = buf
			}
			for _, nb := range ns {
				nEdges++
				if e.vals.get(int(nb.ID)) == prev {
					// No contention: v's slot is owned by this
					// range worker.
					atomic.StoreUint32(&e.visited[v], 1)
					e.vals.set(v, depth)
					local = append(local, graph.NodeID(v))
					break
				}
			}
		}
		processed.Add(nProc)
		edges.Add(nEdges)
		e.push.bufs[w] = local
		sp.SetInt("depth", int64(depth))
		sp.SetInt("vertices", int64(nProc))
		sp.SetInt("edges", int64(nEdges))
		sp.End()
		if e.opts.WorkerTiming {
			e.clock.add(w, time.Since(t0)) // saga:allow determinism -- worker busy-time metric only.
		}
	})
	next := e.push.concat(e.next[:0], k)
	e.next = frontier
	return next
}

// fsLabelProp runs round-synchronous pull-style propagation to a fixpoint:
// every active vertex recomputes its value from its neighbors (writing only
// its own slot, so rounds parallelize without atomics on the values), and
// changed vertices activate their push-direction neighbors for the next
// round. CC (min over both directions) and MC (max over in-edges) are both
// instances.
func fsLabelProp(e *fsEngine, g ds.Graph) {
	n := g.NumNodes()
	csr := flatCSROf(g)
	threads := e.opts.threads()
	// Round 1 processes every vertex.
	active := e.frontier[:0]
	for v := 0; v < n; v++ {
		active = append(active, graph.NodeID(v))
	}
	e.resetVisited(n)
	var processed, edges atomic.Uint64
	for len(active) > 0 {
		curr := active
		degOf := func(i int) int64 {
			v := curr[i]
			if csr != nil {
				d := csr.OutDegree(v)
				if e.spec.pushBoth {
					d += csr.InDegree(v)
				}
				return int64(d)
			}
			d := g.OutDegree(v)
			if e.spec.pushBoth {
				d += g.InDegree(v)
			}
			return int64(d)
		}
		e.cuts = balancedCuts(e.cuts, len(curr), threads, degOf)
		k := len(e.cuts) - 1
		e.push.reset(k)
		// Snapshot-free Gauss-Seidel rounds: values read may be from
		// this round or the last, which only accelerates convergence
		// of min/max fixpoints.
		parallelRanges(e.cuts, func(w, lo, hi int) {
			var t0 time.Time
			if e.opts.WorkerTiming {
				t0 = time.Now() // saga:allow determinism -- worker busy-time metric and trace spans only; never feeds values or frontier order.
			}
			sp := e.tr.Worker("fs.labelprop", w)
			ctx := &recomputeCtx{g: g, csr: csr, vals: e.vals, numNodes: n, opts: e.opts}
			local := e.push.bufs[w]
			var pushBuf []graph.Neighbor
			for _, v := range curr[lo:hi] {
				old := e.vals.get(int(v))
				newv := e.spec.recompute(ctx, v)
				if newv == old {
					continue
				}
				e.vals.set(int(v), newv)
				outs, ins, scratch := pushRuns(g, csr, v, e.spec.pushBoth, pushBuf)
				pushBuf = scratch
				ctx.edges += uint64(len(outs) + len(ins))
				for _, nb := range outs {
					if atomic.CompareAndSwapUint32(&e.visited[nb.ID], 0, 1) {
						local = append(local, nb.ID)
					}
				}
				for _, nb := range ins {
					if atomic.CompareAndSwapUint32(&e.visited[nb.ID], 0, 1) {
						local = append(local, nb.ID)
					}
				}
			}
			processed.Add(uint64(hi - lo))
			edges.Add(ctx.edges)
			e.push.bufs[w] = local
			// Iterations is coordinator-owned and stable for the round, so
			// reading it from workers is race-free.
			sp.SetInt("round", int64(e.stats.Iterations+1))
			sp.SetInt("vertices", int64(hi-lo))
			sp.SetInt("edges", int64(ctx.edges))
			sp.End()
			if e.opts.WorkerTiming {
				e.clock.add(w, time.Since(t0)) // saga:allow determinism -- worker busy-time metric only.
			}
		})
		next := e.push.concat(e.next[:0], k)
		for _, v := range next {
			e.visited[v] = 0
		}
		active, e.next = next, active
		e.stats.Iterations++
	}
	e.frontier = active[:0]
	e.stats.Processed = processed.Load()
	e.stats.EdgesTraversed = edges.Load()
}

func fsCC(e *fsEngine, g ds.Graph) { fsLabelProp(e, g) }

func fsMC(e *fsEngine, g ds.Graph) { fsLabelProp(e, g) }
