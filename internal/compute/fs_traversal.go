package compute

import (
	"sync"
	"sync/atomic"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// fsBFS is GAP-style direction-optimizing BFS for the FS model: levels
// expand top-down (push over out-neighbors, claiming unvisited vertices
// with a CAS) while the frontier is small, and switch bottom-up (every
// unvisited vertex pulls over in-neighbors looking for a visited parent)
// once the frontier's edge volume crosses a fraction of the remaining
// unexplored edges — the Beamer et al. heuristic that GAP implements.
func fsBFS(e *fsEngine, g ds.Graph) {
	n := g.NumNodes()
	src := e.opts.Source
	if int(src) >= n {
		return
	}
	e.resetVisited(n)
	e.visited[src] = 1
	frontier := append(e.frontier[:0], src)
	threads := e.opts.threads()
	var processed, edges atomic.Uint64
	depth := 0.0
	unvisited := n - 1
	for len(frontier) > 0 {
		depth++
		// Heuristic: frontier out-degree vs a slice of the unexplored
		// volume (GAP's alpha=15 tuning collapses to a frontier-size
		// threshold at our scales).
		frontierEdges := 0
		for _, u := range frontier {
			frontierEdges += g.OutDegree(u)
		}
		if frontierEdges > unvisited/4 && len(frontier) > 64 {
			frontier = e.bfsBottomUp(g, depth, threads, &processed, &edges, frontier)
		} else {
			frontier = e.bfsTopDown(g, depth, threads, &processed, &edges, frontier)
		}
		unvisited -= len(frontier)
		e.stats.Iterations++
	}
	e.frontier = frontier[:0]
	e.stats.Processed = processed.Load()
	e.stats.EdgesTraversed = edges.Load()
}

// bfsTopDown expands the frontier push-style and returns the next frontier.
func (e *fsEngine) bfsTopDown(g ds.Graph, depth float64, threads int, processed, edges *atomic.Uint64, frontier []graph.NodeID) []graph.NodeID {
	var mu sync.Mutex
	next := e.next[:0]
	parallelFor(len(frontier), threads, func(lo, hi int) {
		var local []graph.NodeID
		var buf []graph.Neighbor
		var nEdges uint64
		for _, u := range frontier[lo:hi] {
			buf = g.OutNeigh(u, buf[:0])
			nEdges += uint64(len(buf))
			for _, nb := range buf {
				if atomic.CompareAndSwapUint32(&e.visited[nb.ID], 0, 1) {
					e.vals.set(int(nb.ID), depth)
					local = append(local, nb.ID)
				}
			}
		}
		processed.Add(uint64(hi - lo))
		edges.Add(nEdges)
		if len(local) > 0 {
			mu.Lock()
			next = append(next, local...)
			mu.Unlock()
		}
	})
	e.next = frontier
	return next
}

// bfsBottomUp sweeps every unvisited vertex, pulling over in-neighbors for
// a parent at the previous depth; it returns the next frontier.
func (e *fsEngine) bfsBottomUp(g ds.Graph, depth float64, threads int, processed, edges *atomic.Uint64, frontier []graph.NodeID) []graph.NodeID {
	n := g.NumNodes()
	prev := depth - 1
	var mu sync.Mutex
	next := e.next[:0]
	parallelFor(n, threads, func(lo, hi int) {
		var local []graph.NodeID
		var buf []graph.Neighbor
		var nEdges uint64
		var nProc uint64
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&e.visited[v]) != 0 {
				continue
			}
			nProc++
			buf = g.InNeigh(graph.NodeID(v), buf[:0])
			for _, nb := range buf {
				nEdges++
				if e.vals.get(int(nb.ID)) == prev {
					// No contention: v's slot is owned by this
					// range worker.
					atomic.StoreUint32(&e.visited[v], 1)
					e.vals.set(v, depth)
					local = append(local, graph.NodeID(v))
					break
				}
			}
		}
		processed.Add(nProc)
		edges.Add(nEdges)
		if len(local) > 0 {
			mu.Lock()
			next = append(next, local...)
			mu.Unlock()
		}
	})
	e.next = frontier
	return next
}

// fsLabelProp runs round-synchronous pull-style propagation to a fixpoint:
// every active vertex recomputes its value from its neighbors (writing only
// its own slot, so rounds parallelize without atomics on the values), and
// changed vertices activate their push-direction neighbors for the next
// round. CC (min over both directions) and MC (max over in-edges) are both
// instances.
func fsLabelProp(e *fsEngine, g ds.Graph) {
	n := g.NumNodes()
	threads := e.opts.threads()
	// Round 1 processes every vertex.
	active := e.frontier[:0]
	for v := 0; v < n; v++ {
		active = append(active, graph.NodeID(v))
	}
	e.resetVisited(n)
	var processed, edges atomic.Uint64
	for len(active) > 0 {
		var mu sync.Mutex
		next := e.next[:0]
		// Snapshot-free Gauss-Seidel rounds: values read may be from
		// this round or the last, which only accelerates convergence
		// of min/max fixpoints.
		parallelFor(len(active), threads, func(lo, hi int) {
			ctx := &recomputeCtx{g: g, vals: e.vals, numNodes: n, opts: e.opts}
			var local []graph.NodeID
			var pushBuf []graph.Neighbor
			for _, v := range active[lo:hi] {
				old := e.vals.get(int(v))
				newv := e.spec.recompute(ctx, v)
				if newv == old {
					continue
				}
				e.vals.set(int(v), newv)
				pushBuf = g.OutNeigh(v, pushBuf[:0])
				if e.spec.pushBoth {
					pushBuf = g.InNeigh(v, pushBuf)
				}
				ctx.edges += uint64(len(pushBuf))
				for _, nb := range pushBuf {
					if atomic.CompareAndSwapUint32(&e.visited[nb.ID], 0, 1) {
						local = append(local, nb.ID)
					}
				}
			}
			processed.Add(uint64(hi - lo))
			edges.Add(ctx.edges)
			if len(local) > 0 {
				mu.Lock()
				next = append(next, local...)
				mu.Unlock()
			}
		})
		for _, v := range next {
			e.visited[v] = 0
		}
		active, e.next = next, active
		e.stats.Iterations++
	}
	e.frontier = active[:0]
	e.stats.Processed = processed.Load()
	e.stats.EdgesTraversed = edges.Load()
}

func fsCC(e *fsEngine, g ds.Graph) { fsLabelProp(e, g) }

func fsMC(e *fsEngine, g ds.Graph) { fsLabelProp(e, g) }
