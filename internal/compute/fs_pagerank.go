package compute

import (
	"sync/atomic"
	"time"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// fsPR is GAP-style PageRank power iteration: Jacobi sweeps (reading the
// previous iteration's ranks, writing a fresh array) until the summed
// absolute rank change drops below the tolerance (GAP's convergence
// criterion) or the iteration cap is reached.
func fsPR(e *fsEngine, g ds.Graph) {
	n := g.NumNodes()
	csr := flatCSROf(g)
	threads := e.opts.threads()
	tol := e.opts.prTolerance()
	maxIters := e.opts.prMaxIters()

	if cap(e.aux) < n {
		e.aux = make(values, n)
	}
	e.aux = e.aux[:n]

	// Each vertex's sweep cost is its in-degree (the pull set), so with a
	// flat mirror the sweep is cut by in-degree prefix sum; the interface
	// path keeps uniform ranges rather than add n degree calls per
	// iteration. The cuts are topology-dependent only — identical across
	// iterations — so they are computed once.
	if csr != nil {
		e.cuts = balancedCuts(e.cuts, n, threads, func(i int) int64 {
			return int64(csr.InDegree(graph.NodeID(i)))
		})
	} else {
		e.cuts = uniformCuts(e.cuts, n, threads)
	}

	var processed, edges atomic.Uint64
	for iter := 0; iter < maxIters; iter++ {
		var sumDelta atomic.Uint64 // float64 bits of the summed |delta|
		parallelRanges(e.cuts, func(w, lo, hi int) {
			var t0 time.Time
			if e.opts.WorkerTiming {
				t0 = time.Now() // saga:allow determinism -- worker busy-time metric and trace spans only; never feeds values or frontier order.
			}
			sp := e.tr.Worker("fs.pr.iter", w)
			ctx := &recomputeCtx{g: g, csr: csr, vals: e.vals, numNodes: n, opts: e.opts}
			localSum := 0.0
			for v := lo; v < hi; v++ {
				newv := e.spec.recompute(ctx, graph.NodeID(v))
				e.aux.set(v, newv)
				localSum += abs(newv - e.vals.get(v))
			}
			addFloat(&sumDelta, localSum)
			processed.Add(uint64(hi - lo))
			edges.Add(ctx.edges)
			sp.SetInt("iter", int64(iter+1))
			sp.SetInt("vertices", int64(hi-lo))
			sp.SetInt("edges", int64(ctx.edges))
			sp.End()
			if e.opts.WorkerTiming {
				e.clock.add(w, time.Since(t0)) // saga:allow determinism -- worker busy-time metric only.
			}
		})
		e.vals, e.aux = e.aux, e.vals
		e.stats.Iterations++
		if loadFloat(&sumDelta) < tol {
			break
		}
	}
	e.stats.Processed = processed.Load()
	e.stats.EdgesTraversed = edges.Load()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, floatBits(floatFromBits(old)+v)) {
			return
		}
	}
}

func loadFloat(bits *atomic.Uint64) float64 { return floatFromBits(bits.Load()) }
