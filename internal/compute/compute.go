// Package compute implements the SAGA-Bench compute phase: six
// vertex-centric algorithms (BFS, CC, MC, PR, SSSP, SSWP — Table I) in two
// compute models (paper Section III-B):
//
//   - FS: recomputation from scratch — every batch resets the vertex
//     properties and reruns a conventional static-graph algorithm
//     (GAP-style) on the freshly updated topology.
//   - INC: incremental computation — processing amortization (start from
//     the previous batch's values) plus selective triggering (recompute
//     only vertices affected directly or transitively by the batch),
//     implementing the paper's Algorithm 1.
//
// Vertex property values are held in a separate float64 array (paper
// footnote 4), one slot per vertex, uniform across algorithms.
//
// saga:paniccapture — worker goroutines must capture panics.
// saga:deterministic — results feed the differential fuzzer and replay.
// (Both enforced by sagavet; see internal/analysis.)
package compute

import (
	"fmt"
	"sort"
	"sync"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
	"sagabench/internal/trace"
)

// Model selects a compute model.
type Model string

// The two compute models of the paper.
const (
	FS  Model = "fs"
	INC Model = "inc"
)

// Options tunes an engine; zero values select the paper's defaults.
type Options struct {
	// Source is the root vertex for BFS/SSSP/SSWP.
	Source graph.NodeID
	// Threads is the compute-phase worker count; 0 means 1.
	Threads int
	// PRTolerance stops FS PageRank power iteration (default 1e-4, as
	// in GAP).
	PRTolerance float64
	// PRMaxIters bounds FS PageRank iterations (default 20, as in GAP).
	PRMaxIters int
	// Delta is the SSSP delta-stepping bucket width (default 8).
	Delta float64
	// Epsilon overrides the INC triggering threshold (default 1e-7 for
	// PR, exact change for the monotone algorithms).
	Epsilon float64
	// WorkerTiming enables the per-worker busy-time clocks behind
	// Stats.WorkerBusyNS and StragglerRatio. It costs two monotonic clock
	// reads per worker range per round — measurable on small INC rounds —
	// so core.NewPipeline switches it on only when a telemetry recorder or
	// tracer is attached; with it off the kernels run exactly the
	// uninstrumented code path.
	WorkerTiming bool
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return 1
	}
	return o.Threads
}

func (o Options) prTolerance() float64 {
	if o.PRTolerance <= 0 {
		return 1e-4
	}
	return o.PRTolerance
}

func (o Options) prMaxIters() int {
	if o.PRMaxIters <= 0 {
		return 20
	}
	return o.PRMaxIters
}

func (o Options) delta() float64 {
	if o.Delta <= 0 {
		return 8
	}
	return o.Delta
}

// Engine runs one algorithm under one compute model across successive
// batches. PerformAlg is the performAlg() entry point of the paper's API:
// it is invoked once per batch, after the update phase, with the vertices
// the batch touched.
type Engine interface {
	// Name reports the algorithm name ("bfs", "cc", ...).
	Name() string
	// Model reports the compute model.
	Model() Model
	// PerformAlg runs the compute phase. affected lists the batch's
	// endpoint vertices (deduplicated); FS engines ignore it.
	PerformAlg(g ds.Graph, affected []graph.NodeID)
	// Values exposes the vertex property array (length = NumNodes of
	// the last PerformAlg call).
	Values() []float64
	// Stats reports counters from the most recent PerformAlg call.
	Stats() Stats
	// HandlesDeletions reports whether the engine stays correct when
	// the update phase removes edges. Every FS engine does (it recomputes
	// from scratch). INC engines do too: PageRank's damped recompute is a
	// contraction that re-converges after any topology change, and the
	// monotone algorithms repair through KickStarter-style trimming (see
	// trim.go) when the pipeline notifies them of deletions.
	HandlesDeletions() bool
}

// Stats describes one compute phase's work.
type Stats struct {
	// Iterations counts frontier rounds (INC) or algorithm iterations
	// (FS).
	Iterations int
	// Processed counts vertex recomputations.
	Processed uint64
	// EdgesTraversed counts neighbor records read.
	EdgesTraversed uint64
	// Triggered counts INC recomputations whose value change exceeded the
	// triggering threshold and propagated to neighbors; Skipped counts
	// recomputations the threshold absorbed. Both are zero for FS engines
	// (recomputation from scratch has no triggering).
	Triggered uint64
	Skipped   uint64
	// WorkerBusyNS is the per-worker busy time (nanoseconds, indexed by
	// worker slot) summed over the phase's parallel rounds — the raw
	// material of the straggler ratio. It aliases engine scratch and is
	// valid until the next PerformAlg; callers that retain it must copy.
	// Empty for the sequential kernels (FS SSSP/SSWP) and before the
	// first parallel round.
	WorkerBusyNS []int64
}

// WorkersUsed counts the worker slots that did any work in the phase.
func (s Stats) WorkersUsed() int {
	used := 0
	for _, ns := range s.WorkerBusyNS {
		if ns > 0 {
			used++
		}
	}
	return used
}

// StragglerRatio is max/mean busy time over the worker slots that did any
// work: 1.0 is a perfectly balanced phase, larger values mean one
// worker's range dominated its rounds even under the edge-balanced cuts
// (a skew the degree prefix sum cannot see, e.g. weight-dependent
// convergence). 0 when no parallel round ran.
func (s Stats) StragglerRatio() float64 {
	var max, sum int64
	used := 0
	for _, ns := range s.WorkerBusyNS {
		if ns <= 0 {
			continue
		}
		used++
		sum += ns
		if ns > max {
			max = ns
		}
	}
	if used == 0 || sum == 0 {
		return 0
	}
	return float64(max) * float64(used) / float64(sum)
}

// TriggerFraction reports Triggered / (Triggered + Skipped) — the paper's
// selective-triggering effectiveness — or 0 when the model does not
// trigger (FS) or no vertex was processed.
func (s Stats) TriggerFraction() float64 {
	n := s.Triggered + s.Skipped
	if n == 0 {
		return 0
	}
	return float64(s.Triggered) / float64(n)
}

// Traceable is implemented by engines whose parallel rounds can be
// attributed to a batch trace: the pipeline hands the engine the compute
// phase's span context before each PerformAlg, and the kernels open one
// span per worker range per round. The zero trace.Ctx disables span
// recording at no cost.
type Traceable interface {
	SetTrace(ctx trace.Ctx)
}

// AlgNames lists the six algorithms in the paper's order.
func AlgNames() []string { return []string{"bfs", "cc", "mc", "pr", "sssp", "sswp"} }

// NeedsInAdjacency reports whether running alg under model ever reads
// in-adjacency. Every INC recompute pulls a vertex's value from its
// in-neighbors (Table I), but the delta-stepping FS kernels (SSSP, SSWP)
// relax exclusively along out-edges, so a compute view serving only them
// can skip mirroring the in direction entirely
// (ds.ComputeView.MirrorOutOnly). Unknown algorithms report true: the
// conservative answer costs refresh time, never correctness.
func NeedsInAdjacency(alg string, model Model) bool {
	s, ok := specs[alg]
	if !ok || model != FS {
		return true
	}
	return s.pushBoth || s.fsPullsIn
}

// NewEngine constructs an engine for the named algorithm and model.
func NewEngine(alg string, model Model, opts Options) (Engine, error) {
	spec, ok := specs[alg]
	if !ok {
		known := make([]string, 0, len(specs))
		// saga:allow determinism -- order is re-established by the sort below.
		for k := range specs {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("compute: unknown algorithm %q (have %v)", alg, known)
	}
	switch model {
	case FS:
		return newFSEngine(spec, opts), nil
	case INC:
		return newIncEngine(spec, opts), nil
	default:
		return nil, fmt.Errorf("compute: unknown model %q (have %q, %q)", model, FS, INC)
	}
}

// MustNewEngine is NewEngine that panics on error.
func MustNewEngine(alg string, model Model, opts Options) Engine {
	e, err := NewEngine(alg, model, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// parallelFor splits [0,n) into up to `threads` contiguous ranges and runs
// fn on each in its own goroutine, blocking until all complete. A panic in
// any worker is captured and re-raised on the calling goroutine (first
// panic wins), so callers wrapping the compute phase in recover — the
// poison-batch quarantine — see worker failures instead of the process
// dying.
func parallelFor(n, threads int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if threads <= 1 || n == 1 {
		fn(0, n)
		return
	}
	if threads > n {
		threads = n
	}
	per := (n + threads - 1) / threads
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// growValues extends vals to n slots, filling new slots with fill.
func growValues(vals []float64, n int, fill float64) []float64 {
	for len(vals) < n {
		vals = append(vals, fill)
	}
	return vals
}
