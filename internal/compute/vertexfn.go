package compute

import (
	"math"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// inf is the identity for min-reductions over distances.
var inf = math.Inf(1)

// recomputeCtx is per-worker state for pull-style vertex recomputation.
type recomputeCtx struct {
	g        ds.Graph
	csr      *graph.CSR // non-nil on the flat compute-view path
	vals     values
	numNodes int
	opts     Options
	buf      []graph.Neighbor
	edges    uint64 // neighbor records read
}

// inRun returns v's in-adjacency: a zero-copy CSR run on the flat path,
// else ctx.buf filled through the interface. The run is valid only until
// the next ctx adjacency call.
func (ctx *recomputeCtx) inRun(v graph.NodeID) []graph.Neighbor {
	if ctx.csr != nil {
		run := ctx.csr.In(v)
		ctx.edges += uint64(len(run))
		return run
	}
	ctx.buf = ctx.g.InNeigh(v, ctx.buf[:0])
	ctx.edges += uint64(len(ctx.buf))
	return ctx.buf
}

// outRun is inRun for the out direction.
func (ctx *recomputeCtx) outRun(v graph.NodeID) []graph.Neighbor {
	if ctx.csr != nil {
		run := ctx.csr.Out(v)
		ctx.edges += uint64(len(run))
		return run
	}
	ctx.buf = ctx.g.OutNeigh(v, ctx.buf[:0])
	ctx.edges += uint64(len(ctx.buf))
	return ctx.buf
}

// outDegree answers from the flat index when available (two array loads
// instead of an interface call).
func (ctx *recomputeCtx) outDegree(v graph.NodeID) int {
	if ctx.csr != nil {
		return ctx.csr.OutDegree(v)
	}
	return ctx.g.OutDegree(v)
}

// spec describes one algorithm: its Table I vertex function expressed as a
// pull-style recompute, its initialization, and its INC trigger rule.
type spec struct {
	name string
	// hasSource pins opts.Source to sourceValue (BFS/SSSP/SSWP).
	hasSource   bool
	sourceValue float64
	// initValue is the reset (FS) / fresh-vertex (INC) property value.
	initValue func(v graph.NodeID, numNodes int) float64
	// recompute evaluates the vertex function for v by pulling from
	// neighbors. It must not write ctx.vals.
	recompute func(ctx *recomputeCtx, v graph.NodeID) float64
	// pushBoth propagates changes along both edge directions (CC treats
	// the graph as undirected connectivity).
	pushBoth bool
	// fsPullsIn marks FS kernels that read in-adjacency even though the
	// algorithm pushes one-directionally: BFS's bottom-up phase, MC's
	// pull-style label-prop recompute, and PageRank's Jacobi iteration.
	// Together with pushBoth it decides NeedsInAdjacency for the FS
	// model; only the delta-stepping path kernels (SSSP, SSWP) leave
	// both unset.
	fsPullsIn bool
	// epsilon is the INC triggering threshold given the current vertex
	// count; 0 means any change triggers (the monotone algorithms).
	epsilon func(opts Options, numNodes int) float64
	// deletionSafe marks algorithms whose INC recompute re-converges
	// after edge deletions without help (non-monotone contractions like
	// PageRank).
	deletionSafe bool
	// weighted marks algorithms whose values depend on edge weights, so
	// an overwrite that changes a stored weight can invalidate values the
	// same way a deletion can (the INC engine must be told; see
	// WeightChangeAware).
	weighted bool
	// globalN marks algorithms whose vertex function takes |V| as an
	// input (PageRank's base term): a vertex-count change affects every
	// vertex, so the INC engine widens the affected set to all vertices
	// whenever NumNodes grows.
	globalN bool
	// degreeSensitive marks algorithms whose vertex function reads a
	// neighbor's degree (PageRank normalizes each in-neighbor's rank by
	// its out-degree): an inserted or deleted edge (u,v) then affects not
	// just u and v but every other out-neighbor of u, so the INC engine
	// widens the affected set with the out-neighbors of batch endpoints.
	degreeSensitive bool
	// tight reports whether valV could have been derived from valU across
	// an edge of weight w — the value-dependence test KickStarter-style
	// trimming uses to grow the invalidation cone after deletions. nil
	// for non-monotone algorithms (no trimming needed).
	tight func(valU, w, valV float64) bool
	// fsRun executes the conventional static-graph algorithm for the
	// FS model (GAP-style where GAP implements it).
	fsRun func(e *fsEngine, g ds.Graph)
}

func exactChange(Options, int) float64 { return 0 }

// prEpsilon is the PageRank triggering threshold. The paper fixes it at
// 1e-7 on graphs with millions of vertices, where ranks are ~1/|V| ≈ 2e-7
// — i.e. the trigger fires on changes of about half a rank unit. To keep
// the same looseness relative to rank magnitude on scaled graphs, the
// default tracks 0.5/|V|.
func prEpsilon(o Options, numNodes int) float64 {
	if o.Epsilon > 0 {
		return o.Epsilon
	}
	if numNodes <= 0 {
		return 1e-7
	}
	return 0.5 / float64(numNodes)
}

// specs registers the six SAGA-Bench algorithms.
var specs = map[string]spec{
	"bfs": {
		name:        "bfs",
		hasSource:   true,
		sourceValue: 0,
		initValue:   func(graph.NodeID, int) float64 { return inf },
		// Table I: v.depth <- min over inEdges(v) (e.source.depth + 1).
		recompute: func(ctx *recomputeCtx, v graph.NodeID) float64 {
			best := inf
			for _, nb := range ctx.inRun(v) {
				if d := ctx.vals.get(int(nb.ID)) + 1; d < best {
					best = d
				}
			}
			return best
		},
		epsilon:   exactChange,
		tight:     func(valU, _, valV float64) bool { return valV == valU+1 },
		fsPullsIn: true, // direction-optimized BFS pulls in bottom-up steps
		fsRun:     fsBFS,
	},
	"cc": {
		name:      "cc",
		initValue: func(v graph.NodeID, _ int) float64 { return float64(v) },
		// Table I: v.value <- min(v.value, min over Edges(v) of
		// e.other.value) — connectivity over both directions.
		recompute: func(ctx *recomputeCtx, v graph.NodeID) float64 {
			best := ctx.vals.get(int(v))
			// The out run must be consumed before inRun refills the
			// shared scratch on the interface path; sequential loops keep
			// the traversal order of the old combined buffer.
			for _, nb := range ctx.outRun(v) {
				if nv := ctx.vals.get(int(nb.ID)); nv < best {
					best = nv
				}
			}
			for _, nb := range ctx.inRun(v) {
				if nv := ctx.vals.get(int(nb.ID)); nv < best {
					best = nv
				}
			}
			return best
		},
		pushBoth: true,
		epsilon:  exactChange,
		tight:    func(valU, _, valV float64) bool { return valV == valU },
		fsRun:    fsCC,
	},
	"mc": {
		name:      "mc",
		initValue: func(v graph.NodeID, _ int) float64 { return float64(v) },
		// Table I: v.value <- max(v.value, max over inEdges(v) of
		// e.source.value).
		recompute: func(ctx *recomputeCtx, v graph.NodeID) float64 {
			best := ctx.vals.get(int(v))
			for _, nb := range ctx.inRun(v) {
				if nv := ctx.vals.get(int(nb.ID)); nv > best {
					best = nv
				}
			}
			return best
		},
		epsilon:   exactChange,
		tight:     func(valU, _, valV float64) bool { return valV == valU },
		fsPullsIn: true, // label-prop rounds recompute via the in-run pull
		fsRun:     fsMC,
	},
	"pr": {
		name:      "pr",
		initValue: func(_ graph.NodeID, numNodes int) float64 { return 1 / float64(numNodes) },
		// Table I: v.rank <- 0.15/|V| + 0.85 * sum over inEdges(v) of
		// e.source.rank (normalized by the source's out-degree,
		// Section V-B).
		recompute: func(ctx *recomputeCtx, v graph.NodeID) float64 {
			sum := 0.0
			for _, nb := range ctx.inRun(v) {
				if d := ctx.outDegree(nb.ID); d > 0 {
					sum += ctx.vals.get(int(nb.ID)) / float64(d)
				}
			}
			return prBase/float64(ctx.numNodes) + prDamping*sum
		},
		epsilon:         prEpsilon,
		deletionSafe:    true,
		globalN:         true,
		degreeSensitive: true,
		fsPullsIn:       true, // Jacobi iteration sums over in-neighbors
		fsRun:           fsPR,
	},
	"sssp": {
		name:        "sssp",
		hasSource:   true,
		sourceValue: 0,
		initValue:   func(graph.NodeID, int) float64 { return inf },
		// Table I: v.path <- min over inEdges(v) (e.source.path +
		// e.weight).
		recompute: func(ctx *recomputeCtx, v graph.NodeID) float64 {
			best := inf
			for _, nb := range ctx.inRun(v) {
				if d := ctx.vals.get(int(nb.ID)) + float64(nb.Weight); d < best {
					best = d
				}
			}
			return best
		},
		epsilon:  exactChange,
		weighted: true,
		tight:    func(valU, w, valV float64) bool { return valV == valU+w },
		fsRun:    fsSSSP,
	},
	"sswp": {
		name:        "sswp",
		hasSource:   true,
		sourceValue: inf,
		initValue:   func(graph.NodeID, int) float64 { return 0 },
		// Table I: v.path <- max over inEdges(v) of
		// min(e.source.path, e.weight).
		recompute: func(ctx *recomputeCtx, v graph.NodeID) float64 {
			best := 0.0
			for _, nb := range ctx.inRun(v) {
				w := math.Min(ctx.vals.get(int(nb.ID)), float64(nb.Weight))
				if w > best {
					best = w
				}
			}
			return best
		},
		epsilon:  exactChange,
		weighted: true,
		tight:    func(valU, w, valV float64) bool { return valV == math.Min(valU, w) },
		fsRun:    fsSSWP,
	},
}

// PageRank constants (Table I).
const (
	prBase    = 0.15
	prDamping = 0.85
)
