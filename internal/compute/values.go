package compute

import (
	"math"
	"sync/atomic"
)

// values is the vertex property array. Both compute models relax values
// chaotically — a worker may pull a neighbor's value while its owner
// rewrites it — so slots are stored as float64 bit patterns accessed with
// atomic loads and stores (plain MOVs on amd64), making the relaxation
// race well-defined: a reader sees either the old or the new value, both
// of which are valid intermediate states of the fixpoint iteration.
type values []uint64

func (v values) get(i int) float64 { return math.Float64frombits(atomic.LoadUint64(&v[i])) }

func (v values) set(i int, f float64) { atomic.StoreUint64(&v[i], math.Float64bits(f)) }

// materialize copies the values into dst as plain float64s.
func (v values) materialize(dst []float64) []float64 {
	dst = dst[:0]
	for i := range v {
		dst = append(dst, v.get(i))
	}
	return dst
}
