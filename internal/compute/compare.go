package compute

import (
	"fmt"
	"math"

	"sagabench/internal/graph"
)

// Result extraction for differential comparison: the crosscheck harness
// (internal/crosscheck) and the convergence tests compare engine Values()
// against sequential oracle references. This file centralizes how a
// reference answer is produced for an (algorithm, Options) pair and how
// two property vectors are declared equal, so every caller applies the
// same tolerance policy.

// Reference computes the sequential ground-truth property vector for alg
// on the oracle graph, honoring the same Options the engines see (source
// vertex, PageRank tolerance and iteration cap).
func Reference(alg string, o *graph.Oracle, opts Options) ([]float64, error) {
	switch alg {
	case "bfs":
		return graph.RefBFS(o, opts.Source), nil
	case "cc":
		return graph.RefCC(o), nil
	case "mc":
		return graph.RefMC(o), nil
	case "pr":
		return graph.RefPR(o, opts.prTolerance(), opts.prMaxIters()), nil
	case "sssp":
		return graph.RefSSSP(o, opts.Source), nil
	case "sswp":
		return graph.RefSSWP(o, opts.Source), nil
	}
	return nil, fmt.Errorf("compute: no reference implementation for %q", alg)
}

// MustReference is Reference that panics on unknown algorithms.
func MustReference(alg string, o *graph.Oracle, opts Options) []float64 {
	vals, err := Reference(alg, o, opts)
	if err != nil {
		panic(err)
	}
	return vals
}

// Tolerance reports the comparison tolerance for alg's property values:
// 0 (exact) for the integer-valued algorithms (BFS depths, CC/MC labels),
// a tiny epsilon for the weighted path algorithms (float64 sums/mins of
// float32 weights), and a looser epsilon for PageRank, whose two models
// approximate the same fixpoint down to their triggering thresholds.
func Tolerance(alg string) float64 {
	switch alg {
	case "bfs", "cc", "mc":
		return 0
	case "pr":
		return 1e-6
	default: // sssp, sswp
		return 1e-9
	}
}

// ValueLabel names what one slot of alg's property vector means — the
// unit a served query result should be read (and reported) in. The
// non-blocking query surface uses it to label sampled values, so a CLI
// or dashboard shows "bfs depth 3" rather than a bare float.
func ValueLabel(alg string) string {
	switch alg {
	case "bfs":
		return "hop depth"
	case "cc":
		return "component label"
	case "mc":
		return "max color"
	case "pr":
		return "pagerank score"
	case "sssp":
		return "shortest-path distance"
	case "sswp":
		return "widest-path capacity"
	}
	return "value"
}

// DiffValues returns the index of the first slot where got and want differ
// by more than tol (+Inf matches +Inf), or -1 when the vectors agree. A
// length mismatch reports the first index past the shorter vector.
func DiffValues(got, want []float64, tol float64) int {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for v := 0; v < n; v++ {
		g, w := got[v], want[v]
		if math.IsInf(g, 1) && math.IsInf(w, 1) {
			continue
		}
		if math.Abs(g-w) > tol || math.IsNaN(g) != math.IsNaN(w) {
			return v
		}
	}
	if len(got) != len(want) {
		return n
	}
	return -1
}
